#include "common/hash.h"

namespace dynagg {

uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  // A final mix strengthens FNV's weak low-bit diffusion before the value is
  // consumed by modulo / ctz operations in the sketches.
  return Mix64(hash);
}

}  // namespace dynagg
