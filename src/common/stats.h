// Statistics substrate: running moments, deviation-from-truth accumulators,
// histograms/CDFs, and CSV time series.
//
// The paper reports errors "in aggregate as the standard deviation from the
// correct value" (Section V): the root-mean-square of (host estimate - true
// aggregate) over alive hosts. DeviationStat implements exactly that.

#ifndef DYNAGG_COMMON_STATS_H_
#define DYNAGG_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"

namespace dynagg {

/// Numerically stable (Welford) running mean/variance with min/max.
class RunningStat {
 public:
  RunningStat() = default;

  /// Adds one observation.
  void Add(double x);

  /// Merges another accumulator into this one (parallel Welford).
  void Merge(const RunningStat& other);

  /// Resets to the empty state.
  void Reset() { *this = RunningStat(); }

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Population variance (divides by n). Zero for n < 1.
  double variance() const { return count_ > 0 ? m2_ / count_ : 0.0; }
  /// Sample variance (divides by n-1). Zero for n < 2.
  double sample_variance() const {
    return count_ > 1 ? m2_ / (count_ - 1) : 0.0;
  }
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * count_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Accumulates the paper's error metric: the standard deviation of host
/// estimates from the (possibly per-host) correct value, i.e.
/// sqrt(mean((estimate_i - truth_i)^2)).
class DeviationStat {
 public:
  /// Adds one host's estimate against its correct value.
  void Add(double estimate, double truth) {
    const double d = estimate - truth;
    sum_sq_ += d * d;
    sum_abs_ += d < 0 ? -d : d;
    ++count_;
  }

  void Reset() { *this = DeviationStat(); }

  int64_t count() const { return count_; }
  /// Root-mean-square deviation from truth; 0 when empty.
  double rms() const;
  /// Mean absolute deviation from truth; 0 when empty.
  double mean_abs() const { return count_ > 0 ? sum_abs_ / count_ : 0.0; }

 private:
  int64_t count_ = 0;
  double sum_sq_ = 0.0;
  double sum_abs_ = 0.0;
};

/// Fixed-width histogram over [lo, hi) with explicit under/overflow buckets;
/// emits CDF rows for figure reproduction (Fig 6).
class Histogram {
 public:
  /// `num_buckets` >= 1, hi > lo.
  Histogram(double lo, double hi, int num_buckets);

  void Add(double x);
  void Reset();

  int64_t total() const { return total_; }
  int num_buckets() const { return static_cast<int>(counts_.size()); }
  /// Count in bucket `i` (0 <= i < num_buckets()).
  int64_t bucket_count(int i) const { return counts_[i]; }
  /// Inclusive upper edge of bucket `i`.
  double bucket_upper(int i) const;
  int64_t underflow() const { return underflow_; }
  int64_t overflow() const { return overflow_; }

  /// Empirical CDF evaluated at bucket upper edges:
  /// P[X <= bucket_upper(i)], counting underflow below every bucket.
  std::vector<double> Cdf() const;

  /// Approximate quantile (inverse CDF) by linear scan; q in [0, 1].
  double Quantile(double q) const;

 private:
  double lo_;
  double width_;
  std::vector<int64_t> counts_;
  int64_t underflow_ = 0;
  int64_t overflow_ = 0;
  int64_t total_ = 0;
};

/// Exact q-quantile (q in [0, 1]) of an ascending-sorted sample by linear
/// interpolation between order statistics (the common "R-7" definition:
/// position q * (n - 1)). 0 for an empty sample. Backs the scenario
/// engine's quantile(metric, q) records.
double QuantileFromSorted(const std::vector<double>& sorted, double q);

/// A labelled numeric table accumulated row by row and rendered as CSV.
/// Used by every bench harness to print the series the paper plots.
class CsvTable {
 public:
  explicit CsvTable(std::vector<std::string> columns);

  /// Appends one row; must match the column count.
  void AddRow(const std::vector<double>& row);

  int64_t num_rows() const { return static_cast<int64_t>(rows_.size()); }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<double>& row(int64_t i) const { return rows_[i]; }

  /// Renders "col1,col2,...\nv11,v12,...\n..." with %.6g formatting.
  std::string ToCsv() const;

  /// Prints ToCsv() to stdout.
  void Print() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace dynagg

#endif  // DYNAGG_COMMON_STATS_H_
