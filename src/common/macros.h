// Core assertion and utility macros used throughout dynagg.
//
// Following the database-systems convention (no exceptions on hot paths),
// programmer errors abort via DYNAGG_CHECK; recoverable errors travel as
// Status/Result values (see status.h).

#ifndef DYNAGG_COMMON_MACROS_H_
#define DYNAGG_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Aborts with a message when `condition` is false. Enabled in all build
// types: simulation results are meaningless if an invariant is broken, so
// the cost of the branch is always worth paying.
#define DYNAGG_CHECK(condition)                                           \
  do {                                                                    \
    if (!(condition)) {                                                   \
      ::std::fprintf(stderr, "DYNAGG_CHECK failed: %s at %s:%d\n",        \
                     #condition, __FILE__, __LINE__);                     \
      ::std::abort();                                                     \
    }                                                                     \
  } while (0)

#define DYNAGG_CHECK_OP(lhs, op, rhs)                                     \
  do {                                                                    \
    if (!((lhs)op(rhs))) {                                                \
      ::std::fprintf(stderr, "DYNAGG_CHECK failed: %s %s %s at %s:%d\n",  \
                     #lhs, #op, #rhs, __FILE__, __LINE__);                \
      ::std::abort();                                                     \
    }                                                                     \
  } while (0)

#define DYNAGG_CHECK_EQ(a, b) DYNAGG_CHECK_OP(a, ==, b)
#define DYNAGG_CHECK_NE(a, b) DYNAGG_CHECK_OP(a, !=, b)
#define DYNAGG_CHECK_LT(a, b) DYNAGG_CHECK_OP(a, <, b)
#define DYNAGG_CHECK_LE(a, b) DYNAGG_CHECK_OP(a, <=, b)
#define DYNAGG_CHECK_GT(a, b) DYNAGG_CHECK_OP(a, >, b)
#define DYNAGG_CHECK_GE(a, b) DYNAGG_CHECK_OP(a, >=, b)

// Debug-only checks compile away in optimized builds with NDEBUG.
#ifdef NDEBUG
#define DYNAGG_DCHECK(condition) \
  do {                           \
  } while (0)
#else
#define DYNAGG_DCHECK(condition) DYNAGG_CHECK(condition)
#endif

// Disallow copy (and implicitly move) for identity-bearing classes.
#define DYNAGG_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;             \
  TypeName& operator=(const TypeName&) = delete

#endif  // DYNAGG_COMMON_MACROS_H_
