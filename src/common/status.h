// Lightweight Status / Result<T> error-handling primitives.
//
// dynagg avoids exceptions (database-systems convention); operations that can
// fail for data-dependent reasons (trace parsing, deserialization, config
// validation) return Status or Result<T>. Programmer errors use DYNAGG_CHECK.

#ifndef DYNAGG_COMMON_STATUS_H_
#define DYNAGG_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/macros.h"

namespace dynagg {

/// Error category carried by a non-ok Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kCorruption = 4,
  kFailedPrecondition = 5,
  kUnimplemented = 6,
};

/// Returns a human-readable name for `code` ("OK", "InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

/// Value-semantic success/error indicator with a message for the error case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory for the OK status.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(StatusCode::kOutOfRange, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(StatusCode::kNotFound, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(StatusCode::kCorruption, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(StatusCode::kFailedPrecondition, msg);
  }
  static Status Unimplemented(std::string_view msg) {
    return Status(StatusCode::kUnimplemented, msg);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string_view msg)
      : code_(code), message_(msg) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result aborts (programmer error).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value makes `return value;` work.
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  /// Implicit construction from a non-OK status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    DYNAGG_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    DYNAGG_CHECK(ok());
    return *value_;
  }
  T& value() & {
    DYNAGG_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    DYNAGG_CHECK(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status from an expression to the caller.
#define DYNAGG_RETURN_IF_ERROR(expr)          \
  do {                                        \
    ::dynagg::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (0)

#define DYNAGG_STATUS_CONCAT_INNER_(a, b) a##b
#define DYNAGG_STATUS_CONCAT_(a, b) DYNAGG_STATUS_CONCAT_INNER_(a, b)

#define DYNAGG_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

/// Unwraps a Result<T> into `lhs`, propagating errors to the caller. The
/// indirection expands __LINE__ before pasting, so multiple uses in one
/// scope get distinct temporaries.
#define DYNAGG_ASSIGN_OR_RETURN(lhs, rexpr) \
  DYNAGG_ASSIGN_OR_RETURN_IMPL_(            \
      DYNAGG_STATUS_CONCAT_(_res_, __LINE__), lhs, rexpr)

}  // namespace dynagg

#endif  // DYNAGG_COMMON_STATUS_H_
