#include "common/wire.h"

namespace dynagg {

void BufWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<uint8_t>(v));
}

void BufWriter::PutVarintSigned(int64_t v) { PutVarint(ZigZagEncode(v)); }

void BufWriter::PutBytes(std::string_view bytes) {
  PutVarint(bytes.size());
  const auto* p = reinterpret_cast<const uint8_t*>(bytes.data());
  buf_.insert(buf_.end(), p, p + bytes.size());
}

Status BufReader::ReadVarint(uint64_t* out) {
  uint64_t result = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= size_) return Status::Corruption("wire: truncated varint");
    if (shift >= 70) return Status::Corruption("wire: varint too long");
    const uint8_t byte = data_[pos_++];
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *out = result;
  return Status::OK();
}

Status BufReader::ReadVarintSigned(int64_t* out) {
  uint64_t raw = 0;
  DYNAGG_RETURN_IF_ERROR(ReadVarint(&raw));
  *out = ZigZagDecode(raw);
  return Status::OK();
}

Status BufReader::ReadBytes(std::vector<uint8_t>* out) {
  uint64_t len = 0;
  DYNAGG_RETURN_IF_ERROR(ReadVarint(&len));
  if (remaining() < len) {
    return Status::Corruption("wire: truncated byte string");
  }
  out->assign(data_ + pos_, data_ + pos_ + len);
  pos_ += len;
  return Status::OK();
}

}  // namespace dynagg
