// Hashing utilities for counting sketches and deterministic derivations.
//
// Flajolet-Martin sketches assume each object's hash behaves as a uniform
// random bit string. The paper calls for an "L-bit cryptographic hash"; a
// 64-bit finalizer with full avalanche (splitmix64 / murmur3-style) provides
// the required uniformity deterministically and at a fraction of the cost
// (see DESIGN.md, Substitutions).

#ifndef DYNAGG_COMMON_HASH_H_
#define DYNAGG_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace dynagg {

/// splitmix64 finalizer: bijective 64-bit mix with full avalanche.
inline uint64_t Mix64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Combines two 64-bit values into one hash (boost::hash_combine style,
/// strengthened with a final mix).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  seed ^= Mix64(value) + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
  return Mix64(seed);
}

/// FNV-1a over bytes; used for hashing string identifiers (song names,
/// device ids) into the 64-bit object space.
uint64_t Fnv1a64(std::string_view bytes);

/// Flajolet-Martin rho: index of the lowest-order set bit of `hash`
/// (P[rho = k] = 2^-(k+1) for uniform hashes), clamped to `max_level` for
/// the all-zeros-below case. max_level must be >= 0.
inline int Rho(uint64_t hash, int max_level) {
  if (hash == 0) return max_level;
  const int k = __builtin_ctzll(hash);
  return k < max_level ? k : max_level;
}

/// Deterministic sketch placement for object `object_id` under hash seed
/// `seed`: the stochastic-averaging bin in [0, num_bins) and the geometric
/// level in [0, max_level].
struct SketchSlot {
  int bin;
  int level;
};

inline SketchSlot SketchPlace(uint64_t object_id, uint64_t seed, int num_bins,
                              int max_level) {
  const uint64_t h1 = Mix64(object_id ^ seed);
  const uint64_t h2 = Mix64(h1 ^ 0x6a09e667f3bcc909ull);
  return SketchSlot{static_cast<int>(h1 % static_cast<uint64_t>(num_bins)),
                    Rho(h2, max_level)};
}

}  // namespace dynagg

#endif  // DYNAGG_COMMON_HASH_H_
