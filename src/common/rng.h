// Deterministic pseudo-random number generation for simulations.
//
// Every stochastic component in dynagg draws from an explicitly seeded Rng so
// that experiments are bit-for-bit reproducible. The generator is
// xoshiro256++ (Blackman & Vigna), seeded through splitmix64 as its authors
// recommend; it is far faster than std::mt19937_64 and has no detected
// statistical failures at the scales used here (1e10+ draws per run).

#ifndef DYNAGG_COMMON_RNG_H_
#define DYNAGG_COMMON_RNG_H_

#include <cstdint>

#include "common/macros.h"

namespace dynagg {

/// splitmix64: a tiny, high-quality 64-bit generator used for seeding and
/// for stateless per-key derivation (see DeriveSeed).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Returns the next 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256++ generator. Value-semantic and cheap to copy, so per-host
/// generators can live inside contiguous arrays.
class Rng {
 public:
  /// Seeds the four words of state from `seed` via splitmix64. Any seed,
  /// including 0, yields a valid (non-degenerate) state.
  explicit Rng(uint64_t seed = 0x2545f4914f6cdd1dull) { Reseed(seed); }

  /// Re-seeds in place (and restarts the draw count).
  void Reseed(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.Next();
    draws_ = 0;
  }

  /// Returns the next raw 64-bit output.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    ++draws_;
    return result;
  }

  /// Raw 64-bit outputs consumed since construction / the last Reseed.
  /// Every derived draw (UniformInt, NextDouble, ...) consumes at least
  /// one; rejection methods consume more. Feeds the telemetry rng_draws
  /// counter; maintaining it unconditionally is one dependency-free add
  /// per draw, cheaper than any branch would be.
  uint64_t draw_count() const { return draws_; }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). `bound` must be positive. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  uint64_t UniformInt(uint64_t bound) {
    DYNAGG_CHECK_GT(bound, 0u);
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      const uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    DYNAGG_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    UniformInt(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Bernoulli draw with success probability `p` (clamped to [0,1]).
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Geometric level draw: returns k with P[k] = 2^-(k+1) for k < max_level
  /// and the remaining tail mass on max_level. This is exactly the
  /// Flajolet-Martin rho distribution, implemented as the index of the
  /// lowest set bit of a uniform word (all-zero word -> max_level).
  int GeometricLevel(int max_level) {
    DYNAGG_CHECK_GE(max_level, 0);
    const uint64_t word = Next();
    if (word == 0) return max_level;
    const int k = __builtin_ctzll(word);
    return k < max_level ? k : max_level;
  }

  /// Exponential draw with rate `lambda` (> 0), via inversion.
  double Exponential(double lambda);

  /// Standard normal draw (Box-Muller; uses two uniforms per pair, caches
  /// nothing for simplicity/value-semantics).
  double Normal(double mean, double stddev);

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
  uint64_t draws_ = 0;
};

/// Derives a decorrelated child seed from (root_seed, stream_id). Used to
/// give each host / component an independent stream from one experiment seed.
inline uint64_t DeriveSeed(uint64_t root_seed, uint64_t stream_id) {
  SplitMix64 sm(root_seed ^ (0x9e3779b97f4a7c15ull * (stream_id + 1)));
  sm.Next();
  return sm.Next();
}

}  // namespace dynagg

#endif  // DYNAGG_COMMON_RNG_H_
