#include "common/rng.h"

#include <cmath>

namespace dynagg {

double Rng::Exponential(double lambda) {
  DYNAGG_CHECK_GT(lambda, 0.0);
  // 1 - NextDouble() is in (0, 1], so the log argument is never zero.
  return -std::log(1.0 - NextDouble()) / lambda;
}

double Rng::Normal(double mean, double stddev) {
  // Box-Muller transform. u1 in (0,1] avoids log(0).
  const double u1 = 1.0 - NextDouble();
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

}  // namespace dynagg
