// Shared scalar types: host identifiers and simulated time.

#ifndef DYNAGG_COMMON_TYPES_H_
#define DYNAGG_COMMON_TYPES_H_

#include <cstdint>

namespace dynagg {

/// Dense host identifier in [0, num_hosts). kInvalidHost marks "no host"
/// (e.g. no gossip partner reachable this round).
using HostId = int32_t;
inline constexpr HostId kInvalidHost = -1;

/// Simulated time in microseconds since experiment start.
using SimTime = int64_t;
inline constexpr SimTime kSimTimeMax = INT64_MAX;

constexpr SimTime FromMicros(int64_t us) { return us; }
constexpr SimTime FromMillis(int64_t ms) { return ms * 1000; }
constexpr SimTime FromSeconds(double s) {
  return static_cast<SimTime>(s * 1e6);
}
constexpr SimTime FromMinutes(double m) { return FromSeconds(m * 60.0); }
constexpr SimTime FromHours(double h) { return FromSeconds(h * 3600.0); }

constexpr double ToSeconds(SimTime t) { return static_cast<double>(t) / 1e6; }
constexpr double ToMinutes(SimTime t) { return ToSeconds(t) / 60.0; }
constexpr double ToHours(SimTime t) { return ToSeconds(t) / 3600.0; }

}  // namespace dynagg

#endif  // DYNAGG_COMMON_TYPES_H_
