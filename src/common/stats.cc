#include "common/stats.h"

#include <cmath>
#include <cstdio>

namespace dynagg {

void RunningStat::Add(double x) {
  ++count_;
  if (count_ == 1) {
    mean_ = x;
    min_ = x;
    max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / count_;
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const int64_t n = count_ + other.count_;
  const double delta = other.mean_ - mean_;
  const double new_mean = mean_ + delta * other.count_ / n;
  m2_ += other.m2_ +
         delta * delta * (static_cast<double>(count_) * other.count_ / n);
  mean_ = new_mean;
  count_ = n;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double DeviationStat::rms() const {
  return count_ > 0 ? std::sqrt(sum_sq_ / count_) : 0.0;
}

Histogram::Histogram(double lo, double hi, int num_buckets)
    : lo_(lo), width_((hi - lo) / num_buckets) {
  DYNAGG_CHECK_GT(num_buckets, 0);
  DYNAGG_CHECK_GT(hi, lo);
  counts_.assign(num_buckets, 0);
}

void Histogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const auto idx = static_cast<int64_t>((x - lo_) / width_);
  if (idx >= static_cast<int64_t>(counts_.size())) {
    ++overflow_;
    return;
  }
  ++counts_[static_cast<size_t>(idx)];
}

void Histogram::Reset() {
  for (auto& c : counts_) c = 0;
  underflow_ = overflow_ = total_ = 0;
}

double Histogram::bucket_upper(int i) const {
  DYNAGG_CHECK_GE(i, 0);
  DYNAGG_CHECK_LT(i, num_buckets());
  return lo_ + width_ * (i + 1);
}

std::vector<double> Histogram::Cdf() const {
  std::vector<double> cdf(counts_.size(), 0.0);
  if (total_ == 0) return cdf;
  int64_t cumulative = underflow_;
  for (size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    cdf[i] = static_cast<double>(cumulative) / total_;
  }
  return cdf;
}

double Histogram::Quantile(double q) const {
  DYNAGG_CHECK_GE(q, 0.0);
  DYNAGG_CHECK_LE(q, 1.0);
  if (total_ == 0) return lo_;
  const double target = q * total_;
  double cumulative = underflow_;
  for (size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= target) return bucket_upper(static_cast<int>(i));
  }
  return bucket_upper(num_buckets() - 1);
}

double QuantileFromSorted(const std::vector<double>& sorted, double q) {
  DYNAGG_CHECK_GE(q, 0.0);
  DYNAGG_CHECK_LE(q, 1.0);
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

CsvTable::CsvTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  DYNAGG_CHECK(!columns_.empty());
}

void CsvTable::AddRow(const std::vector<double>& row) {
  DYNAGG_CHECK_EQ(row.size(), columns_.size());
  rows_.push_back(row);
}

namespace {

/// RFC 4180 field escaping for header cells: quote when the cell contains
/// a separator, quote or newline, doubling embedded quotes. Values are
/// numeric and never need escaping.
std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\r\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string CsvTable::ToCsv() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ',';
    out += CsvEscape(columns_[i]);
  }
  out += '\n';
  char buf[64];
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      std::snprintf(buf, sizeof(buf), "%.6g", row[i]);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

void CsvTable::Print() const {
  const std::string csv = ToCsv();
  std::fwrite(csv.data(), 1, csv.size(), stdout);
}

}  // namespace dynagg
