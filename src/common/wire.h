// Wire-format substrate: bounded little-endian readers/writers with varint
// support.
//
// Protocol messages in dynagg are real byte payloads (the NodeAggregator
// facade gossips serialized buffers exactly as a wireless deployment would).
// Readers are bounds-checked and report Corruption via Status rather than
// crashing on malformed input.

#ifndef DYNAGG_COMMON_WIRE_H_
#define DYNAGG_COMMON_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dynagg {

/// Appends fixed-width and variable-width values to a growable byte buffer.
class BufWriter {
 public:
  BufWriter() = default;

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v) { PutFixed(&v, sizeof(v)); }
  void PutU32(uint32_t v) { PutFixed(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutFixed(&v, sizeof(v)); }
  /// IEEE-754 double, little-endian byte order.
  void PutDouble(double v) { PutFixed(&v, sizeof(v)); }

  /// LEB128 unsigned varint (1-10 bytes).
  void PutVarint(uint64_t v);
  /// Zig-zag encoded signed varint.
  void PutVarintSigned(int64_t v);
  /// Length-prefixed byte string (varint length + raw bytes).
  void PutBytes(std::string_view bytes);

  const std::vector<uint8_t>& buffer() const { return buf_; }
  size_t size() const { return buf_.size(); }
  void Clear() { buf_.clear(); }

  /// Moves the accumulated bytes out, leaving the writer empty.
  std::vector<uint8_t> Release() { return std::move(buf_); }

 private:
  void PutFixed(const void* src, size_t n) {
    const auto* p = static_cast<const uint8_t*>(src);
    buf_.insert(buf_.end(), p, p + n);
  }

  std::vector<uint8_t> buf_;
};

/// Bounds-checked sequential reader over a byte span. Does not own the data.
class BufReader {
 public:
  BufReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit BufReader(const std::vector<uint8_t>& buf)
      : BufReader(buf.data(), buf.size()) {}

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

  Status ReadU8(uint8_t* out) { return ReadFixed(out, sizeof(*out)); }
  Status ReadU16(uint16_t* out) { return ReadFixed(out, sizeof(*out)); }
  Status ReadU32(uint32_t* out) { return ReadFixed(out, sizeof(*out)); }
  Status ReadU64(uint64_t* out) { return ReadFixed(out, sizeof(*out)); }
  Status ReadDouble(double* out) { return ReadFixed(out, sizeof(*out)); }
  Status ReadVarint(uint64_t* out);
  Status ReadVarintSigned(int64_t* out);
  /// Reads a length-prefixed byte string into `out` (replacing contents).
  Status ReadBytes(std::vector<uint8_t>* out);

 private:
  Status ReadFixed(void* dst, size_t n) {
    if (remaining() < n) {
      return Status::Corruption("wire: truncated fixed-width field");
    }
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Zig-zag transforms between signed and unsigned integers.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

}  // namespace dynagg

#endif  // DYNAGG_COMMON_WIRE_H_
