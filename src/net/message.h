// The unit of message-level simulation: one gossip payload in flight.
//
// The async driver (scenario/async_driver.cc) moves protocol state between
// hosts exclusively through these messages: a swarm's async tick plans a
// batch of them, the network model (net/network_model.h) decides each one's
// fate (latency draw, Bernoulli drop), and delivery hands the payload back
// to the swarm whenever the event queue reaches it — possibly reordered
// against other messages on the same edge. The payload is deliberately a
// fixed pair of doubles plus a tag: push-sum ships a <weight, value> mass,
// push-flow ships a cumulative <flow_num, flow_denom> edge state with a
// per-direction sequence number, and keeping the struct POD keeps the
// event-queue captures allocation-free.

#ifndef DYNAGG_NET_MESSAGE_H_
#define DYNAGG_NET_MESSAGE_H_

#include <cstdint>

#include "common/types.h"

namespace dynagg {
namespace net {

/// One gossip message in flight from `src` to `dst`. The meaning of the
/// payload fields is the sending protocol's business; the driver and the
/// network model never interpret them.
struct Message {
  HostId src = kInvalidHost;
  HostId dst = kInvalidHost;
  double a = 0.0;    // push-sum: mass weight;   push-flow: cumulative flow numerator
  double b = 0.0;    // push-sum: mass value;    push-flow: cumulative flow denominator
  uint64_t tag = 0;  // push-flow: per-direction sequence number (reordering guard)
};

}  // namespace net
}  // namespace dynagg

#endif  // DYNAGG_NET_MESSAGE_H_
