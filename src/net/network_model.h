// Deterministic message-level network models: per-message latency, loss
// and reordering for the async trial driver.
//
// A NetworkModel maps the index of each planned gossip message to a
// delivery decision — dropped, or delivered after a latency draw — using a
// fresh Rng seeded per message (DeriveSeed(root, message_index)). Seeding
// per message rather than sharing one stream makes every decision a pure
// function of (root seed, message index): decisions can be evaluated in
// any order, on any executor thread, and the run stays byte-identical
// (pinned by tests/net/network_model_test.cc). Reordering needs no
// mechanism of its own — independent latency draws (uniform width or the
// exponential tail, plus the optional jitter term) already let a later
// message overtake an earlier one on the event queue.

#ifndef DYNAGG_NET_NETWORK_MODEL_H_
#define DYNAGG_NET_NETWORK_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace dynagg {
namespace net {

/// The per-message latency distribution (`net.latency` in the spec).
enum class LatencyKind {
  kFixed,        // every message takes exactly net.latency_s seconds
  kUniform,      // U[net.latency_s, net.latency_hi_s)
  kExponential,  // exponential with mean net.latency_s
};

/// The spec-declared shape of the network (the `net.*` keys, parsed and
/// validated by the async driver).
struct NetworkParams {
  LatencyKind latency = LatencyKind::kFixed;
  double latency_s = 0.0;     // fixed value / uniform low edge / exponential mean
  double latency_hi_s = 0.0;  // uniform high edge (kUniform only)
  double loss = 0.0;          // Bernoulli drop probability per message
  double jitter_s = 0.0;      // extra U[0, jitter_s) on top of every draw
};

class NetworkModel {
 public:
  /// `root_seed` is the resolved seeds.message_stream derived from the
  /// trial seed; every message decision derives from it and nothing else.
  NetworkModel(const NetworkParams& params, uint64_t root_seed)
      : params_(params), root_(root_seed) {}

  struct Delivery {
    bool dropped = false;
    SimTime delay = 0;
  };

  /// Decides message `message_index`'s fate. Pure in (root seed, index):
  /// calling in any order, any number of times, yields identical results.
  Delivery Decide(uint64_t message_index);

  /// Rng draws consumed by the decisions so far (telemetry accounting).
  int64_t rng_draws() const { return draws_; }

 private:
  NetworkParams params_;
  uint64_t root_;
  int64_t draws_ = 0;
};

/// One row of the `dynagg_run --list` network catalogs.
struct NetCatalogInfo {
  const char* name;
  const char* summary;
};

/// The latency distributions `net.latency` can select.
const std::vector<NetCatalogInfo>& NetworkModelCatalog();

/// The async driver's spec surface (net.* keys, seeds.message_stream).
const std::vector<NetCatalogInfo>& AsyncSpecKeyCatalog();

}  // namespace net
}  // namespace dynagg

#endif  // DYNAGG_NET_NETWORK_MODEL_H_
