#include "net/network_model.h"

namespace dynagg {
namespace net {

NetworkModel::Delivery NetworkModel::Decide(uint64_t message_index) {
  // A fresh generator per message: the decision depends only on
  // (root seed, index), never on how many or which decisions came before.
  Rng rng(DeriveSeed(root_, message_index));
  Delivery out;
  out.dropped = params_.loss > 0.0 && rng.Bernoulli(params_.loss);
  // The latency draw happens even for dropped messages so every message
  // consumes the same number of draws regardless of its fate (keeps the
  // per-message draw count a constant of the model, not of the data).
  double seconds = 0.0;
  switch (params_.latency) {
    case LatencyKind::kFixed:
      seconds = params_.latency_s;
      break;
    case LatencyKind::kUniform:
      seconds = rng.UniformDouble(params_.latency_s, params_.latency_hi_s);
      break;
    case LatencyKind::kExponential:
      // Rng::Exponential takes a rate; the spec key is the mean in seconds.
      seconds = params_.latency_s > 0.0
                    ? rng.Exponential(1.0 / params_.latency_s)
                    : 0.0;
      break;
  }
  if (params_.jitter_s > 0.0) {
    seconds += rng.UniformDouble(0.0, params_.jitter_s);
  }
  out.delay = FromSeconds(seconds);
  draws_ += static_cast<int64_t>(rng.draw_count());
  return out;
}

const std::vector<NetCatalogInfo>& NetworkModelCatalog() {
  static const std::vector<NetCatalogInfo>* const kCatalog =
      new std::vector<NetCatalogInfo>{
          {"fixed", "constant per-message latency of net.latency_s seconds"},
          {"uniform",
           "latency uniform in [net.latency_s, net.latency_hi_s) seconds"},
          {"exponential",
           "exponential latency with mean net.latency_s seconds (heavy "
           "reordering tail)"},
      };
  return *kCatalog;
}

const std::vector<NetCatalogInfo>& AsyncSpecKeyCatalog() {
  static const std::vector<NetCatalogInfo>* const kCatalog =
      new std::vector<NetCatalogInfo>{
          {"net.latency",
           "latency distribution: fixed (default), uniform, exponential"},
          {"net.latency_s",
           "latency scale in seconds: fixed value / uniform low edge / "
           "exponential mean (default 0)"},
          {"net.latency_hi_s",
           "uniform latency high edge in seconds (net.latency = uniform "
           "only)"},
          {"net.loss", "per-message Bernoulli drop probability in [0, 1]"},
          {"net.jitter",
           "extra U[0, jitter) seconds on every delivery (reordering)"},
          {"seeds.message_stream",
           "per-message decision stream (term-sum grammar, default 5)"},
      };
  return *kCatalog;
}

}  // namespace net
}  // namespace dynagg
