// InFlightQueue: the async driver's batched message timeline.
//
// The first async driver scheduled one Simulator event per undropped
// message — a heap entry plus a std::function per delivery, hundreds of
// thousands per trial. But deliveries are the only priority-0 events and
// nothing observes simulation state *between* them: ticks (priority 1) and
// samplers (priority 2) are the only readers. So the driver can park
// messages in this POD min-heap instead and drain everything due at or
// before the current instant right when a tick or sampler fires — the
// observable state at every observation point is identical, message for
// message, to the per-event schedule (same (due time, send order) delivery
// order), with no per-message allocation or event-queue churn.
//
// Ordering contract: Pop order is (due, seq) where seq is Push order.
// Under the per-event scheme a delivery event's tie-break was its
// insertion sequence, and messages are only ever scheduled from ticks in
// send-wave order — so Push order IS the old insertion order and the
// drain replays the exact legacy timeline.

#ifndef DYNAGG_NET_INFLIGHT_QUEUE_H_
#define DYNAGG_NET_INFLIGHT_QUEUE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "net/message.h"

namespace dynagg {
namespace net {

class InFlightQueue {
 public:
  /// Pre-sizes the heap (e.g. to one tick's expected wave) so steady-state
  /// pushes never reallocate.
  void Reserve(size_t n) { heap_.reserve(n); }

  void Push(SimTime due, const Message& m) {
    heap_.push_back(Entry{due, seq_++, m});
    std::push_heap(heap_.begin(), heap_.end(), After);
  }

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// True when the earliest in-flight message is due at or before `t`.
  bool HasDueBy(SimTime t) const {
    return !heap_.empty() && heap_.front().due <= t;
  }

  /// The earliest message (min (due, seq)); only valid when !empty().
  const Message& Top() const { return heap_.front().msg; }
  SimTime TopDue() const { return heap_.front().due; }

  void Pop() {
    std::pop_heap(heap_.begin(), heap_.end(), After);
    heap_.pop_back();
  }

 private:
  struct Entry {
    SimTime due;
    uint64_t seq;
    Message msg;
  };

  /// Max-heap comparator inverted into the (due, seq) min-heap order.
  static bool After(const Entry& a, const Entry& b) {
    if (a.due != b.due) return a.due > b.due;
    return a.seq > b.seq;
  }

  std::vector<Entry> heap_;
  uint64_t seq_ = 0;
};

}  // namespace net
}  // namespace dynagg

#endif  // DYNAGG_NET_INFLIGHT_QUEUE_H_
