#include "agg/count_sketch.h"

#include "common/hash.h"

namespace dynagg {

void CountSketchNode::Init(const CountSketchParams& params, uint64_t host_key,
                           int64_t multiplicity) {
  DYNAGG_CHECK_GE(multiplicity, 0);
  sketch_ = FmSketch(params.bins, params.levels);
  // Object ids must be globally unique across hosts so that sums add up:
  // (host_key, index) pairs hashed together provide that.
  for (int64_t idx = 0; idx < multiplicity; ++idx) {
    const uint64_t object_id =
        HashCombine(host_key, static_cast<uint64_t>(idx));
    sketch_.InsertObject(object_id, params.hash_seed);
  }
}

CountSketchSwarm::CountSketchSwarm(
    const std::vector<int64_t>& multiplicities,
    const CountSketchParams& params)
    : nodes_(multiplicities.size()),
      multiplicities_(multiplicities),
      params_(params) {
  for (size_t i = 0; i < multiplicities.size(); ++i) {
    nodes_[i].Init(params_, /*host_key=*/i, multiplicities[i]);
  }
}

void CountSketchSwarm::OnJoin(HostId id) {
  nodes_[id].Init(params_, /*host_key=*/static_cast<uint64_t>(id),
                  multiplicities_[id]);
}

void CountSketchSwarm::RunRound(const Environment& env, const Population& pop,
                                Rng& rng) {
  kernel_.PlanExchangeRound(env, pop, rng);
  kernel_.ForEachExchange([this](HostId i, HostId peer) {
    if (meter_ != nullptr) {
      meter_->RecordMessage(nodes_[i].sketch().SerializedBytes());
    }
    nodes_[peer].Merge(nodes_[i].sketch());
    if (params_.mode == GossipMode::kPushPull) {
      if (meter_ != nullptr) {
        meter_->RecordMessage(nodes_[peer].sketch().SerializedBytes());
      }
      nodes_[i].Merge(nodes_[peer].sketch());
    }
  });
}

}  // namespace dynagg
