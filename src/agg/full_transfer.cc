#include "agg/full_transfer.h"

namespace dynagg {

void FullTransferNode::Init(double v0, int window) {
  DYNAGG_CHECK_GT(window, 0);
  mass_ = Mass{1.0, v0};
  inbox_ = Mass{};
  reverted_ = Mass{};
  emitting_ = false;
  initial_value_ = v0;
  history_.assign(window, Mass{});
  history_next_ = 0;
  history_count_ = 0;
}

Mass FullTransferNode::EmitParcel(double lambda, int parcels) {
  DYNAGG_CHECK_GT(parcels, 0);
  if (!emitting_) {
    // First parcel of the round: apply the reversion to the outgoing total
    // and zero the local mass (full transfer keeps nothing back).
    reverted_.weight = (1.0 - lambda) * mass_.weight + lambda;
    reverted_.value =
        (1.0 - lambda) * mass_.value + lambda * initial_value_;
    mass_ = Mass{};
    emitting_ = true;
  }
  const double inv = 1.0 / parcels;
  return Mass{reverted_.weight * inv, reverted_.value * inv};
}

void FullTransferNode::EndRound() {
  emitting_ = false;
  mass_ = inbox_;
  if (inbox_.weight > 0.0) {
    history_[history_next_] = inbox_;
    history_next_ = (history_next_ + 1) % static_cast<int>(history_.size());
    if (history_count_ < static_cast<int>(history_.size())) ++history_count_;
  }
  inbox_ = Mass{};
}

double FullTransferNode::Estimate() const {
  Mass total;
  for (int i = 0; i < history_count_; ++i) total += history_[i];
  if (total.weight <= 0.0) return initial_value_;
  return total.value / total.weight;
}

FullTransferSwarm::FullTransferSwarm(const std::vector<double>& values,
                                     const FullTransferParams& params)
    : mass_(values.size()),
      inbox_(values.size()),
      reverted_(values.size()),
      emitting_(values.size(), 0),
      initial_(values),
      history_(values.size() * static_cast<size_t>(params.window)),
      hist_next_(values.size(), 0),
      hist_count_(values.size(), 0),
      params_(params) {
  DYNAGG_CHECK_GE(params_.lambda, 0.0);
  DYNAGG_CHECK_LE(params_.lambda, 1.0);
  DYNAGG_CHECK_GT(params_.parcels, 0);
  DYNAGG_CHECK_GT(params_.window, 0);
  for (size_t i = 0; i < values.size(); ++i) mass_[i] = Mass{1.0, values[i]};
}

void FullTransferSwarm::RunRound(const Environment& env,
                                 const Population& pop, Rng& rng) {
  // Plan `parcels` independent partner draws per alive host (consecutive
  // slots, the legacy per-parcel draw order), emit every parcel, then
  // scatter. With no reachable peer a parcel returns to the sender rather
  // than leaving the system (PartnerPlan::EffectivePartner).
  const PartnerPlan& plan =
      kernel_.PlanPushRound(env, pop, rng, params_.parcels);
  if (meter_ != nullptr) {
    meter_->RecordMessages(plan.CountMatched(), kMassMessageBytes);
  }
  if (!kernel_.parallel_deposits()) {
    kernel_.ForEachPushSlot(
        [this](HostId src) { return EmitParcelAt(src); },
        [this](HostId dst, const Mass& m) { inbox_[dst] += m; },
        [this](HostId dst) { __builtin_prefetch(&inbox_[dst], 1); });
  } else {
    kernel_.EmitAndScatter(
        &outbox_, /*self_echo=*/false, size(),
        [this](HostId src) { return EmitParcelAt(src); },
        [this](HostId dst, const Mass& m) { inbox_[dst] += m; });
  }
  // On a never-mutated population alive_ids is every host: fold over the
  // index range directly (no id indirection in the hot loop).
  if (pop.version() == 0) {
    const int n = size();
    for (HostId i = 0; i < n; ++i) EndRoundAt(i);
  } else {
    for (const HostId i : pop.alive_ids()) EndRoundAt(i);
  }
}

Mass FullTransferSwarm::TotalAliveMass(const Population& pop) const {
  Mass total;
  for (const HostId id : pop.alive_ids()) total += mass_[id];
  return total;
}

}  // namespace dynagg
