#include "agg/push_sum.h"

#include <algorithm>

namespace dynagg {

PushSumSwarm::PushSumSwarm(const std::vector<double>& values, GossipMode mode)
    : mass_(values.size()),
      inbox_(values.size()),
      initial_(values),
      mode_(mode) {
  for (size_t i = 0; i < values.size(); ++i) mass_[i] = Mass{1.0, values[i]};
}

void PushSumSwarm::RunRound(const Environment& env, const Population& pop,
                            Rng& rng) {
  if (mode_ == GossipMode::kPush) {
    // All emissions are simultaneous: plan the partners, then emit and
    // deposit the halves (self inbox + partner inbox, or both to the
    // sender when it has no reachable peer), then every host adopts its
    // inbox. Sequentially the emit/deposit pass is fused with destination
    // prefetch; with intra-round threads the halves are taken first and
    // scattered data-parallel — bit-identical either way.
    const PartnerPlan& plan = kernel_.PlanPushRound(env, pop, rng);
    if (meter_ != nullptr) {
      meter_->RecordMessages(plan.CountMatched(), kMassMessageBytes);
    }
    if (!kernel_.parallel_deposits()) {
      kernel_.ForEachPushSlot(
          [this](HostId src) {
            // PushSumNode::EmitPushHalf on the SoA state: take the mass,
            // deposit one half into the own inbox, hand the other half to
            // the kernel for the partner deposit.
            Mass& m = mass_[src];
            const Mass half{m.weight * 0.5, m.value * 0.5};
            m = Mass{};
            inbox_[src] += half;
            return half;
          },
          [this](HostId dst, const Mass& m) { inbox_[dst] += m; },
          [this](HostId dst) { __builtin_prefetch(&inbox_[dst], 1); });
    } else {
      kernel_.EmitAndScatter(
          &outbox_, /*self_echo=*/true, size(),
          [this](HostId src) {
            Mass& m = mass_[src];
            const Mass half{m.weight * 0.5, m.value * 0.5};
            m = Mass{};
            return half;
          },
          [this](HostId dst, const Mass& m) { inbox_[dst] += m; });
    }
    // PushSumNode::EndRound: adopt the summed inbox. On a never-mutated
    // population alive_ids is every host, so the adoption collapses to an
    // array swap plus a clear — no copy pass at all.
    if (pop.version() == 0) {
      mass_.swap(inbox_);
      std::fill(inbox_.begin(), inbox_.end(), Mass{});
    } else {
      for (const HostId i : pop.alive_ids()) {
        mass_[i] = inbox_[i];
        inbox_[i] = Mass{};
      }
    }
    return;
  }
  // Push/pull: pairwise equalization, applied sequentially in a shuffled
  // order within the round, with both exchange sides prefetched from the
  // plan.
  kernel_.PlanExchangeRound(env, pop, rng);
  kernel_.ForEachExchangePrefetched(
      [this](HostId i, HostId peer) {
        // PushSumNode::Exchange on the SoA state.
        Mass& a = mass_[i];
        Mass& b = mass_[peer];
        const Mass avg{(a.weight + b.weight) * 0.5,
                       (a.value + b.value) * 0.5};
        a = avg;
        b = avg;
        if (meter_ != nullptr) {
          // Request plus response, one mass payload each.
          meter_->RecordMessage(kMassMessageBytes);
          meter_->RecordMessage(kMassMessageBytes);
        }
      },
      [this](HostId id) { __builtin_prefetch(&mass_[id], 1); });
}

void PushSumSwarm::PlanAsyncTick(const Environment& env, const Population& pop,
                                 Rng& rng, std::vector<net::Message>* out) {
  kernel_.PlanPushRound(env, pop, rng);
  kernel_.ForEachSlot([this, out](HostId src, HostId partner) {
    if (partner == kInvalidHost) return;  // no reachable peer: keep all mass
    Mass& m = mass_[src];
    const Mass half{m.weight * 0.5, m.value * 0.5};
    m = half;
    out->push_back(net::Message{src, partner, half.weight, half.value, 0});
  });
}

Mass PushSumSwarm::TotalAliveMass(const Population& pop) const {
  Mass total;
  for (const HostId id : pop.alive_ids()) total += mass_[id];
  return total;
}

}  // namespace dynagg
