#include "agg/push_sum.h"

#include "sim/round_driver.h"

namespace dynagg {

PushSumSwarm::PushSumSwarm(const std::vector<double>& values, GossipMode mode)
    : nodes_(values.size()), mode_(mode) {
  for (size_t i = 0; i < values.size(); ++i) nodes_[i].Init(values[i]);
}

void PushSumSwarm::RunRound(const Environment& env, const Population& pop,
                            Rng& rng) {
  if (mode_ == GossipMode::kPush) {
    // All emissions are simultaneous: halves land in inboxes, then every
    // host adopts its inbox.
    for (const HostId i : pop.alive_ids()) {
      const Mass out = nodes_[i].EmitPushHalf();
      const HostId peer = env.SamplePeer(i, pop, rng);
      // With no reachable peer the host keeps its whole mass (nothing is
      // transmitted over the air).
      nodes_[peer == kInvalidHost ? i : peer].Deposit(out);
      if (meter_ != nullptr && peer != kInvalidHost) {
        meter_->RecordMessage(kMassMessageBytes);
      }
    }
    for (const HostId i : pop.alive_ids()) nodes_[i].EndRound();
    return;
  }
  // Push/pull: pairwise equalization, applied sequentially in a shuffled
  // order within the round.
  ShuffledAliveOrder(pop, rng, &order_);
  for (const HostId i : order_) {
    const HostId peer = env.SamplePeer(i, pop, rng);
    if (peer == kInvalidHost) continue;
    PushSumNode::Exchange(nodes_[i], nodes_[peer]);
    if (meter_ != nullptr) {
      // Request plus response, one mass payload each.
      meter_->RecordMessage(kMassMessageBytes);
      meter_->RecordMessage(kMassMessageBytes);
    }
  }
}

Mass PushSumSwarm::TotalAliveMass(const Population& pop) const {
  Mass total;
  for (const HostId id : pop.alive_ids()) total += nodes_[id].mass();
  return total;
}

}  // namespace dynagg
