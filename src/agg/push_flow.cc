#include "agg/push_flow.h"

namespace dynagg {

PushFlowSwarm::PushFlowSwarm(const std::vector<double>& values)
    : values_(values),
      flows_(values.size()),
      sent_num_(values.size(), 0.0),
      sent_denom_(values.size(), 0.0),
      recv_num_(values.size(), 0.0),
      recv_denom_(values.size(), 0.0) {}

net::Message PushFlowSwarm::PlanPush(HostId src, HostId dst) {
  EdgeFlow& f = flows_[src][dst];
  const double half_m = effective_mass(src) * 0.5;
  const double half_w = effective_weight(src) * 0.5;
  f.out_num += half_m;
  f.out_denom += half_w;
  sent_num_[src] += half_m;
  sent_denom_[src] += half_w;
  return net::Message{src, dst, f.out_num, f.out_denom, ++f.sent_seq};
}

void PushFlowSwarm::DeliverFlow(const net::Message& m) {
  EdgeFlow& g = flows_[m.dst][m.src];
  // A stale cumulative flow (overtaken in flight) carries strictly less
  // information than what this host already adopted: drop it.
  if (m.tag <= g.seen_seq) return;
  recv_num_[m.dst] += m.a - g.in_num;
  recv_denom_[m.dst] += m.b - g.in_denom;
  g.in_num = m.a;
  g.in_denom = m.b;
  g.seen_seq = m.tag;
}

void PushFlowSwarm::OnJoin(HostId id) {
  // Bilateral edge teardown: each neighbor forgets the edge toward the old
  // incarnation of `id`, reclaiming its own outgoing flow and dropping the
  // adopted inflow. Only then is `id`'s side cleared, so conservation over
  // live hosts holds before and after.
  for (const auto& [peer, edge] : flows_[id]) {
    (void)edge;
    auto it = flows_[peer].find(id);
    if (it == flows_[peer].end()) continue;
    const EdgeFlow& back = it->second;
    sent_num_[peer] -= back.out_num;
    sent_denom_[peer] -= back.out_denom;
    recv_num_[peer] -= back.in_num;
    recv_denom_[peer] -= back.in_denom;
    flows_[peer].erase(it);
  }
  flows_[id].clear();
  sent_num_[id] = 0.0;
  sent_denom_[id] = 0.0;
  recv_num_[id] = 0.0;
  recv_denom_[id] = 0.0;
}

void PushFlowSwarm::RunRound(const Environment& env, const Population& pop,
                             Rng& rng) {
  // Synchronous rounds are the async protocol on a perfect network: plan
  // the partners, then deliver every flow message instantly. In-round
  // sequencing follows plan order, the same sequential semantics the other
  // exchange protocols use.
  kernel_.PlanPushRound(env, pop, rng);
  kernel_.ForEachSlot([this](HostId src, HostId partner) {
    if (partner == kInvalidHost) return;  // no reachable peer this round
    const net::Message msg = PlanPush(src, partner);
    if (meter_ != nullptr) meter_->RecordMessage(kFlowMessageBytes);
    DeliverFlow(msg);
  });
}

void PushFlowSwarm::PlanAsyncTick(const Environment& env,
                                  const Population& pop, Rng& rng,
                                  std::vector<net::Message>* out) {
  kernel_.PlanPushRound(env, pop, rng);
  kernel_.ForEachSlot([this, out](HostId src, HostId partner) {
    if (partner == kInvalidHost) return;
    out->push_back(PlanPush(src, partner));
  });
}

}  // namespace dynagg
