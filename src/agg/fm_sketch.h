// Flajolet-Martin counting sketch with stochastic averaging (Section II.B).
//
// Objects are hashed to a (bin, level) slot: bin uniform over m bins, level
// geometric with P[level = k] = 2^-(k+1). The sketch is the per-bin OR of
// bit strings 2^level. R(bin) — the length of the run of contiguous ones
// starting at bit 0 — satisfies E[R] ~ log2(phi * n/m), giving the count
// estimate n ~ (m / phi) * 2^{avg_bin R}. OR-merging is duplicate-
// insensitive, which is what makes the sketch gossip-able (Considine et
// al.). With m = 64 bins the expected relative error is ~9.7% [Flajolet &
// Martin 1985].
//
// NOTE on the paper's formula: the paper prints both R ~ log2(phi*n) and
// n ~ phi * 2^R, which are mutually inconsistent; we implement the canonical
// n ~ 2^R / phi (see DESIGN.md).

#ifndef DYNAGG_AGG_FM_SKETCH_H_
#define DYNAGG_AGG_FM_SKETCH_H_

#include <cstdint>
#include <vector>

#include "agg/aggregate.h"
#include "common/macros.h"
#include "common/status.h"
#include "common/wire.h"

namespace dynagg {

/// A bit-based FM sketch: `bins` bit strings of `levels` bits each (one
/// uint64 word per bin; levels <= 64).
class FmSketch {
 public:
  /// `bins` >= 1, 1 <= `levels` <= 64.
  FmSketch(int bins, int levels);

  int bins() const { return bins_; }
  int levels() const { return levels_; }

  /// Inserts an object by id: hashes it to a slot under `hash_seed` and sets
  /// the corresponding bit.
  void InsertObject(uint64_t object_id, uint64_t hash_seed);

  /// Sets a specific (bin, level) bit directly.
  void InsertSlot(int bin, int level);

  bool TestSlot(int bin, int level) const;

  /// Bitwise-OR merge; `other` must have identical geometry.
  void MergeOr(const FmSketch& other);

  /// R for `bin`: the number of contiguous one bits starting at level 0.
  int RunLength(int bin) const;

  /// Canonical FM estimate: (bins / phi) * 2^{mean run length}.
  double EstimateCount() const;

  /// Total set bits (diagnostics).
  int PopCount() const;

  void Clear();

  bool operator==(const FmSketch& other) const {
    return bins_ == other.bins_ && levels_ == other.levels_ &&
           words_ == other.words_;
  }

  /// Size in bytes of the Serialize output (over-the-air payload size).
  int64_t SerializedBytes() const;

  /// Serializes geometry + bit words.
  void Serialize(BufWriter* out) const;
  /// Parses a sketch previously produced by Serialize.
  static Result<FmSketch> Deserialize(BufReader* in);

 private:
  int bins_;
  int levels_;
  uint64_t level_mask_;  // low `levels_` bits set
  std::vector<uint64_t> words_;
};

}  // namespace dynagg

#endif  // DYNAGG_AGG_FM_SKETCH_H_
