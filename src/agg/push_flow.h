// Push-Flow: loss-tolerant distributed averaging via conserved edge flows.
//
// Push-sum conserves MASS: every message carries mass out of the sender,
// so a lost message destroys mass and the network converges to the wrong
// average (Jesus et al.'s survey names this the canonical failure of
// mass-conserving gossip). Push-flow (after the Skywing PushFlowProcessor)
// instead conserves FLOW: host i keeps, per neighbor j, the cumulative
// flow o_ij = <num, denom> of everything it has ever pushed toward j, and
// separately its view r_ij of what j has pushed toward it. Its effective
// state is its initial value minus the outflow plus the seen inflow:
//
//   m_i = v_i - sum_j o_ij.num + sum_j r_ij.num
//   w_i = 1   - sum_j o_ij.denom + sum_j r_ij.denom
//   estimate_i = m_i / w_i
//
// A push toward j adds half the effective state to o_ij and sends the
// CUMULATIVE o_ij (not a delta); the receiver overwrites its r view with
// it. The two directions of an edge are owned by different hosts and
// never write each other's variables, so concurrent opposite pushes on
// one edge compose cleanly (a single shared antisymmetric edge variable,
// as in the original processor, loses its owner's concurrent push every
// time an adoption overwrites it — under random gossip pairing that
// injects an error of half the effective mass about once per tick and
// puts a floor under convergence). Because every message restates the
// whole cumulative flow, a lost message costs nothing durable — the next
// push on the same edge self-heals the receiver's view — and the
// per-direction sequence number makes reordered deliveries harmless
// (stale cumulative flows are dropped). Whenever every r matches its o,
// sum_i m_i = sum_i v_i exactly. This is the control protocol of the
// async driver's loss-rate sweeps, with push-sum as the victim.

#ifndef DYNAGG_AGG_PUSH_FLOW_H_
#define DYNAGG_AGG_PUSH_FLOW_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "env/environment.h"
#include "net/message.h"
#include "sim/bandwidth.h"
#include "sim/population.h"
#include "sim/round_kernel.h"

namespace dynagg {

/// Payload of one flow message over the air: the cumulative <num, denom>
/// outgoing flow plus its per-direction sequence number.
inline constexpr int64_t kFlowMessageBytes = 2 * sizeof(double) +
                                             sizeof(uint64_t);

/// A population of push-flow states driven on the shared plan -> apply
/// round kernel (synchronous rounds) or message-by-message through the
/// async driver.
class PushFlowSwarm {
 public:
  /// One host per entry of `values`, each starting with weight 1.
  explicit PushFlowSwarm(const std::vector<double>& values);

  /// Synchronous round (`driver = rounds` / `trace`): plans push partners
  /// and delivers every flow message instantly.
  void RunRound(const Environment& env, const Population& pop, Rng& rng);

  /// Message-level gossip tick (`driver = async`): records each matched
  /// initiator's push in its own outgoing edge flow and plans the
  /// message, without delivering anything. Delivery (possibly late,
  /// reordered, or never) goes through DeliverFlow.
  void PlanAsyncTick(const Environment& env, const Population& pop, Rng& rng,
                     std::vector<net::Message>* out);

  /// Applies one delivered flow message to the receiver: overwrites its
  /// view of the sender's cumulative outgoing flow, ignoring stale
  /// sequence numbers from reordered deliveries.
  void DeliverFlow(const net::Message& m);

  /// Current estimate of the network-wide average at `id`. Falls back to
  /// the initial value should the effective weight ever be non-positive
  /// (cannot happen through protocol operation, but keeps the estimate
  /// total like push-sum's).
  double Estimate(HostId id) const {
    const double w = effective_weight(id);
    return w > 0.0 ? effective_mass(id) / w : values_[id];
  }

  int size() const { return static_cast<int>(values_.size()); }
  double initial_value(HostId id) const { return values_[id]; }

  /// Effective <mass, weight> at `id` (diagnostics and conservation
  /// tests): the initial state minus the outflow plus the seen inflow.
  double effective_mass(HostId id) const {
    return values_[id] - sent_num_[id] + recv_num_[id];
  }
  double effective_weight(HostId id) const {
    return 1.0 - sent_denom_[id] + recv_denom_[id];
  }

  /// Optionally records over-the-air traffic under the synchronous
  /// drivers (the async driver meters at send time itself). Pass nullptr
  /// to disable. The meter must outlive the swarm.
  void set_traffic_meter(TrafficMeter* meter) { meter_ = meter; }

  /// Churn-join reset: tears down every edge incident to `id` on BOTH
  /// endpoints. A self-only reset would deadlock the reborn host's
  /// outbound direction: its sent_seq restarts at 0 while each neighbor's
  /// seen_seq stays high, so the neighbor would drop every future push as
  /// stale. Dropping the neighbor's half instead returns the flow it had
  /// pushed toward `id` (and forgets the inflow it had adopted from the
  /// old incarnation), restoring conservation over the live hosts.
  void OnJoin(HostId id);

 private:
  /// One gossiped edge as its owner sees it: the cumulative flow pushed
  /// toward the neighbor (out_*, only this host writes it, sent_seq
  /// counts the pushes) and the adopted view of the neighbor's cumulative
  /// flow back (in_*, only DeliverFlow writes it, seen_seq guards against
  /// reordering). Both accumulations are monotone.
  struct EdgeFlow {
    double out_num = 0.0;
    double out_denom = 0.0;
    double in_num = 0.0;
    double in_denom = 0.0;
    uint64_t sent_seq = 0;
    uint64_t seen_seq = 0;
  };

  /// Moves half of `src`'s effective state into its outgoing flow toward
  /// `dst` and returns the message restating that cumulative flow.
  net::Message PlanPush(HostId src, HostId dst);

  std::vector<double> values_;  // immutable initial values
  /// flows_[i][j]: host i's state for edge i<->j. Sparse: a host only
  /// ever tracks neighbors it has actually exchanged with.
  std::vector<std::unordered_map<HostId, EdgeFlow>> flows_;
  // Running sums of flows_[i]'s out_* resp. in_* so Estimate() is O(1).
  std::vector<double> sent_num_;
  std::vector<double> sent_denom_;
  std::vector<double> recv_num_;
  std::vector<double> recv_denom_;
  TrafficMeter* meter_ = nullptr;
  RoundKernel kernel_;
};

}  // namespace dynagg

#endif  // DYNAGG_AGG_PUSH_FLOW_H_
