#include "agg/moments.h"

#include <cmath>

namespace dynagg {

namespace {
std::vector<double> Squares(const std::vector<double>& values) {
  std::vector<double> squares(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    squares[i] = values[i] * values[i];
  }
  return squares;
}
}  // namespace

DynamicMomentsSwarm::DynamicMomentsSwarm(const std::vector<double>& values,
                                         const PsrParams& params)
    : mean_(values, params), square_(Squares(values), params) {}

void DynamicMomentsSwarm::RunRound(const Environment& env,
                                   const Population& pop, Rng& rng) {
  mean_.RunRound(env, pop, rng);
  square_.RunRound(env, pop, rng);
}

void DynamicMomentsSwarm::SetLocalValue(HostId id, double value) {
  mean_.SetLocalValue(id, value);
  square_.SetLocalValue(id, value * value);
}

double DynamicMomentsSwarm::EstimateVariance(HostId id) const {
  const double mean = mean_.Estimate(id);
  const double variance = square_.Estimate(id) - mean * mean;
  return variance > 0.0 ? variance : 0.0;
}

double DynamicMomentsSwarm::EstimateStdDev(HostId id) const {
  return std::sqrt(EstimateVariance(id));
}

}  // namespace dynagg
