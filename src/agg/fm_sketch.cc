#include "agg/fm_sketch.h"

#include <cmath>

#include "common/hash.h"

namespace dynagg {

FmSketch::FmSketch(int bins, int levels)
    : bins_(bins),
      levels_(levels),
      level_mask_(levels >= 64 ? ~0ull : ((1ull << levels) - 1)),
      words_(bins, 0) {
  DYNAGG_CHECK_GE(bins, 1);
  DYNAGG_CHECK_GE(levels, 1);
  DYNAGG_CHECK_LE(levels, 64);
}

void FmSketch::InsertObject(uint64_t object_id, uint64_t hash_seed) {
  const SketchSlot slot =
      SketchPlace(object_id, hash_seed, bins_, levels_ - 1);
  InsertSlot(slot.bin, slot.level);
}

void FmSketch::InsertSlot(int bin, int level) {
  DYNAGG_DCHECK(bin >= 0 && bin < bins_);
  DYNAGG_DCHECK(level >= 0 && level < levels_);
  words_[bin] |= 1ull << level;
}

bool FmSketch::TestSlot(int bin, int level) const {
  DYNAGG_DCHECK(bin >= 0 && bin < bins_);
  DYNAGG_DCHECK(level >= 0 && level < levels_);
  return (words_[bin] >> level) & 1ull;
}

void FmSketch::MergeOr(const FmSketch& other) {
  DYNAGG_CHECK_EQ(bins_, other.bins_);
  DYNAGG_CHECK_EQ(levels_, other.levels_);
  for (int b = 0; b < bins_; ++b) words_[b] |= other.words_[b];
}

int FmSketch::RunLength(int bin) const {
  DYNAGG_DCHECK(bin >= 0 && bin < bins_);
  // The run of ones from bit 0 ends at the first zero; a fully-set bin has
  // run length `levels_`.
  const uint64_t inverted = ~words_[bin] & level_mask_;
  if (inverted == 0) return levels_;
  return __builtin_ctzll(inverted);
}

double FmSketch::EstimateCount() const {
  double total_run = 0.0;
  for (int b = 0; b < bins_; ++b) total_run += RunLength(b);
  const double mean_run = total_run / bins_;
  return static_cast<double>(bins_) / kFmPhi * std::exp2(mean_run);
}

int FmSketch::PopCount() const {
  int bits = 0;
  for (const uint64_t w : words_) bits += __builtin_popcountll(w);
  return bits;
}

void FmSketch::Clear() {
  for (auto& w : words_) w = 0;
}

namespace {
int VarintLength(uint64_t v) {
  int len = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++len;
  }
  return len;
}
}  // namespace

int64_t FmSketch::SerializedBytes() const {
  int64_t total = VarintLength(static_cast<uint64_t>(bins_)) +
                  VarintLength(static_cast<uint64_t>(levels_));
  for (const uint64_t w : words_) total += VarintLength(w);
  return total;
}

void FmSketch::Serialize(BufWriter* out) const {
  out->PutVarint(static_cast<uint64_t>(bins_));
  out->PutVarint(static_cast<uint64_t>(levels_));
  for (const uint64_t w : words_) out->PutVarint(w);
}

Result<FmSketch> FmSketch::Deserialize(BufReader* in) {
  uint64_t bins = 0;
  uint64_t levels = 0;
  DYNAGG_RETURN_IF_ERROR(in->ReadVarint(&bins));
  DYNAGG_RETURN_IF_ERROR(in->ReadVarint(&levels));
  if (bins < 1 || bins > (1u << 20) || levels < 1 || levels > 64) {
    return Status::Corruption("FmSketch: implausible geometry");
  }
  FmSketch sketch(static_cast<int>(bins), static_cast<int>(levels));
  for (uint64_t b = 0; b < bins; ++b) {
    uint64_t word = 0;
    DYNAGG_RETURN_IF_ERROR(in->ReadVarint(&word));
    if ((word & ~sketch.level_mask_) != 0) {
      return Status::Corruption("FmSketch: bits above level mask");
    }
    sketch.words_[b] = word;
  }
  return sketch;
}

}  // namespace dynagg
