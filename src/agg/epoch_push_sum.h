// Epoch-based Push-Sum: the "simplest form of dynamic aggregation"
// (Section II.C), implemented as a baseline.
//
// The network periodically resets the aggregation to its initial state.
// Without a leader this relies on weak clock synchronization: every message
// carries an epoch counter; a host that sees a higher epoch abandons its
// in-progress state, adopts the epoch, and restarts from its initial value.
// The estimate reported between resets is the snapshot taken when the
// previous epoch completed.
//
// The paper's critique, which ablation_epoch quantifies: the optimal epoch
// length is tied to the (unknown) network size — too short and the protocol
// resets before converging; too long and results are needlessly coarse —
// and mobile hosts migrating between cliques carry mismatched epoch numbers
// that disrupt the destination clique's computation.

#ifndef DYNAGG_AGG_EPOCH_PUSH_SUM_H_
#define DYNAGG_AGG_EPOCH_PUSH_SUM_H_

#include <cstdint>
#include <vector>

#include "agg/aggregate.h"
#include "agg/push_sum.h"
#include "common/rng.h"
#include "common/types.h"
#include "env/environment.h"
#include "sim/population.h"
#include "sim/round_kernel.h"

namespace dynagg {

/// Epoch-based Push-Sum configuration.
struct EpochParams {
  /// Local rounds per epoch (the reset period).
  int epoch_length = 10;
  GossipMode mode = GossipMode::kPushPull;
};

/// Per-host epoch-annotated Push-Sum state.
class EpochPushSumNode {
 public:
  /// (Re)initializes with local value `v0` and clock phase `phase` (hosts
  /// whose clocks disagree start at different phases, modelling the weak
  /// synchronization of Section II.C).
  void Init(double v0, int phase) {
    initial_value_ = v0;
    tick_ = phase;
    epoch_ = 0;
    snapshot_ = v0;
    has_snapshot_ = false;
    state_.Init(v0);
  }

  uint64_t epoch() const { return epoch_; }
  int tick() const { return tick_; }

  /// Local clock tick; rolls the epoch over every `epoch_length` ticks,
  /// snapshotting the completed epoch's estimate.
  void Tick(int epoch_length) {
    ++tick_;
    if (tick_ >= epoch_length) {
      tick_ = 0;
      AdvanceToEpoch(epoch_ + 1);
    }
  }

  /// Called when a peer with a higher epoch is encountered; the in-progress
  /// state is abandoned (its mass is lost — the epoch-migration cost the
  /// paper describes) and the local clock re-synchronizes.
  void AdvanceToEpoch(uint64_t target) {
    if (target <= epoch_) return;
    snapshot_ = state_.Estimate();
    has_snapshot_ = true;
    epoch_ = target;
    tick_ = 0;
    state_.Init(initial_value_);
  }

  /// Churn-join reset: restarts at epoch 0, phase 0 with the pristine
  /// initial value. A newborn re-synchronizes the way Section II.C
  /// describes — its first higher-epoch peer drags it forward.
  void Rejoin() { Init(initial_value_, 0); }

  /// The value reported to the application: the last completed epoch's
  /// snapshot (the running state before the first epoch completes).
  double Estimate() const {
    return has_snapshot_ ? snapshot_ : state_.Estimate();
  }

  /// The in-progress (current epoch) estimate.
  double RunningEstimate() const { return state_.Estimate(); }

  PushSumNode& state() { return state_; }
  const PushSumNode& state() const { return state_; }

 private:
  PushSumNode state_;
  double initial_value_ = 0.0;
  double snapshot_ = 0.0;
  bool has_snapshot_ = false;
  uint64_t epoch_ = 0;
  int tick_ = 0;
};

/// A population of epoch-annotated Push-Sum nodes.
class EpochPushSumSwarm {
 public:
  /// `phases[i]` gives host i's initial clock phase; pass an empty vector
  /// for synchronized clocks.
  EpochPushSumSwarm(const std::vector<double>& values,
                    const EpochParams& params,
                    const std::vector<int>& phases = {});

  /// One gossip iteration: exchanges are only effective between hosts in
  /// the same epoch; an epoch mismatch drags the laggard forward and costs
  /// both hosts that round's exchange.
  void RunRound(const Environment& env, const Population& pop, Rng& rng);

  double Estimate(HostId id) const { return nodes_[id].Estimate(); }
  double RunningEstimate(HostId id) const {
    return nodes_[id].RunningEstimate();
  }
  uint64_t epoch(HostId id) const { return nodes_[id].epoch(); }
  int size() const { return static_cast<int>(nodes_.size()); }

  /// Churn-join reset: host `id` restarts at epoch 0 (see
  /// EpochPushSumNode::Rejoin). Touches only `id`'s own node.
  void OnJoin(HostId id) { nodes_[id].Rejoin(); }

 private:
  std::vector<EpochPushSumNode> nodes_;
  EpochParams params_;
  RoundKernel kernel_;
};

}  // namespace dynagg

#endif  // DYNAGG_AGG_EPOCH_PUSH_SUM_H_
