#include "agg/count_sketch_reset.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"

namespace dynagg {

void CountSketchResetNode::Init(const CsrParams& params, uint64_t host_key,
                                int64_t multiplicity) {
  DYNAGG_CHECK_GE(params.bins, 1);
  DYNAGG_CHECK_GE(params.levels, 1);
  DYNAGG_CHECK_LE(params.levels, kCsrMaxLevels);
  DYNAGG_CHECK_GE(multiplicity, 0);
  bins_ = params.bins;
  levels_ = params.levels;
  cutoff_enabled_ = params.cutoff_enabled;
  for (int k = 0; k < levels_; ++k) {
    const double f = params.cutoff_base + params.cutoff_slope * k;
    const double clamped = std::clamp(f, 0.0, double{kCsrCounterCap});
    cutoff_[k] = static_cast<uint8_t>(clamped);
  }
  counters_.assign(static_cast<size_t>(bins_) * levels_, kCsrInfinity);
  owned_.clear();
  // Owned slots use the same deterministic placement as the static
  // Count-Sketch, so both protocols register identical object populations
  // (this is exploited by the cross-validation tests).
  for (int64_t idx = 0; idx < multiplicity; ++idx) {
    const uint64_t object_id =
        HashCombine(host_key, static_cast<uint64_t>(idx));
    const SketchSlot slot =
        SketchPlace(object_id, params.hash_seed, bins_, levels_ - 1);
    owned_.push_back(slot.bin * levels_ + slot.level);
  }
  std::sort(owned_.begin(), owned_.end());
  owned_.erase(std::unique(owned_.begin(), owned_.end()), owned_.end());
  for (const int32_t offset : owned_) counters_[offset] = 0;
}

void CountSketchResetNode::AgeCounters() {
  // Branch-free saturating increment: values below the cap advance, the cap
  // and the infinity sentinel stay. Owned slots are restored afterwards
  // (cheaper than testing membership per byte; the loop vectorizes).
  for (auto& c : counters_) c += (c < kCsrCounterCap) ? 1 : 0;
  for (const int32_t offset : owned_) counters_[offset] = 0;
}

void CountSketchResetNode::MergeFrom(const CountSketchResetNode& other) {
  DYNAGG_CHECK_EQ(bins_, other.bins_);
  DYNAGG_CHECK_EQ(levels_, other.levels_);
  const size_t n = counters_.size();
  for (size_t i = 0; i < n; ++i) {
    counters_[i] = std::min(counters_[i], other.counters_[i]);
  }
}

void CountSketchResetNode::ExchangeMerge(CountSketchResetNode& a,
                                         CountSketchResetNode& b) {
  DYNAGG_CHECK_EQ(a.bins_, b.bins_);
  DYNAGG_CHECK_EQ(a.levels_, b.levels_);
  const size_t n = a.counters_.size();
  for (size_t i = 0; i < n; ++i) {
    const uint8_t m = std::min(a.counters_[i], b.counters_[i]);
    a.counters_[i] = m;
    b.counters_[i] = m;
  }
}

bool CountSketchResetNode::BitSet(int bin, int level) const {
  const uint8_t c = counter(bin, level);
  if (cutoff_enabled_) return c <= cutoff_[level];
  return c != kCsrInfinity;
}

int CountSketchResetNode::RunLength(int bin) const {
  int run = 0;
  while (run < levels_ && BitSet(bin, run)) ++run;
  return run;
}

double CountSketchResetNode::EstimateCount() const {
  double total_run = 0.0;
  for (int b = 0; b < bins_; ++b) total_run += RunLength(b);
  const double mean_run = total_run / bins_;
  return static_cast<double>(bins_) / kFmPhi * std::exp2(mean_run);
}

FmSketch CountSketchResetNode::DeriveBits() const {
  FmSketch bits(bins_, levels_);
  for (int b = 0; b < bins_; ++b) {
    for (int k = 0; k < levels_; ++k) {
      if (BitSet(b, k)) bits.InsertSlot(b, k);
    }
  }
  return bits;
}

namespace {
int VarintLength(uint64_t v) {
  int len = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++len;
  }
  return len;
}
}  // namespace

int64_t CountSketchResetNode::SerializedBytes() const {
  const auto payload = static_cast<uint64_t>(counters_.size());
  return VarintLength(static_cast<uint64_t>(bins_)) +
         VarintLength(static_cast<uint64_t>(levels_)) +
         VarintLength(payload) + static_cast<int64_t>(payload);
}

void CountSketchResetNode::Serialize(BufWriter* out) const {
  out->PutVarint(static_cast<uint64_t>(bins_));
  out->PutVarint(static_cast<uint64_t>(levels_));
  out->PutBytes(std::string_view(
      reinterpret_cast<const char*>(counters_.data()), counters_.size()));
}

Status CountSketchResetNode::MergeSerialized(BufReader* in) {
  uint64_t bins = 0;
  uint64_t levels = 0;
  DYNAGG_RETURN_IF_ERROR(in->ReadVarint(&bins));
  DYNAGG_RETURN_IF_ERROR(in->ReadVarint(&levels));
  if (static_cast<int>(bins) != bins_ ||
      static_cast<int>(levels) != levels_) {
    return Status::InvalidArgument("CSR: geometry mismatch");
  }
  std::vector<uint8_t> incoming;
  DYNAGG_RETURN_IF_ERROR(in->ReadBytes(&incoming));
  if (incoming.size() != counters_.size()) {
    return Status::Corruption("CSR: counter payload size mismatch");
  }
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] = std::min(counters_[i], incoming[i]);
  }
  return Status::OK();
}

CsrSwarm::CsrSwarm(const std::vector<int64_t>& multiplicities,
                   const CsrParams& params)
    : nodes_(multiplicities.size()),
      multiplicities_(multiplicities),
      params_(params) {
  for (size_t i = 0; i < multiplicities.size(); ++i) {
    nodes_[i].Init(params_, /*host_key=*/i, multiplicities[i]);
  }
}

void CsrSwarm::OnJoin(HostId id) {
  nodes_[id].Init(params_, /*host_key=*/static_cast<uint64_t>(id),
                  multiplicities_[id]);
}

void CsrSwarm::RunRound(const Environment& env, const Population& pop,
                        Rng& rng) {
  // Fig 5 phase 1: all hosts age their counters.
  for (const HostId i : pop.alive_ids()) nodes_[i].AgeCounters();
  // Phase 2: exchanges, applied sequentially in shuffled plan order
  // (min-merge is idempotent and monotone, so in-round ordering only
  // affects the speed of information spread, not the converged state).
  kernel_.PlanExchangeRound(env, pop, rng);
  kernel_.ForEachExchange([this](HostId i, HostId peer) {
    if (meter_ != nullptr) {
      meter_->RecordMessage(nodes_[i].SerializedBytes());
    }
    if (params_.mode == GossipMode::kPushPull) {
      if (meter_ != nullptr) {
        meter_->RecordMessage(nodes_[peer].SerializedBytes());
      }
      CountSketchResetNode::ExchangeMerge(nodes_[i], nodes_[peer]);
    } else {
      nodes_[peer].MergeFrom(nodes_[i]);
    }
  });
}

}  // namespace dynagg
