// Dynamic distribution estimation: CDF points and quantiles.
//
// The fraction of hosts whose value lies at or below a threshold t is the
// average of the indicator [v_i <= t] — so each CDF point is itself a
// dynamic average, maintainable with Push-Sum-Revert. A bank of K
// thresholds yields a live histogram of the group's value distribution from
// which any quantile can be interpolated; like every protocol in the
// paper's class, it continuously tracks membership changes (departing
// outliers stop distorting the tails within the reversion time constant).
//
// Cost: K reverting averages = K extra doubles per gossip message — still
// far below one counting sketch (see tab_bandwidth).

#ifndef DYNAGG_AGG_QUANTILES_H_
#define DYNAGG_AGG_QUANTILES_H_

#include <memory>
#include <vector>

#include "agg/push_sum_revert.h"
#include "common/macros.h"
#include "common/rng.h"
#include "common/types.h"
#include "env/environment.h"
#include "sim/population.h"

namespace dynagg {

/// Dynamic CDF configuration.
struct QuantileParams {
  /// Thresholds t_1 < t_2 < ... < t_K at which the CDF is tracked.
  std::vector<double> thresholds;
  /// Underlying Push-Sum-Revert configuration.
  PsrParams psr;
};

/// Equally spaced thresholds covering [lo, hi] (K >= 2).
std::vector<double> UniformThresholds(double lo, double hi, int count);

/// A population maintaining one reverting average per CDF threshold.
class DynamicCdfSwarm {
 public:
  DynamicCdfSwarm(const std::vector<double>& values,
                  const QuantileParams& params);

  /// One gossip iteration of every threshold instance.
  void RunRound(const Environment& env, const Population& pop, Rng& rng);

  /// Updates host `id`'s local value (all indicators re-anchor).
  void SetLocalValue(HostId id, double value);

  /// Estimated P[value <= thresholds[t]] at host `id`, clamped to [0, 1].
  double EstimateCdf(HostId id, int threshold_index) const;

  /// Estimated q-quantile (q in [0, 1]) at host `id`, by monotone linear
  /// interpolation between thresholds. Clamps to the threshold range.
  double EstimateQuantile(HostId id, double q) const;

  int num_thresholds() const {
    return static_cast<int>(params_.thresholds.size());
  }
  double threshold(int t) const { return params_.thresholds[t]; }
  int size() const { return instances_.front()->size(); }

  /// Forwards the round kernel's scatter thread count to every instance.
  void set_intra_round_threads(int threads) {
    for (auto& instance : instances_) {
      instance->set_intra_round_threads(threads);
    }
  }

 private:
  QuantileParams params_;
  // One PSR instance per threshold; unique_ptr keeps swarms stable.
  std::vector<std::unique_ptr<PushSumRevertSwarm>> instances_;
};

}  // namespace dynagg

#endif  // DYNAGG_AGG_QUANTILES_H_
