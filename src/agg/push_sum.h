// Push-Sum: Kempe et al.'s static distributed averaging protocol (Fig 1).
//
// Every host maintains a mass <weight, value>, initialized to <1, v0>. Each
// round it sends half of its mass to one random peer and half to itself, then
// replaces its mass with the sum of everything received. The estimate
// value/weight converges exponentially to the system-wide average as long as
// mass is conserved. This is the static baseline that Push-Sum-Revert
// (push_sum_revert.h) extends for dynamic networks.

#ifndef DYNAGG_AGG_PUSH_SUM_H_
#define DYNAGG_AGG_PUSH_SUM_H_

#include <vector>

#include "agg/aggregate.h"
#include "common/rng.h"
#include "common/types.h"
#include "env/environment.h"
#include "net/message.h"
#include "sim/bandwidth.h"
#include "sim/population.h"
#include "sim/round_kernel.h"

namespace dynagg {

/// Payload size of one mass message over the air: two IEEE-754 doubles.
inline constexpr int64_t kMassMessageBytes = 2 * sizeof(double);

/// The mass exchanged by averaging protocols: a weight and a weighted value.
struct Mass {
  double weight = 0.0;
  double value = 0.0;

  Mass& operator+=(const Mass& other) {
    weight += other.weight;
    value += other.value;
    return *this;
  }
};

/// Per-host Push-Sum state machine. Value-semantic; swarms keep nodes in a
/// contiguous vector.
class PushSumNode {
 public:
  /// (Re)initializes with local value `v0` and weight 1.
  void Init(double v0) {
    mass_ = Mass{1.0, v0};
    inbox_ = Mass{};
    initial_value_ = v0;
  }

  /// Push-mode round, step 2 (Fig 1), emission only: removes the full mass
  /// and returns one half of it. The caller owes TWO deposits of the
  /// returned half — one to this host's own inbox, one to the peer — which
  /// is how the round kernel's scatter phase applies them in the exact
  /// sequential order (see RoundKernel::ScatterDeposits).
  Mass TakePushHalf() {
    const Mass half{mass_.weight * 0.5, mass_.value * 0.5};
    mass_ = Mass{};
    return half;
  }

  /// Push-mode round, step 2 (Fig 1): removes the full mass, deposits half
  /// into the host's own inbox, and returns the half destined for the peer.
  Mass EmitPushHalf() {
    const Mass half = TakePushHalf();
    inbox_ += half;
    return half;
  }

  /// Accumulates a received message into the inbox (steps 3-5 of Fig 1).
  void Deposit(const Mass& m) { inbox_ += m; }

  /// Adopts the summed inbox as the next round's mass.
  void EndRound() {
    mass_ = inbox_;
    inbox_ = Mass{};
  }

  /// Push/pull exchange: equalizes the two hosts' masses (each transfers
  /// half the difference, Section III.A).
  static void Exchange(PushSumNode& a, PushSumNode& b) {
    const Mass avg{(a.mass_.weight + b.mass_.weight) * 0.5,
                   (a.mass_.value + b.mass_.value) * 0.5};
    a.mass_ = avg;
    b.mass_ = avg;
  }

  /// Current estimate of the network-wide average. Falls back to the
  /// initial value while the host holds no weight (possible transiently in
  /// push mode).
  double Estimate() const {
    return mass_.weight > 0.0 ? mass_.value / mass_.weight : initial_value_;
  }

  const Mass& mass() const { return mass_; }
  double initial_value() const { return initial_value_; }

 private:
  Mass mass_;
  Mass inbox_;
  double initial_value_ = 0.0;
};

/// A population of Push-Sum states driven one gossip round at a time on the
/// shared plan -> apply round kernel.
///
/// Structure-of-arrays layout (mass / inbox / initial value in separate
/// contiguous arrays): a round's random accesses only touch the 16-byte
/// mass or inbox entry of a host, not a 40-byte node, so at the paper's
/// 100k-host scale the hot array stays cache-resident and the kernel's
/// prefetched scatter hits instead of thrashing. Arithmetic is exactly
/// PushSumNode's, element by element — estimates and mass totals are
/// bit-identical to the node-per-host layout.
class PushSumSwarm {
 public:
  /// One host per entry of `values`; `mode` selects push or push/pull.
  PushSumSwarm(const std::vector<double>& values, GossipMode mode);

  /// Executes one gossip iteration over the alive hosts.
  void RunRound(const Environment& env, const Population& pop, Rng& rng);

  /// Current estimate of the network-wide average at `id` (PushSumNode
  /// semantics: initial value while the host holds no weight).
  double Estimate(HostId id) const {
    return mass_[id].weight > 0.0 ? mass_[id].value / mass_[id].weight
                                  : initial_[id];
  }
  int size() const { return static_cast<int>(mass_.size()); }
  GossipMode mode() const { return mode_; }
  const Mass& mass(HostId id) const { return mass_[id]; }
  double initial_value(HostId id) const { return initial_[id]; }

  /// Total mass over alive hosts (conservation diagnostics and tests).
  Mass TotalAliveMass(const Population& pop) const;

  /// Message-level gossip tick (`driver = async`, push mode only): every
  /// matched host halves its mass in place and plans one message carrying
  /// the other half to its partner; unmatched hosts keep everything. No
  /// state moves between hosts here — delivery happens whenever (and if)
  /// the network model hands each message to DeliverMass. A half lost in
  /// flight is mass destroyed, which is exactly the loss sensitivity the
  /// loss-rate sweeps measure.
  void PlanAsyncTick(const Environment& env, const Population& pop, Rng& rng,
                     std::vector<net::Message>* out);

  /// Applies one delivered mass message (async driver).
  void DeliverMass(const net::Message& m) { mass_[m.dst] += Mass{m.a, m.b}; }

  /// Churn-join reset: (re)initializes host `id` to its pristine
  /// <1, v0> mass — first arrivals and ID-reuse rebirths both start
  /// fresh. Touches only `id`'s own slots (no RNG, no shared state), so
  /// existing hosts and the byte-identity contract are unaffected.
  void OnJoin(HostId id) {
    mass_[id] = Mass{1.0, initial_[id]};
    inbox_[id] = Mass{};
  }

  /// Optionally records over-the-air traffic (self-messages excluded).
  /// Pass nullptr to disable. The meter must outlive the swarm.
  void set_traffic_meter(TrafficMeter* meter) { meter_ = meter; }

  /// Worker threads for the push-mode deposit scatter (bit-identical at
  /// any count; push/pull rounds are inherently sequential and ignore it).
  void set_intra_round_threads(int threads) {
    kernel_.set_intra_round_threads(threads);
  }

 private:
  // SoA per-host state; indexes are host ids.
  std::vector<Mass> mass_;
  std::vector<Mass> inbox_;
  std::vector<double> initial_;
  GossipMode mode_;
  TrafficMeter* meter_ = nullptr;
  RoundKernel kernel_;
  std::vector<Mass> outbox_;  // scratch: per-slot push payloads
};

}  // namespace dynagg

#endif  // DYNAGG_AGG_PUSH_SUM_H_
