#include "agg/quantiles.h"

#include <algorithm>

namespace dynagg {

std::vector<double> UniformThresholds(double lo, double hi, int count) {
  DYNAGG_CHECK_GE(count, 2);
  DYNAGG_CHECK_LT(lo, hi);
  std::vector<double> thresholds(count);
  for (int i = 0; i < count; ++i) {
    thresholds[i] = lo + (hi - lo) * i / (count - 1);
  }
  return thresholds;
}

namespace {
std::vector<double> Indicators(const std::vector<double>& values,
                               double threshold) {
  std::vector<double> ind(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    ind[i] = values[i] <= threshold ? 1.0 : 0.0;
  }
  return ind;
}
}  // namespace

DynamicCdfSwarm::DynamicCdfSwarm(const std::vector<double>& values,
                                 const QuantileParams& params)
    : params_(params) {
  DYNAGG_CHECK_GE(params_.thresholds.size(), 2u);
  DYNAGG_CHECK(
      std::is_sorted(params_.thresholds.begin(), params_.thresholds.end()));
  instances_.reserve(params_.thresholds.size());
  for (const double t : params_.thresholds) {
    instances_.push_back(std::make_unique<PushSumRevertSwarm>(
        Indicators(values, t), params_.psr));
  }
}

void DynamicCdfSwarm::RunRound(const Environment& env, const Population& pop,
                               Rng& rng) {
  for (auto& instance : instances_) instance->RunRound(env, pop, rng);
}

void DynamicCdfSwarm::SetLocalValue(HostId id, double value) {
  for (size_t t = 0; t < params_.thresholds.size(); ++t) {
    instances_[t]->SetLocalValue(id,
                                 value <= params_.thresholds[t] ? 1.0 : 0.0);
  }
}

double DynamicCdfSwarm::EstimateCdf(HostId id, int threshold_index) const {
  DYNAGG_CHECK(threshold_index >= 0 &&
               threshold_index < num_thresholds());
  return std::clamp(instances_[threshold_index]->Estimate(id), 0.0, 1.0);
}

double DynamicCdfSwarm::EstimateQuantile(HostId id, double q) const {
  DYNAGG_CHECK_GE(q, 0.0);
  DYNAGG_CHECK_LE(q, 1.0);
  // Enforce monotonicity over the (noisy) per-threshold estimates with a
  // running maximum, then interpolate.
  const int k = num_thresholds();
  double prev_cdf = 0.0;
  double prev_t = params_.thresholds.front();
  for (int t = 0; t < k; ++t) {
    double cdf = std::max(prev_cdf, EstimateCdf(id, t));
    const double threshold = params_.thresholds[t];
    if (cdf >= q) {
      if (t == 0 || cdf == prev_cdf) return threshold;
      const double frac = (q - prev_cdf) / (cdf - prev_cdf);
      return prev_t + frac * (threshold - prev_t);
    }
    prev_cdf = cdf;
    prev_t = threshold;
  }
  return params_.thresholds.back();
}

}  // namespace dynagg
