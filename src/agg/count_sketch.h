// Count-Sketch: Considine et al.'s static gossip counting/summation
// (Section II.B, Fig 2).
//
// Every host seeds an FM sketch with its own objects — one object for
// counting hosts, v objects for registering a value v (the "multiple
// insertions" sum technique, Section IV.B). Rounds exchange sketches and
// OR-merge them; duplicate insensitivity makes the estimate stable under
// arbitrary re-delivery. The estimate is monotone: host departures are
// never forgotten, which is exactly the limitation Count-Sketch-Reset
// removes.

#ifndef DYNAGG_AGG_COUNT_SKETCH_H_
#define DYNAGG_AGG_COUNT_SKETCH_H_

#include <cstdint>
#include <vector>

#include "agg/aggregate.h"
#include "agg/fm_sketch.h"
#include "common/rng.h"
#include "common/types.h"
#include "env/environment.h"
#include "sim/bandwidth.h"
#include "sim/population.h"
#include "sim/round_kernel.h"

namespace dynagg {

/// Static Count-Sketch configuration.
struct CountSketchParams {
  /// Stochastic-averaging bins m (64 -> ~9.7% expected error).
  int bins = 64;
  /// Bit-string length per bin.
  int levels = 32;
  GossipMode mode = GossipMode::kPushPull;
  /// Hash seed shared by all hosts (the sketch hash function).
  uint64_t hash_seed = 0x5eedc0de5eedc0deull;
};

/// Per-host static Count-Sketch state.
class CountSketchNode {
 public:
  CountSketchNode() : sketch_(1, 1) {}

  /// (Re)initializes and registers `multiplicity` objects derived from
  /// `host_key` (1 = count hosts; v = register value v for sums).
  void Init(const CountSketchParams& params, uint64_t host_key,
            int64_t multiplicity);

  const FmSketch& sketch() const { return sketch_; }
  FmSketch* mutable_sketch() { return &sketch_; }

  /// Merges a received sketch (OR).
  void Merge(const FmSketch& other) { sketch_.MergeOr(other); }

  double EstimateCount() const { return sketch_.EstimateCount(); }

 private:
  FmSketch sketch_;
};

/// A population of static Count-Sketch nodes.
class CountSketchSwarm {
 public:
  /// `multiplicities[i]` objects are registered for host i.
  CountSketchSwarm(const std::vector<int64_t>& multiplicities,
                   const CountSketchParams& params);

  /// One gossip iteration: push sends the sketch to one peer; push/pull also
  /// merges the peer's sketch back.
  void RunRound(const Environment& env, const Population& pop, Rng& rng);

  /// Estimate of the total number of registered objects visible to host id.
  double EstimateCount(HostId id) const {
    return nodes_[id].EstimateCount();
  }
  int size() const { return static_cast<int>(nodes_.size()); }
  const CountSketchNode& node(HostId id) const { return nodes_[id]; }

  /// Churn-join reset: host `id` restarts from a fresh sketch holding
  /// only its own registered objects (CountSketchNode::Init semantics).
  /// The static sketch is monotone, so objects the host spread before a
  /// departure remain visible elsewhere — exactly the never-forgets
  /// limitation Count-Sketch-Reset removes.
  void OnJoin(HostId id);

  /// Optionally records over-the-air traffic (serialized sketch sizes).
  void set_traffic_meter(TrafficMeter* meter) { meter_ = meter; }

 private:
  std::vector<CountSketchNode> nodes_;
  std::vector<int64_t> multiplicities_;  // backs the churn-join re-Init
  CountSketchParams params_;
  TrafficMeter* meter_ = nullptr;
  RoundKernel kernel_;
};

}  // namespace dynagg

#endif  // DYNAGG_AGG_COUNT_SKETCH_H_
