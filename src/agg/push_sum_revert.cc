#include "agg/push_sum_revert.h"

namespace dynagg {

PushSumRevertSwarm::PushSumRevertSwarm(const std::vector<double>& values,
                                       const PsrParams& params)
    : mass_(values.size()),
      inbox_(values.size()),
      initial_(values),
      msgs_(values.size(), 0),
      params_(params) {
  DYNAGG_CHECK_GE(params_.lambda, 0.0);
  DYNAGG_CHECK_LE(params_.lambda, 1.0);
  for (size_t i = 0; i < values.size(); ++i) mass_[i] = Mass{1.0, values[i]};
}

void PushSumRevertSwarm::RunRound(const Environment& env,
                                  const Population& pop, Rng& rng) {
  if (params_.mode == GossipMode::kPush) {
    const PartnerPlan& plan = kernel_.PlanPushRound(env, pop, rng);
    if (meter_ != nullptr) {
      meter_->RecordMessages(plan.CountMatched(), kMassMessageBytes);
    }
    if (!kernel_.parallel_deposits()) {
      kernel_.ForEachPushSlot(
          [this](HostId src) {
            // EmitPushHalf: the self half lands in the own inbox here, the
            // kernel deposits the returned half at the partner.
            const Mass half = TakePushHalfAt(src);
            DepositAt(src, half);
            return half;
          },
          [this](HostId dst, const Mass& m) { DepositAt(dst, m); },
          [this](HostId dst) { __builtin_prefetch(&inbox_[dst], 1); });
    } else {
      kernel_.EmitAndScatter(
          &outbox_, /*self_echo=*/true, size(),
          [this](HostId src) { return TakePushHalfAt(src); },
          [this](HostId dst, const Mass& m) { DepositAt(dst, m); });
    }
    // On a never-mutated population alive_ids is every host: iterate the
    // index range directly so the end-of-round fold has no id indirection.
    if (pop.version() == 0) {
      const int n = size();
      for (HostId i = 0; i < n; ++i) EndRoundPushAt(i);
    } else {
      for (const HostId i : pop.alive_ids()) EndRoundPushAt(i);
    }
    return;
  }
  kernel_.PlanExchangeRound(env, pop, rng);
  kernel_.ForEachExchangePrefetched(
      [this](HostId i, HostId peer) {
        // PushSumRevertNode::Exchange on the SoA state.
        Mass& a = mass_[i];
        Mass& b = mass_[peer];
        const Mass avg{(a.weight + b.weight) * 0.5,
                       (a.value + b.value) * 0.5};
        a = avg;
        b = avg;
        ++msgs_[i];
        ++msgs_[peer];
        if (meter_ != nullptr) {
          meter_->RecordMessage(kMassMessageBytes);
          meter_->RecordMessage(kMassMessageBytes);
        }
      },
      [this](HostId id) { __builtin_prefetch(&mass_[id], 1); });
  if (pop.version() == 0) {
    const int n = size();
    for (HostId i = 0; i < n; ++i) EndRoundPushPullAt(i);
  } else {
    for (const HostId i : pop.alive_ids()) EndRoundPushPullAt(i);
  }
}

Mass PushSumRevertSwarm::TotalAliveMass(const Population& pop) const {
  Mass total;
  for (const HostId id : pop.alive_ids()) total += mass_[id];
  return total;
}

}  // namespace dynagg
