#include "agg/push_sum_revert.h"

namespace dynagg {

PushSumRevertSwarm::PushSumRevertSwarm(const std::vector<double>& values,
                                       const PsrParams& params)
    : nodes_(values.size()), params_(params) {
  DYNAGG_CHECK_GE(params_.lambda, 0.0);
  DYNAGG_CHECK_LE(params_.lambda, 1.0);
  for (size_t i = 0; i < values.size(); ++i) nodes_[i].Init(values[i]);
}

void PushSumRevertSwarm::RunRound(const Environment& env,
                                  const Population& pop, Rng& rng) {
  if (params_.mode == GossipMode::kPush) {
    const PartnerPlan& plan = kernel_.PlanPushRound(env, pop, rng);
    if (meter_ != nullptr) {
      meter_->RecordMessages(plan.CountMatched(), kMassMessageBytes);
    }
    if (kernel_.intra_round_threads() == 1) {
      kernel_.ForEachPushSlot(
          [this](HostId src) {
            return nodes_[src].EmitPushHalf(params_.lambda, params_.revert);
          },
          [this](HostId dst, const Mass& m) { nodes_[dst].Deposit(m); },
          [this](HostId dst) { __builtin_prefetch(&nodes_[dst], 1); });
    } else {
      kernel_.EmitAndScatter(
          &outbox_, /*self_echo=*/true, size(),
          [this](HostId src) {
            return nodes_[src].TakePushHalf(params_.lambda, params_.revert);
          },
          [this](HostId dst, const Mass& m) { nodes_[dst].Deposit(m); });
    }
    for (const HostId i : pop.alive_ids()) {
      nodes_[i].EndRoundPush(params_.lambda, params_.revert);
    }
    return;
  }
  kernel_.PlanExchangeRound(env, pop, rng);
  kernel_.ForEachExchange([this](HostId i, HostId peer) {
    PushSumRevertNode::Exchange(nodes_[i], nodes_[peer]);
    if (meter_ != nullptr) {
      meter_->RecordMessage(kMassMessageBytes);
      meter_->RecordMessage(kMassMessageBytes);
    }
  });
  for (const HostId i : pop.alive_ids()) {
    nodes_[i].EndRoundPushPull(params_.lambda, params_.revert);
  }
}

Mass PushSumRevertSwarm::TotalAliveMass(const Population& pop) const {
  Mass total;
  for (const HostId id : pop.alive_ids()) total += nodes_[id].mass();
  return total;
}

}  // namespace dynagg
