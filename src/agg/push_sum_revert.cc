#include "agg/push_sum_revert.h"

#include "sim/round_driver.h"

namespace dynagg {

PushSumRevertSwarm::PushSumRevertSwarm(const std::vector<double>& values,
                                       const PsrParams& params)
    : nodes_(values.size()), params_(params) {
  DYNAGG_CHECK_GE(params_.lambda, 0.0);
  DYNAGG_CHECK_LE(params_.lambda, 1.0);
  for (size_t i = 0; i < values.size(); ++i) nodes_[i].Init(values[i]);
}

void PushSumRevertSwarm::RunRound(const Environment& env,
                                  const Population& pop, Rng& rng) {
  if (params_.mode == GossipMode::kPush) {
    for (const HostId i : pop.alive_ids()) {
      const Mass out =
          nodes_[i].EmitPushHalf(params_.lambda, params_.revert);
      const HostId peer = env.SamplePeer(i, pop, rng);
      nodes_[peer == kInvalidHost ? i : peer].Deposit(out);
      if (meter_ != nullptr && peer != kInvalidHost) {
        meter_->RecordMessage(kMassMessageBytes);
      }
    }
    for (const HostId i : pop.alive_ids()) {
      nodes_[i].EndRoundPush(params_.lambda, params_.revert);
    }
    return;
  }
  ShuffledAliveOrder(pop, rng, &order_);
  for (const HostId i : order_) {
    const HostId peer = env.SamplePeer(i, pop, rng);
    if (peer == kInvalidHost) continue;
    PushSumRevertNode::Exchange(nodes_[i], nodes_[peer]);
    if (meter_ != nullptr) {
      meter_->RecordMessage(kMassMessageBytes);
      meter_->RecordMessage(kMassMessageBytes);
    }
  }
  for (const HostId i : pop.alive_ids()) {
    nodes_[i].EndRoundPushPull(params_.lambda, params_.revert);
  }
}

Mass PushSumRevertSwarm::TotalAliveMass(const Population& pop) const {
  Mass total;
  for (const HostId id : pop.alive_ids()) total += nodes_[id].mass();
  return total;
}

}  // namespace dynagg
