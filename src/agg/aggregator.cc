#include "agg/aggregator.h"

#include "common/wire.h"

namespace dynagg {

namespace {
// Payload layout: magic, version, type, PSR mass, CSR counters.
constexpr uint8_t kMagic = 0xDA;
constexpr uint8_t kVersion = 1;
}  // namespace

NodeAggregator::NodeAggregator(uint64_t device_id, double local_value,
                               const AggregatorConfig& config)
    : device_id_(device_id), config_(config) {
  DYNAGG_CHECK_GE(config_.lambda, 0.0);
  DYNAGG_CHECK_LE(config_.lambda, 1.0);
  DYNAGG_CHECK_GE(config_.count_multiplicity, 1);
  psr_.Init(local_value);
  csr_.Init(config_.csr, device_id_, config_.count_multiplicity);
}

double NodeAggregator::CountEstimate() const {
  return csr_.EstimateCount() /
         static_cast<double>(config_.count_multiplicity);
}

std::vector<uint8_t> NodeAggregator::SerializeState(MsgType type,
                                                    const Mass& mass) const {
  BufWriter out;
  out.PutU8(kMagic);
  out.PutU8(kVersion);
  out.PutU8(static_cast<uint8_t>(type));
  out.PutDouble(mass.weight);
  out.PutDouble(mass.value);
  csr_.Serialize(&out);
  return out.Release();
}

std::vector<uint8_t> NodeAggregator::BeginRound() {
  return SerializeState(MsgType::kRequest, psr_.mass());
}

Status NodeAggregator::MergeIncoming(const std::vector<uint8_t>& payload,
                                     MsgType expected, Mass* incoming_mass) {
  BufReader in(payload);
  uint8_t magic = 0;
  uint8_t version = 0;
  uint8_t type = 0;
  DYNAGG_RETURN_IF_ERROR(in.ReadU8(&magic));
  DYNAGG_RETURN_IF_ERROR(in.ReadU8(&version));
  DYNAGG_RETURN_IF_ERROR(in.ReadU8(&type));
  if (magic != kMagic || version != kVersion) {
    return Status::Corruption("aggregator: bad payload header");
  }
  if (type != static_cast<uint8_t>(expected)) {
    return Status::InvalidArgument("aggregator: unexpected message type");
  }
  DYNAGG_RETURN_IF_ERROR(in.ReadDouble(&incoming_mass->weight));
  DYNAGG_RETURN_IF_ERROR(in.ReadDouble(&incoming_mass->value));
  if (!(incoming_mass->weight >= 0.0) ||
      !(incoming_mass->value == incoming_mass->value)) {  // NaN guard
    return Status::Corruption("aggregator: invalid mass");
  }
  DYNAGG_RETURN_IF_ERROR(csr_.MergeSerialized(&in));
  return Status::OK();
}

Result<std::vector<uint8_t>> NodeAggregator::HandleMessage(
    const std::vector<uint8_t>& payload) {
  Mass incoming;
  DYNAGG_RETURN_IF_ERROR(
      MergeIncoming(payload, MsgType::kRequest, &incoming));
  // Push/pull equalization: adopt the pairwise average and reply with it so
  // the initiator holds the identical mass (zero net mass change).
  const Mass own = psr_.mass();
  const Mass equalized{(own.weight + incoming.weight) * 0.5,
                       (own.value + incoming.value) * 0.5};
  psr_.SetMass(equalized);
  return SerializeState(MsgType::kReply, equalized);
}

Status NodeAggregator::HandleReply(const std::vector<uint8_t>& payload) {
  Mass incoming;
  DYNAGG_RETURN_IF_ERROR(MergeIncoming(payload, MsgType::kReply, &incoming));
  // The reply carries the equalized mass; adopting it completes the
  // conservation-of-mass exchange.
  psr_.SetMass(incoming);
  return Status::OK();
}

void NodeAggregator::EndRound() {
  psr_.EndRoundPushPull(config_.lambda, RevertMode::kFixed);
  // Counter aging must happen after every merge of the round: a device
  // that aged *before* exchanging would be dragged back to its peer's
  // younger counters by the reply merge, and the network-wide minimum age
  // would never advance (departed devices would never be forgotten).
  // Aging at the end of round t is equivalent to Fig 5's increment at the
  // start of round t+1.
  csr_.AgeCounters();
}

}  // namespace dynagg
