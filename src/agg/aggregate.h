// Shared aggregation-protocol types and constants.

#ifndef DYNAGG_AGG_AGGREGATE_H_
#define DYNAGG_AGG_AGGREGATE_H_

namespace dynagg {

/// Gossip interaction style (Demers et al. taxonomy, Section VI):
///  - kPush: each host pushes half of its mass to one random peer per round
///    (Kempe et al.'s original Push-Sum, Fig 1 / Fig 3);
///  - kPushPull: the contacted pair exchanges and equalizes state, i.e. each
///    host "exports (or imports) half the difference between its own mass
///    and the mass of its communications peer" (Section III.A). The
///    evaluation's uniform-gossip figures use this mode.
enum class GossipMode {
  kPush,
  kPushPull,
};

/// Reversion style for Push-Sum-Revert (Section III.A):
///  - kFixed: add a fixed lambda fraction of the initial mass once per round;
///  - kAdaptive: add lambda/2 of the initial mass per message received
///    (including the self-message), so high-indegree hosts revert harder and
///    reconvergence is roughly halved under uniform value distributions.
enum class RevertMode {
  kFixed,
  kAdaptive,
};

/// Flajolet-Martin bias constant phi: E[R] ~ log2(phi * n), hence
/// n ~ 2^R / phi (and (m/phi) * 2^{avg R} with m-bin stochastic averaging).
inline constexpr double kFmPhi = 0.77351;

}  // namespace dynagg

#endif  // DYNAGG_AGG_AGGREGATE_H_
