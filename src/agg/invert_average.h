// Invert-Average: dynamic summation by composition (Section IV.B, Fig 7).
//
//   sum  ~  Count-Sketch-Reset network size  x  Push-Sum-Revert average.
//
// Registering a value v as v sketch insertions ("multiple insertions") costs
// sketch space logarithmic in the value range and is exact in expectation,
// but the sketch traffic dwarfs Push-Sum's two doubles per message.
// Invert-Average runs one Count-Sketch-Reset instance (amortizable across
// any number of simultaneous sums) plus one cheap Push-Sum-Revert instance
// per summed attribute. The errors of the two protocols multiply, which the
// ablation bench quantifies against the multiple-insertion technique.

#ifndef DYNAGG_AGG_INVERT_AVERAGE_H_
#define DYNAGG_AGG_INVERT_AVERAGE_H_

#include <vector>

#include "agg/count_sketch_reset.h"
#include "agg/push_sum_revert.h"
#include "common/rng.h"
#include "common/types.h"
#include "env/environment.h"
#include "sim/population.h"

namespace dynagg {

/// Invert-Average configuration: one CSR instance for the size, one PSR
/// instance per value.
struct InvertAverageParams {
  PsrParams psr;
  CsrParams csr;
  /// Identifiers registered per host for the size estimate (>1 reduces
  /// variance in small networks; Fig 11 uses 100).
  int64_t count_multiplicity = 1;
};

/// A population running Fig 7: netsize via Count-Sketch-Reset and the value
/// average via Push-Sum-Revert; each host's sum estimate is their product.
class InvertAverageSwarm {
 public:
  InvertAverageSwarm(const std::vector<double>& values,
                     const InvertAverageParams& params);

  /// One gossip iteration of both sub-protocols.
  void RunRound(const Environment& env, const Population& pop, Rng& rng);

  /// Host id's estimate of the network-wide sum.
  double EstimateSum(HostId id) const {
    return EstimateNetworkSize(id) * psr_.Estimate(id);
  }
  /// Host id's estimate of the number of participating hosts.
  double EstimateNetworkSize(HostId id) const {
    return csr_.EstimateCount(id) /
           static_cast<double>(params_.count_multiplicity);
  }
  /// Host id's estimate of the network-wide average.
  double EstimateAverage(HostId id) const { return psr_.Estimate(id); }

  int size() const { return psr_.size(); }
  const PushSumRevertSwarm& psr() const { return psr_; }
  const CsrSwarm& csr() const { return csr_; }

  /// Forwards the round kernel's scatter thread count to the PSR instance
  /// (CSR exchanges are sequential merges and ignore it).
  void set_intra_round_threads(int threads) {
    psr_.set_intra_round_threads(threads);
  }

  /// Churn-join reset: both sub-protocols restart host `id` from its
  /// pristine contribution.
  void OnJoin(HostId id) {
    psr_.OnJoin(id);
    csr_.OnJoin(id);
  }

 private:
  InvertAverageParams params_;
  PushSumRevertSwarm psr_;
  CsrSwarm csr_;
};

}  // namespace dynagg

#endif  // DYNAGG_AGG_INVERT_AVERAGE_H_
