// NodeAggregator: the embeddable per-device API.
//
// This is the paper's deployment story (Section I): each wireless device
// runs one aggregator that continuously maintains estimates of the group
// average, group size and group sum over whoever is nearby, with no leader,
// routing infrastructure, membership list, or departure detection. It
// composes Push-Sum-Revert (average) with Count-Sketch-Reset (size) and
// reports sums via Invert-Average. Gossip payloads are serialized byte
// buffers, so applications wire it directly onto their radio layer:
//
//   // every gossip period, on each device:
//   auto payload = agg.BeginRound();
//   if (auto peer = PickSomeoneInRange()) {
//     auto reply = peer->agg.HandleMessage(payload);   // on the peer
//     if (reply.ok()) agg.HandleReply(*reply);         // back home
//   }
//   agg.EndRound();

#ifndef DYNAGG_AGG_AGGREGATOR_H_
#define DYNAGG_AGG_AGGREGATOR_H_

#include <cstdint>
#include <vector>

#include "agg/count_sketch_reset.h"
#include "agg/push_sum_revert.h"
#include "common/status.h"

namespace dynagg {

/// NodeAggregator configuration.
struct AggregatorConfig {
  /// Push-Sum-Revert reversion constant.
  double lambda = 0.01;
  /// Count-Sketch-Reset geometry and cutoff.
  CsrParams csr;
  /// Identifiers registered per device for the size estimate. Multiple
  /// identifiers reduce sketch variance in small groups (Fig 11 uses 100).
  int64_t count_multiplicity = 100;
};

class NodeAggregator {
 public:
  /// `device_id` must be unique across devices (e.g. a MAC address hash);
  /// `local_value` is this device's contribution to the average/sum.
  NodeAggregator(uint64_t device_id, double local_value,
                 const AggregatorConfig& config);

  uint64_t device_id() const { return device_id_; }
  double local_value() const { return psr_.initial_value(); }

  /// Updates the local reading; the aggregator reverts toward the new value
  /// from the next round on.
  void SetLocalValue(double value) { psr_.SetLocalValue(value); }

  /// Starts a gossip round: returns the request payload to send to one
  /// in-range peer. Safe to call when no peer is in range — simply discard
  /// the payload.
  std::vector<uint8_t> BeginRound();

  /// Processes a request payload received from a peer and returns the reply
  /// payload (push/pull). Errors indicate a malformed or incompatible
  /// payload, which the caller should drop.
  Result<std::vector<uint8_t>> HandleMessage(
      const std::vector<uint8_t>& payload);

  /// Processes the reply to this round's request.
  Status HandleReply(const std::vector<uint8_t>& payload);

  /// Finishes the round: applies the reversion step and ages the size
  /// sketch. Must be called exactly once per gossip period, after all of
  /// the period's HandleMessage/HandleReply merges.
  void EndRound();

  /// Estimated average of local values across the current group.
  double AverageEstimate() const { return psr_.Estimate(); }
  /// Estimated number of devices in the current group.
  double CountEstimate() const;
  /// Estimated sum of local values across the current group
  /// (Invert-Average: count x average).
  double SumEstimate() const {
    return CountEstimate() * AverageEstimate();
  }

  const PushSumRevertNode& psr_node() const { return psr_; }
  const CountSketchResetNode& csr_node() const { return csr_; }

 private:
  enum class MsgType : uint8_t { kRequest = 1, kReply = 2 };

  std::vector<uint8_t> SerializeState(MsgType type, const Mass& mass) const;
  Status MergeIncoming(const std::vector<uint8_t>& payload, MsgType expected,
                       Mass* incoming_mass);

  uint64_t device_id_;
  AggregatorConfig config_;
  PushSumRevertNode psr_;
  CountSketchResetNode csr_;
};

}  // namespace dynagg

#endif  // DYNAGG_AGG_AGGREGATOR_H_
