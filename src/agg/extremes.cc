#include "agg/extremes.h"

namespace dynagg {

DynamicExtremeSwarm::DynamicExtremeSwarm(const std::vector<double>& values,
                                         const std::vector<uint64_t>& keys,
                                         const ExtremeParams& params)
    : nodes_(values.size()), params_(params) {
  DYNAGG_CHECK_EQ(values.size(), keys.size());
  DYNAGG_CHECK_GE(params_.cutoff, 0);
  for (size_t i = 0; i < values.size(); ++i) {
    nodes_[i].Init(values[i], keys[i]);
  }
}

void DynamicExtremeSwarm::RunRound(const Environment& env,
                                   const Population& pop, Rng& rng) {
  for (const HostId i : pop.alive_ids()) nodes_[i].BeginRound(params_);
  kernel_.PlanExchangeRound(env, pop, rng);
  kernel_.ForEachExchange([this](HostId i, HostId peer) {
    if (params_.mode == GossipMode::kPushPull) {
      DynamicExtremeNode::Exchange(nodes_[i], nodes_[peer], params_);
    } else {
      nodes_[peer].Offer(nodes_[i].best(), params_);
    }
  });
}

}  // namespace dynagg
