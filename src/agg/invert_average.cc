#include "agg/invert_average.h"

namespace dynagg {

namespace {
std::vector<int64_t> UniformMultiplicities(size_t n, int64_t m) {
  return std::vector<int64_t>(n, m);
}
}  // namespace

InvertAverageSwarm::InvertAverageSwarm(const std::vector<double>& values,
                                       const InvertAverageParams& params)
    : params_(params),
      psr_(values, params.psr),
      csr_(UniformMultiplicities(values.size(), params.count_multiplicity),
           params.csr) {
  DYNAGG_CHECK_GE(params_.count_multiplicity, 1);
}

void InvertAverageSwarm::RunRound(const Environment& env,
                                  const Population& pop, Rng& rng) {
  psr_.RunRound(env, pop, rng);
  csr_.RunRound(env, pop, rng);
}

}  // namespace dynagg
