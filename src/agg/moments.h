// Dynamic higher-moment aggregation: variance and standard deviation.
//
// Section II lists the standard deviation among the aggregates of interest.
// Both are derivable from the first two moments, each of which is an
// average — so two Push-Sum-Revert instances over v and v^2 give a dynamic
// estimate of Var[v] = E[v^2] - E[v]^2 that tracks membership changes
// exactly like the scalar average does. Composed with Count-Sketch-Reset
// (as in Invert-Average) the same construction yields dynamic sums of
// squares.

#ifndef DYNAGG_AGG_MOMENTS_H_
#define DYNAGG_AGG_MOMENTS_H_

#include <vector>

#include "agg/push_sum_revert.h"
#include "common/rng.h"
#include "common/types.h"
#include "env/environment.h"
#include "sim/population.h"

namespace dynagg {

/// A population maintaining dynamic estimates of the mean, variance and
/// standard deviation of the hosts' values.
class DynamicMomentsSwarm {
 public:
  DynamicMomentsSwarm(const std::vector<double>& values,
                      const PsrParams& params);

  /// One gossip iteration of both moment instances.
  void RunRound(const Environment& env, const Population& pop, Rng& rng);

  /// Updates host `id`'s local value (both moments re-anchor).
  void SetLocalValue(HostId id, double value);

  double EstimateMean(HostId id) const { return mean_.Estimate(id); }
  /// Population variance estimate; clamped at 0 (the difference of two
  /// estimates can go slightly negative near convergence).
  double EstimateVariance(HostId id) const;
  double EstimateStdDev(HostId id) const;

  int size() const { return mean_.size(); }
  const PushSumRevertSwarm& mean_swarm() const { return mean_; }
  const PushSumRevertSwarm& square_swarm() const { return square_; }

  /// Forwards the round kernel's scatter thread count to both instances.
  void set_intra_round_threads(int threads) {
    mean_.set_intra_round_threads(threads);
    square_.set_intra_round_threads(threads);
  }

 private:
  PushSumRevertSwarm mean_;
  PushSumRevertSwarm square_;
};

}  // namespace dynagg

#endif  // DYNAGG_AGG_MOMENTS_H_
