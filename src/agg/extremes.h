// Dynamic extreme (min/max) aggregation.
//
// The paper's motivating application asks for "the most popular song"
// (Section I) — an extreme, not a linear aggregate. Static gossip extremes
// are trivial (adopt the better value; idempotent and duplicate-insensitive)
// but, like static sketches, can never forget a departed winner.
//
// This module instantiates the paper's dynamic-aggregation recipe for
// extremes, using the same machinery as Count-Sketch-Reset: candidates carry
// an *age* that every host increments each round and that resets to zero at
// the candidate's source. A candidate older than the cutoff is discarded.
// While the winner is alive its age at any host is bounded by the gossip
// propagation age (O(log n) under uniform gossip), so a cutoff slightly
// above that age keeps the estimate stable; when the winner departs, its
// candidate expires everywhere within one cutoff and the best *surviving*
// value takes over.

#ifndef DYNAGG_AGG_EXTREMES_H_
#define DYNAGG_AGG_EXTREMES_H_

#include <cstdint>
#include <vector>

#include "agg/aggregate.h"
#include "common/macros.h"
#include "common/rng.h"
#include "common/types.h"
#include "env/environment.h"
#include "sim/population.h"
#include "sim/round_kernel.h"

namespace dynagg {

/// Which extreme to maintain.
enum class ExtremeKind {
  kMaximum,
  kMinimum,
};

/// Dynamic extreme configuration.
struct ExtremeParams {
  ExtremeKind kind = ExtremeKind::kMaximum;
  /// Candidates older than this many rounds are discarded. Must exceed the
  /// gossip propagation age (~log2(n) + slack under uniform push/pull);
  /// 0 disables expiry (static gossip extreme).
  int cutoff = 12;
  GossipMode mode = GossipMode::kPushPull;
};

/// A candidate extreme: the value, an opaque key identifying what attains
/// it (e.g. a song id), and its gossip age.
struct ExtremeCandidate {
  double value = 0.0;
  uint64_t key = 0;
  int32_t age = 0;
};

/// Per-host dynamic-extreme state machine.
class DynamicExtremeNode {
 public:
  /// (Re)initializes with the host's own (value, key) contribution.
  void Init(double value, uint64_t key) {
    own_ = ExtremeCandidate{value, key, 0};
    best_ = own_;
  }

  /// Updates the host's own contribution (new local reading).
  void SetLocalValue(double value) { own_.value = value; }

  double own_value() const { return own_.value; }

  /// Round start: ages the adopted candidate and discards it once expired
  /// (falling back to the host's own contribution).
  void BeginRound(const ExtremeParams& params) {
    ++best_.age;
    const bool expired =
        params.cutoff > 0 && best_.age > params.cutoff;
    if (expired || !Better(best_, own_, params.kind)) {
      best_ = own_;  // own candidate is always current (age 0)
    }
  }

  /// Merge: adopt the peer's candidate if it beats the current one.
  void Offer(const ExtremeCandidate& candidate, const ExtremeParams& params) {
    if (params.cutoff > 0 && candidate.age > params.cutoff) return;
    if (Better(candidate, best_, params.kind)) best_ = candidate;
  }

  /// Push/pull exchange: both sides end with the better candidate.
  static void Exchange(DynamicExtremeNode& a, DynamicExtremeNode& b,
                       const ExtremeParams& params) {
    a.Offer(b.best_, params);
    b.Offer(a.best_, params);
  }

  /// Churn-join reset: forgets any adopted candidate and restarts from
  /// the host's own (current-reading) contribution at age 0.
  void Rejoin() {
    own_.age = 0;
    best_ = own_;
  }

  /// The current extreme estimate.
  double Estimate() const { return best_.value; }
  /// The key attaining the current estimate.
  uint64_t BestKey() const { return best_.key; }
  const ExtremeCandidate& best() const { return best_; }

 private:
  /// Strict "a beats b" under the configured kind; ties broken by key then
  /// by younger age, so all hosts converge to the identical winner.
  static bool Better(const ExtremeCandidate& a, const ExtremeCandidate& b,
                     ExtremeKind kind) {
    if (a.value != b.value) {
      return kind == ExtremeKind::kMaximum ? a.value > b.value
                                           : a.value < b.value;
    }
    if (a.key != b.key) return a.key < b.key;
    return a.age < b.age;
  }

  ExtremeCandidate own_;
  ExtremeCandidate best_;
};

/// A population of dynamic-extreme nodes.
class DynamicExtremeSwarm {
 public:
  /// values[i] / keys[i] are host i's contribution; keys must be unique if
  /// the winner's identity matters.
  DynamicExtremeSwarm(const std::vector<double>& values,
                      const std::vector<uint64_t>& keys,
                      const ExtremeParams& params);

  /// One gossip iteration over the alive hosts.
  void RunRound(const Environment& env, const Population& pop, Rng& rng);

  double Estimate(HostId id) const { return nodes_[id].Estimate(); }
  uint64_t BestKey(HostId id) const { return nodes_[id].BestKey(); }
  int size() const { return static_cast<int>(nodes_.size()); }
  DynamicExtremeNode& node(HostId id) { return nodes_[id]; }
  const ExtremeParams& params() const { return params_; }

  /// Churn-join reset: host `id` restarts from its own contribution (see
  /// DynamicExtremeNode::Rejoin). Touches only `id`'s own node.
  void OnJoin(HostId id) { nodes_[id].Rejoin(); }

 private:
  std::vector<DynamicExtremeNode> nodes_;
  ExtremeParams params_;
  RoundKernel kernel_;
};

}  // namespace dynagg

#endif  // DYNAGG_AGG_EXTREMES_H_
