// Count-Sketch-Reset: dynamic distributed counting (Section IV.A, Fig 5).
//
// Static counting sketches cannot self-heal: a bit, once set, may be sourced
// by any number of hosts, so no host can locally decide that its sourcing
// population has departed. Count-Sketch-Reset replaces each bit with an age
// counter N[n][k]:
//   - every host owns the slots it would have set in the static sketch and
//     pins their counters to 0;
//   - each round every non-owned counter is incremented, then gossip
//     exchanges take the elementwise minimum;
//   - a slot's *bit* is considered set iff its counter is at most the cutoff
//     f(k) = cutoff_base + cutoff_slope * k (paper: 7 + k/4 under uniform
//     gossip).
// A counter therefore measures the gossip age of the youngest message from
// any live owner. Because the number of owners of level k scales as
// n / 2^(k+1), the expected propagation age grows linearly in k and is
// *independent of network size* — which is what makes the timeout
// network-size-agnostic (Section IV). When every owner of a slot departs,
// its counters age past f(k) everywhere and the slot decays out within
// ~f(k) rounds (Fig 9).

#ifndef DYNAGG_AGG_COUNT_SKETCH_RESET_H_
#define DYNAGG_AGG_COUNT_SKETCH_RESET_H_

#include <array>
#include <cstdint>
#include <vector>

#include "agg/aggregate.h"
#include "agg/fm_sketch.h"
#include "common/macros.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "common/wire.h"
#include "env/environment.h"
#include "sim/bandwidth.h"
#include "sim/population.h"
#include "sim/round_kernel.h"

namespace dynagg {

/// Counter value meaning "never heard" (infinity in Fig 5).
inline constexpr uint8_t kCsrInfinity = 255;
/// Counters saturate here so they can never roll into the sentinel.
inline constexpr uint8_t kCsrCounterCap = 254;
/// Upper bound on levels so nodes can keep the cutoff table inline.
inline constexpr int kCsrMaxLevels = 32;

/// Count-Sketch-Reset configuration.
struct CsrParams {
  /// Stochastic-averaging bins m (64 -> ~9.7% expected error).
  int bins = 64;
  /// Counter levels per bin (k in [0, levels)). Must be <= kCsrMaxLevels.
  int levels = 24;
  /// Cutoff f(k) = cutoff_base + cutoff_slope * k. The paper derives
  /// 7 + k/4 experimentally for uniform gossip (Fig 6).
  double cutoff_base = 7.0;
  double cutoff_slope = 0.25;
  /// With the cutoff disabled any finite counter counts as a set bit: the
  /// protocol degenerates to static Count-Sketch ("propagation limiting
  /// off" in Fig 9 / "reversion off" in Fig 11).
  bool cutoff_enabled = true;
  GossipMode mode = GossipMode::kPushPull;
  /// Hash seed shared by all hosts.
  uint64_t hash_seed = 0x5eedc0de5eedc0deull;
};

/// Per-host Count-Sketch-Reset state machine. Self-contained (carries its
/// geometry and cutoff table) so applications can embed it directly.
class CountSketchResetNode {
 public:
  CountSketchResetNode() = default;

  /// (Re)initializes: all counters at infinity except the `multiplicity`
  /// owned slots (derived deterministically from `host_key`), which are
  /// pinned to 0. multiplicity = 1 counts hosts; = v registers value v.
  void Init(const CsrParams& params, uint64_t host_key, int64_t multiplicity);

  /// Fig 5 step 2: increments every non-owned counter (saturating), keeping
  /// owned slots at 0.
  void AgeCounters();

  /// Fig 5 step 5: elementwise minimum with a received array.
  void MergeFrom(const CountSketchResetNode& other);

  /// Push/pull variant: both arrays become the elementwise minimum.
  static void ExchangeMerge(CountSketchResetNode& a, CountSketchResetNode& b);

  /// Fig 5 steps 6-7: derive bits via the cutoff and apply the FM estimate
  /// (m / phi) * 2^{avg R}. Returns the estimated number of *objects*;
  /// callers registering multiplicity v divide accordingly.
  double EstimateCount() const;

  /// Run of set bits from level 0 in `bin` under the cutoff rule.
  int RunLength(int bin) const;

  int bins() const { return bins_; }
  int levels() const { return levels_; }
  uint8_t counter(int bin, int level) const {
    return counters_[static_cast<size_t>(bin) * levels_ + level];
  }
  const std::vector<uint8_t>& counters() const { return counters_; }
  const std::vector<int32_t>& owned_slots() const { return owned_; }
  /// Whether (bin, level)'s bit is set under the cutoff rule.
  bool BitSet(int bin, int level) const;

  /// Derives the equivalent bit sketch (diagnostics / tests).
  FmSketch DeriveBits() const;

  /// Size in bytes of the Serialize output (over-the-air payload size).
  int64_t SerializedBytes() const;

  /// Serializes the counter array (geometry + raw bytes). Owned slots are
  /// host-local and not part of the wire format.
  void Serialize(BufWriter* out) const;
  /// Merges a serialized counter array into this node (geometry must
  /// match). This is the receive path of the facade API.
  Status MergeSerialized(BufReader* in);

 private:
  int bins_ = 0;
  int levels_ = 0;
  bool cutoff_enabled_ = true;
  std::array<uint8_t, kCsrMaxLevels> cutoff_{};  // f(k), clamped to cap
  std::vector<uint8_t> counters_;                // bins_ x levels_
  std::vector<int32_t> owned_;                   // sorted flat offsets
};

/// A population of Count-Sketch-Reset nodes.
class CsrSwarm {
 public:
  /// `multiplicities[i]` objects are registered for host i.
  CsrSwarm(const std::vector<int64_t>& multiplicities,
           const CsrParams& params);

  /// One gossip iteration: all alive hosts age their counters, then each
  /// initiates one exchange (min-merge; bidirectional under push/pull).
  void RunRound(const Environment& env, const Population& pop, Rng& rng);

  /// Estimated number of registered objects visible to host id.
  double EstimateCount(HostId id) const {
    return nodes_[id].EstimateCount();
  }
  int size() const { return static_cast<int>(nodes_.size()); }
  const CsrParams& params() const { return params_; }
  const CountSketchResetNode& node(HostId id) const { return nodes_[id]; }
  CountSketchResetNode& node(HostId id) { return nodes_[id]; }

  /// Churn-join reset: host `id` restarts from a fresh counter array —
  /// all counters at infinity except its own pinned slots
  /// (CountSketchResetNode::Init semantics). Its previously spread slots
  /// age out of the rest of the network within ~f(k) rounds, exactly the
  /// departure decay of Fig 9; the rebirth re-pins them.
  void OnJoin(HostId id);

  /// Optionally records over-the-air traffic (serialized counter arrays).
  void set_traffic_meter(TrafficMeter* meter) { meter_ = meter; }

 private:
  std::vector<CountSketchResetNode> nodes_;
  std::vector<int64_t> multiplicities_;  // backs the churn-join re-Init
  CsrParams params_;
  TrafficMeter* meter_ = nullptr;
  RoundKernel kernel_;
};

}  // namespace dynagg

#endif  // DYNAGG_AGG_COUNT_SKETCH_RESET_H_
