// Push-Sum-Revert: dynamic distributed averaging (Section III, Fig 3).
//
// The paper's first contribution. Push-Sum relies on conservation of mass,
// which silent host departures violate: mass leaves with the host and, when
// departures correlate with values, the estimate diverges permanently.
// Push-Sum-Revert introduces a controlled local error: every round each
// host's mass decays towards its *initial* mass by a reversion constant
// lambda,
//     w <- lambda       + (1 - lambda) * sum(received weights)
//     v <- lambda * v0  + (1 - lambda) * sum(received values)
// The Revert step conserves mass while the node set is stable (Section III's
// telescoping argument) yet continuously re-injects each live host's
// contribution, so after departures the system re-converges to the average
// over the *remaining* hosts. lambda trades reconvergence speed against a
// bias floor (Fig 10a); lambda = 0 degenerates to classic Push-Sum.

#ifndef DYNAGG_AGG_PUSH_SUM_REVERT_H_
#define DYNAGG_AGG_PUSH_SUM_REVERT_H_

#include <vector>

#include "agg/aggregate.h"
#include "agg/push_sum.h"
#include "common/macros.h"
#include "common/rng.h"
#include "common/types.h"
#include "env/environment.h"
#include "sim/bandwidth.h"
#include "sim/population.h"
#include "sim/round_kernel.h"

namespace dynagg {

/// Push-Sum-Revert configuration.
struct PsrParams {
  /// Reversion constant lambda in [0, 1]. 0 = classic Push-Sum.
  double lambda = 0.01;
  GossipMode mode = GossipMode::kPushPull;
  RevertMode revert = RevertMode::kFixed;
};

/// Per-host Push-Sum-Revert state machine.
class PushSumRevertNode {
 public:
  /// (Re)initializes with local value `v0`; mass <1, v0>.
  void Init(double v0) {
    mass_ = Mass{1.0, v0};
    inbox_ = Mass{};
    initial_value_ = v0;
    messages_received_ = 0;
  }

  /// Updates the value this host reverts toward (and re-anchors future
  /// rounds); used when the application's local reading changes.
  void SetLocalValue(double v0) { initial_value_ = v0; }

  /// Push-mode emission (Fig 3, step 2), emission only: applies the
  /// reversion to the outgoing total, removes the mass, and returns one
  /// half of it. The caller owes TWO deposits of the returned half — one
  /// to this host's own inbox (the self-message, which counts towards
  /// adaptive indegree) and one to the peer — applied in sequential order
  /// by the round kernel's scatter phase.
  Mass TakePushHalf(double lambda, RevertMode revert) {
    Mass out = mass_;
    if (revert == RevertMode::kFixed) {
      out.weight = (1.0 - lambda) * out.weight + lambda;
      out.value = (1.0 - lambda) * out.value + lambda * initial_value_;
    }
    const Mass half{out.weight * 0.5, out.value * 0.5};
    mass_ = Mass{};
    return half;
  }

  /// Push-mode emission (Fig 3, step 2): applies the reversion to the
  /// outgoing total, deposits half into the own inbox, returns the peer
  /// half. Only used with RevertMode::kFixed; adaptive reversion happens at
  /// EndRound based on indegree.
  Mass EmitPushHalf(double lambda, RevertMode revert) {
    const Mass half = TakePushHalf(lambda, revert);
    Deposit(half);  // the self-message counts towards adaptive indegree
    return half;
  }

  /// Accumulates a received message.
  void Deposit(const Mass& m) {
    inbox_ += m;
    ++messages_received_;
  }

  /// Push-mode end of round: adopt the inbox; under adaptive reversion mix
  /// in lambda/2 of the initial mass per message received.
  void EndRoundPush(double lambda, RevertMode revert) {
    Mass next = inbox_;
    if (revert == RevertMode::kAdaptive) {
      double eff = 0.5 * lambda * static_cast<double>(messages_received_);
      if (eff > 1.0) eff = 1.0;
      next.weight = (1.0 - eff) * next.weight + eff;
      next.value = (1.0 - eff) * next.value + eff * initial_value_;
    }
    mass_ = next;
    inbox_ = Mass{};
    messages_received_ = 0;
  }

  /// Push/pull exchange: pairwise mass equalization. Counts one interaction
  /// on each side for adaptive reversion.
  static void Exchange(PushSumRevertNode& a, PushSumRevertNode& b) {
    const Mass avg{(a.mass_.weight + b.mass_.weight) * 0.5,
                   (a.mass_.value + b.mass_.value) * 0.5};
    a.mass_ = avg;
    b.mass_ = avg;
    ++a.messages_received_;
    ++b.messages_received_;
  }

  /// Push/pull end of round: applies the reversion in place. Under fixed
  /// reversion the effective strength is lambda; under adaptive it is
  /// lambda/2 per interaction this round (the self-interaction counts once).
  void EndRoundPushPull(double lambda, RevertMode revert) {
    double eff = lambda;
    if (revert == RevertMode::kAdaptive) {
      eff = 0.5 * lambda * static_cast<double>(messages_received_ + 1);
      if (eff > 1.0) eff = 1.0;
    }
    mass_.weight = (1.0 - eff) * mass_.weight + eff;
    mass_.value = (1.0 - eff) * mass_.value + eff * initial_value_;
    messages_received_ = 0;
  }

  double Estimate() const {
    return mass_.weight > 0.0 ? mass_.value / mass_.weight : initial_value_;
  }

  const Mass& mass() const { return mass_; }
  /// Directly overwrites the mass: the adoption step of the serialized
  /// request/reply exchange used by the NodeAggregator facade.
  void SetMass(const Mass& m) { mass_ = m; }
  double initial_value() const { return initial_value_; }

 private:
  Mass mass_;
  Mass inbox_;
  double initial_value_ = 0.0;
  int messages_received_ = 0;
};

/// A population of Push-Sum-Revert hosts driven one round at a time.
///
/// Structure-of-arrays layout (PushSumSwarm is the template): the per-host
/// state machine above is kept as the semantic reference (and for the
/// serialized NodeAggregator facade), but the swarm stores its hosts as
/// flat parallel arrays — mass, inbox, reversion anchor, per-round message
/// count — so the plan→apply inner loops walk contiguous memory with no
/// per-host object padding. Every element operation replicates the node
/// arithmetic expression-for-expression, so estimates stay bit-identical
/// to a vector of PushSumRevertNodes (pinned by tests/sim/
/// round_kernel_test.cc).
class PushSumRevertSwarm {
 public:
  PushSumRevertSwarm(const std::vector<double>& values,
                     const PsrParams& params);

  /// Executes one gossip iteration over the alive hosts.
  void RunRound(const Environment& env, const Population& pop, Rng& rng);

  double Estimate(HostId id) const {
    return mass_[id].weight > 0.0 ? mass_[id].value / mass_[id].weight
                                  : initial_[id];
  }
  int size() const { return static_cast<int>(mass_.size()); }
  const PsrParams& params() const { return params_; }

  /// Updates the value host `id` reverts toward (PushSumRevertNode::
  /// SetLocalValue); used when the application's local reading changes.
  void SetLocalValue(HostId id, double v0) { initial_[id] = v0; }
  double initial_value(HostId id) const { return initial_[id]; }
  const Mass& mass(HostId id) const { return mass_[id]; }

  /// Total mass over alive hosts (conservation diagnostics and tests).
  Mass TotalAliveMass(const Population& pop) const;

  /// Churn-join reset: (re)initializes host `id` to its pristine <1, v0>
  /// mass anchored at its original reversion value (PushSumRevertNode::
  /// Init semantics). Touches only `id`'s own slots.
  void OnJoin(HostId id) {
    mass_[id] = Mass{1.0, initial_[id]};
    inbox_[id] = Mass{};
    msgs_[id] = 0;
  }

  /// Optionally records over-the-air traffic (self-messages excluded).
  void set_traffic_meter(TrafficMeter* meter) { meter_ = meter; }

  /// Worker threads for the push-mode deposit scatter (bit-identical at
  /// any count; push/pull rounds are inherently sequential and ignore it).
  void set_intra_round_threads(int threads) {
    kernel_.set_intra_round_threads(threads);
  }

 private:
  // Element-wise replicas of the PushSumRevertNode round steps.
  Mass TakePushHalfAt(HostId i) {
    Mass out = mass_[i];
    if (params_.revert == RevertMode::kFixed) {
      out.weight = (1.0 - params_.lambda) * out.weight + params_.lambda;
      out.value =
          (1.0 - params_.lambda) * out.value + params_.lambda * initial_[i];
    }
    const Mass half{out.weight * 0.5, out.value * 0.5};
    mass_[i] = Mass{};
    return half;
  }
  void DepositAt(HostId i, const Mass& m) {
    inbox_[i] += m;
    ++msgs_[i];
  }
  void EndRoundPushAt(HostId i) {
    Mass next = inbox_[i];
    if (params_.revert == RevertMode::kAdaptive) {
      double eff = 0.5 * params_.lambda * static_cast<double>(msgs_[i]);
      if (eff > 1.0) eff = 1.0;
      next.weight = (1.0 - eff) * next.weight + eff;
      next.value = (1.0 - eff) * next.value + eff * initial_[i];
    }
    mass_[i] = next;
    inbox_[i] = Mass{};
    msgs_[i] = 0;
  }
  void EndRoundPushPullAt(HostId i) {
    double eff = params_.lambda;
    if (params_.revert == RevertMode::kAdaptive) {
      eff = 0.5 * params_.lambda * static_cast<double>(msgs_[i] + 1);
      if (eff > 1.0) eff = 1.0;
    }
    mass_[i].weight = (1.0 - eff) * mass_[i].weight + eff;
    mass_[i].value = (1.0 - eff) * mass_[i].value + eff * initial_[i];
    msgs_[i] = 0;
  }

  std::vector<Mass> mass_;
  std::vector<Mass> inbox_;
  std::vector<double> initial_;  // reversion anchors (the v0 values)
  std::vector<int32_t> msgs_;    // per-round indegree (adaptive reversion)
  PsrParams params_;
  TrafficMeter* meter_ = nullptr;
  RoundKernel kernel_;
  std::vector<Mass> outbox_;  // scratch: per-slot push payloads
};

}  // namespace dynagg

#endif  // DYNAGG_AGG_PUSH_SUM_REVERT_H_
