#include "agg/epoch_push_sum.h"

#include "common/macros.h"

namespace dynagg {

EpochPushSumSwarm::EpochPushSumSwarm(const std::vector<double>& values,
                                     const EpochParams& params,
                                     const std::vector<int>& phases)
    : nodes_(values.size()), params_(params) {
  DYNAGG_CHECK_GT(params_.epoch_length, 0);
  DYNAGG_CHECK(phases.empty() || phases.size() == values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    const int phase = phases.empty() ? 0 : phases[i] % params_.epoch_length;
    nodes_[i].Init(values[i], phase);
  }
}

void EpochPushSumSwarm::RunRound(const Environment& env,
                                 const Population& pop, Rng& rng) {
  kernel_.PlanExchangeRound(env, pop, rng);
  kernel_.ForEachExchange([this](HostId i, HostId peer) {
    EpochPushSumNode& a = nodes_[i];
    EpochPushSumNode& b = nodes_[peer];
    if (a.epoch() == b.epoch()) {
      PushSumNode::Exchange(a.state(), b.state());
    } else if (a.epoch() < b.epoch()) {
      // The laggard loses its in-progress mass and joins the newer epoch;
      // no aggregation value is exchanged this round.
      a.AdvanceToEpoch(b.epoch());
    } else {
      b.AdvanceToEpoch(a.epoch());
    }
  });
  for (const HostId i : pop.alive_ids()) {
    nodes_[i].Tick(params_.epoch_length);
  }
}

}  // namespace dynagg
