// Push-Sum-Revert with the Full-Transfer optimization (Section III.A, Fig 4).
//
// A reverting host's estimate carries a hard bias towards its own initial
// value. Full-Transfer removes the self-message entirely: each round the
// host splits its whole (reverted) mass into N parcels sent to N
// independently selected peers, so its next state is built exclusively from
// imported mass. The per-round estimate variance rises, but successive
// estimates decorrelate from the host's own value; averaging the mass
// received over the last T mass-bearing rounds ("iterations during which the
// host received no mass are skipped") yields a more accurate estimate —
// the paper measures sigma = 2.13 at lambda = 0.5 and 0.694 at lambda = 0.1
// with N = 4, T = 3 after a correlated half-failure (Fig 10b).

#ifndef DYNAGG_AGG_FULL_TRANSFER_H_
#define DYNAGG_AGG_FULL_TRANSFER_H_

#include <cstdint>
#include <vector>

#include "agg/aggregate.h"
#include "agg/push_sum.h"
#include "common/macros.h"
#include "common/rng.h"
#include "common/types.h"
#include "env/environment.h"
#include "sim/bandwidth.h"
#include "sim/population.h"
#include "sim/round_kernel.h"

namespace dynagg {

/// Full-Transfer configuration.
struct FullTransferParams {
  /// Reversion constant lambda in [0, 1].
  double lambda = 0.1;
  /// Number of parcels N the mass is split into each round (Fig 4 step 2).
  int parcels = 4;
  /// Number of most recent mass-bearing rounds T averaged for the estimate.
  int window = 3;
};

/// Per-host Full-Transfer state machine.
class FullTransferNode {
 public:
  /// (Re)initializes with local value `v0` and an empty estimate window.
  void Init(double v0, int window);

  void SetLocalValue(double v0) { initial_value_ = v0; }

  /// Emits the whole reverted mass as one parcel of 1/N of it; call exactly
  /// `parcels` times per round. The reverted total is computed on the first
  /// emission of the round.
  Mass EmitParcel(double lambda, int parcels);

  /// Accumulates a received parcel.
  void Deposit(const Mass& m) { inbox_ += m; }

  /// Adopts the inbox as next state; pushes it into the estimate window iff
  /// any mass arrived this round.
  void EndRound();

  /// Windowed estimate: sum(v) / sum(w) over the last T mass-bearing
  /// rounds. Falls back to the initial value before any mass is received.
  double Estimate() const;

  const Mass& mass() const { return mass_; }
  double initial_value() const { return initial_value_; }

 private:
  Mass mass_;
  Mass inbox_;
  Mass reverted_;        // cached reverted total for the current round
  bool emitting_ = false;
  double initial_value_ = 0.0;
  // Ring buffer of the last `window` mass-bearing rounds.
  std::vector<Mass> history_;
  int history_next_ = 0;
  int history_count_ = 0;
};

/// A population of Full-Transfer hosts driven one round at a time.
///
/// Structure-of-arrays layout (PushSumSwarm is the template): the node
/// class above stays as the semantic reference, but the swarm stores flat
/// parallel arrays — mass, inbox, the cached per-round reverted total, and
/// one shared history arena of `n * window` Masses (host i's ring lives at
/// [i * window, (i+1) * window)) — so rounds touch contiguous memory and
/// no per-host heap vectors. Element operations replicate the node
/// arithmetic expression-for-expression; bit-identity against a
/// FullTransferNode vector is pinned by tests/sim/round_kernel_test.cc.
class FullTransferSwarm {
 public:
  FullTransferSwarm(const std::vector<double>& values,
                    const FullTransferParams& params);

  /// Executes one gossip iteration: every alive host sends N parcels to N
  /// independently sampled peers, then all hosts fold their inboxes.
  void RunRound(const Environment& env, const Population& pop, Rng& rng);

  /// Windowed estimate: sum(v) / sum(w) over the last T mass-bearing
  /// rounds; the initial value before any mass is received.
  double Estimate(HostId id) const {
    Mass total;
    const Mass* row = &history_[static_cast<size_t>(id) * params_.window];
    for (int i = 0; i < hist_count_[id]; ++i) total += row[i];
    if (total.weight <= 0.0) return initial_[id];
    return total.value / total.weight;
  }
  int size() const { return static_cast<int>(mass_.size()); }
  const FullTransferParams& params() const { return params_; }
  const Mass& mass(HostId id) const { return mass_[id]; }
  double initial_value(HostId id) const { return initial_[id]; }

  /// Total live mass (current state only, not the estimate window).
  Mass TotalAliveMass(const Population& pop) const;

  /// Churn-join reset: (re)initializes host `id` to its pristine <1, v0>
  /// mass with an empty estimate window (FullTransferNode::Init
  /// semantics). Touches only `id`'s own slots.
  void OnJoin(HostId id) {
    mass_[id] = Mass{1.0, initial_[id]};
    inbox_[id] = Mass{};
    reverted_[id] = Mass{};
    emitting_[id] = 0;
    hist_next_[id] = 0;
    hist_count_[id] = 0;
  }

  /// Optionally records over-the-air traffic.
  void set_traffic_meter(TrafficMeter* meter) { meter_ = meter; }

  /// Worker threads for the parcel deposit scatter (bit-identical at any
  /// count).
  void set_intra_round_threads(int threads) {
    kernel_.set_intra_round_threads(threads);
  }

 private:
  // Element-wise replicas of the FullTransferNode round steps.
  Mass EmitParcelAt(HostId i) {
    if (!emitting_[i]) {
      // First parcel of the round: apply the reversion to the outgoing
      // total and zero the local mass (full transfer keeps nothing back).
      reverted_[i].weight =
          (1.0 - params_.lambda) * mass_[i].weight + params_.lambda;
      reverted_[i].value = (1.0 - params_.lambda) * mass_[i].value +
                           params_.lambda * initial_[i];
      mass_[i] = Mass{};
      emitting_[i] = 1;
    }
    const double inv = 1.0 / params_.parcels;
    return Mass{reverted_[i].weight * inv, reverted_[i].value * inv};
  }
  void EndRoundAt(HostId i) {
    emitting_[i] = 0;
    mass_[i] = inbox_[i];
    if (inbox_[i].weight > 0.0) {
      Mass* row = &history_[static_cast<size_t>(i) * params_.window];
      row[hist_next_[i]] = inbox_[i];
      hist_next_[i] = (hist_next_[i] + 1) % params_.window;
      if (hist_count_[i] < params_.window) ++hist_count_[i];
    }
    inbox_[i] = Mass{};
  }

  std::vector<Mass> mass_;
  std::vector<Mass> inbox_;
  std::vector<Mass> reverted_;     // cached reverted totals for the round
  std::vector<uint8_t> emitting_;  // reverted_ computed this round?
  std::vector<double> initial_;
  // One flat arena of per-host rings over the last `window` mass-bearing
  // rounds (stride = params_.window).
  std::vector<Mass> history_;
  std::vector<int32_t> hist_next_;
  std::vector<int32_t> hist_count_;
  FullTransferParams params_;
  TrafficMeter* meter_ = nullptr;
  RoundKernel kernel_;
  std::vector<Mass> outbox_;  // scratch: per-slot parcels
};

}  // namespace dynagg

#endif  // DYNAGG_AGG_FULL_TRANSFER_H_
