// Stream sketch protocols: count-min and count-sketch frequency estimation
// as gossip swarms (stream/stream_swarm.h) over the keyed stream workloads
// (workload.* keys; sim/workload.h).
//
// Spec surface:
//   protocol.epsilon / protocol.delta   accuracy target; the width is the
//                                       smallest power of two meeting it
//   protocol.width / protocol.depth     explicit shape overrides
//   workload.kind = zipf | uniform      key-draw distribution (required)
//   workload.keys / workload.batch      key-space size, arrivals per host
//                                       per round
//   workload.skew                       Zipf exponent (zipf only)
//   workload.rounds                     arrival rounds; -1 = every round
//   seeds.workload_stream               workload RNG stream (term-sum
//                                       grammar, default 3)
//
// Heavy-hitter records (finish hook): hh_precision(k) / hh_recall(k)
// against the tie-inclusive true heavy-hitter set, hh_weighted_err(k) over
// the true top-k, hh_frontier (whole-stream relative L1 error — the
// y axis of the sketch-bytes-vs-error frontier), and sketch_bytes (the
// x axis). All are averaged over hosts; rankings break ties by key id so
// the records are deterministic.

#include "stream/stream_protocols.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "common/status.h"
#include "scenario/config.h"
#include "scenario/spec.h"
#include "sim/workload.h"
#include "stream/freq_sketch.h"
#include "stream/stream_swarm.h"

namespace dynagg {
namespace scenario {
namespace {

using stream::SketchKind;
using stream::StreamSketchSwarm;
using stream::StreamSwarmParams;

/// The sketch hash geometry derives from DeriveSeed(trial_seed, 7): fixed
/// (not a seeds.* knob) so every host of a trial agrees on it, distinct
/// from the gossip (1), failure (2) and workload (3) streams.
constexpr uint64_t kSketchHashStream = 7;

/// Hard cap on counters per sketch: depth * width. A runaway epsilon
/// (protocol.epsilon = 1e-6) would otherwise allocate gigabytes per host.
constexpr int64_t kMaxSketchCells = int64_t{1} << 22;

struct StreamWorkloadParams {
  KeyStreamKind kind = KeyStreamKind::kZipf;
  uint64_t keys = 1000000;
  int batch = 16;
  double skew = 1.0;
  int rounds = -1;  // arrival rounds; -1 = every round
};

Result<StreamWorkloadParams> ParseStreamWorkloadSpec(const ScenarioSpec& spec) {
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams(
      "workload.", {"kind", "keys", "batch", "skew", "rounds"}));
  if (!spec.HasParam("workload.kind")) {
    return Status::InvalidArgument(
        "protocol '" + spec.protocol +
        "' consumes a keyed stream workload but the spec declares none: add "
        "workload.kind = zipf (skewed heavy-hitter traffic) or "
        "workload.kind = uniform (see `dynagg_run --list` for the workload "
        "catalog)");
  }
  StreamWorkloadParams out;
  DYNAGG_ASSIGN_OR_RETURN(const std::string kind,
                          spec.ParamString("workload.kind", "zipf"));
  if (kind == "zipf") {
    out.kind = KeyStreamKind::kZipf;
  } else if (kind == "uniform") {
    out.kind = KeyStreamKind::kUniform;
  } else {
    return Status::InvalidArgument(
        "workload.kind must be zipf or uniform, got '" + kind + "'");
  }
  DYNAGG_ASSIGN_OR_RETURN(const int64_t keys,
                          spec.ParamInt("workload.keys", 1000000));
  if (keys < 1) {
    return Status::InvalidArgument("workload.keys must be >= 1");
  }
  DYNAGG_ASSIGN_OR_RETURN(const int64_t batch,
                          spec.ParamInt("workload.batch", 16));
  if (batch < 1 || batch > 1000000) {
    return Status::InvalidArgument(
        "workload.batch must be in [1, 1000000] (arrivals per host per "
        "round)");
  }
  DYNAGG_ASSIGN_OR_RETURN(out.skew, spec.ParamDouble("workload.skew", 1.0));
  if (out.kind == KeyStreamKind::kUniform &&
      spec.HasParam("workload.skew")) {
    return Status::InvalidArgument(
        "workload.skew only applies to workload.kind = zipf");
  }
  if (out.kind == KeyStreamKind::kZipf &&
      (out.skew <= 0.0 || out.skew > 16.0)) {
    return Status::InvalidArgument(
        "workload.skew must be in (0, 16] (the Zipf exponent)");
  }
  DYNAGG_ASSIGN_OR_RETURN(const int64_t rounds,
                          spec.ParamInt("workload.rounds", -1));
  if (rounds != -1 && rounds < 1) {
    return Status::InvalidArgument(
        "workload.rounds must be >= 1 (arrival rounds, then gossip-only) "
        "or -1 (arrivals every round)");
  }
  out.keys = static_cast<uint64_t>(keys);
  out.batch = static_cast<int>(batch);
  out.rounds = static_cast<int>(rounds);
  return out;
}

/// One heavy-hitter metric selector, e.g. hh_precision(16).
struct HhSelector {
  std::string name;  // hh_precision | hh_recall | hh_weighted_err
  int k = 0;
};

Result<std::vector<HhSelector>> ParseHhSelectors(const ScenarioSpec& spec) {
  std::vector<HhSelector> out;
  for (const MetricSpec& m : spec.metrics) {
    if (m.name != "hh_precision" && m.name != "hh_recall" &&
        m.name != "hh_weighted_err") {
      continue;
    }
    const Result<int64_t> k = ParseInt64(m.arg);
    if (!k.ok() || *k < 1 || *k > 1000000 ||
        m.arg != std::to_string(*k)) {
      return Status::InvalidArgument(
          m.ToString() + ": the argument must be a plain top-k size in "
          "[1, 1000000], e.g. " + m.name + "(16)");
    }
    out.push_back({m.name, static_cast<int>(*k)});
  }
  return out;
}

struct FreqSketchSpecParams {
  int depth = 0;
  int width = 0;
  StreamWorkloadParams workload;
};

Result<FreqSketchSpecParams> ParseFreqSketchSpec(const ScenarioSpec& spec,
                                                 SketchKind kind) {
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams(
      "protocol.", {"epsilon", "delta", "width", "depth"}));
  DYNAGG_ASSIGN_OR_RETURN(const double epsilon,
                          spec.ParamDouble("protocol.epsilon", 0.05));
  DYNAGG_ASSIGN_OR_RETURN(const double delta,
                          spec.ParamDouble("protocol.delta", 0.05));
  if (epsilon <= 0.0 || epsilon > 0.5) {
    return Status::InvalidArgument(
        "protocol.epsilon must be in (0, 0.5] (additive error as a "
        "fraction of the stream mass)");
  }
  if (delta <= 0.0 || delta >= 1.0) {
    return Status::InvalidArgument(
        "protocol.delta must be in (0, 1) (per-key failure probability)");
  }
  FreqSketchSpecParams out;
  DYNAGG_ASSIGN_OR_RETURN(const int64_t width,
                          spec.ParamInt("protocol.width", 0));
  if (width == 0) {
    out.width = kind == SketchKind::kCountMin
                    ? stream::CountMinWidthForEpsilon(epsilon)
                    : stream::CountSketchWidthForEpsilon(epsilon);
  } else {
    if (width < 2 || width > (int64_t{1} << 20) ||
        (width & (width - 1)) != 0) {
      return Status::InvalidArgument(
          "protocol.width must be a power of two in [2, 2^20] (or 0 to "
          "derive it from protocol.epsilon)");
    }
    out.width = static_cast<int>(width);
  }
  DYNAGG_ASSIGN_OR_RETURN(const int64_t depth,
                          spec.ParamInt("protocol.depth", 0));
  if (depth == 0) {
    out.depth = stream::DepthForDelta(delta);
  } else {
    if (depth < 1 || depth > 64) {
      return Status::InvalidArgument(
          "protocol.depth must be in [1, 64] (or 0 to derive it from "
          "protocol.delta)");
    }
    out.depth = static_cast<int>(depth);
  }
  if (static_cast<int64_t>(out.depth) * out.width > kMaxSketchCells) {
    return Status::InvalidArgument(
        "sketch shape " + std::to_string(out.depth) + " x " +
        std::to_string(out.width) + " exceeds " +
        std::to_string(kMaxSketchCells) +
        " counters per host; raise protocol.epsilon / protocol.delta or "
        "set protocol.width / protocol.depth explicitly");
  }
  DYNAGG_ASSIGN_OR_RETURN(out.workload, ParseStreamWorkloadSpec(spec));
  DYNAGG_RETURN_IF_ERROR(ParseHhSelectors(spec).status());
  return out;
}

// ------------------------------------------------- heavy-hitter records ---

/// Emits the requested hh_* / sketch_bytes / hh_frontier scalars from the
/// swarm's final state against the workload generator's exact counts.
Status FinishHeavyHitters(const StreamSketchSwarm& swarm,
                          const TrialContext& ctx, Recorder& rec) {
  const ScenarioSpec& spec = *ctx.spec;
  DYNAGG_ASSIGN_OR_RETURN(const std::vector<HhSelector> selectors,
                          ParseHhSelectors(spec));
  if (MetricRequested(spec, "sketch_bytes")) {
    rec.AddScalar("sketch_bytes", static_cast<double>(swarm.sketch_bytes()));
  }
  const bool want_frontier = MetricRequested(spec, "hh_frontier");
  if (selectors.empty() && !want_frontier) return Status::OK();

  // Exact counts, sorted by (count desc, key asc) for a deterministic
  // ranking. truth[j] is the j-th true heavy hitter.
  std::vector<std::pair<uint64_t, double>> truth(swarm.TruthCounts().begin(),
                                                 swarm.TruthCounts().end());
  if (truth.empty()) {
    return Status::InvalidArgument(
        "hh_* metrics need a non-empty stream (workload.batch and "
        "workload.rounds produced no arrivals)");
  }
  std::sort(truth.begin(), truth.end(),
            [](const std::pair<uint64_t, double>& a,
               const std::pair<uint64_t, double>& b) {
              return a.second != b.second ? a.second > b.second
                                          : a.first < b.first;
            });
  const int m = static_cast<int>(truth.size());
  const double total = swarm.TruthTotal();

  // Precompute every truth key's slots (and signs) once; the per-host pass
  // below is then pure array reads.
  const stream::SketchHash& hash = swarm.hash();
  const int depth = hash.depth();
  std::vector<size_t> slots(static_cast<size_t>(m) * depth);
  std::vector<double> signs;
  const bool count_min = swarm.kind() == SketchKind::kCountMin;
  if (!count_min) signs.resize(static_cast<size_t>(m) * depth);
  for (int j = 0; j < m; ++j) {
    for (int r = 0; r < depth; ++r) {
      slots[static_cast<size_t>(j) * depth + r] = hash.Slot(r, truth[j].first);
      if (!count_min) {
        signs[static_cast<size_t>(j) * depth + r] =
            hash.Sign(r, truth[j].first);
      }
    }
  }

  const int n = swarm.size();
  std::vector<double> est(m);
  std::vector<int> order(m);
  std::vector<double> sum(selectors.size(), 0.0);
  double frontier_sum = 0.0;
  for (HostId id = 0; id < n; ++id) {
    const double* host = swarm.host_state(id);
    const double weight = swarm.host_weight(id);
    const double scale =
        weight > 0.0 ? static_cast<double>(n) / weight : 0.0;
    for (int j = 0; j < m; ++j) {
      const size_t base = static_cast<size_t>(j) * depth;
      double raw;
      if (count_min) {
        raw = host[slots[base]];
        for (int r = 1; r < depth; ++r) {
          raw = std::min(raw, host[slots[base + r]]);
        }
      } else {
        double rows[64];
        for (int r = 0; r < depth; ++r) {
          rows[r] = signs[base + r] * host[slots[base + r]];
        }
        raw = stream::MedianOfRows(rows, depth);
      }
      est[j] = scale * raw;
    }
    if (want_frontier) {
      double err = 0.0;
      for (int j = 0; j < m; ++j) err += std::abs(est[j] - truth[j].second);
      frontier_sum += err / total;
    }
    if (!selectors.empty()) {
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        return est[a] != est[b] ? est[a] > est[b]
                                : truth[a].first < truth[b].first;
      });
      for (size_t s = 0; s < selectors.size(); ++s) {
        const int k = std::min(selectors[s].k, m);
        if (selectors[s].name == "hh_weighted_err") {
          double err = 0.0;
          double mass = 0.0;
          for (int j = 0; j < k; ++j) {
            err += std::abs(est[j] - truth[j].second);
            mass += truth[j].second;
          }
          sum[s] += err / mass;
          continue;
        }
        // Tie-inclusive true heavy-hitter set: every key at least as
        // frequent as the k-th (|T| >= k). Membership is j < t_size since
        // truth is sorted.
        const double kth = truth[k - 1].second;
        int t_size = k;
        while (t_size < m && truth[t_size].second >= kth) ++t_size;
        int inter = 0;
        for (int j = 0; j < k; ++j) {
          if (order[j] < t_size) ++inter;
        }
        sum[s] += selectors[s].name == "hh_precision"
                      ? static_cast<double>(inter) / k
                      : static_cast<double>(inter) / t_size;
      }
    }
  }
  // Emission order follows the spec's record list, so column order is
  // spec-declared like every other selector family.
  size_t next = 0;
  for (const MetricSpec& metric : spec.metrics) {
    if (metric.name == "hh_precision" || metric.name == "hh_recall" ||
        metric.name == "hh_weighted_err") {
      // ParseHhSelectors collected the hh_* metrics in this same order.
      rec.AddScalar(selectors[next].name + "_" +
                        std::to_string(selectors[next].k),
                    sum[next] / n);
      ++next;
    } else if (want_frontier && metric.name == "hh_frontier") {
      rec.AddScalar("hh_frontier", frontier_sum / n);
    }
  }
  return Status::OK();
}

// --------------------------------------------------------- swarm factory ---

Result<int> CheckedStreamHosts(const EnvHandle& env) {
  const int n = env.env->num_hosts();
  if (n <= 0) return Status::InvalidArgument("environment has no hosts");
  return n;
}

Result<SwarmHandle> MakeFreqSketch(const TrialContext& ctx, EnvHandle& env,
                                   SketchKind kind) {
  DYNAGG_ASSIGN_OR_RETURN(const FreqSketchSpecParams cfg,
                          ParseFreqSketchSpec(*ctx.spec, kind));
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedStreamHosts(env));
  const int64_t total_bytes = int64_t{2} * n *
                              (int64_t{cfg.depth} * cfg.width + 2) *
                              static_cast<int64_t>(sizeof(double));
  if (total_bytes > (int64_t{1} << 33)) {
    return Status::InvalidArgument(
        "stream swarm state would need " + std::to_string(total_bytes) +
        " bytes (hosts x sketch cells x 2 arrays); shrink the sketch or "
        "the population");
  }
  DYNAGG_ASSIGN_OR_RETURN(const uint64_t workload_stream,
                          WorkloadStream(*ctx.spec, ctx, n));
  StreamSwarmParams params;
  params.kind = kind;
  params.depth = cfg.depth;
  params.width = cfg.width;
  params.hash_seed = DeriveSeed(ctx.trial_seed, kSketchHashStream);
  params.batch = cfg.workload.batch;
  params.arrival_rounds = cfg.workload.rounds;
  const KeyedStreamGen gen(cfg.workload.kind, cfg.workload.keys,
                           cfg.workload.skew,
                           DeriveSeed(ctx.trial_seed, workload_stream));
  auto swarm = std::make_shared<StreamSketchSwarm>(n, params, gen);
  StreamSketchSwarm* raw = swarm.get();
  SwarmHandle h;
  h.run_round = [raw](const Environment& e, const Population& p, Rng& r) {
    raw->RunRound(e, p, r);
  };
  h.estimate = [raw](HostId id) { return raw->Estimate(id); };
  h.truth = [raw](const Population&) { return raw->TruthTotal(); };
  h.state_bytes = static_cast<double>(raw->message_bytes());
  h.gossip_bytes = static_cast<double>(raw->message_bytes());
  h.set_meter = [raw](TrafficMeter* m) { raw->set_traffic_meter(m); };
  h.set_threads = [raw](int t) { raw->set_intra_round_threads(t); };
  h.on_join = [raw](HostId id) { raw->OnJoin(id); };
  h.finish = [raw](const TrialContext& c, Recorder& rec) {
    return FinishHeavyHitters(*raw, c, rec);
  };
  h.keepalive = std::move(swarm);
  return h;
}

}  // namespace

namespace internal {

void RegisterStreamProtocols(Registry<ProtocolDef>& registry) {
  const auto sketch = [&registry](const std::string& name, SketchKind kind) {
    ProtocolDef def;
    def.make_swarm = [kind](const TrialContext& ctx, EnvHandle& env) {
      return MakeFreqSketch(ctx, env, kind);
    };
    def.threads_capable = true;
    def.join_capable = true;
    def.models_gossip_bytes = true;
    def.consumes_workload = true;
    def.validate = [kind](const ScenarioSpec& spec) {
      return ParseFreqSketchSpec(spec, kind).status();
    };
    def.extra_metrics = {"hh_precision(*)", "hh_recall(*)",
                         "hh_weighted_err(*)", "sketch_bytes", "hh_frontier"};
    DYNAGG_CHECK(registry.Register(name, std::move(def)).ok());
  };
  sketch("count-min", SketchKind::kCountMin);
  sketch("count-sketch-freq", SketchKind::kCountSketch);
}

}  // namespace internal
}  // namespace scenario
}  // namespace dynagg
