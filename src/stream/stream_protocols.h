// Registration hook for the stream sketch protocol family (`count-min`,
// `count-sketch-freq`): gossiped mergeable frequency sketches over the
// keyed stream workloads (workload.* spec keys; sim/workload.h). Called by
// the protocol registry bootstrap in scenario/trial.cc.
//
// The count-sketch frequency estimator registers as `count-sketch-freq`
// because the name `count-sketch` already belongs to the paper's FM-based
// distinct-count sketch (scenario/protocols.cc).

#ifndef DYNAGG_STREAM_STREAM_PROTOCOLS_H_
#define DYNAGG_STREAM_STREAM_PROTOCOLS_H_

#include "scenario/registry.h"
#include "scenario/trial.h"

namespace dynagg {
namespace scenario {
namespace internal {

void RegisterStreamProtocols(Registry<ProtocolDef>& registry);

}  // namespace internal
}  // namespace scenario
}  // namespace dynagg

#endif  // DYNAGG_STREAM_STREAM_PROTOCOLS_H_
