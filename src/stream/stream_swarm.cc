#include "stream/stream_swarm.h"

#include <algorithm>

#include "common/macros.h"
#include "obs/telemetry.h"

namespace dynagg {
namespace stream {

StreamSketchSwarm::StreamSketchSwarm(int num_hosts,
                                     const StreamSwarmParams& params,
                                     const KeyedStreamGen& gen)
    : n_(num_hosts),
      params_(params),
      gen_(gen),
      hash_(params.depth, params.width, params.hash_seed),
      stride_(hash_.cells() + 2),
      state_(static_cast<size_t>(num_hosts) * stride_, 0.0),
      inbox_(static_cast<size_t>(num_hosts) * stride_, 0.0) {
  DYNAGG_CHECK_GE(n_, 1);
  // Push-sum init: weight 1, no mass, empty sketch.
  for (int i = 0; i < n_; ++i) {
    state_[static_cast<size_t>(i) * stride_ + hash_.cells()] = 1.0;
  }
}

void StreamSketchSwarm::OnJoin(HostId id) {
  double* host = &state_[static_cast<size_t>(id) * stride_];
  std::fill(host, host + stride_, 0.0);
  host[hash_.cells()] = 1.0;  // push-sum weight
  double* in = &inbox_[static_cast<size_t>(id) * stride_];
  std::fill(in, in + stride_, 0.0);
}

void StreamSketchSwarm::AbsorbArrivals(const Population& pop) {
  // Local stream intake is protocol work on host state, not gossip: time
  // it under the apply phase, outside the kernel's own spans.
  obs::ScopedPhase span(obs::Phase::kApply);
  const size_t cells = hash_.cells();
  for (const HostId id : pop.alive_ids()) {
    gen_.FillBatch(id, round_, params_.batch, &batch_keys_);
    double* host = &state_[static_cast<size_t>(id) * stride_];
    for (const uint64_t key : batch_keys_) {
      if (params_.kind == SketchKind::kCountMin) {
        for (int r = 0; r < hash_.depth(); ++r) host[hash_.Slot(r, key)] += 1.0;
      } else {
        for (int r = 0; r < hash_.depth(); ++r) {
          host[hash_.Slot(r, key)] += hash_.Sign(r, key);
        }
      }
      host[cells + 1] += 1.0;  // mass scalar
      if (track_truth_) truth_[key] += 1.0;
    }
    truth_total_ += static_cast<double>(batch_keys_.size());
  }
}

void StreamSketchSwarm::RunRound(const Environment& env, const Population& pop,
                                 Rng& rng) {
  if (params_.batch > 0 &&
      (params_.arrival_rounds < 0 || round_ < params_.arrival_rounds)) {
    AbsorbArrivals(pop);
  }
  // Mass-splitting push round over the whole stride, exactly the push-sum
  // shape: halve the sender's stride in place, deposit it into the own
  // inbox and the partner's inbox (both to the sender when unmatched),
  // then adopt the summed inboxes. The in-place halving is safe because
  // every deposit of slot k reads only slot k's initiator, whose stride
  // was finalized when the slot emitted, and end-of-round adoption
  // overwrites the halved state anyway.
  const PartnerPlan& plan = kernel_.PlanPushRound(env, pop, rng);
  if (meter_ != nullptr) {
    meter_->RecordMessages(plan.CountMatched(), message_bytes());
  }
  const auto deposit_from = [this](HostId dst, HostId src) {
    const double* from = &state_[static_cast<size_t>(src) * stride_];
    double* to = &inbox_[static_cast<size_t>(dst) * stride_];
    for (size_t c = 0; c < stride_; ++c) to[c] += from[c];
  };
  if (!kernel_.parallel_deposits()) {
    kernel_.ForEachPushSlot(
        [this](HostId src) {
          double* s = &state_[static_cast<size_t>(src) * stride_];
          double* in = &inbox_[static_cast<size_t>(src) * stride_];
          for (size_t c = 0; c < stride_; ++c) {
            s[c] *= 0.5;
            in[c] += s[c];  // the self-kept half
          }
          return src;
        },
        deposit_from,
        [this](HostId dst) {
          __builtin_prefetch(&inbox_[static_cast<size_t>(dst) * stride_], 1);
        });
  } else {
    kernel_.EmitAndScatter(
        &outbox_, /*self_echo=*/true, n_,
        [this](HostId src) {
          double* s = &state_[static_cast<size_t>(src) * stride_];
          for (size_t c = 0; c < stride_; ++c) s[c] *= 0.5;
          return src;
        },
        deposit_from);
  }
  if (pop.version() == 0) {
    state_.swap(inbox_);
    std::fill(inbox_.begin(), inbox_.end(), 0.0);
  } else {
    for (const HostId i : pop.alive_ids()) {
      double* s = &state_[static_cast<size_t>(i) * stride_];
      double* in = &inbox_[static_cast<size_t>(i) * stride_];
      std::copy(in, in + stride_, s);
      std::fill(in, in + stride_, 0.0);
    }
  }
  ++round_;
}

double StreamSketchSwarm::Estimate(HostId id) const {
  const double* host = host_state(id);
  const double weight = host[hash_.cells()];
  if (weight <= 0.0) return 0.0;
  return static_cast<double>(n_) * host[hash_.cells() + 1] / weight;
}

double StreamSketchSwarm::KeyEstimate(HostId id, uint64_t key) const {
  const double* host = host_state(id);
  const double weight = host[hash_.cells()];
  if (weight <= 0.0) return 0.0;
  double raw;
  if (params_.kind == SketchKind::kCountMin) {
    raw = host[hash_.Slot(0, key)];
    for (int r = 1; r < hash_.depth(); ++r) {
      raw = std::min(raw, host[hash_.Slot(r, key)]);
    }
  } else {
    double rows[64];
    for (int r = 0; r < hash_.depth(); ++r) {
      rows[r] = hash_.Sign(r, key) * host[hash_.Slot(r, key)];
    }
    raw = MedianOfRows(rows, hash_.depth());
  }
  return static_cast<double>(n_) * raw / weight;
}

}  // namespace stream
}  // namespace dynagg
