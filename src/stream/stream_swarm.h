// StreamSketchSwarm: gossiped frequency sketches over a keyed stream.
//
// Every host holds one frequency sketch (count-min or count-sketch, see
// freq_sketch.h) plus a push-sum weight and a total-mass scalar, packed
// into one flat per-host stride of doubles:
//
//   [ depth * width sketch counters | weight | mass ]
//
// Each round, the host first absorbs its keyed stream arrivals (the
// deterministic per-(host, round) batch from KeyedStreamGen: +1 into the
// sketch and the mass scalar per key), then gossips by mass splitting on
// the shared two-phase round kernel: the whole stride is halved in place
// and deposited into the own inbox and the partner's inbox — exactly
// PushSumSwarm's push round, but with the sketch counters riding along as
// extra mass components. Because sketches are linear, each host's sketch
// converges to (global stream sketch) * (weight / n), so
// n * counter / weight estimates the *global* frequency of a key from any
// single host.
//
// Determinism: arrivals are applied in alive order from per-(host, round)
// RNG streams, and the kernel's scatter preserves exact per-destination
// deposit order, so rounds are bit-identical at any intra_round_threads
// count. Halving doubles is exact; sums are fixed-order.

#ifndef DYNAGG_STREAM_STREAM_SWARM_H_
#define DYNAGG_STREAM_STREAM_SWARM_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "env/environment.h"
#include "sim/bandwidth.h"
#include "sim/population.h"
#include "sim/round_kernel.h"
#include "sim/workload.h"
#include "stream/freq_sketch.h"

namespace dynagg {
namespace stream {

/// Which sketch estimator the swarm's strides hold.
enum class SketchKind { kCountMin, kCountSketch };

struct StreamSwarmParams {
  SketchKind kind = SketchKind::kCountMin;
  int depth = 2;
  int width = 64;  // power of two
  uint64_t hash_seed = 0;
  int batch = 16;           // stream arrivals per host per round
  int arrival_rounds = -1;  // rounds with arrivals; -1 = every round
};

class StreamSketchSwarm {
 public:
  StreamSketchSwarm(int num_hosts, const StreamSwarmParams& params,
                    const KeyedStreamGen& gen);

  /// One gossip round: absorb this round's arrivals, then mass-split the
  /// strides over the planned partners and adopt the summed inboxes.
  void RunRound(const Environment& env, const Population& pop, Rng& rng);

  /// Host `id`'s estimate of the TOTAL global stream mass (arrivals so
  /// far), via the push-sum mass/weight ratio.
  double Estimate(HostId id) const;

  /// Host `id`'s estimate of key `key`'s global frequency: the sketch
  /// point query rescaled by n / weight.
  double KeyEstimate(HostId id, uint64_t key) const;

  /// Total arrivals generated so far (the truth for Estimate).
  double TruthTotal() const { return truth_total_; }

  /// Exact per-key global counts (only populated while track_truth is on).
  const std::unordered_map<uint64_t, double>& TruthCounts() const {
    return truth_;
  }

  /// Disables the exact per-key truth map (throughput benchmarks).
  void set_track_truth(bool on) { track_truth_ = on; }

  void set_traffic_meter(TrafficMeter* meter) { meter_ = meter; }
  void set_intra_round_threads(int threads) {
    kernel_.set_intra_round_threads(threads);
  }

  /// Churn-join reset: host `id` restarts with an empty sketch, weight 1
  /// and zero mass (the push-sum init state), and a cleared inbox. The
  /// stream truth is global, so a rebirth does not rewind truth_ — the
  /// old incarnation's absorbed arrivals leave the gossiped mass, which
  /// is exactly the mass-loss churn exposes in mass-conserving gossip.
  void OnJoin(HostId id);

  int size() const { return n_; }
  SketchKind kind() const { return params_.kind; }
  const SketchHash& hash() const { return hash_; }

  /// Raw stride access for the heavy-hitter record pass: the sketch
  /// counters start at host_state(id)[0]; weight follows the counters.
  const double* host_state(HostId id) const { return &state_[id * stride_]; }
  double host_weight(HostId id) const {
    return state_[id * stride_ + hash_.cells()];
  }

  /// Per-host sketch counter bytes (the accuracy/size frontier axis).
  size_t sketch_bytes() const { return hash_.cells() * sizeof(double); }
  /// Modelled gossip payload: the full stride (counters + weight + mass).
  int64_t message_bytes() const {
    return static_cast<int64_t>(stride_ * sizeof(double));
  }

 private:
  void AbsorbArrivals(const Population& pop);

  int n_;
  StreamSwarmParams params_;
  KeyedStreamGen gen_;
  SketchHash hash_;
  size_t stride_;  // cells + 2 (weight, mass)
  std::vector<double> state_;
  std::vector<double> inbox_;
  std::vector<HostId> outbox_;         // EmitAndScatter payloads: source ids
  std::vector<uint64_t> batch_keys_;   // FillBatch scratch
  std::unordered_map<uint64_t, double> truth_;
  double truth_total_ = 0.0;
  bool track_truth_ = true;
  int round_ = 0;
  TrafficMeter* meter_ = nullptr;
  RoundKernel kernel_;
};

}  // namespace stream
}  // namespace dynagg

#endif  // DYNAGG_STREAM_STREAM_SWARM_H_
