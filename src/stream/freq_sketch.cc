#include "stream/freq_sketch.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/rng.h"

namespace dynagg {
namespace stream {
namespace {

constexpr double kE = 2.718281828459045235;

int NextPow2AtLeast(double x) {
  int width = 2;
  while (width < x) {
    DYNAGG_CHECK_LT(width, 1 << 30);
    width <<= 1;
  }
  return width;
}

}  // namespace

int CountMinWidthForEpsilon(double epsilon) {
  DYNAGG_CHECK_GT(epsilon, 0.0);
  return NextPow2AtLeast(std::ceil(kE / epsilon));
}

int CountSketchWidthForEpsilon(double epsilon) {
  DYNAGG_CHECK_GT(epsilon, 0.0);
  return NextPow2AtLeast(std::ceil(kE / (epsilon * epsilon)));
}

int DepthForDelta(double delta) {
  DYNAGG_CHECK_GT(delta, 0.0);
  DYNAGG_CHECK_LT(delta, 1.0);
  return std::max(1, static_cast<int>(std::ceil(std::log(1.0 / delta))));
}

SketchHash::SketchHash(int depth, int width, uint64_t seed)
    : depth_(depth),
      width_(width),
      mask_(static_cast<uint64_t>(width) - 1),
      seed_(seed) {
  DYNAGG_CHECK_GE(depth_, 1);
  DYNAGG_CHECK_LE(depth_, 64);  // row estimates fit a stack array
  DYNAGG_CHECK_GE(width_, 2);
  DYNAGG_CHECK((static_cast<uint64_t>(width_) & mask_) == 0);  // power of two
  row_seeds_.reserve(depth_);
  sign_seeds_.reserve(depth_);
  SplitMix64 sm(seed);
  for (int r = 0; r < depth_; ++r) {
    row_seeds_.push_back(sm.Next());
    sign_seeds_.push_back(sm.Next());
  }
}

double MedianOfRows(double* scratch, int depth) {
  std::sort(scratch, scratch + depth);
  return depth % 2 == 1
             ? scratch[depth / 2]
             : 0.5 * (scratch[depth / 2 - 1] + scratch[depth / 2]);
}

CountMinSketch::CountMinSketch(int depth, int width, uint64_t seed)
    : hash_(depth, width, seed), counters_(hash_.cells(), 0.0) {}

double CountMinSketch::Estimate(uint64_t key) const {
  double est = counters_[hash_.Slot(0, key)];
  for (int r = 1; r < hash_.depth(); ++r) {
    est = std::min(est, counters_[hash_.Slot(r, key)]);
  }
  return est;
}

void CountMinSketch::Merge(const CountMinSketch& other) {
  DYNAGG_CHECK(hash_.SameGeometry(other.hash_));
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
}

CountSketch::CountSketch(int depth, int width, uint64_t seed)
    : hash_(depth, width, seed), counters_(hash_.cells(), 0.0) {}

double CountSketch::Estimate(uint64_t key) const {
  double rows[64];
  for (int r = 0; r < hash_.depth(); ++r) {
    rows[r] = hash_.Sign(r, key) * counters_[hash_.Slot(r, key)];
  }
  return MedianOfRows(rows, hash_.depth());
}

void CountSketch::Merge(const CountSketch& other) {
  DYNAGG_CHECK(hash_.SameGeometry(other.hash_));
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
}

}  // namespace stream
}  // namespace dynagg
