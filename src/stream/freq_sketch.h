// Mergeable frequency sketches: count-min and count-sketch.
//
// Both structures answer point frequency queries over a keyed stream in a
// fixed-size array of counters, and both are *mergeable*: merging two
// sketches built over disjoint streams gives exactly the sketch of the
// concatenated stream, which is what lets them ride the gossip round
// kernel as swarm state (src/stream/stream_swarm.h).
//
// Layout choices are line-rate idioms: widths are powers of two so row
// indexing is a mask (no modulo), counters live in one flat preallocated
// array (row-major, depth x width), and Add/Estimate/Merge allocate
// nothing. Counters are doubles — integer counts below 2^53 are exact, and
// the swarm's mass-splitting gossip halves counters (exact: exponent
// decrement) and adds them (deterministic given deposit order), so merges
// are byte-stable in any association.

#ifndef DYNAGG_STREAM_FREQ_SKETCH_H_
#define DYNAGG_STREAM_FREQ_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/hash.h"

namespace dynagg {
namespace stream {

/// Smallest power of two >= ceil(e / epsilon): the count-min width giving
/// additive error <= epsilon * N (stream mass N) per row in expectation.
int CountMinWidthForEpsilon(double epsilon);

/// Smallest power of two >= ceil(e / epsilon^2): the count-sketch width for
/// additive error <= epsilon * N with the variance-based bound.
int CountSketchWidthForEpsilon(double epsilon);

/// ceil(ln(1 / delta)) rows, at least 1: failure probability <= delta.
int DepthForDelta(double delta);

/// The hash geometry shared by both sketches: `depth` rows of `width`
/// (power of two) counters, per-row slot and sign hashes derived from one
/// seed. Two sketches are mergeable iff their geometries are identical
/// (same depth, width, and seed).
class SketchHash {
 public:
  SketchHash(int depth, int width, uint64_t seed);

  int depth() const { return depth_; }
  int width() const { return width_; }
  uint64_t seed() const { return seed_; }
  size_t cells() const { return static_cast<size_t>(depth_) * width_; }

  /// Flat row-major index of `key`'s counter in row `row`.
  size_t Slot(int row, uint64_t key) const {
    return static_cast<size_t>(row) * width_ +
           (Mix64(key ^ row_seeds_[row]) & mask_);
  }

  /// +-1 sign hash of `key` in row `row` (count-sketch only).
  double Sign(int row, uint64_t key) const {
    return (Mix64(key ^ sign_seeds_[row]) & 1) ? 1.0 : -1.0;
  }

  bool SameGeometry(const SketchHash& other) const {
    return depth_ == other.depth_ && width_ == other.width_ &&
           seed_ == other.seed_;
  }

 private:
  int depth_;
  int width_;
  uint64_t mask_;
  uint64_t seed_;
  std::vector<uint64_t> row_seeds_;
  std::vector<uint64_t> sign_seeds_;
};

/// Count-min: each row counts `key` in one hashed cell; the estimate is
/// the minimum over rows. Never underestimates a non-negative stream;
/// overestimates by at most epsilon * N with probability 1 - delta.
class CountMinSketch {
 public:
  CountMinSketch(int depth, int width, uint64_t seed);

  void Add(uint64_t key, double amount) {
    for (int r = 0; r < hash_.depth(); ++r) {
      counters_[hash_.Slot(r, key)] += amount;
    }
  }

  double Estimate(uint64_t key) const;

  /// Elementwise add; requires identical geometry.
  void Merge(const CountMinSketch& other);

  const SketchHash& hash() const { return hash_; }
  const std::vector<double>& counters() const { return counters_; }
  size_t bytes() const { return counters_.size() * sizeof(double); }

 private:
  SketchHash hash_;
  std::vector<double> counters_;
};

/// Count-sketch: each row adds a +-1 signed count; the estimate is the
/// median over rows of the signed counter. Unbiased per row, so it can
/// under- as well as overestimate; the error bound depends on the stream's
/// L2 norm rather than its mass.
class CountSketch {
 public:
  CountSketch(int depth, int width, uint64_t seed);

  void Add(uint64_t key, double amount) {
    for (int r = 0; r < hash_.depth(); ++r) {
      counters_[hash_.Slot(r, key)] += hash_.Sign(r, key) * amount;
    }
  }

  double Estimate(uint64_t key) const;

  /// Elementwise add; requires identical geometry.
  void Merge(const CountSketch& other);

  const SketchHash& hash() const { return hash_; }
  const std::vector<double>& counters() const { return counters_; }
  size_t bytes() const { return counters_.size() * sizeof(double); }

 private:
  SketchHash hash_;
  std::vector<double> counters_;
};

/// Median over rows of `row_values[0..depth)`, averaging the two middle
/// order statistics when depth is even. Shared by CountSketch::Estimate
/// and the swarm's flat-array estimator; `scratch` must hold `depth`
/// doubles and is clobbered.
double MedianOfRows(double* scratch, int depth);

}  // namespace stream
}  // namespace dynagg

#endif  // DYNAGG_STREAM_FREQ_SKETCH_H_
