// Chrome trace-event export for profiled runs.
//
// Renders the span streams collected in profile mode as a Chrome
// trace-event JSON object ({"traceEvents": [...]}) loadable in Perfetto
// (ui.perfetto.dev) and chrome://tracing. The mapping:
//
//   process (pid)   one per profiled experiment, named after it
//   thread (tid)    one per executor worker; every span of a unit lands on
//                   the worker that ran the unit
//   complete event  one "ph": "X" event per closed span — trial, round,
//                   and kernel-phase spans nest by time containment, so a
//                   unit renders as a trial bar over round bars over
//                   plan/apply/scatter/record bars (a flamegraph)
//
// Timestamps are microseconds relative to the earliest span across all
// experiments, so profiles start at t = 0 regardless of process uptime.

#ifndef DYNAGG_OBS_TRACE_EXPORT_H_
#define DYNAGG_OBS_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "obs/telemetry.h"

namespace dynagg {
namespace obs {

/// One profiled experiment: its display name and the per-unit telemetry
/// (each unit carries the worker that ran it and its span stream).
struct ProcessProfile {
  std::string name;
  std::vector<TrialTelemetry> units;
};

/// Renders `processes` as Chrome trace-event JSON. Units without span
/// events contribute nothing; an all-empty input still renders a valid
/// (empty) trace document.
std::string RenderChromeTrace(const std::vector<ProcessProfile>& processes);

}  // namespace obs
}  // namespace dynagg

#endif  // DYNAGG_OBS_TRACE_EXPORT_H_
