// Low-overhead run telemetry: phase-timing spans and engine counters.
//
// The executor installs one TrialTelemetry sink per (sweep, sweep2, trial)
// unit into a thread-local pointer for the duration of the unit
// (ScopedTrial); the round driver, trace runner, round kernel and the
// environments then record into whatever sink the calling thread carries:
//
//   ScopedTrial              whole-unit wall clock, sink installation
//   ScopedRound              one gossip round (nests the phases below)
//   ScopedPhase(kSetup)      environment + swarm construction, pre-loop work
//   ScopedPhase(kPlan)       Environment::BuildPlan partner planning
//   ScopedPhase(kApply)      protocol apply walk (exchange / emit)
//   ScopedPhase(kScatter)    RoundKernel::ScatterDeposits
//   ScopedPhase(kRecord)     metric evaluation (round ends, trace samples)
//   Count(counter, n)        cheap engine counters (cache hits, RNG draws,
//                            planned exchanges, deposited bytes, ...)
//
// Cost model: when no sink is installed (telemetry off — the default),
// every hook is a thread-local pointer test and nothing else; no
// allocation, no clock read. When a sink is installed, spans read the
// monotonic clock twice per phase per round (never per slot) and counters
// are plain 64-bit adds, so `telemetry = summary` stays well under the
// documented 2% budget on a 100k-host round. Telemetry never feeds back
// into the simulation: enabling it cannot perturb any recorded metric.
//
// Threading: the sink pointer is thread-local and each unit runs on one
// executor worker, so TrialTelemetry needs no synchronization. Threads the
// engine spawns *inside* a round (ScatterDeposits workers) carry a null
// sink and record nothing — the scatter phase is timed around the whole
// fork/join by the spawning thread.

#ifndef DYNAGG_OBS_TELEMETRY_H_
#define DYNAGG_OBS_TELEMETRY_H_

#include <cstdint>
#include <vector>

namespace dynagg {
namespace obs {

/// The kernel phases a round decomposes into (plus the per-trial setup).
enum class Phase : int {
  kSetup = 0,  // environment + swarm construction, pre-round-loop work
  kPlan,       // Environment::BuildPlan (partner planning)
  kApply,      // protocol apply walk (pairwise exchanges / payload emit)
  kScatter,    // RoundKernel::ScatterDeposits (destination-sharded deposits)
  kRecord,     // metric evaluation (on_round_end, trace samples, finish)
};
constexpr int kNumPhases = 5;

/// Lower-case stable phase name ("setup", "plan", ...), used for summary
/// table columns (<name>_ms) and trace event names.
const char* PhaseName(Phase phase);

/// Engine counters bumped at instrumentation sites. All are exact and
/// deterministic for a fixed spec (they count work, not time), so the
/// executor's per-cell sums are thread-count independent.
enum class Counter : int {
  kPlanCacheHits = 0,     // per-host alive-row plan caches reused
  kPlanCacheRebuilds,     // per-host alive-row plan caches rebuilt
  kAliveBitmapRebuilds,   // environment alive-bitmap rebuilds
  kRngDraws,              // xoshiro outputs consumed by the trial's streams
  kGossipExchanges,       // partner slots planned across all rounds
  kDepositBytes,          // payload bytes scattered by push-mode rounds
  kEarlyStopRounds,       // budgeted rounds skipped by early convergence
  kPoolDispatchNs,        // worker-pool fork/join wall ns (whole dispatch)
  kPoolWaitNs,            // ns the dispatcher idled waiting on pool workers
  kChurnJoins,            // first-time arrivals admitted by churn plans
  kChurnRebirths,         // state-reset ID-reuse rebirths from churn plans
};
constexpr int kNumCounters = 11;

/// Stable counter name ("plan_cache_hits", ...), used for summary columns.
const char* CounterName(Counter counter);

/// Monotonic nanoseconds; one process-wide clock so span timestamps from
/// different executor workers share a timeline in the exported profile.
int64_t NowNs();

/// One closed span, recorded only in profile mode. Phase spans carry the
/// round they ran under (-1 = outside the round loop, e.g. setup). Pool
/// spans nest inside the scatter phase and are deliberately NOT phases:
/// the executor's span_cover_pct sums all phase_ns, so a nested phase
/// would double-count coverage — the pool reports through the
/// pool_dispatch_ns / pool_wait_ns counters instead, plus these trace-only
/// spans (phase 0 = dispatch, 1 = wait) in profile mode.
struct SpanEvent {
  enum Kind : uint8_t { kTrial = 0, kRound = 1, kPhase = 2, kPool = 3 };
  uint8_t kind = kTrial;
  uint8_t phase = 0;   // Phase for kPhase; 0=dispatch/1=wait for kPool
  int32_t round = -1;  // meaningful for kRound / kPhase / kPool
  int64_t start_ns = 0;
  int64_t dur_ns = 0;
};

/// Everything one unit records. Accumulators are always filled while a
/// sink is installed; the raw span stream is kept only in profile mode.
struct TrialTelemetry {
  // Identity, filled by the executor.
  int unit = 0;
  int worker = 0;
  int trial = 0;

  // Accumulators (summary + profile).
  int64_t phase_ns[kNumPhases] = {};
  int64_t phase_calls[kNumPhases] = {};
  int64_t counters[kNumCounters] = {};
  int rounds = 0;
  int64_t trial_start_ns = 0;
  int64_t trial_dur_ns = 0;

  // Profile mode: the raw closed-span stream for the trace export.
  bool profile = false;
  std::vector<SpanEvent> events;

  // Scope bookkeeping (managed by ScopedRound).
  int32_t current_round = -1;
};

namespace internal {
// The calling thread's sink; null = telemetry off. Defined in telemetry.cc,
// exposed here so the hooks below inline to a single TLS pointer test.
extern thread_local TrialTelemetry* tls_sink;
}  // namespace internal

/// The calling thread's telemetry sink, or null when telemetry is off.
inline TrialTelemetry* Current() { return internal::tls_sink; }

/// Adds `n` to `counter` on the calling thread's sink; no-op when off.
inline void Count(Counter counter, int64_t n = 1) {
  if (TrialTelemetry* t = internal::tls_sink) {
    t->counters[static_cast<int>(counter)] += n;
  }
}

/// Installs `sink` as the calling thread's telemetry target and times the
/// whole unit. Pass null to run with telemetry off (all hooks no-op).
class ScopedTrial {
 public:
  explicit ScopedTrial(TrialTelemetry* sink) : sink_(sink) {
    internal::tls_sink = sink;
    if (sink_ != nullptr) sink_->trial_start_ns = NowNs();
  }
  ~ScopedTrial() {
    if (sink_ != nullptr) {
      sink_->trial_dur_ns = NowNs() - sink_->trial_start_ns;
      if (sink_->profile) {
        sink_->events.push_back({SpanEvent::kTrial, 0, -1,
                                 sink_->trial_start_ns, sink_->trial_dur_ns});
      }
    }
    internal::tls_sink = nullptr;
  }
  ScopedTrial(const ScopedTrial&) = delete;
  ScopedTrial& operator=(const ScopedTrial&) = delete;

 private:
  TrialTelemetry* sink_;
};

/// Times one gossip round and tags nested phase spans with its index.
class ScopedRound {
 public:
  explicit ScopedRound(int round) : sink_(internal::tls_sink) {
    if (sink_ == nullptr) return;
    start_ = NowNs();
    prev_round_ = sink_->current_round;
    sink_->current_round = round;
    round_ = round;
    ++sink_->rounds;
  }
  ~ScopedRound() {
    if (sink_ == nullptr) return;
    sink_->current_round = prev_round_;
    if (sink_->profile) {
      sink_->events.push_back(
          {SpanEvent::kRound, 0, round_, start_, NowNs() - start_});
    }
  }
  ScopedRound(const ScopedRound&) = delete;
  ScopedRound& operator=(const ScopedRound&) = delete;

 private:
  TrialTelemetry* sink_;
  int64_t start_ = 0;
  int32_t round_ = -1;
  int32_t prev_round_ = -1;
};

/// Times one kernel phase; accumulates into phase_ns/phase_calls and, in
/// profile mode, appends a span event tagged with the current round.
class ScopedPhase {
 public:
  explicit ScopedPhase(Phase phase) : sink_(internal::tls_sink) {
    if (sink_ == nullptr) return;
    phase_ = phase;
    start_ = NowNs();
  }
  ~ScopedPhase() {
    if (sink_ == nullptr) return;
    const int64_t dur = NowNs() - start_;
    const int i = static_cast<int>(phase_);
    sink_->phase_ns[i] += dur;
    ++sink_->phase_calls[i];
    if (sink_->profile) {
      sink_->events.push_back({SpanEvent::kPhase,
                               static_cast<uint8_t>(phase_),
                               sink_->current_round, start_, dur});
    }
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  TrialTelemetry* sink_;
  Phase phase_ = Phase::kSetup;
  int64_t start_ = 0;
};

}  // namespace obs
}  // namespace dynagg

#endif  // DYNAGG_OBS_TELEMETRY_H_
