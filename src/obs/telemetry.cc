#include "obs/telemetry.h"

#include <chrono>

namespace dynagg {
namespace obs {

namespace internal {
thread_local TrialTelemetry* tls_sink = nullptr;
}  // namespace internal

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kSetup:
      return "setup";
    case Phase::kPlan:
      return "plan";
    case Phase::kApply:
      return "apply";
    case Phase::kScatter:
      return "scatter";
    case Phase::kRecord:
      return "record";
  }
  return "unknown";
}

const char* CounterName(Counter counter) {
  switch (counter) {
    case Counter::kPlanCacheHits:
      return "plan_cache_hits";
    case Counter::kPlanCacheRebuilds:
      return "plan_cache_rebuilds";
    case Counter::kAliveBitmapRebuilds:
      return "alive_bitmap_rebuilds";
    case Counter::kRngDraws:
      return "rng_draws";
    case Counter::kGossipExchanges:
      return "gossip_exchanges";
    case Counter::kDepositBytes:
      return "deposit_bytes";
    case Counter::kEarlyStopRounds:
      return "early_stop_rounds";
    case Counter::kPoolDispatchNs:
      return "pool_dispatch_ns";
    case Counter::kPoolWaitNs:
      return "pool_wait_ns";
    case Counter::kChurnJoins:
      return "churn_joins";
    case Counter::kChurnRebirths:
      return "churn_rebirths";
  }
  return "unknown";
}

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace obs
}  // namespace dynagg
