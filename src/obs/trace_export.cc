#include "obs/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <set>

namespace dynagg {
namespace obs {
namespace {

/// Minimal JSON string escaping for experiment names (quotes, backslashes,
/// control characters; everything else passes through).
std::string EscapeJson(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Human-readable span name: kernel phases use their phase name; trial and
/// round spans are labelled with their index.
std::string SpanName(const SpanEvent& event, const TrialTelemetry& unit) {
  char buf[48];
  switch (event.kind) {
    case SpanEvent::kTrial:
      std::snprintf(buf, sizeof(buf), "trial %d", unit.trial);
      return buf;
    case SpanEvent::kRound:
      std::snprintf(buf, sizeof(buf), "round %d", event.round);
      return buf;
    case SpanEvent::kPhase:
      return PhaseName(static_cast<Phase>(event.phase));
    case SpanEvent::kPool:
      return event.phase == 0 ? "pool_dispatch" : "pool_wait";
  }
  return "span";
}

const char* SpanCategory(const SpanEvent& event) {
  switch (event.kind) {
    case SpanEvent::kTrial:
      return "trial";
    case SpanEvent::kRound:
      return "round";
    case SpanEvent::kPhase:
      return "phase";
    case SpanEvent::kPool:
      return "pool";
  }
  return "span";
}

}  // namespace

std::string RenderChromeTrace(const std::vector<ProcessProfile>& processes) {
  // Shift all timestamps so the earliest span starts at t = 0.
  int64_t epoch = std::numeric_limits<int64_t>::max();
  for (const ProcessProfile& process : processes) {
    for (const TrialTelemetry& unit : process.units) {
      for (const SpanEvent& event : unit.events) {
        epoch = std::min(epoch, event.start_ns);
      }
    }
  }
  if (epoch == std::numeric_limits<int64_t>::max()) epoch = 0;

  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  const auto append = [&](const std::string& event_json) {
    if (!first) out += ",";
    first = false;
    out += "\n";
    out += event_json;
  };

  char buf[256];
  for (size_t p = 0; p < processes.size(); ++p) {
    const ProcessProfile& process = processes[p];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %zu, "
                  "\"tid\": 0, \"args\": {\"name\": \"%s\"}}",
                  p, EscapeJson(process.name).c_str());
    append(buf);
    std::set<int> workers;
    for (const TrialTelemetry& unit : process.units) {
      if (!unit.events.empty()) workers.insert(unit.worker);
    }
    for (const int worker : workers) {
      std::snprintf(buf, sizeof(buf),
                    "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": %zu, "
                    "\"tid\": %d, \"args\": {\"name\": \"worker %d\"}}",
                    p, worker, worker);
      append(buf);
    }
    for (const TrialTelemetry& unit : process.units) {
      for (const SpanEvent& event : unit.events) {
        std::snprintf(
            buf, sizeof(buf),
            "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
            "\"pid\": %zu, \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f, "
            "\"args\": {\"unit\": %d, \"round\": %d}}",
            SpanName(event, unit).c_str(), SpanCategory(event), p,
            unit.worker, static_cast<double>(event.start_ns - epoch) / 1e3,
            static_cast<double>(event.dur_ns) / 1e3, unit.unit, event.round);
        append(buf);
      }
    }
  }
  out += "\n]}\n";
  return out;
}

}  // namespace obs
}  // namespace dynagg
