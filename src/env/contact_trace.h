// Contact traces: time-stamped device-adjacency intervals in the style of
// the CRAWDAD cambridge/haggle datasets.
//
// A trace records contacts — intervals during which two devices are in
// mutual wireless range. The on-disk format is plain text so that converted
// real-world traces can be dropped in:
//
//     dynagg-trace v1
//     devices <N>
//     contact <a> <b> <start_seconds> <end_seconds>
//     ...
//
// Events are replayed by TraceEnvironment (trace_env.h); synthetic traces
// come from haggle_gen.h (see DESIGN.md, Substitutions).

#ifndef DYNAGG_ENV_CONTACT_TRACE_H_
#define DYNAGG_ENV_CONTACT_TRACE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace dynagg {

/// One adjacency edge flip: at `time`, the link (a, b) comes up or goes
/// down.
struct ContactEvent {
  SimTime time = 0;
  HostId a = kInvalidHost;
  HostId b = kInvalidHost;
  bool up = false;
};

class ContactTrace {
 public:
  explicit ContactTrace(int num_devices);

  int num_devices() const { return num_devices_; }

  /// Records that devices `a` and `b` were in contact during
  /// [start, end); requires 0 <= a,b < num_devices, a != b, start < end.
  void AddContact(HostId a, HostId b, SimTime start, SimTime end);

  /// Sorts events by time (stable). Must be called after the last
  /// AddContact and before Events()/end_time().
  void Finalize();

  bool finalized() const { return finalized_; }
  /// Time-ordered up/down events. Requires finalized().
  const std::vector<ContactEvent>& Events() const;
  /// Timestamp of the last event (0 for an empty trace). Requires
  /// finalized().
  SimTime end_time() const;
  int64_t num_contacts() const { return num_contacts_; }

  /// Serializes to the dynagg-trace v1 text format.
  std::string ToText() const;

  /// Parses the text format; returns a finalized trace.
  static Result<ContactTrace> Parse(std::string_view text);

 private:
  int num_devices_;
  int64_t num_contacts_ = 0;
  bool finalized_ = false;
  std::vector<ContactEvent> events_;
  // Contact intervals retained for ToText round-tripping.
  struct Interval {
    HostId a;
    HostId b;
    SimTime start;
    SimTime end;
  };
  std::vector<Interval> intervals_;
};

}  // namespace dynagg

#endif  // DYNAGG_ENV_CONTACT_TRACE_H_
