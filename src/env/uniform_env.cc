#include "env/uniform_env.h"

// UniformEnvironment is fully defined in the header; this translation unit
// anchors the vtable.
