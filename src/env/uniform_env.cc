#include "env/uniform_env.h"

namespace dynagg {

void UniformEnvironment::BuildPlan(const Population& pop, Rng& rng,
                                   PartnerPlan* plan) const {
  const std::vector<HostId>& alive = pop.alive_ids();
  const std::vector<HostId>& initiators = plan->initiators();
  std::vector<HostId>& partners = *plan->mutable_partners();
  const size_t n = alive.size();
  if (n == 0) {
    partners.assign(initiators.size(), kInvalidHost);
    return;
  }
  if (n == 1) {
    // SampleAliveExcept's no-draw degenerate case, hoisted.
    for (size_t k = 0; k < initiators.size(); ++k) {
      partners[k] = alive[0] == initiators[k] ? kInvalidHost : alive[0];
    }
    return;
  }
  if (pop.version() == 0) {
    // Never-mutated population: alive_ids is the identity permutation
    // (Population's constructor order), so alive_ids[draw] == draw and the
    // table lookup can be skipped — same draws, same partners, no memory
    // traffic in the selection loop. This covers every failure-free
    // experiment.
    if (plan->identity_initiators()) {
      // Initiator of slot k is k: the draw loop touches no input array at
      // all, only the Rng and the partner store.
      for (size_t k = 0; k < initiators.size(); ++k) {
        const HostId exclude = static_cast<HostId>(k);
        HostId pick;
        do {
          pick = static_cast<HostId>(rng.UniformInt(n));
        } while (pick == exclude);
        partners[k] = pick;
      }
      return;
    }
    for (size_t k = 0; k < initiators.size(); ++k) {
      const HostId exclude = initiators[k];
      HostId pick;
      do {
        pick = static_cast<HostId>(rng.UniformInt(n));
      } while (pick == exclude);
      partners[k] = pick;
    }
    return;
  }
  const HostId* alive_data = alive.data();
  for (size_t k = 0; k < initiators.size(); ++k) {
    const HostId exclude = initiators[k];
    // Same rejection sequence as Population::SampleAliveExcept: at most one
    // of n >= 2 candidates is excluded, so this terminates quickly.
    HostId pick;
    do {
      pick = alive_data[rng.UniformInt(n)];
    } while (pick == exclude);
    partners[k] = pick;
  }
}

}  // namespace dynagg
