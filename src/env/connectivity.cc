#include "env/connectivity.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"

namespace dynagg {

UnionFind::UnionFind(int n) : parent_(n), size_(n, 1), num_sets_(n) {
  DYNAGG_CHECK_GE(n, 0);
  std::iota(parent_.begin(), parent_.end(), 0);
}

int UnionFind::Find(int x) {
  DYNAGG_DCHECK(x >= 0 && x < static_cast<int>(parent_.size()));
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::Union(int a, int b) {
  int ra = Find(a);
  int rb = Find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --num_sets_;
  return true;
}

int UnionFind::SetSize(int x) { return size_[Find(x)]; }

std::vector<int> ConnectedComponents(
    int n, const std::vector<std::pair<HostId, HostId>>& edges) {
  UnionFind uf(n);
  for (const auto& [a, b] : edges) uf.Union(a, b);
  std::vector<int> labels(n, -1);
  int next_label = 0;
  for (int v = 0; v < n; ++v) {
    const int root = uf.Find(v);
    if (labels[root] < 0) labels[root] = next_label++;
    labels[v] = labels[root];
  }
  return labels;
}

std::vector<int> ComponentSizes(const std::vector<int>& labels) {
  int max_label = -1;
  for (const int l : labels) max_label = std::max(max_label, l);
  std::vector<int> sizes(max_label + 1, 0);
  for (const int l : labels) {
    if (l >= 0) ++sizes[l];
  }
  return sizes;
}

std::vector<double> GroupMeans(const std::vector<int>& labels,
                               const std::vector<int>& sizes,
                               const std::vector<double>& values) {
  std::vector<double> sums(sizes.size(), 0.0);
  for (size_t i = 0; i < labels.size(); ++i) sums[labels[i]] += values[i];
  std::vector<double> means(sizes.size(), 0.0);
  for (size_t g = 0; g < sizes.size(); ++g) {
    means[g] = sizes[g] > 0 ? sums[g] / sizes[g] : 0.0;
  }
  return means;
}

}  // namespace dynagg
