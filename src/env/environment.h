// Gossip environments.
//
// The paper distinguishes gossip *protocols* (the exchange performed) from
// gossip *environments* (how pairs of hosts are selected, Section V). An
// Environment answers "whom can host i talk to right now": uniform full
// connectivity, a spatial grid with 1/d^2 random-walk peering, or playback
// of a mobility contact trace.

#ifndef DYNAGG_ENV_ENVIRONMENT_H_
#define DYNAGG_ENV_ENVIRONMENT_H_

#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "env/partner_plan.h"
#include "sim/population.h"

namespace dynagg {

class Environment {
 public:
  virtual ~Environment() = default;

  /// Universe size (must equal the Population's size).
  virtual int num_hosts() const = 0;

  /// Samples a gossip partner for alive host `i` under the environment's
  /// peer-selection rule. Returns kInvalidHost if `i` has no reachable alive
  /// peer this round. Dead hosts are never returned.
  virtual HostId SamplePeer(HostId i, const Population& pop,
                            Rng& rng) const = 0;

  /// Environment API v2: fills `plan->partners` for the initiators the
  /// round kernel already placed in the plan, slot by slot in plan order.
  ///
  /// Contract (pinned by tests/env/partner_plan_test.cc): the result and
  /// the Rng consumption must be bit-identical to calling SamplePeer once
  /// per slot in plan order. Within that contract implementations are free
  /// to batch: hoist the per-call virtual dispatch, reuse per-round caches
  /// of alive-neighbor indexes (invalidated via Population::version() and
  /// the environment's own topology changes, e.g. AdvanceTo on traces),
  /// and keep the selection loop over the plan's flat arrays.
  ///
  /// Not thread-safe: implementations may touch mutable per-round caches.
  /// The round kernel builds plans single-threaded (the Rng is inherently
  /// sequential) and only parallelizes the apply phase.
  virtual void BuildPlan(const Population& pop, Rng& rng,
                         PartnerPlan* plan) const;

  /// Appends the alive communication neighbors of `i` to `out` (used by the
  /// overlay/tree baseline and the grouping metric). Order is unspecified.
  virtual void AppendNeighbors(HostId i, const Population& pop,
                               std::vector<HostId>* out) const = 0;

  /// Advances time-varying environments (trace playback) to simulated time
  /// `t`. Default: static environment, no-op.
  virtual void AdvanceTo(SimTime t);
};

}  // namespace dynagg

#endif  // DYNAGG_ENV_ENVIRONMENT_H_
