// Gossip environments.
//
// The paper distinguishes gossip *protocols* (the exchange performed) from
// gossip *environments* (how pairs of hosts are selected, Section V). An
// Environment answers "whom can host i talk to right now": uniform full
// connectivity, a spatial grid with 1/d^2 random-walk peering, or playback
// of a mobility contact trace.

#ifndef DYNAGG_ENV_ENVIRONMENT_H_
#define DYNAGG_ENV_ENVIRONMENT_H_

#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/population.h"

namespace dynagg {

class Environment {
 public:
  virtual ~Environment() = default;

  /// Universe size (must equal the Population's size).
  virtual int num_hosts() const = 0;

  /// Samples a gossip partner for alive host `i` under the environment's
  /// peer-selection rule. Returns kInvalidHost if `i` has no reachable alive
  /// peer this round. Dead hosts are never returned.
  virtual HostId SamplePeer(HostId i, const Population& pop,
                            Rng& rng) const = 0;

  /// Appends the alive communication neighbors of `i` to `out` (used by the
  /// overlay/tree baseline and the grouping metric). Order is unspecified.
  virtual void AppendNeighbors(HostId i, const Population& pop,
                               std::vector<HostId>* out) const = 0;

  /// Advances time-varying environments (trace playback) to simulated time
  /// `t`. Default: static environment, no-op.
  virtual void AdvanceTo(SimTime t);
};

}  // namespace dynagg

#endif  // DYNAGG_ENV_ENVIRONMENT_H_
