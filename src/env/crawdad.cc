#include "env/crawdad.h"

#include <charconv>
#include <map>
#include <vector>

namespace dynagg {

namespace {

struct RawContact {
  int64_t a;
  int64_t b;
  double start;
  double end;
};

std::string_view NextLine(std::string_view text, size_t* pos) {
  while (*pos < text.size() && (text[*pos] == '\n' || text[*pos] == '\r')) {
    ++*pos;
  }
  if (*pos >= text.size()) return {};
  const size_t start = *pos;
  size_t end = text.find('\n', start);
  if (end == std::string_view::npos) end = text.size();
  *pos = end;
  return text.substr(start, end - start);
}

std::string_view NextToken(std::string_view* line) {
  size_t i = 0;
  while (i < line->size() &&
         ((*line)[i] == ' ' || (*line)[i] == '\t' || (*line)[i] == '\r')) {
    ++i;
  }
  size_t j = i;
  while (j < line->size() && (*line)[j] != ' ' && (*line)[j] != '\t' &&
         (*line)[j] != '\r') {
    ++j;
  }
  std::string_view token = line->substr(i, j - i);
  line->remove_prefix(j);
  return token;
}

bool ParseI64(std::string_view token, int64_t* out) {
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), *out);
  return ec == std::errc() && ptr == token.data() + token.size();
}

bool ParseF64(std::string_view token, double* out) {
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), *out);
  return ec == std::errc() && ptr == token.data() + token.size();
}

}  // namespace

Result<ContactTrace> ParseCrawdadContacts(std::string_view text,
                                          const CrawdadOptions& options) {
  std::vector<RawContact> contacts;
  double min_start = 0.0;
  bool have_min = false;
  size_t pos = 0;
  while (true) {
    std::string_view line = NextLine(text, &pos);
    if (line.empty()) {
      if (pos >= text.size()) break;
      continue;
    }
    if (line.front() == '#' || line.front() == '%') continue;
    RawContact rc{};
    std::string_view rest = line;
    if (!ParseI64(NextToken(&rest), &rc.a) ||
        !ParseI64(NextToken(&rest), &rc.b) ||
        !ParseF64(NextToken(&rest), &rc.start) ||
        !ParseF64(NextToken(&rest), &rc.end)) {
      return Status::Corruption("crawdad: malformed record: " +
                                std::string(line));
    }
    if (rc.a == rc.b) {
      return Status::Corruption("crawdad: self-contact");
    }
    if (rc.end < rc.start) {
      return Status::Corruption("crawdad: inverted interval");
    }
    if (rc.end - rc.start < options.min_duration_seconds) continue;
    if (rc.end == rc.start) continue;
    contacts.push_back(rc);
    if (!have_min || rc.start < min_start) {
      min_start = rc.start;
      have_min = true;
    }
  }

  // Dense id remapping in order of appearance.
  std::map<int64_t, HostId> id_map;
  auto map_id = [&](int64_t raw) -> HostId {
    const auto it = id_map.find(raw);
    if (it != id_map.end()) return it->second;
    if (options.max_devices > 0 &&
        static_cast<int>(id_map.size()) >= options.max_devices) {
      return kInvalidHost;
    }
    const HostId dense = static_cast<HostId>(id_map.size());
    id_map.emplace(raw, dense);
    return dense;
  };
  struct Mapped {
    HostId a;
    HostId b;
    double start;
    double end;
  };
  std::vector<Mapped> mapped;
  mapped.reserve(contacts.size());
  for (const RawContact& rc : contacts) {
    const HostId a = map_id(rc.a);
    const HostId b = map_id(rc.b);
    if (a == kInvalidHost || b == kInvalidHost) continue;
    mapped.push_back(Mapped{a, b, rc.start, rc.end});
  }

  const double base =
      options.rebase_time && have_min ? min_start : 0.0;
  ContactTrace trace(static_cast<int>(id_map.size()));
  for (const Mapped& m : mapped) {
    trace.AddContact(m.a, m.b, FromSeconds(m.start - base),
                     FromSeconds(m.end - base));
  }
  trace.Finalize();
  return trace;
}

}  // namespace dynagg
