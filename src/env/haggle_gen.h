// Synthetic Cambridge/Haggle-style mobility trace generator.
//
// The paper's Fig 11 replays three CRAWDAD cambridge/haggle iMote traces
// (9, 12 and 41 devices carried for several days; the third at a
// conference). Those datasets are not redistributable, so this module
// generates contact traces with the same macro-structure: a Poisson process
// of gatherings whose rate follows a day/night cycle, community-biased
// membership, and exponentially distributed meeting lengths. Presets
// Dataset1/2/3 mirror the device counts, durations and group-size ranges of
// the paper's traces; the parser (contact_trace.h) accepts converted real
// traces for anyone with CRAWDAD access. See DESIGN.md, Substitutions.

#ifndef DYNAGG_ENV_HAGGLE_GEN_H_
#define DYNAGG_ENV_HAGGLE_GEN_H_

#include <cstdint>

#include "env/contact_trace.h"

namespace dynagg {

/// Parameters of the gathering process.
struct HaggleGenParams {
  int num_devices = 9;
  double duration_hours = 90.0;
  /// Network-wide gathering arrival rate during daytime (per hour).
  double meetings_per_hour_day = 3.0;
  /// Rate multiplier outside [day_start_hour, day_end_hour).
  double night_activity_factor = 0.1;
  int day_start_hour = 8;
  int day_end_hour = 22;
  /// Mean gathering length in minutes (exponential, clamped to
  /// [2, 180] minutes).
  double mean_meeting_minutes = 25.0;
  /// Gathering size: min_group + Geometric, truncated at max_group.
  int min_group = 2;
  int max_group = 5;
  /// Number of home communities; members are drawn from the gathering's
  /// anchor community with probability `community_affinity`.
  int num_communities = 2;
  double community_affinity = 0.8;
  uint64_t seed = 0xda7a5e7ull;
};

/// Preset mimicking Haggle dataset 1: 9 devices over ~90 hours forming
/// small transient groups.
HaggleGenParams HaggleDataset1();
/// Preset mimicking Haggle dataset 2: 12 devices over ~120 hours.
HaggleGenParams HaggleDataset2();
/// Preset mimicking Haggle dataset 3: 41 conference attendees over ~70
/// hours with large session-time gatherings.
HaggleGenParams HaggleDataset3();

/// Generates a finalized contact trace from `params`.
ContactTrace GenerateHaggleTrace(const HaggleGenParams& params);

}  // namespace dynagg

#endif  // DYNAGG_ENV_HAGGLE_GEN_H_
