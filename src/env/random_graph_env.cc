#include "env/random_graph_env.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"

namespace dynagg {

RandomGraphEnvironment::RandomGraphEnvironment(int num_hosts, int degree,
                                               uint64_t seed)
    : adjacency_(num_hosts) {
  DYNAGG_CHECK_GE(num_hosts, 1);
  DYNAGG_CHECK_GE(degree, 1);
  DYNAGG_CHECK_LT(degree, num_hosts);
  Rng rng(seed);
  // Configuration model: a shuffled multiset of `degree` stubs per vertex,
  // paired off; self-loops and duplicate edges are dropped (leaving some
  // vertices slightly below the target degree, which is fine for gossip).
  std::vector<HostId> stubs;
  stubs.reserve(static_cast<size_t>(num_hosts) * degree);
  for (HostId v = 0; v < num_hosts; ++v) {
    for (int s = 0; s < degree; ++s) stubs.push_back(v);
  }
  for (size_t i = stubs.size(); i > 1; --i) {
    std::swap(stubs[i - 1], stubs[rng.UniformInt(i)]);
  }
  for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
    const HostId a = stubs[i];
    const HostId b = stubs[i + 1];
    if (a == b) continue;
    const auto& nbrs = adjacency_[a];
    if (std::find(nbrs.begin(), nbrs.end(), b) != nbrs.end()) continue;
    adjacency_[a].push_back(b);
    adjacency_[b].push_back(a);
    ++num_edges_;
  }
}

HostId RandomGraphEnvironment::SamplePeer(HostId i, const Population& pop,
                                          Rng& rng) const {
  const auto& nbrs = adjacency_[i];
  if (nbrs.empty()) return kInvalidHost;
  // Rejection sampling over alive neighbors, then exact fallback.
  for (int attempt = 0; attempt < 4; ++attempt) {
    const HostId pick = nbrs[rng.UniformInt(nbrs.size())];
    if (pop.IsAlive(pick)) return pick;
  }
  std::vector<HostId> alive;
  alive.reserve(nbrs.size());
  for (const HostId id : nbrs) {
    if (pop.IsAlive(id)) alive.push_back(id);
  }
  if (alive.empty()) return kInvalidHost;
  return alive[rng.UniformInt(alive.size())];
}

void RandomGraphEnvironment::AppendNeighbors(HostId i, const Population& pop,
                                             std::vector<HostId>* out) const {
  for (const HostId id : adjacency_[i]) {
    if (pop.IsAlive(id)) out->push_back(id);
  }
}

}  // namespace dynagg
