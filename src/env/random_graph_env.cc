#include "env/random_graph_env.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"
#include "env/alive_neighbors.h"
#include "obs/telemetry.h"

namespace dynagg {

RandomGraphEnvironment::RandomGraphEnvironment(int num_hosts, int degree,
                                               uint64_t seed)
    : adjacency_(num_hosts) {
  DYNAGG_CHECK_GE(num_hosts, 1);
  DYNAGG_CHECK_GE(degree, 1);
  DYNAGG_CHECK_LT(degree, num_hosts);
  Rng rng(seed);
  // Configuration model: a shuffled multiset of `degree` stubs per vertex,
  // paired off; self-loops and duplicate edges are dropped (leaving some
  // vertices slightly below the target degree, which is fine for gossip).
  std::vector<HostId> stubs;
  stubs.reserve(static_cast<size_t>(num_hosts) * degree);
  for (HostId v = 0; v < num_hosts; ++v) {
    for (int s = 0; s < degree; ++s) stubs.push_back(v);
  }
  for (size_t i = stubs.size(); i > 1; --i) {
    std::swap(stubs[i - 1], stubs[rng.UniformInt(i)]);
  }
  for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
    const HostId a = stubs[i];
    const HostId b = stubs[i + 1];
    if (a == b) continue;
    const auto& nbrs = adjacency_[a];
    if (std::find(nbrs.begin(), nbrs.end(), b) != nbrs.end()) continue;
    adjacency_[a].push_back(b);
    adjacency_[b].push_back(a);
    ++num_edges_;
  }
}

HostId RandomGraphEnvironment::SamplePeer(HostId i, const Population& pop,
                                          Rng& rng) const {
  const auto& nbrs = adjacency_[i];
  std::vector<HostId> scratch;
  return SampleAliveNeighbor(nbrs, pop, rng,
                             [&]() -> const std::vector<HostId>& {
                               FilterAliveNeighbors(nbrs, pop, &scratch);
                               return scratch;
                             });
}

void RandomGraphEnvironment::BuildPlan(const Population& pop, Rng& rng,
                                       PartnerPlan* plan) const {
  if (row_stamps_.empty()) {
    alive_rows_.resize(adjacency_.size());
    row_stamps_.assign(adjacency_.size(), 0);
  }
  const uint64_t fingerprint = pop.fingerprint();
  const std::vector<HostId>& initiators = plan->initiators();
  std::vector<HostId>& partners = *plan->mutable_partners();
  for (size_t k = 0; k < initiators.size(); ++k) {
    const HostId i = initiators[k];
    const auto& nbrs = adjacency_[i];
    // Same draw sequence as SamplePeer; the fallback row comes from the
    // stamped cache instead of a fresh allocation.
    partners[k] = SampleAliveNeighbor(
        nbrs, pop, rng, [&]() -> const std::vector<HostId>& {
          std::vector<HostId>& alive = alive_rows_[i];
          if (row_stamps_[i] != fingerprint) {
            obs::Count(obs::Counter::kPlanCacheRebuilds);
            FilterAliveNeighbors(nbrs, pop, &alive);
            row_stamps_[i] = fingerprint;
          } else {
            obs::Count(obs::Counter::kPlanCacheHits);
          }
          return alive;
        });
  }
}

void RandomGraphEnvironment::AppendNeighbors(HostId i, const Population& pop,
                                             std::vector<HostId>* out) const {
  for (const HostId id : adjacency_[i]) {
    if (pop.IsAlive(id)) out->push_back(id);
  }
}

}  // namespace dynagg
