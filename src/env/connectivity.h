// Connectivity utilities: union-find and connected-component labelling.
//
// The trace experiments report each host's error relative to the aggregate
// of its *group* — the connected component of the union of all edges seen in
// the last 10 minutes (Section V).

#ifndef DYNAGG_ENV_CONNECTIVITY_H_
#define DYNAGG_ENV_CONNECTIVITY_H_

#include <utility>
#include <vector>

#include "common/types.h"

namespace dynagg {

/// Disjoint-set forest with path halving and union by size.
class UnionFind {
 public:
  explicit UnionFind(int n);

  int Find(int x);
  /// Unions the sets containing a and b; returns true if they were
  /// previously disjoint.
  bool Union(int a, int b);
  /// Size of the set containing x.
  int SetSize(int x);
  int num_sets() const { return num_sets_; }

 private:
  std::vector<int32_t> parent_;
  std::vector<int32_t> size_;
  int num_sets_;
};

/// Labels the connected components of the graph on `n` vertices induced by
/// `edges`. Returns a vector of component ids in [0, #components), where
/// ids are assigned in order of first appearance by vertex index.
std::vector<int> ConnectedComponents(
    int n, const std::vector<std::pair<HostId, HostId>>& edges);

/// Per-component member counts for a labelling from ConnectedComponents.
std::vector<int> ComponentSizes(const std::vector<int>& labels);

/// Per-component mean of `values` under `labels` (index = component id):
/// the per-group truth of the trace experiments' averaging protocols.
/// `sizes` must come from ComponentSizes(labels).
std::vector<double> GroupMeans(const std::vector<int>& labels,
                               const std::vector<int>& sizes,
                               const std::vector<double>& values);

}  // namespace dynagg

#endif  // DYNAGG_ENV_CONNECTIVITY_H_
