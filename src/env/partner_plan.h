// PartnerPlan: one gossip round's partner selections as a flat SoA batch.
//
// Environment API v2 splits a round into plan-then-apply: instead of one
// virtual SamplePeer call per alive host, the round kernel (sim/round_kernel.h)
// fills a PartnerPlan once per round via Environment::BuildPlan and then
// applies the protocol's exchanges over the flat arrays. Environments can
// batch the whole selection pass — hoisting per-call dispatch, reusing
// alive-neighbor caches, keeping the hot loop over two contiguous arrays —
// as long as they consume the Rng exactly as the equivalent sequence of
// SamplePeer calls would (the bit-reproducibility contract every parity
// test pins).

#ifndef DYNAGG_ENV_PARTNER_PLAN_H_
#define DYNAGG_ENV_PARTNER_PLAN_H_

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace dynagg {

/// A round's planned exchanges, structure-of-arrays: slot `k` means
/// initiator `initiators()[k]` gossips with `partners()[k]`. A host may own
/// several consecutive slots (full-transfer parcels). `kInvalidHost` in
/// `partners()` marks a slot whose initiator found no reachable alive peer.
class PartnerPlan {
 public:
  /// Resets to `initiators`, sizing (but not filling) the partner array:
  /// Environment::BuildPlan must write every slot. The caller (round
  /// kernel) decides the initiator order — alive order for simultaneous
  /// push rounds, a shuffled order for sequential pairwise exchanges — and
  /// BuildPlan fills `partners` slot by slot in exactly that order.
  void Reset(const std::vector<HostId>& initiators, int slots_per_initiator);

  size_t size() const { return initiators_.size(); }
  bool empty() const { return initiators_.empty(); }

  const std::vector<HostId>& initiators() const { return initiators_; }
  const std::vector<HostId>& partners() const { return partners_; }
  /// Mutable partner array for Environment::BuildPlan implementations.
  std::vector<HostId>* mutable_partners() { return &partners_; }

  HostId initiator(size_t k) const { return initiators_[k]; }
  HostId partner(size_t k) const { return partners_[k]; }

  /// True when initiators()[k] == k for every slot (a full, never-mutated
  /// population planned in alive order with one slot per host). Apply
  /// loops specialize on this: the initiator array does not need to be
  /// read at all. Set by the round kernel at plan time.
  bool identity_initiators() const { return identity_initiators_; }
  void set_identity_initiators(bool identity) {
    identity_initiators_ = identity;
  }

  /// The slot's deposit destination: the partner, or the initiator itself
  /// when no peer was reachable (push-style protocols return the payload to
  /// the sender rather than losing it over the air).
  HostId EffectivePartner(size_t k) const {
    return partners_[k] == kInvalidHost ? initiators_[k] : partners_[k];
  }

  /// Number of slots with a reachable partner (= over-the-air messages of a
  /// one-payload-per-slot push round; metering batches on this).
  int64_t CountMatched() const;

 private:
  std::vector<HostId> initiators_;
  std::vector<HostId> partners_;
  bool identity_initiators_ = false;
};

}  // namespace dynagg

#endif  // DYNAGG_ENV_PARTNER_PLAN_H_
