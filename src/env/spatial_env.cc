#include "env/spatial_env.h"

#include <algorithm>

#include "common/macros.h"
#include "obs/telemetry.h"

namespace dynagg {

SpatialGridEnvironment::SpatialGridEnvironment(int width, int height,
                                               int max_distance)
    : width_(width), height_(height), max_distance_(max_distance) {
  DYNAGG_CHECK_GE(width, 1);
  DYNAGG_CHECK_GE(height, 1);
  if (max_distance_ <= 0) max_distance_ = width + height;
  walk_cdf_.resize(max_distance_);
  double total = 0.0;
  for (int d = 1; d <= max_distance_; ++d) {
    total += 1.0 / (static_cast<double>(d) * d);
    walk_cdf_[d - 1] = total;
  }
  for (auto& w : walk_cdf_) w /= total;
}

int SpatialGridEnvironment::SampleWalkLength(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(walk_cdf_.begin(), walk_cdf_.end(), u);
  return static_cast<int>(it - walk_cdf_.begin()) + 1;
}

template <typename AliveFn>
HostId SpatialGridEnvironment::WalkToPartner(HostId i, Rng& rng,
                                             const AliveFn& alive) const {
  const int steps = SampleWalkLength(rng);
  HostId current = i;
  HostId neighbors[4];
  for (int s = 0; s < steps; ++s) {
    const int x = current % width_;
    const int y = current / width_;
    int count = 0;
    if (x > 0 && alive(current - 1)) neighbors[count++] = current - 1;
    if (x + 1 < width_ && alive(current + 1)) {
      neighbors[count++] = current + 1;
    }
    if (y > 0 && alive(current - width_)) {
      neighbors[count++] = current - width_;
    }
    if (y + 1 < height_ && alive(current + width_)) {
      neighbors[count++] = current + width_;
    }
    if (count == 0) break;  // walk is stuck; terminate early
    current = neighbors[rng.UniformInt(static_cast<uint64_t>(count))];
  }
  return current == i ? kInvalidHost : current;
}

HostId SpatialGridEnvironment::SamplePeer(HostId i, const Population& pop,
                                          Rng& rng) const {
  return WalkToPartner(i, rng,
                       [&pop](HostId id) { return pop.IsAlive(id); });
}

void SpatialGridEnvironment::BuildPlan(const Population& pop, Rng& rng,
                                       PartnerPlan* plan) const {
  if (cache_fingerprint_ != pop.fingerprint()) {
    obs::Count(obs::Counter::kAliveBitmapRebuilds);
    alive_bits_.assign((static_cast<size_t>(num_hosts()) + 63) / 64, 0);
    for (const HostId id : pop.alive_ids()) {
      alive_bits_[static_cast<size_t>(id) >> 6] |= uint64_t{1} << (id & 63);
    }
    cache_fingerprint_ = pop.fingerprint();
  }
  // Same walk as SamplePeer, probing the packed bitmap instead of the
  // Population: identical draws, identical endpoints.
  const uint64_t* bits = alive_bits_.data();
  const auto alive = [bits](HostId id) -> bool {
    return (bits[static_cast<size_t>(id) >> 6] >> (id & 63)) & 1;
  };
  const std::vector<HostId>& initiators = plan->initiators();
  std::vector<HostId>& partners = *plan->mutable_partners();
  for (size_t k = 0; k < initiators.size(); ++k) {
    partners[k] = WalkToPartner(initiators[k], rng, alive);
  }
}

void SpatialGridEnvironment::AppendNeighbors(HostId i, const Population& pop,
                                             std::vector<HostId>* out) const {
  const int x = i % width_;
  const int y = i / width_;
  if (x > 0 && pop.IsAlive(i - 1)) out->push_back(i - 1);
  if (x + 1 < width_ && pop.IsAlive(i + 1)) out->push_back(i + 1);
  if (y > 0 && pop.IsAlive(i - width_)) out->push_back(i - width_);
  if (y + 1 < height_ && pop.IsAlive(i + width_)) out->push_back(i + width_);
}

}  // namespace dynagg
