#include "env/spatial_env.h"

#include <algorithm>

#include "common/macros.h"

namespace dynagg {

SpatialGridEnvironment::SpatialGridEnvironment(int width, int height,
                                               int max_distance)
    : width_(width), height_(height), max_distance_(max_distance) {
  DYNAGG_CHECK_GE(width, 1);
  DYNAGG_CHECK_GE(height, 1);
  if (max_distance_ <= 0) max_distance_ = width + height;
  walk_cdf_.resize(max_distance_);
  double total = 0.0;
  for (int d = 1; d <= max_distance_; ++d) {
    total += 1.0 / (static_cast<double>(d) * d);
    walk_cdf_[d - 1] = total;
  }
  for (auto& w : walk_cdf_) w /= total;
}

int SpatialGridEnvironment::SampleWalkLength(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(walk_cdf_.begin(), walk_cdf_.end(), u);
  return static_cast<int>(it - walk_cdf_.begin()) + 1;
}

HostId SpatialGridEnvironment::SamplePeer(HostId i, const Population& pop,
                                          Rng& rng) const {
  const int steps = SampleWalkLength(rng);
  HostId current = i;
  HostId neighbors[4];
  for (int s = 0; s < steps; ++s) {
    const int x = current % width_;
    const int y = current / width_;
    int count = 0;
    if (x > 0 && pop.IsAlive(current - 1)) neighbors[count++] = current - 1;
    if (x + 1 < width_ && pop.IsAlive(current + 1)) {
      neighbors[count++] = current + 1;
    }
    if (y > 0 && pop.IsAlive(current - width_)) {
      neighbors[count++] = current - width_;
    }
    if (y + 1 < height_ && pop.IsAlive(current + width_)) {
      neighbors[count++] = current + width_;
    }
    if (count == 0) break;  // walk is stuck; terminate early
    current = neighbors[rng.UniformInt(static_cast<uint64_t>(count))];
  }
  return current == i ? kInvalidHost : current;
}

void SpatialGridEnvironment::AppendNeighbors(HostId i, const Population& pop,
                                             std::vector<HostId>* out) const {
  const int x = i % width_;
  const int y = i / width_;
  if (x > 0 && pop.IsAlive(i - 1)) out->push_back(i - 1);
  if (x + 1 < width_ && pop.IsAlive(i + 1)) out->push_back(i + 1);
  if (y > 0 && pop.IsAlive(i - width_)) out->push_back(i - width_);
  if (y + 1 < height_ && pop.IsAlive(i + width_)) out->push_back(i + width_);
}

}  // namespace dynagg
