// Trace-driven gossip environment: replays a ContactTrace as a time-varying
// adjacency, restricts gossip to devices in wireless range, and computes the
// paper's group labelling (connected components over the union of all edges
// seen in the last 10 minutes, Section V).

#ifndef DYNAGG_ENV_TRACE_ENV_H_
#define DYNAGG_ENV_TRACE_ENV_H_

#include <map>
#include <utility>
#include <vector>

#include "env/contact_trace.h"
#include "env/environment.h"

namespace dynagg {

class TraceEnvironment : public Environment {
 public:
  /// `trace` must be finalized and must outlive the environment.
  /// `group_window` is the "nearby" window (paper: 10 minutes).
  explicit TraceEnvironment(const ContactTrace& trace,
                            SimTime group_window = FromMinutes(10));

  int num_hosts() const override { return trace_->num_devices(); }

  /// Applies all trace events with time <= t. Time must not go backwards.
  void AdvanceTo(SimTime t) override;

  /// Uniform among the alive devices currently in range of `i`.
  HostId SamplePeer(HostId i, const Population& pop,
                    Rng& rng) const override;

  /// Batched selection over the live adjacency. The rare dead-neighbor
  /// fallback is served from lazily built alive-neighbor rows stamped with
  /// (link-topology epoch, population version), so both AdvanceTo and
  /// kill/revive invalidate them. Rng draws are bit-identical to the
  /// per-call SamplePeer path.
  void BuildPlan(const Population& pop, Rng& rng,
                 PartnerPlan* plan) const override;

  void AppendNeighbors(HostId i, const Population& pop,
                       std::vector<HostId>* out) const override;

  SimTime now() const { return now_; }
  /// Number of devices currently in range of i.
  int Degree(HostId i) const {
    return static_cast<int>(neighbors_[i].size());
  }
  /// Total live links.
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }

  /// Group labels at the current time: connected components over current
  /// links plus links seen within the last `group_window`.
  std::vector<int> CurrentGroups() const;

  /// Mean, over devices, of the size of the device's own group (the
  /// "Avg Group Size" series of Fig 11).
  double AverageGroupSize() const;

 private:
  using Edge = std::pair<HostId, HostId>;
  static Edge MakeEdge(HostId a, HostId b) {
    return a < b ? Edge{a, b} : Edge{b, a};
  }

  void LinkUp(HostId a, HostId b);
  void LinkDown(HostId a, HostId b);

  const ContactTrace* trace_;
  SimTime group_window_;
  SimTime now_ = 0;
  size_t next_event_ = 0;
  // Live adjacency. Contacts may overlap (two simultaneous meetings of the
  // same pair), so edges are reference-counted.
  std::vector<std::vector<HostId>> neighbors_;
  std::map<Edge, int> edges_;
  // Down-time of recently-dropped links, for the group window. Pruned
  // lazily as time advances.
  mutable std::map<Edge, SimTime> recent_down_;

  // Bumped by every applied link change; BuildPlan's alive-neighbor rows
  // carry the (topology epoch, globally unique population fingerprint)
  // they were built at and are rebuilt lazily when either moves — so both
  // AdvanceTo and kill/revive (on any Population instance) invalidate.
  uint64_t topology_epoch_ = 0;
  struct RowStamp {
    uint64_t topology = 0;
    uint64_t population = 0;  // 0 = never built; fingerprints start at 1
  };
  mutable std::vector<std::vector<HostId>> alive_rows_;
  mutable std::vector<RowStamp> row_stamps_;
};

}  // namespace dynagg

#endif  // DYNAGG_ENV_TRACE_ENV_H_
