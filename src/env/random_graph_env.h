// Random-graph gossip environment: a fixed sparse overlay.
//
// Between the idealized uniform environment and the spatial grid sits the
// sparse-but-unstructured case: each host can reach a small random set of
// peers (e.g. whoever its radio discovered at deployment). This environment
// builds an approximately k-regular undirected graph via the configuration
// model (with rejection of self-loops and duplicates) and selects gossip
// partners uniformly among a host's alive neighbors. Low-connectivity
// behaviour — slower convergence, larger reversion error (Section V.A's
// "low connectivity situations") — can be studied by shrinking k.

#ifndef DYNAGG_ENV_RANDOM_GRAPH_ENV_H_
#define DYNAGG_ENV_RANDOM_GRAPH_ENV_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "env/environment.h"

namespace dynagg {

class RandomGraphEnvironment : public Environment {
 public:
  /// Builds an approximately `degree`-regular graph on `num_hosts` vertices
  /// from `seed`. degree >= 1; the realized degree of a host may be smaller
  /// when duplicate/self edges are rejected.
  RandomGraphEnvironment(int num_hosts, int degree, uint64_t seed);

  int num_hosts() const override {
    return static_cast<int>(adjacency_.size());
  }

  HostId SamplePeer(HostId i, const Population& pop,
                    Rng& rng) const override;

  /// Batched selection with the per-call SamplePeer dispatch hoisted and
  /// the rare exact-fallback path (all of the first 4 picks dead) served
  /// from lazily built, population-version-stamped alive-neighbor rows
  /// instead of a fresh allocation per call. Rng draws are bit-identical.
  void BuildPlan(const Population& pop, Rng& rng,
                 PartnerPlan* plan) const override;

  void AppendNeighbors(HostId i, const Population& pop,
                       std::vector<HostId>* out) const override;

  /// Realized degree of host i (alive or not).
  int Degree(HostId i) const {
    return static_cast<int>(adjacency_[i].size());
  }
  int64_t num_edges() const { return num_edges_; }

 private:
  std::vector<std::vector<HostId>> adjacency_;
  int64_t num_edges_ = 0;

  // Lazy per-host alive-neighbor rows for BuildPlan's fallback, stamped
  // with the globally unique membership fingerprint they were filtered
  // against (0 = never built; fingerprints start at 1, and are unique
  // across Population instances and mutations, so reuse of this
  // environment across populations stays sound). Mutable per the
  // BuildPlan single-threaded-planning contract.
  mutable std::vector<std::vector<HostId>> alive_rows_;
  mutable std::vector<uint64_t> row_stamps_;
};

}  // namespace dynagg

#endif  // DYNAGG_ENV_RANDOM_GRAPH_ENV_H_
