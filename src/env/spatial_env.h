// Spatial gossip environment (Section IV.A).
//
// Hosts sit on a 2-D grid and can only talk to grid-adjacent hosts. Uniform
// peer selection is approximated with multi-hop messages: the sender draws a
// distance d with P(d) proportional to 1/d^2 (Kempe, Kleinberg & Demers'
// spatial-gossip distribution) and the message performs a random walk of d
// hops; the endpoint is the exchange partner. This preserves the logarithmic
// propagation bounds that Count-Sketch-Reset's cutoff relies on, which
// ablation_spatial verifies.

#ifndef DYNAGG_ENV_SPATIAL_ENV_H_
#define DYNAGG_ENV_SPATIAL_ENV_H_

#include <vector>

#include "env/environment.h"

namespace dynagg {

class SpatialGridEnvironment : public Environment {
 public:
  /// `width` x `height` grid; host id = y * width + x. `max_distance` caps
  /// the 1/d^2 walk length (defaults to width + height when <= 0).
  SpatialGridEnvironment(int width, int height, int max_distance = 0);

  int num_hosts() const override { return width_ * height_; }

  /// Draws a walk length from the 1/d^2 distribution and random-walks over
  /// alive grid neighbors; returns the endpoint (kInvalidHost if the walk
  /// is stuck at i, e.g. all neighbors dead).
  HostId SamplePeer(HostId i, const Population& pop,
                    Rng& rng) const override;

  /// Alive 4-neighbors on the grid.
  void AppendNeighbors(HostId i, const Population& pop,
                       std::vector<HostId>* out) const override;

  int width() const { return width_; }
  int height() const { return height_; }

  /// Draws from P(d) ~ 1/d^2 over [1, max_distance] (exposed for tests).
  int SampleWalkLength(Rng& rng) const;

 private:
  int width_;
  int height_;
  int max_distance_;
  std::vector<double> walk_cdf_;  // cumulative 1/d^2 weights
};

}  // namespace dynagg

#endif  // DYNAGG_ENV_SPATIAL_ENV_H_
