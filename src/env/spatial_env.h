// Spatial gossip environment (Section IV.A).
//
// Hosts sit on a 2-D grid and can only talk to grid-adjacent hosts. Uniform
// peer selection is approximated with multi-hop messages: the sender draws a
// distance d with P(d) proportional to 1/d^2 (Kempe, Kleinberg & Demers'
// spatial-gossip distribution) and the message performs a random walk of d
// hops; the endpoint is the exchange partner. This preserves the logarithmic
// propagation bounds that Count-Sketch-Reset's cutoff relies on, which
// ablation_spatial verifies.

#ifndef DYNAGG_ENV_SPATIAL_ENV_H_
#define DYNAGG_ENV_SPATIAL_ENV_H_

#include <cstdint>
#include <vector>

#include "env/environment.h"

namespace dynagg {

class SpatialGridEnvironment : public Environment {
 public:
  /// `width` x `height` grid; host id = y * width + x. `max_distance` caps
  /// the 1/d^2 walk length (defaults to width + height when <= 0).
  SpatialGridEnvironment(int width, int height, int max_distance = 0);

  int num_hosts() const override { return width_ * height_; }

  /// Draws a walk length from the 1/d^2 distribution and random-walks over
  /// alive grid neighbors; returns the endpoint (kInvalidHost if the walk
  /// is stuck at i, e.g. all neighbors dead).
  HostId SamplePeer(HostId i, const Population& pop,
                    Rng& rng) const override;

  /// Batched selection: builds (at most once per population change) a
  /// packed alive bitmap — 16x denser than the Population's position table,
  /// so the random walks' grid-neighbor probes stay cache-resident at 100k
  /// hosts — then runs the same walks with bit-identical Rng draws.
  void BuildPlan(const Population& pop, Rng& rng,
                 PartnerPlan* plan) const override;

  /// Alive 4-neighbors on the grid.
  void AppendNeighbors(HostId i, const Population& pop,
                       std::vector<HostId>* out) const override;

  int width() const { return width_; }
  int height() const { return height_; }

  /// Draws from P(d) ~ 1/d^2 over [1, max_distance] (exposed for tests).
  int SampleWalkLength(Rng& rng) const;

 private:
  /// The shared walk body of SamplePeer and BuildPlan, parameterized on
  /// the aliveness probe (Population lookup vs packed bitmap) so the
  /// bit-identical draw sequence — walk length, 4-neighbor enumeration
  /// order, stuck-walk break, self -> kInvalidHost mapping — is defined
  /// exactly once. Defined in spatial_env.cc (only used there).
  template <typename AliveFn>
  HostId WalkToPartner(HostId i, Rng& rng, const AliveFn& alive) const;

  int width_;
  int height_;
  int max_distance_;
  std::vector<double> walk_cdf_;  // cumulative 1/d^2 weights

  // Per-round plan cache: one alive bit per host, rebuilt inside BuildPlan
  // whenever the population's globally unique membership fingerprint moves
  // (kill/revive, or a different Population instance). 0 = never built
  // (fingerprints start at 1). Mutable because planning is logically
  // const; BuildPlan is documented single-threaded.
  mutable std::vector<uint64_t> alive_bits_;
  mutable uint64_t cache_fingerprint_ = 0;
};

}  // namespace dynagg

#endif  // DYNAGG_ENV_SPATIAL_ENV_H_
