#include "env/contact_trace.h"

#include <algorithm>
#include <charconv>
#include <cstdio>

#include "common/macros.h"

namespace dynagg {

ContactTrace::ContactTrace(int num_devices) : num_devices_(num_devices) {
  DYNAGG_CHECK_GE(num_devices, 0);
}

void ContactTrace::AddContact(HostId a, HostId b, SimTime start,
                              SimTime end) {
  DYNAGG_CHECK(a >= 0 && a < num_devices_);
  DYNAGG_CHECK(b >= 0 && b < num_devices_);
  DYNAGG_CHECK_NE(a, b);
  DYNAGG_CHECK_LT(start, end);
  finalized_ = false;
  ++num_contacts_;
  if (a > b) std::swap(a, b);
  events_.push_back(ContactEvent{start, a, b, /*up=*/true});
  events_.push_back(ContactEvent{end, a, b, /*up=*/false});
  intervals_.push_back(Interval{a, b, start, end});
}

void ContactTrace::Finalize() {
  // Stable sort keeps insertion order for simultaneous events, making
  // playback deterministic. Down-events sort before up-events at equal
  // timestamps so zero-gap re-contacts do not transiently double-count.
  std::stable_sort(events_.begin(), events_.end(),
                   [](const ContactEvent& x, const ContactEvent& y) {
                     if (x.time != y.time) return x.time < y.time;
                     return x.up < y.up;
                   });
  finalized_ = true;
}

const std::vector<ContactEvent>& ContactTrace::Events() const {
  DYNAGG_CHECK(finalized_);
  return events_;
}

SimTime ContactTrace::end_time() const {
  DYNAGG_CHECK(finalized_);
  return events_.empty() ? 0 : events_.back().time;
}

std::string ContactTrace::ToText() const {
  std::string out = "dynagg-trace v1\n";
  char line[128];
  std::snprintf(line, sizeof(line), "devices %d\n", num_devices_);
  out += line;
  for (const Interval& iv : intervals_) {
    std::snprintf(line, sizeof(line), "contact %d %d %.6f %.6f\n", iv.a,
                  iv.b, ToSeconds(iv.start), ToSeconds(iv.end));
    out += line;
  }
  return out;
}

namespace {

// Splits off the next whitespace-trimmed line of `text` starting at `pos`.
std::string_view NextLine(std::string_view text, size_t* pos) {
  while (*pos < text.size() && (text[*pos] == '\n' || text[*pos] == '\r')) {
    ++*pos;
  }
  if (*pos >= text.size()) return {};
  const size_t start = *pos;
  size_t end = text.find('\n', start);
  if (end == std::string_view::npos) end = text.size();
  *pos = end;
  std::string_view line = text.substr(start, end - start);
  while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
    line.remove_suffix(1);
  }
  return line;
}

// Consumes a whitespace-delimited token from `line`.
std::string_view NextToken(std::string_view* line) {
  size_t i = 0;
  while (i < line->size() && (*line)[i] == ' ') ++i;
  size_t j = i;
  while (j < line->size() && (*line)[j] != ' ') ++j;
  std::string_view token = line->substr(i, j - i);
  line->remove_prefix(j);
  return token;
}

bool ParseInt(std::string_view token, int64_t* out) {
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), *out);
  return ec == std::errc() && ptr == token.data() + token.size();
}

bool ParseDouble(std::string_view token, double* out) {
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), *out);
  return ec == std::errc() && ptr == token.data() + token.size();
}

}  // namespace

Result<ContactTrace> ContactTrace::Parse(std::string_view text) {
  size_t pos = 0;
  std::string_view header = NextLine(text, &pos);
  if (header != "dynagg-trace v1") {
    return Status::Corruption("contact trace: bad header");
  }
  std::string_view devices_line = NextLine(text, &pos);
  std::string_view keyword = NextToken(&devices_line);
  int64_t num_devices = 0;
  if (keyword != "devices" ||
      !ParseInt(NextToken(&devices_line), &num_devices) || num_devices < 0 ||
      num_devices > (1 << 24)) {
    return Status::Corruption("contact trace: bad devices line");
  }
  ContactTrace trace(static_cast<int>(num_devices));
  while (true) {
    std::string_view line = NextLine(text, &pos);
    if (line.empty()) break;
    if (line.front() == '#') continue;  // comment
    std::string_view kw = NextToken(&line);
    if (kw != "contact") {
      return Status::Corruption("contact trace: unknown record");
    }
    int64_t a = 0;
    int64_t b = 0;
    double start_s = 0.0;
    double end_s = 0.0;
    if (!ParseInt(NextToken(&line), &a) || !ParseInt(NextToken(&line), &b) ||
        !ParseDouble(NextToken(&line), &start_s) ||
        !ParseDouble(NextToken(&line), &end_s)) {
      return Status::Corruption("contact trace: malformed contact record");
    }
    if (a < 0 || a >= num_devices || b < 0 || b >= num_devices || a == b ||
        end_s <= start_s) {
      return Status::Corruption("contact trace: invalid contact record");
    }
    trace.AddContact(static_cast<HostId>(a), static_cast<HostId>(b),
                     FromSeconds(start_s), FromSeconds(end_s));
  }
  trace.Finalize();
  return trace;
}

}  // namespace dynagg
