#include "env/environment.h"

namespace dynagg {

void Environment::AdvanceTo(SimTime t) { (void)t; }

}  // namespace dynagg
