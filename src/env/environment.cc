#include "env/environment.h"

namespace dynagg {

void Environment::BuildPlan(const Population& pop, Rng& rng,
                            PartnerPlan* plan) const {
  // Default adapter: any environment that only implements SamplePeer gets
  // the plan-based round structure for free, one virtual call per slot.
  const std::vector<HostId>& initiators = plan->initiators();
  std::vector<HostId>& partners = *plan->mutable_partners();
  for (size_t k = 0; k < initiators.size(); ++k) {
    partners[k] = SamplePeer(initiators[k], pop, rng);
  }
}

void Environment::AdvanceTo(SimTime t) { (void)t; }

}  // namespace dynagg
