// Uniform gossip environment: full connectivity, uniform peer selection.
//
// This is the idealized model used for the 100,000-host experiments
// (Figs 6, 8, 9, 10): any alive host can exchange with any other alive host
// with equal probability.

#ifndef DYNAGG_ENV_UNIFORM_ENV_H_
#define DYNAGG_ENV_UNIFORM_ENV_H_

#include <vector>

#include "env/environment.h"

namespace dynagg {

class UniformEnvironment : public Environment {
 public:
  explicit UniformEnvironment(int num_hosts) : num_hosts_(num_hosts) {}

  int num_hosts() const override { return num_hosts_; }

  HostId SamplePeer(HostId i, const Population& pop,
                    Rng& rng) const override {
    return pop.SampleAliveExcept(i, rng);
  }

  /// Batched selection: the per-slot loop of SampleAliveExcept with the
  /// degenerate-population checks hoisted out of the hot loop. Rng draws
  /// are bit-identical to the per-call path (same rejection sequence).
  void BuildPlan(const Population& pop, Rng& rng,
                 PartnerPlan* plan) const override;

  void AppendNeighbors(HostId i, const Population& pop,
                       std::vector<HostId>* out) const override {
    for (const HostId id : pop.alive_ids()) {
      if (id != i) out->push_back(id);
    }
  }

 private:
  int num_hosts_;
};

}  // namespace dynagg

#endif  // DYNAGG_ENV_UNIFORM_ENV_H_
