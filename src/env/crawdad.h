// Importer for CRAWDAD-style contact records.
//
// The cambridge/haggle datasets distribute per-experiment contact tables
// with whitespace-separated records
//
//     <device_a> <device_b> <start_seconds> <end_seconds> [extra columns]
//
// (device ids arbitrary, often 1-based; '#'-prefixed comment lines). This
// importer converts such tables into a ContactTrace, remapping device ids
// densely, so anyone with access to the real traces can run the Fig 11
// harness on them unchanged: parse with ParseCrawdadContacts, write out with
// ContactTrace::ToText, and pass the file to the bench via the trace tools.

#ifndef DYNAGG_ENV_CRAWDAD_H_
#define DYNAGG_ENV_CRAWDAD_H_

#include <string_view>

#include "common/status.h"
#include "env/contact_trace.h"

namespace dynagg {

/// Options controlling CRAWDAD-table interpretation.
struct CrawdadOptions {
  /// Records whose interval is shorter than this are dropped (the iMote
  /// traces contain sub-second glitch contacts).
  double min_duration_seconds = 0.0;
  /// If > 0, only the first `max_devices` distinct device ids (in order of
  /// appearance) are kept; contacts touching later devices are dropped.
  int max_devices = 0;
  /// Shift all timestamps so the earliest contact starts at 0.
  bool rebase_time = true;
};

/// Parses a CRAWDAD contact table into a finalized ContactTrace.
/// Self-contacts and inverted intervals are rejected as corruption; unknown
/// trailing columns are ignored.
Result<ContactTrace> ParseCrawdadContacts(std::string_view text,
                                          const CrawdadOptions& options = {});

}  // namespace dynagg

#endif  // DYNAGG_ENV_CRAWDAD_H_
