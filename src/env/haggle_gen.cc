#include "env/haggle_gen.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"

namespace dynagg {

HaggleGenParams HaggleDataset1() {
  HaggleGenParams p;
  p.num_devices = 9;
  p.duration_hours = 90.0;
  p.meetings_per_hour_day = 3.0;
  p.mean_meeting_minutes = 25.0;
  p.min_group = 2;
  p.max_group = 5;
  p.num_communities = 2;
  p.seed = 0x4a661e01ull;
  return p;
}

HaggleGenParams HaggleDataset2() {
  HaggleGenParams p;
  p.num_devices = 12;
  p.duration_hours = 120.0;
  p.meetings_per_hour_day = 3.5;
  p.mean_meeting_minutes = 25.0;
  p.min_group = 2;
  p.max_group = 6;
  p.num_communities = 3;
  p.seed = 0x4a661e02ull;
  return p;
}

HaggleGenParams HaggleDataset3() {
  HaggleGenParams p;
  p.num_devices = 41;
  p.duration_hours = 70.0;
  p.meetings_per_hour_day = 6.0;
  p.mean_meeting_minutes = 50.0;  // conference sessions
  p.min_group = 3;
  p.max_group = 22;
  p.num_communities = 4;
  p.community_affinity = 0.6;  // attendees mix across tracks
  p.seed = 0x4a661e03ull;
  return p;
}

namespace {

// Whether local time `hours` (hours since trace start, day 0 starting at
// midnight) falls in the daytime window.
bool IsDaytime(double hours, const HaggleGenParams& p) {
  const double hour_of_day = std::fmod(hours, 24.0);
  return hour_of_day >= p.day_start_hour && hour_of_day < p.day_end_hour;
}

// Draws the next gathering arrival after `t_hours` from the
// piecewise-constant-rate Poisson process via thinning.
double NextArrivalHours(double t_hours, const HaggleGenParams& p, Rng& rng) {
  const double max_rate = p.meetings_per_hour_day;
  DYNAGG_CHECK_GT(max_rate, 0.0);
  double t = t_hours;
  while (true) {
    t += rng.Exponential(max_rate);
    const double rate = IsDaytime(t, p)
                            ? p.meetings_per_hour_day
                            : p.meetings_per_hour_day *
                                  p.night_activity_factor;
    if (rng.Bernoulli(rate / max_rate)) return t;
  }
}

}  // namespace

ContactTrace GenerateHaggleTrace(const HaggleGenParams& params) {
  DYNAGG_CHECK_GE(params.num_devices, 2);
  DYNAGG_CHECK_GT(params.duration_hours, 0.0);
  DYNAGG_CHECK_GE(params.min_group, 2);
  DYNAGG_CHECK_GE(params.max_group, params.min_group);
  DYNAGG_CHECK_GE(params.num_communities, 1);

  Rng rng(params.seed);
  ContactTrace trace(params.num_devices);
  const SimTime trace_end = FromHours(params.duration_hours);

  // Round-robin home communities.
  std::vector<std::vector<HostId>> communities(params.num_communities);
  for (HostId d = 0; d < params.num_devices; ++d) {
    communities[d % params.num_communities].push_back(d);
  }

  std::vector<HostId> members;
  std::vector<bool> picked(params.num_devices, false);
  double t_hours = 0.0;
  while (true) {
    t_hours = NextArrivalHours(t_hours, params, rng);
    if (t_hours >= params.duration_hours) break;

    // Gathering size: min_group + Geometric(1/2), truncated.
    const int span = params.max_group - params.min_group;
    int size = params.min_group + rng.GeometricLevel(span);
    size = std::min(size, params.num_devices);

    // Membership: anchored at a community, with (1 - affinity) outsiders.
    const auto& anchor =
        communities[rng.UniformInt(communities.size())];
    members.clear();
    std::fill(picked.begin(), picked.end(), false);
    int guard = 0;
    while (static_cast<int>(members.size()) < size &&
           guard++ < 64 * params.num_devices) {
      HostId candidate;
      if (rng.Bernoulli(params.community_affinity)) {
        candidate = anchor[rng.UniformInt(anchor.size())];
      } else {
        candidate = static_cast<HostId>(
            rng.UniformInt(static_cast<uint64_t>(params.num_devices)));
      }
      if (!picked[candidate]) {
        picked[candidate] = true;
        members.push_back(candidate);
      }
    }
    if (members.size() < 2) continue;

    // Meeting length, clamped to [2, 180] minutes and to the trace end.
    const double minutes = std::clamp(
        rng.Exponential(1.0 / params.mean_meeting_minutes), 2.0, 180.0);
    const SimTime start = FromHours(t_hours);
    const SimTime end =
        std::min<SimTime>(start + FromMinutes(minutes), trace_end);
    if (end <= start) continue;

    // Everyone at the gathering is in mutual range: a contact clique.
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        trace.AddContact(members[i], members[j], start, end);
      }
    }
  }
  trace.Finalize();
  return trace;
}

}  // namespace dynagg
