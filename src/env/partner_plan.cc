#include "env/partner_plan.h"

namespace dynagg {

void PartnerPlan::Reset(const std::vector<HostId>& initiators,
                        int slots_per_initiator) {
  if (slots_per_initiator == 1) {
    initiators_.assign(initiators.begin(), initiators.end());
  } else {
    initiators_.clear();
    initiators_.reserve(initiators.size() * slots_per_initiator);
    for (const HostId id : initiators) {
      for (int s = 0; s < slots_per_initiator; ++s) initiators_.push_back(id);
    }
  }
  // Sized, not cleared: BuildPlan writes every slot (its contract), so a
  // defensive fill would only add a full pass over the array per round.
  partners_.resize(initiators_.size());
  identity_initiators_ = false;
}

int64_t PartnerPlan::CountMatched() const {
  int64_t matched = 0;
  for (const HostId p : partners_) matched += (p != kInvalidHost) ? 1 : 0;
  return matched;
}

}  // namespace dynagg
