// Shared alive-neighbor sampling for list-adjacency environments
// (random-graph overlays, trace playback).
//
// The draw sequence — up to 4 rejection attempts over the full neighbor
// list, then one uniform draw over its alive subset — is part of the
// bit-reproducibility contract: SamplePeer and the batched BuildPlan of
// both environments must consume the Rng identically, so the sequence is
// defined exactly once here. Callers differ only in how the alive subset
// is obtained: SamplePeer filters into a scratch row on demand, BuildPlan
// serves it from a stamped per-host cache.

#ifndef DYNAGG_ENV_ALIVE_NEIGHBORS_H_
#define DYNAGG_ENV_ALIVE_NEIGHBORS_H_

#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/population.h"

namespace dynagg {

/// Samples a uniform alive member of `nbrs`: rejection over the full list
/// (cheap, alive-dominated populations almost always hit it), then an
/// exact draw over the alive subset. `ensure_alive_row()` is invoked only
/// on the fallback and must return the alive members of `nbrs` in list
/// order (so cached and freshly-filtered rows draw identically). Returns
/// kInvalidHost when `nbrs` has no alive member.
template <typename EnsureAliveRowFn>
HostId SampleAliveNeighbor(const std::vector<HostId>& nbrs,
                           const Population& pop, Rng& rng,
                           EnsureAliveRowFn&& ensure_alive_row) {
  if (nbrs.empty()) return kInvalidHost;
  for (int attempt = 0; attempt < 4; ++attempt) {
    const HostId pick = nbrs[rng.UniformInt(nbrs.size())];
    if (pop.IsAlive(pick)) return pick;
  }
  const std::vector<HostId>& alive = ensure_alive_row();
  if (alive.empty()) return kInvalidHost;
  return alive[rng.UniformInt(alive.size())];
}

/// The fallback filter: the alive members of `nbrs`, in list order.
inline void FilterAliveNeighbors(const std::vector<HostId>& nbrs,
                                 const Population& pop,
                                 std::vector<HostId>* out) {
  out->clear();
  for (const HostId id : nbrs) {
    if (pop.IsAlive(id)) out->push_back(id);
  }
}

}  // namespace dynagg

#endif  // DYNAGG_ENV_ALIVE_NEIGHBORS_H_
