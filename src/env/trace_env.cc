#include "env/trace_env.h"

#include <algorithm>

#include "common/macros.h"
#include "env/alive_neighbors.h"
#include "env/connectivity.h"
#include "obs/telemetry.h"

namespace dynagg {

TraceEnvironment::TraceEnvironment(const ContactTrace& trace,
                                   SimTime group_window)
    : trace_(&trace),
      group_window_(group_window),
      neighbors_(trace.num_devices()) {
  DYNAGG_CHECK(trace.finalized());
  DYNAGG_CHECK_GE(group_window, 0);
}

void TraceEnvironment::AdvanceTo(SimTime t) {
  DYNAGG_CHECK_GE(t, now_);
  const auto& events = trace_->Events();
  // The event-driven drivers advance once per gossip tick and again for
  // every sampler that shares the instant; when the clock is already at
  // `t` and no trace event is pending there is nothing to apply and the
  // recent-down prune below is idempotent, so skip the whole walk.
  if (t == now_ &&
      (next_event_ >= events.size() || events[next_event_].time > t)) {
    return;
  }
  while (next_event_ < events.size() && events[next_event_].time <= t) {
    const ContactEvent& ev = events[next_event_++];
    // The clock must track the event being applied so that LinkDown records
    // the correct drop time for the group window.
    now_ = ev.time;
    if (ev.up) {
      LinkUp(ev.a, ev.b);
    } else {
      LinkDown(ev.a, ev.b);
    }
  }
  now_ = t;
  // Prune expired entries from the recent-down map.
  const SimTime horizon = now_ - group_window_;
  for (auto it = recent_down_.begin(); it != recent_down_.end();) {
    if (it->second < horizon) {
      it = recent_down_.erase(it);
    } else {
      ++it;
    }
  }
}

void TraceEnvironment::LinkUp(HostId a, HostId b) {
  const Edge e = MakeEdge(a, b);
  if (++edges_[e] == 1) {
    neighbors_[a].push_back(b);
    neighbors_[b].push_back(a);
    recent_down_.erase(e);
    ++topology_epoch_;
  }
}

void TraceEnvironment::LinkDown(HostId a, HostId b) {
  const Edge e = MakeEdge(a, b);
  const auto it = edges_.find(e);
  DYNAGG_CHECK(it != edges_.end());
  if (--it->second == 0) {
    edges_.erase(it);
    auto drop = [](std::vector<HostId>& vec, HostId id) {
      const auto pos = std::find(vec.begin(), vec.end(), id);
      DYNAGG_CHECK(pos != vec.end());
      *pos = vec.back();
      vec.pop_back();
    };
    drop(neighbors_[a], b);
    drop(neighbors_[b], a);
    recent_down_[e] = now_;
    ++topology_epoch_;
  }
}

HostId TraceEnvironment::SamplePeer(HostId i, const Population& pop,
                                    Rng& rng) const {
  // Rejection-sample over alive in-range neighbors, with the shared exact
  // fallback (rare: trace devices are normally all alive).
  const auto& nbrs = neighbors_[i];
  std::vector<HostId> scratch;
  return SampleAliveNeighbor(nbrs, pop, rng,
                             [&]() -> const std::vector<HostId>& {
                               FilterAliveNeighbors(nbrs, pop, &scratch);
                               return scratch;
                             });
}

void TraceEnvironment::BuildPlan(const Population& pop, Rng& rng,
                                 PartnerPlan* plan) const {
  if (row_stamps_.empty()) {
    alive_rows_.resize(neighbors_.size());
    row_stamps_.assign(neighbors_.size(), RowStamp{});
  }
  const uint64_t pop_fingerprint = pop.fingerprint();
  const std::vector<HostId>& initiators = plan->initiators();
  std::vector<HostId>& partners = *plan->mutable_partners();
  for (size_t k = 0; k < initiators.size(); ++k) {
    const HostId i = initiators[k];
    const auto& nbrs = neighbors_[i];
    // Same draw sequence as SamplePeer; the fallback row comes from the
    // (topology epoch, population fingerprint)-stamped cache.
    partners[k] = SampleAliveNeighbor(
        nbrs, pop, rng, [&]() -> const std::vector<HostId>& {
          std::vector<HostId>& alive = alive_rows_[i];
          RowStamp& stamp = row_stamps_[i];
          if (stamp.topology != topology_epoch_ ||
              stamp.population != pop_fingerprint) {
            obs::Count(obs::Counter::kPlanCacheRebuilds);
            FilterAliveNeighbors(nbrs, pop, &alive);
            stamp = RowStamp{topology_epoch_, pop_fingerprint};
          } else {
            obs::Count(obs::Counter::kPlanCacheHits);
          }
          return alive;
        });
  }
}

void TraceEnvironment::AppendNeighbors(HostId i, const Population& pop,
                                       std::vector<HostId>* out) const {
  for (const HostId id : neighbors_[i]) {
    if (pop.IsAlive(id)) out->push_back(id);
  }
}

std::vector<int> TraceEnvironment::CurrentGroups() const {
  std::vector<Edge> edge_list;
  edge_list.reserve(edges_.size() + recent_down_.size());
  for (const auto& [edge, count] : edges_) edge_list.push_back(edge);
  const SimTime horizon = now_ - group_window_;
  for (const auto& [edge, down_time] : recent_down_) {
    if (down_time >= horizon) edge_list.push_back(edge);
  }
  return ConnectedComponents(trace_->num_devices(), edge_list);
}

double TraceEnvironment::AverageGroupSize() const {
  const std::vector<int> labels = CurrentGroups();
  if (labels.empty()) return 0.0;
  const std::vector<int> sizes = ComponentSizes(labels);
  double total = 0.0;
  for (const int label : labels) total += sizes[label];
  return total / static_cast<double>(labels.size());
}

}  // namespace dynagg
