// The `async` trial driver: message-level gossip on the discrete-event
// core, with a deterministic network model deciding each message's fate.
//
// Where the rounds driver moves state between hosts instantaneously inside
// a synchronous round, the async driver splits every gossip exchange into
// a SEND (the swarm's async tick plans a batch of messages) and a DELIVERY
// (an event scheduled after the network model's per-message latency draw,
// or never, when the Bernoulli drop fires). Ticks still happen every
// gossip_period simulated seconds — `rounds` counts them — but between two
// ticks messages are in flight: they can arrive late, out of order, or
// not at all, which is exactly the regime that separates mass-conserving
// push-sum (loses mass with every dropped message) from flow-conserving
// push-flow (self-heals).
//
// Determinism: the network model seeds a fresh Rng per message from
// seeds.message_stream, the event queue breaks same-instant ties by
// (priority, insertion seq), and deliveries / gossip ticks / the metric
// sampler run at fixed priorities — so a trial is byte-identical no matter
// how many executor threads run trials around it.

#ifndef DYNAGG_SCENARIO_ASYNC_DRIVER_H_
#define DYNAGG_SCENARIO_ASYNC_DRIVER_H_

#include "common/status.h"
#include "net/network_model.h"
#include "scenario/registry.h"
#include "scenario/trial.h"

namespace dynagg {
namespace scenario {

/// Spec-only validation of a `driver = async` experiment: protocol
/// capability, the net.* / seeds.* / record.* allowlists and value ranges,
/// the metric catalog, and the keys the driver does not consume. Shared
/// between the driver itself and the executor's `--dry-run`.
Status ValidateAsyncSpec(const ScenarioSpec& spec, const ProtocolDef& def);

/// Parses and range-checks the net.* keys (defaults: a perfect network —
/// fixed zero latency, no loss, no jitter).
Result<net::NetworkParams> ParseNetworkParams(const ScenarioSpec& spec);

namespace internal {
/// Registers `driver = async` (called by RegisterBuiltinDrivers).
void RegisterAsyncDriver(Registry<DriverDef>& registry);
}  // namespace internal

}  // namespace scenario
}  // namespace dynagg

#endif  // DYNAGG_SCENARIO_ASYNC_DRIVER_H_
