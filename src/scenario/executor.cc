#include "scenario/executor.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "scenario/async_driver.h"
#include "scenario/config.h"
#include "scenario/trial.h"

namespace dynagg {
namespace scenario {

namespace {

/// Applies one sweep override for `key` to a copy of the spec. Doubles are
/// stored with %.17g so the runner parses back the exact swept value.
Result<ScenarioSpec> ApplySweepKey(const ScenarioSpec& spec,
                                   const std::string& key, double value) {
  ScenarioSpec out = spec;
  if (key == "hosts" || key == "rounds" || key == "intra_round_threads") {
    const auto v = static_cast<int64_t>(value);
    if (v <= 0 || static_cast<double>(v) != value) {
      return Status::InvalidArgument("sweep over " + key +
                                     " requires positive integer values");
    }
    if (key == "hosts") out.hosts = static_cast<int>(v);
    if (key == "rounds") out.rounds = static_cast<int>(v);
    if (key == "intra_round_threads") {
      out.intra_round_threads = static_cast<int>(v);
    }
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out.params[key] = buf;
  }
  return out;
}

/// Column header for a sweep: the last path segment of the swept key
/// ("protocol.lambda" -> "lambda"), matching the legacy bench tables.
std::string SweepColumnName(const std::string& sweep_key) {
  const size_t dot = sweep_key.rfind('.');
  return dot == std::string::npos ? sweep_key : sweep_key.substr(dot + 1);
}

/// How units map onto the (sweep, sweep2, trial) axes and which axis
/// columns the assembled tables carry.
struct AxisLayout {
  bool has_sweep = false;
  bool has_sweep2 = false;
  bool has_trial = false;  // trial column present (trials > 1, no aggregate)
  int num_sweep = 1;
  int num_sweep2 = 1;
  int trials = 1;

  int num_units() const { return num_sweep * num_sweep2 * trials; }
  int num_cells() const { return num_sweep * num_sweep2; }
  int sweep_index(int unit) const { return unit / (num_sweep2 * trials); }
  int sweep2_index(int unit) const { return (unit / trials) % num_sweep2; }
  int trial(int unit) const { return unit % trials; }

  std::vector<std::string> ColumnNames(const ScenarioSpec& spec) const {
    std::vector<std::string> columns;
    if (has_sweep) columns.push_back(SweepColumnName(spec.sweep_key));
    if (has_sweep2) {
      std::string name = SweepColumnName(spec.sweep2_key);
      // "protocol.lambda" vs "env.lambda" would collide; disambiguate.
      if (has_sweep && name == columns.back()) name += "2";
      columns.push_back(name);
    }
    if (has_trial) columns.push_back("trial");
    return columns;
  }

  /// Axis values of `unit` (cell axes only when `with_trial` is false).
  std::vector<double> Values(const ScenarioSpec& spec, int unit,
                             bool with_trial) const {
    std::vector<double> values;
    if (has_sweep) values.push_back(spec.sweep_values[sweep_index(unit)]);
    if (has_sweep2) values.push_back(spec.sweep2_values[sweep2_index(unit)]);
    if (has_trial && with_trial) {
      values.push_back(static_cast<double>(trial(unit)));
    }
    return values;
  }
};

std::string UnitError(const ScenarioSpec& spec, int unit,
                      const std::string& what) {
  return "experiment '" + spec.name + "' unit " + std::to_string(unit) +
         ": " + what;
}

/// Verifies that `batch` has the same record structure as `proto` (same
/// names, same order, same metadata) — the record-level analogue of the old
/// "trials reported inconsistent column sets" check.
Status CheckSameStructure(const ScenarioSpec& spec, const RecordBatch& proto,
                          const RecordBatch& batch, int unit) {
  const auto mismatch = [&](const std::string& what) {
    return Status::InvalidArgument(
        UnitError(spec, unit, "inconsistent record structure (" + what +
                                  ") across trials"));
  };
  if (batch.scalars.size() != proto.scalars.size()) {
    return mismatch("scalar count");
  }
  for (size_t i = 0; i < proto.scalars.size(); ++i) {
    if (batch.scalars[i].name != proto.scalars[i].name) {
      return mismatch("scalar '" + batch.scalars[i].name + "'");
    }
  }
  if (batch.quantiles.size() != proto.quantiles.size()) {
    return mismatch("quantile count");
  }
  for (size_t i = 0; i < proto.quantiles.size(); ++i) {
    if (batch.quantiles[i].name != proto.quantiles[i].name ||
        batch.quantiles[i].q != proto.quantiles[i].q) {
      return mismatch("quantile '" + batch.quantiles[i].name + "'");
    }
  }
  if (batch.series.size() != proto.series.size()) {
    return mismatch("series count");
  }
  for (size_t i = 0; i < proto.series.size(); ++i) {
    if (batch.series[i].name != proto.series[i].name ||
        batch.series[i].x_name != proto.series[i].x_name ||
        batch.series[i].key_name != proto.series[i].key_name ||
        batch.series[i].key != proto.series[i].key) {
      return mismatch("series '" + batch.series[i].name + "'");
    }
  }
  if (batch.histograms.size() != proto.histograms.size()) {
    return mismatch("histogram count");
  }
  for (size_t i = 0; i < proto.histograms.size(); ++i) {
    const HistogramRecord& a = proto.histograms[i];
    const HistogramRecord& b = batch.histograms[i];
    // min_key_total is deliberately NOT compared here: it may scale with a
    // swept parameter (fig06's n/100 + 1 under a hosts sweep) and only has
    // to agree across the trials of one cell (checked in
    // AssembleHistogram).
    if (a.label != b.label || a.key_name != b.key_name ||
        a.bucket_name != b.bucket_name || a.value_name != b.value_name ||
        a.cumulative != b.cumulative) {
      return mismatch("histogram '" + b.label + "'");
    }
  }
  if (batch.has_bandwidth != proto.has_bandwidth) {
    return mismatch("bandwidth record");
  }
  return Status::OK();
}

double StatValue(const RunningStat& stat, const std::string& aggregate) {
  if (aggregate == "mean") return stat.mean();
  // Sample stddev: the conventional trial-to-trial spread estimate.
  if (aggregate == "stddev") return std::sqrt(stat.sample_variance());
  if (aggregate == "min") return stat.min();
  return stat.max();
}

/// Column name of a quantile record: <metric>_p<100q> with %g formatting
/// (q = 0.5 -> final_error_p50, q = 0.999 -> final_error_p99.9).
std::string QuantileColumnName(const QuantileRecord& record) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", record.q * 100.0);
  return record.name + "_p" + buf;
}

/// Flattens a batch's summary values: scalars, then quantiles, then
/// bandwidth columns.
std::vector<double> SummaryValues(const RecordBatch& batch) {
  std::vector<double> values;
  values.reserve(batch.scalars.size() + batch.quantiles.size() +
                 (batch.has_bandwidth ? 3 : 0));
  for (const ScalarRecord& s : batch.scalars) values.push_back(s.value);
  for (const QuantileRecord& r : batch.quantiles) values.push_back(r.value);
  if (batch.has_bandwidth) {
    values.push_back(batch.bandwidth.msgs_per_host_round);
    values.push_back(batch.bandwidth.bytes_per_host_round);
    values.push_back(batch.bandwidth.state_bytes);
  }
  return values;
}

std::vector<std::string> SummaryColumns(const RecordBatch& batch) {
  std::vector<std::string> columns;
  for (const ScalarRecord& s : batch.scalars) columns.push_back(s.name);
  for (const QuantileRecord& r : batch.quantiles) {
    columns.push_back(QuantileColumnName(r));
  }
  if (batch.has_bandwidth) {
    columns.push_back("msgs_per_host_round");
    columns.push_back("bytes_per_host_round");
    columns.push_back("state_bytes");
  }
  return columns;
}

/// Assembles the summary table (scalars + bandwidth), one row per unit, or
/// one row per cell with aggregate columns.
Result<ResultTable> AssembleSummary(const ScenarioSpec& spec,
                                    const AxisLayout& axes,
                                    const std::vector<RecordBatch>& batches) {
  const std::vector<std::string> value_columns = SummaryColumns(batches[0]);
  std::vector<std::string> columns = axes.ColumnNames(spec);
  if (spec.aggregates.empty()) {
    columns.insert(columns.end(), value_columns.begin(), value_columns.end());
    CsvTable table(columns);
    for (int unit = 0; unit < axes.num_units(); ++unit) {
      std::vector<double> row = axes.Values(spec, unit, /*with_trial=*/true);
      const std::vector<double> values = SummaryValues(batches[unit]);
      row.insert(row.end(), values.begin(), values.end());
      table.AddRow(row);
    }
    return ResultTable{"summary", std::move(table)};
  }
  for (const std::string& col : value_columns) {
    for (const std::string& agg : spec.aggregates) {
      columns.push_back(col + "_" + agg);
    }
  }
  CsvTable table(columns);
  for (int cell = 0; cell < axes.num_cells(); ++cell) {
    const int base = cell * axes.trials;
    std::vector<RunningStat> stats(value_columns.size());
    for (int t = 0; t < axes.trials; ++t) {
      const std::vector<double> values = SummaryValues(batches[base + t]);
      for (size_t c = 0; c < values.size(); ++c) stats[c].Add(values[c]);
    }
    std::vector<double> row = axes.Values(spec, base, /*with_trial=*/false);
    for (const RunningStat& stat : stats) {
      for (const std::string& agg : spec.aggregates) {
        row.push_back(StatValue(stat, agg));
      }
    }
    table.AddRow(row);
  }
  return ResultTable{"summary", std::move(table)};
}

/// Assembles the series table: one row per (unit, x) — or per (cell, x)
/// with aggregation, matching points by x position across trials. Keyed
/// series (one series per lambda/panel group) add a leading key column and
/// one row block per key group, in first-creation order; group structure
/// was already checked identical across units, so keyed tables assemble
/// deterministically under sweeps and aggregation alike.
Result<ResultTable> AssembleSeries(const ScenarioSpec& spec,
                                   const AxisLayout& axes,
                                   const std::vector<RecordBatch>& batches) {
  const std::vector<SeriesRecord>& proto = batches[0].series;
  const std::string& x_name = proto[0].x_name;
  const std::string& key_name = proto[0].key_name;
  for (const SeriesRecord& s : proto) {
    if (s.x_name != x_name) {
      return Status::InvalidArgument(
          "experiment '" + spec.name + "': series '" + s.name +
          "' uses x axis '" + s.x_name + "' but '" + proto[0].name +
          "' uses '" + x_name + "' (one series table per experiment)");
    }
    if (s.key_name != key_name) {
      return Status::InvalidArgument(
          "experiment '" + spec.name + "': series '" + s.name +
          "' uses key column '" + s.key_name + "' but '" + proto[0].name +
          "' uses '" + key_name +
          "' (all series must share one key column)");
    }
  }

  // Key groups and value columns, both in first-appearance order. An
  // unkeyed batch is one group holding every series.
  std::vector<double> keys;
  std::vector<std::string> names;
  if (key_name.empty()) {
    keys.push_back(0.0);
  } else {
    for (const SeriesRecord& s : proto) {
      if (std::find(keys.begin(), keys.end(), s.key) == keys.end()) {
        keys.push_back(s.key);
      }
    }
  }
  for (const SeriesRecord& s : proto) {
    if (std::find(names.begin(), names.end(), s.name) == names.end()) {
      names.push_back(s.name);
    }
  }
  // Index of (key group, value column) in the batch series list; -1 when
  // the grid is incomplete.
  const auto series_index = [&](double key, const std::string& name) -> int {
    for (size_t i = 0; i < proto.size(); ++i) {
      if ((key_name.empty() || proto[i].key == key) &&
          proto[i].name == name) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };
  std::vector<std::vector<int>> index(keys.size(),
                                      std::vector<int>(names.size(), -1));
  for (size_t k = 0; k < keys.size(); ++k) {
    for (size_t c = 0; c < names.size(); ++c) {
      index[k][c] = series_index(keys[k], names[c]);
      if (index[k][c] < 0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%g", keys[k]);
        return Status::InvalidArgument(
            "experiment '" + spec.name + "': keyed series form an "
            "incomplete grid (no series '" + names[c] + "' for " +
            key_name + " = " + buf + ")");
      }
    }
  }

  // Within one unit, every series of a key group must sample the same x
  // values (they are emitted from the same loop).
  const auto check_unit_spine = [&](const RecordBatch& batch,
                                    int unit) -> Status {
    for (size_t k = 0; k < keys.size(); ++k) {
      const std::vector<SeriesRecord::Point>& spine =
          batch.series[index[k][0]].points;
      for (size_t c = 1; c < names.size(); ++c) {
        const SeriesRecord& s = batch.series[index[k][c]];
        if (s.points.size() != spine.size()) {
          return Status::InvalidArgument(UnitError(
              spec, unit, "series '" + s.name + "' has a different length"));
        }
        for (size_t p = 0; p < spine.size(); ++p) {
          if (s.points[p].x != spine[p].x) {
            return Status::InvalidArgument(
                UnitError(spec, unit, "series '" + s.name +
                                          "' has mismatched x values"));
          }
        }
      }
    }
    return Status::OK();
  };
  for (int unit = 0; unit < axes.num_units(); ++unit) {
    DYNAGG_RETURN_IF_ERROR(check_unit_spine(batches[unit], unit));
  }

  std::vector<std::string> columns = axes.ColumnNames(spec);
  if (!key_name.empty()) columns.push_back(key_name);
  columns.push_back(x_name);
  if (spec.aggregates.empty()) {
    columns.insert(columns.end(), names.begin(), names.end());
    CsvTable table(columns);
    for (int unit = 0; unit < axes.num_units(); ++unit) {
      const RecordBatch& batch = batches[unit];
      const std::vector<double> axis_values =
          axes.Values(spec, unit, /*with_trial=*/true);
      for (size_t k = 0; k < keys.size(); ++k) {
        const std::vector<SeriesRecord::Point>& spine =
            batch.series[index[k][0]].points;
        for (size_t p = 0; p < spine.size(); ++p) {
          std::vector<double> row = axis_values;
          if (!key_name.empty()) row.push_back(keys[k]);
          row.push_back(spine[p].x);
          for (size_t c = 0; c < names.size(); ++c) {
            row.push_back(batch.series[index[k][c]].points[p].value);
          }
          table.AddRow(row);
        }
      }
    }
    return ResultTable{"series", std::move(table)};
  }
  for (const std::string& name : names) {
    for (const std::string& agg : spec.aggregates) {
      columns.push_back(name + "_" + agg);
    }
  }
  CsvTable table(columns);
  for (int cell = 0; cell < axes.num_cells(); ++cell) {
    const int base = cell * axes.trials;
    const std::vector<double> axis_values =
        axes.Values(spec, base, /*with_trial=*/false);
    for (size_t k = 0; k < keys.size(); ++k) {
      // Aggregation matches points by x across a cell's trials, so every
      // trial must have recorded the identical x spine.
      const std::vector<SeriesRecord::Point>& spine =
          batches[base].series[index[k][0]].points;
      for (int t = 1; t < axes.trials; ++t) {
        const std::vector<SeriesRecord::Point>& other =
            batches[base + t].series[index[k][0]].points;
        if (other.size() != spine.size()) {
          return Status::InvalidArgument(UnitError(
              spec, base + t,
              "series length differs across trials; cannot aggregate"));
        }
        for (size_t p = 0; p < spine.size(); ++p) {
          if (other[p].x != spine[p].x) {
            return Status::InvalidArgument(UnitError(
                spec, base + t,
                "series x values differ across trials; cannot aggregate"));
          }
        }
      }
      for (size_t p = 0; p < spine.size(); ++p) {
        std::vector<double> row = axis_values;
        if (!key_name.empty()) row.push_back(keys[k]);
        row.push_back(spine[p].x);
        for (size_t c = 0; c < names.size(); ++c) {
          RunningStat stat;
          for (int t = 0; t < axes.trials; ++t) {
            stat.Add(batches[base + t].series[index[k][c]].points[p].value);
          }
          for (const std::string& agg : spec.aggregates) {
            row.push_back(StatValue(stat, agg));
          }
        }
        table.AddRow(row);
      }
    }
  }
  return ResultTable{"series", std::move(table)};
}

/// Emits one histogram's rows for a bucket sequence: cumulative fraction
/// (or raw count) per bucket, grouped by key. Key groups whose total stays
/// below meta.min_key_total are suppressed here — after any cross-trial
/// pooling — so runners can emit a structurally fixed bucket layout and
/// still skip effectively-empty groups (fig06's sparse counter levels).
void EmitHistogramRows(const HistogramRecord& meta,
                       const std::vector<HistogramRecord::Bucket>& buckets,
                       const std::vector<double>& axis_values,
                       CsvTable* table) {
  std::map<double, int64_t> totals;
  for (const HistogramRecord::Bucket& b : buckets) totals[b.key] += b.count;
  std::map<double, int64_t> running;
  for (const HistogramRecord::Bucket& b : buckets) {
    if (totals[b.key] < meta.min_key_total) continue;
    double value;
    if (meta.cumulative) {
      const int64_t cumulative = (running[b.key] += b.count);
      const int64_t total = totals[b.key];
      value = total > 0 ? static_cast<double>(cumulative) /
                              static_cast<double>(total)
                        : 0.0;
    } else {
      value = static_cast<double>(b.count);
    }
    std::vector<double> row = axis_values;
    if (!meta.key_name.empty()) row.push_back(b.key);
    row.push_back(b.upper);
    row.push_back(value);
    table->AddRow(row);
  }
}

/// Assembles histogram record `index` into its own table; under aggregation
/// the bucket counts of a cell's trials are pooled.
Result<ResultTable> AssembleHistogram(const ScenarioSpec& spec,
                                      const AxisLayout& axes,
                                      const std::vector<RecordBatch>& batches,
                                      size_t index) {
  const HistogramRecord& meta = batches[0].histograms[index];
  std::vector<std::string> columns = axes.ColumnNames(spec);
  if (!meta.key_name.empty()) columns.push_back(meta.key_name);
  columns.push_back(meta.bucket_name);
  columns.push_back(meta.value_name);
  CsvTable table(columns);

  if (spec.aggregates.empty()) {
    for (int unit = 0; unit < axes.num_units(); ++unit) {
      // The unit's own metadata carries its min_key_total (which may scale
      // with a swept parameter); names were checked identical already.
      EmitHistogramRows(batches[unit].histograms[index],
                        batches[unit].histograms[index].buckets,
                        axes.Values(spec, unit, /*with_trial=*/true), &table);
    }
    return ResultTable{meta.label, std::move(table)};
  }
  for (int cell = 0; cell < axes.num_cells(); ++cell) {
    const int base = cell * axes.trials;
    // Pool counts across the cell's trials; bucket sequences (and the
    // suppression threshold) must align within the cell.
    const HistogramRecord& cell_meta = batches[base].histograms[index];
    std::vector<HistogramRecord::Bucket> pooled = cell_meta.buckets;
    for (int t = 1; t < axes.trials; ++t) {
      const HistogramRecord& other = batches[base + t].histograms[index];
      if (other.buckets.size() != pooled.size() ||
          other.min_key_total != cell_meta.min_key_total) {
        return Status::InvalidArgument(UnitError(
            spec, base + t, "histogram '" + meta.label +
                                "' buckets differ across trials"));
      }
      for (size_t b = 0; b < pooled.size(); ++b) {
        if (other.buckets[b].key != pooled[b].key ||
            other.buckets[b].upper != pooled[b].upper) {
          return Status::InvalidArgument(UnitError(
              spec, base + t, "histogram '" + meta.label +
                                  "' buckets differ across trials"));
        }
        pooled[b].count += other.buckets[b].count;
      }
    }
    EmitHistogramRows(cell_meta, pooled,
                      axes.Values(spec, base, /*with_trial=*/false), &table);
  }
  return ResultTable{meta.label, std::move(table)};
}

/// Assembles the per-sweep-point telemetry table: one row per cell with
/// the mean per-trial wall-clock and phase times (milliseconds), the
/// fraction of trial time covered by phase spans, and the cell's summed
/// engine counters. Counters and rounds are exact sums and thus
/// thread-count independent; the timing columns are wall-clock and vary
/// run to run (the table is a side channel, never part of the experiment's
/// own output).
ResultTable AssembleTelemetrySummary(
    const ScenarioSpec& spec, const AxisLayout& axes,
    const std::vector<obs::TrialTelemetry>& units) {
  std::vector<std::string> columns;
  if (axes.has_sweep) columns.push_back(SweepColumnName(spec.sweep_key));
  if (axes.has_sweep2) {
    std::string name = SweepColumnName(spec.sweep2_key);
    if (axes.has_sweep && name == columns.back()) name += "2";
    columns.push_back(name);
  }
  columns.push_back("trials");
  columns.push_back("rounds");
  columns.push_back("trial_ms");
  for (int p = 0; p < obs::kNumPhases; ++p) {
    columns.push_back(std::string(obs::PhaseName(static_cast<obs::Phase>(p))) +
                      "_ms");
  }
  columns.push_back("span_cover_pct");
  for (int c = 0; c < obs::kNumCounters; ++c) {
    columns.push_back(obs::CounterName(static_cast<obs::Counter>(c)));
  }

  CsvTable table(columns);
  for (int cell = 0; cell < axes.num_cells(); ++cell) {
    const int base = cell * axes.trials;
    int64_t rounds = 0;
    int64_t trial_ns = 0;
    int64_t phase_ns[obs::kNumPhases] = {};
    int64_t counters[obs::kNumCounters] = {};
    for (int t = 0; t < axes.trials; ++t) {
      const obs::TrialTelemetry& unit = units[base + t];
      rounds += unit.rounds;
      trial_ns += unit.trial_dur_ns;
      for (int p = 0; p < obs::kNumPhases; ++p) {
        phase_ns[p] += unit.phase_ns[p];
      }
      for (int c = 0; c < obs::kNumCounters; ++c) {
        counters[c] += unit.counters[c];
      }
    }
    int64_t covered_ns = 0;
    for (int p = 0; p < obs::kNumPhases; ++p) covered_ns += phase_ns[p];

    std::vector<double> row = axes.Values(spec, base, /*with_trial=*/false);
    const double trials = static_cast<double>(axes.trials);
    row.push_back(trials);
    row.push_back(static_cast<double>(rounds));
    row.push_back(static_cast<double>(trial_ns) / trials / 1e6);
    for (int p = 0; p < obs::kNumPhases; ++p) {
      row.push_back(static_cast<double>(phase_ns[p]) / trials / 1e6);
    }
    row.push_back(trial_ns > 0 ? 100.0 * static_cast<double>(covered_ns) /
                                     static_cast<double>(trial_ns)
                               : 0.0);
    for (int c = 0; c < obs::kNumCounters; ++c) {
      row.push_back(static_cast<double>(counters[c]));
    }
    table.AddRow(row);
  }
  return ResultTable{"telemetry", std::move(table)};
}

/// Whether `spec` declares any churn.* key (parameter or sweep axis).
bool SpecUsesChurn(const ScenarioSpec& spec) {
  for (const auto& [key, value] : spec.params) {
    if (key.rfind("churn.", 0) == 0) return true;
  }
  return spec.sweep_key.rfind("churn.", 0) == 0 ||
         spec.sweep2_key.rfind("churn.", 0) == 0;
}

/// Spec-only validation of the churn.* plan family: churn runs only under
/// the rounds driver on join-capable swarm protocols, cannot be combined
/// with failure.kind, and its knob ranges (incl. initial/max_alive vs the
/// variant's hosts) must hold for the base spec and every swept variant.
/// `hosts_known` is false when another sweep axis writes hosts, making this
/// spec's own value a placeholder that never executes — the comparisons
/// against it are skipped and covered by that axis's per-variant pass.
Status ValidateChurnSpec(const ScenarioSpec& spec, const ProtocolDef& protocol,
                         const DriverDef& driver, bool hosts_known) {
  const auto invalid = [&](const std::string& what) {
    return Status::InvalidArgument("experiment '" + spec.name + "': " + what);
  };
  if (!SpecUsesChurn(spec)) return Status::OK();
  if (driver.event_driven || driver.message_level) {
    return invalid(
        "churn.* plans are round-indexed and only the rounds driver "
        "executes them; driver = " +
        spec.driver +
        (driver.message_level
             ? " needs event-indexed membership plans, which are not "
               "implemented yet (see docs/spec_reference.md)"
             : " has no rounds"));
  }
  if (!protocol.make_swarm) {
    return invalid("protocol '" + spec.protocol +
                   "' owns its whole trial loop and does not execute "
                   "churn.* plans");
  }
  if (!protocol.join_capable) {
    return invalid("protocol '" + spec.protocol +
                   "' cannot admit hosts (no on_join reset hook); churn.* "
                   "keys require a join-capable protocol — see `dynagg_run "
                   "--list`");
  }
  DYNAGG_ASSIGN_OR_RETURN(const ChurnConfig churn, ParseChurnConfig(spec));
  if (churn.enabled) {
    DYNAGG_ASSIGN_OR_RETURN(const FailureConfig fail,
                            ParseFailureConfig(spec));
    if (fail.kind != FailureConfig::Kind::kNone) {
      return invalid(
          "churn.* and failure.kind cannot be combined: churn plans cover "
          "deaths via churn.death_prob (and their rebirths RESET host "
          "state, unlike failure churn's silent revives)");
    }
    if (!hosts_known) return Status::OK();
    if (churn.initial > spec.hosts) {
      return invalid("churn.initial = " + std::to_string(churn.initial) +
                     " exceeds hosts = " + std::to_string(spec.hosts));
    }
    if (churn.max_alive > spec.hosts) {
      return invalid(
          "churn.max_alive = " + std::to_string(churn.max_alive) +
          " exceeds hosts = " + std::to_string(spec.hosts) +
          " (the universe is fixed; raise hosts to leave room for growth)");
    }
  }
  return Status::OK();
}

/// Spec-only preflight of the plain rounds driver, mirroring DriveRounds'
/// own setup checks so an unknown seeds.* stream or an empty metric window
/// fails --dry-run, not mid-run. Applied to the base spec and to each
/// swept variant — a rounds sweep can empty a window the base spec
/// satisfies. `rounds_known` is false when another sweep axis writes
/// rounds, making this spec's own value a placeholder that never executes
/// — the window checks against it are skipped (that axis's per-variant
/// pass and DriveRounds itself still run them with the real value).
Status ValidateRoundsDriverSpec(const ScenarioSpec& spec,
                                const ProtocolDef& protocol,
                                bool rounds_known) {
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams(
      "seeds.",
      {"round_stream", "failure_stream", "workload_stream", "churn_stream"}));
  DYNAGG_ASSIGN_OR_RETURN(const MetricFlags metrics,
                          ClassifyDriverMetrics(spec, protocol.extra_metrics));
  if (metrics.gossip_bytes && !protocol.models_gossip_bytes) {
    return Status::InvalidArgument(
        "experiment '" + spec.name + "': protocol '" + spec.protocol +
        "' does not model the gossip_bytes metric");
  }
  DYNAGG_ASSIGN_OR_RETURN(
      const RecordConfig cfg,
      ParseRecordConfig(spec, protocol.extra_record_keys));
  // The failure.* plan is parsed from the spec alone; an unknown knob or a
  // bad kind/range should not wait for the trial loop to reject it.
  DYNAGG_RETURN_IF_ERROR(ParseFailureConfig(spec).status());
  if (!rounds_known) return Status::OK();
  return CheckRecordWindows(spec, metrics, cfg);
}

}  // namespace

Status ValidateExperiment(const ScenarioSpec& spec) {
  const auto invalid = [&](const std::string& what) {
    return Status::InvalidArgument("experiment '" + spec.name + "': " + what);
  };
  if (spec.protocol.empty()) return invalid("no protocol configured");
  if (spec.rounds < 1 || spec.trials < 1) {
    return invalid("rounds and trials must be >= 1");
  }
  DYNAGG_ASSIGN_OR_RETURN(const ProtocolDef protocol,
                          ProtocolRegistry().Find(spec.protocol));
  DYNAGG_ASSIGN_OR_RETURN(const EnvironmentDef environment,
                          EnvironmentRegistry().Find(spec.environment));
  DYNAGG_ASSIGN_OR_RETURN(const DriverDef driver,
                          DriverRegistry().Find(spec.driver));
  // A sweep axis that writes hosts or rounds makes the base spec's own
  // field a placeholder no unit ever executes with; checks that read it
  // skip the placeholder and rely on that axis's per-variant pass below.
  const bool sweep1_hosts = spec.sweep_key == "hosts";
  const bool sweep2_hosts = spec.sweep2_key == "hosts";
  const bool sweep1_rounds = spec.sweep_key == "rounds";
  const bool sweep2_rounds = spec.sweep2_key == "rounds";
  // Environment knobs (env.* allowlist, ranges, hosts/degree consistency)
  // are spec-only; reject them here rather than at trial setup. Skipped
  // for the rare protocols that never build an environment.
  if (environment.validate && protocol.uses_environment && !sweep1_hosts &&
      !sweep2_hosts) {
    DYNAGG_RETURN_IF_ERROR(environment.validate(spec));
  }
  if (spec.intra_round_threads < 1) {
    return invalid("intra_round_threads must be >= 1");
  }
  if (spec.intra_round_threads > 1 && !protocol.threads_capable) {
    return invalid("protocol '" + spec.protocol +
                   "' does not support intra_round_threads (no "
                   "data-parallel apply phase)");
  }
  // A swept thread count must be usable at every value, not just the base.
  if (!protocol.threads_capable) {
    for (const std::string& key : {spec.sweep_key, spec.sweep2_key}) {
      if (key == "intra_round_threads") {
        return invalid("protocol '" + spec.protocol +
                       "' does not support intra_round_threads (no "
                       "data-parallel apply phase); it cannot be swept");
      }
    }
  }
  if (!spec.telemetry.empty() && spec.telemetry != "off" &&
      spec.telemetry != "summary" && spec.telemetry != "profile") {
    return invalid("telemetry must be off, summary or profile, got '" +
                   spec.telemetry + "'");
  }
  // Keyed stream workloads feed the stream sketch protocols only; a
  // workload key on any other protocol would be silently ignored. The
  // reverse direction — a consuming protocol without a workload.kind — is
  // rejected by the protocol's own validate hook below.
  if (!protocol.consumes_workload) {
    for (const auto& [key, value] : spec.params) {
      if (key.rfind("workload.", 0) == 0 || key == "seeds.workload_stream") {
        return invalid(
            "'" + key + "' does not apply to protocol '" + spec.protocol +
            "' (keyed stream workloads feed the stream sketch protocols "
            "only, e.g. count-min / count-sketch-freq — see `dynagg_run "
            "--list`)");
      }
    }
    for (const std::string& key : {spec.sweep_key, spec.sweep2_key}) {
      if (key.rfind("workload.", 0) == 0) {
        return invalid(
            "sweep key '" + key + "' does not apply to protocol '" +
            spec.protocol +
            "' (keyed stream workloads feed the stream sketch protocols "
            "only, e.g. count-min / count-sketch-freq)");
      }
    }
  }
  // The net.* keys and the per-message seed stream configure the async
  // driver's network model; on any other driver they would be silently
  // ignored. Mirrors the workload rejection above.
  if (!driver.message_level) {
    for (const auto& [key, value] : spec.params) {
      if (key.rfind("net.", 0) == 0 || key == "seeds.message_stream") {
        return invalid("'" + key +
                       "' configures the async driver's network model and "
                       "does not apply to driver = " +
                       spec.driver + " (use driver = async)");
      }
    }
    for (const std::string& key : {spec.sweep_key, spec.sweep2_key}) {
      if (key.rfind("net.", 0) == 0) {
        return invalid("sweep key '" + key +
                       "' configures the async driver's network model and "
                       "does not apply to driver = " +
                       spec.driver + " (use driver = async)");
      }
    }
  }
  // churn.* plans run under the rounds driver on join-capable protocols
  // only; anywhere else they would be silently ignored. Mirrors the
  // workload/net rejections above, plus knob-range checks so a bad plan
  // fails --dry-run, not mid-run.
  DYNAGG_RETURN_IF_ERROR(ValidateChurnSpec(
      spec, protocol, driver, /*hosts_known=*/!sweep1_hosts && !sweep2_hosts));
  if (driver.message_level) {
    DYNAGG_RETURN_IF_ERROR(ValidateAsyncSpec(spec, protocol));
  } else if (driver.event_driven) {
    if (!environment.provides_trace) {
      return invalid("driver = " + spec.driver +
                     " replays a contact trace, but environment '" +
                     spec.environment +
                     "' does not provide one (use haggle or another trace "
                     "environment)");
    }
    if (!protocol.trace_capable) {
      return invalid("protocol '" + spec.protocol +
                     "' does not support driver = " + spec.driver +
                     " (no group-truth hooks)");
    }
    if (spec.rounds_set || spec.sweep_key == "rounds" ||
        spec.sweep2_key == "rounds") {
      return invalid(
          "rounds does not apply to driver = " + spec.driver +
          " (the trace horizon and gossip_period govern the run length)");
    }
    // Failure plans are round-indexed; the event-driven timeline has no
    // rounds. Mirrors the trace driver's run-time rejection so the
    // mismatch fails --dry-run.
    for (const auto& [key, value] : spec.params) {
      if (key.rfind("failure.", 0) == 0) {
        return invalid("'" + key + "' does not apply to driver = " +
                       spec.driver +
                       " (failure plans are round-indexed; the trace "
                       "timeline has no rounds)");
      }
    }
    DYNAGG_RETURN_IF_ERROR(
        CheckMetricsSupported(spec, {"rms", "avg_group_size"}));
  } else if (spec.gossip_period > 0 || spec.sample_period > 0) {
    return invalid(
        "gossip_period / sample_period configure the event-driven drivers "
        "(trace, async); driver = " +
        spec.driver + " advances in rounds");
  } else if (protocol.make_swarm) {
    // The rounds driver's metric catalog, record.* knobs, metric windows
    // and seeds.* streams are static per protocol, so selector typos,
    // malformed rounds_below/recovery/quantile arguments, unknown record
    // or seed-stream keys and empty windows fail --dry-run, not mid-run.
    DYNAGG_RETURN_IF_ERROR(ValidateRoundsDriverSpec(
        spec, protocol, /*rounds_known=*/!sweep1_rounds && !sweep2_rounds));
  }
  DYNAGG_RETURN_IF_ERROR(ValidateMetricList(spec.metrics));
  DYNAGG_RETURN_IF_ERROR(ValidateAggregateList(spec.aggregates));
  if (!spec.aggregates.empty() && spec.trials < 2) {
    // A one-trial stddev would silently read 0, faking perfect
    // reproducibility.
    return invalid("aggregate requires trials >= 2");
  }
  if (!spec.sweep_key.empty() && spec.sweep_values.empty()) {
    return invalid("sweep over '" + spec.sweep_key + "' has no values");
  }
  if (spec.sweep_key.empty() && !spec.sweep_values.empty()) {
    return invalid("sweep values set without a sweep key");
  }
  if (spec.sweep2_key.empty() && !spec.sweep2_values.empty()) {
    return invalid("sweep2 values set without a sweep2 key");
  }
  if (!spec.sweep2_key.empty()) {
    if (spec.sweep_key.empty()) {
      return invalid("sweep2 requires a primary sweep");
    }
    if (spec.sweep2_key == spec.sweep_key) {
      return invalid("sweep2 key '" + spec.sweep2_key +
                     "' duplicates the sweep key");
    }
    if (spec.sweep2_values.empty()) {
      return invalid("sweep2 over '" + spec.sweep2_key + "' has no values");
    }
  }
  // Dry-apply every sweep value so e.g. a fractional hosts sweep fails in
  // --dry-run, not halfway through a long run; validate the protocol's
  // knobs on the base spec and on each swept variant (a sweep may write an
  // out-of-range or non-numeric value into a validated parameter).
  if (protocol.validate) DYNAGG_RETURN_IF_ERROR(protocol.validate(spec));
  const bool plain_rounds =
      !driver.message_level && !driver.event_driven && protocol.make_swarm;
  // Each axis's variants carry real values for its own key but still the
  // base placeholder for the other axis's hosts/rounds, so the same
  // skip-the-placeholder rule applies per axis.
  for (const double v : spec.sweep_values) {
    DYNAGG_ASSIGN_OR_RETURN(const ScenarioSpec swept,
                            ApplySweepKey(spec, spec.sweep_key, v));
    if (protocol.validate) DYNAGG_RETURN_IF_ERROR(protocol.validate(swept));
    if (environment.validate && protocol.uses_environment && !sweep2_hosts) {
      DYNAGG_RETURN_IF_ERROR(environment.validate(swept));
    }
    DYNAGG_RETURN_IF_ERROR(ValidateChurnSpec(swept, protocol, driver,
                                             /*hosts_known=*/!sweep2_hosts));
    if (plain_rounds) {
      DYNAGG_RETURN_IF_ERROR(ValidateRoundsDriverSpec(
          swept, protocol, /*rounds_known=*/!sweep2_rounds));
    }
    if (driver.message_level) {
      DYNAGG_RETURN_IF_ERROR(ValidateAsyncSpec(swept, protocol));
    }
  }
  for (const double v : spec.sweep2_values) {
    DYNAGG_ASSIGN_OR_RETURN(const ScenarioSpec swept,
                            ApplySweepKey(spec, spec.sweep2_key, v));
    if (protocol.validate) DYNAGG_RETURN_IF_ERROR(protocol.validate(swept));
    if (environment.validate && protocol.uses_environment && !sweep1_hosts) {
      DYNAGG_RETURN_IF_ERROR(environment.validate(swept));
    }
    DYNAGG_RETURN_IF_ERROR(ValidateChurnSpec(swept, protocol, driver,
                                             /*hosts_known=*/!sweep1_hosts));
    if (plain_rounds) {
      DYNAGG_RETURN_IF_ERROR(ValidateRoundsDriverSpec(
          swept, protocol, /*rounds_known=*/!sweep1_rounds));
    }
    if (driver.message_level) {
      DYNAGG_RETURN_IF_ERROR(ValidateAsyncSpec(swept, protocol));
    }
  }
  return Status::OK();
}

Result<std::vector<ResultTable>> RunExperiment(const ScenarioSpec& spec,
                                               int threads) {
  RunOptions options;
  options.threads = threads;
  return RunExperiment(spec, options, /*telemetry=*/nullptr);
}

Result<std::vector<ResultTable>> RunExperiment(
    const ScenarioSpec& spec, const RunOptions& options,
    ExperimentTelemetry* telemetry) {
  int threads = options.threads;
  DYNAGG_RETURN_IF_ERROR(ValidateExperiment(spec));
  // The effective mode: the options override (dynagg_run --telemetry) wins
  // over the spec key; collection also needs somewhere to put the result.
  const std::string& mode =
      options.telemetry.empty() ? spec.telemetry : options.telemetry;
  const bool collect =
      telemetry != nullptr && (mode == "summary" || mode == "profile");
  DYNAGG_ASSIGN_OR_RETURN(const ProtocolDef protocol,
                          ProtocolRegistry().Find(spec.protocol));
  DYNAGG_ASSIGN_OR_RETURN(const DriverDef driver,
                          DriverRegistry().Find(spec.driver));

  AxisLayout axes;
  axes.has_sweep = !spec.sweep_key.empty();
  axes.has_sweep2 = !spec.sweep2_key.empty();
  axes.num_sweep =
      axes.has_sweep ? static_cast<int>(spec.sweep_values.size()) : 1;
  axes.num_sweep2 =
      axes.has_sweep2 ? static_cast<int>(spec.sweep2_values.size()) : 1;
  axes.trials = spec.trials;
  axes.has_trial = spec.trials > 1 && spec.aggregates.empty();
  const int num_units = axes.num_units();

  std::vector<std::optional<Result<RecordBatch>>> slots(num_units);
  std::vector<obs::TrialTelemetry> unit_telemetry(collect ? num_units : 0);
  std::mutex done_mutex;
  int done_units = 0;
  std::atomic<int> next_unit{0};
  const auto worker = [&](int worker_id) {
    for (;;) {
      const int unit = next_unit.fetch_add(1);
      if (unit >= num_units) return;

      ScenarioSpec unit_spec = spec;
      TrialContext ctx;
      ctx.trial = axes.trial(unit);
      ctx.trial_seed = TrialSeed(spec.seed, ctx.trial);
      Status sweep_status = Status::OK();
      if (axes.has_sweep) {
        ctx.sweep_index = axes.sweep_index(unit);
        ctx.sweep_value = spec.sweep_values[ctx.sweep_index];
        Result<ScenarioSpec> swept =
            ApplySweepKey(unit_spec, spec.sweep_key, ctx.sweep_value);
        if (swept.ok()) {
          unit_spec = std::move(swept).value();
        } else {
          sweep_status = swept.status();
        }
      }
      if (sweep_status.ok() && axes.has_sweep2) {
        ctx.sweep2_index = axes.sweep2_index(unit);
        ctx.sweep2_value = spec.sweep2_values[ctx.sweep2_index];
        Result<ScenarioSpec> swept =
            ApplySweepKey(unit_spec, spec.sweep2_key, ctx.sweep2_value);
        if (swept.ok()) {
          unit_spec = std::move(swept).value();
        } else {
          sweep_status = swept.status();
        }
      }
      if (!sweep_status.ok()) {
        slots[unit].emplace(sweep_status);
      } else {
        ctx.spec = &unit_spec;
        // Install the unit's telemetry sink (null = all hooks no-op) for
        // exactly the driver call: spans and counters land per unit, on
        // the worker that ran it.
        obs::TrialTelemetry* sink = nullptr;
        if (collect) {
          sink = &unit_telemetry[unit];
          sink->unit = unit;
          sink->worker = worker_id;
          sink->trial = ctx.trial;
          sink->profile = mode == "profile";
        }
        obs::ScopedTrial scope(sink);
        Recorder rec;
        const Status st = driver.run(ctx, protocol, rec);
        if (st.ok()) {
          slots[unit].emplace(rec.TakeBatch());
        } else {
          slots[unit].emplace(st);
        }
      }
      if (options.on_unit_done) {
        std::lock_guard<std::mutex> lock(done_mutex);
        options.on_unit_done(++done_units, num_units);
      }
    }
  };

  if (threads < 1) threads = 1;
  if (threads > num_units) threads = num_units;
  if (threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker, t);
    for (auto& th : pool) th.join();
  }

  if (collect) {
    telemetry->experiment = spec.name;
    telemetry->summary.clear();
    telemetry->summary.push_back(
        AssembleTelemetrySummary(spec, axes, unit_telemetry));
    telemetry->units = std::move(unit_telemetry);
  }

  std::vector<RecordBatch> batches;
  batches.reserve(num_units);
  for (int unit = 0; unit < num_units; ++unit) {
    Result<RecordBatch>& result = *slots[unit];
    if (!result.ok()) {
      return Status::InvalidArgument(
          UnitError(spec, unit, result.status().ToString()));
    }
    batches.push_back(std::move(*result));
  }
  for (int unit = 1; unit < num_units; ++unit) {
    DYNAGG_RETURN_IF_ERROR(
        CheckSameStructure(spec, batches[0], batches[unit], unit));
  }
  const RecordBatch& proto = batches[0];
  if (proto.scalars.empty() && proto.quantiles.empty() &&
      proto.series.empty() && proto.histograms.empty() &&
      !proto.has_bandwidth) {
    return Status::InvalidArgument("experiment '" + spec.name +
                                   "': trials recorded nothing");
  }

  // Deterministic merge, in sweep-major unit order throughout.
  std::vector<ResultTable> out;
  if (!proto.scalars.empty() || !proto.quantiles.empty() ||
      proto.has_bandwidth) {
    DYNAGG_ASSIGN_OR_RETURN(ResultTable table,
                            AssembleSummary(spec, axes, batches));
    out.push_back(std::move(table));
  }
  if (!proto.series.empty()) {
    DYNAGG_ASSIGN_OR_RETURN(ResultTable table,
                            AssembleSeries(spec, axes, batches));
    out.push_back(std::move(table));
  }
  for (size_t h = 0; h < proto.histograms.size(); ++h) {
    DYNAGG_ASSIGN_OR_RETURN(ResultTable table,
                            AssembleHistogram(spec, axes, batches, h));
    out.push_back(std::move(table));
  }
  return out;
}

}  // namespace scenario
}  // namespace dynagg
