#include "scenario/executor.h"

#include <atomic>
#include <cstdio>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "scenario/trial.h"

namespace dynagg {
namespace scenario {

namespace {

/// Applies one sweep override to a copy of the spec. Doubles are stored
/// with %.17g so the runner parses back the exact swept value.
Result<ScenarioSpec> ApplySweep(const ScenarioSpec& spec, double value) {
  ScenarioSpec out = spec;
  if (spec.sweep_key == "hosts" || spec.sweep_key == "rounds") {
    const auto v = static_cast<int64_t>(value);
    if (v <= 0 || static_cast<double>(v) != value) {
      return Status::InvalidArgument(
          "sweep over " + spec.sweep_key +
          " requires positive integer values");
    }
    (spec.sweep_key == "hosts" ? out.hosts : out.rounds) =
        static_cast<int>(v);
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out.params[spec.sweep_key] = buf;
  }
  return out;
}

/// Column header for the sweep: the last path segment of the swept key
/// ("protocol.lambda" -> "lambda"), matching the legacy bench tables.
std::string SweepColumnName(const std::string& sweep_key) {
  const size_t dot = sweep_key.rfind('.');
  return dot == std::string::npos ? sweep_key : sweep_key.substr(dot + 1);
}

}  // namespace

Result<CsvTable> RunExperiment(const ScenarioSpec& spec, int threads) {
  if (spec.protocol.empty()) {
    return Status::InvalidArgument("experiment '" + spec.name +
                                   "': no protocol configured");
  }
  if (spec.rounds < 1 || spec.trials < 1) {
    return Status::InvalidArgument("experiment '" + spec.name +
                                   "': rounds and trials must be >= 1");
  }
  // Fail fast on unknown names before spinning up workers.
  DYNAGG_ASSIGN_OR_RETURN(const ProtocolRunner runner,
                          ProtocolRegistry().Find(spec.protocol));
  DYNAGG_RETURN_IF_ERROR(
      EnvironmentRegistry().Find(spec.environment).status());

  const bool has_sweep = !spec.sweep_key.empty();
  const int num_sweep =
      has_sweep ? static_cast<int>(spec.sweep_values.size()) : 1;
  const int num_units = num_sweep * spec.trials;

  std::vector<std::optional<Result<TrialResult>>> slots(num_units);
  std::atomic<int> next_unit{0};
  const auto worker = [&] {
    for (;;) {
      const int unit = next_unit.fetch_add(1);
      if (unit >= num_units) return;
      const int sweep_index = unit / spec.trials;
      const int trial = unit % spec.trials;

      ScenarioSpec unit_spec = spec;
      TrialContext ctx;
      ctx.trial = trial;
      ctx.trial_seed = TrialSeed(spec.seed, trial);
      if (has_sweep) {
        ctx.sweep_index = sweep_index;
        ctx.sweep_value = spec.sweep_values[sweep_index];
        Result<ScenarioSpec> swept = ApplySweep(spec, ctx.sweep_value);
        if (!swept.ok()) {
          slots[unit].emplace(swept.status());
          continue;
        }
        unit_spec = std::move(swept).value();
      }
      ctx.spec = &unit_spec;
      slots[unit].emplace(runner(ctx));
    }
  };

  if (threads < 1) threads = 1;
  if (threads > num_units) threads = num_units;
  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }

  // Assemble in deterministic sweep-major unit order.
  std::vector<std::string> columns;
  if (has_sweep) columns.push_back(SweepColumnName(spec.sweep_key));
  if (spec.trials > 1) columns.push_back("trial");
  std::optional<CsvTable> table;
  for (int unit = 0; unit < num_units; ++unit) {
    const Result<TrialResult>& result = *slots[unit];
    if (!result.ok()) {
      return Status::InvalidArgument(
          "experiment '" + spec.name + "' unit " + std::to_string(unit) +
          ": " + result.status().ToString());
    }
    if (!table.has_value()) {
      std::vector<std::string> full = columns;
      full.insert(full.end(), result->columns.begin(),
                  result->columns.end());
      table.emplace(full);
    } else if (static_cast<int>(columns.size() + result->columns.size()) !=
               static_cast<int>(table->columns().size())) {
      return Status::InvalidArgument(
          "experiment '" + spec.name +
          "': trials reported inconsistent column sets");
    }
    const int sweep_index = unit / spec.trials;
    const int trial = unit % spec.trials;
    for (const std::vector<double>& row : result->rows) {
      std::vector<double> full;
      full.reserve(columns.size() + row.size());
      if (has_sweep) full.push_back(spec.sweep_values[sweep_index]);
      if (spec.trials > 1) full.push_back(static_cast<double>(trial));
      full.insert(full.end(), row.begin(), row.end());
      table->AddRow(full);
    }
  }
  DYNAGG_CHECK(table.has_value());
  return std::move(*table);
}

}  // namespace scenario
}  // namespace dynagg
