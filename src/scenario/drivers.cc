// Builtin trial drivers: how simulated time advances within one trial.
//
//   rounds  The paper's synchronous round loop (sim/round_driver.h) with
//           the spec-declared failure plan, multi-metric recording and
//           early convergence stop. All requested metrics are recorded in
//           ONE pass over the rounds:
//             - rms                 per-round RMS-deviation series
//                                   (record.from/every)
//             - rms_tail_mean       scalar mean RMS over rounds >= from
//             - rounds_to_converge  first round with RMS < record.threshold
//             - bandwidth           measured traffic via TrafficMeter
//             - cdf(final_error)    per-host |estimate - truth| CDF
//           plus any extra selectors the swarm's finish hook handles.
//   trace   Event-driven contact-trace playback (sim/trace_runner.h): the
//           environment's ContactTrace, a gossip tick every gossip_period
//           seconds, and a metric sample every sample_period seconds, all
//           as events on one discrete-event simulator. Errors are measured
//           against each host's current *group* aggregate (connected
//           component over recently-seen edges, Section V):
//             - rms                 per-sample series of the group-relative
//                                   RMS deviation (x axis: hour)
//             - avg_group_size      per-sample series of the mean group
//                                   size (Fig 11's right-hand axis)
//
// Both drivers derive every RNG stream from ctx.trial_seed via the
// conventions in scenario/config.h, reproducing the legacy bench binaries
// bit-identically.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "obs/telemetry.h"
#include "common/stats.h"
#include "env/connectivity.h"
#include "scenario/async_driver.h"
#include "scenario/config.h"
#include "scenario/trial.h"
#include "sim/bandwidth.h"
#include "sim/churn.h"
#include "sim/metrics.h"
#include "sim/population.h"
#include "sim/round_driver.h"
#include "sim/trace_runner.h"

namespace dynagg {
namespace scenario {
namespace {

/// Wires the top-level intra_round_threads knob into the swarm's round
/// kernel. The scatter is bit-identical at any thread count, so this only
/// changes wall-clock; protocols without a data-parallel apply phase reject
/// values > 1 rather than silently ignoring the key.
Status ApplyIntraRoundThreads(const ScenarioSpec& spec,
                              const SwarmHandle& swarm) {
  if (spec.intra_round_threads <= 1) return Status::OK();
  if (!swarm.set_threads) {
    return Status::InvalidArgument(
        "protocol '" + spec.protocol +
        "' does not support intra_round_threads");
  }
  swarm.set_threads(spec.intra_round_threads);
  return Status::OK();
}

// ----------------------------------------------------------- rounds ---

/// Swarm adapter slotted into RunRounds: advances trace-backed
/// environments, applies the churn plan's membership events (kills, joins,
/// rebirths — each admitted host reset through the swarm's on_join hook),
/// re-pins a host alive (between the failure application and the gossip
/// exchange, exactly where the legacy benches revive their leader), then
/// delegates to the swarm handle.
struct RoundHooks {
  const SwarmHandle& swarm;
  Environment* env;
  SimTime advance_period;
  HostId pin_alive;
  const ChurnPlan* churn = nullptr;
  int round = 0;

  void RunRound(const Environment& e, Population& pop, Rng& rng) {
    if (advance_period > 0) {
      env->AdvanceTo(static_cast<SimTime>(round + 1) * advance_period);
    }
    if (churn != nullptr && !churn->empty()) {
      const ChurnPlan::RoundDelta delta =
          churn->Apply(round, &pop, swarm.on_join);
      if (delta.joins > 0) obs::Count(obs::Counter::kChurnJoins, delta.joins);
      if (delta.rebirths > 0) {
        obs::Count(obs::Counter::kChurnRebirths, delta.rebirths);
      }
    }
    if (pin_alive != kInvalidHost) pop.Revive(pin_alive);
    swarm.run_round(e, pop, rng);
    ++round;
  }
};

/// Formats a parametrized scalar-record column name: "<base>_<%g of v>"
/// (rms_at_25, rounds_below_1.5).
std::string SuffixedScalarName(const char* base, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return std::string(base) + "_" + buf;
}

/// Drives the swarm for spec.rounds rounds under the spec's environment,
/// failure plan and requested metrics, recording everything in one pass.
/// `def` carries the protocol's statically declared extra selectors (the
/// built swarm's finish hook interprets them).
Status DriveRounds(const TrialContext& ctx, const ProtocolDef& def,
                   EnvHandle& env, const SwarmHandle& swarm, Recorder& rec) {
  // Everything up to the round loop — config parsing, the failure plan,
  // the population — is trial setup (the caller's env/swarm construction
  // accumulated into the same phase already).
  std::optional<obs::ScopedPhase> setup_span(std::in_place,
                                             obs::Phase::kSetup);
  const ScenarioSpec& spec = *ctx.spec;
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams(
      "seeds.",
      {"round_stream", "failure_stream", "workload_stream", "churn_stream"}));
  DYNAGG_ASSIGN_OR_RETURN(
      const MetricFlags metrics,
      ClassifyDriverMetrics(spec, def.extra_metrics));
  DYNAGG_ASSIGN_OR_RETURN(const RecordConfig cfg,
                          ParseRecordConfig(spec, def.extra_record_keys));
  DYNAGG_ASSIGN_OR_RETURN(const FailureConfig fail, ParseFailureConfig(spec));
  const int n = env.env->num_hosts();
  DYNAGG_ASSIGN_OR_RETURN(const uint64_t round_stream,
                          RoundStream(spec, ctx, n));
  DYNAGG_ASSIGN_OR_RETURN(const uint64_t fail_stream,
                          FailureStream(spec, fail));

  DYNAGG_RETURN_IF_ERROR(CheckRecordWindows(spec, metrics, cfg));

  DYNAGG_RETURN_IF_ERROR(ApplyIntraRoundThreads(spec, swarm));
  TrafficMeter meter;
  if (metrics.bandwidth) {
    if (!swarm.set_meter) {
      return Status::InvalidArgument(
          "protocol '" + spec.protocol +
          "' does not support the bandwidth metric");
    }
    swarm.set_meter(&meter);
  }

  Rng fail_rng(DeriveSeed(ctx.trial_seed, fail_stream));
  DYNAGG_ASSIGN_OR_RETURN(
      const FailurePlan plan,
      BuildFailurePlan(fail, n, spec.rounds, swarm.failure_values, fail_rng));
  if (fail.pin_alive != kInvalidHost &&
      (fail.pin_alive < 0 || fail.pin_alive >= n)) {
    return Status::InvalidArgument("failure.pin_alive out of range");
  }

  DYNAGG_ASSIGN_OR_RETURN(const ChurnConfig churn, ParseChurnConfig(spec));
  if (churn.enabled) {
    if (fail.kind != FailureConfig::Kind::kNone) {
      return Status::InvalidArgument(
          "churn.* and failure.kind cannot be combined: churn plans cover "
          "deaths via churn.death_prob (and their rebirths RESET host "
          "state, unlike failure churn's silent revives)");
    }
    if (!swarm.on_join) {
      return Status::InvalidArgument(
          "protocol '" + spec.protocol +
          "' cannot admit hosts (no on_join hook); churn.* keys require a "
          "join-capable protocol");
    }
  }
  DYNAGG_ASSIGN_OR_RETURN(const uint64_t churn_stream,
                          ChurnStream(spec, ctx, n));
  Rng churn_rng(DeriveSeed(ctx.trial_seed, churn_stream));
  DYNAGG_ASSIGN_OR_RETURN(const ChurnPlan churn_plan,
                          BuildChurnPlan(churn, n, spec.rounds, churn_rng));

  const int initial_alive =
      churn.enabled && churn.initial >= 0 ? churn.initial : n;
  Population pop =
      initial_alive < n ? Population(n, initial_alive) : Population(n);
  Rng rng(DeriveSeed(ctx.trial_seed, round_stream));

  RunningStat tail;
  int converged_round = -1;
  double last_rms = 0.0;
  std::vector<double> rms_at_values(metrics.rms_at.size(), 0.0);
  std::vector<double> full_series;      // backs rounds_below
  std::vector<double> recovery_window;  // backs recovery_rounds
  Status round_error = Status::OK();    // raised inside the round callback
  const bool early_stop = metrics.OnlyConvergence();
  // Declare the series up front: a unit whose recording window is empty
  // (record.from >= its rounds under a rounds sweep) must still carry the
  // series so batches stay structurally identical across units.
  if (metrics.rms) rec.MutableSeries("round", "rms");
  const auto on_round_end = [&](int round) {
    if (!metrics.NeedsRoundEvaluation()) return true;
    // Telemetry: per-round metric evaluation is the record phase.
    obs::ScopedPhase record_span(obs::Phase::kRecord);
    const double tr = swarm.truth(pop);
    double rms = RmsDeviationOverAlive(pop, tr, swarm.estimate);
    // record.relative: the series (and everything derived from it) is
    // measured relative to the current truth, the cutoff ablation's
    // rms/truth convention. A zero truth would silently record inf/nan.
    if (cfg.relative) {
      if (tr == 0.0) {
        round_error = Status::InvalidArgument(
            "record.relative: the truth is 0 after round " +
            std::to_string(round) + ", the relative error is undefined");
        return false;
      }
      rms /= tr;
    }
    if (metrics.rms && round >= cfg.from &&
        (round - cfg.from) % cfg.every == 0) {
      rec.AddSeriesPoint("round", "rms", static_cast<double>(round + 1),
                         rms);
    }
    if (metrics.tail_mean && round >= cfg.from) tail.Add(rms);
    last_rms = rms;
    for (size_t i = 0; i < metrics.rms_at.size(); ++i) {
      if (metrics.rms_at[i] == round + 1) rms_at_values[i] = rms;
    }
    if (!metrics.rounds_below.empty()) full_series.push_back(rms);
    if (metrics.recovery && round >= cfg.recovery_from) {
      recovery_window.push_back(rms);
    }
    if (metrics.convergence && converged_round < 0) {
      const double limit =
          cfg.threshold_relative ? cfg.threshold * tr : cfg.threshold;
      if (rms < limit) {
        converged_round = round + 1;
        // Later rounds cannot change the result; stop paying for them
        // unless another metric still needs them.
        if (early_stop) return false;
      }
    }
    return true;
  };

  RoundHooks hooks{swarm, env.env.get(), env.advance_period, fail.pin_alive,
                   &churn_plan};
  setup_span.reset();
  const int executed = RunRoundsUntil(hooks, *env.env, pop, plan,
                                      spec.rounds, rng, on_round_end);
  DYNAGG_RETURN_IF_ERROR(round_error);
  // All trial streams are fully drawn by now (the failure and churn plans
  // are prebuilt; rounds draw only from rng).
  obs::Count(obs::Counter::kRngDraws,
             static_cast<int64_t>(rng.draw_count() + fail_rng.draw_count() +
                                  churn_rng.draw_count()));
  obs::Count(obs::Counter::kEarlyStopRounds, spec.rounds - executed);
  // Everything after the loop is metric finalization: record phase.
  obs::ScopedPhase record_span(obs::Phase::kRecord);

  if (metrics.tail_mean) rec.AddScalar("rms_tail_mean", tail.mean());
  if (metrics.convergence) {
    if (converged_round < 0 && !spec.aggregates.empty()) {
      // Averaging the -1 "never converged" sentinel into mean/stddev would
      // produce a plausible-looking but meaningless statistic.
      return Status::InvalidArgument(
          "trial " + std::to_string(ctx.trial) +
          " did not converge within " + std::to_string(spec.rounds) +
          " rounds; rounds_to_converge = -1 cannot be aggregated (raise "
          "rounds or drop aggregate)");
    }
    rec.AddScalar("rounds_to_converge",
                  static_cast<double>(converged_round));
  }
  if (metrics.final_rms) rec.AddScalar("final_rms", last_rms);
  for (size_t i = 0; i < metrics.rms_at.size(); ++i) {
    rec.AddScalar(SuffixedScalarName("rms_at", metrics.rms_at[i]),
                  rms_at_values[i]);
  }
  // The derived convergence records: FirstSustainedBelow over the
  // per-round series — the last crossing below the threshold that is never
  // crossed back, -1 = never. rounds_below watches an absolute threshold
  // over the whole run; recovery_rounds watches the post-failure window
  // (rounds >= record.recovery_from) against a threshold derived from the
  // window's own converged floor.
  for (const double threshold : metrics.rounds_below) {
    const int at = FirstSustainedBelow(full_series, threshold);
    if (at < 0 && !spec.aggregates.empty()) {
      return Status::InvalidArgument(
          "trial " + std::to_string(ctx.trial) +
          " never stayed below " + std::to_string(threshold) +
          "; rounds_below = -1 cannot be aggregated (raise rounds or drop "
          "aggregate)");
    }
    rec.AddScalar(SuffixedScalarName("rounds_below", threshold),
                  static_cast<double>(at));
  }
  if (metrics.recovery) {
    const double floor = recovery_window.back();
    const double threshold =
        std::max(cfg.recovery_min,
                 cfg.recovery_mult * floor + cfg.recovery_add);
    const int at = FirstSustainedBelow(recovery_window, threshold);
    if (at < 0 && !spec.aggregates.empty()) {
      return Status::InvalidArgument(
          "trial " + std::to_string(ctx.trial) +
          " never recovered; recovery_rounds = -1 cannot be aggregated "
          "(raise rounds or drop aggregate)");
    }
    rec.AddScalar("recovery_rounds", static_cast<double>(at));
  }
  for (const int host : metrics.rel_error_hosts) {
    if (host >= n) {
      return Status::InvalidArgument(
          "final_rel_error(" + std::to_string(host) +
          "): host out of range (hosts = " + std::to_string(n) + ")");
    }
    const double tr = swarm.truth(pop);
    if (tr == 0.0) {
      return Status::InvalidArgument(
          "final_rel_error(" + std::to_string(host) +
          "): the truth is 0, the relative error is undefined");
    }
    rec.AddScalar(SuffixedScalarName("final_rel_error",
                                     static_cast<double>(host)),
                  std::abs(swarm.estimate(host) - tr) / tr);
  }
  if (metrics.gossip_bytes) {
    if (swarm.gossip_bytes < 0) {
      return Status::InvalidArgument(
          "protocol '" + spec.protocol +
          "' does not model the gossip_bytes metric");
    }
    rec.AddScalar("gossip_bytes", swarm.gossip_bytes);
  }
  if (metrics.bandwidth) {
    const double denom = static_cast<double>(n) * executed;
    rec.SetBandwidth(meter.total().messages / denom,
                     meter.total().bytes / denom, swarm.state_bytes);
  }
  // The final-error sample — per-host |estimate - truth| after the last
  // round — feeds both the bucketed CDF and the exact quantile records;
  // compute it once when either is requested.
  std::vector<double> final_errors;
  if (metrics.final_error_cdf || !metrics.final_error_quantiles.empty()) {
    const double tr = swarm.truth(pop);
    final_errors.reserve(pop.alive_ids().size());
    for (const HostId id : pop.alive_ids()) {
      final_errors.push_back(std::abs(swarm.estimate(id) - tr));
    }
  }
  if (!metrics.final_error_quantiles.empty()) {
    // quantile(final_error, q): exact (sorted sample, linear
    // interpolation) rather than bucketed.
    std::vector<double> sorted = final_errors;
    std::sort(sorted.begin(), sorted.end());
    for (const double q : metrics.final_error_quantiles) {
      rec.AddQuantile("final_error", q, QuantileFromSorted(sorted, q));
    }
  }
  if (metrics.final_error_cdf) {
    Histogram hist(cfg.cdf_lo, cfg.cdf_hi, cfg.cdf_buckets);
    for (const double err : final_errors) hist.Add(err);
    HistogramRecord* record = rec.MutableHistogram(
        "final_error_cdf", /*key_name=*/"", "final_error", "cdf",
        /*cumulative=*/true);
    for (int b = 0; b < hist.num_buckets(); ++b) {
      // Fold the out-of-range tails into the edge buckets so the CDF
      // reaches 1 over the declared range.
      int64_t count = hist.bucket_count(b);
      if (b == 0) count += hist.underflow();
      if (b == hist.num_buckets() - 1) count += hist.overflow();
      record->buckets.push_back({0.0, hist.bucket_upper(b), count});
    }
  }
  if (swarm.finish) return swarm.finish(ctx, rec);
  return Status::OK();
}

Status RunRoundsDriver(const TrialContext& ctx, const ProtocolDef& def,
                       Recorder& rec) {
  // Whole-trial protocols own their loop; the rounds driver is their host.
  if (def.run_custom) {
    if (ctx.spec->intra_round_threads > 1) {
      return Status::InvalidArgument(
          "protocol '" + ctx.spec->protocol +
          "' owns its whole trial loop and does not support "
          "intra_round_threads");
    }
    return def.run_custom(ctx, rec);
  }
  std::optional<obs::ScopedPhase> setup_span(std::in_place,
                                             obs::Phase::kSetup);
  DYNAGG_ASSIGN_OR_RETURN(EnvHandle env, MakeEnvironment(ctx));
  DYNAGG_ASSIGN_OR_RETURN(SwarmHandle swarm, def.make_swarm(ctx, env));
  setup_span.reset();
  return DriveRounds(ctx, def, env, swarm, rec);
}

// ------------------------------------------------------------ trace ---

Status RunTraceDriver(const TrialContext& ctx, const ProtocolDef& def,
                      Recorder& rec) {
  // Setup phase: trace/environment/swarm construction and runner wiring.
  std::optional<obs::ScopedPhase> setup_span(std::in_place,
                                             obs::Phase::kSetup);
  const ScenarioSpec& spec = *ctx.spec;
  if (!def.make_swarm) {
    return Status::InvalidArgument(
        "protocol '" + spec.protocol +
        "' owns its whole trial loop and cannot run under driver = trace");
  }
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams("seeds.", {"round_stream"}));
  // Failure and churn plans are round-indexed; the trace timeline has no
  // rounds.
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams("failure.", {}));
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams("churn.", {}));
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams("record.", {}));
  DYNAGG_RETURN_IF_ERROR(CheckMetricsSupported(
      spec, {"rms", "avg_group_size", "bandwidth", "gossip_bytes"}));
  const bool want_rms = MetricRequested(spec, "rms");
  const bool want_group_size = MetricRequested(spec, "avg_group_size");
  const bool want_bandwidth = MetricRequested(spec, "bandwidth");
  const bool want_gossip_bytes = MetricRequested(spec, "gossip_bytes");

  DYNAGG_ASSIGN_OR_RETURN(EnvHandle env, MakeEnvironment(ctx));
  if (env.trace == nullptr) {
    return Status::InvalidArgument(
        "environment '" + spec.environment +
        "' does not provide a contact trace (driver = trace replays one; "
        "use haggle or another trace environment)");
  }
  DYNAGG_ASSIGN_OR_RETURN(SwarmHandle swarm, def.make_swarm(ctx, env));
  if (!swarm.group_truths) {
    return Status::InvalidArgument(
        "protocol '" + spec.protocol +
        "' does not support driver = trace (no group-truth hook)");
  }
  DYNAGG_RETURN_IF_ERROR(ApplyIntraRoundThreads(spec, swarm));
  if (want_gossip_bytes && swarm.gossip_bytes < 0) {
    return Status::InvalidArgument(
        "protocol '" + spec.protocol +
        "' does not model the gossip_bytes metric");
  }
  TrafficMeter meter;
  if (want_bandwidth) {
    if (!swarm.set_meter) {
      return Status::InvalidArgument(
          "protocol '" + spec.protocol +
          "' does not support the bandwidth metric");
    }
    swarm.set_meter(&meter);
  }
  const std::function<double(HostId)>& estimate =
      swarm.group_estimate ? swarm.group_estimate : swarm.estimate;

  // The paper's cadence: a gossip tick every 30 seconds, hourly samples.
  const SimTime gossip_period =
      FromSeconds(spec.gossip_period > 0 ? spec.gossip_period : 30.0);
  const SimTime sample_period =
      FromSeconds(spec.sample_period > 0 ? spec.sample_period : 3600.0);
  DYNAGG_ASSIGN_OR_RETURN(const uint64_t round_stream,
                          RoundStream(spec, ctx, env.env->num_hosts()));

  TraceRunner runner(*env.trace, gossip_period, env.group_window);
  Rng rng(DeriveSeed(ctx.trial_seed, round_stream));
  int64_t ticks = 0;  // executed gossip ticks: the bandwidth denominator
  runner.OnRound([&](SimTime) {
    swarm.run_round(runner.env(), runner.pop(), rng);
    ++ticks;
  });
  // Declare both series before the run: a trace shorter than one sample
  // period must still emit the (empty) series for structural consistency.
  if (want_rms) rec.MutableSeries("hour", "rms");
  if (want_group_size) rec.MutableSeries("hour", "avg_group_size");
  std::vector<int> labels;
  runner.EverySample(sample_period, [&](SimTime t) {
    const double hour = ToHours(t);
    if (want_rms) {
      labels = runner.env().CurrentGroups();
      const std::vector<int> sizes = ComponentSizes(labels);
      const std::vector<double> truths = swarm.group_truths(labels, sizes);
      DeviationStat dev;
      for (const HostId id : runner.pop().alive_ids()) {
        dev.Add(estimate(id), truths[labels[id]]);
      }
      rec.AddSeriesPoint("hour", "rms", hour, dev.rms());
    }
    if (want_group_size) {
      rec.AddSeriesPoint("hour", "avg_group_size", hour,
                         runner.env().AverageGroupSize());
    }
  });
  setup_span.reset();
  runner.Run();
  obs::Count(obs::Counter::kRngDraws,
             static_cast<int64_t>(rng.draw_count()));
  // Traffic normalizes per host per executed gossip tick — the trace's
  // event-driven analogue of the rounds driver's per-round normalization.
  const double denom = static_cast<double>(env.env->num_hosts()) *
                       static_cast<double>(std::max<int64_t>(1, ticks));
  if (want_gossip_bytes) rec.AddScalar("gossip_bytes", swarm.gossip_bytes);
  if (want_bandwidth) {
    rec.SetBandwidth(meter.total().messages / denom,
                     meter.total().bytes / denom, swarm.state_bytes);
  }
  return Status::OK();
}

}  // namespace

namespace internal {

void RegisterBuiltinDrivers(Registry<DriverDef>& registry) {
  DYNAGG_CHECK(
      registry.Register("rounds", {RunRoundsDriver, /*event_driven=*/false})
          .ok());
  DYNAGG_CHECK(
      registry.Register("trace", {RunTraceDriver, /*event_driven=*/true})
          .ok());
  RegisterAsyncDriver(registry);
}

}  // namespace internal
}  // namespace scenario
}  // namespace dynagg
