#include "scenario/async_driver.h"

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "common/stats.h"
#include "net/inflight_queue.h"
#include "net/message.h"
#include "obs/telemetry.h"
#include "scenario/config.h"
#include "sim/metrics.h"
#include "sim/population.h"
#include "sim/simulator.h"

namespace dynagg {
namespace scenario {
namespace {

// Same-instant ordering: messages in flight land before the gossip tick
// they coincide with, and the metric sampler always observes the
// post-tick, post-delivery state. Deliveries used to be priority-0
// Simulator events; they now live in a batched InFlightQueue (one POD heap
// entry per message instead of a std::function event) that the tick and
// sampler callbacks drain up to their own instant — ticks and samplers are
// the only state observers, so the observable timeline is identical.
constexpr int kGossipTickPriority = 1;
constexpr int kSamplerPriority = 2;

Status RunAsyncDriver(const TrialContext& ctx, const ProtocolDef& def,
                      Recorder& rec) {
  // Setup phase: validation, environment/swarm construction, scheduling.
  std::optional<obs::ScopedPhase> setup_span(std::in_place,
                                             obs::Phase::kSetup);
  const ScenarioSpec& spec = *ctx.spec;
  DYNAGG_RETURN_IF_ERROR(ValidateAsyncSpec(spec, def));
  DYNAGG_ASSIGN_OR_RETURN(const net::NetworkParams net_params,
                          ParseNetworkParams(spec));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t record_from,
                          spec.ParamInt("record.from", 0));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t record_every,
                          spec.ParamInt("record.every", 1));

  const bool want_rms = MetricRequested(spec, "rms");
  const bool want_tail = MetricRequested(spec, "rms_tail_mean");
  const bool want_final = MetricRequested(spec, "final_rms");
  const bool want_bandwidth = MetricRequested(spec, "bandwidth");
  const bool want_gossip_bytes = MetricRequested(spec, "gossip_bytes");
  const bool want_delivery = MetricRequested(spec, "delivery_rate");

  DYNAGG_ASSIGN_OR_RETURN(EnvHandle env, MakeEnvironment(ctx));
  DYNAGG_ASSIGN_OR_RETURN(SwarmHandle swarm, def.make_swarm(ctx, env));
  if (!swarm.async_tick || !swarm.async_deliver) {
    return Status::InvalidArgument(
        "protocol '" + spec.protocol +
        "' is registered async-capable but built no message-level hooks");
  }
  if ((want_bandwidth || want_gossip_bytes) && swarm.message_bytes <= 0) {
    return Status::InvalidArgument(
        "protocol '" + spec.protocol +
        "' does not declare its per-message payload size");
  }
  const int n = env.env->num_hosts();
  DYNAGG_ASSIGN_OR_RETURN(const uint64_t round_stream,
                          RoundStream(spec, ctx, n));
  DYNAGG_ASSIGN_OR_RETURN(const uint64_t message_stream,
                          MessageStream(spec, ctx, n));

  const SimTime gossip_period =
      FromSeconds(spec.gossip_period > 0 ? spec.gossip_period : 30.0);
  const int ticks = spec.rounds;

  Simulator sim;
  Population pop(n);
  Rng rng(DeriveSeed(ctx.trial_seed, round_stream));
  net::NetworkModel model(net_params,
                          DeriveSeed(ctx.trial_seed, message_stream));
  Environment* raw_env = env.env.get();
  const SimTime advance_period = env.advance_period;

  int64_t sent = 0;
  int64_t delivered = 0;
  uint64_t message_index = 0;
  int tick = 0;
  std::vector<net::Message> wave;  // scratch: one tick's planned sends
  net::InFlightQueue inflight;     // undropped messages awaiting delivery
  inflight.Reserve(static_cast<size_t>(n));
  const auto drain_due = [&](SimTime t) {
    while (inflight.HasDueBy(t)) {
      swarm.async_deliver(inflight.Top());
      ++delivered;
      inflight.Pop();
    }
  };

  // Declare the series up front so batches stay structurally identical
  // even when the recording window is empty.
  if (want_rms) rec.MutableSeries("round", "rms");
  RunningStat tail;

  const auto rms_now = [&]() {
    return RmsDeviationOverAlive(pop, swarm.truth(pop), swarm.estimate);
  };

  // Gossip tick k fires at (k+1) * gossip_period: plan the send wave, then
  // run every message through the network model. Dropped messages are
  // counted as sent — they consumed real bandwidth — and simply never get
  // a delivery event.
  sim.SchedulePeriodic(
      gossip_period, gossip_period,
      [&]() {
        // Messages due by this instant were scheduled by earlier ticks and
        // would have run at delivery priority before this tick fired.
        drain_due(sim.Now());
        if (advance_period > 0) {
          raw_env->AdvanceTo(static_cast<SimTime>(tick + 1) * advance_period);
        }
        wave.clear();
        swarm.async_tick(*raw_env, pop, rng, &wave);
        sent += static_cast<int64_t>(wave.size());
        for (const net::Message& m : wave) {
          const net::NetworkModel::Delivery d = model.Decide(message_index++);
          if (d.dropped) continue;
          inflight.Push(sim.Now() + d.delay, m);
        }
        return ++tick < ticks;
      },
      kGossipTickPriority);

  // The metric sampler shares the tick cadence at a later priority: sample
  // s observes the state right after tick s and every delivery due by that
  // instant.
  int sample = 0;
  sim.SchedulePeriodic(
      gossip_period, gossip_period,
      [&]() {
        // Zero-delay messages sent by this instant's tick still land before
        // the sampler observes (deliveries outrank samplers at a tie).
        drain_due(sim.Now());
        if (want_rms || want_tail) {
          obs::ScopedPhase record_span(obs::Phase::kRecord);
          const double rms = rms_now();
          if (want_rms && sample >= record_from &&
              (sample - record_from) % record_every == 0) {
            rec.AddSeriesPoint("round", "rms",
                               static_cast<double>(sample + 1), rms);
          }
          if (want_tail && sample >= record_from) tail.Add(rms);
        }
        return ++sample < ticks;
      },
      kSamplerPriority);

  setup_span.reset();
  sim.Run();
  // Drain the messages still in flight after the last tick in (due, send)
  // order — final_rms is a settled-network measurement.
  while (!inflight.empty()) {
    swarm.async_deliver(inflight.Top());
    ++delivered;
    inflight.Pop();
  }
  obs::Count(obs::Counter::kRngDraws,
             static_cast<int64_t>(rng.draw_count()) + model.rng_draws());
  obs::ScopedPhase record_span(obs::Phase::kRecord);

  if (want_tail) rec.AddScalar("rms_tail_mean", tail.mean());
  if (want_final) rec.AddScalar("final_rms", rms_now());
  if (want_delivery) {
    rec.AddScalar("delivery_rate",
                  sent > 0 ? static_cast<double>(delivered) /
                                 static_cast<double>(sent)
                           : 1.0);
  }
  const double denom = static_cast<double>(n) * ticks;
  if (want_gossip_bytes) {
    rec.AddScalar("gossip_bytes",
                  static_cast<double>(sent) * swarm.message_bytes / denom);
  }
  if (want_bandwidth) {
    rec.SetBandwidth(static_cast<double>(sent) / denom,
                     static_cast<double>(sent) * swarm.message_bytes / denom,
                     swarm.state_bytes);
  }
  return Status::OK();
}

}  // namespace

Result<net::NetworkParams> ParseNetworkParams(const ScenarioSpec& spec) {
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams(
      "net.", {"latency", "latency_s", "latency_hi_s", "loss", "jitter"}));
  net::NetworkParams p;
  DYNAGG_ASSIGN_OR_RETURN(const std::string kind,
                          spec.ParamString("net.latency", "fixed"));
  if (kind == "fixed") {
    p.latency = net::LatencyKind::kFixed;
  } else if (kind == "uniform") {
    p.latency = net::LatencyKind::kUniform;
  } else if (kind == "exponential") {
    p.latency = net::LatencyKind::kExponential;
  } else {
    return Status::InvalidArgument(
        "net.latency must be fixed, uniform or exponential, got '" + kind +
        "'");
  }
  DYNAGG_ASSIGN_OR_RETURN(p.latency_s,
                          spec.ParamDouble("net.latency_s", 0.0));
  DYNAGG_ASSIGN_OR_RETURN(p.latency_hi_s,
                          spec.ParamDouble("net.latency_hi_s", 0.0));
  DYNAGG_ASSIGN_OR_RETURN(p.loss, spec.ParamDouble("net.loss", 0.0));
  DYNAGG_ASSIGN_OR_RETURN(p.jitter_s, spec.ParamDouble("net.jitter", 0.0));
  // Negated comparisons so NaN (which strtod accepts) fails the checks.
  if (!(p.latency_s >= 0.0)) {
    return Status::InvalidArgument("net.latency_s must be >= 0");
  }
  if (p.latency == net::LatencyKind::kUniform) {
    if (!spec.HasParam("net.latency_hi_s")) {
      return Status::InvalidArgument(
          "net.latency = uniform needs net.latency_hi_s (the high edge of "
          "the latency range)");
    }
    if (!(p.latency_hi_s >= p.latency_s)) {
      return Status::InvalidArgument(
          "net.latency_hi_s must be >= net.latency_s");
    }
  } else if (spec.HasParam("net.latency_hi_s")) {
    return Status::InvalidArgument(
        "net.latency_hi_s only applies to net.latency = uniform");
  }
  if (!(p.loss >= 0.0 && p.loss <= 1.0)) {
    return Status::InvalidArgument("net.loss must be in [0, 1]");
  }
  if (!(p.jitter_s >= 0.0)) {
    return Status::InvalidArgument("net.jitter must be >= 0");
  }
  return p;
}

Status ValidateAsyncSpec(const ScenarioSpec& spec, const ProtocolDef& def) {
  const auto invalid = [&](const std::string& what) {
    return Status::InvalidArgument("driver = async: " + what);
  };
  if (!def.make_swarm) {
    return invalid("protocol '" + spec.protocol +
                   "' owns its whole trial loop and cannot run "
                   "message-level");
  }
  if (!def.async_capable) {
    return invalid("protocol '" + spec.protocol +
                   "' does not support message-level gossip (async-capable "
                   "protocols declare send/deliver hooks — see `dynagg_run "
                   "--list`)");
  }
  if (spec.intra_round_threads > 1) {
    return invalid(
        "message-level delivery is inherently sequential; "
        "intra_round_threads does not apply");
  }
  if (spec.sample_period > 0) {
    return invalid(
        "sample_period does not apply (metrics are sampled once per gossip "
        "tick; thin the series with record.from / record.every)");
  }
  // Failure and churn plans are round-indexed membership scripts built
  // for the synchronous drivers. Under message-level time there is no
  // round boundary to apply them at: a host's departure/arrival would
  // have to be an event indexed into the in-flight delivery timeline
  // (invalidating queued messages to and from it), which is not
  // implemented yet. Point at the limitation rather than a bare reject
  // so the fix is actionable from the error alone.
  for (const auto& [key, value] : spec.params) {
    if (key.rfind("failure.", 0) == 0 || key.rfind("churn.", 0) == 0) {
      return invalid(
          "'" + key +
          "' does not apply: failure/churn plans are round-indexed and "
          "the async driver has no rounds — membership dynamics under "
          "message-level time need event-indexed plans, which are not "
          "implemented yet (run the plan under driver = rounds, or see "
          "docs/spec_reference.md \"Driver compatibility\")");
    }
  }
  DYNAGG_RETURN_IF_ERROR(
      spec.CheckParams("seeds.", {"round_stream", "message_stream"}));
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams("record.", {"from", "every"}));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t from, spec.ParamInt("record.from", 0));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t every,
                          spec.ParamInt("record.every", 1));
  if (from < 0 || every < 1) {
    return invalid("record.from must be >= 0 and record.every >= 1");
  }
  if (MetricRequested(spec, "rms_tail_mean") && from >= spec.rounds) {
    return invalid("record.from = " + std::to_string(from) +
                   " leaves no ticks to average (rounds = " +
                   std::to_string(spec.rounds) + ")");
  }
  DYNAGG_RETURN_IF_ERROR(ParseNetworkParams(spec).status());
  return CheckMetricsSupported(
      spec, {"rms", "rms_tail_mean", "final_rms", "bandwidth", "gossip_bytes",
             "delivery_rate"});
}

namespace internal {

void RegisterAsyncDriver(Registry<DriverDef>& registry) {
  DriverDef def;
  def.run = RunAsyncDriver;
  def.event_driven = false;
  def.message_level = true;
  DYNAGG_CHECK(registry.Register("async", std::move(def)).ok());
}

}  // namespace internal
}  // namespace scenario
}  // namespace dynagg
