#include "scenario/spec.h"

#include <cerrno>
#include <cstdlib>
#include <utility>

namespace dynagg {
namespace scenario {

namespace {

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && (s[b] == ' ' || s[b] == '\t')) ++b;
  size_t e = s.size();
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' ||
                   s[e - 1] == '\r')) --e;
  return s.substr(b, e - b);
}

std::string Quoted(std::string_view s) {
  return "'" + std::string(s) + "'";
}

}  // namespace

Result<int64_t> ParseInt64(std::string_view text) {
  const std::string s(Trim(text));
  if (s.empty()) return Status::InvalidArgument("empty integer");
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 0);
  if (errno == ERANGE) {
    return Status::InvalidArgument("integer out of range: " + Quoted(s));
  }
  if (end != s.c_str() + s.size()) {
    return Status::InvalidArgument("not an integer: " + Quoted(s));
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view text) {
  const std::string s(Trim(text));
  if (s.empty()) return Status::InvalidArgument("empty number");
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) {
    return Status::InvalidArgument("not a number: " + Quoted(s));
  }
  return v;
}

Result<bool> ParseBool(std::string_view text) {
  const std::string s(Trim(text));
  if (s == "true" || s == "1" || s == "yes" || s == "on") return true;
  if (s == "false" || s == "0" || s == "no" || s == "off") return false;
  return Status::InvalidArgument("not a boolean: " + Quoted(s));
}

Result<std::string> ScenarioSpec::ParamString(const std::string& key,
                                              std::string def) const {
  const auto it = params.find(key);
  return it == params.end() ? std::move(def) : it->second;
}

Result<int64_t> ScenarioSpec::ParamInt(const std::string& key,
                                       int64_t def) const {
  const auto it = params.find(key);
  if (it == params.end()) return def;
  Result<int64_t> v = ParseInt64(it->second);
  if (!v.ok()) {
    return Status::InvalidArgument(key + ": " + v.status().message());
  }
  return v;
}

Result<double> ScenarioSpec::ParamDouble(const std::string& key,
                                         double def) const {
  const auto it = params.find(key);
  if (it == params.end()) return def;
  Result<double> v = ParseDouble(it->second);
  if (!v.ok()) {
    return Status::InvalidArgument(key + ": " + v.status().message());
  }
  return v;
}

Result<bool> ScenarioSpec::ParamBool(const std::string& key, bool def) const {
  const auto it = params.find(key);
  if (it == params.end()) return def;
  Result<bool> v = ParseBool(it->second);
  if (!v.ok()) {
    return Status::InvalidArgument(key + ": " + v.status().message());
  }
  return v;
}

Status ValidateMetricList(const std::vector<MetricSpec>& metrics) {
  if (metrics.empty()) {
    return Status::InvalidArgument("record list is empty");
  }
  for (size_t i = 0; i < metrics.size(); ++i) {
    if (metrics[i].name.empty()) {
      return Status::InvalidArgument("metric " +
                                     Quoted(metrics[i].ToString()) +
                                     " has an empty name");
    }
    for (size_t j = i + 1; j < metrics.size(); ++j) {
      if (metrics[i] == metrics[j]) {
        return Status::InvalidArgument(
            "metric " + Quoted(metrics[i].ToString()) + " is listed twice");
      }
    }
  }
  return Status::OK();
}

Status ValidateAggregateList(const std::vector<std::string>& aggregates) {
  for (const std::string& agg : aggregates) {
    if (agg != "mean" && agg != "stddev" && agg != "min" && agg != "max") {
      return Status::InvalidArgument(
          "aggregate " + Quoted(agg) +
          " is not supported (mean, stddev, min, max)");
    }
  }
  for (size_t i = 0; i < aggregates.size(); ++i) {
    for (size_t j = i + 1; j < aggregates.size(); ++j) {
      if (aggregates[i] == aggregates[j]) {
        return Status::InvalidArgument("aggregate " + Quoted(aggregates[i]) +
                                       " is listed twice");
      }
    }
  }
  return Status::OK();
}

Status ScenarioSpec::CheckParams(
    const std::string& prefix,
    const std::vector<std::string>& allowed) const {
  for (const auto& [key, value] : params) {
    if (key.rfind(prefix, 0) != 0) continue;
    const std::string suffix = key.substr(prefix.size());
    bool ok = false;
    for (const auto& a : allowed) {
      if (suffix == a) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      std::string msg = "unknown parameter " + Quoted(key) + " (allowed: ";
      for (size_t i = 0; i < allowed.size(); ++i) {
        if (i) msg += ", ";
        msg += prefix + allowed[i];
      }
      msg += ")";
      return Status::InvalidArgument(msg);
    }
  }
  return Status::OK();
}

namespace {

const char* const kParamPrefixes[] = {"protocol.", "env.", "failure.",
                                      "record.", "seeds.", "workload.",
                                      "net.", "churn."};

bool IsNamespacedKey(std::string_view key) {
  for (const char* prefix : kParamPrefixes) {
    if (key.rfind(prefix, 0) == 0 && key.size() > std::string(prefix).size())
      return true;
  }
  return false;
}

Status AtLine(int line, const Status& st) {
  return Status(st.ok() ? st
                        : Status::InvalidArgument(
                              "line " + std::to_string(line) + ": " +
                              st.message()));
}

/// Splits `text` on commas and trims each item; empty items are errors.
Result<std::vector<std::string>> SplitList(std::string_view text,
                                           const std::string& what) {
  std::vector<std::string> items;
  while (true) {
    const size_t comma = text.find(',');
    const std::string item(
        Trim(comma == std::string_view::npos ? text : text.substr(0, comma)));
    if (item.empty()) {
      return Status::InvalidArgument(what + " list has an empty entry");
    }
    items.push_back(item);
    if (comma == std::string_view::npos) break;
    text.remove_prefix(comma + 1);
  }
  return items;
}

/// Parses "key: v1, v2, ..." for `sweep` / `sweep2`.
Status ParseSweepSpec(const std::string& value, const std::string& what,
                      std::string* key_out, std::vector<double>* values_out) {
  const size_t colon = value.find(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument(what + " must be 'key: v1, v2, ...'");
  }
  const std::string sweep_key(Trim(value.substr(0, colon)));
  if (sweep_key != "hosts" && sweep_key != "rounds" &&
      sweep_key != "intra_round_threads" && !IsNamespacedKey(sweep_key)) {
    return Status::InvalidArgument(
        what + " key " + Quoted(sweep_key) +
        " is not sweepable (use hosts, rounds, intra_round_threads, or a "
        "namespaced parameter)");
  }
  DYNAGG_ASSIGN_OR_RETURN(
      const std::vector<std::string> items,
      SplitList(std::string_view(value).substr(colon + 1), what));
  std::vector<double> values;
  for (const std::string& item : items) {
    Result<double> v = ParseDouble(item);
    if (!v.ok()) return v.status();
    values.push_back(*v);
  }
  *key_out = sweep_key;
  *values_out = std::move(values);
  return Status::OK();
}

/// Splits a metric list on top-level commas only: commas inside (...) are
/// part of a selector's argument, so `quantile(final_error, 0.9)` stays one
/// item.
Result<std::vector<std::string>> SplitMetricItems(std::string_view text) {
  std::vector<std::string> items;
  size_t start = 0;
  int depth = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i < text.size() && text[i] == '(') ++depth;
    if (i < text.size() && text[i] == ')') {
      if (--depth < 0) {
        return Status::InvalidArgument("record list has an unmatched ')'");
      }
    }
    if (i == text.size() || (text[i] == ',' && depth == 0)) {
      const std::string item(Trim(text.substr(start, i - start)));
      if (item.empty()) {
        return Status::InvalidArgument("record list has an empty entry");
      }
      items.push_back(item);
      start = i + 1;
    }
  }
  if (depth != 0) {
    return Status::InvalidArgument("record list has an unmatched '('");
  }
  return items;
}

/// Parses the `record =` metric list: comma-separated selectors, each
/// `name` or `name(arg)`; multi-part arguments are normalized to the
/// canonical comma-separated spelling without spaces
/// (`quantile(final_error, 0.9)` -> arg "final_error,0.9") so duplicate
/// detection and selector matching are whitespace-insensitive.
Result<std::vector<MetricSpec>> ParseMetricList(const std::string& value) {
  DYNAGG_ASSIGN_OR_RETURN(const std::vector<std::string> items,
                          SplitMetricItems(value));
  std::vector<MetricSpec> metrics;
  for (const std::string& item : items) {
    MetricSpec m;
    const size_t open = item.find('(');
    if (open == std::string::npos) {
      m.name = item;
    } else {
      if (item.back() != ')') {
        return Status::InvalidArgument("metric " + Quoted(item) +
                                       " has an unterminated argument");
      }
      m.name = std::string(Trim(std::string_view(item).substr(0, open)));
      const std::string_view raw =
          std::string_view(item).substr(open + 1, item.size() - open - 2);
      // Normalize: trim each comma-separated argument part.
      size_t part_start = 0;
      for (size_t i = 0; i <= raw.size(); ++i) {
        if (i == raw.size() || raw[i] == ',') {
          const std::string part(Trim(raw.substr(part_start, i - part_start)));
          if (!m.arg.empty()) m.arg += ",";
          m.arg += part;
          part_start = i + 1;
        }
      }
      if (m.arg.empty()) {
        return Status::InvalidArgument("metric " + Quoted(item) +
                                       " has an empty argument");
      }
    }
    metrics.push_back(std::move(m));
  }
  DYNAGG_RETURN_IF_ERROR(ValidateMetricList(metrics));
  return metrics;
}

/// Parses the `aggregate =` statistic list.
Result<std::vector<std::string>> ParseAggregateList(const std::string& value) {
  DYNAGG_ASSIGN_OR_RETURN(const std::vector<std::string> items,
                          SplitList(value, "aggregate"));
  DYNAGG_RETURN_IF_ERROR(ValidateAggregateList(items));
  return items;
}

/// Applies one key = value assignment to `spec`.
Status ApplyKey(ScenarioSpec* spec, const std::string& key,
                const std::string& value, int line) {
  if (IsNamespacedKey(key)) {
    spec->params[key] = value;
    return Status::OK();
  }
  if (key == "name") {
    spec->name = value;
  } else if (key == "protocol") {
    spec->protocol = value;
  } else if (key == "environment") {
    spec->environment = value;
  } else if (key == "driver") {
    spec->driver = value;
  } else if (key == "gossip_period" || key == "sample_period") {
    Result<double> v = ParseDouble(value);
    if (!v.ok()) return AtLine(line, v.status());
    if (*v <= 0) {
      return AtLine(line, Status::InvalidArgument(
                              key + " must be > 0 (seconds)"));
    }
    (key == "gossip_period" ? spec->gossip_period : spec->sample_period) = *v;
  } else if (key == "intra_round_threads") {
    Result<int64_t> v = ParseInt64(value);
    if (!v.ok()) return AtLine(line, v.status());
    if (*v < 1) {
      return AtLine(line, Status::InvalidArgument(
                              "intra_round_threads must be >= 1"));
    }
    spec->intra_round_threads = static_cast<int>(*v);
  } else if (key == "telemetry") {
    if (value != "off" && value != "summary" && value != "profile") {
      return AtLine(line, Status::InvalidArgument(
                              "telemetry must be off, summary or profile, "
                              "got " + Quoted(value)));
    }
    spec->telemetry = value;
  } else if (key == "output") {
    spec->output = value;
  } else if (key == "format") {
    if (value != "csv" && value != "jsonl") {
      return AtLine(line, Status::InvalidArgument(
                              "format must be csv or jsonl, got " +
                              Quoted(value)));
    }
    spec->format = value;
  } else if (key == "hosts" || key == "rounds" || key == "trials") {
    Result<int64_t> v = ParseInt64(value);
    if (!v.ok()) return AtLine(line, v.status());
    if (*v < 0 || (key != "hosts" && *v < 1)) {
      return AtLine(line,
                    Status::InvalidArgument(key + " must be positive"));
    }
    if (key == "hosts") spec->hosts = static_cast<int>(*v);
    if (key == "rounds") {
      spec->rounds = static_cast<int>(*v);
      spec->rounds_set = true;
    }
    if (key == "trials") spec->trials = static_cast<int>(*v);
  } else if (key == "seed") {
    Result<int64_t> v = ParseInt64(value);
    if (!v.ok()) return AtLine(line, v.status());
    spec->seed = static_cast<uint64_t>(*v);
  } else if (key == "sweep" || key == "sweep2") {
    // "key: v1, v2, ..." — swept over one full run per value.
    std::string* sweep_key =
        key == "sweep" ? &spec->sweep_key : &spec->sweep2_key;
    std::vector<double>* sweep_values =
        key == "sweep" ? &spec->sweep_values : &spec->sweep2_values;
    const Status st = ParseSweepSpec(value, key, sweep_key, sweep_values);
    if (!st.ok()) return AtLine(line, st);
  } else if (key == "record") {
    Result<std::vector<MetricSpec>> metrics = ParseMetricList(value);
    if (!metrics.ok()) return AtLine(line, metrics.status());
    spec->metrics = std::move(*metrics);
  } else if (key == "aggregate") {
    Result<std::vector<std::string>> aggs = ParseAggregateList(value);
    if (!aggs.ok()) return AtLine(line, aggs.status());
    spec->aggregates = std::move(*aggs);
  } else {
    return AtLine(line, Status::InvalidArgument(
                            "unknown key " + Quoted(key) +
                            " (namespaced parameters must start with "
                            "protocol./env./failure./record./seeds./"
                            "workload./net./churn.)"));
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<ScenarioSpec>> ParseScenarioFile(
    std::string_view text, const std::string& default_name) {
  ScenarioSpec globals;
  globals.name = default_name;
  std::vector<std::pair<std::string, ScenarioSpec>> sections;
  bool in_section = false;

  int line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t eol = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? text.size() - pos
                                                       : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    const size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = Trim(line);
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') {
        return AtLine(line_no,
                      Status::InvalidArgument("unterminated [section]"));
      }
      const std::string section(Trim(line.substr(1, line.size() - 2)));
      if (section.empty()) {
        return AtLine(line_no,
                      Status::InvalidArgument("empty section name"));
      }
      // Sections inherit every global default set so far.
      sections.emplace_back(section, globals);
      in_section = true;
      continue;
    }

    const size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return AtLine(line_no, Status::InvalidArgument(
                                 "expected 'key = value', got " +
                                 Quoted(line)));
    }
    const std::string key(Trim(line.substr(0, eq)));
    const std::string value(Trim(line.substr(eq + 1)));
    if (key.empty()) {
      return AtLine(line_no, Status::InvalidArgument("empty key"));
    }
    ScenarioSpec* target = in_section ? &sections.back().second : &globals;
    DYNAGG_RETURN_IF_ERROR(ApplyKey(target, key, value, line_no));
  }

  std::vector<ScenarioSpec> specs;
  if (sections.empty()) {
    specs.push_back(std::move(globals));
  } else {
    for (auto& [section, spec] : sections) {
      spec.name = spec.name + "/" + section;
      specs.push_back(std::move(spec));
    }
  }
  // Cross-field rules (sweep2 requires sweep, distinct keys, ...) live in
  // ValidateExperiment — the one preflight every execution path runs — so
  // they are not duplicated here.
  for (const ScenarioSpec& spec : specs) {
    if (spec.protocol.empty()) {
      return Status::InvalidArgument("experiment '" + spec.name +
                                     "': missing required key 'protocol'");
    }
  }
  return specs;
}

}  // namespace scenario
}  // namespace dynagg
