// String-keyed factory registry shared by the protocol and environment
// catalogs.
//
// New workloads register themselves under a name and become addressable
// from scenario files without touching the runner; a lookup miss is a
// NotFound Status that lists what IS registered, so typos in specs produce
// actionable errors rather than crashes.

#ifndef DYNAGG_SCENARIO_REGISTRY_H_
#define DYNAGG_SCENARIO_REGISTRY_H_

#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace dynagg {
namespace scenario {

template <typename Factory>
class Registry {
 public:
  /// `kind` names the registry in error messages ("protocol",
  /// "environment").
  explicit Registry(std::string kind) : kind_(std::move(kind)) {}

  /// Registers `factory` under `name`; re-registering a name is an error
  /// (catches accidental double registration of builtins).
  Status Register(const std::string& name, Factory factory) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto [it, inserted] = map_.emplace(name, std::move(factory));
    if (!inserted) {
      return Status::FailedPrecondition(kind_ + " '" + name +
                                        "' is already registered");
    }
    return Status::OK();
  }

  /// Looks up `name`; NotFound lists the registered names.
  Result<Factory> Find(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = map_.find(name);
    if (it == map_.end()) {
      std::string msg = "unknown " + kind_ + " '" + name + "' (registered:";
      for (const auto& [key, factory] : map_) msg += " " + key;
      msg += ")";
      return Status::NotFound(msg);
    }
    return it->second;
  }

  /// Registered names in sorted order.
  std::vector<std::string> Names() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> names;
    names.reserve(map_.size());
    for (const auto& [key, factory] : map_) names.push_back(key);
    return names;
  }

 private:
  const std::string kind_;
  mutable std::mutex mu_;
  std::map<std::string, Factory> map_;
};

}  // namespace scenario
}  // namespace dynagg

#endif  // DYNAGG_SCENARIO_REGISTRY_H_
