// Trial-level plumbing between the executor and the registered workloads.
//
// A *trial* is one independent end-to-end run of an experiment unit (one
// sweep/sweep2 cell, one repetition). Since Driver API v1 the trial splits
// into two pluggable halves looked up by name:
//   - a SwarmFactory (protocol registry) builds the protocol's swarm for
//     one trial and declares its estimate / truth / bandwidth hooks as a
//     type-erased SwarmHandle;
//   - a TrialDriver (driver registry, `driver = rounds | trace` in the
//     spec) owns how simulated time advances: the synchronous round loop
//     with failure plans and early-stop, or event-driven contact-trace
//     playback on the Simulator core.
// The driver builds the environment through the environment registry,
// obtains the swarm from the factory, runs the time loop, and emits typed
// records — scalars, series, histograms/CDFs, bandwidth — through the
// Recorder in one pass. The executor (scenario/executor.h) then merges the
// per-trial record batches into output tables. Every source of randomness
// inside a trial is derived from ctx.trial_seed, which is what makes
// trials independent and the parallel executor deterministic.

#ifndef DYNAGG_SCENARIO_TRIAL_H_
#define DYNAGG_SCENARIO_TRIAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "env/contact_trace.h"
#include "env/environment.h"
#include "scenario/registry.h"
#include "scenario/spec.h"

namespace dynagg {

class TrafficMeter;  // sim/bandwidth.h

namespace net {
struct Message;  // net/message.h
}  // namespace net

namespace scenario {

/// An instantiated environment plus whatever backing storage it needs.
/// `trace` is declared before `env` so the environment is destroyed first.
struct EnvHandle {
  std::shared_ptr<const ContactTrace> trace;
  std::unique_ptr<Environment> env;
  /// When > 0, the round loop advances the environment to
  /// (round + 1) * advance_period before each round (trace playback).
  SimTime advance_period = 0;
  /// Group labelling window for trace playback (the paper's "nearby in the
  /// last 10 minutes"); consumed by the trace driver.
  SimTime group_window = FromMinutes(10);
};

/// Everything a runner needs to execute one trial. The spec already has the
/// sweep overrides applied (swept parameters read back their sweep values).
struct TrialContext {
  const ScenarioSpec* spec = nullptr;
  /// Index into spec->sweep_values, or -1 when the experiment has no sweep.
  int sweep_index = -1;
  double sweep_value = 0.0;
  /// Index into spec->sweep2_values, or -1 without a second axis.
  int sweep2_index = -1;
  double sweep2_value = 0.0;
  int trial = 0;
  /// Root seed of this trial; all in-trial streams derive from it.
  uint64_t trial_seed = 0;
};

// ------------------------------------------------------------- records ---
//
// One trial emits a batch of typed records. All trials of one experiment
// must emit structurally identical batches (same record names in the same
// order); the executor checks this and prepends the sweep/trial axis
// columns when assembling the output tables.

/// A single named value per trial (e.g. rms_tail_mean, rounds_to_converge).
/// Scalars aggregate across trials under `aggregate = ...`.
struct ScalarRecord {
  std::string name;
  double value = 0.0;
};

/// A per-trial series of (x, value) points (e.g. per-round RMS deviation).
/// Series sharing one x axis merge into one table, one value column each;
/// under aggregation, points are matched by x across trials.
///
/// An optional *group key* (`key_name` + `key`) lets one trial emit a
/// family of series under the same value column — one series per lambda,
/// panel, or group, the structure Fig 10/11-style figures plot. Keyed
/// series render as one table with a leading key column, rows grouped
/// key-major; under sweeps and aggregation groups are matched by key
/// across trials, so grouped tables assemble deterministically. All series
/// of one trial must agree on key_name ("" = unkeyed, the common case).
struct SeriesRecord {
  std::string x_name;    // x column, e.g. "round"
  std::string name;      // value column, e.g. "rms"
  std::string key_name;  // "" = unkeyed
  double key = 0.0;      // ignored when key_name is empty
  struct Point {
    double x = 0.0;
    double value = 0.0;
  };
  std::vector<Point> points;
};

/// A bucketed distribution, rendered as one row per bucket. `cumulative`
/// selects CDF output (running count / group total) over raw counts. An
/// optional key column groups several distributions into one record (Fig 6
/// keys its counter CDFs by bit index). Under aggregation, bucket counts
/// are pooled across trials (buckets must align).
struct HistogramRecord {
  std::string label;        // table label, e.g. "counter_cdf"
  std::string key_name;     // "" = no key column
  std::string bucket_name;  // bucket column, e.g. "counter_value"
  std::string value_name;   // value column, e.g. "cdf"
  bool cumulative = true;
  /// Key groups with a (pooled) total below this are dropped at assembly
  /// (fig06 skips counter levels that effectively never appear).
  int64_t min_key_total = 0;
  struct Bucket {
    double key = 0.0;    // ignored when key_name is empty
    double upper = 0.0;  // inclusive upper edge / bucket value
    int64_t count = 0;
  };
  std::vector<Bucket> buckets;
};

/// Measured over-the-air traffic of one trial, normalized per host per
/// executed round, plus the per-host state footprint. Expands to three
/// summary columns; aggregates across trials like scalars.
struct BandwidthRecord {
  double msgs_per_host_round = 0.0;
  double bytes_per_host_round = 0.0;
  double state_bytes = 0.0;
};

/// A per-trial quantile of a per-host sample distribution (the
/// `quantile(metric, q)` selector): the q-quantile of `name`'s samples,
/// computed by the runner over the hosts of one trial. Renders as the
/// summary column `<name>_p<100q>` (e.g. final_error_p99); under
/// `aggregate = ...` the per-trial quantile estimates aggregate across
/// trials like scalars.
struct QuantileRecord {
  std::string name;  // sampled metric, e.g. "final_error"
  double q = 0.5;    // quantile in [0, 1]
  double value = 0.0;
};

/// Everything one trial recorded.
struct RecordBatch {
  std::vector<ScalarRecord> scalars;
  std::vector<QuantileRecord> quantiles;
  std::vector<SeriesRecord> series;
  std::vector<HistogramRecord> histograms;
  bool has_bandwidth = false;
  BandwidthRecord bandwidth;
};

/// The handle through which a trial emits its records. Purely a collector:
/// which metrics to record is declared in the spec (`record = ...`) and
/// interpreted by the runner, which must reject selectors it does not
/// support (see CheckMetricsSupported).
///
/// Pointer validity: MutableSeries / MutableHistogram return pointers into
/// the batch's growable storage — they are invalidated by the next
/// creation of a series resp. histogram (vector reallocation). Finish
/// populating one record before creating the next, or re-fetch the pointer
/// (both calls are find-or-create).
class Recorder {
 public:
  Recorder() = default;

  /// Emits a per-trial scalar. Names must be unique within a trial.
  void AddScalar(const std::string& name, double value);

  /// Emits the q-quantile of per-host metric `name` for this trial.
  /// (name, q) pairs must be unique within a trial; emission order fixes
  /// the summary column order.
  void AddQuantile(const std::string& name, double q, double value);

  /// Finds or creates series `name`. Declare a series before a loop that
  /// may record zero points (e.g. an empty record.from window): all trials
  /// must emit structurally identical batches, so a conditionally-created
  /// series would fail the executor's consistency check.
  SeriesRecord* MutableSeries(const std::string& x_name,
                              const std::string& name);

  /// Finds or creates the series for group `key` of column `name` (the
  /// per-group form: one series per lambda/panel). Key groups emit in
  /// first-creation order; all series of a trial must share one key_name.
  SeriesRecord* MutableKeyedSeries(const std::string& x_name,
                                   const std::string& name,
                                   const std::string& key_name, double key);

  /// Appends one point to series `name` (created on first use). All series
  /// of one trial must share the same x axis name.
  void AddSeriesPoint(const std::string& x_name, const std::string& name,
                      double x, double value);

  /// Appends one point to group `key` of series `name`.
  void AddKeyedSeriesPoint(const std::string& x_name, const std::string& name,
                           const std::string& key_name, double key, double x,
                           double value);

  /// Finds or creates histogram `label`; the metadata arguments are fixed
  /// at creation. Append buckets to the returned record in output order
  /// (key-major for keyed histograms). Key groups whose total count stays
  /// below `min_key_total` are dropped at assembly (after cross-trial
  /// pooling under aggregation), so sparse-group suppression cannot make
  /// the batch structure data-dependent.
  HistogramRecord* MutableHistogram(const std::string& label,
                                    const std::string& key_name,
                                    const std::string& bucket_name,
                                    const std::string& value_name,
                                    bool cumulative,
                                    int64_t min_key_total = 0);

  /// Sets the trial's bandwidth record (at most once).
  void SetBandwidth(double msgs_per_host_round, double bytes_per_host_round,
                    double state_bytes);

  const RecordBatch& batch() const { return batch_; }
  RecordBatch TakeBatch() { return std::move(batch_); }

 private:
  RecordBatch batch_;
};

/// Rejects any spec metric selector not listed in `supported` (canonical
/// "name" / "name(arg)" spellings). Runners call this first so a typo in
/// `record = ...` fails loudly, like CheckParams does for parameters.
Status CheckMetricsSupported(const ScenarioSpec& spec,
                             const std::vector<std::string>& supported);

/// Same check over an explicit selector list — for callers that consume
/// some selectors themselves (the rounds driver's parametrized
/// quantile(...)) and validate only the rest. `protocol` names the
/// protocol in the diagnostic.
Status CheckMetricsSupported(const std::string& protocol,
                             const std::vector<MetricSpec>& metrics,
                             const std::vector<std::string>& supported);

/// Whether the spec requests metric `selector` (canonical spelling).
bool MetricRequested(const ScenarioSpec& spec, const std::string& selector);

/// Whether metric `m` matches catalog entry `supported`: an exact
/// canonical-spelling match, or — for entries ending in "(*)" — a name
/// match with any non-empty argument (parametrized selector families like
/// counter_quantiles(0.5, 0.95)).
bool SelectorMatches(const std::string& supported, const MetricSpec& m);

/// Runs one whole trial to completion, emitting its records through `rec`.
/// Since Driver API v1 this is the escape hatch for protocols whose trial
/// structure fits no shared driver (tag-tree's tree-depth-sized epochs);
/// everything else registers a SwarmFactory and lets a driver own time.
using ProtocolRunner =
    std::function<Status(const TrialContext&, Recorder& rec)>;
/// Builds the environment for one trial.
using EnvironmentFactory =
    std::function<Result<EnvHandle>(const TrialContext&)>;

// ------------------------------------------------------- Driver API v1 ---

/// One trial's constructed protocol instance, type-erased: how the swarm
/// exchanges state each round plus the hooks a driver needs to measure it.
/// Factories bundle the swarm and its backing storage into `keepalive` and
/// capture raw pointers into it from the callbacks.
struct SwarmHandle {
  /// Executes one gossip round (required).
  std::function<void(const Environment&, const Population&, Rng&)> run_round;
  /// Per-host estimate of the aggregate (required).
  std::function<double(HostId)> estimate;
  /// Network-wide truth over the alive population (required; the rounds
  /// driver evaluates it every round for the error metrics).
  std::function<double(const Population&)> truth;
  /// Per-group truth for group-relative (trace) error: given the current
  /// component labelling and per-group member counts, the truth of each
  /// group (index = group id). Null = no `driver = trace` support.
  std::function<std::vector<double>(const std::vector<int>& labels,
                                    const std::vector<int>& sizes)>
      group_truths;
  /// Estimate in group-truth units. Null = use `estimate`; the counting
  /// sketches divide by their per-host multiplicity here so estimates are
  /// comparable to group sizes.
  std::function<double(HostId)> group_estimate;
  /// Per-host scalar values backing failure.kind = kill_top_fraction; null
  /// for protocols without per-host scalar inputs.
  const std::vector<double>* failure_values = nullptr;
  /// Per-host state footprint reported by the bandwidth record.
  double state_bytes = 0.0;
  /// Modelled per-host per-round gossip payload in bytes (the analytic
  /// bandwidth model behind `record = gossip_bytes`, e.g. the
  /// Invert-Average attribute-scaling argument); < 0 = not modelled, and
  /// the drivers reject the selector.
  double gossip_bytes = -1.0;
  /// Attaches a traffic meter for the bandwidth metric; null = the
  /// protocol cannot measure traffic.
  std::function<void(TrafficMeter*)> set_meter;
  /// Sets the round kernel's intra-round scatter thread count (the
  /// top-level `intra_round_threads` key); null = the protocol has no
  /// data-parallel apply phase, and the drivers reject values > 1.
  std::function<void(int)> set_threads;
  /// Initializes the state of host `id` when a churn plan activates it —
  /// first arrivals and rebirths with ID reuse both land here, and the
  /// reset must touch only the joining host's own slots (no RNG, no
  /// shared state) so existing hosts' streams and the byte-identity
  /// contract are untouched. Null = the protocol cannot admit hosts, and
  /// `--dry-run` rejects churn.* keys (see ProtocolDef::join_capable).
  std::function<void(HostId)> on_join;
  /// Message-level gossip (`driver = async`): plans one gossip tick,
  /// appending the messages each alive initiator would send to `out`
  /// without delivering anything. The async driver runs them through the
  /// network model and calls `async_deliver` when (and if) each arrives.
  /// Null = the protocol cannot run message-level.
  std::function<void(const Environment&, const Population&, Rng&,
                     std::vector<net::Message>*)>
      async_tick;
  /// Applies one delivered message to the receiver's state (required
  /// together with async_tick).
  std::function<void(const net::Message&)> async_deliver;
  /// Over-the-air bytes of one async message (metered at send time, so
  /// dropped messages still count as sent bandwidth).
  double message_bytes = 0.0;
  /// Post-loop hook emitting the protocol's extra metrics (rounds driver
  /// only; the selectors and record.* keys it handles are declared
  /// statically on the ProtocolDef so `--dry-run` can validate them).
  std::function<Status(const TrialContext&, Recorder&)> finish;
  /// Owns the swarm and whatever storage the callbacks point into.
  std::shared_ptr<void> keepalive;
};

/// Builds the swarm for one trial. The driver has already instantiated the
/// environment (sized populations, trace playback state).
using SwarmFactory =
    std::function<Result<SwarmHandle>(const TrialContext&, EnvHandle& env)>;

/// A registered protocol: either a SwarmFactory driven by any TrialDriver,
/// or (rarely) a custom whole-trial runner.
struct ProtocolDef {
  /// Null if and only if `run_custom` is set.
  SwarmFactory make_swarm;
  /// Whole-trial protocols that own their own time loop; executed by the
  /// rounds driver, rejected by event-driven drivers.
  ProtocolRunner run_custom;
  /// Whether the factory provides the group hooks `driver = trace` needs.
  /// Static so `--dry-run` can reject trace specs without building swarms.
  bool trace_capable = false;
  /// Whether the built swarm exposes the round kernel's data-parallel
  /// apply hook (SwarmHandle::set_threads). Static so `--dry-run` can
  /// reject `intra_round_threads > 1` on exchange-only and custom
  /// protocols without building swarms.
  bool threads_capable = false;
  /// Whether the built swarm sets SwarmHandle::gossip_bytes (the analytic
  /// payload model). Static so `--dry-run` can reject `record =
  /// gossip_bytes` on protocols without a model.
  bool models_gossip_bytes = false;
  /// Whether the factory provides the message-level hooks `driver = async`
  /// needs (SwarmHandle::async_tick / async_deliver). Static so `--dry-run`
  /// can reject async specs without building swarms.
  bool async_capable = false;
  /// Whether the built swarm exposes the churn-join reset hook
  /// (SwarmHandle::on_join). Static so `--dry-run` can reject churn.*
  /// keys on protocols that cannot admit hosts without building swarms.
  bool join_capable = false;
  /// Whether the protocol instantiates the spec's environment. False only
  /// for whole-trial runners with no gossip topology (fm-accuracy), whose
  /// specs skip the environment's spec-only validation — they never build
  /// one, so env knob checks would reject specs that execute clean.
  bool uses_environment = true;
  /// Whether the protocol consumes the keyed stream workload (the
  /// workload.* keys and seeds.workload_stream; src/stream/). Static so
  /// `--dry-run` can reject workload keys on protocols that would silently
  /// ignore them — and, symmetrically, consuming protocols validate that a
  /// workload.kind is declared.
  bool consumes_workload = false;
  /// Spec-only validation of the protocol's knobs (protocol.* parameter
  /// allowlists, value ranges, custom runners' record/seed allowlists) —
  /// everything checkable without an environment or a swarm. Factories
  /// share the same parse functions, so `--dry-run` rejects exactly the
  /// knob/protocol mismatches execution would.
  std::function<Status(const ScenarioSpec&)> validate;
  /// Extra metric selectors (and their record.* keys) beyond the rounds
  /// driver's catalog, handled by the built swarm's `finish` hook
  /// (count-sketch-reset's cdf(counter) / counter_quantiles(...)). An
  /// entry ending in "(*)" matches any argument (see SelectorMatches).
  std::vector<std::string> extra_metrics;
  std::vector<std::string> extra_record_keys;
};

/// Advances simulated time for one trial: builds the environment, obtains
/// the swarm from the protocol definition, runs the loop, and records the
/// spec's metrics.
using TrialDriver =
    std::function<Status(const TrialContext&, const ProtocolDef&, Recorder&)>;

/// A registered trial driver (`driver = ...` in the spec).
struct DriverDef {
  TrialDriver run;
  /// Event-driven drivers consume the time-based keys gossip_period /
  /// sample_period and require a trace-providing environment; the rounds
  /// driver rejects those keys.
  bool event_driven = false;
  /// Message-level drivers (`driver = async`) consume the net.* keys and
  /// seeds.message_stream and require async-capable protocols; other
  /// drivers reject those keys.
  bool message_level = false;
};

/// A registered environment.
struct EnvironmentDef {
  EnvironmentFactory make;
  /// Whether EnvHandle::trace is populated (required by `driver = trace`).
  bool provides_trace = false;
  /// Spec-only validation of the environment's knobs (env.* parameter
  /// allowlist, value ranges, hosts/degree consistency) — everything
  /// checkable without building the environment or touching trace files.
  /// Factories call the same function, so `--dry-run` rejects exactly the
  /// env mismatches execution would.
  std::function<Status(const ScenarioSpec&)> validate;
};

/// Global registries, with the builtin catalog (push-sum, push-sum-revert,
/// epoch-push-sum, full-transfer, extremes, count-sketch,
/// count-sketch-reset, node-aggregator, tag-tree / uniform, spatial,
/// random-graph, haggle / rounds, trace) plus the stream sketch family
/// (count-min, count-sketch-freq; src/stream/) registered on first use.
Registry<ProtocolDef>& ProtocolRegistry();
Registry<EnvironmentDef>& EnvironmentRegistry();
Registry<DriverDef>& DriverRegistry();

/// One row of the record-type catalog (`dynagg_run --list`).
struct RecordTypeInfo {
  const char* name;
  const char* summary;
};

/// The Recorder's typed record families with one-line summaries — the
/// shapes a `record = ...` selector can produce.
const std::vector<RecordTypeInfo>& RecordTypeCatalog();

/// Per-trial root seed: trial 0 replays the experiment's base seed exactly
/// (so a 1-trial scenario is bit-identical to the legacy bench binary it
/// replaces); later trials get decorrelated derived streams.
inline uint64_t TrialSeed(uint64_t base_seed, int trial) {
  return trial == 0
             ? base_seed
             : DeriveSeed(base_seed, 0x74726961ull /* "tria" */ + trial);
}

/// Instantiates ctx.spec's environment via the registry (factories validate
/// their env.* parameters and spec.hosts consistency).
Result<EnvHandle> MakeEnvironment(const TrialContext& ctx);

}  // namespace scenario
}  // namespace dynagg

#endif  // DYNAGG_SCENARIO_TRIAL_H_
