// Trial-level plumbing between the executor and the registered workloads.
//
// A *trial* is one independent end-to-end run of an experiment unit (one
// sweep value, one repetition). The executor (scenario/executor.h) hands a
// TrialContext to a ProtocolRunner looked up by name; the runner builds its
// environment through the environment registry, drives the simulation, and
// returns its metric rows. Every source of randomness inside a trial is
// derived from ctx.trial_seed, which is what makes trials independent and
// the parallel executor deterministic.

#ifndef DYNAGG_SCENARIO_TRIAL_H_
#define DYNAGG_SCENARIO_TRIAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "env/contact_trace.h"
#include "env/environment.h"
#include "scenario/registry.h"
#include "scenario/spec.h"

namespace dynagg {
namespace scenario {

/// An instantiated environment plus whatever backing storage it needs.
/// `trace` is declared before `env` so the environment is destroyed first.
struct EnvHandle {
  std::shared_ptr<const ContactTrace> trace;
  std::unique_ptr<Environment> env;
  /// When > 0, the round loop advances the environment to
  /// (round + 1) * advance_period before each round (trace playback).
  SimTime advance_period = 0;
};

/// Everything a runner needs to execute one trial. The spec already has the
/// sweep override applied (the swept parameter reads back the sweep value).
struct TrialContext {
  const ScenarioSpec* spec = nullptr;
  /// Index into spec->sweep_values, or -1 when the experiment has no sweep.
  int sweep_index = -1;
  double sweep_value = 0.0;
  int trial = 0;
  /// Root seed of this trial; all in-trial streams derive from it.
  uint64_t trial_seed = 0;
};

/// Metric rows produced by one trial. All trials of one experiment must
/// report identical columns; the executor prepends sweep/trial columns.
struct TrialResult {
  std::vector<std::string> columns;
  std::vector<std::vector<double>> rows;
};

/// Runs one trial to completion.
using ProtocolRunner =
    std::function<Result<TrialResult>(const TrialContext&)>;
/// Builds the environment for one trial.
using EnvironmentFactory =
    std::function<Result<EnvHandle>(const TrialContext&)>;

/// Global registries, with the builtin catalog (push-sum, push-sum-revert,
/// epoch-push-sum, full-transfer, extremes, count-sketch,
/// count-sketch-reset, tag-tree / uniform, spatial, random-graph, haggle)
/// registered on first use.
Registry<ProtocolRunner>& ProtocolRegistry();
Registry<EnvironmentFactory>& EnvironmentRegistry();

/// Per-trial root seed: trial 0 replays the experiment's base seed exactly
/// (so a 1-trial scenario is bit-identical to the legacy bench binary it
/// replaces); later trials get decorrelated derived streams.
inline uint64_t TrialSeed(uint64_t base_seed, int trial) {
  return trial == 0
             ? base_seed
             : DeriveSeed(base_seed, 0x74726961ull /* "tria" */ + trial);
}

/// Instantiates ctx.spec's environment via the registry (factories validate
/// their env.* parameters and spec.hosts consistency).
Result<EnvHandle> MakeEnvironment(const TrialContext& ctx);

}  // namespace scenario
}  // namespace dynagg

#endif  // DYNAGG_SCENARIO_TRIAL_H_
