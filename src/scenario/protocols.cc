// Builtin protocol catalog: SwarmFactories for the Driver API.
//
// A registered protocol builds its swarm for one trial and declares the
// measurement hooks as a type-erased SwarmHandle (scenario/trial.h); which
// time loop runs it — the synchronous round loop or event-driven trace
// playback — is the driver's business (scenario/drivers.cc), selected by
// `driver = rounds | trace` in the spec. Factories validate their
// protocol.* parameters, draw the paper's U[0,100) value workload from the
// trial seed, and bundle swarm + storage into the handle's keepalive.
//
// Protocols whose trial structure fits no shared driver register a custom
// whole-trial runner instead: the TAG overlay baseline (tag-tree) owns its
// loop because its epochs are tree-depth-sized rather than fixed-length.
// The node-aggregator protocol drives the serialized NodeAggregator facade
// (agg/aggregator.h) over the wire format, making the deployment path
// scenario-reachable.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "agg/aggregator.h"
#include "agg/count_sketch.h"
#include "agg/count_sketch_reset.h"
#include "agg/epoch_push_sum.h"
#include "agg/extremes.h"
#include "agg/fm_sketch.h"
#include "agg/full_transfer.h"
#include "agg/invert_average.h"
#include "agg/push_flow.h"
#include "agg/push_sum.h"
#include "agg/push_sum_revert.h"
#include "common/hash.h"
#include "common/macros.h"
#include "common/rng.h"
#include "common/stats.h"
#include "env/connectivity.h"
#include "scenario/config.h"
#include "scenario/trial.h"
#include "sim/bandwidth.h"
#include "sim/metrics.h"
#include "sim/population.h"
#include "sim/round_driver.h"
#include "sim/workload.h"
#include "tree/spanning_tree.h"
#include "tree/tag.h"

namespace dynagg {
namespace scenario {
namespace {

Result<GossipMode> ParseGossipMode(const ScenarioSpec& spec) {
  DYNAGG_ASSIGN_OR_RETURN(const std::string mode,
                          spec.ParamString("protocol.mode", "pushpull"));
  if (mode == "push") return GossipMode::kPush;
  if (mode == "pushpull") return GossipMode::kPushPull;
  return Status::InvalidArgument(
      "protocol.mode must be push or pushpull, got '" + mode + "'");
}

Result<RevertMode> ParseRevertMode(const ScenarioSpec& spec) {
  DYNAGG_ASSIGN_OR_RETURN(const std::string revert,
                          spec.ParamString("protocol.revert", "fixed"));
  if (revert == "fixed") return RevertMode::kFixed;
  if (revert == "adaptive") return RevertMode::kAdaptive;
  return Status::InvalidArgument(
      "protocol.revert must be fixed or adaptive, got '" + revert + "'");
}

Result<int> CheckedHosts(const EnvHandle& env) {
  const int n = env.env->num_hosts();
  if (n <= 0) return Status::InvalidArgument("environment has no hosts");
  return n;
}

/// Adapts a Result<Params>-returning spec parser into the ProtocolDef's
/// validate hook, so `--dry-run` runs exactly the parse execution would.
template <typename Parse>
std::function<Status(const ScenarioSpec&)> SpecValidator(Parse parse) {
  return [parse](const ScenarioSpec& spec) { return parse(spec).status(); };
}

// ----------------------------------------------- spec parameter parsing ---
//
// One parse function per protocol, shared between the SwarmFactory (which
// needs the values) and the registry's validate hook (which only needs the
// Status): knob typos and out-of-range values fail `--dry-run` with the
// same message execution would produce.

Result<GossipMode> ParsePushSumSpec(const ScenarioSpec& spec) {
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams("protocol.", {"mode"}));
  DYNAGG_ASSIGN_OR_RETURN(const GossipMode mode, ParseGossipMode(spec));
  if (spec.driver == "async" && mode != GossipMode::kPush) {
    return Status::InvalidArgument(
        "driver = async requires protocol.mode = push (the pairwise "
        "push/pull exchange is instantaneous by construction and cannot be "
        "split into in-flight messages)");
  }
  return mode;
}

Status ParsePushFlowSpec(const ScenarioSpec& spec) {
  return spec.CheckParams("protocol.", {});
}

Result<PsrParams> ParsePsrSpec(const ScenarioSpec& spec) {
  DYNAGG_RETURN_IF_ERROR(
      spec.CheckParams("protocol.", {"lambda", "mode", "revert"}));
  PsrParams params;
  DYNAGG_ASSIGN_OR_RETURN(params.lambda,
                          spec.ParamDouble("protocol.lambda", 0.01));
  DYNAGG_ASSIGN_OR_RETURN(params.mode, ParseGossipMode(spec));
  DYNAGG_ASSIGN_OR_RETURN(params.revert, ParseRevertMode(spec));
  return params;
}

struct EpochSpecParams {
  EpochParams params;
  int phase_spread = 0;
  bool random_phases = false;
  uint64_t phase_stream = 4;
};

Result<EpochSpecParams> ParseEpochSpec(const ScenarioSpec& spec) {
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams(
      "protocol.", {"epoch_length", "mode", "phase_spread", "random_phases",
                    "phase_stream"}));
  EpochSpecParams out;
  DYNAGG_ASSIGN_OR_RETURN(const int64_t epoch_length,
                          spec.ParamInt("protocol.epoch_length", 10));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t phase_spread,
                          spec.ParamInt("protocol.phase_spread", 0));
  DYNAGG_ASSIGN_OR_RETURN(out.random_phases,
                          spec.ParamBool("protocol.random_phases", false));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t phase_stream,
                          spec.ParamInt("protocol.phase_stream", 4));
  DYNAGG_ASSIGN_OR_RETURN(out.params.mode, ParseGossipMode(spec));
  if (epoch_length < 1) {
    return Status::InvalidArgument("protocol.epoch_length must be >= 1");
  }
  if (phase_spread < 0 || phase_spread > epoch_length) {
    return Status::InvalidArgument(
        "protocol.phase_spread must be in [0, epoch_length]");
  }
  if (out.random_phases && phase_spread > 0) {
    return Status::InvalidArgument(
        "protocol.random_phases and protocol.phase_spread are exclusive "
        "(random clock skew vs a deterministic phase ramp)");
  }
  if (spec.HasParam("protocol.phase_stream") && !out.random_phases) {
    return Status::InvalidArgument(
        "protocol.phase_stream only applies with protocol.random_phases");
  }
  out.params.epoch_length = static_cast<int>(epoch_length);
  out.phase_spread = static_cast<int>(phase_spread);
  out.phase_stream = static_cast<uint64_t>(phase_stream);
  return out;
}

Result<FullTransferParams> ParseFullTransferSpec(const ScenarioSpec& spec) {
  DYNAGG_RETURN_IF_ERROR(
      spec.CheckParams("protocol.", {"lambda", "parcels", "window"}));
  FullTransferParams params;
  DYNAGG_ASSIGN_OR_RETURN(params.lambda,
                          spec.ParamDouble("protocol.lambda", 0.1));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t parcels,
                          spec.ParamInt("protocol.parcels", 4));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t window,
                          spec.ParamInt("protocol.window", 3));
  if (parcels < 1 || window < 1) {
    return Status::InvalidArgument(
        "protocol.parcels and protocol.window must be >= 1");
  }
  params.parcels = static_cast<int>(parcels);
  params.window = static_cast<int>(window);
  return params;
}

// ----------------------------------------------------- handle assembly ---

/// Wires the traffic-meter hook when the swarm type has one.
template <typename Swarm>
void MaybeSetMeter(SwarmHandle& h, Swarm* swarm) {
  if constexpr (requires(Swarm& s, TrafficMeter* m) {
                  s.set_traffic_meter(m);
                }) {
    h.set_meter = [swarm](TrafficMeter* m) { swarm->set_traffic_meter(m); };
  }
}

/// Wires the round kernel's intra-round thread hook when the swarm type has
/// one (push-scatter protocols; see sim/round_kernel.h).
template <typename Swarm>
void MaybeSetThreads(SwarmHandle& h, Swarm* swarm) {
  if constexpr (requires(Swarm& s, int t) { s.set_intra_round_threads(t); }) {
    h.set_threads = [swarm](int t) { swarm->set_intra_round_threads(t); };
  }
}

/// Wires the churn-join reset hook when the swarm type has one. Protocols
/// whose swarm exposes OnJoin must also register join_capable = true so
/// `--dry-run` can vet churn.* specs without building swarms.
template <typename Swarm>
void MaybeSetOnJoin(SwarmHandle& h, Swarm* swarm) {
  if constexpr (requires(Swarm& s, HostId id) { s.OnJoin(id); }) {
    h.on_join = [swarm](HostId id) { swarm->OnJoin(id); };
  }
}

/// Owns a value workload plus the swarm built over it (swarm constructors
/// take the values by reference, so member order matters).
template <typename Swarm>
struct ValueSwarmBox {
  std::vector<double> values;
  Swarm swarm;
  template <typename... Args>
  explicit ValueSwarmBox(std::vector<double> v, Args&&... args)
      : values(std::move(v)), swarm(values, std::forward<Args>(args)...) {}
};

/// Handle for averaging swarms: Estimate() per host, live-average truth,
/// per-group mean truth for trace playback, values backing
/// kill_top_fraction.
template <typename Box>
SwarmHandle AveragingHandle(std::shared_ptr<Box> box, double state_bytes) {
  SwarmHandle h;
  auto* swarm = &box->swarm;
  const std::vector<double>* values = &box->values;
  h.run_round = [swarm](const Environment& e, const Population& p, Rng& r) {
    swarm->RunRound(e, p, r);
  };
  h.estimate = [swarm](HostId id) { return swarm->Estimate(id); };
  h.truth = [values](const Population& pop) {
    return TrueAverage(*values, pop);
  };
  h.group_truths = [values](const std::vector<int>& labels,
                            const std::vector<int>& sizes) {
    return GroupMeans(labels, sizes, *values);
  };
  h.failure_values = values;
  h.state_bytes = state_bytes;
  MaybeSetMeter(h, swarm);
  MaybeSetThreads(h, swarm);
  MaybeSetOnJoin(h, swarm);
  h.keepalive = std::move(box);
  return h;
}

/// Owns a multiplicity workload plus a counting-sketch swarm over it.
template <typename Swarm, typename Params>
struct CountSwarmBox {
  std::vector<int64_t> mult;
  Swarm swarm;
  CountSwarmBox(std::vector<int64_t> m, const Params& params)
      : mult(std::move(m)), swarm(mult, params) {}
};

/// Handle for counting swarms: EstimateCount() per host, live total-count
/// truth; trace playback compares the per-identifier estimate scaled back
/// to devices against the host's group size (Fig 11's dynamic size).
template <typename Box>
SwarmHandle CountingHandle(std::shared_ptr<Box> box, double state_bytes) {
  SwarmHandle h;
  auto* swarm = &box->swarm;
  const std::vector<int64_t>* mult = &box->mult;
  h.run_round = [swarm](const Environment& e, const Population& p, Rng& r) {
    swarm->RunRound(e, p, r);
  };
  h.estimate = [swarm](HostId id) { return swarm->EstimateCount(id); };
  h.truth = [mult](const Population& pop) {
    int64_t total = 0;
    for (const HostId id : pop.alive_ids()) total += (*mult)[id];
    return static_cast<double>(total);
  };
  h.group_estimate = [swarm, mult](HostId id) {
    return swarm->EstimateCount(id) / static_cast<double>((*mult)[id]);
  };
  h.group_truths = [](const std::vector<int>&, const std::vector<int>& sizes) {
    return std::vector<double>(sizes.begin(), sizes.end());
  };
  h.state_bytes = state_bytes;
  MaybeSetMeter(h, swarm);
  MaybeSetThreads(h, swarm);
  MaybeSetOnJoin(h, swarm);
  h.keepalive = std::move(box);
  return h;
}

// --------------------------------------------------- averaging protocols ---

Result<SwarmHandle> MakePushSum(const TrialContext& ctx, EnvHandle& env) {
  DYNAGG_ASSIGN_OR_RETURN(const GossipMode mode, ParsePushSumSpec(*ctx.spec));
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  auto box = std::make_shared<ValueSwarmBox<PushSumSwarm>>(
      UniformWorkloadValues(n, ctx.trial_seed), mode);
  PushSumSwarm* swarm = &box->swarm;
  SwarmHandle h = AveragingHandle(std::move(box), 2.0 * sizeof(double));
  if (mode == GossipMode::kPush) {
    // Message-level hooks (`driver = async`): a tick halves each sender's
    // mass and ships the other half; the pairwise push/pull exchange has
    // no message decomposition (rejected by ParsePushSumSpec).
    h.async_tick = [swarm](const Environment& e, const Population& p, Rng& r,
                           std::vector<net::Message>* out) {
      swarm->PlanAsyncTick(e, p, r, out);
    };
    h.async_deliver = [swarm](const net::Message& m) {
      swarm->DeliverMass(m);
    };
    h.message_bytes = static_cast<double>(kMassMessageBytes);
  }
  return h;
}

Result<SwarmHandle> MakePushFlow(const TrialContext& ctx, EnvHandle& env) {
  DYNAGG_RETURN_IF_ERROR(ParsePushFlowSpec(*ctx.spec));
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  auto box = std::make_shared<ValueSwarmBox<PushFlowSwarm>>(
      UniformWorkloadValues(n, ctx.trial_seed));
  PushFlowSwarm* swarm = &box->swarm;
  // State: the initial value, the two flow sums, plus the sparse per-edge
  // flow entries (amortized ~one long-lived neighbor under uniform push).
  SwarmHandle h = AveragingHandle(std::move(box), 6.0 * sizeof(double));
  h.async_tick = [swarm](const Environment& e, const Population& p, Rng& r,
                         std::vector<net::Message>* out) {
    swarm->PlanAsyncTick(e, p, r, out);
  };
  h.async_deliver = [swarm](const net::Message& m) { swarm->DeliverFlow(m); };
  h.message_bytes = static_cast<double>(kFlowMessageBytes);
  return h;
}

Result<SwarmHandle> MakePushSumRevert(const TrialContext& ctx,
                                      EnvHandle& env) {
  DYNAGG_ASSIGN_OR_RETURN(const PsrParams params, ParsePsrSpec(*ctx.spec));
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  auto box = std::make_shared<ValueSwarmBox<PushSumRevertSwarm>>(
      UniformWorkloadValues(n, ctx.trial_seed), params);
  return AveragingHandle(std::move(box), 3.0 * sizeof(double));
}

Result<SwarmHandle> MakeEpochPushSum(const TrialContext& ctx,
                                     EnvHandle& env) {
  DYNAGG_ASSIGN_OR_RETURN(const EpochSpecParams cfg,
                          ParseEpochSpec(*ctx.spec));
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  std::vector<int> phases;
  if (cfg.phase_spread > 0) {
    phases.resize(n);
    for (int i = 0; i < n; ++i) {
      phases[i] = i % cfg.phase_spread;
    }
  } else if (cfg.random_phases) {
    // The epoch ablation's skewed-clocks mode: every host starts at a
    // uniformly random phase of the epoch.
    phases.resize(n);
    Rng prng(DeriveSeed(ctx.trial_seed, cfg.phase_stream));
    for (int i = 0; i < n; ++i) {
      phases[i] = static_cast<int>(
          prng.UniformInt(static_cast<uint64_t>(cfg.params.epoch_length)));
    }
  }
  auto box = std::make_shared<ValueSwarmBox<EpochPushSumSwarm>>(
      UniformWorkloadValues(n, ctx.trial_seed), cfg.params, phases);
  return AveragingHandle(std::move(box), /*state_bytes=*/0.0);
}

Result<SwarmHandle> MakeFullTransfer(const TrialContext& ctx,
                                     EnvHandle& env) {
  DYNAGG_ASSIGN_OR_RETURN(const FullTransferParams params,
                          ParseFullTransferSpec(*ctx.spec));
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  auto box = std::make_shared<ValueSwarmBox<FullTransferSwarm>>(
      UniformWorkloadValues(n, ctx.trial_seed), params);
  // State: the mass plus the estimate window of <weight, value> pairs.
  const double state_bytes =
      (2.0 + 2.0 * static_cast<double>(params.window)) * sizeof(double);
  return AveragingHandle(std::move(box), state_bytes);
}

// ------------------------------------------------------------- extremes ---

struct ExtremesBox {
  std::vector<double> values;
  std::vector<uint64_t> keys;
  DynamicExtremeSwarm swarm;
  ExtremesBox(std::vector<double> v, std::vector<uint64_t> k,
              const ExtremeParams& params)
      : values(std::move(v)), keys(std::move(k)), swarm(values, keys, params) {}
};

Result<ExtremeParams> ParseExtremesSpec(const ScenarioSpec& spec) {
  DYNAGG_RETURN_IF_ERROR(
      spec.CheckParams("protocol.", {"kind", "cutoff", "mode"}));
  DYNAGG_ASSIGN_OR_RETURN(const std::string kind_name,
                          spec.ParamString("protocol.kind", "max"));
  ExtremeParams params;
  if (kind_name == "max") {
    params.kind = ExtremeKind::kMaximum;
  } else if (kind_name == "min") {
    params.kind = ExtremeKind::kMinimum;
  } else {
    return Status::InvalidArgument(
        "protocol.kind must be max or min, got '" + kind_name + "'");
  }
  DYNAGG_ASSIGN_OR_RETURN(const int64_t cutoff,
                          spec.ParamInt("protocol.cutoff", 12));
  if (cutoff < 0) {
    return Status::InvalidArgument("protocol.cutoff must be >= 0");
  }
  params.cutoff = static_cast<int>(cutoff);
  DYNAGG_ASSIGN_OR_RETURN(params.mode, ParseGossipMode(spec));
  return params;
}

Result<SwarmHandle> MakeExtremes(const TrialContext& ctx, EnvHandle& env) {
  DYNAGG_ASSIGN_OR_RETURN(const ExtremeParams params,
                          ParseExtremesSpec(*ctx.spec));
  const ExtremeKind kind = params.kind;
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  std::vector<uint64_t> keys(n);
  std::iota(keys.begin(), keys.end(), uint64_t{0});
  auto box = std::make_shared<ExtremesBox>(
      UniformWorkloadValues(n, ctx.trial_seed), std::move(keys), params);
  SwarmHandle h;
  DynamicExtremeSwarm* swarm = &box->swarm;
  const std::vector<double>* values = &box->values;
  h.run_round = [swarm](const Environment& e, const Population& p, Rng& r) {
    swarm->RunRound(e, p, r);
  };
  h.estimate = [swarm](HostId id) { return swarm->Estimate(id); };
  h.truth = [values, kind](const Population& pop) {
    bool first = true;
    double best = 0.0;
    for (const HostId id : pop.alive_ids()) {
      const double v = (*values)[id];
      if (first || (kind == ExtremeKind::kMaximum ? v > best : v < best)) {
        best = v;
        first = false;
      }
    }
    return best;
  };
  h.failure_values = values;
  h.state_bytes = 0.0;
  MaybeSetMeter(h, swarm);
  MaybeSetThreads(h, swarm);
  MaybeSetOnJoin(h, swarm);
  h.keepalive = std::move(box);
  return h;
}

// ---------------------------------------------------- counting protocols ---

/// Validates protocol.multiplicity: a per-host identifier count >= 0, or
/// the symbolic value `workload` (round(v) for the paper's U[0,100) value
/// workload — the multiple-insertion summation of the Invert-Average
/// ablation, Section IV.B).
Status ValidateMultiplicitySpec(const ScenarioSpec& spec) {
  DYNAGG_ASSIGN_OR_RETURN(const std::string text,
                          spec.ParamString("protocol.multiplicity", "1"));
  if (text == "workload") {
    // Workload multiplicities include 0 (values < 0.5); the trace driver's
    // group estimate divides by the multiplicity.
    if (spec.driver == "trace") {
      return Status::InvalidArgument(
          "driver = trace does not support protocol.multiplicity = "
          "workload (group sizes are measured in devices)");
    }
    return Status::OK();
  }
  DYNAGG_ASSIGN_OR_RETURN(const int64_t mult,
                          spec.ParamInt("protocol.multiplicity", 1));
  if (mult < 0) {
    return Status::InvalidArgument("protocol.multiplicity must be >= 0");
  }
  // The trace driver's group estimate divides by the multiplicity to
  // compare counts against group sizes; 0 would silently print inf.
  if (mult < 1 && spec.driver == "trace") {
    return Status::InvalidArgument(
        "driver = trace requires protocol.multiplicity >= 1 (group sizes "
        "are measured in devices)");
  }
  return Status::OK();
}

Result<std::vector<int64_t>> Multiplicities(const TrialContext& ctx, int n) {
  DYNAGG_RETURN_IF_ERROR(ValidateMultiplicitySpec(*ctx.spec));
  DYNAGG_ASSIGN_OR_RETURN(const std::string text,
                          ctx.spec->ParamString("protocol.multiplicity", "1"));
  if (text == "workload") {
    const std::vector<double> values =
        UniformWorkloadValues(n, ctx.trial_seed);
    std::vector<int64_t> mult(n);
    for (int i = 0; i < n; ++i) {
      mult[i] = static_cast<int64_t>(values[i] + 0.5);
    }
    return mult;
  }
  DYNAGG_ASSIGN_OR_RETURN(const int64_t mult,
                          ctx.spec->ParamInt("protocol.multiplicity", 1));
  return std::vector<int64_t>(n, mult);
}

/// Shared bins/levels validation of the sketch protocols.
Status CheckSketchShape(int64_t bins, int64_t levels) {
  if (bins < 1 || levels < 1 || levels > kCsrMaxLevels) {
    return Status::InvalidArgument(
        "protocol.bins must be >= 1 and protocol.levels in [1, " +
        std::to_string(kCsrMaxLevels) + "]");
  }
  return Status::OK();
}

/// Modelled gossip payload of one sketch state flowing both ways per
/// initiated push/pull exchange, times the number of simultaneously
/// maintained attributes (the Invert-Average ablation's cost model):
/// bins x levels counter bytes plus an 8-byte header.
double SketchGossipBytes(int bins, int levels, int64_t attributes) {
  return static_cast<double>(attributes) *
         (2.0 * (static_cast<double>(bins) * levels + 8.0));
}

Result<CountSketchParams> ParseCountSketchSpec(const ScenarioSpec& spec) {
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams(
      "protocol.", {"bins", "levels", "mode", "multiplicity"}));
  DYNAGG_RETURN_IF_ERROR(ValidateMultiplicitySpec(spec));
  CountSketchParams params;
  DYNAGG_ASSIGN_OR_RETURN(const int64_t bins,
                          spec.ParamInt("protocol.bins", params.bins));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t levels,
                          spec.ParamInt("protocol.levels", params.levels));
  DYNAGG_RETURN_IF_ERROR(CheckSketchShape(bins, levels));
  DYNAGG_ASSIGN_OR_RETURN(params.mode, ParseGossipMode(spec));
  params.bins = static_cast<int>(bins);
  params.levels = static_cast<int>(levels);
  return params;
}

Result<SwarmHandle> MakeCountSketch(const TrialContext& ctx, EnvHandle& env) {
  DYNAGG_ASSIGN_OR_RETURN(const CountSketchParams params,
                          ParseCountSketchSpec(*ctx.spec));
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  DYNAGG_ASSIGN_OR_RETURN(std::vector<int64_t> mult,
                          Multiplicities(ctx, n));
  auto box =
      std::make_shared<CountSwarmBox<CountSketchSwarm, CountSketchParams>>(
          std::move(mult), params);
  // One uint64 bit string per bin.
  return CountingHandle(std::move(box),
                        static_cast<double>(params.bins) * sizeof(uint64_t));
}

/// Parses the q list of a `counter_quantiles(q1, q2, ...)` selector (the
/// per-bit bucketed counter-age quantiles of the spatial ablation), or an
/// empty list when the spec does not request it. Shared by the CSR spec
/// validator (--dry-run) and the finish hook.
Result<std::vector<double>> ParseCounterQuantilesSpec(
    const ScenarioSpec& spec) {
  std::vector<double> qs;
  for (const MetricSpec& m : spec.metrics) {
    if (m.name != "counter_quantiles") continue;
    const std::string bad =
        "metric '" + m.ToString() +
        "': counter_quantiles takes a comma-separated list of quantiles "
        "in [0, 1]";
    size_t start = 0;
    for (size_t i = 0; i <= m.arg.size(); ++i) {
      if (i < m.arg.size() && m.arg[i] != ',') continue;
      const Result<double> q = ParseDouble(m.arg.substr(start, i - start));
      if (!q.ok() || !(*q >= 0.0 && *q <= 1.0)) {
        return Status::InvalidArgument(bad);
      }
      qs.push_back(*q);
      start = i + 1;
    }
    if (qs.empty()) return Status::InvalidArgument(bad);
  }
  return qs;
}

struct CsrSpecParams {
  CsrParams params;
  int64_t attributes = 1;
};

Result<CsrSpecParams> ParseCsrSpec(const ScenarioSpec& spec) {
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams(
      "protocol.", {"bins", "levels", "cutoff_base", "cutoff_slope",
                    "cutoff_enabled", "mode", "multiplicity", "attributes"}));
  DYNAGG_RETURN_IF_ERROR(ValidateMultiplicitySpec(spec));
  DYNAGG_RETURN_IF_ERROR(ParseCounterQuantilesSpec(spec).status());
  CsrSpecParams out;
  CsrParams& params = out.params;
  DYNAGG_ASSIGN_OR_RETURN(const int64_t bins,
                          spec.ParamInt("protocol.bins", params.bins));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t levels,
                          spec.ParamInt("protocol.levels", params.levels));
  DYNAGG_RETURN_IF_ERROR(CheckSketchShape(bins, levels));
  DYNAGG_ASSIGN_OR_RETURN(
      params.cutoff_base,
      spec.ParamDouble("protocol.cutoff_base", params.cutoff_base));
  DYNAGG_ASSIGN_OR_RETURN(
      params.cutoff_slope,
      spec.ParamDouble("protocol.cutoff_slope", params.cutoff_slope));
  DYNAGG_ASSIGN_OR_RETURN(
      params.cutoff_enabled,
      spec.ParamBool("protocol.cutoff_enabled", params.cutoff_enabled));
  DYNAGG_ASSIGN_OR_RETURN(params.mode, ParseGossipMode(spec));
  DYNAGG_ASSIGN_OR_RETURN(out.attributes,
                          spec.ParamInt("protocol.attributes", 1));
  if (out.attributes < 1) {
    return Status::InvalidArgument("protocol.attributes must be >= 1");
  }
  params.bins = static_cast<int>(bins);
  params.levels = static_cast<int>(levels);
  return out;
}

Result<SwarmHandle> MakeCountSketchReset(const TrialContext& ctx,
                                         EnvHandle& env) {
  DYNAGG_ASSIGN_OR_RETURN(const CsrSpecParams cfg, ParseCsrSpec(*ctx.spec));
  const CsrParams params = cfg.params;
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  DYNAGG_ASSIGN_OR_RETURN(std::vector<int64_t> mult,
                          Multiplicities(ctx, n));
  auto box = std::make_shared<CountSwarmBox<CsrSwarm, CsrParams>>(
      std::move(mult), params);
  CsrSwarm* swarm = &box->swarm;
  // One byte-sized age counter per (bin, level) slot.
  SwarmHandle h = CountingHandle(
      std::move(box), static_cast<double>(params.bins) * params.levels);
  h.gossip_bytes = SketchGossipBytes(params.bins, params.levels,
                                     cfg.attributes);

  // Fig 6's bit-counter distribution: pool the N[n][k] age counters over
  // all hosts and bins after the last round and report the per-bit CDF of
  // the finite counters (infinity = the level was never sourced), clamping
  // the deep tail into the last bucket. Every level is emitted so the
  // bucket structure is seed-independent (trials must align for pooling);
  // levels that effectively never appear (< n/100 + 1 finite counters, as
  // in the legacy harness) are suppressed at assembly via min_key_total —
  // after cross-trial pooling when aggregating.
  //
  // The second extra selector, counter_quantiles(q1, q2, ...), reports the
  // spatial ablation's per-bit counter-age quantiles instead: one series
  // point per sufficiently-sourced bit (>= n/50 + 1 finite counters, the
  // legacy convention), quantiles over a bucketed histogram spanning
  // [0, record.counter_hist_max) with record.counter_hist_buckets buckets.
  h.finish = [swarm, params, n](const TrialContext& ctx,
                                Recorder& rec) -> Status {
    if (MetricRequested(*ctx.spec, "cdf(counter)")) {
      DYNAGG_ASSIGN_OR_RETURN(const int64_t max_counter,
                              ctx.spec->ParamInt("record.max_counter", 12));
      if (max_counter < 1 || max_counter >= kCsrInfinity) {
        return Status::InvalidArgument(
            "record.max_counter must be in [1, 254]");
      }
      const int max_c = static_cast<int>(max_counter);
      std::vector<std::vector<int64_t>> histograms(
          params.levels, std::vector<int64_t>(max_c + 1, 0));
      for (HostId id = 0; id < n; ++id) {
        const CountSketchResetNode& node = swarm->node(id);
        for (int b = 0; b < params.bins; ++b) {
          for (int k = 0; k < params.levels; ++k) {
            const uint8_t c = node.counter(b, k);
            if (c == kCsrInfinity) continue;
            ++histograms[k][c <= max_c ? c : max_c];
          }
        }
      }
      HistogramRecord* record = rec.MutableHistogram(
          "counter_cdf", /*key_name=*/"bit", "counter_value", "cdf",
          /*cumulative=*/true, /*min_key_total=*/n / 100 + 1);
      for (int k = 0; k < params.levels; ++k) {
        for (int c = 0; c <= max_c; ++c) {
          record->buckets.push_back({static_cast<double>(k),
                                     static_cast<double>(c),
                                     histograms[k][c]});
        }
      }
    }
    DYNAGG_ASSIGN_OR_RETURN(const std::vector<double> quantiles,
                            ParseCounterQuantilesSpec(*ctx.spec));
    if (!quantiles.empty()) {
      DYNAGG_ASSIGN_OR_RETURN(
          const double hist_max,
          ctx.spec->ParamDouble("record.counter_hist_max", 64.0));
      DYNAGG_ASSIGN_OR_RETURN(
          const int64_t hist_buckets,
          ctx.spec->ParamInt("record.counter_hist_buckets", 64));
      if (hist_max <= 0 || hist_buckets < 1) {
        return Status::InvalidArgument(
            "record.counter_hist_max must be > 0 and "
            "record.counter_hist_buckets >= 1");
      }
      for (int k = 0; k < params.levels; ++k) {
        Histogram hist(0, hist_max, static_cast<int>(hist_buckets));
        int64_t finite = 0;
        for (HostId id = 0; id < n; ++id) {
          const CountSketchResetNode& node = swarm->node(id);
          for (int b = 0; b < params.bins; ++b) {
            const uint8_t c = node.counter(b, k);
            if (c == kCsrInfinity) continue;
            hist.Add(c);
            ++finite;
          }
        }
        // Skip bits that effectively never appear, as the legacy spatial
        // ablation did (quantiles of a near-empty histogram are noise).
        if (finite < n / 50 + 1) continue;
        for (const double q : quantiles) {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%g", q * 100.0);
          rec.AddSeriesPoint("bit", "counter_p" + std::string(buf),
                             static_cast<double>(k), hist.Quantile(q));
        }
      }
    }
    return Status::OK();
  };
  return h;
}

// ------------------------------------------------------- invert-average ---

struct InvertAverageSpecParams {
  InvertAverageParams params;
  int64_t attributes = 1;
};

Result<InvertAverageSpecParams> ParseInvertAverageSpec(
    const ScenarioSpec& spec) {
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams(
      "protocol.", {"lambda", "bins", "levels", "multiplicity",
                    "attributes"}));
  InvertAverageSpecParams out;
  InvertAverageParams& params = out.params;
  DYNAGG_ASSIGN_OR_RETURN(
      params.psr.lambda,
      spec.ParamDouble("protocol.lambda", params.psr.lambda));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t bins,
                          spec.ParamInt("protocol.bins", params.csr.bins));
  DYNAGG_ASSIGN_OR_RETURN(
      const int64_t levels,
      spec.ParamInt("protocol.levels", params.csr.levels));
  DYNAGG_RETURN_IF_ERROR(CheckSketchShape(bins, levels));
  DYNAGG_ASSIGN_OR_RETURN(
      params.count_multiplicity,
      spec.ParamInt("protocol.multiplicity", params.count_multiplicity));
  if (params.count_multiplicity < 1) {
    return Status::InvalidArgument("protocol.multiplicity must be >= 1");
  }
  DYNAGG_ASSIGN_OR_RETURN(out.attributes,
                          spec.ParamInt("protocol.attributes", 1));
  if (out.attributes < 1) {
    return Status::InvalidArgument("protocol.attributes must be >= 1");
  }
  params.csr.bins = static_cast<int>(bins);
  params.csr.levels = static_cast<int>(levels);
  return out;
}

/// Invert-Average (agg/invert_average.h): dynamic summation as
/// Count-Sketch-Reset network size x Push-Sum-Revert average. The sketch
/// cost is amortized across protocol.attributes simultaneous sums while
/// each sum only adds two doubles of Push-Sum traffic — the bandwidth
/// argument of Section IV.B, modelled by the gossip_bytes record.
Result<SwarmHandle> MakeInvertAverage(const TrialContext& ctx,
                                      EnvHandle& env) {
  DYNAGG_ASSIGN_OR_RETURN(const InvertAverageSpecParams cfg,
                          ParseInvertAverageSpec(*ctx.spec));
  const InvertAverageParams& params = cfg.params;
  const int64_t attributes = cfg.attributes;
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  auto box = std::make_shared<ValueSwarmBox<InvertAverageSwarm>>(
      UniformWorkloadValues(n, ctx.trial_seed), params);
  InvertAverageSwarm* swarm = &box->swarm;
  const std::vector<double>* values = &box->values;
  SwarmHandle h;
  h.run_round = [swarm](const Environment& e, const Population& p, Rng& r) {
    swarm->RunRound(e, p, r);
  };
  h.estimate = [swarm](HostId id) { return swarm->EstimateSum(id); };
  h.truth = [values](const Population& pop) {
    return TrueSum(*values, pop);
  };
  h.failure_values = values;
  // Push-Sum-Revert mass (3 doubles) plus the CSR counter array.
  h.state_bytes =
      3.0 * sizeof(double) +
      static_cast<double>(params.csr.bins) * params.csr.levels;
  // One shared size sketch plus two doubles of Push-Sum state per summed
  // attribute, both directions per initiated exchange.
  h.gossip_bytes =
      SketchGossipBytes(params.csr.bins, params.csr.levels, 1) +
      static_cast<double>(attributes) * 2.0 * (2.0 * sizeof(double));
  MaybeSetMeter(h, swarm);
  MaybeSetThreads(h, swarm);
  MaybeSetOnJoin(h, swarm);
  h.keepalive = std::move(box);
  return h;
}

// ---------------------------------------------------- serialized facade ---

/// A population of NodeAggregator facades (agg/aggregator.h) gossiping
/// through their serialized wire payloads — the deployment path, driven
/// like a swarm. Exchanges are sequential within a round in a shuffled
/// alive order, mirroring the push/pull swarms: each initiator serializes
/// its request, the peer merges it and replies, the initiator merges the
/// reply and closes its round.
class NodeAggregatorSwarm {
 public:
  NodeAggregatorSwarm(const std::vector<double>& values,
                      const AggregatorConfig& config) {
    aggs_.reserve(values.size());
    for (size_t i = 0; i < values.size(); ++i) {
      aggs_.emplace_back(/*device_id=*/static_cast<uint64_t>(i), values[i],
                         config);
    }
  }

  void RunRound(const Environment& env, const Population& pop, Rng& rng) {
    kernel_.PlanExchangeRound(env, pop, rng);
    kernel_.ForEachSlot([this](HostId i, HostId peer) {
      const std::vector<uint8_t> request = aggs_[i].BeginRound();
      if (peer != kInvalidHost) {
        Result<std::vector<uint8_t>> reply =
            aggs_[peer].HandleMessage(request);
        // In-process payloads cannot be malformed; a failure is a bug.
        DYNAGG_CHECK(reply.ok());
        DYNAGG_CHECK(aggs_[i].HandleReply(*reply).ok());
        if (meter_ != nullptr) {
          meter_->RecordMessage(static_cast<int64_t>(request.size()));
          meter_->RecordMessage(static_cast<int64_t>(reply->size()));
        }
      }
      aggs_[i].EndRound();
    });
  }

  const NodeAggregator& device(HostId id) const { return aggs_[id]; }
  void set_traffic_meter(TrafficMeter* meter) { meter_ = meter; }

 private:
  std::vector<NodeAggregator> aggs_;
  TrafficMeter* meter_ = nullptr;
  RoundKernel kernel_;
};

struct NodeAggregatorSpecParams {
  AggregatorConfig config;
  std::string metric;
};

Result<NodeAggregatorSpecParams> ParseNodeAggregatorSpec(
    const ScenarioSpec& spec) {
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams(
      "protocol.", {"lambda", "bins", "levels", "multiplicity", "metric"}));
  NodeAggregatorSpecParams out;
  AggregatorConfig& config = out.config;
  DYNAGG_ASSIGN_OR_RETURN(config.lambda,
                          spec.ParamDouble("protocol.lambda", config.lambda));
  DYNAGG_ASSIGN_OR_RETURN(
      const int64_t bins,
      spec.ParamInt("protocol.bins", config.csr.bins));
  DYNAGG_ASSIGN_OR_RETURN(
      const int64_t levels,
      spec.ParamInt("protocol.levels", config.csr.levels));
  DYNAGG_ASSIGN_OR_RETURN(
      config.count_multiplicity,
      spec.ParamInt("protocol.multiplicity", config.count_multiplicity));
  DYNAGG_ASSIGN_OR_RETURN(out.metric,
                          spec.ParamString("protocol.metric", "average"));
  if (config.lambda < 0.0 || config.lambda > 1.0) {
    return Status::InvalidArgument("protocol.lambda must be in [0, 1]");
  }
  DYNAGG_RETURN_IF_ERROR(CheckSketchShape(bins, levels));
  if (config.count_multiplicity < 1) {
    return Status::InvalidArgument("protocol.multiplicity must be >= 1");
  }
  if (out.metric != "average" && out.metric != "count" &&
      out.metric != "sum") {
    return Status::InvalidArgument(
        "protocol.metric must be average, count or sum, got '" + out.metric +
        "'");
  }
  config.csr.bins = static_cast<int>(bins);
  config.csr.levels = static_cast<int>(levels);
  return out;
}

Result<SwarmHandle> MakeNodeAggregator(const TrialContext& ctx,
                                       EnvHandle& env) {
  DYNAGG_ASSIGN_OR_RETURN(const NodeAggregatorSpecParams parsed,
                          ParseNodeAggregatorSpec(*ctx.spec));
  const AggregatorConfig& config = parsed.config;
  const std::string& metric = parsed.metric;

  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  auto box = std::make_shared<ValueSwarmBox<NodeAggregatorSwarm>>(
      UniformWorkloadValues(n, ctx.trial_seed), config);
  NodeAggregatorSwarm* swarm = &box->swarm;
  const std::vector<double>* values = &box->values;

  SwarmHandle h;
  h.run_round = [swarm](const Environment& e, const Population& p, Rng& r) {
    swarm->RunRound(e, p, r);
  };
  if (metric == "average") {
    h.estimate = [swarm](HostId id) {
      return swarm->device(id).AverageEstimate();
    };
    h.truth = [values](const Population& pop) {
      return TrueAverage(*values, pop);
    };
  } else if (metric == "count") {
    h.estimate = [swarm](HostId id) {
      return swarm->device(id).CountEstimate();
    };
    h.truth = [](const Population& pop) {
      return static_cast<double>(pop.num_alive());
    };
  } else if (metric == "sum") {
    h.estimate = [swarm](HostId id) {
      return swarm->device(id).SumEstimate();
    };
    h.truth = [values](const Population& pop) {
      return TrueSum(*values, pop);
    };
  } else {
    return Status::InvalidArgument(
        "protocol.metric must be average, count or sum, got '" + metric +
        "'");
  }
  h.failure_values = values;
  // Push-Sum-Revert mass (3 doubles) plus the CSR counter array.
  h.state_bytes = 3.0 * sizeof(double) +
                  static_cast<double>(config.csr.bins) * config.csr.levels;
  MaybeSetMeter(h, swarm);
  MaybeSetThreads(h, swarm);
  h.keepalive = std::move(box);
  return h;
}

// ------------------------------------------------- sketch accuracy table ---

/// Monte-Carlo FM-sketch accuracy (the in-text "64 buckets for an expected
/// error of 9.7%" table, formerly bench/tab_sketch_error): inserts
/// protocol.count unique objects into a fresh sketch protocol.samples times
/// and reports the relative-error statistics of the estimator. No gossip,
/// no environment, no rounds — a whole-trial runner swept over
/// protocol.buckets. The seed convention (DeriveSeed(seed, sample * 1000 +
/// buckets)) reproduces the retired bench main bit-identically.
struct FmAccuracySpecParams {
  int64_t buckets = 64;
  int64_t levels = 32;
  int64_t samples = 200;
  int64_t count = 20000;
};

Result<FmAccuracySpecParams> ParseFmAccuracySpec(const ScenarioSpec& spec) {
  DYNAGG_RETURN_IF_ERROR(
      spec.CheckParams("protocol.", {"buckets", "levels", "samples", "count"}));
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams("seeds.", {}));
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams("record.", {}));
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams("failure.", {}));
  // The default `rms` selector maps onto the protocol's own error scalars,
  // the tag-tree convention for custom runners.
  DYNAGG_RETURN_IF_ERROR(CheckMetricsSupported(spec, {"rms"}));
  FmAccuracySpecParams out;
  DYNAGG_ASSIGN_OR_RETURN(out.buckets,
                          spec.ParamInt("protocol.buckets", out.buckets));
  DYNAGG_ASSIGN_OR_RETURN(out.levels,
                          spec.ParamInt("protocol.levels", out.levels));
  DYNAGG_ASSIGN_OR_RETURN(out.samples,
                          spec.ParamInt("protocol.samples", out.samples));
  DYNAGG_ASSIGN_OR_RETURN(out.count,
                          spec.ParamInt("protocol.count", out.count));
  if (out.buckets < 1 || out.levels < 1 || out.samples < 1 ||
      out.count < 1) {
    return Status::InvalidArgument(
        "protocol.buckets, protocol.levels, protocol.samples and "
        "protocol.count must be >= 1");
  }
  return out;
}

Status RunFmAccuracy(const TrialContext& ctx, Recorder& rec) {
  DYNAGG_ASSIGN_OR_RETURN(const FmAccuracySpecParams cfg,
                          ParseFmAccuracySpec(*ctx.spec));
  const int64_t buckets = cfg.buckets;
  const int64_t levels = cfg.levels;
  const int64_t samples = cfg.samples;
  const int64_t count = cfg.count;

  RunningStat rel_error;
  RunningStat signed_error;
  for (int64_t sample = 0; sample < samples; ++sample) {
    FmSketch sketch(static_cast<int>(buckets), static_cast<int>(levels));
    const uint64_t sample_seed =
        DeriveSeed(ctx.trial_seed, sample * 1000 + buckets);
    for (int64_t i = 0; i < count; ++i) {
      sketch.InsertObject(HashCombine(sample_seed, i), sample_seed);
    }
    const double rel = (sketch.EstimateCount() - count) / count;
    rel_error.Add(std::abs(rel));
    signed_error.Add(rel);
  }
  rec.AddScalar("mean_rel_error", rel_error.mean());
  rec.AddScalar("rms_rel_error",
                std::sqrt(rel_error.mean() * rel_error.mean() +
                          rel_error.variance()));
  rec.AddScalar("bias", signed_error.mean());
  return Status::OK();
}

// ------------------------------------------------------ overlay baseline ---

/// TAG spanning-tree aggregation over repeated epochs under churn,
/// reproducing the loop of ablation_tree_vs_gossip: each epoch floods a
/// fresh BFS tree from the root, runs one tree-depth-sized epoch under a
/// churn plan drawn from a shared stream, revives the leader, and records
/// the leader's error against the live truth. The default `rms` metric
/// selector maps onto the protocol's own error scalars
/// (tag_mean_abs_err, tag_failed_epochs_pct). Epochs are tree-depth-sized
/// rather than fixed-length, so this protocol owns its whole trial loop
/// (ProtocolDef::run_custom) instead of registering a SwarmFactory.
struct TagTreeSpecParams {
  int64_t epochs = 30;
  int64_t root = 0;
  FailureConfig fail;
};

Result<TagTreeSpecParams> ParseTagTreeSpec(const ScenarioSpec& spec) {
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams("protocol.", {"epochs", "root"}));
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams("seeds.", {"round_stream",
                                                     "failure_stream"}));
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams("record.", {}));
  DYNAGG_RETURN_IF_ERROR(CheckMetricsSupported(spec, {"rms"}));
  TagTreeSpecParams out;
  DYNAGG_ASSIGN_OR_RETURN(out.epochs,
                          spec.ParamInt("protocol.epochs", out.epochs));
  DYNAGG_ASSIGN_OR_RETURN(out.root, spec.ParamInt("protocol.root", 0));
  DYNAGG_ASSIGN_OR_RETURN(out.fail, ParseFailureConfig(spec));
  if (out.fail.kind != FailureConfig::Kind::kNone &&
      out.fail.kind != FailureConfig::Kind::kChurn) {
    return Status::InvalidArgument(
        "tag-tree supports failure.kind none or churn");
  }
  if (out.epochs < 1) {
    return Status::InvalidArgument("protocol.epochs must be >= 1");
  }
  return out;
}

Status RunTagTree(const TrialContext& ctx, Recorder& rec) {
  const ScenarioSpec& spec = *ctx.spec;
  DYNAGG_ASSIGN_OR_RETURN(const TagTreeSpecParams cfg,
                          ParseTagTreeSpec(spec));
  const int64_t epochs = cfg.epochs;
  const int64_t root_id = cfg.root;
  const FailureConfig& fail = cfg.fail;
  DYNAGG_ASSIGN_OR_RETURN(const uint64_t fail_stream,
                          FailureStream(spec, fail));

  DYNAGG_ASSIGN_OR_RETURN(EnvHandle env, MakeEnvironment(ctx));
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  const HostId root = static_cast<HostId>(root_id);
  if (root < 0 || root >= n) {
    return Status::InvalidArgument("protocol.root out of range");
  }
  const std::vector<double> values = UniformWorkloadValues(n, ctx.trial_seed);

  Rng churn_rng(DeriveSeed(ctx.trial_seed, fail_stream));
  Population pop(n);
  RunningStat err;
  int failed_epochs = 0;
  int round = 0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const SpanningTree tree = BuildBfsTree(*env.env, pop, root);
    FailurePlan churn;
    if (fail.kind == FailureConfig::Kind::kChurn) {
      churn = FailurePlan::Churn(n, round, round + tree.max_depth + 1,
                                 fail.death_prob, ChurnReturnProb(fail),
                                 churn_rng);
    }
    const TagEpochResult result =
        RunTagEpoch(tree, values, pop, churn, round);
    round += tree.max_depth + 1;
    // Keep the leader alive so epochs stay comparable.
    pop.Revive(root);
    if (!result.valid || result.count == 0) {
      ++failed_epochs;
      continue;
    }
    const double truth = TrueAverage(values, pop);
    err.Add(std::abs(result.average - truth));
  }

  rec.AddScalar("tag_mean_abs_err", err.mean());
  rec.AddScalar("tag_failed_epochs_pct",
                100.0 * failed_epochs / static_cast<double>(epochs));
  return Status::OK();
}

// --------------------------------------------------- extremes ablation ---

struct ExtremeRecoverySpecParams {
  ExtremeParams extreme;
  double winner_value = 1000.0;
  double runner_up_value = 999.0;
  int64_t steady_rounds = 40;
  int64_t warmup_rounds = 15;
  int64_t sample_stride = 97;
  int64_t recover_rounds = 100;
  int64_t recover_pct = 95;
};

Result<ExtremeRecoverySpecParams> ParseExtremeRecoverySpec(
    const ScenarioSpec& spec) {
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams(
      "protocol.", {"cutoff", "mode", "winner_value", "runner_up_value",
                    "steady_rounds", "warmup_rounds", "sample_stride",
                    "recover_rounds", "recover_pct"}));
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams("seeds.", {"round_stream"}));
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams("record.", {}));
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams("failure.", {}));
  // Like the other custom runners, the default `rms` selector stands for
  // the protocol's own scalar records.
  DYNAGG_RETURN_IF_ERROR(CheckMetricsSupported(spec, {"rms"}));
  ExtremeRecoverySpecParams out;
  DYNAGG_ASSIGN_OR_RETURN(const int64_t cutoff,
                          spec.ParamInt("protocol.cutoff", 12));
  DYNAGG_ASSIGN_OR_RETURN(out.extreme.mode, ParseGossipMode(spec));
  DYNAGG_ASSIGN_OR_RETURN(
      out.winner_value,
      spec.ParamDouble("protocol.winner_value", out.winner_value));
  DYNAGG_ASSIGN_OR_RETURN(
      out.runner_up_value,
      spec.ParamDouble("protocol.runner_up_value", out.runner_up_value));
  DYNAGG_ASSIGN_OR_RETURN(
      out.steady_rounds,
      spec.ParamInt("protocol.steady_rounds", out.steady_rounds));
  DYNAGG_ASSIGN_OR_RETURN(
      out.warmup_rounds,
      spec.ParamInt("protocol.warmup_rounds", out.warmup_rounds));
  DYNAGG_ASSIGN_OR_RETURN(
      out.sample_stride,
      spec.ParamInt("protocol.sample_stride", out.sample_stride));
  DYNAGG_ASSIGN_OR_RETURN(
      out.recover_rounds,
      spec.ParamInt("protocol.recover_rounds", out.recover_rounds));
  DYNAGG_ASSIGN_OR_RETURN(
      out.recover_pct,
      spec.ParamInt("protocol.recover_pct", out.recover_pct));
  if (cutoff < 0) {
    return Status::InvalidArgument("protocol.cutoff must be >= 0");
  }
  if (out.steady_rounds < 1 || out.warmup_rounds < 0 ||
      out.warmup_rounds >= out.steady_rounds) {
    return Status::InvalidArgument(
        "protocol.steady_rounds must be >= 1 and protocol.warmup_rounds in "
        "[0, steady_rounds)");
  }
  if (out.sample_stride < 1 || out.recover_rounds < 1 ||
      out.recover_pct < 1 || out.recover_pct > 100) {
    return Status::InvalidArgument(
        "protocol.sample_stride and protocol.recover_rounds must be >= 1 "
        "and protocol.recover_pct in [1, 100]");
  }
  out.extreme.cutoff = static_cast<int>(cutoff);
  return out;
}

/// The dynamic-extreme cutoff ablation (the paper's recipe applied to
/// max): a planted winner gossips to steady state while the runner counts
/// how many sampled hosts hold the true max and how often a too-small
/// cutoff expires the live winner (flicker); then the winner departs and
/// the runner counts rounds until a quorum of hosts reports the surviving
/// runner-up. Two phases with a mid-trial targeted kill and
/// quorum-early-exit fit no shared driver, so this is a whole-trial
/// runner; it emits steady_correct_pct / flicker_pct / rounds_to_recover
/// (-1 = never, the static cutoff = 0 mode).
Status RunExtremeRecovery(const TrialContext& ctx, Recorder& rec) {
  const ScenarioSpec& spec = *ctx.spec;
  DYNAGG_ASSIGN_OR_RETURN(const ExtremeRecoverySpecParams cfg,
                          ParseExtremeRecoverySpec(spec));
  DYNAGG_ASSIGN_OR_RETURN(EnvHandle env, MakeEnvironment(ctx));
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  if (n < 2) {
    return Status::InvalidArgument(
        "extreme-recovery needs at least 2 hosts (a winner and a "
        "runner-up)");
  }
  std::vector<double> values = UniformWorkloadValues(n, ctx.trial_seed);
  values[0] = cfg.winner_value;  // the winner that will depart
  values[1] = cfg.runner_up_value;
  std::vector<uint64_t> keys(n);
  std::iota(keys.begin(), keys.end(), uint64_t{0});
  DynamicExtremeSwarm swarm(values, keys, cfg.extreme);
  Population pop(n);
  DYNAGG_ASSIGN_OR_RETURN(const uint64_t round_stream,
                          RoundStream(spec, ctx, n));
  Rng rng(DeriveSeed(ctx.trial_seed, round_stream));

  // Phase 1: steady state. Count sampled hosts holding the true max and
  // estimates that flicker (a too-small cutoff expires live candidates
  // between refreshes).
  int64_t correct = 0;
  int64_t flickers = 0;
  int64_t samples = 0;
  for (int64_t round = 0; round < cfg.steady_rounds; ++round) {
    swarm.RunRound(*env.env, pop, rng);
    if (round < cfg.warmup_rounds) continue;
    for (HostId id = 0; id < n; id += static_cast<int>(cfg.sample_stride)) {
      ++samples;
      if (swarm.Estimate(id) == cfg.winner_value) {
        ++correct;
      } else {
        ++flickers;
      }
    }
  }
  // Phase 2: the winner departs; count rounds until the quorum reports
  // the runner-up.
  pop.Kill(0);
  int recover = -1;
  for (int64_t round = 0; round < cfg.recover_rounds; ++round) {
    swarm.RunRound(*env.env, pop, rng);
    int64_t holding = 0;
    for (const HostId id : pop.alive_ids()) {
      if (swarm.Estimate(id) == cfg.runner_up_value) ++holding;
    }
    if (holding >=
        static_cast<int64_t>(pop.num_alive()) * cfg.recover_pct / 100) {
      recover = static_cast<int>(round) + 1;
      break;
    }
  }
  rec.AddScalar("steady_correct_pct",
                100.0 * static_cast<double>(correct) /
                    static_cast<double>(samples));
  rec.AddScalar("flicker_pct", 100.0 * static_cast<double>(flickers) /
                                   static_cast<double>(samples));
  rec.AddScalar("rounds_to_recover", static_cast<double>(recover));
  return Status::OK();
}

}  // namespace

namespace internal {

void RegisterBuiltinProtocols(Registry<ProtocolDef>& registry) {
  // threads_capable marks the push-scatter protocols whose swarms expose
  // set_intra_round_threads; exchange-only rounds are inherently
  // sequential. Every entry carries a spec-only validate hook so
  // `--dry-run` rejects knob/protocol mismatches without building swarms.
  const auto swarm = [&registry](const std::string& name, SwarmFactory make,
                                 bool trace_capable, bool threads_capable,
                                 bool join_capable,
                                 std::function<Status(const ScenarioSpec&)>
                                     validate) {
    ProtocolDef def;
    def.make_swarm = std::move(make);
    def.trace_capable = trace_capable;
    def.threads_capable = threads_capable;
    def.join_capable = join_capable;
    def.validate = std::move(validate);
    DYNAGG_CHECK(registry.Register(name, std::move(def)).ok());
  };
  const auto custom = [&registry](const std::string& name,
                                  ProtocolRunner run,
                                  std::function<Status(const ScenarioSpec&)>
                                      validate,
                                  bool uses_environment = true) {
    ProtocolDef def;
    def.run_custom = std::move(run);
    def.validate = std::move(validate);
    def.uses_environment = uses_environment;
    DYNAGG_CHECK(registry.Register(name, std::move(def)).ok());
  };
  {
    ProtocolDef def;
    def.make_swarm = MakePushSum;
    def.trace_capable = true;
    def.threads_capable = true;
    def.async_capable = true;  // push mode only; the parse enforces it
    def.join_capable = true;
    def.validate = SpecValidator(ParsePushSumSpec);
    DYNAGG_CHECK(registry.Register("push-sum", std::move(def)).ok());
  }
  {
    ProtocolDef def;
    def.make_swarm = MakePushFlow;
    def.trace_capable = true;
    def.threads_capable = false;
    def.async_capable = true;
    def.join_capable = true;
    def.validate = ParsePushFlowSpec;
    DYNAGG_CHECK(registry.Register("push-flow", std::move(def)).ok());
  }
  swarm("push-sum-revert", MakePushSumRevert, /*trace_capable=*/true,
        /*threads_capable=*/true, /*join_capable=*/true,
        SpecValidator(ParsePsrSpec));
  swarm("epoch-push-sum", MakeEpochPushSum, /*trace_capable=*/true,
        /*threads_capable=*/false, /*join_capable=*/true,
        SpecValidator(ParseEpochSpec));
  swarm("full-transfer", MakeFullTransfer, /*trace_capable=*/true,
        /*threads_capable=*/true, /*join_capable=*/true,
        SpecValidator(ParseFullTransferSpec));
  swarm("extremes", MakeExtremes, /*trace_capable=*/false,
        /*threads_capable=*/false, /*join_capable=*/true,
        SpecValidator(ParseExtremesSpec));
  swarm("count-sketch", MakeCountSketch, /*trace_capable=*/true,
        /*threads_capable=*/false, /*join_capable=*/true,
        SpecValidator(ParseCountSketchSpec));
  {
    ProtocolDef def;
    def.make_swarm = MakeCountSketchReset;
    def.trace_capable = true;
    def.threads_capable = false;
    def.join_capable = true;
    def.validate = SpecValidator(ParseCsrSpec);
    def.models_gossip_bytes = true;
    def.extra_metrics = {"cdf(counter)", "counter_quantiles(*)"};
    def.extra_record_keys = {"max_counter", "counter_hist_max",
                             "counter_hist_buckets"};
    DYNAGG_CHECK(
        registry.Register("count-sketch-reset", std::move(def)).ok());
  }
  {
    ProtocolDef def;
    def.make_swarm = MakeInvertAverage;
    def.threads_capable = true;
    def.join_capable = true;
    def.models_gossip_bytes = true;
    def.validate = SpecValidator(ParseInvertAverageSpec);
    DYNAGG_CHECK(registry.Register("invert-average", std::move(def)).ok());
  }
  // The serialized facade has no state-reset wire message yet, so it stays
  // join-incapable (churn.* specs are rejected at --dry-run).
  swarm("node-aggregator", MakeNodeAggregator, /*trace_capable=*/false,
        /*threads_capable=*/false, /*join_capable=*/false,
        SpecValidator(ParseNodeAggregatorSpec));
  custom("tag-tree", RunTagTree, SpecValidator(ParseTagTreeSpec));
  // Sweeps sketch parameters over synthetic multisets: no gossip topology,
  // so the spec's environment is never built (or validated).
  custom("fm-accuracy", RunFmAccuracy, SpecValidator(ParseFmAccuracySpec),
         /*uses_environment=*/false);
  custom("extreme-recovery", RunExtremeRecovery,
         SpecValidator(ParseExtremeRecoverySpec));
}

}  // namespace internal
}  // namespace scenario
}  // namespace dynagg
