// Builtin protocol catalog.
//
// Round-based protocols (the gossip swarms) share one driver,
// DriveRoundTrial, which wraps the library's RunRounds harness
// (sim/round_driver.h) with the spec-declared failure plan, multi-metric
// recording, and RNG stream layout. All requested metrics are recorded in
// ONE pass over the rounds:
//   - rms                 per-round RMS-deviation series (record.from/every)
//   - rms_tail_mean       scalar mean RMS over rounds >= record.from
//   - rounds_to_converge  first round with RMS < record.threshold
//   - bandwidth           measured traffic via TrafficMeter + state size
//   - cdf(final_error)    per-host |estimate - truth| CDF after the last
//                         round (record.cdf_lo/cdf_hi/cdf_buckets)
// The RNG stream conventions deliberately reproduce the legacy bench
// binaries so a 1-trial scenario is numerically identical to the main() it
// replaced:
//   - values:        Rng(trial_seed), U[0,100) per host;
//   - gossip rounds: Rng(DeriveSeed(trial_seed, seeds.round_stream)),
//     where the symbolic value `hosts` resolves to the population size
//     (the per-size decorrelation convention of fig06);
//   - failure plan:  Rng(DeriveSeed(trial_seed, seeds.failure_stream)),
//     where churn plans default the stream to floor(death_prob * 1e5) —
//     the convention of ablation_tree_vs_gossip.
// The TAG overlay baseline (tag-tree) owns its whole trial loop because its
// epochs are tree-depth-sized rather than fixed-length. The node-aggregator
// protocol drives the serialized NodeAggregator facade (agg/aggregator.h)
// over the wire format, making the deployment path scenario-reachable.

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "agg/aggregator.h"
#include "agg/count_sketch.h"
#include "agg/count_sketch_reset.h"
#include "agg/epoch_push_sum.h"
#include "agg/extremes.h"
#include "agg/full_transfer.h"
#include "agg/push_sum.h"
#include "agg/push_sum_revert.h"
#include "common/rng.h"
#include "common/stats.h"
#include "scenario/trial.h"
#include "sim/bandwidth.h"
#include "sim/failure.h"
#include "sim/metrics.h"
#include "sim/population.h"
#include "sim/round_driver.h"
#include "sim/workload.h"
#include "tree/spanning_tree.h"
#include "tree/tag.h"

namespace dynagg {
namespace scenario {
namespace {

Result<GossipMode> ParseGossipMode(const ScenarioSpec& spec) {
  DYNAGG_ASSIGN_OR_RETURN(const std::string mode,
                          spec.ParamString("protocol.mode", "pushpull"));
  if (mode == "push") return GossipMode::kPush;
  if (mode == "pushpull") return GossipMode::kPushPull;
  return Status::InvalidArgument(
      "protocol.mode must be push or pushpull, got '" + mode + "'");
}

Result<RevertMode> ParseRevertMode(const ScenarioSpec& spec) {
  DYNAGG_ASSIGN_OR_RETURN(const std::string revert,
                          spec.ParamString("protocol.revert", "fixed"));
  if (revert == "fixed") return RevertMode::kFixed;
  if (revert == "adaptive") return RevertMode::kAdaptive;
  return Status::InvalidArgument(
      "protocol.revert must be fixed or adaptive, got '" + revert + "'");
}

// --------------------------------------------------------- record config ---

/// Which of the round driver's metrics the spec requests.
struct MetricFlags {
  bool rms = false;
  bool tail_mean = false;
  bool convergence = false;
  bool bandwidth = false;
  bool final_error_cdf = false;
  /// Any selector the caller listed as extra (handled after the loop).
  bool extra = false;

  bool NeedsRoundEvaluation() const {
    return rms || tail_mean || convergence;
  }
  /// Early convergence stop is only sound when no other metric needs the
  /// remaining rounds.
  bool OnlyConvergence() const {
    return convergence && !rms && !tail_mean && !bandwidth &&
           !final_error_cdf && !extra;
  }
};

/// Validates the spec's metric list against the round driver's catalog plus
/// the caller's `extra` selectors and flags what is requested.
Result<MetricFlags> ClassifyDriverMetrics(
    const ScenarioSpec& spec, const std::vector<std::string>& extra) {
  std::vector<std::string> supported = {"rms", "rms_tail_mean",
                                        "rounds_to_converge", "bandwidth",
                                        "cdf(final_error)"};
  supported.insert(supported.end(), extra.begin(), extra.end());
  DYNAGG_RETURN_IF_ERROR(CheckMetricsSupported(spec, supported));
  MetricFlags flags;
  flags.rms = MetricRequested(spec, "rms");
  flags.tail_mean = MetricRequested(spec, "rms_tail_mean");
  flags.convergence = MetricRequested(spec, "rounds_to_converge");
  flags.bandwidth = MetricRequested(spec, "bandwidth");
  flags.final_error_cdf = MetricRequested(spec, "cdf(final_error)");
  for (const std::string& selector : extra) {
    flags.extra = flags.extra || MetricRequested(spec, selector);
  }
  return flags;
}

struct RecordConfig {
  int from = 0;
  int every = 1;
  double threshold = 1.0;
  bool threshold_relative = false;
  double cdf_lo = 0.0;
  double cdf_hi = 0.0;
  int cdf_buckets = 20;
};

Result<RecordConfig> ParseRecordConfig(
    const ScenarioSpec& spec, const std::vector<std::string>& extra_keys) {
  if (spec.HasParam("record.kind")) {
    return Status::InvalidArgument(
        "record.kind was replaced by the top-level metric list: use "
        "'record = rms' (per_round), 'record = rms_tail_mean' (tail_mean) "
        "or 'record = rounds_to_converge' (convergence)");
  }
  std::vector<std::string> allowed = {
      "from",   "every",  "threshold", "threshold_relative",
      "cdf_lo", "cdf_hi", "cdf_buckets"};
  allowed.insert(allowed.end(), extra_keys.begin(), extra_keys.end());
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams("record.", allowed));
  RecordConfig cfg;
  DYNAGG_ASSIGN_OR_RETURN(const int64_t from,
                          spec.ParamInt("record.from", 0));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t every,
                          spec.ParamInt("record.every", 1));
  DYNAGG_ASSIGN_OR_RETURN(cfg.threshold,
                          spec.ParamDouble("record.threshold", 1.0));
  DYNAGG_ASSIGN_OR_RETURN(
      cfg.threshold_relative,
      spec.ParamBool("record.threshold_relative", false));
  DYNAGG_ASSIGN_OR_RETURN(cfg.cdf_lo, spec.ParamDouble("record.cdf_lo", 0.0));
  DYNAGG_ASSIGN_OR_RETURN(cfg.cdf_hi, spec.ParamDouble("record.cdf_hi", 0.0));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t cdf_buckets,
                          spec.ParamInt("record.cdf_buckets", 20));
  if (from < 0 || every < 1) {
    return Status::InvalidArgument(
        "record.from must be >= 0 and record.every >= 1");
  }
  cfg.from = static_cast<int>(from);
  cfg.every = static_cast<int>(every);
  cfg.cdf_buckets = static_cast<int>(cdf_buckets);
  return cfg;
}

// -------------------------------------------------------- failure config ---

struct FailureConfig {
  enum class Kind { kNone, kKillRandomFraction, kKillTopFraction, kChurn };
  Kind kind = Kind::kNone;
  int round = 0;          // kill_* trigger round
  double fraction = 0.5;  // kill_* fraction
  int start = 0;          // churn window
  int end = -1;           // churn window end; -1 = spec.rounds
  double death_prob = 0.0;
  double return_factor = 4.0;
  double return_prob = -1.0;  // -1 = death_prob * return_factor
  HostId pin_alive = kInvalidHost;
};

Result<FailureConfig> ParseFailureConfig(const ScenarioSpec& spec) {
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams(
      "failure.", {"kind", "round", "fraction", "start", "end", "death_prob",
                   "return_factor", "return_prob", "pin_alive"}));
  FailureConfig cfg;
  DYNAGG_ASSIGN_OR_RETURN(const std::string kind,
                          spec.ParamString("failure.kind", "none"));
  if (kind == "none") {
    cfg.kind = FailureConfig::Kind::kNone;
  } else if (kind == "kill_random_fraction") {
    cfg.kind = FailureConfig::Kind::kKillRandomFraction;
  } else if (kind == "kill_top_fraction") {
    cfg.kind = FailureConfig::Kind::kKillTopFraction;
  } else if (kind == "churn") {
    cfg.kind = FailureConfig::Kind::kChurn;
  } else {
    return Status::InvalidArgument(
        "failure.kind must be none, kill_random_fraction, "
        "kill_top_fraction or churn, got '" +
        kind + "'");
  }
  DYNAGG_ASSIGN_OR_RETURN(const int64_t round,
                          spec.ParamInt("failure.round", 0));
  DYNAGG_ASSIGN_OR_RETURN(cfg.fraction,
                          spec.ParamDouble("failure.fraction", 0.5));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t start,
                          spec.ParamInt("failure.start", 0));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t end,
                          spec.ParamInt("failure.end", -1));
  DYNAGG_ASSIGN_OR_RETURN(cfg.death_prob,
                          spec.ParamDouble("failure.death_prob", 0.0));
  DYNAGG_ASSIGN_OR_RETURN(cfg.return_factor,
                          spec.ParamDouble("failure.return_factor", 4.0));
  DYNAGG_ASSIGN_OR_RETURN(cfg.return_prob,
                          spec.ParamDouble("failure.return_prob", -1.0));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t pin,
                          spec.ParamInt("failure.pin_alive", kInvalidHost));
  cfg.round = static_cast<int>(round);
  cfg.start = static_cast<int>(start);
  cfg.end = static_cast<int>(end);
  cfg.pin_alive = static_cast<HostId>(pin);
  if (cfg.fraction < 0.0 || cfg.fraction > 1.0) {
    return Status::InvalidArgument("failure.fraction must be in [0, 1]");
  }
  if (cfg.death_prob < 0.0 || cfg.death_prob > 1.0) {
    return Status::InvalidArgument("failure.death_prob must be in [0, 1]");
  }
  return cfg;
}

double ChurnReturnProb(const FailureConfig& cfg) {
  return cfg.return_prob >= 0.0 ? cfg.return_prob
                                : cfg.death_prob * cfg.return_factor;
}

/// Resolves the failure RNG stream: explicit seeds.failure_stream wins;
/// churn plans default to floor(death_prob * 1e5) — the stream convention
/// of the legacy churn ablation — and everything else to stream 2.
Result<uint64_t> FailureStream(const ScenarioSpec& spec,
                               const FailureConfig& cfg) {
  if (spec.HasParam("seeds.failure_stream")) {
    DYNAGG_ASSIGN_OR_RETURN(const int64_t stream,
                            spec.ParamInt("seeds.failure_stream", 2));
    return static_cast<uint64_t>(stream);
  }
  if (cfg.kind == FailureConfig::Kind::kChurn) {
    return static_cast<uint64_t>(cfg.death_prob * 1e5);
  }
  return uint64_t{2};
}

/// Resolves the gossip-round RNG stream: an integer, or the symbolic value
/// `hosts` which resolves to the population size `n` (fig06 decorrelates
/// its per-size runs this way).
Result<uint64_t> RoundStream(const ScenarioSpec& spec, int n) {
  DYNAGG_ASSIGN_OR_RETURN(const std::string text,
                          spec.ParamString("seeds.round_stream", "1"));
  if (text == "hosts") return static_cast<uint64_t>(n);
  DYNAGG_ASSIGN_OR_RETURN(const int64_t stream,
                          spec.ParamInt("seeds.round_stream", 1));
  return static_cast<uint64_t>(stream);
}

/// Builds the scripted plan. `values` backs kill_top_fraction and may be
/// null for protocols without per-host scalar values.
Result<FailurePlan> BuildFailurePlan(const FailureConfig& cfg, int n,
                                     int rounds,
                                     const std::vector<double>* values,
                                     Rng& fail_rng) {
  switch (cfg.kind) {
    case FailureConfig::Kind::kNone:
      return FailurePlan();
    case FailureConfig::Kind::kKillRandomFraction:
      return FailurePlan::KillRandomFraction(n, cfg.round, cfg.fraction,
                                             fail_rng);
    case FailureConfig::Kind::kKillTopFraction:
      if (values == nullptr) {
        return Status::InvalidArgument(
            "failure.kind = kill_top_fraction requires a value-based "
            "protocol");
      }
      return FailurePlan::KillTopFraction(*values, cfg.round, cfg.fraction);
    case FailureConfig::Kind::kChurn: {
      const int end = cfg.end >= 0 ? cfg.end : rounds;
      return FailurePlan::Churn(n, cfg.start, end, cfg.death_prob,
                                ChurnReturnProb(cfg), fail_rng);
    }
  }
  return Status::InvalidArgument("unreachable failure kind");
}

// ------------------------------------------------------------ round loop ---

/// Swarm adapter slotted into RunRounds: advances trace-backed
/// environments, re-pins a host alive (between the failure application and
/// the gossip exchange, exactly where the legacy benches revive their
/// leader), then delegates to the real swarm.
template <typename Swarm>
struct RoundHooks {
  Swarm& swarm;
  Environment* env;
  SimTime advance_period;
  HostId pin_alive;
  int round = 0;

  void RunRound(const Environment& e, Population& pop, Rng& rng) {
    if (advance_period > 0) {
      env->AdvanceTo(static_cast<SimTime>(round + 1) * advance_period);
    }
    if (pin_alive != kInvalidHost) pop.Revive(pin_alive);
    swarm.RunRound(e, pop, rng);
    ++round;
  }
};

/// Drives `swarm` for spec.rounds rounds under the spec's environment,
/// failure plan and requested metrics, recording everything in one pass.
/// `truth` is re-evaluated every round over the live population;
/// `failure_values` backs kill_top_fraction; `state_bytes` is the
/// protocol's per-host state footprint (bandwidth record). Callers that
/// handle additional metric selectors after the loop list them in
/// `extra_metrics` (and extra record.* knobs in `extra_record_keys`).
template <typename Swarm>
Status DriveRoundTrial(const TrialContext& ctx, EnvHandle& env, Swarm& swarm,
                       const std::function<double(HostId)>& estimate,
                       const std::function<double(const Population&)>& truth,
                       const std::vector<double>* failure_values,
                       double state_bytes, Recorder& rec,
                       const std::vector<std::string>& extra_metrics = {},
                       const std::vector<std::string>& extra_record_keys =
                           {}) {
  const ScenarioSpec& spec = *ctx.spec;
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams("seeds.", {"round_stream",
                                                     "failure_stream"}));
  DYNAGG_ASSIGN_OR_RETURN(const MetricFlags metrics,
                          ClassifyDriverMetrics(spec, extra_metrics));
  DYNAGG_ASSIGN_OR_RETURN(const RecordConfig cfg,
                          ParseRecordConfig(spec, extra_record_keys));
  DYNAGG_ASSIGN_OR_RETURN(const FailureConfig fail, ParseFailureConfig(spec));
  const int n = env.env->num_hosts();
  DYNAGG_ASSIGN_OR_RETURN(const uint64_t round_stream,
                          RoundStream(spec, n));
  DYNAGG_ASSIGN_OR_RETURN(const uint64_t fail_stream,
                          FailureStream(spec, fail));

  if (metrics.tail_mean && cfg.from >= spec.rounds) {
    // An empty averaging window would fabricate a perfect score of 0.
    return Status::InvalidArgument(
        "record.from = " + std::to_string(cfg.from) +
        " leaves no rounds to average (rounds = " +
        std::to_string(spec.rounds) + ")");
  }
  if (metrics.final_error_cdf &&
      (cfg.cdf_buckets < 1 || cfg.cdf_hi <= cfg.cdf_lo)) {
    return Status::InvalidArgument(
        "cdf(final_error) needs record.cdf_hi > record.cdf_lo and "
        "record.cdf_buckets >= 1");
  }

  constexpr bool kHasMeter = requires(Swarm& s, TrafficMeter* m) {
    s.set_traffic_meter(m);
  };
  TrafficMeter meter;
  if (metrics.bandwidth) {
    if constexpr (kHasMeter) {
      swarm.set_traffic_meter(&meter);
    } else {
      return Status::InvalidArgument(
          "protocol '" + spec.protocol +
          "' does not support the bandwidth metric");
    }
  }

  Rng fail_rng(DeriveSeed(ctx.trial_seed, fail_stream));
  DYNAGG_ASSIGN_OR_RETURN(
      const FailurePlan plan,
      BuildFailurePlan(fail, n, spec.rounds, failure_values, fail_rng));
  if (fail.pin_alive != kInvalidHost &&
      (fail.pin_alive < 0 || fail.pin_alive >= n)) {
    return Status::InvalidArgument("failure.pin_alive out of range");
  }

  Population pop(n);
  Rng rng(DeriveSeed(ctx.trial_seed, round_stream));

  RunningStat tail;
  int converged_round = -1;
  const bool early_stop = metrics.OnlyConvergence();
  // Declare the series up front: a unit whose recording window is empty
  // (record.from >= its rounds under a rounds sweep) must still carry the
  // series so batches stay structurally identical across units.
  if (metrics.rms) rec.MutableSeries("round", "rms");
  const auto on_round_end = [&](int round) {
    if (!metrics.NeedsRoundEvaluation()) return true;
    const double tr = truth(pop);
    const double rms = RmsDeviationOverAlive(pop, tr, estimate);
    if (metrics.rms && round >= cfg.from &&
        (round - cfg.from) % cfg.every == 0) {
      rec.AddSeriesPoint("round", "rms", static_cast<double>(round + 1),
                         rms);
    }
    if (metrics.tail_mean && round >= cfg.from) tail.Add(rms);
    if (metrics.convergence && converged_round < 0) {
      const double limit =
          cfg.threshold_relative ? cfg.threshold * tr : cfg.threshold;
      if (rms < limit) {
        converged_round = round + 1;
        // Later rounds cannot change the result; stop paying for them
        // unless another metric still needs them.
        if (early_stop) return false;
      }
    }
    return true;
  };

  RoundHooks<Swarm> hooks{swarm, env.env.get(), env.advance_period,
                          fail.pin_alive};
  const int executed = RunRoundsUntil(hooks, *env.env, pop, plan,
                                      spec.rounds, rng, on_round_end);

  if (metrics.tail_mean) rec.AddScalar("rms_tail_mean", tail.mean());
  if (metrics.convergence) {
    if (converged_round < 0 && !spec.aggregates.empty()) {
      // Averaging the -1 "never converged" sentinel into mean/stddev would
      // produce a plausible-looking but meaningless statistic.
      return Status::InvalidArgument(
          "trial " + std::to_string(ctx.trial) +
          " did not converge within " + std::to_string(spec.rounds) +
          " rounds; rounds_to_converge = -1 cannot be aggregated (raise "
          "rounds or drop aggregate)");
    }
    rec.AddScalar("rounds_to_converge",
                  static_cast<double>(converged_round));
  }
  if (metrics.bandwidth) {
    if constexpr (kHasMeter) {
      const double denom = static_cast<double>(n) * executed;
      rec.SetBandwidth(meter.total().messages / denom,
                       meter.total().bytes / denom, state_bytes);
    }
  }
  if (metrics.final_error_cdf) {
    Histogram hist(cfg.cdf_lo, cfg.cdf_hi, cfg.cdf_buckets);
    const double tr = truth(pop);
    for (const HostId id : pop.alive_ids()) {
      hist.Add(std::abs(estimate(id) - tr));
    }
    HistogramRecord* record = rec.MutableHistogram(
        "final_error_cdf", /*key_name=*/"", "final_error", "cdf",
        /*cumulative=*/true);
    for (int b = 0; b < hist.num_buckets(); ++b) {
      // Fold the out-of-range tails into the edge buckets so the CDF
      // reaches 1 over the declared range.
      int64_t count = hist.bucket_count(b);
      if (b == 0) count += hist.underflow();
      if (b == hist.num_buckets() - 1) count += hist.overflow();
      record->buckets.push_back({0.0, hist.bucket_upper(b), count});
    }
  }
  return Status::OK();
}

/// Truth callback for averaging protocols.
std::function<double(const Population&)> AverageTruth(
    const std::vector<double>& values) {
  return [&values](const Population& pop) {
    return TrueAverage(values, pop);
  };
}

Result<int> CheckedHosts(const EnvHandle& env) {
  const int n = env.env->num_hosts();
  if (n <= 0) return Status::InvalidArgument("environment has no hosts");
  return n;
}

// --------------------------------------------------- averaging protocols ---

Status RunPushSum(const TrialContext& ctx, Recorder& rec) {
  DYNAGG_RETURN_IF_ERROR(ctx.spec->CheckParams("protocol.", {"mode"}));
  DYNAGG_ASSIGN_OR_RETURN(const GossipMode mode, ParseGossipMode(*ctx.spec));
  DYNAGG_ASSIGN_OR_RETURN(EnvHandle env, MakeEnvironment(ctx));
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  const std::vector<double> values = UniformWorkloadValues(n, ctx.trial_seed);
  PushSumSwarm swarm(values, mode);
  return DriveRoundTrial(
      ctx, env, swarm, [&](HostId id) { return swarm.Estimate(id); },
      AverageTruth(values), &values, 2.0 * sizeof(double), rec);
}

Status RunPushSumRevert(const TrialContext& ctx, Recorder& rec) {
  DYNAGG_RETURN_IF_ERROR(
      ctx.spec->CheckParams("protocol.", {"lambda", "mode", "revert"}));
  DYNAGG_ASSIGN_OR_RETURN(const double lambda,
                          ctx.spec->ParamDouble("protocol.lambda", 0.01));
  DYNAGG_ASSIGN_OR_RETURN(const GossipMode mode, ParseGossipMode(*ctx.spec));
  DYNAGG_ASSIGN_OR_RETURN(const RevertMode revert,
                          ParseRevertMode(*ctx.spec));
  DYNAGG_ASSIGN_OR_RETURN(EnvHandle env, MakeEnvironment(ctx));
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  const std::vector<double> values = UniformWorkloadValues(n, ctx.trial_seed);
  PushSumRevertSwarm swarm(
      values, {.lambda = lambda, .mode = mode, .revert = revert});
  return DriveRoundTrial(
      ctx, env, swarm, [&](HostId id) { return swarm.Estimate(id); },
      AverageTruth(values), &values, 3.0 * sizeof(double), rec);
}

Status RunEpochPushSum(const TrialContext& ctx, Recorder& rec) {
  DYNAGG_RETURN_IF_ERROR(ctx.spec->CheckParams(
      "protocol.", {"epoch_length", "mode", "phase_spread"}));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t epoch_length,
                          ctx.spec->ParamInt("protocol.epoch_length", 10));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t phase_spread,
                          ctx.spec->ParamInt("protocol.phase_spread", 0));
  DYNAGG_ASSIGN_OR_RETURN(const GossipMode mode, ParseGossipMode(*ctx.spec));
  if (epoch_length < 1) {
    return Status::InvalidArgument("protocol.epoch_length must be >= 1");
  }
  if (phase_spread < 0 || phase_spread > epoch_length) {
    return Status::InvalidArgument(
        "protocol.phase_spread must be in [0, epoch_length]");
  }
  DYNAGG_ASSIGN_OR_RETURN(EnvHandle env, MakeEnvironment(ctx));
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  const std::vector<double> values = UniformWorkloadValues(n, ctx.trial_seed);
  std::vector<int> phases;
  if (phase_spread > 0) {
    phases.resize(n);
    for (int i = 0; i < n; ++i) {
      phases[i] = i % static_cast<int>(phase_spread);
    }
  }
  EpochPushSumSwarm swarm(
      values,
      EpochParams{.epoch_length = static_cast<int>(epoch_length),
                  .mode = mode},
      phases);
  return DriveRoundTrial(
      ctx, env, swarm, [&](HostId id) { return swarm.Estimate(id); },
      AverageTruth(values), &values, /*state_bytes=*/0.0, rec);
}

Status RunFullTransfer(const TrialContext& ctx, Recorder& rec) {
  DYNAGG_RETURN_IF_ERROR(
      ctx.spec->CheckParams("protocol.", {"lambda", "parcels", "window"}));
  DYNAGG_ASSIGN_OR_RETURN(const double lambda,
                          ctx.spec->ParamDouble("protocol.lambda", 0.1));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t parcels,
                          ctx.spec->ParamInt("protocol.parcels", 4));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t window,
                          ctx.spec->ParamInt("protocol.window", 3));
  if (parcels < 1 || window < 1) {
    return Status::InvalidArgument(
        "protocol.parcels and protocol.window must be >= 1");
  }
  DYNAGG_ASSIGN_OR_RETURN(EnvHandle env, MakeEnvironment(ctx));
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  const std::vector<double> values = UniformWorkloadValues(n, ctx.trial_seed);
  FullTransferSwarm swarm(values,
                          {.lambda = lambda,
                           .parcels = static_cast<int>(parcels),
                           .window = static_cast<int>(window)});
  // State: the mass plus the estimate window of <weight, value> pairs.
  const double state_bytes =
      (2.0 + 2.0 * static_cast<double>(window)) * sizeof(double);
  return DriveRoundTrial(
      ctx, env, swarm, [&](HostId id) { return swarm.Estimate(id); },
      AverageTruth(values), &values, state_bytes, rec);
}

Status RunExtremes(const TrialContext& ctx, Recorder& rec) {
  DYNAGG_RETURN_IF_ERROR(
      ctx.spec->CheckParams("protocol.", {"kind", "cutoff", "mode"}));
  DYNAGG_ASSIGN_OR_RETURN(const std::string kind_name,
                          ctx.spec->ParamString("protocol.kind", "max"));
  ExtremeKind kind;
  if (kind_name == "max") {
    kind = ExtremeKind::kMaximum;
  } else if (kind_name == "min") {
    kind = ExtremeKind::kMinimum;
  } else {
    return Status::InvalidArgument(
        "protocol.kind must be max or min, got '" + kind_name + "'");
  }
  DYNAGG_ASSIGN_OR_RETURN(const int64_t cutoff,
                          ctx.spec->ParamInt("protocol.cutoff", 12));
  DYNAGG_ASSIGN_OR_RETURN(const GossipMode mode, ParseGossipMode(*ctx.spec));
  DYNAGG_ASSIGN_OR_RETURN(EnvHandle env, MakeEnvironment(ctx));
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  const std::vector<double> values = UniformWorkloadValues(n, ctx.trial_seed);
  std::vector<uint64_t> keys(n);
  std::iota(keys.begin(), keys.end(), uint64_t{0});
  DynamicExtremeSwarm swarm(values, keys,
                            ExtremeParams{.kind = kind,
                                          .cutoff = static_cast<int>(cutoff),
                                          .mode = mode});
  const auto truth = [&values, kind](const Population& pop) {
    bool first = true;
    double best = 0.0;
    for (const HostId id : pop.alive_ids()) {
      const double v = values[id];
      if (first || (kind == ExtremeKind::kMaximum ? v > best : v < best)) {
        best = v;
        first = false;
      }
    }
    return best;
  };
  return DriveRoundTrial(
      ctx, env, swarm, [&](HostId id) { return swarm.Estimate(id); }, truth,
      &values, /*state_bytes=*/0.0, rec);
}

// ---------------------------------------------------- counting protocols ---

Result<std::vector<int64_t>> Multiplicities(const TrialContext& ctx, int n) {
  DYNAGG_ASSIGN_OR_RETURN(const int64_t mult,
                          ctx.spec->ParamInt("protocol.multiplicity", 1));
  if (mult < 0) {
    return Status::InvalidArgument("protocol.multiplicity must be >= 0");
  }
  return std::vector<int64_t>(n, mult);
}

std::function<double(const Population&)> CountTruth(
    std::vector<int64_t> multiplicities) {
  return [mult = std::move(multiplicities)](const Population& pop) {
    int64_t total = 0;
    for (const HostId id : pop.alive_ids()) total += mult[id];
    return static_cast<double>(total);
  };
}

Status RunCountSketch(const TrialContext& ctx, Recorder& rec) {
  DYNAGG_RETURN_IF_ERROR(ctx.spec->CheckParams(
      "protocol.", {"bins", "levels", "mode", "multiplicity"}));
  CountSketchParams params;
  DYNAGG_ASSIGN_OR_RETURN(const int64_t bins,
                          ctx.spec->ParamInt("protocol.bins", params.bins));
  DYNAGG_ASSIGN_OR_RETURN(
      const int64_t levels,
      ctx.spec->ParamInt("protocol.levels", params.levels));
  DYNAGG_ASSIGN_OR_RETURN(params.mode, ParseGossipMode(*ctx.spec));
  params.bins = static_cast<int>(bins);
  params.levels = static_cast<int>(levels);
  DYNAGG_ASSIGN_OR_RETURN(EnvHandle env, MakeEnvironment(ctx));
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  DYNAGG_ASSIGN_OR_RETURN(const std::vector<int64_t> mult,
                          Multiplicities(ctx, n));
  CountSketchSwarm swarm(mult, params);
  // One uint64 bit string per bin.
  const double state_bytes =
      static_cast<double>(params.bins) * sizeof(uint64_t);
  return DriveRoundTrial(
      ctx, env, swarm, [&](HostId id) { return swarm.EstimateCount(id); },
      CountTruth(mult), nullptr, state_bytes, rec);
}

Status RunCountSketchReset(const TrialContext& ctx, Recorder& rec) {
  DYNAGG_RETURN_IF_ERROR(ctx.spec->CheckParams(
      "protocol.", {"bins", "levels", "cutoff_base", "cutoff_slope",
                    "cutoff_enabled", "mode", "multiplicity"}));
  CsrParams params;
  DYNAGG_ASSIGN_OR_RETURN(const int64_t bins,
                          ctx.spec->ParamInt("protocol.bins", params.bins));
  DYNAGG_ASSIGN_OR_RETURN(
      const int64_t levels,
      ctx.spec->ParamInt("protocol.levels", params.levels));
  DYNAGG_ASSIGN_OR_RETURN(
      params.cutoff_base,
      ctx.spec->ParamDouble("protocol.cutoff_base", params.cutoff_base));
  DYNAGG_ASSIGN_OR_RETURN(
      params.cutoff_slope,
      ctx.spec->ParamDouble("protocol.cutoff_slope", params.cutoff_slope));
  DYNAGG_ASSIGN_OR_RETURN(params.cutoff_enabled,
                          ctx.spec->ParamBool("protocol.cutoff_enabled",
                                              params.cutoff_enabled));
  DYNAGG_ASSIGN_OR_RETURN(params.mode, ParseGossipMode(*ctx.spec));
  params.bins = static_cast<int>(bins);
  params.levels = static_cast<int>(levels);
  DYNAGG_ASSIGN_OR_RETURN(EnvHandle env, MakeEnvironment(ctx));
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  DYNAGG_ASSIGN_OR_RETURN(const std::vector<int64_t> mult,
                          Multiplicities(ctx, n));
  CsrSwarm swarm(mult, params);
  // One byte-sized age counter per (bin, level) slot.
  const double state_bytes =
      static_cast<double>(params.bins) * params.levels;
  DYNAGG_RETURN_IF_ERROR(DriveRoundTrial(
      ctx, env, swarm, [&](HostId id) { return swarm.EstimateCount(id); },
      CountTruth(mult), nullptr, state_bytes, rec,
      /*extra_metrics=*/{"cdf(counter)"},
      /*extra_record_keys=*/{"max_counter"}));

  // Fig 6's bit-counter distribution: pool the N[n][k] age counters over
  // all hosts and bins after the last round and report the per-bit CDF of
  // the finite counters (infinity = the level was never sourced), clamping
  // the deep tail into the last bucket. Every level is emitted so the
  // bucket structure is seed-independent (trials must align for pooling);
  // levels that effectively never appear (< n/100 + 1 finite counters, as
  // in the legacy harness) are suppressed at assembly via min_key_total —
  // after cross-trial pooling when aggregating.
  if (MetricRequested(*ctx.spec, "cdf(counter)")) {
    DYNAGG_ASSIGN_OR_RETURN(const int64_t max_counter,
                            ctx.spec->ParamInt("record.max_counter", 12));
    if (max_counter < 1 || max_counter >= kCsrInfinity) {
      return Status::InvalidArgument(
          "record.max_counter must be in [1, 254]");
    }
    const int max_c = static_cast<int>(max_counter);
    std::vector<std::vector<int64_t>> histograms(
        params.levels, std::vector<int64_t>(max_c + 1, 0));
    for (HostId id = 0; id < n; ++id) {
      const CountSketchResetNode& node = swarm.node(id);
      for (int b = 0; b < params.bins; ++b) {
        for (int k = 0; k < params.levels; ++k) {
          const uint8_t c = node.counter(b, k);
          if (c == kCsrInfinity) continue;
          ++histograms[k][c <= max_c ? c : max_c];
        }
      }
    }
    HistogramRecord* record = rec.MutableHistogram(
        "counter_cdf", /*key_name=*/"bit", "counter_value", "cdf",
        /*cumulative=*/true, /*min_key_total=*/n / 100 + 1);
    for (int k = 0; k < params.levels; ++k) {
      for (int c = 0; c <= max_c; ++c) {
        record->buckets.push_back({static_cast<double>(k),
                                   static_cast<double>(c),
                                   histograms[k][c]});
      }
    }
  }
  return Status::OK();
}

// ---------------------------------------------------- serialized facade ---

/// A population of NodeAggregator facades (agg/aggregator.h) gossiping
/// through their serialized wire payloads — the deployment path, driven
/// like a swarm. Exchanges are sequential within a round in a shuffled
/// alive order, mirroring the push/pull swarms: each initiator serializes
/// its request, the peer merges it and replies, the initiator merges the
/// reply and closes its round.
class NodeAggregatorSwarm {
 public:
  NodeAggregatorSwarm(const std::vector<double>& values,
                      const AggregatorConfig& config) {
    aggs_.reserve(values.size());
    for (size_t i = 0; i < values.size(); ++i) {
      aggs_.emplace_back(/*device_id=*/static_cast<uint64_t>(i), values[i],
                         config);
    }
  }

  void RunRound(const Environment& env, const Population& pop, Rng& rng) {
    ShuffledAliveOrder(pop, rng, &order_);
    for (const HostId i : order_) {
      const std::vector<uint8_t> request = aggs_[i].BeginRound();
      const HostId peer = env.SamplePeer(i, pop, rng);
      if (peer != kInvalidHost) {
        Result<std::vector<uint8_t>> reply =
            aggs_[peer].HandleMessage(request);
        // In-process payloads cannot be malformed; a failure is a bug.
        DYNAGG_CHECK(reply.ok());
        DYNAGG_CHECK(aggs_[i].HandleReply(*reply).ok());
        if (meter_ != nullptr) {
          meter_->RecordMessage(static_cast<int64_t>(request.size()));
          meter_->RecordMessage(static_cast<int64_t>(reply->size()));
        }
      }
      aggs_[i].EndRound();
    }
  }

  const NodeAggregator& device(HostId id) const { return aggs_[id]; }
  void set_traffic_meter(TrafficMeter* meter) { meter_ = meter; }

 private:
  std::vector<NodeAggregator> aggs_;
  TrafficMeter* meter_ = nullptr;
  std::vector<HostId> order_;  // scratch
};

Status RunNodeAggregator(const TrialContext& ctx, Recorder& rec) {
  const ScenarioSpec& spec = *ctx.spec;
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams(
      "protocol.", {"lambda", "bins", "levels", "multiplicity", "metric"}));
  AggregatorConfig config;
  DYNAGG_ASSIGN_OR_RETURN(config.lambda,
                          spec.ParamDouble("protocol.lambda", config.lambda));
  DYNAGG_ASSIGN_OR_RETURN(
      const int64_t bins,
      spec.ParamInt("protocol.bins", config.csr.bins));
  DYNAGG_ASSIGN_OR_RETURN(
      const int64_t levels,
      spec.ParamInt("protocol.levels", config.csr.levels));
  DYNAGG_ASSIGN_OR_RETURN(
      config.count_multiplicity,
      spec.ParamInt("protocol.multiplicity", config.count_multiplicity));
  DYNAGG_ASSIGN_OR_RETURN(const std::string metric,
                          spec.ParamString("protocol.metric", "average"));
  if (config.lambda < 0.0 || config.lambda > 1.0) {
    return Status::InvalidArgument("protocol.lambda must be in [0, 1]");
  }
  if (bins < 1 || levels < 1 || levels > kCsrMaxLevels) {
    return Status::InvalidArgument(
        "protocol.bins must be >= 1 and protocol.levels in [1, " +
        std::to_string(kCsrMaxLevels) + "]");
  }
  if (config.count_multiplicity < 1) {
    return Status::InvalidArgument("protocol.multiplicity must be >= 1");
  }
  config.csr.bins = static_cast<int>(bins);
  config.csr.levels = static_cast<int>(levels);

  DYNAGG_ASSIGN_OR_RETURN(EnvHandle env, MakeEnvironment(ctx));
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  const std::vector<double> values = UniformWorkloadValues(n, ctx.trial_seed);
  NodeAggregatorSwarm swarm(values, config);

  std::function<double(HostId)> estimate;
  std::function<double(const Population&)> truth;
  if (metric == "average") {
    estimate = [&](HostId id) { return swarm.device(id).AverageEstimate(); };
    truth = AverageTruth(values);
  } else if (metric == "count") {
    estimate = [&](HostId id) { return swarm.device(id).CountEstimate(); };
    truth = [](const Population& pop) {
      return static_cast<double>(pop.num_alive());
    };
  } else if (metric == "sum") {
    estimate = [&](HostId id) { return swarm.device(id).SumEstimate(); };
    truth = [&values](const Population& pop) {
      return TrueSum(values, pop);
    };
  } else {
    return Status::InvalidArgument(
        "protocol.metric must be average, count or sum, got '" + metric +
        "'");
  }
  // Push-Sum-Revert mass (3 doubles) plus the CSR counter array.
  const double state_bytes =
      3.0 * sizeof(double) +
      static_cast<double>(config.csr.bins) * config.csr.levels;
  return DriveRoundTrial(ctx, env, swarm, estimate, truth, &values,
                         state_bytes, rec);
}

// ------------------------------------------------------ overlay baseline ---

/// TAG spanning-tree aggregation over repeated epochs under churn,
/// reproducing the loop of ablation_tree_vs_gossip: each epoch floods a
/// fresh BFS tree from the root, runs one tree-depth-sized epoch under a
/// churn plan drawn from a shared stream, revives the leader, and records
/// the leader's error against the live truth. The default `rms` metric
/// selector maps onto the protocol's own error scalars
/// (tag_mean_abs_err, tag_failed_epochs_pct).
Status RunTagTree(const TrialContext& ctx, Recorder& rec) {
  const ScenarioSpec& spec = *ctx.spec;
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams("protocol.", {"epochs", "root"}));
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams("seeds.", {"round_stream",
                                                     "failure_stream"}));
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams("record.", {}));
  DYNAGG_RETURN_IF_ERROR(CheckMetricsSupported(spec, {"rms"}));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t epochs,
                          spec.ParamInt("protocol.epochs", 30));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t root_id,
                          spec.ParamInt("protocol.root", 0));
  DYNAGG_ASSIGN_OR_RETURN(const FailureConfig fail,
                          ParseFailureConfig(spec));
  if (fail.kind != FailureConfig::Kind::kNone &&
      fail.kind != FailureConfig::Kind::kChurn) {
    return Status::InvalidArgument(
        "tag-tree supports failure.kind none or churn");
  }
  DYNAGG_ASSIGN_OR_RETURN(const uint64_t fail_stream,
                          FailureStream(spec, fail));
  if (epochs < 1) {
    return Status::InvalidArgument("protocol.epochs must be >= 1");
  }

  DYNAGG_ASSIGN_OR_RETURN(EnvHandle env, MakeEnvironment(ctx));
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  const HostId root = static_cast<HostId>(root_id);
  if (root < 0 || root >= n) {
    return Status::InvalidArgument("protocol.root out of range");
  }
  const std::vector<double> values = UniformWorkloadValues(n, ctx.trial_seed);

  Rng churn_rng(DeriveSeed(ctx.trial_seed, fail_stream));
  Population pop(n);
  RunningStat err;
  int failed_epochs = 0;
  int round = 0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const SpanningTree tree = BuildBfsTree(*env.env, pop, root);
    FailurePlan churn;
    if (fail.kind == FailureConfig::Kind::kChurn) {
      churn = FailurePlan::Churn(n, round, round + tree.max_depth + 1,
                                 fail.death_prob, ChurnReturnProb(fail),
                                 churn_rng);
    }
    const TagEpochResult result =
        RunTagEpoch(tree, values, pop, churn, round);
    round += tree.max_depth + 1;
    // Keep the leader alive so epochs stay comparable.
    pop.Revive(root);
    if (!result.valid || result.count == 0) {
      ++failed_epochs;
      continue;
    }
    const double truth = TrueAverage(values, pop);
    err.Add(std::abs(result.average - truth));
  }

  rec.AddScalar("tag_mean_abs_err", err.mean());
  rec.AddScalar("tag_failed_epochs_pct",
                100.0 * failed_epochs / static_cast<double>(epochs));
  return Status::OK();
}

}  // namespace

namespace internal {

void RegisterBuiltinProtocols(Registry<ProtocolRunner>& registry) {
  DYNAGG_CHECK(registry.Register("push-sum", RunPushSum).ok());
  DYNAGG_CHECK(registry.Register("push-sum-revert", RunPushSumRevert).ok());
  DYNAGG_CHECK(registry.Register("epoch-push-sum", RunEpochPushSum).ok());
  DYNAGG_CHECK(registry.Register("full-transfer", RunFullTransfer).ok());
  DYNAGG_CHECK(registry.Register("extremes", RunExtremes).ok());
  DYNAGG_CHECK(registry.Register("count-sketch", RunCountSketch).ok());
  DYNAGG_CHECK(
      registry.Register("count-sketch-reset", RunCountSketchReset).ok());
  DYNAGG_CHECK(registry.Register("node-aggregator", RunNodeAggregator).ok());
  DYNAGG_CHECK(registry.Register("tag-tree", RunTagTree).ok());
}

}  // namespace internal
}  // namespace scenario
}  // namespace dynagg
