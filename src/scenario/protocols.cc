// Builtin protocol catalog: SwarmFactories for the Driver API.
//
// A registered protocol builds its swarm for one trial and declares the
// measurement hooks as a type-erased SwarmHandle (scenario/trial.h); which
// time loop runs it — the synchronous round loop or event-driven trace
// playback — is the driver's business (scenario/drivers.cc), selected by
// `driver = rounds | trace` in the spec. Factories validate their
// protocol.* parameters, draw the paper's U[0,100) value workload from the
// trial seed, and bundle swarm + storage into the handle's keepalive.
//
// Protocols whose trial structure fits no shared driver register a custom
// whole-trial runner instead: the TAG overlay baseline (tag-tree) owns its
// loop because its epochs are tree-depth-sized rather than fixed-length.
// The node-aggregator protocol drives the serialized NodeAggregator facade
// (agg/aggregator.h) over the wire format, making the deployment path
// scenario-reachable.

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "agg/aggregator.h"
#include "agg/count_sketch.h"
#include "agg/count_sketch_reset.h"
#include "agg/epoch_push_sum.h"
#include "agg/extremes.h"
#include "agg/fm_sketch.h"
#include "agg/full_transfer.h"
#include "agg/push_sum.h"
#include "agg/push_sum_revert.h"
#include "common/hash.h"
#include "common/macros.h"
#include "common/rng.h"
#include "common/stats.h"
#include "env/connectivity.h"
#include "scenario/config.h"
#include "scenario/trial.h"
#include "sim/bandwidth.h"
#include "sim/metrics.h"
#include "sim/population.h"
#include "sim/round_driver.h"
#include "sim/workload.h"
#include "tree/spanning_tree.h"
#include "tree/tag.h"

namespace dynagg {
namespace scenario {
namespace {

Result<GossipMode> ParseGossipMode(const ScenarioSpec& spec) {
  DYNAGG_ASSIGN_OR_RETURN(const std::string mode,
                          spec.ParamString("protocol.mode", "pushpull"));
  if (mode == "push") return GossipMode::kPush;
  if (mode == "pushpull") return GossipMode::kPushPull;
  return Status::InvalidArgument(
      "protocol.mode must be push or pushpull, got '" + mode + "'");
}

Result<RevertMode> ParseRevertMode(const ScenarioSpec& spec) {
  DYNAGG_ASSIGN_OR_RETURN(const std::string revert,
                          spec.ParamString("protocol.revert", "fixed"));
  if (revert == "fixed") return RevertMode::kFixed;
  if (revert == "adaptive") return RevertMode::kAdaptive;
  return Status::InvalidArgument(
      "protocol.revert must be fixed or adaptive, got '" + revert + "'");
}

Result<int> CheckedHosts(const EnvHandle& env) {
  const int n = env.env->num_hosts();
  if (n <= 0) return Status::InvalidArgument("environment has no hosts");
  return n;
}

// ----------------------------------------------------- handle assembly ---

/// Wires the traffic-meter hook when the swarm type has one.
template <typename Swarm>
void MaybeSetMeter(SwarmHandle& h, Swarm* swarm) {
  if constexpr (requires(Swarm& s, TrafficMeter* m) {
                  s.set_traffic_meter(m);
                }) {
    h.set_meter = [swarm](TrafficMeter* m) { swarm->set_traffic_meter(m); };
  }
}

/// Wires the round kernel's intra-round thread hook when the swarm type has
/// one (push-scatter protocols; see sim/round_kernel.h).
template <typename Swarm>
void MaybeSetThreads(SwarmHandle& h, Swarm* swarm) {
  if constexpr (requires(Swarm& s, int t) { s.set_intra_round_threads(t); }) {
    h.set_threads = [swarm](int t) { swarm->set_intra_round_threads(t); };
  }
}

/// Owns a value workload plus the swarm built over it (swarm constructors
/// take the values by reference, so member order matters).
template <typename Swarm>
struct ValueSwarmBox {
  std::vector<double> values;
  Swarm swarm;
  template <typename... Args>
  explicit ValueSwarmBox(std::vector<double> v, Args&&... args)
      : values(std::move(v)), swarm(values, std::forward<Args>(args)...) {}
};

/// Handle for averaging swarms: Estimate() per host, live-average truth,
/// per-group mean truth for trace playback, values backing
/// kill_top_fraction.
template <typename Box>
SwarmHandle AveragingHandle(std::shared_ptr<Box> box, double state_bytes) {
  SwarmHandle h;
  auto* swarm = &box->swarm;
  const std::vector<double>* values = &box->values;
  h.run_round = [swarm](const Environment& e, const Population& p, Rng& r) {
    swarm->RunRound(e, p, r);
  };
  h.estimate = [swarm](HostId id) { return swarm->Estimate(id); };
  h.truth = [values](const Population& pop) {
    return TrueAverage(*values, pop);
  };
  h.group_truths = [values](const std::vector<int>& labels,
                            const std::vector<int>& sizes) {
    return GroupMeans(labels, sizes, *values);
  };
  h.failure_values = values;
  h.state_bytes = state_bytes;
  MaybeSetMeter(h, swarm);
  MaybeSetThreads(h, swarm);
  h.keepalive = std::move(box);
  return h;
}

/// Owns a multiplicity workload plus a counting-sketch swarm over it.
template <typename Swarm, typename Params>
struct CountSwarmBox {
  std::vector<int64_t> mult;
  Swarm swarm;
  CountSwarmBox(std::vector<int64_t> m, const Params& params)
      : mult(std::move(m)), swarm(mult, params) {}
};

/// Handle for counting swarms: EstimateCount() per host, live total-count
/// truth; trace playback compares the per-identifier estimate scaled back
/// to devices against the host's group size (Fig 11's dynamic size).
template <typename Box>
SwarmHandle CountingHandle(std::shared_ptr<Box> box, double state_bytes) {
  SwarmHandle h;
  auto* swarm = &box->swarm;
  const std::vector<int64_t>* mult = &box->mult;
  h.run_round = [swarm](const Environment& e, const Population& p, Rng& r) {
    swarm->RunRound(e, p, r);
  };
  h.estimate = [swarm](HostId id) { return swarm->EstimateCount(id); };
  h.truth = [mult](const Population& pop) {
    int64_t total = 0;
    for (const HostId id : pop.alive_ids()) total += (*mult)[id];
    return static_cast<double>(total);
  };
  h.group_estimate = [swarm, mult](HostId id) {
    return swarm->EstimateCount(id) / static_cast<double>((*mult)[id]);
  };
  h.group_truths = [](const std::vector<int>&, const std::vector<int>& sizes) {
    return std::vector<double>(sizes.begin(), sizes.end());
  };
  h.state_bytes = state_bytes;
  MaybeSetMeter(h, swarm);
  MaybeSetThreads(h, swarm);
  h.keepalive = std::move(box);
  return h;
}

// --------------------------------------------------- averaging protocols ---

Result<SwarmHandle> MakePushSum(const TrialContext& ctx, EnvHandle& env) {
  DYNAGG_RETURN_IF_ERROR(ctx.spec->CheckParams("protocol.", {"mode"}));
  DYNAGG_ASSIGN_OR_RETURN(const GossipMode mode, ParseGossipMode(*ctx.spec));
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  auto box = std::make_shared<ValueSwarmBox<PushSumSwarm>>(
      UniformWorkloadValues(n, ctx.trial_seed), mode);
  return AveragingHandle(std::move(box), 2.0 * sizeof(double));
}

Result<SwarmHandle> MakePushSumRevert(const TrialContext& ctx,
                                      EnvHandle& env) {
  DYNAGG_RETURN_IF_ERROR(
      ctx.spec->CheckParams("protocol.", {"lambda", "mode", "revert"}));
  DYNAGG_ASSIGN_OR_RETURN(const double lambda,
                          ctx.spec->ParamDouble("protocol.lambda", 0.01));
  DYNAGG_ASSIGN_OR_RETURN(const GossipMode mode, ParseGossipMode(*ctx.spec));
  DYNAGG_ASSIGN_OR_RETURN(const RevertMode revert,
                          ParseRevertMode(*ctx.spec));
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  auto box = std::make_shared<ValueSwarmBox<PushSumRevertSwarm>>(
      UniformWorkloadValues(n, ctx.trial_seed),
      PsrParams{.lambda = lambda, .mode = mode, .revert = revert});
  return AveragingHandle(std::move(box), 3.0 * sizeof(double));
}

Result<SwarmHandle> MakeEpochPushSum(const TrialContext& ctx,
                                     EnvHandle& env) {
  DYNAGG_RETURN_IF_ERROR(ctx.spec->CheckParams(
      "protocol.", {"epoch_length", "mode", "phase_spread"}));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t epoch_length,
                          ctx.spec->ParamInt("protocol.epoch_length", 10));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t phase_spread,
                          ctx.spec->ParamInt("protocol.phase_spread", 0));
  DYNAGG_ASSIGN_OR_RETURN(const GossipMode mode, ParseGossipMode(*ctx.spec));
  if (epoch_length < 1) {
    return Status::InvalidArgument("protocol.epoch_length must be >= 1");
  }
  if (phase_spread < 0 || phase_spread > epoch_length) {
    return Status::InvalidArgument(
        "protocol.phase_spread must be in [0, epoch_length]");
  }
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  std::vector<int> phases;
  if (phase_spread > 0) {
    phases.resize(n);
    for (int i = 0; i < n; ++i) {
      phases[i] = i % static_cast<int>(phase_spread);
    }
  }
  auto box = std::make_shared<ValueSwarmBox<EpochPushSumSwarm>>(
      UniformWorkloadValues(n, ctx.trial_seed),
      EpochParams{.epoch_length = static_cast<int>(epoch_length),
                  .mode = mode},
      phases);
  return AveragingHandle(std::move(box), /*state_bytes=*/0.0);
}

Result<SwarmHandle> MakeFullTransfer(const TrialContext& ctx,
                                     EnvHandle& env) {
  DYNAGG_RETURN_IF_ERROR(
      ctx.spec->CheckParams("protocol.", {"lambda", "parcels", "window"}));
  DYNAGG_ASSIGN_OR_RETURN(const double lambda,
                          ctx.spec->ParamDouble("protocol.lambda", 0.1));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t parcels,
                          ctx.spec->ParamInt("protocol.parcels", 4));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t window,
                          ctx.spec->ParamInt("protocol.window", 3));
  if (parcels < 1 || window < 1) {
    return Status::InvalidArgument(
        "protocol.parcels and protocol.window must be >= 1");
  }
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  auto box = std::make_shared<ValueSwarmBox<FullTransferSwarm>>(
      UniformWorkloadValues(n, ctx.trial_seed),
      FullTransferParams{.lambda = lambda,
                         .parcels = static_cast<int>(parcels),
                         .window = static_cast<int>(window)});
  // State: the mass plus the estimate window of <weight, value> pairs.
  const double state_bytes =
      (2.0 + 2.0 * static_cast<double>(window)) * sizeof(double);
  return AveragingHandle(std::move(box), state_bytes);
}

// ------------------------------------------------------------- extremes ---

struct ExtremesBox {
  std::vector<double> values;
  std::vector<uint64_t> keys;
  DynamicExtremeSwarm swarm;
  ExtremesBox(std::vector<double> v, std::vector<uint64_t> k,
              const ExtremeParams& params)
      : values(std::move(v)), keys(std::move(k)), swarm(values, keys, params) {}
};

Result<SwarmHandle> MakeExtremes(const TrialContext& ctx, EnvHandle& env) {
  DYNAGG_RETURN_IF_ERROR(
      ctx.spec->CheckParams("protocol.", {"kind", "cutoff", "mode"}));
  DYNAGG_ASSIGN_OR_RETURN(const std::string kind_name,
                          ctx.spec->ParamString("protocol.kind", "max"));
  ExtremeKind kind;
  if (kind_name == "max") {
    kind = ExtremeKind::kMaximum;
  } else if (kind_name == "min") {
    kind = ExtremeKind::kMinimum;
  } else {
    return Status::InvalidArgument(
        "protocol.kind must be max or min, got '" + kind_name + "'");
  }
  DYNAGG_ASSIGN_OR_RETURN(const int64_t cutoff,
                          ctx.spec->ParamInt("protocol.cutoff", 12));
  DYNAGG_ASSIGN_OR_RETURN(const GossipMode mode, ParseGossipMode(*ctx.spec));
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  std::vector<uint64_t> keys(n);
  std::iota(keys.begin(), keys.end(), uint64_t{0});
  auto box = std::make_shared<ExtremesBox>(
      UniformWorkloadValues(n, ctx.trial_seed), std::move(keys),
      ExtremeParams{.kind = kind,
                    .cutoff = static_cast<int>(cutoff),
                    .mode = mode});
  SwarmHandle h;
  DynamicExtremeSwarm* swarm = &box->swarm;
  const std::vector<double>* values = &box->values;
  h.run_round = [swarm](const Environment& e, const Population& p, Rng& r) {
    swarm->RunRound(e, p, r);
  };
  h.estimate = [swarm](HostId id) { return swarm->Estimate(id); };
  h.truth = [values, kind](const Population& pop) {
    bool first = true;
    double best = 0.0;
    for (const HostId id : pop.alive_ids()) {
      const double v = (*values)[id];
      if (first || (kind == ExtremeKind::kMaximum ? v > best : v < best)) {
        best = v;
        first = false;
      }
    }
    return best;
  };
  h.failure_values = values;
  h.state_bytes = 0.0;
  MaybeSetMeter(h, swarm);
  MaybeSetThreads(h, swarm);
  h.keepalive = std::move(box);
  return h;
}

// ---------------------------------------------------- counting protocols ---

Result<std::vector<int64_t>> Multiplicities(const TrialContext& ctx, int n) {
  DYNAGG_ASSIGN_OR_RETURN(const int64_t mult,
                          ctx.spec->ParamInt("protocol.multiplicity", 1));
  if (mult < 0) {
    return Status::InvalidArgument("protocol.multiplicity must be >= 0");
  }
  // The trace driver's group estimate divides by the multiplicity to
  // compare counts against group sizes; 0 would silently print inf.
  if (mult < 1 && ctx.spec->driver == "trace") {
    return Status::InvalidArgument(
        "driver = trace requires protocol.multiplicity >= 1 (group sizes "
        "are measured in devices)");
  }
  return std::vector<int64_t>(n, mult);
}

Result<SwarmHandle> MakeCountSketch(const TrialContext& ctx, EnvHandle& env) {
  DYNAGG_RETURN_IF_ERROR(ctx.spec->CheckParams(
      "protocol.", {"bins", "levels", "mode", "multiplicity"}));
  CountSketchParams params;
  DYNAGG_ASSIGN_OR_RETURN(const int64_t bins,
                          ctx.spec->ParamInt("protocol.bins", params.bins));
  DYNAGG_ASSIGN_OR_RETURN(
      const int64_t levels,
      ctx.spec->ParamInt("protocol.levels", params.levels));
  DYNAGG_ASSIGN_OR_RETURN(params.mode, ParseGossipMode(*ctx.spec));
  params.bins = static_cast<int>(bins);
  params.levels = static_cast<int>(levels);
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  DYNAGG_ASSIGN_OR_RETURN(std::vector<int64_t> mult,
                          Multiplicities(ctx, n));
  auto box =
      std::make_shared<CountSwarmBox<CountSketchSwarm, CountSketchParams>>(
          std::move(mult), params);
  // One uint64 bit string per bin.
  return CountingHandle(std::move(box),
                        static_cast<double>(params.bins) * sizeof(uint64_t));
}

Result<SwarmHandle> MakeCountSketchReset(const TrialContext& ctx,
                                         EnvHandle& env) {
  DYNAGG_RETURN_IF_ERROR(ctx.spec->CheckParams(
      "protocol.", {"bins", "levels", "cutoff_base", "cutoff_slope",
                    "cutoff_enabled", "mode", "multiplicity"}));
  CsrParams params;
  DYNAGG_ASSIGN_OR_RETURN(const int64_t bins,
                          ctx.spec->ParamInt("protocol.bins", params.bins));
  DYNAGG_ASSIGN_OR_RETURN(
      const int64_t levels,
      ctx.spec->ParamInt("protocol.levels", params.levels));
  DYNAGG_ASSIGN_OR_RETURN(
      params.cutoff_base,
      ctx.spec->ParamDouble("protocol.cutoff_base", params.cutoff_base));
  DYNAGG_ASSIGN_OR_RETURN(
      params.cutoff_slope,
      ctx.spec->ParamDouble("protocol.cutoff_slope", params.cutoff_slope));
  DYNAGG_ASSIGN_OR_RETURN(params.cutoff_enabled,
                          ctx.spec->ParamBool("protocol.cutoff_enabled",
                                              params.cutoff_enabled));
  DYNAGG_ASSIGN_OR_RETURN(params.mode, ParseGossipMode(*ctx.spec));
  params.bins = static_cast<int>(bins);
  params.levels = static_cast<int>(levels);
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  DYNAGG_ASSIGN_OR_RETURN(std::vector<int64_t> mult,
                          Multiplicities(ctx, n));
  auto box = std::make_shared<CountSwarmBox<CsrSwarm, CsrParams>>(
      std::move(mult), params);
  CsrSwarm* swarm = &box->swarm;
  // One byte-sized age counter per (bin, level) slot.
  SwarmHandle h = CountingHandle(
      std::move(box), static_cast<double>(params.bins) * params.levels);

  // Fig 6's bit-counter distribution: pool the N[n][k] age counters over
  // all hosts and bins after the last round and report the per-bit CDF of
  // the finite counters (infinity = the level was never sourced), clamping
  // the deep tail into the last bucket. Every level is emitted so the
  // bucket structure is seed-independent (trials must align for pooling);
  // levels that effectively never appear (< n/100 + 1 finite counters, as
  // in the legacy harness) are suppressed at assembly via min_key_total —
  // after cross-trial pooling when aggregating.
  h.extra_metrics = {"cdf(counter)"};
  h.extra_record_keys = {"max_counter"};
  h.finish = [swarm, params, n](const TrialContext& ctx,
                                Recorder& rec) -> Status {
    if (!MetricRequested(*ctx.spec, "cdf(counter)")) return Status::OK();
    DYNAGG_ASSIGN_OR_RETURN(const int64_t max_counter,
                            ctx.spec->ParamInt("record.max_counter", 12));
    if (max_counter < 1 || max_counter >= kCsrInfinity) {
      return Status::InvalidArgument(
          "record.max_counter must be in [1, 254]");
    }
    const int max_c = static_cast<int>(max_counter);
    std::vector<std::vector<int64_t>> histograms(
        params.levels, std::vector<int64_t>(max_c + 1, 0));
    for (HostId id = 0; id < n; ++id) {
      const CountSketchResetNode& node = swarm->node(id);
      for (int b = 0; b < params.bins; ++b) {
        for (int k = 0; k < params.levels; ++k) {
          const uint8_t c = node.counter(b, k);
          if (c == kCsrInfinity) continue;
          ++histograms[k][c <= max_c ? c : max_c];
        }
      }
    }
    HistogramRecord* record = rec.MutableHistogram(
        "counter_cdf", /*key_name=*/"bit", "counter_value", "cdf",
        /*cumulative=*/true, /*min_key_total=*/n / 100 + 1);
    for (int k = 0; k < params.levels; ++k) {
      for (int c = 0; c <= max_c; ++c) {
        record->buckets.push_back({static_cast<double>(k),
                                   static_cast<double>(c),
                                   histograms[k][c]});
      }
    }
    return Status::OK();
  };
  return h;
}

// ---------------------------------------------------- serialized facade ---

/// A population of NodeAggregator facades (agg/aggregator.h) gossiping
/// through their serialized wire payloads — the deployment path, driven
/// like a swarm. Exchanges are sequential within a round in a shuffled
/// alive order, mirroring the push/pull swarms: each initiator serializes
/// its request, the peer merges it and replies, the initiator merges the
/// reply and closes its round.
class NodeAggregatorSwarm {
 public:
  NodeAggregatorSwarm(const std::vector<double>& values,
                      const AggregatorConfig& config) {
    aggs_.reserve(values.size());
    for (size_t i = 0; i < values.size(); ++i) {
      aggs_.emplace_back(/*device_id=*/static_cast<uint64_t>(i), values[i],
                         config);
    }
  }

  void RunRound(const Environment& env, const Population& pop, Rng& rng) {
    kernel_.PlanExchangeRound(env, pop, rng);
    kernel_.ForEachSlot([this](HostId i, HostId peer) {
      const std::vector<uint8_t> request = aggs_[i].BeginRound();
      if (peer != kInvalidHost) {
        Result<std::vector<uint8_t>> reply =
            aggs_[peer].HandleMessage(request);
        // In-process payloads cannot be malformed; a failure is a bug.
        DYNAGG_CHECK(reply.ok());
        DYNAGG_CHECK(aggs_[i].HandleReply(*reply).ok());
        if (meter_ != nullptr) {
          meter_->RecordMessage(static_cast<int64_t>(request.size()));
          meter_->RecordMessage(static_cast<int64_t>(reply->size()));
        }
      }
      aggs_[i].EndRound();
    });
  }

  const NodeAggregator& device(HostId id) const { return aggs_[id]; }
  void set_traffic_meter(TrafficMeter* meter) { meter_ = meter; }

 private:
  std::vector<NodeAggregator> aggs_;
  TrafficMeter* meter_ = nullptr;
  RoundKernel kernel_;
};

Result<SwarmHandle> MakeNodeAggregator(const TrialContext& ctx,
                                       EnvHandle& env) {
  const ScenarioSpec& spec = *ctx.spec;
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams(
      "protocol.", {"lambda", "bins", "levels", "multiplicity", "metric"}));
  AggregatorConfig config;
  DYNAGG_ASSIGN_OR_RETURN(config.lambda,
                          spec.ParamDouble("protocol.lambda", config.lambda));
  DYNAGG_ASSIGN_OR_RETURN(
      const int64_t bins,
      spec.ParamInt("protocol.bins", config.csr.bins));
  DYNAGG_ASSIGN_OR_RETURN(
      const int64_t levels,
      spec.ParamInt("protocol.levels", config.csr.levels));
  DYNAGG_ASSIGN_OR_RETURN(
      config.count_multiplicity,
      spec.ParamInt("protocol.multiplicity", config.count_multiplicity));
  DYNAGG_ASSIGN_OR_RETURN(const std::string metric,
                          spec.ParamString("protocol.metric", "average"));
  if (config.lambda < 0.0 || config.lambda > 1.0) {
    return Status::InvalidArgument("protocol.lambda must be in [0, 1]");
  }
  if (bins < 1 || levels < 1 || levels > kCsrMaxLevels) {
    return Status::InvalidArgument(
        "protocol.bins must be >= 1 and protocol.levels in [1, " +
        std::to_string(kCsrMaxLevels) + "]");
  }
  if (config.count_multiplicity < 1) {
    return Status::InvalidArgument("protocol.multiplicity must be >= 1");
  }
  config.csr.bins = static_cast<int>(bins);
  config.csr.levels = static_cast<int>(levels);

  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  auto box = std::make_shared<ValueSwarmBox<NodeAggregatorSwarm>>(
      UniformWorkloadValues(n, ctx.trial_seed), config);
  NodeAggregatorSwarm* swarm = &box->swarm;
  const std::vector<double>* values = &box->values;

  SwarmHandle h;
  h.run_round = [swarm](const Environment& e, const Population& p, Rng& r) {
    swarm->RunRound(e, p, r);
  };
  if (metric == "average") {
    h.estimate = [swarm](HostId id) {
      return swarm->device(id).AverageEstimate();
    };
    h.truth = [values](const Population& pop) {
      return TrueAverage(*values, pop);
    };
  } else if (metric == "count") {
    h.estimate = [swarm](HostId id) {
      return swarm->device(id).CountEstimate();
    };
    h.truth = [](const Population& pop) {
      return static_cast<double>(pop.num_alive());
    };
  } else if (metric == "sum") {
    h.estimate = [swarm](HostId id) {
      return swarm->device(id).SumEstimate();
    };
    h.truth = [values](const Population& pop) {
      return TrueSum(*values, pop);
    };
  } else {
    return Status::InvalidArgument(
        "protocol.metric must be average, count or sum, got '" + metric +
        "'");
  }
  h.failure_values = values;
  // Push-Sum-Revert mass (3 doubles) plus the CSR counter array.
  h.state_bytes = 3.0 * sizeof(double) +
                  static_cast<double>(config.csr.bins) * config.csr.levels;
  MaybeSetMeter(h, swarm);
  MaybeSetThreads(h, swarm);
  h.keepalive = std::move(box);
  return h;
}

// ------------------------------------------------- sketch accuracy table ---

/// Monte-Carlo FM-sketch accuracy (the in-text "64 buckets for an expected
/// error of 9.7%" table, formerly bench/tab_sketch_error): inserts
/// protocol.count unique objects into a fresh sketch protocol.samples times
/// and reports the relative-error statistics of the estimator. No gossip,
/// no environment, no rounds — a whole-trial runner swept over
/// protocol.buckets. The seed convention (DeriveSeed(seed, sample * 1000 +
/// buckets)) reproduces the retired bench main bit-identically.
Status RunFmAccuracy(const TrialContext& ctx, Recorder& rec) {
  const ScenarioSpec& spec = *ctx.spec;
  DYNAGG_RETURN_IF_ERROR(
      spec.CheckParams("protocol.", {"buckets", "levels", "samples", "count"}));
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams("seeds.", {}));
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams("record.", {}));
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams("failure.", {}));
  // The default `rms` selector maps onto the protocol's own error scalars,
  // the tag-tree convention for custom runners.
  DYNAGG_RETURN_IF_ERROR(CheckMetricsSupported(spec, {"rms"}));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t buckets,
                          spec.ParamInt("protocol.buckets", 64));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t levels,
                          spec.ParamInt("protocol.levels", 32));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t samples,
                          spec.ParamInt("protocol.samples", 200));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t count,
                          spec.ParamInt("protocol.count", 20000));
  if (buckets < 1 || levels < 1 || samples < 1 || count < 1) {
    return Status::InvalidArgument(
        "protocol.buckets, protocol.levels, protocol.samples and "
        "protocol.count must be >= 1");
  }

  RunningStat rel_error;
  RunningStat signed_error;
  for (int64_t sample = 0; sample < samples; ++sample) {
    FmSketch sketch(static_cast<int>(buckets), static_cast<int>(levels));
    const uint64_t sample_seed =
        DeriveSeed(ctx.trial_seed, sample * 1000 + buckets);
    for (int64_t i = 0; i < count; ++i) {
      sketch.InsertObject(HashCombine(sample_seed, i), sample_seed);
    }
    const double rel = (sketch.EstimateCount() - count) / count;
    rel_error.Add(std::abs(rel));
    signed_error.Add(rel);
  }
  rec.AddScalar("mean_rel_error", rel_error.mean());
  rec.AddScalar("rms_rel_error",
                std::sqrt(rel_error.mean() * rel_error.mean() +
                          rel_error.variance()));
  rec.AddScalar("bias", signed_error.mean());
  return Status::OK();
}

// ------------------------------------------------------ overlay baseline ---

/// TAG spanning-tree aggregation over repeated epochs under churn,
/// reproducing the loop of ablation_tree_vs_gossip: each epoch floods a
/// fresh BFS tree from the root, runs one tree-depth-sized epoch under a
/// churn plan drawn from a shared stream, revives the leader, and records
/// the leader's error against the live truth. The default `rms` metric
/// selector maps onto the protocol's own error scalars
/// (tag_mean_abs_err, tag_failed_epochs_pct). Epochs are tree-depth-sized
/// rather than fixed-length, so this protocol owns its whole trial loop
/// (ProtocolDef::run_custom) instead of registering a SwarmFactory.
Status RunTagTree(const TrialContext& ctx, Recorder& rec) {
  const ScenarioSpec& spec = *ctx.spec;
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams("protocol.", {"epochs", "root"}));
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams("seeds.", {"round_stream",
                                                     "failure_stream"}));
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams("record.", {}));
  DYNAGG_RETURN_IF_ERROR(CheckMetricsSupported(spec, {"rms"}));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t epochs,
                          spec.ParamInt("protocol.epochs", 30));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t root_id,
                          spec.ParamInt("protocol.root", 0));
  DYNAGG_ASSIGN_OR_RETURN(const FailureConfig fail,
                          ParseFailureConfig(spec));
  if (fail.kind != FailureConfig::Kind::kNone &&
      fail.kind != FailureConfig::Kind::kChurn) {
    return Status::InvalidArgument(
        "tag-tree supports failure.kind none or churn");
  }
  DYNAGG_ASSIGN_OR_RETURN(const uint64_t fail_stream,
                          FailureStream(spec, fail));
  if (epochs < 1) {
    return Status::InvalidArgument("protocol.epochs must be >= 1");
  }

  DYNAGG_ASSIGN_OR_RETURN(EnvHandle env, MakeEnvironment(ctx));
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  const HostId root = static_cast<HostId>(root_id);
  if (root < 0 || root >= n) {
    return Status::InvalidArgument("protocol.root out of range");
  }
  const std::vector<double> values = UniformWorkloadValues(n, ctx.trial_seed);

  Rng churn_rng(DeriveSeed(ctx.trial_seed, fail_stream));
  Population pop(n);
  RunningStat err;
  int failed_epochs = 0;
  int round = 0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const SpanningTree tree = BuildBfsTree(*env.env, pop, root);
    FailurePlan churn;
    if (fail.kind == FailureConfig::Kind::kChurn) {
      churn = FailurePlan::Churn(n, round, round + tree.max_depth + 1,
                                 fail.death_prob, ChurnReturnProb(fail),
                                 churn_rng);
    }
    const TagEpochResult result =
        RunTagEpoch(tree, values, pop, churn, round);
    round += tree.max_depth + 1;
    // Keep the leader alive so epochs stay comparable.
    pop.Revive(root);
    if (!result.valid || result.count == 0) {
      ++failed_epochs;
      continue;
    }
    const double truth = TrueAverage(values, pop);
    err.Add(std::abs(result.average - truth));
  }

  rec.AddScalar("tag_mean_abs_err", err.mean());
  rec.AddScalar("tag_failed_epochs_pct",
                100.0 * failed_epochs / static_cast<double>(epochs));
  return Status::OK();
}

}  // namespace

namespace internal {

void RegisterBuiltinProtocols(Registry<ProtocolDef>& registry) {
  // threads_capable marks the push-scatter protocols whose swarms expose
  // set_intra_round_threads; exchange-only rounds are inherently
  // sequential.
  const auto swarm = [&registry](const std::string& name, SwarmFactory make,
                                 bool trace_capable, bool threads_capable) {
    DYNAGG_CHECK(registry
                     .Register(name, ProtocolDef{std::move(make), nullptr,
                                                 trace_capable,
                                                 threads_capable})
                     .ok());
  };
  swarm("push-sum", MakePushSum, /*trace_capable=*/true,
        /*threads_capable=*/true);
  swarm("push-sum-revert", MakePushSumRevert, /*trace_capable=*/true,
        /*threads_capable=*/true);
  swarm("epoch-push-sum", MakeEpochPushSum, /*trace_capable=*/true,
        /*threads_capable=*/false);
  swarm("full-transfer", MakeFullTransfer, /*trace_capable=*/true,
        /*threads_capable=*/true);
  swarm("extremes", MakeExtremes, /*trace_capable=*/false,
        /*threads_capable=*/false);
  swarm("count-sketch", MakeCountSketch, /*trace_capable=*/true,
        /*threads_capable=*/false);
  swarm("count-sketch-reset", MakeCountSketchReset, /*trace_capable=*/true,
        /*threads_capable=*/false);
  swarm("node-aggregator", MakeNodeAggregator, /*trace_capable=*/false,
        /*threads_capable=*/false);
  DYNAGG_CHECK(
      registry
          .Register("tag-tree", ProtocolDef{nullptr, RunTagTree,
                                            /*trace_capable=*/false})
          .ok());
  DYNAGG_CHECK(
      registry
          .Register("fm-accuracy", ProtocolDef{nullptr, RunFmAccuracy,
                                               /*trace_capable=*/false})
          .ok());
}

}  // namespace internal
}  // namespace scenario
}  // namespace dynagg
