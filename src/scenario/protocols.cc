// Builtin protocol catalog.
//
// Round-based protocols (the gossip swarms) share one driver,
// DriveRoundTrial, which wraps the library's RunRounds harness
// (sim/round_driver.h) with the spec-declared failure plan, metric
// recording, and RNG stream layout. The stream conventions deliberately
// reproduce the legacy bench binaries so a 1-trial scenario is numerically
// identical to the main() it replaced:
//   - values:        Rng(trial_seed), U[0,100) per host;
//   - gossip rounds: Rng(DeriveSeed(trial_seed, seeds.round_stream));
//   - failure plan:  Rng(DeriveSeed(trial_seed, seeds.failure_stream)),
//     where churn plans default the stream to floor(death_prob * 1e5) —
//     the convention of ablation_tree_vs_gossip.
// The TAG overlay baseline (tag-tree) owns its whole trial loop because its
// epochs are tree-depth-sized rather than fixed-length.

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "agg/count_sketch.h"
#include "agg/count_sketch_reset.h"
#include "agg/epoch_push_sum.h"
#include "agg/extremes.h"
#include "agg/full_transfer.h"
#include "agg/push_sum.h"
#include "agg/push_sum_revert.h"
#include "common/rng.h"
#include "common/stats.h"
#include "scenario/trial.h"
#include "sim/failure.h"
#include "sim/metrics.h"
#include "sim/population.h"
#include "sim/round_driver.h"
#include "sim/workload.h"
#include "tree/spanning_tree.h"
#include "tree/tag.h"

namespace dynagg {
namespace scenario {
namespace {

Result<GossipMode> ParseGossipMode(const ScenarioSpec& spec) {
  DYNAGG_ASSIGN_OR_RETURN(const std::string mode,
                          spec.ParamString("protocol.mode", "pushpull"));
  if (mode == "push") return GossipMode::kPush;
  if (mode == "pushpull") return GossipMode::kPushPull;
  return Status::InvalidArgument(
      "protocol.mode must be push or pushpull, got '" + mode + "'");
}

Result<RevertMode> ParseRevertMode(const ScenarioSpec& spec) {
  DYNAGG_ASSIGN_OR_RETURN(const std::string revert,
                          spec.ParamString("protocol.revert", "fixed"));
  if (revert == "fixed") return RevertMode::kFixed;
  if (revert == "adaptive") return RevertMode::kAdaptive;
  return Status::InvalidArgument(
      "protocol.revert must be fixed or adaptive, got '" + revert + "'");
}

// --------------------------------------------------------- record config ---

struct RecordConfig {
  enum class Kind { kPerRound, kTailMean, kConvergence };
  Kind kind = Kind::kPerRound;
  int from = 0;
  int every = 1;
  double threshold = 1.0;
  bool threshold_relative = false;
};

Result<RecordConfig> ParseRecordConfig(const ScenarioSpec& spec) {
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams(
      "record.", {"kind", "from", "every", "threshold",
                  "threshold_relative"}));
  RecordConfig cfg;
  DYNAGG_ASSIGN_OR_RETURN(const std::string kind,
                          spec.ParamString("record.kind", "per_round"));
  if (kind == "per_round") {
    cfg.kind = RecordConfig::Kind::kPerRound;
  } else if (kind == "tail_mean") {
    cfg.kind = RecordConfig::Kind::kTailMean;
  } else if (kind == "convergence") {
    cfg.kind = RecordConfig::Kind::kConvergence;
  } else {
    return Status::InvalidArgument(
        "record.kind must be per_round, tail_mean or convergence, got '" +
        kind + "'");
  }
  DYNAGG_ASSIGN_OR_RETURN(const int64_t from,
                          spec.ParamInt("record.from", 0));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t every,
                          spec.ParamInt("record.every", 1));
  DYNAGG_ASSIGN_OR_RETURN(cfg.threshold,
                          spec.ParamDouble("record.threshold", 1.0));
  DYNAGG_ASSIGN_OR_RETURN(
      cfg.threshold_relative,
      spec.ParamBool("record.threshold_relative", false));
  if (from < 0 || every < 1) {
    return Status::InvalidArgument(
        "record.from must be >= 0 and record.every >= 1");
  }
  cfg.from = static_cast<int>(from);
  cfg.every = static_cast<int>(every);
  if (cfg.kind == RecordConfig::Kind::kTailMean && cfg.from >= spec.rounds) {
    // An empty averaging window would fabricate a perfect score of 0.
    return Status::InvalidArgument(
        "record.from = " + std::to_string(cfg.from) +
        " leaves no rounds to average (rounds = " +
        std::to_string(spec.rounds) + ")");
  }
  return cfg;
}

// -------------------------------------------------------- failure config ---

struct FailureConfig {
  enum class Kind { kNone, kKillRandomFraction, kKillTopFraction, kChurn };
  Kind kind = Kind::kNone;
  int round = 0;          // kill_* trigger round
  double fraction = 0.5;  // kill_* fraction
  int start = 0;          // churn window
  int end = -1;           // churn window end; -1 = spec.rounds
  double death_prob = 0.0;
  double return_factor = 4.0;
  double return_prob = -1.0;  // -1 = death_prob * return_factor
  HostId pin_alive = kInvalidHost;
};

Result<FailureConfig> ParseFailureConfig(const ScenarioSpec& spec) {
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams(
      "failure.", {"kind", "round", "fraction", "start", "end", "death_prob",
                   "return_factor", "return_prob", "pin_alive"}));
  FailureConfig cfg;
  DYNAGG_ASSIGN_OR_RETURN(const std::string kind,
                          spec.ParamString("failure.kind", "none"));
  if (kind == "none") {
    cfg.kind = FailureConfig::Kind::kNone;
  } else if (kind == "kill_random_fraction") {
    cfg.kind = FailureConfig::Kind::kKillRandomFraction;
  } else if (kind == "kill_top_fraction") {
    cfg.kind = FailureConfig::Kind::kKillTopFraction;
  } else if (kind == "churn") {
    cfg.kind = FailureConfig::Kind::kChurn;
  } else {
    return Status::InvalidArgument(
        "failure.kind must be none, kill_random_fraction, "
        "kill_top_fraction or churn, got '" +
        kind + "'");
  }
  DYNAGG_ASSIGN_OR_RETURN(const int64_t round,
                          spec.ParamInt("failure.round", 0));
  DYNAGG_ASSIGN_OR_RETURN(cfg.fraction,
                          spec.ParamDouble("failure.fraction", 0.5));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t start,
                          spec.ParamInt("failure.start", 0));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t end,
                          spec.ParamInt("failure.end", -1));
  DYNAGG_ASSIGN_OR_RETURN(cfg.death_prob,
                          spec.ParamDouble("failure.death_prob", 0.0));
  DYNAGG_ASSIGN_OR_RETURN(cfg.return_factor,
                          spec.ParamDouble("failure.return_factor", 4.0));
  DYNAGG_ASSIGN_OR_RETURN(cfg.return_prob,
                          spec.ParamDouble("failure.return_prob", -1.0));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t pin,
                          spec.ParamInt("failure.pin_alive", kInvalidHost));
  cfg.round = static_cast<int>(round);
  cfg.start = static_cast<int>(start);
  cfg.end = static_cast<int>(end);
  cfg.pin_alive = static_cast<HostId>(pin);
  if (cfg.fraction < 0.0 || cfg.fraction > 1.0) {
    return Status::InvalidArgument("failure.fraction must be in [0, 1]");
  }
  if (cfg.death_prob < 0.0 || cfg.death_prob > 1.0) {
    return Status::InvalidArgument("failure.death_prob must be in [0, 1]");
  }
  return cfg;
}

double ChurnReturnProb(const FailureConfig& cfg) {
  return cfg.return_prob >= 0.0 ? cfg.return_prob
                                : cfg.death_prob * cfg.return_factor;
}

/// Resolves the failure RNG stream: explicit seeds.failure_stream wins;
/// churn plans default to floor(death_prob * 1e5) — the stream convention
/// of the legacy churn ablation — and everything else to stream 2.
Result<uint64_t> FailureStream(const ScenarioSpec& spec,
                               const FailureConfig& cfg) {
  if (spec.HasParam("seeds.failure_stream")) {
    DYNAGG_ASSIGN_OR_RETURN(const int64_t stream,
                            spec.ParamInt("seeds.failure_stream", 2));
    return static_cast<uint64_t>(stream);
  }
  if (cfg.kind == FailureConfig::Kind::kChurn) {
    return static_cast<uint64_t>(cfg.death_prob * 1e5);
  }
  return uint64_t{2};
}

/// Builds the scripted plan. `values` backs kill_top_fraction and may be
/// null for protocols without per-host scalar values.
Result<FailurePlan> BuildFailurePlan(const FailureConfig& cfg, int n,
                                     int rounds,
                                     const std::vector<double>* values,
                                     Rng& fail_rng) {
  switch (cfg.kind) {
    case FailureConfig::Kind::kNone:
      return FailurePlan();
    case FailureConfig::Kind::kKillRandomFraction:
      return FailurePlan::KillRandomFraction(n, cfg.round, cfg.fraction,
                                             fail_rng);
    case FailureConfig::Kind::kKillTopFraction:
      if (values == nullptr) {
        return Status::InvalidArgument(
            "failure.kind = kill_top_fraction requires a value-based "
            "protocol");
      }
      return FailurePlan::KillTopFraction(*values, cfg.round, cfg.fraction);
    case FailureConfig::Kind::kChurn: {
      const int end = cfg.end >= 0 ? cfg.end : rounds;
      return FailurePlan::Churn(n, cfg.start, end, cfg.death_prob,
                                ChurnReturnProb(cfg), fail_rng);
    }
  }
  return Status::InvalidArgument("unreachable failure kind");
}

// ------------------------------------------------------------ round loop ---

/// Swarm adapter slotted into RunRounds: advances trace-backed
/// environments, re-pins a host alive (between the failure application and
/// the gossip exchange, exactly where the legacy benches revive their
/// leader), then delegates to the real swarm.
template <typename Swarm>
struct RoundHooks {
  Swarm& swarm;
  Environment* env;
  SimTime advance_period;
  HostId pin_alive;
  int round = 0;

  void RunRound(const Environment& e, Population& pop, Rng& rng) {
    if (advance_period > 0) {
      env->AdvanceTo(static_cast<SimTime>(round + 1) * advance_period);
    }
    if (pin_alive != kInvalidHost) pop.Revive(pin_alive);
    swarm.RunRound(e, pop, rng);
    ++round;
  }
};

/// Drives `swarm` for spec.rounds rounds under the spec's environment,
/// failure plan and recording config. `truth` is re-evaluated every round
/// over the live population; `failure_values` backs kill_top_fraction.
template <typename Swarm>
Result<TrialResult> DriveRoundTrial(
    const TrialContext& ctx, EnvHandle& env, Swarm& swarm,
    const std::function<double(HostId)>& estimate,
    const std::function<double(const Population&)>& truth,
    const std::vector<double>* failure_values) {
  const ScenarioSpec& spec = *ctx.spec;
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams("seeds.", {"round_stream",
                                                     "failure_stream"}));
  DYNAGG_ASSIGN_OR_RETURN(const RecordConfig rec, ParseRecordConfig(spec));
  DYNAGG_ASSIGN_OR_RETURN(const FailureConfig fail, ParseFailureConfig(spec));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t round_stream,
                          spec.ParamInt("seeds.round_stream", 1));
  DYNAGG_ASSIGN_OR_RETURN(const uint64_t fail_stream,
                          FailureStream(spec, fail));

  const int n = env.env->num_hosts();
  Rng fail_rng(DeriveSeed(ctx.trial_seed, fail_stream));
  DYNAGG_ASSIGN_OR_RETURN(
      const FailurePlan plan,
      BuildFailurePlan(fail, n, spec.rounds, failure_values, fail_rng));
  if (fail.pin_alive != kInvalidHost &&
      (fail.pin_alive < 0 || fail.pin_alive >= n)) {
    return Status::InvalidArgument("failure.pin_alive out of range");
  }

  Population pop(n);
  Rng rng(DeriveSeed(ctx.trial_seed,
                     static_cast<uint64_t>(round_stream)));

  TrialResult out;
  RunningStat tail;
  int converged_round = -1;
  const auto on_round_end = [&](int round) {
    const double tr = truth(pop);
    const double rms = RmsDeviationOverAlive(pop, tr, estimate);
    switch (rec.kind) {
      case RecordConfig::Kind::kPerRound:
        if (round >= rec.from && (round - rec.from) % rec.every == 0) {
          out.rows.push_back({static_cast<double>(round + 1), rms});
        }
        break;
      case RecordConfig::Kind::kTailMean:
        if (round >= rec.from) tail.Add(rms);
        break;
      case RecordConfig::Kind::kConvergence: {
        const double limit =
            rec.threshold_relative ? rec.threshold * tr : rec.threshold;
        if (converged_round < 0 && rms < limit) {
          converged_round = round + 1;
          // Later rounds cannot change the result; stop paying for them.
          return false;
        }
        break;
      }
    }
    return true;
  };

  RoundHooks<Swarm> hooks{swarm, env.env.get(), env.advance_period,
                          fail.pin_alive};
  RunRoundsUntil(hooks, *env.env, pop, plan, spec.rounds, rng,
                 on_round_end);

  switch (rec.kind) {
    case RecordConfig::Kind::kPerRound:
      out.columns = {"round", "rms"};
      break;
    case RecordConfig::Kind::kTailMean:
      out.columns = {"rms_tail_mean"};
      out.rows.push_back({tail.mean()});
      break;
    case RecordConfig::Kind::kConvergence:
      out.columns = {"rounds_to_converge"};
      out.rows.push_back({static_cast<double>(converged_round)});
      break;
  }
  return out;
}

/// Truth callback for averaging protocols.
std::function<double(const Population&)> AverageTruth(
    const std::vector<double>& values) {
  return [&values](const Population& pop) {
    return TrueAverage(values, pop);
  };
}

Result<int> CheckedHosts(const EnvHandle& env) {
  const int n = env.env->num_hosts();
  if (n <= 0) return Status::InvalidArgument("environment has no hosts");
  return n;
}

// --------------------------------------------------- averaging protocols ---

Result<TrialResult> RunPushSum(const TrialContext& ctx) {
  DYNAGG_RETURN_IF_ERROR(ctx.spec->CheckParams("protocol.", {"mode"}));
  DYNAGG_ASSIGN_OR_RETURN(const GossipMode mode, ParseGossipMode(*ctx.spec));
  DYNAGG_ASSIGN_OR_RETURN(EnvHandle env, MakeEnvironment(ctx));
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  const std::vector<double> values = UniformWorkloadValues(n, ctx.trial_seed);
  PushSumSwarm swarm(values, mode);
  return DriveRoundTrial(
      ctx, env, swarm, [&](HostId id) { return swarm.Estimate(id); },
      AverageTruth(values), &values);
}

Result<TrialResult> RunPushSumRevert(const TrialContext& ctx) {
  DYNAGG_RETURN_IF_ERROR(
      ctx.spec->CheckParams("protocol.", {"lambda", "mode", "revert"}));
  DYNAGG_ASSIGN_OR_RETURN(const double lambda,
                          ctx.spec->ParamDouble("protocol.lambda", 0.01));
  DYNAGG_ASSIGN_OR_RETURN(const GossipMode mode, ParseGossipMode(*ctx.spec));
  DYNAGG_ASSIGN_OR_RETURN(const RevertMode revert,
                          ParseRevertMode(*ctx.spec));
  DYNAGG_ASSIGN_OR_RETURN(EnvHandle env, MakeEnvironment(ctx));
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  const std::vector<double> values = UniformWorkloadValues(n, ctx.trial_seed);
  PushSumRevertSwarm swarm(
      values, {.lambda = lambda, .mode = mode, .revert = revert});
  return DriveRoundTrial(
      ctx, env, swarm, [&](HostId id) { return swarm.Estimate(id); },
      AverageTruth(values), &values);
}

Result<TrialResult> RunEpochPushSum(const TrialContext& ctx) {
  DYNAGG_RETURN_IF_ERROR(ctx.spec->CheckParams(
      "protocol.", {"epoch_length", "mode", "phase_spread"}));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t epoch_length,
                          ctx.spec->ParamInt("protocol.epoch_length", 10));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t phase_spread,
                          ctx.spec->ParamInt("protocol.phase_spread", 0));
  DYNAGG_ASSIGN_OR_RETURN(const GossipMode mode, ParseGossipMode(*ctx.spec));
  if (epoch_length < 1) {
    return Status::InvalidArgument("protocol.epoch_length must be >= 1");
  }
  if (phase_spread < 0 || phase_spread > epoch_length) {
    return Status::InvalidArgument(
        "protocol.phase_spread must be in [0, epoch_length]");
  }
  DYNAGG_ASSIGN_OR_RETURN(EnvHandle env, MakeEnvironment(ctx));
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  const std::vector<double> values = UniformWorkloadValues(n, ctx.trial_seed);
  std::vector<int> phases;
  if (phase_spread > 0) {
    phases.resize(n);
    for (int i = 0; i < n; ++i) {
      phases[i] = i % static_cast<int>(phase_spread);
    }
  }
  EpochPushSumSwarm swarm(
      values,
      EpochParams{.epoch_length = static_cast<int>(epoch_length),
                  .mode = mode},
      phases);
  return DriveRoundTrial(
      ctx, env, swarm, [&](HostId id) { return swarm.Estimate(id); },
      AverageTruth(values), &values);
}

Result<TrialResult> RunFullTransfer(const TrialContext& ctx) {
  DYNAGG_RETURN_IF_ERROR(
      ctx.spec->CheckParams("protocol.", {"lambda", "parcels", "window"}));
  DYNAGG_ASSIGN_OR_RETURN(const double lambda,
                          ctx.spec->ParamDouble("protocol.lambda", 0.1));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t parcels,
                          ctx.spec->ParamInt("protocol.parcels", 4));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t window,
                          ctx.spec->ParamInt("protocol.window", 3));
  if (parcels < 1 || window < 1) {
    return Status::InvalidArgument(
        "protocol.parcels and protocol.window must be >= 1");
  }
  DYNAGG_ASSIGN_OR_RETURN(EnvHandle env, MakeEnvironment(ctx));
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  const std::vector<double> values = UniformWorkloadValues(n, ctx.trial_seed);
  FullTransferSwarm swarm(values,
                          {.lambda = lambda,
                           .parcels = static_cast<int>(parcels),
                           .window = static_cast<int>(window)});
  return DriveRoundTrial(
      ctx, env, swarm, [&](HostId id) { return swarm.Estimate(id); },
      AverageTruth(values), &values);
}

Result<TrialResult> RunExtremes(const TrialContext& ctx) {
  DYNAGG_RETURN_IF_ERROR(
      ctx.spec->CheckParams("protocol.", {"kind", "cutoff", "mode"}));
  DYNAGG_ASSIGN_OR_RETURN(const std::string kind_name,
                          ctx.spec->ParamString("protocol.kind", "max"));
  ExtremeKind kind;
  if (kind_name == "max") {
    kind = ExtremeKind::kMaximum;
  } else if (kind_name == "min") {
    kind = ExtremeKind::kMinimum;
  } else {
    return Status::InvalidArgument(
        "protocol.kind must be max or min, got '" + kind_name + "'");
  }
  DYNAGG_ASSIGN_OR_RETURN(const int64_t cutoff,
                          ctx.spec->ParamInt("protocol.cutoff", 12));
  DYNAGG_ASSIGN_OR_RETURN(const GossipMode mode, ParseGossipMode(*ctx.spec));
  DYNAGG_ASSIGN_OR_RETURN(EnvHandle env, MakeEnvironment(ctx));
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  const std::vector<double> values = UniformWorkloadValues(n, ctx.trial_seed);
  std::vector<uint64_t> keys(n);
  std::iota(keys.begin(), keys.end(), uint64_t{0});
  DynamicExtremeSwarm swarm(values, keys,
                            ExtremeParams{.kind = kind,
                                          .cutoff = static_cast<int>(cutoff),
                                          .mode = mode});
  const auto truth = [&values, kind](const Population& pop) {
    bool first = true;
    double best = 0.0;
    for (const HostId id : pop.alive_ids()) {
      const double v = values[id];
      if (first || (kind == ExtremeKind::kMaximum ? v > best : v < best)) {
        best = v;
        first = false;
      }
    }
    return best;
  };
  return DriveRoundTrial(
      ctx, env, swarm, [&](HostId id) { return swarm.Estimate(id); }, truth,
      &values);
}

// ---------------------------------------------------- counting protocols ---

Result<std::vector<int64_t>> Multiplicities(const TrialContext& ctx, int n) {
  DYNAGG_ASSIGN_OR_RETURN(const int64_t mult,
                          ctx.spec->ParamInt("protocol.multiplicity", 1));
  if (mult < 0) {
    return Status::InvalidArgument("protocol.multiplicity must be >= 0");
  }
  return std::vector<int64_t>(n, mult);
}

std::function<double(const Population&)> CountTruth(
    std::vector<int64_t> multiplicities) {
  return [mult = std::move(multiplicities)](const Population& pop) {
    int64_t total = 0;
    for (const HostId id : pop.alive_ids()) total += mult[id];
    return static_cast<double>(total);
  };
}

Result<TrialResult> RunCountSketch(const TrialContext& ctx) {
  DYNAGG_RETURN_IF_ERROR(ctx.spec->CheckParams(
      "protocol.", {"bins", "levels", "mode", "multiplicity"}));
  CountSketchParams params;
  DYNAGG_ASSIGN_OR_RETURN(const int64_t bins,
                          ctx.spec->ParamInt("protocol.bins", params.bins));
  DYNAGG_ASSIGN_OR_RETURN(
      const int64_t levels,
      ctx.spec->ParamInt("protocol.levels", params.levels));
  DYNAGG_ASSIGN_OR_RETURN(params.mode, ParseGossipMode(*ctx.spec));
  params.bins = static_cast<int>(bins);
  params.levels = static_cast<int>(levels);
  DYNAGG_ASSIGN_OR_RETURN(EnvHandle env, MakeEnvironment(ctx));
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  DYNAGG_ASSIGN_OR_RETURN(const std::vector<int64_t> mult,
                          Multiplicities(ctx, n));
  CountSketchSwarm swarm(mult, params);
  return DriveRoundTrial(
      ctx, env, swarm, [&](HostId id) { return swarm.EstimateCount(id); },
      CountTruth(mult), nullptr);
}

Result<TrialResult> RunCountSketchReset(const TrialContext& ctx) {
  DYNAGG_RETURN_IF_ERROR(ctx.spec->CheckParams(
      "protocol.", {"bins", "levels", "cutoff_base", "cutoff_slope",
                    "cutoff_enabled", "mode", "multiplicity"}));
  CsrParams params;
  DYNAGG_ASSIGN_OR_RETURN(const int64_t bins,
                          ctx.spec->ParamInt("protocol.bins", params.bins));
  DYNAGG_ASSIGN_OR_RETURN(
      const int64_t levels,
      ctx.spec->ParamInt("protocol.levels", params.levels));
  DYNAGG_ASSIGN_OR_RETURN(
      params.cutoff_base,
      ctx.spec->ParamDouble("protocol.cutoff_base", params.cutoff_base));
  DYNAGG_ASSIGN_OR_RETURN(
      params.cutoff_slope,
      ctx.spec->ParamDouble("protocol.cutoff_slope", params.cutoff_slope));
  DYNAGG_ASSIGN_OR_RETURN(params.cutoff_enabled,
                          ctx.spec->ParamBool("protocol.cutoff_enabled",
                                              params.cutoff_enabled));
  DYNAGG_ASSIGN_OR_RETURN(params.mode, ParseGossipMode(*ctx.spec));
  params.bins = static_cast<int>(bins);
  params.levels = static_cast<int>(levels);
  DYNAGG_ASSIGN_OR_RETURN(EnvHandle env, MakeEnvironment(ctx));
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  DYNAGG_ASSIGN_OR_RETURN(const std::vector<int64_t> mult,
                          Multiplicities(ctx, n));
  CsrSwarm swarm(mult, params);
  return DriveRoundTrial(
      ctx, env, swarm, [&](HostId id) { return swarm.EstimateCount(id); },
      CountTruth(mult), nullptr);
}

// ------------------------------------------------------ overlay baseline ---

/// TAG spanning-tree aggregation over repeated epochs under churn,
/// reproducing the loop of ablation_tree_vs_gossip: each epoch floods a
/// fresh BFS tree from the root, runs one tree-depth-sized epoch under a
/// churn plan drawn from a shared stream, revives the leader, and records
/// the leader's error against the live truth.
Result<TrialResult> RunTagTree(const TrialContext& ctx) {
  const ScenarioSpec& spec = *ctx.spec;
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams("protocol.", {"epochs", "root"}));
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams("seeds.", {"round_stream",
                                                     "failure_stream"}));
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams("record.", {}));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t epochs,
                          spec.ParamInt("protocol.epochs", 30));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t root_id,
                          spec.ParamInt("protocol.root", 0));
  DYNAGG_ASSIGN_OR_RETURN(const FailureConfig fail,
                          ParseFailureConfig(spec));
  if (fail.kind != FailureConfig::Kind::kNone &&
      fail.kind != FailureConfig::Kind::kChurn) {
    return Status::InvalidArgument(
        "tag-tree supports failure.kind none or churn");
  }
  DYNAGG_ASSIGN_OR_RETURN(const uint64_t fail_stream,
                          FailureStream(spec, fail));
  if (epochs < 1) {
    return Status::InvalidArgument("protocol.epochs must be >= 1");
  }

  DYNAGG_ASSIGN_OR_RETURN(EnvHandle env, MakeEnvironment(ctx));
  DYNAGG_ASSIGN_OR_RETURN(const int n, CheckedHosts(env));
  const HostId root = static_cast<HostId>(root_id);
  if (root < 0 || root >= n) {
    return Status::InvalidArgument("protocol.root out of range");
  }
  const std::vector<double> values = UniformWorkloadValues(n, ctx.trial_seed);

  Rng churn_rng(DeriveSeed(ctx.trial_seed, fail_stream));
  Population pop(n);
  RunningStat err;
  int failed_epochs = 0;
  int round = 0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const SpanningTree tree = BuildBfsTree(*env.env, pop, root);
    FailurePlan churn;
    if (fail.kind == FailureConfig::Kind::kChurn) {
      churn = FailurePlan::Churn(n, round, round + tree.max_depth + 1,
                                 fail.death_prob, ChurnReturnProb(fail),
                                 churn_rng);
    }
    const TagEpochResult result =
        RunTagEpoch(tree, values, pop, churn, round);
    round += tree.max_depth + 1;
    // Keep the leader alive so epochs stay comparable.
    pop.Revive(root);
    if (!result.valid || result.count == 0) {
      ++failed_epochs;
      continue;
    }
    const double truth = TrueAverage(values, pop);
    err.Add(std::abs(result.average - truth));
  }

  TrialResult out;
  out.columns = {"tag_mean_abs_err", "tag_failed_epochs_pct"};
  out.rows.push_back(
      {err.mean(), 100.0 * failed_epochs / static_cast<double>(epochs)});
  return out;
}

}  // namespace

namespace internal {

void RegisterBuiltinProtocols(Registry<ProtocolRunner>& registry) {
  DYNAGG_CHECK(registry.Register("push-sum", RunPushSum).ok());
  DYNAGG_CHECK(registry.Register("push-sum-revert", RunPushSumRevert).ok());
  DYNAGG_CHECK(registry.Register("epoch-push-sum", RunEpochPushSum).ok());
  DYNAGG_CHECK(registry.Register("full-transfer", RunFullTransfer).ok());
  DYNAGG_CHECK(registry.Register("extremes", RunExtremes).ok());
  DYNAGG_CHECK(registry.Register("count-sketch", RunCountSketch).ok());
  DYNAGG_CHECK(
      registry.Register("count-sketch-reset", RunCountSketchReset).ok());
  DYNAGG_CHECK(registry.Register("tag-tree", RunTagTree).ok());
}

}  // namespace internal
}  // namespace scenario
}  // namespace dynagg
