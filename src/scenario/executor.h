// Parallel trial executor.
//
// An experiment expands into independent units — one per (sweep value,
// trial) pair — that are sharded across std::thread workers. Every unit
// derives all of its randomness from TrialSeed(spec.seed, trial), so the
// assembled table is a pure function of the spec: running with 1 worker or
// N workers produces byte-identical output (executor_test asserts this).

#ifndef DYNAGG_SCENARIO_EXECUTOR_H_
#define DYNAGG_SCENARIO_EXECUTOR_H_

#include <string>

#include "common/stats.h"
#include "common/status.h"
#include "scenario/spec.h"

namespace dynagg {
namespace scenario {

/// Runs every (sweep value, trial) unit of `spec` on up to `threads`
/// workers and assembles one table: the sweep column (named after the
/// swept key's last path segment), a trial column when trials > 1, then the
/// protocol's metric columns. Unit order in the table is sweep-major and
/// thread-count independent.
Result<CsvTable> RunExperiment(const ScenarioSpec& spec, int threads = 1);

}  // namespace scenario
}  // namespace dynagg

#endif  // DYNAGG_SCENARIO_EXECUTOR_H_
