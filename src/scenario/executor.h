// Parallel trial executor.
//
// An experiment expands into independent units — one per (sweep value,
// sweep2 value, trial) triple — that are sharded across std::thread
// workers. Every unit derives all of its randomness from
// TrialSeed(spec.seed, trial), so the assembled tables are a pure function
// of the spec: running with 1 worker or N workers produces byte-identical
// output (executor_test asserts this).
//
// Each unit emits a typed RecordBatch (scenario/trial.h); the executor
// merges the batches deterministically, in sweep-major unit order, into one
// table per record group:
//   - a summary table (scalars + bandwidth), one row per unit;
//   - one series table (all series share an x axis), one row per x;
//   - one table per histogram record, one row per bucket.
// With `aggregate = ...` the trial axis is collapsed instead: scalar,
// bandwidth and series columns become one column per requested statistic,
// and histogram bucket counts are pooled before the CDF is computed.

#ifndef DYNAGG_SCENARIO_EXECUTOR_H_
#define DYNAGG_SCENARIO_EXECUTOR_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/telemetry.h"
#include "scenario/result.h"
#include "scenario/spec.h"

namespace dynagg {
namespace scenario {

/// Structural validation without executing a trial: registry lookups
/// (protocol, environment, driver), driver compatibility (`driver = trace`
/// needs a trace-providing environment and a trace-capable protocol;
/// gossip_period / sample_period are trace-driver keys), rounds/trials
/// bounds, metric/aggregate grammar, sweep axis sanity (including that
/// every sweep value is applicable to its key). This is the whole
/// preflight of RunExperiment and the backing of `dynagg_run --dry-run`;
/// protocol/environment parameter values are validated by the factories at
/// execution time.
Status ValidateExperiment(const ScenarioSpec& spec);

/// Execution knobs beyond the spec itself.
struct RunOptions {
  /// Worker threads for the unit shard loop (clamped to [1, num units]).
  int threads = 1;
  /// Telemetry override: "" defers to spec.telemetry; "off" / "summary" /
  /// "profile" force a mode (dynagg_run --telemetry). Collection also
  /// requires a non-null telemetry out-param on RunExperiment.
  std::string telemetry;
  /// Completion ticker: invoked after every finished unit, serialized
  /// under an executor-internal mutex, with (units done, total units).
  /// Backs dynagg_run --progress.
  std::function<void(int done, int total)> on_unit_done;
};

/// Telemetry collected by one RunExperiment call (modes summary/profile).
struct ExperimentTelemetry {
  std::string experiment;
  /// Per-sweep-point phase timings and counters: one "telemetry" table
  /// with one row per cell — mean per-trial phase milliseconds, summed
  /// engine counters, and the fraction of trial wall-clock covered by
  /// spans. A vector (of one) so it feeds RenderTables/WriteTables
  /// directly and stays empty until a run collects telemetry.
  std::vector<ResultTable> summary;
  /// Per-unit raw telemetry. Span events are populated in profile mode
  /// only; counters and accumulated timings are always present.
  std::vector<obs::TrialTelemetry> units;
};

/// Runs every (sweep value, sweep2 value, trial) unit of `spec` on up to
/// `threads` workers and assembles the result tables. Axis columns come
/// first in every table: the sweep column (named after the swept key's
/// last path segment), the sweep2 column, then a trial column when
/// trials > 1 and no aggregation collapses it. Unit order in the tables is
/// sweep-major, then sweep2, then trial, and thread-count independent.
Result<std::vector<ResultTable>> RunExperiment(const ScenarioSpec& spec,
                                               int threads = 1);

/// RunExperiment with execution options and telemetry collection. When the
/// effective telemetry mode (options override, else spec key) is summary
/// or profile and `telemetry` is non-null, per-trial spans/counters are
/// collected and assembled into `*telemetry`. The experiment's own result
/// tables are byte-identical whether telemetry is collected or not.
Result<std::vector<ResultTable>> RunExperiment(const ScenarioSpec& spec,
                                               const RunOptions& options,
                                               ExperimentTelemetry* telemetry);

}  // namespace scenario
}  // namespace dynagg

#endif  // DYNAGG_SCENARIO_EXECUTOR_H_
