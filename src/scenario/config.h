// Shared trial configuration: the spec-declared metric flags, record.*
// knobs, failure plans and RNG stream layout consumed by the trial drivers
// (scenario/drivers.cc) and by custom whole-trial protocols (tag-tree).
//
// The stream-resolution conventions deliberately reproduce the legacy
// bench binaries so a 1-trial scenario is numerically identical to the
// main() it replaced:
//   - gossip rounds: Rng(DeriveSeed(trial_seed, seeds.round_stream)),
//     where the symbolic value `hosts` resolves to the population size
//     (fig06's per-size decorrelation) and `sweep+N` resolves to
//     N + sweep_index (fig11's per-series streams);
//   - failure plan:  Rng(DeriveSeed(trial_seed, seeds.failure_stream)),
//     where churn plans default the stream to floor(death_prob * 1e5) —
//     the convention of ablation_tree_vs_gossip.

#ifndef DYNAGG_SCENARIO_CONFIG_H_
#define DYNAGG_SCENARIO_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "scenario/trial.h"
#include "sim/churn.h"
#include "sim/failure.h"

namespace dynagg {
namespace scenario {

/// Which of the rounds driver's metrics the spec requests.
struct MetricFlags {
  bool rms = false;
  bool tail_mean = false;
  bool convergence = false;
  bool bandwidth = false;
  bool final_error_cdf = false;
  /// `final_rms`: scalar, the (optionally relative) RMS deviation after the
  /// last round — the legacy benches' "floor" (series.back()).
  bool final_rms = false;
  /// `recovery_rounds(rms)`: scalar, FirstSustainedBelow over the rounds >=
  /// record.recovery_from window against a floor-derived threshold
  /// max(recovery_min, recovery_mult * floor + recovery_add), where floor is
  /// the window's last value. -1 = never re-entered the floor.
  bool recovery = false;
  /// `gossip_bytes`: scalar, the protocol's modelled per-host per-round
  /// gossip payload (SwarmHandle::gossip_bytes; the Invert-Average
  /// bandwidth-scaling argument). Protocols without a model reject it.
  bool gossip_bytes = false;
  /// The series-x position (round + 1) of every `rms_at(R)` selector, in
  /// spec order: scalar snapshots of the rms series.
  std::vector<double> rms_at;
  /// The absolute threshold of every `rounds_below(rms, T)` selector:
  /// scalar FirstSustainedBelow over the full per-round series.
  std::vector<double> rounds_below;
  /// The host of every `final_rel_error(H)` selector: scalar
  /// |estimate(H) - truth| / truth after the last round.
  std::vector<int> rel_error_hosts;
  /// The q of every `quantile(final_error, q)` selector, in spec order:
  /// quantiles of the per-host |estimate - truth| distribution after the
  /// last round, emitted as QuantileRecords.
  std::vector<double> final_error_quantiles;
  /// Any selector the swarm listed as extra (handled by its finish hook).
  bool extra = false;

  bool NeedsRoundEvaluation() const {
    return rms || tail_mean || convergence || final_rms || recovery ||
           !rms_at.empty() || !rounds_below.empty();
  }
  /// Early convergence stop is only sound when no other metric needs the
  /// remaining rounds.
  bool OnlyConvergence() const {
    return convergence && !rms && !tail_mean && !bandwidth &&
           !final_error_cdf && !final_rms && !recovery && !gossip_bytes &&
           rms_at.empty() && rounds_below.empty() &&
           rel_error_hosts.empty() && final_error_quantiles.empty() && !extra;
  }
};

/// Validates the spec's metric list against the rounds driver's catalog
/// plus the swarm's `extra` selectors and flags what is requested.
Result<MetricFlags> ClassifyDriverMetrics(const ScenarioSpec& spec,
                                          const std::vector<std::string>&
                                              extra);

/// The record.* knobs of the rounds driver's metrics.
struct RecordConfig {
  int from = 0;
  int every = 1;
  double threshold = 1.0;
  bool threshold_relative = false;
  double cdf_lo = 0.0;
  double cdf_hi = 0.0;
  int cdf_buckets = 20;
  /// record.relative: every rms evaluation (series, tail, final_rms,
  /// rms_at, rounds_below, recovery window) is divided by the current
  /// truth — the cutoff ablation's rms/truth convention.
  bool relative = false;
  /// recovery_rounds(rms) knobs: the window start round and the
  /// floor-derived threshold max(min, mult * floor + add).
  int recovery_from = 0;
  double recovery_mult = 2.0;
  double recovery_add = 0.0;
  double recovery_min = 0.0;
};

Result<RecordConfig> ParseRecordConfig(
    const ScenarioSpec& spec, const std::vector<std::string>& extra_keys);

/// Spec-only window checks for the rounds driver's metrics: every windowed
/// selector must leave at least one round inside its window, and the cdf
/// histogram must be well-formed. Factored out of the driver so --dry-run
/// applies the identical checks to the base spec and every swept variant
/// (a rounds sweep can empty a window the base spec satisfies).
Status CheckRecordWindows(const ScenarioSpec& spec, const MetricFlags& metrics,
                          const RecordConfig& cfg);

/// The failure.* plan declaration.
struct FailureConfig {
  enum class Kind { kNone, kKillRandomFraction, kKillTopFraction, kChurn };
  Kind kind = Kind::kNone;
  int round = 0;          // kill_* trigger round
  double fraction = 0.5;  // kill_* fraction
  int start = 0;          // churn window
  int end = -1;           // churn window end; -1 = spec.rounds
  double death_prob = 0.0;
  double return_factor = 4.0;
  double return_prob = -1.0;  // -1 = death_prob * return_factor
  HostId pin_alive = kInvalidHost;
};

Result<FailureConfig> ParseFailureConfig(const ScenarioSpec& spec);

double ChurnReturnProb(const FailureConfig& cfg);

/// Resolves the failure RNG stream: explicit seeds.failure_stream wins;
/// churn plans default to floor(death_prob * 1e5) and everything else to
/// stream 2.
Result<uint64_t> FailureStream(const ScenarioSpec& spec,
                               const FailureConfig& cfg);

/// Resolves the gossip-round RNG stream: a '+'-separated sum of terms,
/// each an integer, `hosts` (the population size `n`), `sweep` / `sweep2`
/// (the sweep *index* — fig11's `sweep+10` per-series convention), or
/// `sweepval*M` / `sweep2val*M` (the truncated sweep *value* times an
/// integer scale — the ablation benches' DeriveSeed(seed, lambda * 1e4)
/// style conventions; `*M` may be omitted for scale 1).
Result<uint64_t> RoundStream(const ScenarioSpec& spec,
                             const TrialContext& ctx, int n);

/// Resolves the keyed-workload RNG stream (seeds.workload_stream), the
/// same term-sum grammar as seeds.round_stream; defaults to stream 3 so
/// workload draws never collide with the gossip (1) or failure (2)
/// streams.
Result<uint64_t> WorkloadStream(const ScenarioSpec& spec,
                                const TrialContext& ctx, int n);

/// Resolves the per-message network RNG stream (seeds.message_stream),
/// same grammar; defaults to stream 5 (after the epoch phase streams at
/// 4). The async driver's NetworkModel derives every per-message decision
/// from this root.
Result<uint64_t> MessageStream(const ScenarioSpec& spec,
                               const TrialContext& ctx, int n);

/// Builds the scripted plan. `values` backs kill_top_fraction and may be
/// null for protocols without per-host scalar values.
Result<FailurePlan> BuildFailurePlan(const FailureConfig& cfg, int n,
                                     int rounds,
                                     const std::vector<double>* values,
                                     Rng& fail_rng);

/// The churn.* plan declaration: two-sided membership dynamics (arrivals,
/// deaths, rebirths with ID reuse) on top of the fixed `hosts` universe.
/// Distinct from `failure.kind = churn`, whose revives silently preserve
/// host state: churn.* rebirths RESET the host through the swarm's
/// on_join hook.
struct ChurnConfig {
  bool enabled = false;      // any churn.* key present
  int initial = -1;          // hosts alive at round 0; -1 = spec.hosts
  double arrival_rate = 0;   // expected first-time arrivals per round
  double death_prob = 0;     // per-round death probability per alive host
  double rebirth_prob = 0;   // per-round rebirth probability per dead host
  int start = 0;             // churn window
  int end = -1;              // churn window end; -1 = spec.rounds
  int max_alive = -1;        // alive-count growth cap; -1 = spec.hosts
};

Result<ChurnConfig> ParseChurnConfig(const ScenarioSpec& spec);

/// Resolves the churn RNG stream (seeds.churn_stream), the same term-sum
/// grammar as seeds.round_stream; defaults to stream 6 so churn draws
/// never collide with the gossip (1), failure (2), workload (3), epoch
/// phase (4) or message (5) streams.
Result<uint64_t> ChurnStream(const ScenarioSpec& spec, const TrialContext& ctx,
                             int n);

/// Builds the precomputed churn schedule; `rounds` backs the default
/// window end. Range checks (initial/max_alive vs n) run here so dry-run
/// surfaces them without executing a trial.
Result<ChurnPlan> BuildChurnPlan(const ChurnConfig& cfg, int n, int rounds,
                                 Rng& churn_rng);

}  // namespace scenario
}  // namespace dynagg

#endif  // DYNAGG_SCENARIO_CONFIG_H_
