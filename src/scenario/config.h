// Shared trial configuration: the spec-declared metric flags, record.*
// knobs, failure plans and RNG stream layout consumed by the trial drivers
// (scenario/drivers.cc) and by custom whole-trial protocols (tag-tree).
//
// The stream-resolution conventions deliberately reproduce the legacy
// bench binaries so a 1-trial scenario is numerically identical to the
// main() it replaced:
//   - gossip rounds: Rng(DeriveSeed(trial_seed, seeds.round_stream)),
//     where the symbolic value `hosts` resolves to the population size
//     (fig06's per-size decorrelation) and `sweep+N` resolves to
//     N + sweep_index (fig11's per-series streams);
//   - failure plan:  Rng(DeriveSeed(trial_seed, seeds.failure_stream)),
//     where churn plans default the stream to floor(death_prob * 1e5) —
//     the convention of ablation_tree_vs_gossip.

#ifndef DYNAGG_SCENARIO_CONFIG_H_
#define DYNAGG_SCENARIO_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "scenario/trial.h"
#include "sim/failure.h"

namespace dynagg {
namespace scenario {

/// Which of the rounds driver's metrics the spec requests.
struct MetricFlags {
  bool rms = false;
  bool tail_mean = false;
  bool convergence = false;
  bool bandwidth = false;
  bool final_error_cdf = false;
  /// The q of every `quantile(final_error, q)` selector, in spec order:
  /// quantiles of the per-host |estimate - truth| distribution after the
  /// last round, emitted as QuantileRecords.
  std::vector<double> final_error_quantiles;
  /// Any selector the swarm listed as extra (handled by its finish hook).
  bool extra = false;

  bool NeedsRoundEvaluation() const { return rms || tail_mean || convergence; }
  /// Early convergence stop is only sound when no other metric needs the
  /// remaining rounds.
  bool OnlyConvergence() const {
    return convergence && !rms && !tail_mean && !bandwidth &&
           !final_error_cdf && final_error_quantiles.empty() && !extra;
  }
};

/// Validates the spec's metric list against the rounds driver's catalog
/// plus the swarm's `extra` selectors and flags what is requested.
Result<MetricFlags> ClassifyDriverMetrics(const ScenarioSpec& spec,
                                          const std::vector<std::string>&
                                              extra);

/// The record.* knobs of the rounds driver's metrics.
struct RecordConfig {
  int from = 0;
  int every = 1;
  double threshold = 1.0;
  bool threshold_relative = false;
  double cdf_lo = 0.0;
  double cdf_hi = 0.0;
  int cdf_buckets = 20;
};

Result<RecordConfig> ParseRecordConfig(
    const ScenarioSpec& spec, const std::vector<std::string>& extra_keys);

/// The failure.* plan declaration.
struct FailureConfig {
  enum class Kind { kNone, kKillRandomFraction, kKillTopFraction, kChurn };
  Kind kind = Kind::kNone;
  int round = 0;          // kill_* trigger round
  double fraction = 0.5;  // kill_* fraction
  int start = 0;          // churn window
  int end = -1;           // churn window end; -1 = spec.rounds
  double death_prob = 0.0;
  double return_factor = 4.0;
  double return_prob = -1.0;  // -1 = death_prob * return_factor
  HostId pin_alive = kInvalidHost;
};

Result<FailureConfig> ParseFailureConfig(const ScenarioSpec& spec);

double ChurnReturnProb(const FailureConfig& cfg);

/// Resolves the failure RNG stream: explicit seeds.failure_stream wins;
/// churn plans default to floor(death_prob * 1e5) and everything else to
/// stream 2.
Result<uint64_t> FailureStream(const ScenarioSpec& spec,
                               const FailureConfig& cfg);

/// Resolves the gossip-round RNG stream: an integer, the symbolic value
/// `hosts` (resolves to the population size `n`), or `sweep+N` (resolves
/// to N + ctx.sweep_index — fig11 decorrelates its per-lambda series this
/// way).
Result<uint64_t> RoundStream(const ScenarioSpec& spec,
                             const TrialContext& ctx, int n);

/// Builds the scripted plan. `values` backs kill_top_fraction and may be
/// null for protocols without per-host scalar values.
Result<FailurePlan> BuildFailurePlan(const FailureConfig& cfg, int n,
                                     int rounds,
                                     const std::vector<double>* values,
                                     Rng& fail_rng);

}  // namespace scenario
}  // namespace dynagg

#endif  // DYNAGG_SCENARIO_CONFIG_H_
