// The executor's output unit, shared with the sinks.

#ifndef DYNAGG_SCENARIO_RESULT_H_
#define DYNAGG_SCENARIO_RESULT_H_

#include <string>

#include "common/stats.h"

namespace dynagg {
namespace scenario {

/// One assembled output table. Experiments recording a single group produce
/// exactly one table; multi-metric experiments produce several, labelled
/// "summary", "series", or the histogram's record label.
struct ResultTable {
  std::string label;
  CsvTable table;
};

}  // namespace scenario
}  // namespace dynagg

#endif  // DYNAGG_SCENARIO_RESULT_H_
