#include "scenario/sink.h"

#include <cstdio>

namespace dynagg {
namespace scenario {

namespace {

/// JSON string escaping for column/experiment names (control characters,
/// quotes, backslashes).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void RenderJsonl(const CsvTable& table, const std::string& experiment,
                 const std::string& record, std::string* out) {
  const std::string name = JsonEscape(experiment);
  const std::string record_field =
      record.empty() ? "" : ",\"record\":\"" + JsonEscape(record) + "\"";
  char buf[64];
  for (int64_t i = 0; i < table.num_rows(); ++i) {
    *out += "{\"experiment\":\"" + name + "\"" + record_field;
    const std::vector<double>& row = table.row(i);
    for (size_t c = 0; c < row.size(); ++c) {
      std::snprintf(buf, sizeof(buf), "%.17g", row[c]);
      *out += ",\"" + JsonEscape(table.columns()[c]) + "\":" + buf;
    }
    *out += "}\n";
  }
}

}  // namespace

Result<std::string> RenderTables(const std::vector<ResultTable>& tables,
                                 const std::string& experiment,
                                 const std::string& format) {
  if (tables.empty()) {
    return Status::InvalidArgument("experiment '" + experiment +
                                   "' produced no tables");
  }
  // A lone table keeps the pre-Recorder output layout byte-for-byte; the
  // record label only appears once there is more than one group.
  const bool labelled = tables.size() > 1;
  if (format == "csv") {
    std::string out = "# experiment: " + experiment + "\n";
    for (const ResultTable& result : tables) {
      if (labelled) out += "# record: " + result.label + "\n";
      out += result.table.ToCsv();
    }
    return out;
  }
  if (format == "jsonl") {
    std::string out;
    for (const ResultTable& result : tables) {
      RenderJsonl(result.table, experiment,
                  labelled ? result.label : std::string(), &out);
    }
    return out;
  }
  return Status::InvalidArgument("unknown output format '" + format +
                                 "' (csv or jsonl)");
}

Status WriteTables(const std::vector<ResultTable>& tables,
                   const std::string& experiment, const std::string& format,
                   const std::string& path, bool append) {
  DYNAGG_ASSIGN_OR_RETURN(const std::string text,
                          RenderTables(tables, experiment, format));
  if (path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return Status::OK();
  }
  std::FILE* f = std::fopen(path.c_str(), append ? "a" : "w");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open output file '" + path +
                                   "'");
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int close_err = std::fclose(f);
  if (written != text.size() || close_err != 0) {
    return Status::Corruption("short write to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace scenario
}  // namespace dynagg
