// Builtin environment catalog: uniform, spatial, random-graph, haggle,
// crawdad.
//
// Each factory validates its env.* parameters against an allowlist (typos
// fail loudly) and returns a fully constructed EnvHandle. Stochastic
// environments derive their seeds from the trial seed so trials stay
// independent and the parallel executor deterministic; the crawdad
// environment replays an external contact table instead (env.trace_file),
// so every trial observes the same real-world trace.

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>

#include "common/rng.h"
#include "env/crawdad.h"
#include "env/haggle_gen.h"
#include "env/random_graph_env.h"
#include "env/spatial_env.h"
#include "env/trace_env.h"
#include "env/uniform_env.h"
#include "scenario/trial.h"

namespace dynagg {
namespace scenario {
namespace {

// Each environment's spec-only checks live in a Validate*Spec function
// wired onto EnvironmentDef::validate, so --dry-run applies them to the
// base spec and every swept variant (a hosts sweep can undercut
// env.degree). The factories call the same function first — the runtime
// rejects exactly what --dry-run rejects, never more.

Status ValidateUniformSpec(const ScenarioSpec& spec) {
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams("env.", {}));
  if (spec.hosts <= 0) {
    return Status::InvalidArgument(
        "uniform environment requires hosts > 0");
  }
  return Status::OK();
}

Result<EnvHandle> MakeUniform(const TrialContext& ctx) {
  const ScenarioSpec& spec = *ctx.spec;
  DYNAGG_RETURN_IF_ERROR(ValidateUniformSpec(spec));
  EnvHandle handle;
  handle.env = std::make_unique<UniformEnvironment>(spec.hosts);
  return handle;
}

Status ValidateSpatialSpec(const ScenarioSpec& spec) {
  DYNAGG_RETURN_IF_ERROR(
      spec.CheckParams("env.", {"width", "height", "max_distance"}));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t width,
                          spec.ParamInt("env.width", 0));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t height,
                          spec.ParamInt("env.height", 0));
  DYNAGG_RETURN_IF_ERROR(spec.ParamInt("env.max_distance", 0).status());
  if (width <= 0 || height <= 0) {
    return Status::InvalidArgument(
        "spatial environment requires env.width > 0 and env.height > 0");
  }
  return Status::OK();
}

Result<EnvHandle> MakeSpatial(const TrialContext& ctx) {
  const ScenarioSpec& spec = *ctx.spec;
  DYNAGG_RETURN_IF_ERROR(ValidateSpatialSpec(spec));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t width,
                          spec.ParamInt("env.width", 0));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t height,
                          spec.ParamInt("env.height", 0));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t max_distance,
                          spec.ParamInt("env.max_distance", 0));
  EnvHandle handle;
  handle.env = std::make_unique<SpatialGridEnvironment>(
      static_cast<int>(width), static_cast<int>(height),
      static_cast<int>(max_distance));
  return handle;
}

Status ValidateRandomGraphSpec(const ScenarioSpec& spec) {
  DYNAGG_RETURN_IF_ERROR(
      spec.CheckParams("env.", {"degree", "seed_stream"}));
  if (spec.hosts <= 0) {
    return Status::InvalidArgument(
        "random-graph environment requires hosts > 0");
  }
  DYNAGG_ASSIGN_OR_RETURN(const int64_t degree,
                          spec.ParamInt("env.degree", 8));
  DYNAGG_RETURN_IF_ERROR(spec.ParamInt("env.seed_stream", 0x9a17).status());
  if (degree < 1) {
    return Status::InvalidArgument("env.degree must be >= 1");
  }
  // The configuration model pairs `degree` distinct stubs per vertex; at
  // degree >= hosts it cannot even allocate them.
  if (degree >= spec.hosts) {
    return Status::InvalidArgument(
        "env.degree = " + std::to_string(degree) +
        " must be below hosts = " + std::to_string(spec.hosts) +
        " (each host needs that many distinct neighbors)");
  }
  return Status::OK();
}

Result<EnvHandle> MakeRandomGraph(const TrialContext& ctx) {
  const ScenarioSpec& spec = *ctx.spec;
  DYNAGG_RETURN_IF_ERROR(ValidateRandomGraphSpec(spec));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t degree,
                          spec.ParamInt("env.degree", 8));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t stream,
                          spec.ParamInt("env.seed_stream", 0x9a17));
  EnvHandle handle;
  handle.env = std::make_unique<RandomGraphEnvironment>(
      spec.hosts, static_cast<int>(degree),
      DeriveSeed(ctx.trial_seed, static_cast<uint64_t>(stream)));
  return handle;
}

Status ValidateHaggleSpec(const ScenarioSpec& spec) {
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams(
      "env.",
      {"dataset", "hours", "gossip_seconds", "group_window_minutes",
       "seed_stream", "trace_seed"}));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t dataset,
                          spec.ParamInt("env.dataset", 1));
  if (dataset < 1 || dataset > 3) {
    return Status::InvalidArgument("env.dataset must be 1, 2 or 3");
  }
  DYNAGG_RETURN_IF_ERROR(spec.ParamDouble("env.hours", 0.0).status());
  DYNAGG_ASSIGN_OR_RETURN(const double gossip_seconds,
                          spec.ParamDouble("env.gossip_seconds", 30.0));
  DYNAGG_RETURN_IF_ERROR(
      spec.ParamDouble("env.group_window_minutes", 10.0).status());
  DYNAGG_RETURN_IF_ERROR(spec.ParamInt("env.seed_stream", 0x7a5e).status());
  if (gossip_seconds <= 0) {
    return Status::InvalidArgument("env.gossip_seconds must be > 0");
  }
  // env.gossip_seconds paces round-driven playback (advance_period); the
  // event-driven trace driver ticks on the top-level gossip_period, so an
  // explicit value there would be silently dead.
  if (spec.driver == "trace" && spec.HasParam("env.gossip_seconds")) {
    return Status::InvalidArgument(
        "env.gossip_seconds paces the rounds driver; under driver = trace "
        "set the top-level gossip_period instead");
  }
  DYNAGG_ASSIGN_OR_RETURN(const std::string trace_seed,
                          spec.ParamString("env.trace_seed", ""));
  if (!trace_seed.empty() && trace_seed != "preset") {
    DYNAGG_RETURN_IF_ERROR(spec.ParamInt("env.trace_seed", 0).status());
  }
  return Status::OK();
}

Result<EnvHandle> MakeHaggle(const TrialContext& ctx) {
  const ScenarioSpec& spec = *ctx.spec;
  DYNAGG_RETURN_IF_ERROR(ValidateHaggleSpec(spec));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t dataset,
                          spec.ParamInt("env.dataset", 1));
  DYNAGG_ASSIGN_OR_RETURN(const double hours,
                          spec.ParamDouble("env.hours", 0.0));
  DYNAGG_ASSIGN_OR_RETURN(const double gossip_seconds,
                          spec.ParamDouble("env.gossip_seconds", 30.0));
  DYNAGG_ASSIGN_OR_RETURN(
      const double group_window,
      spec.ParamDouble("env.group_window_minutes", 10.0));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t stream,
                          spec.ParamInt("env.seed_stream", 0x7a5e));

  HaggleGenParams params;
  switch (dataset) {
    case 1:
      params = HaggleDataset1();
      break;
    case 2:
      params = HaggleDataset2();
      break;
    case 3:
      params = HaggleDataset3();
      break;
    default:
      return Status::InvalidArgument("env.dataset must be 1, 2 or 3");
  }
  if (hours > 0) params.duration_hours = hours;
  // The trace seed: derived from the trial seed by default (independent
  // trials), or pinned via env.trace_seed — `preset` keeps the dataset
  // preset's fixed seed (every trial and sweep unit replays the SAME
  // trace, the legacy fig11 convention), an integer pins it explicitly.
  DYNAGG_ASSIGN_OR_RETURN(const std::string trace_seed,
                          spec.ParamString("env.trace_seed", ""));
  if (trace_seed.empty()) {
    params.seed = DeriveSeed(ctx.trial_seed, static_cast<uint64_t>(stream));
  } else if (trace_seed != "preset") {
    DYNAGG_ASSIGN_OR_RETURN(const int64_t fixed,
                            spec.ParamInt("env.trace_seed", 0));
    params.seed = static_cast<uint64_t>(fixed);
  }

  EnvHandle handle;
  handle.trace =
      std::make_shared<const ContactTrace>(GenerateHaggleTrace(params));
  handle.env = std::make_unique<TraceEnvironment>(
      *handle.trace, FromMinutes(group_window));
  handle.advance_period = FromSeconds(gossip_seconds);
  handle.group_window = FromMinutes(group_window);
  return handle;
}

/// Reads and parses a CRAWDAD contact table, memoizing the immutable
/// result per (path, options): the trace does not depend on the trial
/// seed, so an experiment's trials and sweep units — which instantiate the
/// environment once each, possibly from several executor threads — share
/// one parse instead of re-reading a potentially multi-megabyte table per
/// trial.
Result<std::shared_ptr<const ContactTrace>> LoadCrawdadTrace(
    const std::string& trace_file, const CrawdadOptions& options) {
  static std::mutex mutex;
  static std::map<std::string, std::shared_ptr<const ContactTrace>>& cache =
      *new std::map<std::string, std::shared_ptr<const ContactTrace>>();
  char options_key[64];
  std::snprintf(options_key, sizeof(options_key), "|%.17g|%d|%d",
                options.min_duration_seconds, options.max_devices,
                options.rebase_time ? 1 : 0);
  const std::string key = trace_file + options_key;
  {
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = cache.find(key);
    if (it != cache.end()) return it->second;
  }
  // Read + parse outside the lock; a racing duplicate parse is harmless.
  std::ifstream in(trace_file, std::ios::binary);
  if (!in) {
    return Status::NotFound("crawdad: cannot open env.trace_file '" +
                            trace_file + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::Corruption("crawdad: error reading '" + trace_file + "'");
  }
  DYNAGG_ASSIGN_OR_RETURN(ContactTrace trace,
                          ParseCrawdadContacts(text.str(), options));
  if (trace.num_devices() == 0) {
    return Status::InvalidArgument("crawdad: '" + trace_file +
                                   "' contains no usable contacts");
  }
  auto shared = std::make_shared<const ContactTrace>(std::move(trace));
  std::lock_guard<std::mutex> lock(mutex);
  return cache.emplace(key, std::move(shared)).first->second;
}

/// CRAWDAD-format contact-table playback (env/crawdad.h): parses
/// env.trace_file into a ContactTrace and replays it exactly like the
/// synthetic haggle environment — round-paced via env.gossip_seconds under
/// driver = rounds, event-driven under driver = trace. The file is read at
/// trial execution time (once per distinct table; see LoadCrawdadTrace);
/// --dry-run validates the spec without touching it.
Status ValidateCrawdadSpec(const ScenarioSpec& spec) {
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams(
      "env.", {"trace_file", "min_duration_seconds", "max_devices",
               "gossip_seconds", "group_window_minutes"}));
  DYNAGG_ASSIGN_OR_RETURN(const std::string trace_file,
                          spec.ParamString("env.trace_file", ""));
  if (trace_file.empty()) {
    return Status::InvalidArgument(
        "crawdad environment requires env.trace_file");
  }
  DYNAGG_ASSIGN_OR_RETURN(
      const double min_duration,
      spec.ParamDouble("env.min_duration_seconds", 0.0));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t max_devices,
                          spec.ParamInt("env.max_devices", 0));
  DYNAGG_ASSIGN_OR_RETURN(const double gossip_seconds,
                          spec.ParamDouble("env.gossip_seconds", 30.0));
  DYNAGG_RETURN_IF_ERROR(
      spec.ParamDouble("env.group_window_minutes", 10.0).status());
  if (min_duration < 0 || max_devices < 0) {
    return Status::InvalidArgument(
        "env.min_duration_seconds and env.max_devices must be >= 0");
  }
  if (gossip_seconds <= 0) {
    return Status::InvalidArgument("env.gossip_seconds must be > 0");
  }
  if (spec.driver == "trace" && spec.HasParam("env.gossip_seconds")) {
    return Status::InvalidArgument(
        "env.gossip_seconds paces the rounds driver; under driver = trace "
        "set the top-level gossip_period instead");
  }
  return Status::OK();
}

Result<EnvHandle> MakeCrawdad(const TrialContext& ctx) {
  const ScenarioSpec& spec = *ctx.spec;
  DYNAGG_RETURN_IF_ERROR(ValidateCrawdadSpec(spec));
  DYNAGG_ASSIGN_OR_RETURN(const std::string trace_file,
                          spec.ParamString("env.trace_file", ""));
  CrawdadOptions options;
  DYNAGG_ASSIGN_OR_RETURN(
      options.min_duration_seconds,
      spec.ParamDouble("env.min_duration_seconds", 0.0));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t max_devices,
                          spec.ParamInt("env.max_devices", 0));
  DYNAGG_ASSIGN_OR_RETURN(const double gossip_seconds,
                          spec.ParamDouble("env.gossip_seconds", 30.0));
  DYNAGG_ASSIGN_OR_RETURN(
      const double group_window,
      spec.ParamDouble("env.group_window_minutes", 10.0));
  options.max_devices = static_cast<int>(max_devices);

  DYNAGG_ASSIGN_OR_RETURN(
      std::shared_ptr<const ContactTrace> shared_trace,
      LoadCrawdadTrace(trace_file, options));

  EnvHandle handle;
  handle.trace = std::move(shared_trace);
  handle.env = std::make_unique<TraceEnvironment>(
      *handle.trace, FromMinutes(group_window));
  handle.advance_period = FromSeconds(gossip_seconds);
  handle.group_window = FromMinutes(group_window);
  return handle;
}

}  // namespace

namespace internal {

void RegisterBuiltinEnvironments(Registry<EnvironmentDef>& registry) {
  DYNAGG_CHECK(registry
                   .Register("uniform", {MakeUniform, /*provides_trace=*/false,
                                         ValidateUniformSpec})
                   .ok());
  DYNAGG_CHECK(registry
                   .Register("spatial", {MakeSpatial, /*provides_trace=*/false,
                                         ValidateSpatialSpec})
                   .ok());
  DYNAGG_CHECK(registry
                   .Register("random-graph",
                             {MakeRandomGraph, /*provides_trace=*/false,
                              ValidateRandomGraphSpec})
                   .ok());
  DYNAGG_CHECK(registry
                   .Register("haggle", {MakeHaggle, /*provides_trace=*/true,
                                        ValidateHaggleSpec})
                   .ok());
  DYNAGG_CHECK(registry
                   .Register("crawdad", {MakeCrawdad, /*provides_trace=*/true,
                                         ValidateCrawdadSpec})
                   .ok());
}

}  // namespace internal
}  // namespace scenario
}  // namespace dynagg
