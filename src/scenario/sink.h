// Metric sinks: render an experiment's assembled result tables as CSV or
// JSONL.
//
// CSV mirrors the legacy bench output (%.6g values, one header row) so
// ported scenarios stay diffable against the binaries they replaced; JSONL
// emits one self-describing object per row with %.17g values for lossless
// downstream processing. A single-table experiment renders exactly as it
// did before the Recorder API: multi-table experiments additionally carry
// each table's record label ("# record: <label>" comment rows in CSV, a
// "record" field in JSONL) so the groups stay distinguishable in one
// stream.

#ifndef DYNAGG_SCENARIO_SINK_H_
#define DYNAGG_SCENARIO_SINK_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "scenario/result.h"

namespace dynagg {
namespace scenario {

/// Renders `tables` in `format` ("csv" or "jsonl"). CSV gets a
/// "# experiment: <name>" provenance comment; JSONL carries the name in
/// every object.
Result<std::string> RenderTables(const std::vector<ResultTable>& tables,
                                 const std::string& experiment,
                                 const std::string& format);

/// Renders and writes to `path` ("-" = stdout). `append` controls whether
/// an existing file is extended or truncated: callers writing several
/// experiments to one path must append after the first so earlier tables
/// are not silently destroyed.
Status WriteTables(const std::vector<ResultTable>& tables,
                   const std::string& experiment, const std::string& format,
                   const std::string& path, bool append = false);

}  // namespace scenario
}  // namespace dynagg

#endif  // DYNAGG_SCENARIO_SINK_H_
