// Metric sinks: render an assembled experiment table as CSV or JSONL.
//
// CSV mirrors the legacy bench output (%.6g values, one header row) so
// ported scenarios stay diffable against the binaries they replaced; JSONL
// emits one self-describing object per row with %.17g values for lossless
// downstream processing.

#ifndef DYNAGG_SCENARIO_SINK_H_
#define DYNAGG_SCENARIO_SINK_H_

#include <string>

#include "common/stats.h"
#include "common/status.h"

namespace dynagg {
namespace scenario {

/// Renders `table` in `format` ("csv" or "jsonl"). CSV gets a
/// "# experiment: <name>" provenance comment; JSONL carries the name in
/// every object.
Result<std::string> RenderTable(const CsvTable& table,
                                const std::string& experiment,
                                const std::string& format);

/// Renders and writes to `path` ("-" = stdout). `append` controls whether
/// an existing file is extended or truncated: callers writing several
/// experiments to one path must append after the first so earlier tables
/// are not silently destroyed.
Status WriteTable(const CsvTable& table, const std::string& experiment,
                  const std::string& format, const std::string& path,
                  bool append = false);

}  // namespace scenario
}  // namespace dynagg

#endif  // DYNAGG_SCENARIO_SINK_H_
