#include "scenario/config.h"

namespace dynagg {
namespace scenario {

namespace {

/// Parses the argument of a `quantile(metric, q)` selector against the
/// rounds driver's per-host sample catalog (currently: final_error).
Result<double> ParseFinalErrorQuantileArg(const MetricSpec& m) {
  const std::string bad =
      "metric '" + m.ToString() +
      "': the rounds driver supports quantile(final_error, q) with q in "
      "[0, 1]";
  const size_t comma = m.arg.find(',');
  if (comma == std::string::npos) return Status::InvalidArgument(bad);
  if (m.arg.substr(0, comma) != "final_error" ||
      m.arg.find(',', comma + 1) != std::string::npos) {
    return Status::InvalidArgument(bad);
  }
  const Result<double> q = ParseDouble(m.arg.substr(comma + 1));
  // Negated form so NaN (which strtod accepts) fails the range check too.
  if (!q.ok() || !(*q >= 0.0 && *q <= 1.0)) {
    return Status::InvalidArgument(bad);
  }
  return *q;
}

}  // namespace

Result<MetricFlags> ClassifyDriverMetrics(
    const ScenarioSpec& spec, const std::vector<std::string>& extra) {
  std::vector<std::string> supported = {"rms", "rms_tail_mean",
                                        "rounds_to_converge", "bandwidth",
                                        "cdf(final_error)"};
  supported.insert(supported.end(), extra.begin(), extra.end());
  // Consume the parametrized quantile(...) selectors, then validate the
  // rest against the fixed catalog. The "quantile(final_error,q)" entry
  // only documents the family in the diagnostic — real selectors carry a
  // number and never match it literally.
  MetricFlags flags;
  std::vector<MetricSpec> rest;
  for (const MetricSpec& m : spec.metrics) {
    if (m.name == "quantile") {
      DYNAGG_ASSIGN_OR_RETURN(const double q, ParseFinalErrorQuantileArg(m));
      // ValidateMetricList only dedups selector spellings; "0.5" and
      // "0.50" parse to the same quantile and must fail here, not abort
      // in the Recorder.
      for (const double seen : flags.final_error_quantiles) {
        if (seen == q) {
          return Status::InvalidArgument(
              "metric '" + m.ToString() + "' requests a duplicate quantile");
        }
      }
      flags.final_error_quantiles.push_back(q);
    } else {
      rest.push_back(m);
    }
  }
  supported.push_back("quantile(final_error,q)");
  DYNAGG_RETURN_IF_ERROR(
      CheckMetricsSupported(spec.protocol, rest, supported));
  flags.rms = MetricRequested(spec, "rms");
  flags.tail_mean = MetricRequested(spec, "rms_tail_mean");
  flags.convergence = MetricRequested(spec, "rounds_to_converge");
  flags.bandwidth = MetricRequested(spec, "bandwidth");
  flags.final_error_cdf = MetricRequested(spec, "cdf(final_error)");
  for (const std::string& selector : extra) {
    flags.extra = flags.extra || MetricRequested(spec, selector);
  }
  return flags;
}

Result<RecordConfig> ParseRecordConfig(
    const ScenarioSpec& spec, const std::vector<std::string>& extra_keys) {
  if (spec.HasParam("record.kind")) {
    return Status::InvalidArgument(
        "record.kind was replaced by the top-level metric list: use "
        "'record = rms' (per_round), 'record = rms_tail_mean' (tail_mean) "
        "or 'record = rounds_to_converge' (convergence)");
  }
  std::vector<std::string> allowed = {
      "from",   "every",  "threshold", "threshold_relative",
      "cdf_lo", "cdf_hi", "cdf_buckets"};
  allowed.insert(allowed.end(), extra_keys.begin(), extra_keys.end());
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams("record.", allowed));
  RecordConfig cfg;
  DYNAGG_ASSIGN_OR_RETURN(const int64_t from,
                          spec.ParamInt("record.from", 0));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t every,
                          spec.ParamInt("record.every", 1));
  DYNAGG_ASSIGN_OR_RETURN(cfg.threshold,
                          spec.ParamDouble("record.threshold", 1.0));
  DYNAGG_ASSIGN_OR_RETURN(
      cfg.threshold_relative,
      spec.ParamBool("record.threshold_relative", false));
  DYNAGG_ASSIGN_OR_RETURN(cfg.cdf_lo, spec.ParamDouble("record.cdf_lo", 0.0));
  DYNAGG_ASSIGN_OR_RETURN(cfg.cdf_hi, spec.ParamDouble("record.cdf_hi", 0.0));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t cdf_buckets,
                          spec.ParamInt("record.cdf_buckets", 20));
  if (from < 0 || every < 1) {
    return Status::InvalidArgument(
        "record.from must be >= 0 and record.every >= 1");
  }
  cfg.from = static_cast<int>(from);
  cfg.every = static_cast<int>(every);
  cfg.cdf_buckets = static_cast<int>(cdf_buckets);
  return cfg;
}

Result<FailureConfig> ParseFailureConfig(const ScenarioSpec& spec) {
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams(
      "failure.", {"kind", "round", "fraction", "start", "end", "death_prob",
                   "return_factor", "return_prob", "pin_alive"}));
  FailureConfig cfg;
  DYNAGG_ASSIGN_OR_RETURN(const std::string kind,
                          spec.ParamString("failure.kind", "none"));
  if (kind == "none") {
    cfg.kind = FailureConfig::Kind::kNone;
  } else if (kind == "kill_random_fraction") {
    cfg.kind = FailureConfig::Kind::kKillRandomFraction;
  } else if (kind == "kill_top_fraction") {
    cfg.kind = FailureConfig::Kind::kKillTopFraction;
  } else if (kind == "churn") {
    cfg.kind = FailureConfig::Kind::kChurn;
  } else {
    return Status::InvalidArgument(
        "failure.kind must be none, kill_random_fraction, "
        "kill_top_fraction or churn, got '" +
        kind + "'");
  }
  DYNAGG_ASSIGN_OR_RETURN(const int64_t round,
                          spec.ParamInt("failure.round", 0));
  DYNAGG_ASSIGN_OR_RETURN(cfg.fraction,
                          spec.ParamDouble("failure.fraction", 0.5));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t start,
                          spec.ParamInt("failure.start", 0));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t end,
                          spec.ParamInt("failure.end", -1));
  DYNAGG_ASSIGN_OR_RETURN(cfg.death_prob,
                          spec.ParamDouble("failure.death_prob", 0.0));
  DYNAGG_ASSIGN_OR_RETURN(cfg.return_factor,
                          spec.ParamDouble("failure.return_factor", 4.0));
  DYNAGG_ASSIGN_OR_RETURN(cfg.return_prob,
                          spec.ParamDouble("failure.return_prob", -1.0));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t pin,
                          spec.ParamInt("failure.pin_alive", kInvalidHost));
  cfg.round = static_cast<int>(round);
  cfg.start = static_cast<int>(start);
  cfg.end = static_cast<int>(end);
  cfg.pin_alive = static_cast<HostId>(pin);
  if (cfg.fraction < 0.0 || cfg.fraction > 1.0) {
    return Status::InvalidArgument("failure.fraction must be in [0, 1]");
  }
  if (cfg.death_prob < 0.0 || cfg.death_prob > 1.0) {
    return Status::InvalidArgument("failure.death_prob must be in [0, 1]");
  }
  return cfg;
}

double ChurnReturnProb(const FailureConfig& cfg) {
  return cfg.return_prob >= 0.0 ? cfg.return_prob
                                : cfg.death_prob * cfg.return_factor;
}

Result<uint64_t> FailureStream(const ScenarioSpec& spec,
                               const FailureConfig& cfg) {
  if (spec.HasParam("seeds.failure_stream")) {
    DYNAGG_ASSIGN_OR_RETURN(const int64_t stream,
                            spec.ParamInt("seeds.failure_stream", 2));
    return static_cast<uint64_t>(stream);
  }
  if (cfg.kind == FailureConfig::Kind::kChurn) {
    return static_cast<uint64_t>(cfg.death_prob * 1e5);
  }
  return uint64_t{2};
}

Result<uint64_t> RoundStream(const ScenarioSpec& spec,
                             const TrialContext& ctx, int n) {
  DYNAGG_ASSIGN_OR_RETURN(const std::string text,
                          spec.ParamString("seeds.round_stream", "1"));
  if (text == "hosts") return static_cast<uint64_t>(n);
  if (text.rfind("sweep+", 0) == 0) {
    if (ctx.sweep_index < 0) {
      return Status::InvalidArgument(
          "seeds.round_stream = " + text +
          " requires a sweep (the stream offsets by the sweep index)");
    }
    DYNAGG_ASSIGN_OR_RETURN(const int64_t base, ParseInt64(text.substr(6)));
    return static_cast<uint64_t>(base + ctx.sweep_index);
  }
  DYNAGG_ASSIGN_OR_RETURN(const int64_t stream,
                          spec.ParamInt("seeds.round_stream", 1));
  return static_cast<uint64_t>(stream);
}

Result<FailurePlan> BuildFailurePlan(const FailureConfig& cfg, int n,
                                     int rounds,
                                     const std::vector<double>* values,
                                     Rng& fail_rng) {
  switch (cfg.kind) {
    case FailureConfig::Kind::kNone:
      return FailurePlan();
    case FailureConfig::Kind::kKillRandomFraction:
      return FailurePlan::KillRandomFraction(n, cfg.round, cfg.fraction,
                                             fail_rng);
    case FailureConfig::Kind::kKillTopFraction:
      if (values == nullptr) {
        return Status::InvalidArgument(
            "failure.kind = kill_top_fraction requires a value-based "
            "protocol");
      }
      return FailurePlan::KillTopFraction(*values, cfg.round, cfg.fraction);
    case FailureConfig::Kind::kChurn: {
      const int end = cfg.end >= 0 ? cfg.end : rounds;
      return FailurePlan::Churn(n, cfg.start, end, cfg.death_prob,
                                ChurnReturnProb(cfg), fail_rng);
    }
  }
  return Status::InvalidArgument("unreachable failure kind");
}

}  // namespace scenario
}  // namespace dynagg
