#include "scenario/config.h"

#include <cmath>

namespace dynagg {
namespace scenario {

namespace {

/// Parses the argument of a `quantile(metric, q)` selector against the
/// rounds driver's per-host sample catalog (currently: final_error).
Result<double> ParseFinalErrorQuantileArg(const MetricSpec& m) {
  const std::string bad =
      "metric '" + m.ToString() +
      "': the rounds driver supports quantile(final_error, q) with q in "
      "[0, 1]";
  const size_t comma = m.arg.find(',');
  if (comma == std::string::npos) return Status::InvalidArgument(bad);
  if (m.arg.substr(0, comma) != "final_error" ||
      m.arg.find(',', comma + 1) != std::string::npos) {
    return Status::InvalidArgument(bad);
  }
  const Result<double> q = ParseDouble(m.arg.substr(comma + 1));
  // Negated form so NaN (which strtod accepts) fails the range check too.
  if (!q.ok() || !(*q >= 0.0 && *q <= 1.0)) {
    return Status::InvalidArgument(bad);
  }
  return *q;
}

/// Parses the argument of an `rms_at(R)` selector: the series-x round
/// number (round index + 1, matching the rms series' x column), a positive
/// integer.
Result<double> ParseRmsAtArg(const MetricSpec& m) {
  const Result<double> r = ParseDouble(m.arg);
  if (!r.ok() || !(*r >= 1.0) || *r != std::floor(*r)) {
    return Status::InvalidArgument(
        "metric '" + m.ToString() +
        "': rms_at(R) takes the 1-based round number R of the rms series "
        "(a positive integer)");
  }
  return *r;
}

/// Parses the argument of a `rounds_below(rms, T)` selector: the watched
/// series (only `rms`) and a finite absolute threshold.
Result<double> ParseRoundsBelowArg(const MetricSpec& m) {
  const std::string bad =
      "metric '" + m.ToString() +
      "': the rounds driver supports rounds_below(rms, T) with a finite "
      "threshold T (the first round from which the rms series stays below "
      "T; -1 = never)";
  const size_t comma = m.arg.find(',');
  if (comma == std::string::npos) return Status::InvalidArgument(bad);
  if (m.arg.substr(0, comma) != "rms" ||
      m.arg.find(',', comma + 1) != std::string::npos) {
    return Status::InvalidArgument(bad);
  }
  const Result<double> t = ParseDouble(m.arg.substr(comma + 1));
  if (!t.ok() || !std::isfinite(*t)) return Status::InvalidArgument(bad);
  return *t;
}

/// Parses the argument of a `final_rel_error(H)` selector: a host id
/// (range-checked against the population at execution time).
Result<int> ParseRelErrorArg(const MetricSpec& m) {
  const Result<int64_t> h = ParseInt64(m.arg);
  if (!h.ok() || *h < 0) {
    return Status::InvalidArgument(
        "metric '" + m.ToString() +
        "': final_rel_error(H) takes a host id H >= 0");
  }
  return static_cast<int>(*h);
}

}  // namespace

Result<MetricFlags> ClassifyDriverMetrics(
    const ScenarioSpec& spec, const std::vector<std::string>& extra) {
  std::vector<std::string> supported = {
      "rms",       "rms_tail_mean", "rounds_to_converge",
      "bandwidth", "cdf(final_error)", "final_rms",
      "gossip_bytes", "recovery_rounds(rms)"};
  supported.insert(supported.end(), extra.begin(), extra.end());
  // Consume the parametrized selectors first, then validate the rest
  // against the fixed catalog. The "name(arg-shape)" entries pushed below
  // only document the families in the diagnostic — real selectors carry
  // numbers and never match them literally.
  MetricFlags flags;
  std::vector<MetricSpec> rest;
  for (const MetricSpec& m : spec.metrics) {
    if (m.name == "quantile") {
      DYNAGG_ASSIGN_OR_RETURN(const double q, ParseFinalErrorQuantileArg(m));
      // ValidateMetricList only dedups selector spellings; "0.5" and
      // "0.50" parse to the same quantile and must fail here, not abort
      // in the Recorder.
      for (const double seen : flags.final_error_quantiles) {
        if (seen == q) {
          return Status::InvalidArgument(
              "metric '" + m.ToString() + "' requests a duplicate quantile");
        }
      }
      flags.final_error_quantiles.push_back(q);
    } else if (m.name == "rms_at") {
      DYNAGG_ASSIGN_OR_RETURN(const double r, ParseRmsAtArg(m));
      for (const double seen : flags.rms_at) {
        if (seen == r) {
          return Status::InvalidArgument(
              "metric '" + m.ToString() + "' requests a duplicate round");
        }
      }
      flags.rms_at.push_back(r);
    } else if (m.name == "rounds_below") {
      DYNAGG_ASSIGN_OR_RETURN(const double t, ParseRoundsBelowArg(m));
      for (const double seen : flags.rounds_below) {
        if (seen == t) {
          return Status::InvalidArgument(
              "metric '" + m.ToString() +
              "' requests a duplicate threshold");
        }
      }
      flags.rounds_below.push_back(t);
    } else if (m.name == "final_rel_error") {
      DYNAGG_ASSIGN_OR_RETURN(const int h, ParseRelErrorArg(m));
      for (const int seen : flags.rel_error_hosts) {
        if (seen == h) {
          return Status::InvalidArgument(
              "metric '" + m.ToString() + "' requests a duplicate host");
        }
      }
      flags.rel_error_hosts.push_back(h);
    } else {
      rest.push_back(m);
    }
  }
  supported.push_back("quantile(final_error,q)");
  supported.push_back("rms_at(R)");
  supported.push_back("rounds_below(rms,T)");
  supported.push_back("final_rel_error(H)");
  DYNAGG_RETURN_IF_ERROR(
      CheckMetricsSupported(spec.protocol, rest, supported));
  flags.rms = MetricRequested(spec, "rms");
  flags.tail_mean = MetricRequested(spec, "rms_tail_mean");
  flags.convergence = MetricRequested(spec, "rounds_to_converge");
  flags.bandwidth = MetricRequested(spec, "bandwidth");
  flags.final_error_cdf = MetricRequested(spec, "cdf(final_error)");
  flags.final_rms = MetricRequested(spec, "final_rms");
  flags.gossip_bytes = MetricRequested(spec, "gossip_bytes");
  flags.recovery = MetricRequested(spec, "recovery_rounds(rms)");
  for (const std::string& selector : extra) {
    for (const MetricSpec& m : spec.metrics) {
      flags.extra = flags.extra || SelectorMatches(selector, m);
    }
  }
  return flags;
}

Result<RecordConfig> ParseRecordConfig(
    const ScenarioSpec& spec, const std::vector<std::string>& extra_keys) {
  if (spec.HasParam("record.kind")) {
    return Status::InvalidArgument(
        "record.kind was replaced by the top-level metric list: use "
        "'record = rms' (per_round), 'record = rms_tail_mean' (tail_mean) "
        "or 'record = rounds_to_converge' (convergence)");
  }
  std::vector<std::string> allowed = {
      "from",          "every",         "threshold",
      "threshold_relative", "cdf_lo",   "cdf_hi",
      "cdf_buckets",   "relative",      "recovery_from",
      "recovery_mult", "recovery_add",  "recovery_min"};
  allowed.insert(allowed.end(), extra_keys.begin(), extra_keys.end());
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams("record.", allowed));
  RecordConfig cfg;
  DYNAGG_ASSIGN_OR_RETURN(const int64_t from,
                          spec.ParamInt("record.from", 0));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t every,
                          spec.ParamInt("record.every", 1));
  DYNAGG_ASSIGN_OR_RETURN(cfg.threshold,
                          spec.ParamDouble("record.threshold", 1.0));
  DYNAGG_ASSIGN_OR_RETURN(
      cfg.threshold_relative,
      spec.ParamBool("record.threshold_relative", false));
  DYNAGG_ASSIGN_OR_RETURN(cfg.cdf_lo, spec.ParamDouble("record.cdf_lo", 0.0));
  DYNAGG_ASSIGN_OR_RETURN(cfg.cdf_hi, spec.ParamDouble("record.cdf_hi", 0.0));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t cdf_buckets,
                          spec.ParamInt("record.cdf_buckets", 20));
  DYNAGG_ASSIGN_OR_RETURN(cfg.relative,
                          spec.ParamBool("record.relative", false));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t recovery_from,
                          spec.ParamInt("record.recovery_from", 0));
  DYNAGG_ASSIGN_OR_RETURN(cfg.recovery_mult,
                          spec.ParamDouble("record.recovery_mult", 2.0));
  DYNAGG_ASSIGN_OR_RETURN(cfg.recovery_add,
                          spec.ParamDouble("record.recovery_add", 0.0));
  DYNAGG_ASSIGN_OR_RETURN(cfg.recovery_min,
                          spec.ParamDouble("record.recovery_min", 0.0));
  if (from < 0 || every < 1) {
    return Status::InvalidArgument(
        "record.from must be >= 0 and record.every >= 1");
  }
  if (recovery_from < 0 || cfg.recovery_mult < 0.0 ||
      cfg.recovery_add < 0.0 || cfg.recovery_min < 0.0) {
    return Status::InvalidArgument(
        "record.recovery_from/mult/add/min must be >= 0");
  }
  cfg.from = static_cast<int>(from);
  cfg.every = static_cast<int>(every);
  cfg.cdf_buckets = static_cast<int>(cdf_buckets);
  cfg.recovery_from = static_cast<int>(recovery_from);
  return cfg;
}

Status CheckRecordWindows(const ScenarioSpec& spec, const MetricFlags& metrics,
                          const RecordConfig& cfg) {
  if (metrics.tail_mean && cfg.from >= spec.rounds) {
    // An empty averaging window would fabricate a perfect score of 0.
    return Status::InvalidArgument(
        "record.from = " + std::to_string(cfg.from) +
        " leaves no rounds to average (rounds = " +
        std::to_string(spec.rounds) + ")");
  }
  if (metrics.recovery && cfg.recovery_from >= spec.rounds) {
    // An empty window has no floor to derive the threshold from.
    return Status::InvalidArgument(
        "record.recovery_from = " + std::to_string(cfg.recovery_from) +
        " leaves no rounds to watch for recovery (rounds = " +
        std::to_string(spec.rounds) + ")");
  }
  for (const double r : metrics.rms_at) {
    if (r > spec.rounds) {
      return Status::InvalidArgument(
          "rms_at(" + std::to_string(static_cast<int>(r)) +
          ") is past the last round (rounds = " +
          std::to_string(spec.rounds) + ")");
    }
  }
  if (metrics.final_error_cdf &&
      (cfg.cdf_buckets < 1 || cfg.cdf_hi <= cfg.cdf_lo)) {
    return Status::InvalidArgument(
        "cdf(final_error) needs record.cdf_hi > record.cdf_lo and "
        "record.cdf_buckets >= 1");
  }
  return Status::OK();
}

Result<FailureConfig> ParseFailureConfig(const ScenarioSpec& spec) {
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams(
      "failure.", {"kind", "round", "fraction", "start", "end", "death_prob",
                   "return_factor", "return_prob", "pin_alive"}));
  FailureConfig cfg;
  DYNAGG_ASSIGN_OR_RETURN(const std::string kind,
                          spec.ParamString("failure.kind", "none"));
  if (kind == "none") {
    cfg.kind = FailureConfig::Kind::kNone;
  } else if (kind == "kill_random_fraction") {
    cfg.kind = FailureConfig::Kind::kKillRandomFraction;
  } else if (kind == "kill_top_fraction") {
    cfg.kind = FailureConfig::Kind::kKillTopFraction;
  } else if (kind == "churn") {
    cfg.kind = FailureConfig::Kind::kChurn;
  } else {
    return Status::InvalidArgument(
        "failure.kind must be none, kill_random_fraction, "
        "kill_top_fraction or churn, got '" +
        kind + "'");
  }
  DYNAGG_ASSIGN_OR_RETURN(const int64_t round,
                          spec.ParamInt("failure.round", 0));
  DYNAGG_ASSIGN_OR_RETURN(cfg.fraction,
                          spec.ParamDouble("failure.fraction", 0.5));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t start,
                          spec.ParamInt("failure.start", 0));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t end,
                          spec.ParamInt("failure.end", -1));
  DYNAGG_ASSIGN_OR_RETURN(cfg.death_prob,
                          spec.ParamDouble("failure.death_prob", 0.0));
  DYNAGG_ASSIGN_OR_RETURN(cfg.return_factor,
                          spec.ParamDouble("failure.return_factor", 4.0));
  DYNAGG_ASSIGN_OR_RETURN(cfg.return_prob,
                          spec.ParamDouble("failure.return_prob", -1.0));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t pin,
                          spec.ParamInt("failure.pin_alive", kInvalidHost));
  cfg.round = static_cast<int>(round);
  cfg.start = static_cast<int>(start);
  cfg.end = static_cast<int>(end);
  cfg.pin_alive = static_cast<HostId>(pin);
  if (cfg.fraction < 0.0 || cfg.fraction > 1.0) {
    return Status::InvalidArgument("failure.fraction must be in [0, 1]");
  }
  if (cfg.death_prob < 0.0 || cfg.death_prob > 1.0) {
    return Status::InvalidArgument("failure.death_prob must be in [0, 1]");
  }
  return cfg;
}

double ChurnReturnProb(const FailureConfig& cfg) {
  return cfg.return_prob >= 0.0 ? cfg.return_prob
                                : cfg.death_prob * cfg.return_factor;
}

Result<uint64_t> FailureStream(const ScenarioSpec& spec,
                               const FailureConfig& cfg) {
  if (spec.HasParam("seeds.failure_stream")) {
    DYNAGG_ASSIGN_OR_RETURN(const int64_t stream,
                            spec.ParamInt("seeds.failure_stream", 2));
    return static_cast<uint64_t>(stream);
  }
  if (cfg.kind == FailureConfig::Kind::kChurn) {
    return static_cast<uint64_t>(cfg.death_prob * 1e5);
  }
  return uint64_t{2};
}

namespace {

/// One term of a seeds.* stream sum. Truncation of `sweepval*M` is
/// deliberately per-term (static_cast<uint64_t>(value * M)), matching the
/// legacy benches' DeriveSeed(seed, static_cast<uint64_t>(lambda * 1e4) +
/// offset) conventions exactly.
Result<uint64_t> StreamExprTerm(const std::string& key,
                                const std::string& text,
                                const std::string& term,
                                const TrialContext& ctx, int n) {
  const auto bad = [&](const std::string& why) {
    return Status::InvalidArgument(
        key + " = " + text + ": " + why +
        " (terms: an integer, hosts, sweep, sweep2, sweepval*M, "
        "sweep2val*M)");
  };
  if (term == "hosts") return static_cast<uint64_t>(n);
  if (term == "sweep" || term == "sweep2") {
    const int index = term == "sweep" ? ctx.sweep_index : ctx.sweep2_index;
    if (index < 0) {
      return bad("'" + term + "' requires a " + term +
                 " axis (the term is the sweep index)");
    }
    return static_cast<uint64_t>(index);
  }
  const bool is_sweep2 = term.rfind("sweep2val", 0) == 0;
  if (is_sweep2 || term.rfind("sweepval", 0) == 0) {
    const int index = is_sweep2 ? ctx.sweep2_index : ctx.sweep_index;
    const double value = is_sweep2 ? ctx.sweep2_value : ctx.sweep_value;
    const std::string name = is_sweep2 ? "sweep2val" : "sweepval";
    if (index < 0) {
      return bad("'" + name + "' requires a " +
                 (is_sweep2 ? std::string("sweep2") : std::string("sweep")) +
                 " axis (the term is the truncated sweep value)");
    }
    const std::string rest = term.substr(name.size());
    int64_t scale = 1;
    if (!rest.empty()) {
      if (rest[0] != '*') return bad("expected '" + name + "*M'");
      const Result<int64_t> m = ParseInt64(rest.substr(1));
      if (!m.ok() || *m < 1) {
        return bad("'" + name + "*M' needs a positive integer scale");
      }
      scale = *m;
    }
    const double scaled = value * static_cast<double>(scale);
    if (!(scaled >= 0)) {
      return bad("'" + name + "' term is negative for sweep value " +
                 std::to_string(value));
    }
    return static_cast<uint64_t>(scaled);
  }
  const Result<int64_t> v = ParseInt64(term);
  if (!v.ok() || *v < 0) return bad("'" + term + "' is not a valid term");
  return static_cast<uint64_t>(*v);
}

/// Evaluates the '+'-separated term-sum stream grammar for one seeds.* key.
Result<uint64_t> EvalStreamExpr(const ScenarioSpec& spec,
                                const std::string& key,
                                const std::string& default_expr,
                                const TrialContext& ctx, int n) {
  DYNAGG_ASSIGN_OR_RETURN(const std::string text,
                          spec.ParamString(key, default_expr));
  uint64_t total = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t plus = text.find('+', start);
    if (plus == std::string::npos) plus = text.size();
    std::string term = text.substr(start, plus - start);
    // Trim (list items may be written spaced: "sweepval*10 + 1").
    while (!term.empty() && (term.front() == ' ' || term.front() == '\t')) {
      term.erase(term.begin());
    }
    while (!term.empty() && (term.back() == ' ' || term.back() == '\t')) {
      term.pop_back();
    }
    if (term.empty()) {
      return Status::InvalidArgument(key + " = " + text + ": empty term");
    }
    DYNAGG_ASSIGN_OR_RETURN(const uint64_t value,
                            StreamExprTerm(key, text, term, ctx, n));
    total += value;
    start = plus + 1;
  }
  return total;
}

}  // namespace

Result<uint64_t> RoundStream(const ScenarioSpec& spec,
                             const TrialContext& ctx, int n) {
  return EvalStreamExpr(spec, "seeds.round_stream", "1", ctx, n);
}

Result<uint64_t> WorkloadStream(const ScenarioSpec& spec,
                                const TrialContext& ctx, int n) {
  return EvalStreamExpr(spec, "seeds.workload_stream", "3", ctx, n);
}

Result<uint64_t> MessageStream(const ScenarioSpec& spec,
                               const TrialContext& ctx, int n) {
  return EvalStreamExpr(spec, "seeds.message_stream", "5", ctx, n);
}

Result<ChurnConfig> ParseChurnConfig(const ScenarioSpec& spec) {
  DYNAGG_RETURN_IF_ERROR(spec.CheckParams(
      "churn.", {"initial", "arrival_rate", "death_prob", "rebirth_prob",
                 "start", "end", "max_alive"}));
  ChurnConfig cfg;
  for (const auto& [key, value] : spec.params) {
    if (key.rfind("churn.", 0) == 0) {
      cfg.enabled = true;
      break;
    }
  }
  if (!cfg.enabled) return cfg;
  DYNAGG_ASSIGN_OR_RETURN(const int64_t initial,
                          spec.ParamInt("churn.initial", -1));
  DYNAGG_ASSIGN_OR_RETURN(cfg.arrival_rate,
                          spec.ParamDouble("churn.arrival_rate", 0.0));
  DYNAGG_ASSIGN_OR_RETURN(cfg.death_prob,
                          spec.ParamDouble("churn.death_prob", 0.0));
  DYNAGG_ASSIGN_OR_RETURN(cfg.rebirth_prob,
                          spec.ParamDouble("churn.rebirth_prob", 0.0));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t start,
                          spec.ParamInt("churn.start", 0));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t end, spec.ParamInt("churn.end", -1));
  DYNAGG_ASSIGN_OR_RETURN(const int64_t max_alive,
                          spec.ParamInt("churn.max_alive", -1));
  cfg.initial = static_cast<int>(initial);
  cfg.start = static_cast<int>(start);
  cfg.end = static_cast<int>(end);
  cfg.max_alive = static_cast<int>(max_alive);
  if (cfg.initial != -1 && cfg.initial < 1) {
    return Status::InvalidArgument(
        "churn.initial must be >= 1 (or omitted for all hosts alive)");
  }
  if (cfg.max_alive != -1 && cfg.max_alive < 1) {
    return Status::InvalidArgument(
        "churn.max_alive must be >= 1 (or omitted for no cap below hosts)");
  }
  if (cfg.arrival_rate < 0.0) {
    return Status::InvalidArgument("churn.arrival_rate must be >= 0");
  }
  if (cfg.death_prob < 0.0 || cfg.death_prob > 1.0) {
    return Status::InvalidArgument("churn.death_prob must be in [0, 1]");
  }
  if (cfg.rebirth_prob < 0.0 || cfg.rebirth_prob > 1.0) {
    return Status::InvalidArgument("churn.rebirth_prob must be in [0, 1]");
  }
  if (cfg.start < 0 || (cfg.end != -1 && cfg.end < cfg.start)) {
    return Status::InvalidArgument(
        "churn.start must be >= 0 and churn.end >= churn.start (or -1 for "
        "the full run)");
  }
  return cfg;
}

Result<uint64_t> ChurnStream(const ScenarioSpec& spec, const TrialContext& ctx,
                             int n) {
  return EvalStreamExpr(spec, "seeds.churn_stream", "6", ctx, n);
}

Result<ChurnPlan> BuildChurnPlan(const ChurnConfig& cfg, int n, int rounds,
                                 Rng& churn_rng) {
  if (!cfg.enabled) return ChurnPlan();
  ChurnParams params;
  params.n = n;
  params.initial = cfg.initial >= 0 ? cfg.initial : n;
  params.max_alive = cfg.max_alive >= 0 ? cfg.max_alive : n;
  if (params.initial > n) {
    return Status::InvalidArgument(
        "churn.initial = " + std::to_string(params.initial) +
        " exceeds hosts = " + std::to_string(n));
  }
  if (params.max_alive > n) {
    return Status::InvalidArgument(
        "churn.max_alive = " + std::to_string(params.max_alive) +
        " exceeds hosts = " + std::to_string(n) +
        " (the universe is fixed; raise hosts to leave room for growth)");
  }
  params.arrival_rate = cfg.arrival_rate;
  params.death_prob = cfg.death_prob;
  params.rebirth_prob = cfg.rebirth_prob;
  params.start_round = cfg.start;
  params.end_round = cfg.end >= 0 ? cfg.end : rounds;
  return ChurnPlan::Build(params, churn_rng);
}

Result<FailurePlan> BuildFailurePlan(const FailureConfig& cfg, int n,
                                     int rounds,
                                     const std::vector<double>* values,
                                     Rng& fail_rng) {
  switch (cfg.kind) {
    case FailureConfig::Kind::kNone:
      return FailurePlan();
    case FailureConfig::Kind::kKillRandomFraction:
      return FailurePlan::KillRandomFraction(n, cfg.round, cfg.fraction,
                                             fail_rng);
    case FailureConfig::Kind::kKillTopFraction:
      if (values == nullptr) {
        return Status::InvalidArgument(
            "failure.kind = kill_top_fraction requires a value-based "
            "protocol");
      }
      return FailurePlan::KillTopFraction(*values, cfg.round, cfg.fraction);
    case FailureConfig::Kind::kChurn: {
      const int end = cfg.end >= 0 ? cfg.end : rounds;
      return FailurePlan::Churn(n, cfg.start, end, cfg.death_prob,
                                ChurnReturnProb(cfg), fail_rng);
    }
  }
  return Status::InvalidArgument("unreachable failure kind");
}

}  // namespace scenario
}  // namespace dynagg
