// Declarative experiment specifications.
//
// A scenario file describes a whole experiment — protocol, environment,
// population, rounds, failure plan, seeds, sweeps, trials, output — in a
// simple key = value text format, replacing the hand-rolled main() of each
// bench harness. One file holds one or more experiments: keys before the
// first [section] are shared defaults; each [section] inherits them and
// overrides what it needs. Example:
//
//     # Compare two gossip modes on the same population.
//     name = my_experiment
//     hosts = 1000
//     rounds = 60
//     seed = 42
//     sweep = protocol.lambda: 0, 0.01, 0.1
//
//     [push]
//     protocol = push-sum-revert
//     protocol.mode = push
//
//     [pushpull]
//     protocol = push-sum-revert
//     protocol.mode = pushpull
//
// Top-level keys are strictly validated (a typo is an error); namespaced
// keys (protocol.*, env.*, failure.*, record.*, seeds.*) are collected into
// a parameter map and validated by the protocol / environment factories
// that consume them (scenario/protocols.cc, scenario/environments.cc).

#ifndef DYNAGG_SCENARIO_SPEC_H_
#define DYNAGG_SCENARIO_SPEC_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dynagg {
namespace scenario {

/// Strict numeric/boolean parsers ("12x" is an error, unlike std::stoll).
Result<int64_t> ParseInt64(std::string_view text);
Result<double> ParseDouble(std::string_view text);
Result<bool> ParseBool(std::string_view text);

/// One experiment: a protocol x environment x failure-plan configuration,
/// optionally swept over one parameter and replicated over trials.
struct ScenarioSpec {
  /// Experiment name; "<scenario name>/<section>" for sectioned files.
  std::string name = "scenario";
  /// Protocol registry key (see scenario/trial.h). Required.
  std::string protocol;
  /// Environment registry key.
  std::string environment = "uniform";
  /// Population size. 0 means "derive from the environment" (allowed for
  /// environments with intrinsic size, e.g. spatial grids and traces).
  int hosts = 0;
  /// Gossip rounds per trial.
  int rounds = 200;
  /// Independent repetitions. Trial 0 replays the base seed exactly (legacy
  /// bench parity); trial t > 0 uses a derived, decorrelated seed.
  int trials = 1;
  /// Base RNG seed for the whole experiment.
  uint64_t seed = 1;
  /// Swept parameter ("" = no sweep). May be "hosts", "rounds", or any
  /// namespaced key; one full run is executed per value in sweep_values.
  std::string sweep_key;
  std::vector<double> sweep_values;
  /// Output destination: "-" for stdout or a file path.
  std::string output = "-";
  /// Output format: "csv" or "jsonl".
  std::string format = "csv";
  /// Namespaced parameters (protocol.*, env.*, failure.*, record.*,
  /// seeds.*), consumed by the factories.
  std::map<std::string, std::string> params;

  bool HasParam(const std::string& key) const {
    return params.count(key) != 0;
  }
  /// Typed parameter accessors; the default is returned when the key is
  /// absent, a bad value is an InvalidArgument naming the key.
  Result<std::string> ParamString(const std::string& key,
                                  std::string def) const;
  Result<int64_t> ParamInt(const std::string& key, int64_t def) const;
  Result<double> ParamDouble(const std::string& key, double def) const;
  Result<bool> ParamBool(const std::string& key, bool def) const;

  /// Rejects any parameter under `prefix` (e.g. "protocol.") whose suffix is
  /// not in `allowed`: factories call this so typos in namespaced keys fail
  /// loudly instead of silently using defaults.
  Status CheckParams(const std::string& prefix,
                     const std::vector<std::string>& allowed) const;
};

/// Parses a scenario file into one spec per [section] (or a single spec for
/// a sectionless file). `default_name` seeds ScenarioSpec::name when the
/// file sets none (callers pass the file stem). Errors carry line numbers.
Result<std::vector<ScenarioSpec>> ParseScenarioFile(
    std::string_view text, const std::string& default_name = "scenario");

}  // namespace scenario
}  // namespace dynagg

#endif  // DYNAGG_SCENARIO_SPEC_H_
