// Declarative experiment specifications.
//
// A scenario file describes a whole experiment — protocol, environment,
// population, rounds, failure plan, seeds, sweeps, trials, output — in a
// simple key = value text format, replacing the hand-rolled main() of each
// bench harness. One file holds one or more experiments: keys before the
// first [section] are shared defaults; each [section] inherits them and
// overrides what it needs. Example:
//
//     # Compare two gossip modes on the same population.
//     name = my_experiment
//     hosts = 1000
//     rounds = 60
//     seed = 42
//     trials = 5
//     sweep = protocol.lambda: 0, 0.01, 0.1
//     sweep2 = rounds: 30, 60
//     record = rms, bandwidth, cdf(final_error)
//     aggregate = mean, stddev
//
//     [push]
//     protocol = push-sum-revert
//     protocol.mode = push
//
//     [pushpull]
//     protocol = push-sum-revert
//     protocol.mode = pushpull
//
// Top-level keys are strictly validated (a typo is an error); namespaced
// keys (protocol.*, env.*, failure.*, record.*, seeds.*, workload.*,
// net.*) are
// collected into a parameter map and validated by the protocol /
// environment factories that consume them (scenario/protocols.cc,
// scenario/environments.cc, stream/stream_protocols.cc).

#ifndef DYNAGG_SCENARIO_SPEC_H_
#define DYNAGG_SCENARIO_SPEC_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dynagg {
namespace scenario {

/// Strict numeric/boolean parsers ("12x" is an error, unlike std::stoll).
Result<int64_t> ParseInt64(std::string_view text);
Result<double> ParseDouble(std::string_view text);
Result<bool> ParseBool(std::string_view text);

/// One entry of the `record =` metric list: a metric name plus an optional
/// parenthesised argument — `rms`, `bandwidth`, `cdf(final_error)`. Which
/// selectors exist is decided by the protocol runner that executes the
/// trial; the spec layer only carries the grammar.
struct MetricSpec {
  std::string name;
  std::string arg;  // "" when no (...) argument was given

  /// "name" or "name(arg)" — the canonical selector spelling.
  std::string ToString() const {
    return arg.empty() ? name : name + "(" + arg + ")";
  }
  bool operator==(const MetricSpec& other) const {
    return name == other.name && arg == other.arg;
  }
};

/// One experiment: a protocol x environment x failure-plan configuration,
/// optionally swept over one parameter and replicated over trials.
struct ScenarioSpec {
  /// Experiment name; "<scenario name>/<section>" for sectioned files.
  std::string name = "scenario";
  /// Protocol registry key (see scenario/trial.h). Required.
  std::string protocol;
  /// Environment registry key.
  std::string environment = "uniform";
  /// Trial driver registry key: how simulated time advances. "rounds" is
  /// the paper's synchronous round loop; "trace" replays the environment's
  /// contact trace on the event-driven simulator core.
  std::string driver = "rounds";
  /// Trace driver: seconds of simulated time between gossip ticks
  /// (default 30, the paper's cadence). 0 = unset; setting it under a
  /// non-event driver is a validation error.
  double gossip_period = 0.0;
  /// Trace driver: seconds between metric samples (default 3600, the
  /// paper's hourly reporting). 0 = unset; same validation rule.
  double sample_period = 0.0;
  /// Worker threads for the round kernel's intra-round deposit scatter
  /// (push-mode protocols; see sim/round_kernel.h). Output is bit-identical
  /// at any value — this is purely a wall-clock knob for big single trials.
  /// Protocols that cannot use it reject values > 1.
  int intra_round_threads = 1;
  /// Population size. 0 means "derive from the environment" (allowed for
  /// environments with intrinsic size, e.g. spatial grids and traces).
  int hosts = 0;
  /// Gossip rounds per trial.
  int rounds = 200;
  /// Whether `rounds =` was written explicitly (the parser sets this).
  /// Event-driven drivers ignore rounds — the trace horizon governs the
  /// length — so validation rejects an explicit value there instead of
  /// silently running a different length than declared.
  bool rounds_set = false;
  /// Independent repetitions. Trial 0 replays the base seed exactly (legacy
  /// bench parity); trial t > 0 uses a derived, decorrelated seed.
  int trials = 1;
  /// Base RNG seed for the whole experiment.
  uint64_t seed = 1;
  /// Swept parameter ("" = no sweep). May be "hosts", "rounds", or any
  /// namespaced key; one full run is executed per value in sweep_values.
  std::string sweep_key;
  std::vector<double> sweep_values;
  /// Optional second sweep axis (`sweep2 = key: v1, v2, ...`): the
  /// experiment runs the full cross product sweep x sweep2 x trials. Only
  /// valid together with `sweep`, and must name a different key.
  std::string sweep2_key;
  std::vector<double> sweep2_values;
  /// Metrics recorded in one pass per trial (`record = rms, bandwidth,
  /// cdf(final_error)`). The protocol runner decides which selectors it
  /// supports and errors on unknown ones. Defaults to the paper's per-round
  /// RMS-deviation series.
  std::vector<MetricSpec> metrics = {{"rms", ""}};
  /// Cross-trial aggregation (`aggregate = mean, stddev`): when non-empty,
  /// the executor collapses the trial axis and reports, per metric column,
  /// one column per listed statistic (mean, stddev, min, max). Histogram
  /// records are pooled (bucket counts summed) instead. Requires
  /// trials >= 2 — a one-trial stddev would silently read 0.
  std::vector<std::string> aggregates;
  /// Telemetry mode: "" / "off" (default) collects nothing; "summary"
  /// accumulates per-trial phase timings and engine counters, reported as a
  /// per-sweep-point table; "profile" additionally keeps the raw span
  /// stream for the Chrome trace-event export (dynagg_run
  /// --telemetry-out). Telemetry is a pure side channel: the experiment's
  /// metric tables are byte-identical with it on or off.
  std::string telemetry;
  /// Output destination: "-" for stdout or a file path.
  std::string output = "-";
  /// Output format: "csv" or "jsonl".
  std::string format = "csv";
  /// Namespaced parameters (protocol.*, env.*, failure.*, record.*,
  /// seeds.*, workload.*, net.*), consumed by the factories.
  std::map<std::string, std::string> params;

  bool HasParam(const std::string& key) const {
    return params.count(key) != 0;
  }
  /// Typed parameter accessors; the default is returned when the key is
  /// absent, a bad value is an InvalidArgument naming the key.
  Result<std::string> ParamString(const std::string& key,
                                  std::string def) const;
  Result<int64_t> ParamInt(const std::string& key, int64_t def) const;
  Result<double> ParamDouble(const std::string& key, double def) const;
  Result<bool> ParamBool(const std::string& key, bool def) const;

  /// Rejects any parameter under `prefix` (e.g. "protocol.") whose suffix is
  /// not in `allowed`: factories call this so typos in namespaced keys fail
  /// loudly instead of silently using defaults.
  Status CheckParams(const std::string& prefix,
                     const std::vector<std::string>& allowed) const;
};

/// Validates a metric list (non-empty names, no duplicate selectors) and an
/// aggregate list (known statistics, no duplicates). Shared by the file
/// parser and the executor preflight so file-parsed and hand-built specs
/// agree on validity.
Status ValidateMetricList(const std::vector<MetricSpec>& metrics);
Status ValidateAggregateList(const std::vector<std::string>& aggregates);

/// Parses a scenario file into one spec per [section] (or a single spec for
/// a sectionless file). `default_name` seeds ScenarioSpec::name when the
/// file sets none (callers pass the file stem). Errors carry line numbers.
/// Cross-field rules (sweep2 axis sanity, aggregate/trials interplay) are
/// enforced by the executor's ValidateExperiment preflight, not here.
Result<std::vector<ScenarioSpec>> ParseScenarioFile(
    std::string_view text, const std::string& default_name = "scenario");

}  // namespace scenario
}  // namespace dynagg

#endif  // DYNAGG_SCENARIO_SPEC_H_
