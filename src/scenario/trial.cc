#include "scenario/trial.h"

#include <utility>

#include "common/macros.h"

namespace dynagg {
namespace scenario {

void Recorder::AddScalar(const std::string& name, double value) {
  for (const ScalarRecord& s : batch_.scalars) {
    DYNAGG_CHECK(s.name != name);  // runner bug: duplicate scalar name
  }
  batch_.scalars.push_back({name, value});
}

void Recorder::AddQuantile(const std::string& name, double q, double value) {
  for (const QuantileRecord& r : batch_.quantiles) {
    // Runner bug: duplicate (metric, q) pair.
    DYNAGG_CHECK(r.name != name || r.q != q);
  }
  batch_.quantiles.push_back({name, q, value});
}

SeriesRecord* Recorder::MutableKeyedSeries(const std::string& x_name,
                                           const std::string& name,
                                           const std::string& key_name,
                                           double key) {
  for (SeriesRecord& s : batch_.series) {
    // One trial must not mix keyed and unkeyed series (or two key
    // columns): the assembled table has a single optional key column.
    DYNAGG_CHECK(s.key_name == key_name);
    if (s.name == name && (key_name.empty() || s.key == key)) {
      DYNAGG_CHECK(s.x_name == x_name);
      return &s;
    }
  }
  SeriesRecord series;
  series.x_name = x_name;
  series.name = name;
  series.key_name = key_name;
  series.key = key_name.empty() ? 0.0 : key;
  batch_.series.push_back(std::move(series));
  return &batch_.series.back();
}

SeriesRecord* Recorder::MutableSeries(const std::string& x_name,
                                      const std::string& name) {
  return MutableKeyedSeries(x_name, name, /*key_name=*/"", 0.0);
}

void Recorder::AddSeriesPoint(const std::string& x_name,
                              const std::string& name, double x,
                              double value) {
  MutableSeries(x_name, name)->points.push_back({x, value});
}

void Recorder::AddKeyedSeriesPoint(const std::string& x_name,
                                   const std::string& name,
                                   const std::string& key_name, double key,
                                   double x, double value) {
  MutableKeyedSeries(x_name, name, key_name, key)->points.push_back(
      {x, value});
}

HistogramRecord* Recorder::MutableHistogram(const std::string& label,
                                            const std::string& key_name,
                                            const std::string& bucket_name,
                                            const std::string& value_name,
                                            bool cumulative,
                                            int64_t min_key_total) {
  for (HistogramRecord& h : batch_.histograms) {
    if (h.label == label) {
      DYNAGG_CHECK(h.key_name == key_name && h.bucket_name == bucket_name &&
                   h.value_name == value_name &&
                   h.cumulative == cumulative &&
                   h.min_key_total == min_key_total);
      return &h;
    }
  }
  HistogramRecord hist;
  hist.label = label;
  hist.key_name = key_name;
  hist.bucket_name = bucket_name;
  hist.value_name = value_name;
  hist.cumulative = cumulative;
  hist.min_key_total = min_key_total;
  batch_.histograms.push_back(std::move(hist));
  return &batch_.histograms.back();
}

void Recorder::SetBandwidth(double msgs_per_host_round,
                            double bytes_per_host_round, double state_bytes) {
  DYNAGG_CHECK(!batch_.has_bandwidth);
  batch_.has_bandwidth = true;
  batch_.bandwidth = {msgs_per_host_round, bytes_per_host_round, state_bytes};
}

bool SelectorMatches(const std::string& supported, const MetricSpec& m) {
  constexpr std::string_view kWildcard = "(*)";
  if (supported.size() > kWildcard.size() &&
      supported.compare(supported.size() - kWildcard.size(),
                        kWildcard.size(), kWildcard) == 0) {
    return m.name == supported.substr(0, supported.size() - kWildcard.size()) &&
           !m.arg.empty();
  }
  return m.ToString() == supported;
}

Status CheckMetricsSupported(const std::string& protocol,
                             const std::vector<MetricSpec>& metrics,
                             const std::vector<std::string>& supported) {
  for (const MetricSpec& m : metrics) {
    const std::string selector = m.ToString();
    bool ok = false;
    for (const std::string& s : supported) {
      if (SelectorMatches(s, m)) {
        ok = true;
        break;
      }
    }
    if (!ok) {
      std::string msg = "protocol '" + protocol +
                        "' does not support metric '" + selector +
                        "' (supported:";
      for (const std::string& s : supported) msg += " " + s;
      msg += ")";
      return Status::InvalidArgument(msg);
    }
  }
  return Status::OK();
}

Status CheckMetricsSupported(const ScenarioSpec& spec,
                             const std::vector<std::string>& supported) {
  return CheckMetricsSupported(spec.protocol, spec.metrics, supported);
}

bool MetricRequested(const ScenarioSpec& spec, const std::string& selector) {
  for (const MetricSpec& m : spec.metrics) {
    if (m.ToString() == selector) return true;
  }
  return false;
}

const std::vector<RecordTypeInfo>& RecordTypeCatalog() {
  static const std::vector<RecordTypeInfo> types = {
      {"scalar", "one named value per trial (rms_tail_mean, final_rms, "
                 "hh_precision(k), sketch_bytes, ...)"},
      {"quantile", "per-trial quantile of a per-host sample distribution "
                   "(quantile(final_error, q))"},
      {"series", "per-round (x, value) curves, optionally keyed "
                 "(rms, convergence)"},
      {"histogram", "bucketed distributions / CDFs "
                    "(cdf(final_error), cdf(counter))"},
      {"bandwidth", "measured per-host per-round traffic plus state bytes "
                    "(bandwidth)"},
  };
  return types;
}

namespace internal {
// Defined in scenario/protocols.cc, scenario/environments.cc,
// scenario/drivers.cc and stream/stream_protocols.cc.
void RegisterBuiltinProtocols(Registry<ProtocolDef>& registry);
void RegisterBuiltinEnvironments(Registry<EnvironmentDef>& registry);
void RegisterBuiltinDrivers(Registry<DriverDef>& registry);
void RegisterStreamProtocols(Registry<ProtocolDef>& registry);
}  // namespace internal

Registry<ProtocolDef>& ProtocolRegistry() {
  static Registry<ProtocolDef>* registry = [] {
    auto* r = new Registry<ProtocolDef>("protocol");
    internal::RegisterBuiltinProtocols(*r);
    internal::RegisterStreamProtocols(*r);
    return r;
  }();
  return *registry;
}

Registry<EnvironmentDef>& EnvironmentRegistry() {
  static Registry<EnvironmentDef>* registry = [] {
    auto* r = new Registry<EnvironmentDef>("environment");
    internal::RegisterBuiltinEnvironments(*r);
    return r;
  }();
  return *registry;
}

Registry<DriverDef>& DriverRegistry() {
  static Registry<DriverDef>* registry = [] {
    auto* r = new Registry<DriverDef>("driver");
    internal::RegisterBuiltinDrivers(*r);
    return r;
  }();
  return *registry;
}

Result<EnvHandle> MakeEnvironment(const TrialContext& ctx) {
  DYNAGG_ASSIGN_OR_RETURN(const EnvironmentDef def,
                          EnvironmentRegistry().Find(ctx.spec->environment));
  DYNAGG_ASSIGN_OR_RETURN(EnvHandle handle, def.make(ctx));
  if (ctx.spec->hosts > 0 &&
      ctx.spec->hosts != handle.env->num_hosts()) {
    return Status::InvalidArgument(
        "hosts = " + std::to_string(ctx.spec->hosts) +
        " does not match the environment's intrinsic size " +
        std::to_string(handle.env->num_hosts()));
  }
  return handle;
}

}  // namespace scenario
}  // namespace dynagg
