#include "scenario/trial.h"

namespace dynagg {
namespace scenario {

namespace internal {
// Defined in scenario/protocols.cc and scenario/environments.cc.
void RegisterBuiltinProtocols(Registry<ProtocolRunner>& registry);
void RegisterBuiltinEnvironments(Registry<EnvironmentFactory>& registry);
}  // namespace internal

Registry<ProtocolRunner>& ProtocolRegistry() {
  static Registry<ProtocolRunner>* registry = [] {
    auto* r = new Registry<ProtocolRunner>("protocol");
    internal::RegisterBuiltinProtocols(*r);
    return r;
  }();
  return *registry;
}

Registry<EnvironmentFactory>& EnvironmentRegistry() {
  static Registry<EnvironmentFactory>* registry = [] {
    auto* r = new Registry<EnvironmentFactory>("environment");
    internal::RegisterBuiltinEnvironments(*r);
    return r;
  }();
  return *registry;
}

Result<EnvHandle> MakeEnvironment(const TrialContext& ctx) {
  DYNAGG_ASSIGN_OR_RETURN(const EnvironmentFactory factory,
                          EnvironmentRegistry().Find(ctx.spec->environment));
  DYNAGG_ASSIGN_OR_RETURN(EnvHandle handle, factory(ctx));
  if (ctx.spec->hosts > 0 &&
      ctx.spec->hosts != handle.env->num_hosts()) {
    return Status::InvalidArgument(
        "hosts = " + std::to_string(ctx.spec->hosts) +
        " does not match the environment's intrinsic size " +
        std::to_string(handle.env->num_hosts()));
  }
  return handle;
}

}  // namespace scenario
}  // namespace dynagg
