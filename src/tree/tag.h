// TAG-style tree aggregation baseline (Madden et al., referenced in
// Sections II.a and VI).
//
// One aggregation epoch: partial aggregates <sum, count> climb the spanning
// tree level by level, one level per round, and the leader combines them.
// Hosts that fail mid-epoch silently drop their entire accumulated subtree
// — the failure sensitivity that motivates the paper's unstructured
// protocols, quantified by ablation_tree_vs_gossip.

#ifndef DYNAGG_TREE_TAG_H_
#define DYNAGG_TREE_TAG_H_

#include <vector>

#include "common/types.h"
#include "sim/failure.h"
#include "sim/population.h"
#include "tree/spanning_tree.h"

namespace dynagg {

/// Outcome of one TAG aggregation epoch.
struct TagEpochResult {
  /// True if the leader survived to produce a result.
  bool valid = false;
  double sum = 0.0;
  double count = 0.0;
  /// sum / count; 0 if no contributions arrived.
  double average = 0.0;
  /// Hosts whose value reached the leader.
  int contributing = 0;
  /// Rounds consumed (= tree depth).
  int rounds = 0;
};

/// Runs one TAG epoch of `values` over `tree`. `failures` is applied with
/// round offsets start_round, start_round + 1, ... between level
/// transmissions, mutating `pop` exactly as the gossip swarms see it.
TagEpochResult RunTagEpoch(const SpanningTree& tree,
                           const std::vector<double>& values, Population& pop,
                           const FailurePlan& failures, int start_round);

}  // namespace dynagg

#endif  // DYNAGG_TREE_TAG_H_
