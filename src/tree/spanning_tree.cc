#include "tree/spanning_tree.h"

#include <deque>

#include "common/macros.h"

namespace dynagg {

SpanningTree BuildBfsTree(const Environment& env, const Population& pop,
                          HostId root) {
  const int n = env.num_hosts();
  DYNAGG_CHECK(root >= 0 && root < n);
  DYNAGG_CHECK(pop.IsAlive(root));

  SpanningTree tree;
  tree.root = root;
  tree.parent.assign(n, kInvalidHost);
  tree.depth.assign(n, -1);
  tree.children.assign(n, {});
  tree.depth[root] = 0;
  tree.num_reached = 1;

  std::deque<HostId> frontier{root};
  std::vector<HostId> neighbors;
  while (!frontier.empty()) {
    const HostId host = frontier.front();
    frontier.pop_front();
    neighbors.clear();
    env.AppendNeighbors(host, pop, &neighbors);
    for (const HostId next : neighbors) {
      if (tree.depth[next] >= 0) continue;
      tree.depth[next] = tree.depth[host] + 1;
      tree.parent[next] = host;
      tree.children[host].push_back(next);
      tree.max_depth = std::max(tree.max_depth, tree.depth[next]);
      ++tree.num_reached;
      frontier.push_back(next);
    }
  }
  return tree;
}

}  // namespace dynagg
