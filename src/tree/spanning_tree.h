// Spanning-tree construction for overlay aggregation baselines.
//
// Overlay protocols (TAG and kin, Section II.a) flood a query from a leader
// and use the flood paths as a spanning tree: each host's parent is the
// neighbor it first heard the query from. BuildBfsTree models that flood as
// a breadth-first search over the environment's current adjacency.

#ifndef DYNAGG_TREE_SPANNING_TREE_H_
#define DYNAGG_TREE_SPANNING_TREE_H_

#include <vector>

#include "common/types.h"
#include "env/environment.h"
#include "sim/population.h"

namespace dynagg {

struct SpanningTree {
  HostId root = kInvalidHost;
  /// parent[i] = parent of host i; kInvalidHost for the root and for hosts
  /// the flood never reached.
  std::vector<HostId> parent;
  /// depth[i] = hops from root; -1 if unreached.
  std::vector<int> depth;
  std::vector<std::vector<HostId>> children;
  int num_reached = 0;
  int max_depth = 0;

  bool Reached(HostId id) const { return depth[id] >= 0; }
};

/// Floods from `root` (which must be alive) over the alive adjacency of
/// `env` and returns the resulting BFS tree.
SpanningTree BuildBfsTree(const Environment& env, const Population& pop,
                          HostId root);

}  // namespace dynagg

#endif  // DYNAGG_TREE_SPANNING_TREE_H_
