#include "tree/tag.h"

#include <algorithm>

#include "common/macros.h"

namespace dynagg {

TagEpochResult RunTagEpoch(const SpanningTree& tree,
                           const std::vector<double>& values, Population& pop,
                           const FailurePlan& failures, int start_round) {
  const int n = static_cast<int>(tree.parent.size());
  DYNAGG_CHECK_EQ(static_cast<int>(values.size()), n);

  // Partial aggregates, seeded with each reached alive host's own value.
  std::vector<double> psum(n, 0.0);
  std::vector<double> pcount(n, 0.0);
  std::vector<HostId> by_depth_order;
  by_depth_order.reserve(n);
  for (HostId id = 0; id < n; ++id) {
    if (!tree.Reached(id) || !pop.IsAlive(id)) continue;
    psum[id] = values[id];
    pcount[id] = 1.0;
    by_depth_order.push_back(id);
  }
  std::sort(by_depth_order.begin(), by_depth_order.end(),
            [&tree](HostId a, HostId b) {
              if (tree.depth[a] != tree.depth[b]) {
                return tree.depth[a] > tree.depth[b];
              }
              return a < b;
            });

  TagEpochResult result;
  result.rounds = tree.max_depth;
  // Level d transmits at round (max_depth - d); iterate depths descending.
  size_t cursor = 0;
  for (int level = tree.max_depth; level >= 1; --level) {
    const int round = start_round + (tree.max_depth - level);
    failures.Apply(round, &pop);
    while (cursor < by_depth_order.size() &&
           tree.depth[by_depth_order[cursor]] == level) {
      const HostId host = by_depth_order[cursor++];
      // A host that died mid-epoch silently drops its whole subtree's
      // partial aggregate; a dead parent swallows the transmission.
      if (!pop.IsAlive(host)) continue;
      const HostId parent = tree.parent[host];
      if (parent == kInvalidHost || !pop.IsAlive(parent)) continue;
      psum[parent] += psum[host];
      pcount[parent] += pcount[host];
    }
  }

  if (!pop.IsAlive(tree.root)) return result;  // leader lost: no result
  result.valid = true;
  result.sum = psum[tree.root];
  result.count = pcount[tree.root];
  result.average = result.count > 0 ? result.sum / result.count : 0.0;
  result.contributing = static_cast<int>(result.count);
  return result;
}

}  // namespace dynagg
