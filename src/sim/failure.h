// Failure plans: scripted host departures and arrivals applied between
// gossip rounds.
//
// The evaluation uses two failure modes (Section V.A):
//  - uncorrelated: a random fraction of hosts fails (law of large numbers
//    keeps the true average unchanged);
//  - correlated: the highest-valued fraction fails (the true average drops,
//    e.g. U[0,100) -> 25 after losing the top half).
// Churn plans additionally exercise continuous departure/arrival processes.

#ifndef DYNAGG_SIM_FAILURE_H_
#define DYNAGG_SIM_FAILURE_H_

#include <map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/population.h"

namespace dynagg {

class FailurePlan {
 public:
  FailurePlan() = default;

  /// Schedules `ids` to be killed immediately before round `round`.
  void AddKill(int round, std::vector<HostId> ids);
  /// Schedules `ids` to be revived immediately before round `round`.
  void AddRevive(int round, std::vector<HostId> ids);

  /// Applies all events scheduled for `round` to `pop`.
  void Apply(int round, Population* pop) const;

  /// True if no events are scheduled.
  bool empty() const { return events_.empty(); }

  /// Kills a uniformly random `fraction` of the `n` hosts at `round`.
  static FailurePlan KillRandomFraction(int n, int round, double fraction,
                                        Rng& rng);

  /// Kills the ceil(fraction * n) hosts with the highest `values` at `round`
  /// (the paper's correlated-failure mode).
  static FailurePlan KillTopFraction(const std::vector<double>& values,
                                     int round, double fraction);

  /// Continuous churn: every round in [start_round, end_round), each alive
  /// host dies with probability `death_prob` and each dead host returns with
  /// probability `return_prob`. The schedule is precomputed from `rng` so a
  /// plan replays identically.
  static FailurePlan Churn(int n, int start_round, int end_round,
                           double death_prob, double return_prob, Rng& rng);

 private:
  struct RoundEvents {
    std::vector<HostId> kill;
    std::vector<HostId> revive;
  };
  std::map<int, RoundEvents> events_;
};

}  // namespace dynagg

#endif  // DYNAGG_SIM_FAILURE_H_
