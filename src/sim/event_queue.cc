#include "sim/event_queue.h"

#include <utility>

#include "common/macros.h"

namespace dynagg {

void EventQueue::Schedule(SimTime at, EventFn fn, int priority) {
  heap_.push(Entry{at, priority, next_seq_++, std::move(fn)});
}

SimTime EventQueue::NextTime() const {
  return heap_.empty() ? kSimTimeMax : heap_.top().at;
}

SimTime EventQueue::RunNext() {
  DYNAGG_CHECK(!heap_.empty());
  // std::priority_queue::top() is const; the entry must be copied out before
  // pop so the callback can safely schedule further events.
  Entry entry = heap_.top();
  heap_.pop();
  entry.fn();
  return entry.at;
}

void EventQueue::Clear() {
  while (!heap_.empty()) heap_.pop();
}

}  // namespace dynagg
