// Shared experiment workloads.
//
// Two families live here:
//
//   1. The paper's default *value* workload: "when hosts are required to
//      have values, the values are selected uniformly in the range [0,100)"
//      (Section V). The exact Rng construction and draw order are
//      parity-critical: the bench harnesses, the scenario engine, and the
//      parity tests must all generate identical populations from one seed,
//      so this is the single definition they all share.
//
//   2. Keyed *stream* workloads: a deterministic time-varying stream of
//      keyed frequency updates — the "heavy traffic from millions of
//      users" axis the frequency-sketch protocols (src/stream/) aggregate.
//      Each (host, round) pair owns an independent derived RNG stream, so
//      a batch is a pure function of (seed, host, round): generation order
//      cannot perturb results, trials parallelize freely, and replaying a
//      single host's arrivals needs no global state.

#ifndef DYNAGG_SIM_WORKLOAD_H_
#define DYNAGG_SIM_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace dynagg {

/// `n` values drawn uniformly from [0, 100) via Rng(seed).
inline std::vector<double> UniformWorkloadValues(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values(n);
  for (auto& v : values) v = rng.UniformDouble(0, 100);
  return values;
}

// ------------------------------------------------- keyed stream workloads ---

/// Key-draw distribution of a keyed stream workload (`workload.kind`).
enum class KeyStreamKind {
  kUniform,  // keys uniform over [0, num_keys)
  kZipf,     // keys Zipf(skew) over [0, num_keys) — skewed "heavy" traffic
};

/// One row of the workload catalog (`dynagg_run --list`).
struct WorkloadKindInfo {
  const char* name;
  const char* summary;
};

/// The registered `workload.kind` values with one-line summaries.
const std::vector<WorkloadKindInfo>& KeyedWorkloadKinds();

/// Deterministic time-varying keyed stream generator.
///
/// Zipf draws use Hörmann & Derflinger's rejection-inversion sampler: O(1)
/// per draw with no per-key table, so key spaces of millions cost nothing
/// to set up. The sampler consumes a variable number of uniforms per draw,
/// which is harmless for determinism because every (host, round) batch has
/// its own derived RNG stream.
class KeyedStreamGen {
 public:
  /// `num_keys` >= 1 distinct keys; `skew` > 0 is the Zipf exponent
  /// (ignored for kUniform). `seed` is the workload's root seed.
  KeyedStreamGen(KeyStreamKind kind, uint64_t num_keys, double skew,
                 uint64_t seed);

  /// Overwrites `*out` with host `host`'s `batch` key arrivals of round
  /// `round`. A pure function of (seed, host, round, batch): independent
  /// of call order and of any other host's batches.
  void FillBatch(HostId host, int round, int batch,
                 std::vector<uint64_t>* out) const;

  KeyStreamKind kind() const { return kind_; }
  uint64_t num_keys() const { return num_keys_; }
  double skew() const { return skew_; }

 private:
  double HIntegral(double x) const;
  double HIntegralInverse(double x) const;
  uint64_t DrawZipf(Rng& rng) const;

  KeyStreamKind kind_;
  uint64_t num_keys_;
  double skew_;
  uint64_t seed_;
  // Rejection-inversion constants (Zipf only): the integral envelope at
  // x = 1.5 and num_keys + 0.5, and the acceptance shortcut threshold.
  double h_x1_ = 0.0;
  double h_n_ = 0.0;
  double threshold_ = 0.0;
};

}  // namespace dynagg

#endif  // DYNAGG_SIM_WORKLOAD_H_
