// Shared experiment workloads.
//
// The paper's default value workload: "when hosts are required to have
// values, the values are selected uniformly in the range [0,100)"
// (Section V). The exact Rng construction and draw order here are
// parity-critical: the bench harnesses, the scenario engine, and the
// parity tests must all generate identical populations from one seed, so
// this is the single definition they all share.

#ifndef DYNAGG_SIM_WORKLOAD_H_
#define DYNAGG_SIM_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace dynagg {

/// `n` values drawn uniformly from [0, 100) via Rng(seed).
inline std::vector<double> UniformWorkloadValues(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values(n);
  for (auto& v : values) v = rng.UniformDouble(0, 100);
  return values;
}

}  // namespace dynagg

#endif  // DYNAGG_SIM_WORKLOAD_H_
