#include "sim/churn.h"

#include <cmath>

namespace dynagg {

namespace {

/// Poisson draw via Knuth's product-of-uniforms method, chunked through the
/// distribution's additivity so exp(-lambda) never underflows. O(lambda)
/// uniforms — churn arrival rates are per-round and small relative to the
/// round's own O(n) work.
int SamplePoisson(double lambda, Rng& rng) {
  int k = 0;
  while (lambda > 16.0) {
    k += SamplePoisson(16.0, rng);
    lambda -= 16.0;
  }
  if (lambda <= 0) return k;
  const double limit = std::exp(-lambda);
  double product = rng.NextDouble();
  while (product > limit) {
    ++k;
    product *= rng.NextDouble();
  }
  return k;
}

}  // namespace

ChurnPlan ChurnPlan::Build(const ChurnParams& params, Rng& rng) {
  DYNAGG_CHECK_GE(params.n, 0);
  DYNAGG_CHECK(params.initial >= 0 && params.initial <= params.n);
  DYNAGG_CHECK(params.max_alive >= 0 && params.max_alive <= params.n);
  DYNAGG_CHECK_GE(params.arrival_rate, 0.0);

  ChurnPlan plan;
  // born: ids [0, next_unborn) have been alive at least once.
  HostId next_unborn = params.initial;
  std::vector<bool> alive(params.n, false);
  for (HostId id = 0; id < params.initial; ++id) alive[id] = true;
  int alive_count = params.initial;

  for (int round = params.start_round; round < params.end_round; ++round) {
    RoundEvents events;
    // Deaths: every alive (necessarily born) host flips a coin, in ID
    // order so the schedule is independent of any container ordering.
    if (params.death_prob > 0) {
      for (HostId id = 0; id < next_unborn; ++id) {
        if (alive[id] && rng.Bernoulli(params.death_prob)) {
          alive[id] = false;
          --alive_count;
          events.kills.push_back(id);
        }
      }
    }
    // Rebirths: dead-but-born hosts return with ID reuse. The cap check
    // precedes each draw, so a full population consumes no RNG here and
    // the schedule stays a pure function of the (deterministic) state.
    if (params.rebirth_prob > 0) {
      for (HostId id = 0; id < next_unborn; ++id) {
        if (alive[id] || alive_count >= params.max_alive) continue;
        if (rng.Bernoulli(params.rebirth_prob)) {
          alive[id] = true;
          ++alive_count;
          events.rebirths.push_back(id);
        }
      }
    }
    // First-time arrivals: the Poisson draw always happens (fixed RNG
    // consumption per round), then the count is clamped by the growth cap
    // and the remaining unborn pool.
    if (params.arrival_rate > 0) {
      int want = SamplePoisson(params.arrival_rate, rng);
      while (want > 0 && next_unborn < params.n &&
             alive_count < params.max_alive) {
        alive[next_unborn] = true;
        ++alive_count;
        events.joins.push_back(next_unborn);
        ++next_unborn;
        --want;
      }
    }
    if (!events.kills.empty() || !events.joins.empty() ||
        !events.rebirths.empty()) {
      plan.events_[round] = std::move(events);
    }
  }
  return plan;
}

ChurnPlan::RoundDelta ChurnPlan::Apply(
    int round, Population* pop,
    const std::function<void(HostId)>& on_join) const {
  RoundDelta delta;
  const auto it = events_.find(round);
  if (it == events_.end()) return delta;
  const RoundEvents& events = it->second;
  for (const HostId id : events.kills) pop->Kill(id);
  // Joins before rebirths: both revive + reset, but keeping the two lists
  // distinct lets the driver count them separately.
  for (const HostId id : events.joins) {
    pop->Revive(id);
    if (on_join) on_join(id);
  }
  for (const HostId id : events.rebirths) {
    pop->Revive(id);
    if (on_join) on_join(id);
  }
  delta.kills = static_cast<int>(events.kills.size());
  delta.joins = static_cast<int>(events.joins.size());
  delta.rebirths = static_cast<int>(events.rebirths.size());
  return delta;
}

ChurnPlan::RoundDelta ChurnPlan::Totals() const {
  RoundDelta totals;
  for (const auto& [round, events] : events_) {
    totals.kills += static_cast<int>(events.kills.size());
    totals.joins += static_cast<int>(events.joins.size());
    totals.rebirths += static_cast<int>(events.rebirths.size());
  }
  return totals;
}

}  // namespace dynagg
