#include "sim/metrics.h"

namespace dynagg {

double TrueAverage(const std::vector<double>& values, const Population& pop) {
  const auto& alive = pop.alive_ids();
  if (alive.empty()) return 0.0;
  double sum = 0.0;
  for (const HostId id : alive) sum += values[id];
  return sum / static_cast<double>(alive.size());
}

double TrueSum(const std::vector<double>& values, const Population& pop) {
  double sum = 0.0;
  for (const HostId id : pop.alive_ids()) sum += values[id];
  return sum;
}

double RmsDeviationOverAlive(const Population& pop, double truth,
                             const std::function<double(HostId)>& estimate) {
  DeviationStat dev;
  for (const HostId id : pop.alive_ids()) dev.Add(estimate(id), truth);
  return dev.rms();
}

double RmsDeviationPerHost(const Population& pop,
                           const std::function<double(HostId)>& truth,
                           const std::function<double(HostId)>& estimate) {
  DeviationStat dev;
  for (const HostId id : pop.alive_ids()) dev.Add(estimate(id), truth(id));
  return dev.rms();
}

int FirstSustainedBelow(const std::vector<double>& series, double threshold) {
  int first = -1;
  for (size_t i = 0; i < series.size(); ++i) {
    if (series[i] < threshold) {
      if (first < 0) first = static_cast<int>(i);
    } else {
      first = -1;
    }
  }
  return first;
}

}  // namespace dynagg
