// Simulator: the discrete-event loop (clock + event queue).
//
// Trace-driven experiments (Fig 11) run on this core: contact up/down events
// and 30-second gossip ticks are both scheduled events. The large synchronous
// uniform-gossip experiments use the round driver directly (round_driver.h),
// matching the paper's "simulation in rounds".

#ifndef DYNAGG_SIM_SIMULATOR_H_
#define DYNAGG_SIM_SIMULATOR_H_

#include <deque>
#include <functional>

#include "common/macros.h"
#include "common/types.h"
#include "sim/event_queue.h"

namespace dynagg {

class Simulator {
 public:
  Simulator() = default;
  DYNAGG_DISALLOW_COPY_AND_ASSIGN(Simulator);

  /// Current simulated time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (must be >= Now()). Among events
  /// at the same instant, lower `priority` fires first (ties by insertion
  /// order).
  void ScheduleAt(SimTime at, EventFn fn, int priority = 0);
  /// Schedules `fn` `delay` after Now().
  void ScheduleAfter(SimTime delay, EventFn fn, int priority = 0);
  /// Schedules `fn` to run every `period`, starting at `first`. Stops when
  /// `fn` returns false or the simulation ends. When several periodic
  /// chains tick at the same instant, lower `priority` fires first
  /// (samplers run at a higher priority than the gossip tick they
  /// observe).
  void SchedulePeriodic(SimTime first, SimTime period,
                        std::function<bool()> fn, int priority = 0);

  /// Runs events until the queue is empty, `RequestStop()` is called, or the
  /// next event is later than `until`. The clock ends at min(until, last
  /// event time). Returns the number of events executed.
  int64_t RunUntil(SimTime until);
  /// Runs to queue exhaustion (or RequestStop).
  int64_t Run() { return RunUntil(kSimTimeMax); }

  /// Makes the run loop return after the current event completes.
  void RequestStop() { stop_requested_ = true; }

  size_t pending_events() const { return queue_.size(); }

 private:
  EventQueue queue_;
  /// Self-rescheduling wrappers of SchedulePeriodic, owned here so the
  /// queued copies can capture a stable plain pointer instead of a
  /// shared_ptr cycle (which would never be freed). Deque: pointers to
  /// elements survive push_back.
  std::deque<std::function<void()>> periodic_ticks_;
  SimTime now_ = 0;
  bool stop_requested_ = false;
};

}  // namespace dynagg

#endif  // DYNAGG_SIM_SIMULATOR_H_
