// TraceRunner: event-driven trace experiments on the Simulator core.
//
// Wires together the three periodic activities of a Fig 11-style experiment
// — contact-trace playback, the 30-second gossip tick, and metric sampling —
// as events on one discrete-event simulator, replacing the hand-rolled
// advance/gossip/sample loops. Callbacks observe a consistent world: the
// environment is always advanced to the event's timestamp before the
// callback runs.

#ifndef DYNAGG_SIM_TRACE_RUNNER_H_
#define DYNAGG_SIM_TRACE_RUNNER_H_

#include <functional>

#include "common/macros.h"
#include "common/types.h"
#include "env/contact_trace.h"
#include "env/trace_env.h"
#include "sim/population.h"
#include "sim/simulator.h"

namespace dynagg {

class TraceRunner {
 public:
  /// `trace` must be finalized and outlive the runner. Gossip ticks fire
  /// every `gossip_period`, starting one period in.
  TraceRunner(const ContactTrace& trace, SimTime gossip_period,
              SimTime group_window = FromMinutes(10));
  DYNAGG_DISALLOW_COPY_AND_ASSIGN(TraceRunner);

  TraceEnvironment& env() { return env_; }
  Population& pop() { return pop_; }
  Simulator& sim() { return sim_; }
  SimTime Now() const { return sim_.Now(); }

  /// Registers the per-gossip-round callback (the protocol's RunRound).
  /// Must be called before Run.
  void OnRound(std::function<void(SimTime)> fn) { round_fn_ = std::move(fn); }

  /// Registers a sampling callback firing every `period` (e.g. hourly error
  /// reporting). Multiple samplers may be registered. A sample coinciding
  /// with a gossip tick observes the state AFTER the tick (event-queue
  /// priority), matching the classic advance/gossip/sample loops — which
  /// is what makes the samples usable as Recorder series points.
  void EverySample(SimTime period, std::function<void(SimTime)> fn);

  /// Runs gossip and samplers until the end of the trace (inclusive).
  /// May only be called once.
  void Run();

  /// Gossip rounds executed so far.
  int64_t rounds_run() const { return rounds_run_; }

  /// End of the trace (the run's inclusive horizon).
  SimTime end_time() const { return trace_->end_time(); }

 private:
  struct Sampler {
    SimTime period;
    std::function<void(SimTime)> fn;
  };

  const ContactTrace* trace_;
  SimTime gossip_period_;
  TraceEnvironment env_;
  Population pop_;
  Simulator sim_;
  std::function<void(SimTime)> round_fn_;
  std::vector<Sampler> samplers_;
  int64_t rounds_run_ = 0;
  bool ran_ = false;
};

}  // namespace dynagg

#endif  // DYNAGG_SIM_TRACE_RUNNER_H_
