// Discrete-event queue: a time-ordered priority queue of callbacks.
//
// Events at equal timestamps fire in insertion order (a monotone sequence
// number breaks ties), which keeps trace playback deterministic.

#ifndef DYNAGG_SIM_EVENT_QUEUE_H_
#define DYNAGG_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace dynagg {

using EventFn = std::function<void()>;

class EventQueue {
 public:
  EventQueue() = default;

  /// Enqueues `fn` to run at simulated time `at`.
  void Schedule(SimTime at, EventFn fn);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Timestamp of the earliest pending event; kSimTimeMax when empty.
  SimTime NextTime() const;

  /// Removes and runs the earliest event; returns its timestamp.
  /// Must not be called on an empty queue.
  SimTime RunNext();

  /// Drops all pending events.
  void Clear();

 private:
  struct Entry {
    SimTime at;
    uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace dynagg

#endif  // DYNAGG_SIM_EVENT_QUEUE_H_
