// Discrete-event queue: a time-ordered priority queue of callbacks.
//
// Events at equal timestamps fire by ascending priority, then in insertion
// order (a monotone sequence number breaks remaining ties), which keeps
// trace playback deterministic. Priorities order independent periodic
// chains at coinciding ticks: a sampler at priority 1 observes the state
// AFTER the gossip tick at priority 0 — insertion order alone cannot
// express this, because each periodic firing enqueues its own successor at
// an unrelated moment.

#ifndef DYNAGG_SIM_EVENT_QUEUE_H_
#define DYNAGG_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace dynagg {

using EventFn = std::function<void()>;

class EventQueue {
 public:
  EventQueue() = default;

  /// Enqueues `fn` to run at simulated time `at`. Among events with equal
  /// timestamps, lower `priority` runs first.
  void Schedule(SimTime at, EventFn fn, int priority = 0);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Timestamp of the earliest pending event; kSimTimeMax when empty.
  SimTime NextTime() const;

  /// Removes and runs the earliest event; returns its timestamp.
  /// Must not be called on an empty queue.
  SimTime RunNext();

  /// Drops all pending events.
  void Clear();

 private:
  struct Entry {
    SimTime at;
    int priority;
    uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace dynagg

#endif  // DYNAGG_SIM_EVENT_QUEUE_H_
