// RoundKernel: the shared two-phase (plan -> apply) gossip round.
//
// Environment API v2 structures every swarm's round the same way:
//
//   1. PLAN   The kernel lists the round's initiators (alive order for
//             simultaneous push rounds, a Fisher-Yates-shuffled order for
//             sequential pairwise exchanges) and asks the environment to
//             fill one PartnerPlan for all of them at once
//             (Environment::BuildPlan — batched, cache-reusing, and
//             bit-identical in Rng consumption to per-host SamplePeer).
//   2. APPLY  The protocol walks the plan's flat arrays: sequential
//             pairwise exchanges for push/pull protocols, or an
//             emit-then-scatter deposit pass for push-mode protocols. The
//             scatter can run data-parallel over destination shards
//             (set_intra_round_threads) while preserving the exact
//             per-destination deposit order, so N-thread rounds are
//             bit-identical to 1-thread rounds.
//
// This replaces the per-protocol shuffle/SamplePeer/emit/deposit loops the
// src/agg/ swarms used to copy, and it is what makes a 100k-host round
// cheap: one virtual call per round instead of one per host, contiguous
// plan arrays, and an apply phase whose random-access deposits are no
// longer serialized behind each partner draw (see bench/micro_protocol_ops
// and BENCH_roundkernel.json).

#ifndef DYNAGG_SIM_ROUND_KERNEL_H_
#define DYNAGG_SIM_ROUND_KERNEL_H_

#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "common/types.h"
#include "env/environment.h"
#include "env/partner_plan.h"
#include "obs/telemetry.h"
#include "sim/population.h"
#include "sim/worker_pool.h"

namespace dynagg {

/// Copies the alive ids and Fisher-Yates shuffles them. Push/pull exchanges
/// are applied sequentially within a round; shuffling removes any host-id
/// ordering bias. (Shared by the kernel and the tree baseline's harnesses.)
void ShuffledAliveOrder(const Population& pop, Rng& rng,
                        std::vector<HostId>* out);

class RoundKernel {
 public:
  RoundKernel() = default;

  /// Number of worker threads for the data-parallel deposit scatter.
  /// 1 (default) applies sequentially; N > 1 shards destinations over N
  /// workers with bit-identical results. Plans are always built
  /// single-threaded (the Rng is inherently sequential).
  void set_intra_round_threads(int threads) {
    DYNAGG_CHECK_GE(threads, 1);
    threads_ = threads;
  }
  int intra_round_threads() const { return threads_; }

  /// Whether push-mode rounds should take the split take + ScatterDeposits
  /// path (true) or the fused sequential ForEachPushSlot path (false). The
  /// configured thread count is clamped to WorkerPool::VisibleCpus():
  /// time-slicing T scatter workers on fewer cores is measurably slower
  /// than the fused loop, so `intra_round_threads = 4` on a 1-CPU host
  /// runs the fused path and stays bit-identical by construction.
  bool parallel_deposits() const { return ClampedThreads() > 1; }

  // ------------------------------------------------------------- plan ---

  /// Plans a simultaneous push round: `slots_per_initiator` independent
  /// partner draws per alive host, in alive order (full-transfer sends
  /// `parcels` parcels per host; everything else sends 1).
  const PartnerPlan& PlanPushRound(const Environment& env,
                                   const Population& pop, Rng& rng,
                                   int slots_per_initiator = 1);

  /// Plans a round of sequential pairwise exchanges: one partner draw per
  /// alive host, in a shuffled order (the draw-after-shuffle sequence of
  /// the legacy push/pull loops, bit-identical).
  const PartnerPlan& PlanExchangeRound(const Environment& env,
                                       const Population& pop, Rng& rng);

  const PartnerPlan& plan() const { return plan_; }

  // ------------------------------------------------------------ apply ---

  /// Applies `fn(initiator, partner)` to every matched slot, sequentially
  /// in plan order; unmatched slots are skipped. The pairwise-exchange
  /// apply phase: exchanges mutate both sides, so in-round ordering is part
  /// of the protocol's semantics and stays sequential.
  template <typename Fn>
  void ForEachExchange(Fn&& fn) const {
    obs::ScopedPhase span(obs::Phase::kApply);
    const std::vector<HostId>& initiators = plan_.initiators();
    const std::vector<HostId>& partners = plan_.partners();
    for (size_t k = 0; k < initiators.size(); ++k) {
      if (partners[k] == kInvalidHost) continue;
      fn(initiators[k], partners[k]);
    }
  }

  /// ForEachExchange with destination prefetch: both sides of every
  /// exchange are known from the plan, so `prefetch(host)` is issued for
  /// the initiator AND partner a few slots ahead — the legacy loops
  /// serialized both random node accesses behind each partner draw.
  template <typename Fn, typename PrefetchFn>
  void ForEachExchangePrefetched(Fn&& fn, PrefetchFn&& prefetch) const {
    obs::ScopedPhase span(obs::Phase::kApply);
    const std::vector<HostId>& initiators = plan_.initiators();
    const std::vector<HostId>& partners = plan_.partners();
    const size_t slots = initiators.size();
    constexpr size_t kPrefetchAhead = 8;
    for (size_t k = 0; k < slots; ++k) {
      if (k + kPrefetchAhead < slots) {
        prefetch(initiators[k + kPrefetchAhead]);
        const HostId ahead = partners[k + kPrefetchAhead];
        if (ahead != kInvalidHost) prefetch(ahead);
      }
      if (partners[k] == kInvalidHost) continue;
      fn(initiators[k], partners[k]);
    }
  }

  /// Applies `fn(initiator, partner)` to EVERY slot, sequentially in plan
  /// order, passing kInvalidHost for unmatched slots — for protocols with
  /// per-initiator round bookkeeping that runs whether or not a peer was
  /// reachable (the serialized node-aggregator facade).
  template <typename Fn>
  void ForEachSlot(Fn&& fn) const {
    obs::ScopedPhase span(obs::Phase::kApply);
    const std::vector<HostId>& initiators = plan_.initiators();
    const std::vector<HostId>& partners = plan_.partners();
    for (size_t k = 0; k < initiators.size(); ++k) {
      fn(initiators[k], partners[k]);
    }
  }

  /// Fused sequential apply for push-mode rounds: per slot, in plan order,
  /// `deposit(dst, emit(initiator))` where `dst` is the slot's effective
  /// partner — exactly the legacy emit/deposit interleaving (emit may
  /// deposit the self half internally). Because the plan already knows
  /// every destination, the loop prefetches `prefetch(dst)` a few slots
  /// ahead, overlapping the scatter's random-access latency — the main
  /// single-thread win of plan-then-apply (the legacy loop serialized each
  /// deposit's address behind its partner draw). Use this when
  /// intra_round_threads == 1; the split TakeHalf + ScatterDeposits path
  /// covers the data-parallel case.
  template <typename EmitFn, typename DepositFn, typename PrefetchFn>
  void ForEachPushSlot(EmitFn&& emit, DepositFn&& deposit,
                       PrefetchFn&& prefetch) const {
    obs::ScopedPhase span(obs::Phase::kApply);
    const std::vector<HostId>& initiators = plan_.initiators();
    const std::vector<HostId>& partners = plan_.partners();
    const size_t slots = initiators.size();
    // One payload lands per slot (the self half is emitted internally).
    using Payload = std::decay_t<std::invoke_result_t<EmitFn&, HostId>>;
    obs::Count(obs::Counter::kDepositBytes,
               static_cast<int64_t>(slots * sizeof(Payload)));
    constexpr size_t kPrefetchAhead = 16;
    if (plan_.identity_initiators()) {
      // initiators[k] == k: the hot loop touches only the partner array.
      for (size_t k = 0; k < slots; ++k) {
        if (k + kPrefetchAhead < slots) {
          const HostId ahead = partners[k + kPrefetchAhead];
          prefetch(ahead == kInvalidHost
                       ? static_cast<HostId>(k + kPrefetchAhead)
                       : ahead);
        }
        const HostId init = static_cast<HostId>(k);
        const HostId partner = partners[k];
        deposit(partner == kInvalidHost ? init : partner, emit(init));
      }
      return;
    }
    for (size_t k = 0; k < slots; ++k) {
      if (k + kPrefetchAhead < slots) {
        const HostId ahead = partners[k + kPrefetchAhead];
        prefetch(ahead == kInvalidHost ? initiators[k + kPrefetchAhead]
                                       : ahead);
      }
      const HostId init = initiators[k];
      const HostId partner = partners[k];
      deposit(partner == kInvalidHost ? init : partner, emit(init));
    }
  }

  /// Deposit scatter for push-mode protocols. Slot `k`'s payload
  /// `payloads[k]` is deposited to the slot's initiator first when
  /// `self_echo` is set (the push protocols' half-kept-to-self message) and
  /// then to its effective partner (the initiator again when no peer was
  /// reachable). `deposit(dst, payload)` must only mutate state owned by
  /// `dst`.
  ///
  /// Determinism: with T > 1 threads the deposit events are bucketed by
  /// destination shard in ONE sequential pass over the slots (within a
  /// shard, events keep slot order, self echo before partner), then each
  /// worker walks only its own bucket — every destination belongs to
  /// exactly one shard, so it sees its deposits in exactly the sequential
  /// order and floating-point accumulation is bit-identical at any thread
  /// count.
  template <typename Payload, typename DepositFn>
  void ScatterDeposits(const std::vector<Payload>& payloads, bool self_echo,
                       int num_hosts, DepositFn&& deposit) const {
    // The span covers the whole fork/join (bucket pass + workers + join);
    // the spawned workers themselves carry no telemetry sink.
    obs::ScopedPhase span(obs::Phase::kScatter);
    const std::vector<HostId>& initiators = plan_.initiators();
    const std::vector<HostId>& partners = plan_.partners();
    DYNAGG_CHECK_EQ(payloads.size(), initiators.size());
    const size_t slots = initiators.size();
    obs::Count(obs::Counter::kDepositBytes,
               static_cast<int64_t>((self_echo ? 2 : 1) * slots *
                                    sizeof(Payload)));
    const int threads = EffectiveThreads(num_hosts);
    if (threads <= 1) {
      for (size_t k = 0; k < slots; ++k) {
        const HostId init = initiators[k];
        const HostId partner = partners[k];
        if (self_echo) deposit(init, payloads[k]);
        deposit(partner == kInvalidHost ? init : partner, payloads[k]);
      }
      return;
    }
    // Bucket pass: worker w owns host ids in [num_hosts*w/T, ...).
    DYNAGG_CHECK_LE(slots, size_t{UINT32_MAX});
    shard_events_.resize(threads);
    for (auto& events : shard_events_) events.clear();
    const auto shard_of = [&](HostId dst) {
      return static_cast<size_t>(static_cast<int64_t>(dst) * threads /
                                 num_hosts);
    };
    for (size_t k = 0; k < slots; ++k) {
      const HostId init = initiators[k];
      const HostId partner = partners[k];
      if (self_echo) {
        shard_events_[shard_of(init)].push_back(
            {init, static_cast<uint32_t>(k)});
      }
      const HostId dst = partner == kInvalidHost ? init : partner;
      shard_events_[shard_of(dst)].push_back(
          {dst, static_cast<uint32_t>(k)});
    }
    const auto walk = [&](int w) {
      for (const DepositEvent& e : shard_events_[w]) {
        deposit(e.dst, payloads[e.slot]);
      }
    };
    // Persistent parked workers, shared by every kernel on this executor
    // thread: waking the pool costs microseconds and allocates nothing,
    // where the old per-round std::thread spawn paid creation + join +
    // allocator traffic on every round.
    WorkerPool::ForCallingThread(threads - 1).Run(threads, walk);
  }

  /// The data-parallel counterpart of ForEachPushSlot: fills `*outbox`
  /// (caller-owned scratch, reused across rounds) with `take(initiator)`
  /// per slot in plan order — `take` must NOT deposit anything — then
  /// scatter-deposits it (self echo first when requested, exact
  /// per-destination order, sharded over intra-round threads).
  template <typename Payload, typename TakeFn, typename DepositFn>
  void EmitAndScatter(std::vector<Payload>* outbox, bool self_echo,
                      int num_hosts, TakeFn&& take,
                      DepositFn&& deposit) const {
    {
      // The take loop is the round's apply phase; the scatter below times
      // itself, keeping the two phases disjoint in the profile.
      obs::ScopedPhase span(obs::Phase::kApply);
      const std::vector<HostId>& initiators = plan_.initiators();
      outbox->resize(initiators.size());
      for (size_t k = 0; k < initiators.size(); ++k) {
        (*outbox)[k] = take(initiators[k]);
      }
    }
    ScatterDeposits(*outbox, self_echo, num_hosts, deposit);
  }

 private:
  /// The configured thread count clamped to the CPUs the scheduler can
  /// actually run us on (or the test override) — see parallel_deposits().
  int ClampedThreads() const {
    const int visible = WorkerPool::VisibleCpus();
    return threads_ < visible ? threads_ : visible;
  }

  /// Thread count actually worth waking: tiny rounds stay sequential (the
  /// bucket pass + wake would dominate), and more threads than hosts would
  /// leave idle shards.
  int EffectiveThreads(int num_hosts) const {
    const int threads = ClampedThreads();
    if (threads <= 1 || plan_.size() < kMinParallelSlots) return 1;
    return threads < num_hosts ? threads : 1;
  }

  static constexpr size_t kMinParallelSlots = 4096;

  /// One deposit of ScatterDeposits' bucket pass: payloads[slot] -> dst.
  struct DepositEvent {
    HostId dst;
    uint32_t slot;
  };

  PartnerPlan plan_;
  std::vector<HostId> order_;  // scratch for the shuffled initiator order
  // Scratch for ScatterDeposits' per-shard event buckets, reused across
  // rounds (mutable: scattering is logically const on the kernel).
  mutable std::vector<std::vector<DepositEvent>> shard_events_;
  int threads_ = 1;
};

}  // namespace dynagg

#endif  // DYNAGG_SIM_ROUND_KERNEL_H_
