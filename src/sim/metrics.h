// Experiment metrics: truth computation and deviation recording in the
// paper's convention (RMS deviation of per-host estimates from the correct
// aggregate over currently-alive hosts).

#ifndef DYNAGG_SIM_METRICS_H_
#define DYNAGG_SIM_METRICS_H_

#include <functional>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "sim/population.h"

namespace dynagg {

/// True average of `values` over currently alive hosts; 0 if none alive.
double TrueAverage(const std::vector<double>& values, const Population& pop);

/// True sum of `values` over currently alive hosts.
double TrueSum(const std::vector<double>& values, const Population& pop);

/// RMS deviation of `estimate(id)` from `truth` over alive hosts.
double RmsDeviationOverAlive(const Population& pop, double truth,
                             const std::function<double(HostId)>& estimate);

/// RMS deviation with a per-host truth (used for group-relative errors in
/// the trace experiments).
double RmsDeviationPerHost(const Population& pop,
                           const std::function<double(HostId)>& truth,
                           const std::function<double(HostId)>& estimate);

/// Detects convergence: the first round whose deviation drops below
/// `threshold` and stays below it for every subsequent recorded round.
/// Returns -1 if the series never converges.
int FirstSustainedBelow(const std::vector<double>& series, double threshold);

}  // namespace dynagg

#endif  // DYNAGG_SIM_METRICS_H_
