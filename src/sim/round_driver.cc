// RunRounds / RunRoundsUntil are header-only templates; the shared
// ShuffledAliveOrder helper lives with the round kernel
// (sim/round_kernel.cc) since Environment API v2.
