#include "sim/round_driver.h"

#include <algorithm>

namespace dynagg {

void ShuffledAliveOrder(const Population& pop, Rng& rng,
                        std::vector<HostId>* out) {
  const auto& alive = pop.alive_ids();
  out->assign(alive.begin(), alive.end());
  for (size_t i = out->size(); i > 1; --i) {
    const size_t j = rng.UniformInt(i);
    std::swap((*out)[i - 1], (*out)[j]);
  }
}

}  // namespace dynagg
