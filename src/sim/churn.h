// Churn plans: two-sided membership dynamics — deaths, rebirths with ID
// reuse, and first-time arrivals — applied between gossip rounds.
//
// FailurePlan (sim/failure.h) models the paper's one-sided failure
// experiments: hosts leave and may silently return with their state intact.
// ChurnPlan extends that to the join side studied by the dynamic-graph
// aggregation literature: the universe is fixed at `n` hosts but only
// `initial` of them are alive at round 0; the rest are "unborn" and arrive
// over time, and dead hosts can be reborn reusing their old ID with RESET
// protocol state (the driver fires the swarm's on_join hook for every
// arrival and rebirth). The whole schedule is precomputed from a dedicated
// RNG stream so a plan replays identically and no existing seed stream is
// perturbed.

#ifndef DYNAGG_SIM_CHURN_H_
#define DYNAGG_SIM_CHURN_H_

#include <functional>
#include <map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/population.h"

namespace dynagg {

/// Parameters of a churn schedule over a universe of `n` hosts.
struct ChurnParams {
  int n = 0;                 // universe size (== spec.hosts)
  int initial = 0;           // hosts alive at round 0; ids [initial, n) unborn
  double arrival_rate = 0;   // expected first-time arrivals per round
  double death_prob = 0;     // per-round death probability per alive host
  double rebirth_prob = 0;   // per-round rebirth probability per dead host
  int start_round = 0;       // first round churn applies to
  int end_round = 0;         // one past the last churning round
  int max_alive = 0;         // growth cap on the alive count (<= n)
};

class ChurnPlan {
 public:
  ChurnPlan() = default;

  /// What Apply did for one round (feeds the churn telemetry counters).
  struct RoundDelta {
    int kills = 0;
    int joins = 0;     // first-time arrivals
    int rebirths = 0;  // dead-but-born hosts returning with ID reuse
  };

  /// Precomputes the full schedule. Each churning round, in order: every
  /// alive born host dies with `death_prob`; every dead born host is
  /// reborn with `rebirth_prob` (skipped while at `max_alive`); then a
  /// Poisson(`arrival_rate`) number of unborn hosts join in ID order
  /// (clamped by `max_alive` and the universe). All draws come from `rng`.
  static ChurnPlan Build(const ChurnParams& params, Rng& rng);

  /// Applies the events scheduled for `round` to `pop`: kills first, then
  /// joins and rebirths (each revived via `pop` and handed to `on_join`,
  /// which may be null for protocols without per-host reset state).
  RoundDelta Apply(int round, Population* pop,
                   const std::function<void(HostId)>& on_join) const;

  /// True if no events are scheduled.
  bool empty() const { return events_.empty(); }

  /// Total events across all rounds (plan-construction sanity checks).
  RoundDelta Totals() const;

 private:
  struct RoundEvents {
    std::vector<HostId> kills;
    std::vector<HostId> joins;
    std::vector<HostId> rebirths;
  };
  std::map<int, RoundEvents> events_;
};

}  // namespace dynagg

#endif  // DYNAGG_SIM_CHURN_H_
