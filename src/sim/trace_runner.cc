#include "sim/trace_runner.h"

#include <utility>

#include "obs/telemetry.h"

namespace dynagg {

TraceRunner::TraceRunner(const ContactTrace& trace, SimTime gossip_period,
                         SimTime group_window)
    : trace_(&trace),
      gossip_period_(gossip_period),
      env_(trace, group_window),
      pop_(trace.num_devices()) {
  DYNAGG_CHECK(trace.finalized());
  DYNAGG_CHECK_GT(gossip_period, 0);
}

void TraceRunner::EverySample(SimTime period, std::function<void(SimTime)> fn) {
  DYNAGG_CHECK_GT(period, 0);
  DYNAGG_CHECK(!ran_);
  samplers_.push_back(Sampler{period, std::move(fn)});
}

void TraceRunner::Run() {
  DYNAGG_CHECK(!ran_);
  DYNAGG_CHECK(round_fn_ != nullptr);
  ran_ = true;
  const SimTime end = trace_->end_time();

  sim_.SchedulePeriodic(gossip_period_, gossip_period_, [this, end] {
    env_.AdvanceTo(sim_.Now());
    {
      // Telemetry: each gossip tick is one round on the trace timeline.
      obs::ScopedRound span(rounds_run_);
      round_fn_(sim_.Now());
    }
    ++rounds_run_;
    return sim_.Now() + gossip_period_ <= end;
  });
  for (Sampler& sampler : samplers_) {
    // Pointer capture is safe: EverySample rejects registration after Run,
    // so samplers_ never reallocates underneath the events. Priority 1:
    // a sample coinciding with a gossip tick observes the state AFTER the
    // tick, like the classic advance/gossip/sample loops it replaces.
    Sampler* s = &sampler;
    sim_.SchedulePeriodic(
        s->period, s->period,
        [this, end, s] {
          env_.AdvanceTo(sim_.Now());
          {
            // Telemetry: metric samples are the trace driver's record phase.
            obs::ScopedPhase span(obs::Phase::kRecord);
            s->fn(sim_.Now());
          }
          return sim_.Now() + s->period <= end;
        },
        /*priority=*/1);
  }
  sim_.RunUntil(end);
}

}  // namespace dynagg
