#include "sim/failure.h"

#include <algorithm>
#include <numeric>

namespace dynagg {

void FailurePlan::AddKill(int round, std::vector<HostId> ids) {
  auto& slot = events_[round].kill;
  slot.insert(slot.end(), ids.begin(), ids.end());
}

void FailurePlan::AddRevive(int round, std::vector<HostId> ids) {
  auto& slot = events_[round].revive;
  slot.insert(slot.end(), ids.begin(), ids.end());
}

void FailurePlan::Apply(int round, Population* pop) const {
  const auto it = events_.find(round);
  if (it == events_.end()) return;
  for (const HostId id : it->second.kill) pop->Kill(id);
  for (const HostId id : it->second.revive) pop->Revive(id);
}

FailurePlan FailurePlan::KillRandomFraction(int n, int round, double fraction,
                                            Rng& rng) {
  DYNAGG_CHECK_GE(fraction, 0.0);
  DYNAGG_CHECK_LE(fraction, 1.0);
  std::vector<HostId> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  // Partial Fisher-Yates: the first `kill_count` entries become a uniform
  // sample without replacement.
  const auto kill_count = static_cast<size_t>(fraction * n + 0.5);
  for (size_t i = 0; i < kill_count && i + 1 < ids.size(); ++i) {
    const size_t j = i + rng.UniformInt(ids.size() - i);
    std::swap(ids[i], ids[j]);
  }
  ids.resize(kill_count);
  FailurePlan plan;
  plan.AddKill(round, std::move(ids));
  return plan;
}

FailurePlan FailurePlan::KillTopFraction(const std::vector<double>& values,
                                         int round, double fraction) {
  DYNAGG_CHECK_GE(fraction, 0.0);
  DYNAGG_CHECK_LE(fraction, 1.0);
  const auto n = values.size();
  std::vector<HostId> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  const auto kill_count =
      static_cast<size_t>(fraction * static_cast<double>(n) + 0.5);
  std::partial_sort(ids.begin(), ids.begin() + kill_count, ids.end(),
                    [&values](HostId a, HostId b) {
                      if (values[a] != values[b]) return values[a] > values[b];
                      return a < b;
                    });
  ids.resize(kill_count);
  FailurePlan plan;
  plan.AddKill(round, std::move(ids));
  return plan;
}

FailurePlan FailurePlan::Churn(int n, int start_round, int end_round,
                               double death_prob, double return_prob,
                               Rng& rng) {
  FailurePlan plan;
  std::vector<bool> alive(n, true);
  for (int round = start_round; round < end_round; ++round) {
    std::vector<HostId> kills;
    std::vector<HostId> revives;
    for (HostId id = 0; id < n; ++id) {
      if (alive[id]) {
        if (rng.Bernoulli(death_prob)) {
          alive[id] = false;
          kills.push_back(id);
        }
      } else if (rng.Bernoulli(return_prob)) {
        alive[id] = true;
        revives.push_back(id);
      }
    }
    if (!kills.empty()) plan.AddKill(round, std::move(kills));
    if (!revives.empty()) plan.AddRevive(round, std::move(revives));
  }
  return plan;
}

}  // namespace dynagg
