#include "sim/workload.h"

#include <cmath>
#include <cstdlib>

#include "common/hash.h"
#include "common/macros.h"

namespace dynagg {
namespace {

// Stable (expm1(x))/x and log1p(x)/x near zero — the skew == 1 limit of the
// envelope integral below would otherwise lose all precision.
double Helper1(double x) {
  return std::abs(x) > 1e-8 ? std::log1p(x) / x
                            : 1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x));
}

double Helper2(double x) {
  return std::abs(x) > 1e-8 ? std::expm1(x) / x
                            : 1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + 0.25 * x));
}

}  // namespace

const std::vector<WorkloadKindInfo>& KeyedWorkloadKinds() {
  static const std::vector<WorkloadKindInfo> kinds = {
      {"zipf", "keys ~ Zipf(workload.skew) over workload.keys ids "
               "(skewed heavy-hitter traffic)"},
      {"uniform", "keys uniform over workload.keys ids (no heavy hitters)"},
  };
  return kinds;
}

// Envelope integral H(x) = (x^(1-skew) - 1) / (1 - skew), continuous at
// skew == 1 where it degenerates to log(x).
double KeyedStreamGen::HIntegral(double x) const {
  const double log_x = std::log(x);
  return Helper2((1.0 - skew_) * log_x) * log_x;
}

double KeyedStreamGen::HIntegralInverse(double x) const {
  double t = x * (1.0 - skew_);
  if (t < -1.0) t = -1.0;  // clamp rounding spill below the x = 1 image
  return std::exp(Helper1(t) * x);
}

KeyedStreamGen::KeyedStreamGen(KeyStreamKind kind, uint64_t num_keys,
                               double skew, uint64_t seed)
    : kind_(kind), num_keys_(num_keys), skew_(skew), seed_(seed) {
  DYNAGG_CHECK(num_keys_ >= 1);
  if (kind_ == KeyStreamKind::kZipf) {
    DYNAGG_CHECK(skew_ > 0.0);
    h_x1_ = HIntegral(1.5) - 1.0;
    h_n_ = HIntegral(static_cast<double>(num_keys_) + 0.5);
    threshold_ =
        2.0 - HIntegralInverse(HIntegral(2.5) - std::pow(2.0, -skew_));
  }
}

// Hörmann & Derflinger rejection-inversion: invert the envelope integral at
// a uniform point, round to the nearest rank, and accept either via the
// constant-time threshold or the exact per-rank test.
uint64_t KeyedStreamGen::DrawZipf(Rng& rng) const {
  if (num_keys_ == 1) return 0;
  while (true) {
    const double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    const double x = HIntegralInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) {
      k = 1;
    } else if (k > num_keys_) {
      k = num_keys_;
    }
    const double kd = static_cast<double>(k);
    if (kd - x <= threshold_ ||
        u >= HIntegral(kd + 0.5) - std::pow(kd, -skew_)) {
      return k - 1;  // ranks are 1-based, keys 0-based
    }
  }
}

void KeyedStreamGen::FillBatch(HostId host, int round, int batch,
                               std::vector<uint64_t>* out) const {
  out->clear();
  if (batch <= 0) return;
  // One derived stream per (host, round): batches are order-independent.
  Rng rng(HashCombine(HashCombine(seed_, static_cast<uint64_t>(host)),
                      static_cast<uint64_t>(round)));
  out->reserve(static_cast<size_t>(batch));
  for (int i = 0; i < batch; ++i) {
    out->push_back(kind_ == KeyStreamKind::kUniform ? rng.UniformInt(num_keys_)
                                                    : DrawZipf(rng));
  }
}

}  // namespace dynagg
