// Traffic metering: counts the over-the-air messages and bytes a protocol
// generates.
//
// Bandwidth is the paper's core motivation ("the decreased bandwidth usage
// also reduces the device's power requirements", Section I, and
// "Push-Sum-Revert requires several orders of magnitude less bandwidth and
// storage space than Count-Sketch-Reset", Section IV.B). Swarms accept an
// optional TrafficMeter and record every transmitted payload; self-messages
// are not radio traffic and are not counted.

#ifndef DYNAGG_SIM_BANDWIDTH_H_
#define DYNAGG_SIM_BANDWIDTH_H_

#include <cstdint>

namespace dynagg {

struct TrafficStats {
  int64_t messages = 0;
  int64_t bytes = 0;

  TrafficStats& operator+=(const TrafficStats& other) {
    messages += other.messages;
    bytes += other.bytes;
    return *this;
  }
};

class TrafficMeter {
 public:
  TrafficMeter() = default;

  /// Records one transmitted message of `bytes` payload bytes.
  void RecordMessage(int64_t bytes) {
    ++total_.messages;
    total_.bytes += bytes;
  }

  /// Records `count` equal-sized messages in one call (the round kernel
  /// meters a whole planned push round at once). Totals are identical to
  /// `count` RecordMessage calls.
  void RecordMessages(int64_t count, int64_t bytes_each) {
    total_.messages += count;
    total_.bytes += count * bytes_each;
  }

  void Reset() { total_ = TrafficStats{}; }

  const TrafficStats& total() const { return total_; }

  /// Convenience: mean bytes per message; 0 when empty.
  double MeanMessageBytes() const {
    return total_.messages > 0
               ? static_cast<double>(total_.bytes) / total_.messages
               : 0.0;
  }

 private:
  TrafficStats total_;
};

}  // namespace dynagg

#endif  // DYNAGG_SIM_BANDWIDTH_H_
