#include "sim/simulator.h"

#include <memory>
#include <utility>

namespace dynagg {

void Simulator::ScheduleAt(SimTime at, EventFn fn, int priority) {
  DYNAGG_CHECK_GE(at, now_);
  queue_.Schedule(at, std::move(fn), priority);
}

void Simulator::ScheduleAfter(SimTime delay, EventFn fn, int priority) {
  DYNAGG_CHECK_GE(delay, 0);
  queue_.Schedule(now_ + delay, std::move(fn), priority);
}

void Simulator::SchedulePeriodic(SimTime first, SimTime period,
                                 std::function<bool()> fn, int priority) {
  DYNAGG_CHECK_GT(period, 0);
  DYNAGG_CHECK_GE(first, now_);
  // The wrapper reschedules itself. The simulator owns it (periodic_ticks_)
  // and the queued copies capture a plain pointer into that storage — a
  // self-owning shared_ptr capture would be a reference cycle and leak.
  periodic_ticks_.emplace_back();
  std::function<void()>* tick = &periodic_ticks_.back();
  *tick = [this, period, priority, fn = std::move(fn), tick]() {
    if (!fn()) return;
    queue_.Schedule(now_ + period, *tick, priority);
  };
  queue_.Schedule(first, *tick, priority);
}

int64_t Simulator::RunUntil(SimTime until) {
  stop_requested_ = false;
  int64_t executed = 0;
  while (!queue_.empty() && !stop_requested_) {
    const SimTime next = queue_.NextTime();
    if (next > until) break;
    now_ = next;
    queue_.RunNext();
    ++executed;
  }
  if (until != kSimTimeMax && now_ < until && queue_.NextTime() > until) {
    now_ = until;
  }
  return executed;
}

}  // namespace dynagg
