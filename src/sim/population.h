// Population: the alive/dead status of every host with O(1) kill/revive and
// O(1) uniform sampling over alive hosts.
//
// Silent failures in the paper are modelled by flipping hosts to dead: they
// stop initiating gossip, stop being selected as peers, and any mass or
// sketch state they hold simply leaves the computation — exactly the failure
// mode Sections III-IV address.

#ifndef DYNAGG_SIM_POPULATION_H_
#define DYNAGG_SIM_POPULATION_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "common/types.h"

namespace dynagg {

class Population {
 public:
  /// Creates `n` hosts, all alive.
  explicit Population(int n);

  /// Creates a universe of `n` hosts with only the first `initial_alive`
  /// of them alive; ids [initial_alive, n) start dead ("unborn") and can
  /// be activated later via Revive (churn plans use this for staged
  /// arrivals). When initial_alive < n the version stamp starts at 1 so
  /// callers that treat version() == 0 as "all hosts alive" (identity
  /// partner plans, array-swap fast paths) stay correct.
  Population(int n, int initial_alive);

  /// Total universe size (alive + dead).
  int size() const { return static_cast<int>(position_.size()); }
  int num_alive() const { return static_cast<int>(alive_ids_.size()); }
  bool IsAlive(HostId id) const {
    DYNAGG_DCHECK(id >= 0 && id < size());
    return position_[id] >= 0;
  }

  /// Marks `id` dead. No-op if already dead.
  void Kill(HostId id);
  /// Marks `id` alive. No-op if already alive.
  void Revive(HostId id);

  /// Uniform random alive host; kInvalidHost if none.
  HostId SampleAlive(Rng& rng) const;
  /// Uniform random alive host different from `exclude`; kInvalidHost if no
  /// such host exists.
  HostId SampleAliveExcept(HostId exclude, Rng& rng) const;

  /// The alive hosts, in unspecified order. Stable between mutations.
  const std::vector<HostId>& alive_ids() const { return alive_ids_; }

  /// Monotonic membership version of THIS object: 0 = never mutated;
  /// bumped by every *effective* Kill or Revive (no-ops leave it
  /// unchanged, so e.g. re-pinning an already-alive leader every round
  /// does not churn it).
  uint64_t version() const { return version_; }

  /// Globally unique membership-state fingerprint: drawn from a
  /// process-wide counter at construction and again on every effective
  /// mutation, so no two distinct alive-sets ever share a fingerprint —
  /// not even across different Population instances that happen to reuse
  /// the same address (a copy keeps the fingerprint, correctly: its state
  /// is identical until either side mutates). Environments key their
  /// per-round alive-neighbor caches on this (see Environment::BuildPlan).
  uint64_t fingerprint() const { return fingerprint_; }

 private:
  static uint64_t NextFingerprint();

  // position_[id] = index of id within alive_ids_, or -1 if dead.
  std::vector<int32_t> position_;
  std::vector<HostId> alive_ids_;
  uint64_t version_ = 0;
  uint64_t fingerprint_ = NextFingerprint();
};

}  // namespace dynagg

#endif  // DYNAGG_SIM_POPULATION_H_
