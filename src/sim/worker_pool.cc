#include "sim/worker_pool.h"

#include <atomic>
#include <memory>

#include "common/macros.h"
#include "obs/telemetry.h"

#ifdef __linux__
#include <sched.h>
#endif

namespace dynagg {
namespace {

std::atomic<int> g_visible_cpus_override{0};

}  // namespace

int WorkerPool::HardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int WorkerPool::AffinityCpus() {
#ifdef __linux__
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    const int n = CPU_COUNT(&mask);
    if (n > 0) return n;
  }
#endif
  return HardwareConcurrency();
}

int WorkerPool::VisibleCpus() {
  const int forced = g_visible_cpus_override.load(std::memory_order_relaxed);
  if (forced > 0) return forced;
  const int hw = HardwareConcurrency();
  const int affinity = AffinityCpus();
  return hw < affinity ? hw : affinity;
}

void WorkerPool::OverrideVisibleCpusForTest(int n) {
  DYNAGG_CHECK_GE(n, 0);
  g_visible_cpus_override.store(n, std::memory_order_relaxed);
}

WorkerPool& WorkerPool::ForCallingThread(int min_workers) {
  DYNAGG_CHECK_GE(min_workers, 1);
  // unique_ptr so a too-small pool can be replaced (park + join + recreate);
  // the thread_local destructor joins the workers at thread exit.
  thread_local std::unique_ptr<WorkerPool> pool;
  if (pool == nullptr || pool->workers() < min_workers) {
    pool = std::make_unique<WorkerPool>(min_workers);
  }
  return *pool;
}

WorkerPool::WorkerPool(int workers) {
  DYNAGG_CHECK_GE(workers, 1);
  threads_.reserve(workers);
  for (int w = 0; w < workers; ++w) {
    threads_.emplace_back([this, w] { WorkerMain(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_go_.notify_all();
  for (std::thread& th : threads_) th.join();
}

void WorkerPool::Dispatch(int num_tasks, TaskFn fn, void* ctx) {
  DYNAGG_CHECK_GE(num_tasks, 1);
  DYNAGG_CHECK_LE(num_tasks, workers() + 1);
  if (num_tasks == 1) {
    fn(ctx, 0);
    return;
  }
  obs::TrialTelemetry* sink = obs::Current();
  const int64_t dispatch_start = sink != nullptr ? obs::NowNs() : 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = fn;
    ctx_ = ctx;
    num_tasks_ = num_tasks;
    unfinished_ = workers();
    ++epoch_;
  }
  cv_go_.notify_all();
  fn(ctx, 0);
  const int64_t wait_start = sink != nullptr ? obs::NowNs() : 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock, [this] { return unfinished_ == 0; });
  }
  if (sink != nullptr) {
    const int64_t end = obs::NowNs();
    obs::Count(obs::Counter::kPoolDispatchNs, end - dispatch_start);
    obs::Count(obs::Counter::kPoolWaitNs, end - wait_start);
    if (sink->profile) {
      sink->events.push_back({obs::SpanEvent::kPool, /*phase=*/0,
                              sink->current_round, dispatch_start,
                              end - dispatch_start});
      sink->events.push_back({obs::SpanEvent::kPool, /*phase=*/1,
                              sink->current_round, wait_start,
                              end - wait_start});
    }
  }
}

void WorkerPool::WorkerMain(int worker_index) {
  uint64_t seen_epoch = 0;
  for (;;) {
    TaskFn fn;
    void* ctx;
    int num_tasks;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_go_.wait(lock, [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      fn = fn_;
      ctx = ctx_;
      num_tasks = num_tasks_;
    }
    // Fixed mapping: worker w owns task w+1 (task 0 runs on the dispatching
    // thread), so a dispatch needs no work-stealing or claim state. Every
    // woken worker decrements `unfinished_` whether or not it had a task.
    if (worker_index + 1 < num_tasks) fn(ctx, worker_index + 1);
    bool last;
    {
      std::lock_guard<std::mutex> lock(mu_);
      last = --unfinished_ == 0;
    }
    if (last) cv_done_.notify_one();
  }
}

}  // namespace dynagg
