// WorkerPool: persistent parked threads for intra-round data parallelism.
//
// The round kernel's destination-sharded deposit scatter used to spawn
// fresh std::threads every round, which put ~10-20us of create/join cost
// (plus allocator traffic) on a path whose useful work is a few hundred
// microseconds — the checked-in bench showed 2 threads *losing* to 1 at
// 100k hosts. A WorkerPool creates its threads once, parks them on a
// condition variable, and hands them a (function pointer, context, task
// index) triple per dispatch: waking the pool costs single-digit
// microseconds and allocates nothing, so the parallel scatter's overhead
// is bounded by the wake/join handshake instead of thread creation.
//
// Sharing model: one pool per calling thread (ForCallingThread), created
// lazily on first parallel dispatch and reused for every subsequent round,
// trial, and swarm that thread runs — "threads created once per executor
// worker". Nested use is safe by construction: each executor worker owns
// its own pool, and a thread never re-enters Run while one of its own
// dispatches is in flight (rounds are sequential within a trial).
//
// CPU budget: VisibleCpus() is the parallelism actually available —
// min(std::thread::hardware_concurrency(), the sched_getaffinity mask) —
// because a container is routinely pinned to fewer CPUs than the machine
// advertises, and oversubscribing the scatter (T workers time-slicing one
// core) is measurably *slower* than the fused sequential path. Callers
// (RoundKernel) clamp their configured thread count to this budget.
// Determinism tests force the sharded code path on any host via
// OverrideVisibleCpusForTest.
//
// Telemetry: each Run records its full fork/join wall time under the
// pool_dispatch_ns counter and the tail where the caller has finished its
// own shard and is waiting for workers under pool_wait_ns, so the phase
// table separates the pool's busy cost from its idle cost. In profile
// mode the same two intervals are emitted as Chrome-trace spans. The
// worker threads themselves carry no telemetry sink.

#ifndef DYNAGG_SIM_WORKER_POOL_H_
#define DYNAGG_SIM_WORKER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace dynagg {

class WorkerPool {
 public:
  /// std::thread::hardware_concurrency(), never 0.
  static int HardwareConcurrency();

  /// CPUs the scheduler will actually run this process on (the
  /// sched_getaffinity mask on Linux; HardwareConcurrency elsewhere).
  static int AffinityCpus();

  /// The parallelism budget: min(HardwareConcurrency, AffinityCpus), or
  /// the active test override. Always >= 1.
  static int VisibleCpus();

  /// Forces VisibleCpus() to return `n` (n >= 1); pass 0 to restore the
  /// real value. Lets determinism/lifecycle tests exercise the sharded
  /// parallel path on single-CPU hosts and oversubscription on small ones.
  static void OverrideVisibleCpusForTest(int n);

  /// The calling thread's shared pool, grown to at least `min_workers`
  /// parked worker threads (>= 1). Created on first use, reused across
  /// rounds/trials/swarms, destroyed at thread exit.
  static WorkerPool& ForCallingThread(int min_workers);

  /// Creates `workers` parked threads (>= 1).
  explicit WorkerPool(int workers);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int workers() const { return static_cast<int>(threads_.size()); }

  /// Runs fn(task) for every task in [0, num_tasks): task 0 on the calling
  /// thread, task w on worker w-1. Requires 1 <= num_tasks <= workers()+1.
  /// Blocks until every task returns; allocates nothing. Tasks must touch
  /// disjoint state (the kernel's destination sharding guarantees this).
  /// Not reentrant from its own tasks.
  template <typename Fn>
  void Run(int num_tasks, Fn&& fn) {
    using Pointee = std::remove_reference_t<Fn>;
    Dispatch(
        num_tasks,
        [](void* ctx, int task) { (*static_cast<Pointee*>(ctx))(task); },
        const_cast<void*>(static_cast<const void*>(&fn)));
  }

 private:
  using TaskFn = void (*)(void* ctx, int task);

  void Dispatch(int num_tasks, TaskFn fn, void* ctx);
  void WorkerMain(int worker_index);

  std::mutex mu_;
  std::condition_variable cv_go_;    // caller -> workers: new epoch
  std::condition_variable cv_done_;  // workers -> caller: all parked again
  uint64_t epoch_ = 0;               // bumped per dispatch
  int unfinished_ = 0;               // workers still in the current epoch
  int num_tasks_ = 0;
  TaskFn fn_ = nullptr;
  void* ctx_ = nullptr;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace dynagg

#endif  // DYNAGG_SIM_WORKER_POOL_H_
