#include "sim/population.h"

#include <atomic>
#include <numeric>

namespace dynagg {

uint64_t Population::NextFingerprint() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

Population::Population(int n) {
  DYNAGG_CHECK_GE(n, 0);
  position_.resize(n);
  alive_ids_.resize(n);
  std::iota(alive_ids_.begin(), alive_ids_.end(), 0);
  std::iota(position_.begin(), position_.end(), 0);
}

Population::Population(int n, int initial_alive) {
  DYNAGG_CHECK_GE(n, 0);
  DYNAGG_CHECK(initial_alive >= 0 && initial_alive <= n);
  position_.assign(n, -1);
  alive_ids_.resize(initial_alive);
  std::iota(alive_ids_.begin(), alive_ids_.end(), 0);
  for (int id = 0; id < initial_alive; ++id) position_[id] = id;
  // A partial universe is not the "never mutated, everyone alive" state
  // that version() == 0 promises, so start already-mutated.
  if (initial_alive < n) version_ = 1;
}

void Population::Kill(HostId id) {
  DYNAGG_CHECK(id >= 0 && id < size());
  const int32_t pos = position_[id];
  if (pos < 0) return;
  // Swap-remove from the alive vector, keeping position_ consistent.
  const HostId last = alive_ids_.back();
  alive_ids_[pos] = last;
  position_[last] = pos;
  alive_ids_.pop_back();
  position_[id] = -1;
  ++version_;
  fingerprint_ = NextFingerprint();
}

void Population::Revive(HostId id) {
  DYNAGG_CHECK(id >= 0 && id < size());
  if (position_[id] >= 0) return;
  position_[id] = static_cast<int32_t>(alive_ids_.size());
  alive_ids_.push_back(id);
  ++version_;
  fingerprint_ = NextFingerprint();
}

HostId Population::SampleAlive(Rng& rng) const {
  if (alive_ids_.empty()) return kInvalidHost;
  return alive_ids_[rng.UniformInt(alive_ids_.size())];
}

HostId Population::SampleAliveExcept(HostId exclude, Rng& rng) const {
  const size_t n = alive_ids_.size();
  if (n == 0) return kInvalidHost;
  if (n == 1) {
    return alive_ids_[0] == exclude ? kInvalidHost : alive_ids_[0];
  }
  // Rejection sampling: terminates quickly because at most one of n >= 2
  // candidates is excluded.
  while (true) {
    const HostId pick = alive_ids_[rng.UniformInt(n)];
    if (pick != exclude) return pick;
  }
}

}  // namespace dynagg
