#include "sim/round_kernel.h"

#include <algorithm>

namespace dynagg {

void ShuffledAliveOrder(const Population& pop, Rng& rng,
                        std::vector<HostId>* out) {
  const auto& alive = pop.alive_ids();
  out->assign(alive.begin(), alive.end());
  for (size_t i = out->size(); i > 1; --i) {
    const size_t j = rng.UniformInt(i);
    std::swap((*out)[i - 1], (*out)[j]);
  }
}

const PartnerPlan& RoundKernel::PlanPushRound(const Environment& env,
                                              const Population& pop, Rng& rng,
                                              int slots_per_initiator) {
  obs::ScopedPhase span(obs::Phase::kPlan);
  DYNAGG_CHECK_GE(slots_per_initiator, 1);
  plan_.Reset(pop.alive_ids(), slots_per_initiator);
  // A never-mutated population's alive_ids is the identity permutation
  // (Population constructor order), so with one slot per host the
  // initiator of slot k is k itself — apply loops skip the array reads.
  plan_.set_identity_initiators(pop.version() == 0 &&
                                slots_per_initiator == 1);
  env.BuildPlan(pop, rng, &plan_);
  // Planned partner slots, not matched ones: counting matches would cost
  // an O(n) scan per round; the plan size is free and deterministic.
  obs::Count(obs::Counter::kGossipExchanges,
             static_cast<int64_t>(plan_.size()));
  return plan_;
}

const PartnerPlan& RoundKernel::PlanExchangeRound(const Environment& env,
                                                  const Population& pop,
                                                  Rng& rng) {
  obs::ScopedPhase span(obs::Phase::kPlan);
  ShuffledAliveOrder(pop, rng, &order_);
  plan_.Reset(order_, /*slots_per_initiator=*/1);
  env.BuildPlan(pop, rng, &plan_);
  obs::Count(obs::Counter::kGossipExchanges,
             static_cast<int64_t>(plan_.size()));
  return plan_;
}

}  // namespace dynagg
