// Round driver: the paper's "simulation in rounds" harness.
//
// At every iteration each alive host performs its protocol's exchange with
// peers selected by the environment (Section V). A Swarm is any type
// exposing
//     void RunRound(const Environment&, const Population&, Rng&);
// and, since Environment API v2, internally structures that round on the
// shared plan -> apply kernel (sim/round_kernel.h, which also owns the
// shared ShuffledAliveOrder helper). The driver applies failure-plan events
// before each round and invokes an observer afterwards so experiments can
// record metrics.

#ifndef DYNAGG_SIM_ROUND_DRIVER_H_
#define DYNAGG_SIM_ROUND_DRIVER_H_

#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "env/environment.h"
#include "obs/telemetry.h"
#include "sim/failure.h"
#include "sim/population.h"
#include "sim/round_kernel.h"

namespace dynagg {

/// Runs up to `max_rounds` rounds of `swarm` under `env`/`pop`, applying
/// `failures` before each round and calling `on_round_end(round)` after each
/// round (round numbering starts at 0). Stops early when `on_round_end`
/// returns false — convergence-style experiments use this to avoid paying
/// for rounds that cannot change their result. Returns the number of rounds
/// executed.
template <typename Swarm>
int RunRoundsUntil(Swarm& swarm, const Environment& env, Population& pop,
                   const FailurePlan& failures, int max_rounds, Rng& rng,
                   const std::function<bool(int)>& on_round_end) {
  for (int round = 0; round < max_rounds; ++round) {
    // Telemetry: the round span covers failure application, the swarm's
    // plan/apply/scatter phases and the observer's metric evaluation.
    obs::ScopedRound span(round);
    failures.Apply(round, &pop);
    swarm.RunRound(env, pop, rng);
    if (on_round_end && !on_round_end(round)) return round + 1;
  }
  return max_rounds;
}

/// Runs `num_rounds` rounds of `swarm` under `env`/`pop`, applying `failures`
/// before each round and calling `on_round_end(round)` after each round
/// (round numbering starts at 0). `on_round_end` may be null.
template <typename Swarm>
void RunRounds(Swarm& swarm, const Environment& env, Population& pop,
               const FailurePlan& failures, int num_rounds, Rng& rng,
               const std::function<void(int)>& on_round_end = nullptr) {
  RunRoundsUntil(swarm, env, pop, failures, num_rounds, rng,
                 [&on_round_end](int round) {
                   if (on_round_end) on_round_end(round);
                   return true;
                 });
}

}  // namespace dynagg

#endif  // DYNAGG_SIM_ROUND_DRIVER_H_
