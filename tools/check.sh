#!/usr/bin/env bash
# Tier-1 verify sequence (CI entrypoint): configure, build, ctest.
# Usage: tools/check.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
# cd instead of --test-dir: the latter needs ctest >= 3.20, the project's
# declared minimum is 3.16.
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS")
# Every checked-in scenario spec must at least validate (registry lookups,
# record/aggregate/sweep grammar, driver compatibility) without executing.
"$BUILD_DIR"/dynagg_run --dry-run bench/scenarios/*.scenario
# Smoke execution: run the tiny checked-in smoke scenario end-to-end (both
# trial drivers, 2 trials each) and demand byte-identical output to the
# checked-in golden. Catches regressions that change numbers, not just
# structure; see smoke.scenario for how to regenerate after an intentional
# change.
"$BUILD_DIR"/dynagg_run --threads=2 --output="$BUILD_DIR/smoke_out.csv" \
  bench/scenarios/smoke.scenario
diff -u bench/scenarios/golden/smoke.csv "$BUILD_DIR/smoke_out.csv"
echo "check.sh: smoke scenario output matches golden"
# Streaming smoke: the heavy-hitter grid (keyed Zipf stream -> count-min
# swarms on the round kernel) must execute and reproduce its golden
# byte-for-byte; see heavy_hitters.scenario for regeneration.
"$BUILD_DIR"/dynagg_run --threads=2 \
  --output="$BUILD_DIR/heavy_hitters_out.csv" \
  bench/scenarios/heavy_hitters.scenario
diff -u bench/scenarios/golden/heavy_hitters.csv \
  "$BUILD_DIR/heavy_hitters_out.csv"
echo "check.sh: heavy_hitters scenario output matches golden"
# Async smoke: the loss-rate x protocol grid on the async driver (network
# models, message-level scheduling, push-sum vs push-flow under drops)
# must execute and reproduce its golden byte-for-byte; see
# loss_sweep.scenario for regeneration.
"$BUILD_DIR"/dynagg_run --threads=2 \
  --output="$BUILD_DIR/loss_sweep_out.csv" \
  bench/scenarios/loss_sweep.scenario
diff -u bench/scenarios/golden/loss_sweep.csv "$BUILD_DIR/loss_sweep_out.csv"
echo "check.sh: loss_sweep scenario output matches golden"
# Churn smoke: the arrival-rate x protocol grid under two-sided membership
# churn (deaths, rebirths with ID reuse, Poisson arrivals) must execute
# and reproduce its golden byte-for-byte — this is the determinism
# contract's membership clause under test; see churn_sweep.scenario for
# regeneration.
"$BUILD_DIR"/dynagg_run --threads=2 \
  --output="$BUILD_DIR/churn_sweep_out.csv" \
  bench/scenarios/churn_sweep.scenario
diff -u bench/scenarios/golden/churn_sweep.csv \
  "$BUILD_DIR/churn_sweep_out.csv"
echo "check.sh: churn_sweep scenario output matches golden"
# Spec-grammar fuzzer, fixed corpus: 500 generated/mutated specs, each of
# which must either fail --dry-run with an actionable diagnostic or
# execute clean — any runtime-only rejection is a validation gap and dumps
# a fuzz_repro_*.scenario artifact.
mkdir -p "$BUILD_DIR/fuzz"
"$BUILD_DIR"/dynagg_fuzz --seed-corpus --out-dir="$BUILD_DIR/fuzz"
echo "check.sh: fuzz seed corpus clean"
# Perf smoke: the round-kernel microbenchmarks must still run and the
# 100k-host scale spec must validate. The full perf snapshot
# (BENCH_roundkernel.json) is regenerated with `tools/bench.sh`.
tools/bench.sh --smoke "$BUILD_DIR"
