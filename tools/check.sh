#!/usr/bin/env bash
# Tier-1 verify sequence (CI entrypoint): configure, build, ctest.
# Usage: tools/check.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
# cd instead of --test-dir: the latter needs ctest >= 3.20, the project's
# declared minimum is 3.16.
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS")
# Every checked-in scenario spec must at least validate (registry lookups,
# record/aggregate/sweep grammar) without executing.
"$BUILD_DIR"/dynagg_run --dry-run bench/scenarios/*.scenario
