// dynagg_run: execute declarative scenario files.
//
//   dynagg_run [--threads=N] [--seed=N] [--output=PATH]
//              [--format=csv|jsonl] file.scenario [more.scenario ...]
//       Run every experiment in each file and write its metric tables to
//       the spec's `output` (default stdout). --seed / --output / --format
//       override the spec for all experiments (reproduction runs with a
//       different base seed need no spec edits).
//   dynagg_run --list file.scenario [...]
//       Enumerate the experiments in each file (name, protocol,
//       environment, axes, metrics) without executing anything.
//   dynagg_run --list
//       Print the registered protocols, environments and drivers.
//   dynagg_run --dry-run file.scenario [...]
//       Parse and structurally validate every experiment (registry
//       lookups, metric/aggregate grammar, sweep axes) without executing.
//
// Exit status: 0 on success, 1 on any experiment error, 2 on usage error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "scenario/executor.h"
#include "scenario/sink.h"
#include "scenario/spec.h"
#include "scenario/trial.h"

namespace dynagg {
namespace {

Result<std::string> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::string text;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

/// "bench/scenarios/foo.scenario" -> "foo".
std::string FileStem(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  std::string name = slash == std::string::npos ? path
                                                : path.substr(slash + 1);
  const size_t dot = name.find_last_of('.');
  if (dot != std::string::npos && dot > 0) name = name.substr(0, dot);
  return name;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: dynagg_run [--threads=N] [--seed=N] [--output=PATH] "
      "[--format=csv|jsonl] file.scenario...\n"
      "       dynagg_run --list [file.scenario...]\n"
      "       dynagg_run --dry-run file.scenario...\n");
  return 2;
}

int ListRegistries() {
  std::printf("protocols:\n");
  for (const auto& name : scenario::ProtocolRegistry().Names()) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("environments:\n");
  for (const auto& name : scenario::EnvironmentRegistry().Names()) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("drivers:\n");
  for (const auto& name : scenario::DriverRegistry().Names()) {
    std::printf("  %s\n", name.c_str());
  }
  return 0;
}

std::string DescribeMetrics(const scenario::ScenarioSpec& spec) {
  std::string out;
  for (size_t i = 0; i < spec.metrics.size(); ++i) {
    if (i) out += ",";
    out += spec.metrics[i].ToString();
  }
  return out;
}

void ListExperiment(const scenario::ScenarioSpec& spec) {
  std::printf("%s\n", spec.name.c_str());
  std::printf("  protocol = %s, environment = %s, driver = %s\n",
              spec.protocol.c_str(), spec.environment.c_str(),
              spec.driver.c_str());
  std::printf("  hosts = %d, rounds = %d, trials = %d, seed = %llu\n",
              spec.hosts, spec.rounds, spec.trials,
              static_cast<unsigned long long>(spec.seed));
  if (!spec.sweep_key.empty()) {
    std::printf("  sweep = %s (%zu values)\n", spec.sweep_key.c_str(),
                spec.sweep_values.size());
  }
  if (!spec.sweep2_key.empty()) {
    std::printf("  sweep2 = %s (%zu values)\n", spec.sweep2_key.c_str(),
                spec.sweep2_values.size());
  }
  std::printf("  record = %s\n", DescribeMetrics(spec).c_str());
  if (!spec.aggregates.empty()) {
    std::string aggs;
    for (size_t i = 0; i < spec.aggregates.size(); ++i) {
      if (i) aggs += ",";
      aggs += spec.aggregates[i];
    }
    std::printf("  aggregate = %s\n", aggs.c_str());
  }
  std::printf("  output = %s (%s)\n", spec.output.c_str(),
              spec.format.c_str());
}

enum class Mode { kRun, kList, kDryRun };

int Run(int argc, char** argv) {
  int threads = static_cast<int>(std::thread::hardware_concurrency());
  if (threads < 1) threads = 1;
  Mode mode = Mode::kRun;
  bool has_seed_override = false;
  uint64_t seed_override = 0;
  std::string output_override;
  std::string format_override;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      mode = Mode::kList;
    } else if (arg == "--dry-run") {
      mode = Mode::kDryRun;
    } else if (arg.rfind("--threads=", 0) == 0) {
      Result<int64_t> v = scenario::ParseInt64(arg.substr(10));
      if (!v.ok() || *v < 1) {
        std::fprintf(stderr, "dynagg_run: bad --threads value\n");
        return 2;
      }
      threads = static_cast<int>(*v);
    } else if (arg.rfind("--seed=", 0) == 0) {
      Result<int64_t> v = scenario::ParseInt64(arg.substr(7));
      if (!v.ok()) {
        std::fprintf(stderr, "dynagg_run: bad --seed value\n");
        return 2;
      }
      has_seed_override = true;
      seed_override = static_cast<uint64_t>(*v);
    } else if (arg.rfind("--output=", 0) == 0) {
      output_override = arg.substr(9);
    } else if (arg.rfind("--format=", 0) == 0) {
      format_override = arg.substr(9);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "dynagg_run: unknown flag %s\n", arg.c_str());
      return Usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    if (mode == Mode::kList) return ListRegistries();
    return Usage();
  }

  // Paths already written this invocation: the first experiment truncates,
  // later ones append, so experiments sharing one output file all survive.
  std::set<std::string> written_paths;
  int validated = 0;
  for (const std::string& file : files) {
    Result<std::string> text = ReadFile(file);
    if (!text.ok()) {
      std::fprintf(stderr, "dynagg_run: %s\n",
                   text.status().ToString().c_str());
      return 1;
    }
    Result<std::vector<scenario::ScenarioSpec>> specs =
        scenario::ParseScenarioFile(*text, FileStem(file));
    if (!specs.ok()) {
      std::fprintf(stderr, "dynagg_run: %s: %s\n", file.c_str(),
                   specs.status().ToString().c_str());
      return 1;
    }
    for (scenario::ScenarioSpec& spec : *specs) {
      if (has_seed_override) spec.seed = seed_override;
      if (mode == Mode::kList) {
        ListExperiment(spec);
        continue;
      }
      if (mode == Mode::kDryRun) {
        const Status st = scenario::ValidateExperiment(spec);
        if (!st.ok()) {
          std::fprintf(stderr, "dynagg_run: %s: %s\n", file.c_str(),
                       st.ToString().c_str());
          return 1;
        }
        ++validated;
        continue;
      }
      Result<std::vector<scenario::ResultTable>> tables =
          scenario::RunExperiment(spec, threads);
      if (!tables.ok()) {
        std::fprintf(stderr, "dynagg_run: %s: %s\n", file.c_str(),
                     tables.status().ToString().c_str());
        return 1;
      }
      const std::string output =
          output_override.empty() ? spec.output : output_override;
      const std::string format =
          format_override.empty() ? spec.format : format_override;
      const bool append =
          output != "-" && !written_paths.insert(output).second;
      const Status st =
          scenario::WriteTables(*tables, spec.name, format, output, append);
      if (!st.ok()) {
        std::fprintf(stderr, "dynagg_run: %s: %s\n", file.c_str(),
                     st.ToString().c_str());
        return 1;
      }
    }
  }
  if (mode == Mode::kDryRun) {
    std::printf("dynagg_run: validated %d experiment%s in %zu file%s\n",
                validated, validated == 1 ? "" : "s", files.size(),
                files.size() == 1 ? "" : "s");
  }
  return 0;
}

}  // namespace
}  // namespace dynagg

int main(int argc, char** argv) { return dynagg::Run(argc, argv); }
