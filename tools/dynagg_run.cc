// dynagg_run: execute declarative scenario files.
//
//   dynagg_run [--threads=N] [--seed=N] [--output=PATH]
//              [--format=csv|jsonl] [--telemetry=off|summary|profile]
//              [--telemetry-out=FILE] [--progress]
//              file.scenario [more.scenario ...]
//       Run every experiment in each file and write its metric tables to
//       the spec's `output` (default stdout). --seed / --output / --format
//       override the spec for all experiments (reproduction runs with a
//       different base seed need no spec edits).
//       --telemetry overrides the spec's `telemetry` key. In summary mode
//       the per-sweep-point phase-timing/counter table goes to
//       --telemetry-out (CSV/JSONL, same format rules as the main output)
//       or to stderr when no file is given. In profile mode
//       --telemetry-out receives a Chrome trace-event JSON (open in
//       ui.perfetto.dev) combining every profiled experiment, and the
//       summary table is printed to stderr. --progress prints a per-unit
//       completion ticker (done/total, elapsed, ETA) to stderr; it is
//       suppressed when the results go to stdout and stdout is not a
//       terminal (pipe sinks stay clean).
//   dynagg_run --list file.scenario [...]
//       Enumerate the experiments in each file (name, protocol,
//       environment, axes, metrics) without executing anything.
//   dynagg_run --list
//       Print the registered protocols, environments, drivers, keyed
//       workload kinds and record types.
//   dynagg_run --dry-run file.scenario [...]
//       Parse and structurally validate every experiment (registry
//       lookups, metric/aggregate grammar, sweep axes) without executing.
//
// Exit status: 0 on success, 1 on any experiment error, 2 on usage error.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "net/network_model.h"
#include "obs/trace_export.h"
#include "scenario/executor.h"
#include "scenario/sink.h"
#include "scenario/spec.h"
#include "scenario/trial.h"
#include "sim/worker_pool.h"
#include "sim/workload.h"

namespace dynagg {
namespace {

Result<std::string> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open '" + path + "'");
  }
  std::string text;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

/// "bench/scenarios/foo.scenario" -> "foo".
std::string FileStem(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  std::string name = slash == std::string::npos ? path
                                                : path.substr(slash + 1);
  const size_t dot = name.find_last_of('.');
  if (dot != std::string::npos && dot > 0) name = name.substr(0, dot);
  return name;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: dynagg_run [--threads=N] [--seed=N] [--output=PATH] "
      "[--format=csv|jsonl]\n"
      "                  [--telemetry=off|summary|profile] "
      "[--telemetry-out=FILE]\n"
      "                  [--progress] file.scenario...\n"
      "       dynagg_run --list [file.scenario...]\n"
      "       dynagg_run --dry-run file.scenario...\n"
      "       dynagg_run --hostinfo\n");
  return 2;
}

/// Writes `text` verbatim to `path` ("-" = stdout). Used for the Chrome
/// trace-event profile, which is one JSON document, not a row stream.
Status WriteTextFile(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return Status::OK();
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::NotFound("cannot open '" + path + "' for writing");
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return Status::OK();
}

int ListRegistries() {
  std::printf("protocols:\n");
  for (const auto& name : scenario::ProtocolRegistry().Names()) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("environments:\n");
  for (const auto& name : scenario::EnvironmentRegistry().Names()) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("drivers:\n");
  for (const auto& name : scenario::DriverRegistry().Names()) {
    std::printf("  %s\n", name.c_str());
  }
  std::printf("workloads (workload.kind, stream sketch protocols):\n");
  for (const WorkloadKindInfo& kind : KeyedWorkloadKinds()) {
    std::printf("  %-10s %s\n", kind.name, kind.summary);
  }
  std::printf("record types:\n");
  for (const scenario::RecordTypeInfo& type : scenario::RecordTypeCatalog()) {
    std::printf("  %-10s %s\n", type.name, type.summary);
  }
  std::printf("network models (net.latency, driver = async):\n");
  for (const net::NetCatalogInfo& model : net::NetworkModelCatalog()) {
    std::printf("  %-10s %s\n", model.name, model.summary);
  }
  std::printf("async driver spec keys:\n");
  for (const net::NetCatalogInfo& key : net::AsyncSpecKeyCatalog()) {
    std::printf("  %-21s %s\n", key.name, key.summary);
  }
  return 0;
}

std::string DescribeMetrics(const scenario::ScenarioSpec& spec) {
  std::string out;
  for (size_t i = 0; i < spec.metrics.size(); ++i) {
    if (i) out += ",";
    out += spec.metrics[i].ToString();
  }
  return out;
}

void ListExperiment(const scenario::ScenarioSpec& spec) {
  std::printf("%s\n", spec.name.c_str());
  std::printf("  protocol = %s, environment = %s, driver = %s\n",
              spec.protocol.c_str(), spec.environment.c_str(),
              spec.driver.c_str());
  std::printf("  hosts = %d, rounds = %d, trials = %d, seed = %llu\n",
              spec.hosts, spec.rounds, spec.trials,
              static_cast<unsigned long long>(spec.seed));
  if (!spec.sweep_key.empty()) {
    std::printf("  sweep = %s (%zu values)\n", spec.sweep_key.c_str(),
                spec.sweep_values.size());
  }
  if (!spec.sweep2_key.empty()) {
    std::printf("  sweep2 = %s (%zu values)\n", spec.sweep2_key.c_str(),
                spec.sweep2_values.size());
  }
  std::printf("  record = %s\n", DescribeMetrics(spec).c_str());
  if (!spec.aggregates.empty()) {
    std::string aggs;
    for (size_t i = 0; i < spec.aggregates.size(); ++i) {
      if (i) aggs += ",";
      aggs += spec.aggregates[i];
    }
    std::printf("  aggregate = %s\n", aggs.c_str());
  }
  std::printf("  output = %s (%s)\n", spec.output.c_str(),
              spec.format.c_str());
}

enum class Mode { kRun, kList, kDryRun };

int Run(int argc, char** argv) {
  int threads = static_cast<int>(std::thread::hardware_concurrency());
  if (threads < 1) threads = 1;
  Mode mode = Mode::kRun;
  bool has_seed_override = false;
  uint64_t seed_override = 0;
  std::string output_override;
  std::string format_override;
  std::string telemetry_override;
  std::string telemetry_out;
  bool progress = false;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      mode = Mode::kList;
    } else if (arg == "--hostinfo") {
      // The CPU counts perf tooling should report: the raw hardware value
      // AND what the scheduler actually grants (cgroup/affinity mask) —
      // `cpus: 1` in a bench snapshot is unreadable without both.
      std::printf("hardware_concurrency=%d\naffinity_cpus=%d\n",
                  WorkerPool::HardwareConcurrency(),
                  WorkerPool::AffinityCpus());
      return 0;
    } else if (arg == "--dry-run") {
      mode = Mode::kDryRun;
    } else if (arg.rfind("--threads=", 0) == 0) {
      Result<int64_t> v = scenario::ParseInt64(arg.substr(10));
      if (!v.ok() || *v < 1) {
        std::fprintf(stderr, "dynagg_run: bad --threads value\n");
        return 2;
      }
      threads = static_cast<int>(*v);
    } else if (arg.rfind("--seed=", 0) == 0) {
      Result<int64_t> v = scenario::ParseInt64(arg.substr(7));
      if (!v.ok()) {
        std::fprintf(stderr, "dynagg_run: bad --seed value\n");
        return 2;
      }
      has_seed_override = true;
      seed_override = static_cast<uint64_t>(*v);
    } else if (arg.rfind("--output=", 0) == 0) {
      output_override = arg.substr(9);
    } else if (arg.rfind("--format=", 0) == 0) {
      format_override = arg.substr(9);
    } else if (arg.rfind("--telemetry=", 0) == 0) {
      telemetry_override = arg.substr(12);
      if (telemetry_override != "off" && telemetry_override != "summary" &&
          telemetry_override != "profile") {
        std::fprintf(stderr,
                     "dynagg_run: --telemetry must be off, summary or "
                     "profile\n");
        return 2;
      }
    } else if (arg.rfind("--telemetry-out=", 0) == 0) {
      telemetry_out = arg.substr(16);
      if (telemetry_out.empty()) {
        std::fprintf(stderr, "dynagg_run: --telemetry-out needs a path\n");
        return 2;
      }
    } else if (arg == "--progress") {
      progress = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "dynagg_run: unknown flag %s\n", arg.c_str());
      return Usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    if (mode == Mode::kList) return ListRegistries();
    return Usage();
  }

  // Paths already written this invocation: the first experiment truncates,
  // later ones append, so experiments sharing one output file all survive.
  std::set<std::string> written_paths;
  // Telemetry gathered across experiments: summary tables append to
  // --telemetry-out as they arrive; profiled span streams combine into ONE
  // trace document (pid per experiment) written after the last run.
  std::vector<obs::ProcessProfile> profiles;
  bool any_profile = false;
  bool telemetry_out_written = false;
  int validated = 0;
  for (const std::string& file : files) {
    Result<std::string> text = ReadFile(file);
    if (!text.ok()) {
      std::fprintf(stderr, "dynagg_run: %s\n",
                   text.status().ToString().c_str());
      return 1;
    }
    Result<std::vector<scenario::ScenarioSpec>> specs =
        scenario::ParseScenarioFile(*text, FileStem(file));
    if (!specs.ok()) {
      std::fprintf(stderr, "dynagg_run: %s: %s\n", file.c_str(),
                   specs.status().ToString().c_str());
      return 1;
    }
    for (scenario::ScenarioSpec& spec : *specs) {
      if (has_seed_override) spec.seed = seed_override;
      if (mode == Mode::kList) {
        ListExperiment(spec);
        continue;
      }
      if (mode == Mode::kDryRun) {
        const Status st = scenario::ValidateExperiment(spec);
        if (!st.ok()) {
          std::fprintf(stderr, "dynagg_run: %s: %s\n", file.c_str(),
                       st.ToString().c_str());
          return 1;
        }
        ++validated;
        continue;
      }
      const std::string output =
          output_override.empty() ? spec.output : output_override;
      const std::string format =
          format_override.empty() ? spec.format : format_override;
      const std::string telemetry_mode =
          telemetry_override.empty() ? spec.telemetry : telemetry_override;
      const bool collect =
          telemetry_mode == "summary" || telemetry_mode == "profile";

      scenario::RunOptions options;
      options.threads = threads;
      options.telemetry = telemetry_override;
      // The ticker writes to stderr but stays quiet when the results are
      // being piped from stdout — progress noise next to machine-read
      // output helps nobody.
      const bool show_progress =
          progress && !(output == "-" && isatty(STDOUT_FILENO) == 0);
      const auto run_start = std::chrono::steady_clock::now();
      if (show_progress) {
        options.on_unit_done = [&run_start, &spec](int done, int total) {
          const double elapsed =
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            run_start)
                  .count();
          const double eta =
              done > 0 ? elapsed / done * (total - done) : 0.0;
          std::fprintf(stderr,
                       "\rdynagg_run: %s: %d/%d units, %.1fs elapsed, "
                       "eta %.1fs ",
                       spec.name.c_str(), done, total, elapsed, eta);
          std::fflush(stderr);
        };
      }

      scenario::ExperimentTelemetry telemetry;
      Result<std::vector<scenario::ResultTable>> tables =
          scenario::RunExperiment(spec, options,
                                  collect ? &telemetry : nullptr);
      if (show_progress) std::fprintf(stderr, "\n");
      if (!tables.ok()) {
        std::fprintf(stderr, "dynagg_run: %s: %s\n", file.c_str(),
                     tables.status().ToString().c_str());
        return 1;
      }
      const bool append =
          output != "-" && !written_paths.insert(output).second;
      const Status st =
          scenario::WriteTables(*tables, spec.name, format, output, append);
      if (!st.ok()) {
        std::fprintf(stderr, "dynagg_run: %s: %s\n", file.c_str(),
                     st.ToString().c_str());
        return 1;
      }
      if (collect) {
        const bool summary_to_file =
            telemetry_mode == "summary" && !telemetry_out.empty();
        if (summary_to_file) {
          const Status ts = scenario::WriteTables(
              telemetry.summary, spec.name, format, telemetry_out,
              telemetry_out_written);
          if (!ts.ok()) {
            std::fprintf(stderr, "dynagg_run: %s: %s\n", file.c_str(),
                         ts.ToString().c_str());
            return 1;
          }
          telemetry_out_written = true;
        } else {
          // Profile mode (the file receives the trace) and file-less
          // summary mode both print the table to stderr.
          Result<std::string> rendered =
              scenario::RenderTables(telemetry.summary, spec.name, "csv");
          if (rendered.ok()) std::fputs(rendered->c_str(), stderr);
        }
        if (telemetry_mode == "profile") {
          any_profile = true;
          profiles.push_back(
              {telemetry.experiment, std::move(telemetry.units)});
        }
      }
    }
  }
  if (any_profile) {
    if (telemetry_out.empty()) {
      std::fprintf(stderr,
                   "dynagg_run: telemetry = profile collected span streams "
                   "but no --telemetry-out=FILE was given; the trace was "
                   "dropped\n");
    } else {
      const Status st =
          WriteTextFile(telemetry_out, obs::RenderChromeTrace(profiles));
      if (!st.ok()) {
        std::fprintf(stderr, "dynagg_run: %s\n", st.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr,
                   "dynagg_run: wrote trace-event profile for %zu "
                   "experiment%s to %s\n",
                   profiles.size(), profiles.size() == 1 ? "" : "s",
                   telemetry_out.c_str());
    }
  }
  if (mode == Mode::kDryRun) {
    std::printf("dynagg_run: validated %d experiment%s in %zu file%s\n",
                validated, validated == 1 ? "" : "s", files.size(),
                files.size() == 1 ? "" : "s");
  }
  return 0;
}

}  // namespace
}  // namespace dynagg

int main(int argc, char** argv) { return dynagg::Run(argc, argv); }
