// dynagg_fuzz: spec-grammar fuzzer for the scenario surface.
//
//   dynagg_fuzz [--seed=S] [--count=N] [--out-dir=DIR] [--verbose]
//   dynagg_fuzz --seed-corpus [--out-dir=DIR]
//
// Walks the validated spec grammar — protocol / environment / driver names
// harvested live from the registries, key types and value ranges mirrored
// from the per-protocol validators — and generates seeded VALID specs plus
// near-valid mutants (typoed keys, junk values, dropped lines, forbidden
// key combinations, unknown namespaced knobs). Every generated spec must
// uphold the dry-run contract:
//
//   it either fails `--dry-run` (parse or ValidateExperiment) with an
//   actionable message, or it executes clean.
//
// A spec that passes validation but fails at execution is exactly the bug
// class `--dry-run` promises cannot exist, so each one is dumped as a
// repro artifact (<out-dir>/fuzz_repro_<seed>_<index>.scenario with the
// error in a comment header) and the run exits nonzero. CI runs the fixed
// seed corpus plus a rolling random batch under ASan/UBSan (see
// .github/workflows/ci.yml), so "executes clean" also means "no sanitizer
// findings".
//
// Exit status: 0 when every spec upheld the contract, 1 otherwise, 2 on
// usage error.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "scenario/executor.h"
#include "scenario/spec.h"
#include "scenario/trial.h"

namespace dynagg {
namespace {

using scenario::ProtocolDef;
using scenario::ScenarioSpec;

// ------------------------------------------------------------ generator ---

/// One key = value line of a spec under construction. Kept as strings so
/// mutations can corrupt them the way a hand-edited file would be.
struct SpecLine {
  std::string key;
  std::string value;
};

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string RenderLines(const std::vector<SpecLine>& lines) {
  std::string text;
  for (const SpecLine& line : lines) {
    if (line.key.empty()) {
      text += line.value + "\n";  // raw line (mutations inject these)
    } else {
      text += line.key + " = " + line.value + "\n";
    }
  }
  return text;
}

/// Emits the protocol.* knobs of `name` with values drawn from the ranges
/// the validators accept — the "valid spec" half of the grammar walk. The
/// table mirrors scenario/protocols.cc and stream/stream_protocols.cc;
/// protocols it does not know get no knobs (defaults are always valid).
void AppendProtocolKnobs(const std::string& name, Rng& rng,
                         std::vector<SpecLine>* lines) {
  const auto maybe = [&rng](double p) { return rng.Bernoulli(p); };
  if (name == "push-sum") {
    if (maybe(0.5)) {
      lines->push_back(
          {"protocol.mode", rng.Bernoulli(0.5) ? "push" : "pushpull"});
    }
  } else if (name == "push-sum-revert") {
    if (maybe(0.6)) {
      lines->push_back(
          {"protocol.lambda", FormatDouble(rng.UniformDouble(0.0, 0.3))});
    }
  } else if (name == "epoch-push-sum") {
    if (maybe(0.6)) {
      lines->push_back({"protocol.epoch_length",
                        std::to_string(rng.UniformRange(2, 20))});
    }
  } else if (name == "full-transfer") {
    if (maybe(0.5)) {
      lines->push_back(
          {"protocol.parcels", std::to_string(rng.UniformRange(1, 8))});
    }
    if (maybe(0.5)) {
      lines->push_back(
          {"protocol.window", std::to_string(rng.UniformRange(1, 6))});
    }
  } else if (name == "extremes") {
    if (maybe(0.5)) {
      lines->push_back({"protocol.kind", rng.Bernoulli(0.5) ? "max" : "min"});
    }
    if (maybe(0.5)) {
      lines->push_back(
          {"protocol.cutoff", std::to_string(rng.UniformRange(4, 24))});
    }
  } else if (name == "count-sketch" || name == "count-sketch-reset" ||
             name == "invert-average" || name == "node-aggregator") {
    if (maybe(0.5)) {
      lines->push_back(
          {"protocol.bins", std::to_string(rng.UniformRange(8, 64))});
    }
    if (maybe(0.5)) {
      lines->push_back(
          {"protocol.levels", std::to_string(rng.UniformRange(4, 24))});
    }
    if (name != "count-sketch" && maybe(0.3)) {
      lines->push_back(
          {"protocol.multiplicity", std::to_string(rng.UniformRange(1, 8))});
    }
  } else if (name == "count-min" || name == "count-sketch-freq") {
    // Explicit small shapes keep the fuzz workload cheap; epsilon/delta
    // derivation is exercised by leaving the keys off sometimes.
    if (maybe(0.7)) {
      lines->push_back({"protocol.depth",
                        std::to_string(rng.UniformRange(1, 4))});
      lines->push_back(
          {"protocol.width",
           std::to_string(int64_t{1} << rng.UniformRange(3, 8))});
    }
  }
}

/// Builds one structurally valid spec: bounded sizes, knobs inside the
/// validated ranges, stream workloads for the protocols that require one,
/// churn plans only on join-capable swarm protocols.
std::vector<SpecLine> GenerateValidSpec(const std::string& protocol,
                                        const ProtocolDef& def, int index,
                                        Rng& rng) {
  std::vector<SpecLine> lines;
  lines.push_back({"name", "fuzz_" + std::to_string(index)});
  lines.push_back({"protocol", protocol});
  const bool custom = def.make_swarm == nullptr;
  const int hosts = static_cast<int>(rng.UniformRange(2, 256));
  lines.push_back({"hosts", std::to_string(hosts)});
  const int rounds = static_cast<int>(rng.UniformRange(1, 40));
  lines.push_back({"rounds", std::to_string(rounds)});
  lines.push_back({"trials", std::to_string(rng.UniformRange(1, 2))});
  lines.push_back({"seed", std::to_string(rng.Next() >> 1)});

  // Custom runners own their environment/record surface; keep them on the
  // defaults the validators accept.
  if (!custom && rng.Bernoulli(0.25)) {
    lines.push_back({"environment", "random-graph"});
    lines.push_back(
        {"env.degree", std::to_string(rng.UniformRange(2, 8))});
  }

  if (def.consumes_workload) {
    const bool zipf = rng.Bernoulli(0.7);
    lines.push_back({"workload.kind", zipf ? "zipf" : "uniform"});
    lines.push_back(
        {"workload.keys", std::to_string(rng.UniformRange(16, 4096))});
    lines.push_back(
        {"workload.batch", std::to_string(rng.UniformRange(1, 32))});
    if (zipf && rng.Bernoulli(0.5)) {
      lines.push_back(
          {"workload.skew", FormatDouble(rng.UniformDouble(0.5, 2.0))});
    }
  }

  AppendProtocolKnobs(protocol, rng, &lines);

  bool used_churn = false;
  if (def.join_capable && !custom && rng.Bernoulli(0.4)) {
    used_churn = true;
    if (rng.Bernoulli(0.7)) {
      lines.push_back(
          {"churn.initial",
           std::to_string(rng.UniformRange(1, hosts))});
    }
    if (rng.Bernoulli(0.7)) {
      lines.push_back(
          {"churn.arrival_rate", FormatDouble(rng.UniformDouble(0.0, 4.0))});
    }
    if (rng.Bernoulli(0.7)) {
      lines.push_back(
          {"churn.death_prob", FormatDouble(rng.UniformDouble(0.0, 0.05))});
      lines.push_back(
          {"churn.rebirth_prob", FormatDouble(rng.UniformDouble(0.0, 0.5))});
    }
  } else if (!custom && rng.Bernoulli(0.25)) {
    lines.push_back({"failure.kind", "churn"});
    lines.push_back(
        {"failure.death_prob", FormatDouble(rng.UniformDouble(0.0, 0.05))});
  }

  if (rng.Bernoulli(0.3)) {
    if (used_churn && rng.Bernoulli(0.5)) {
      lines.push_back({"sweep", "churn.arrival_rate: 0, 1, 3"});
    } else {
      lines.push_back(
          {"sweep", "rounds: " + std::to_string(rng.UniformRange(2, 10)) +
                        ", " + std::to_string(rng.UniformRange(11, 40))});
    }
  }
  // The default record (rms) is accepted by every registered protocol,
  // including the custom runners; sometimes add the tail-mean scalar.
  if (!custom && rng.Bernoulli(0.3)) {
    lines.push_back({"record", "rms, rms_tail_mean"});
    lines.push_back(
        {"record.from", std::to_string(rng.UniformRange(0, rounds))});
  }
  return lines;
}

// ------------------------------------------------------------- mutation ---

const char* const kJunkValues[] = {"", "banana", "-3", "1e99", "0x",
                                   "true false", "nan", "2,", "  "};

/// Applies one random near-valid mutation to `lines`. Mutants must stay
/// CHEAP when they survive validation: mutations corrupt or add keys, they
/// never synthesize large numeric values.
void Mutate(std::vector<SpecLine>* lines, Rng& rng) {
  const auto pick_line = [&rng, lines]() -> SpecLine* {
    if (lines->empty()) return nullptr;
    return &(*lines)[rng.UniformInt(lines->size())];
  };
  switch (rng.UniformInt(12)) {
    case 0: {  // typo a key: drop one character
      SpecLine* line = pick_line();
      if (line != nullptr && !line->key.empty()) {
        line->key.erase(rng.UniformInt(line->key.size()), 1);
      }
      break;
    }
    case 1: {  // junk value
      SpecLine* line = pick_line();
      if (line != nullptr) {
        line->value = kJunkValues[rng.UniformInt(std::size(kJunkValues))];
      }
      break;
    }
    case 2: {  // unknown namespaced knob
      static const char* const kPrefixes[] = {
          "protocol.", "env.",      "failure.", "record.",
          "seeds.",    "workload.", "net.",     "churn."};
      lines->push_back(
          {std::string(kPrefixes[rng.UniformInt(std::size(kPrefixes))]) +
               "bogus_knob",
           "1"});
      break;
    }
    case 3:  // unknown top-level key
      lines->push_back({"bogus", "1"});
      break;
    case 4: {  // drop a line (may remove a required key)
      if (!lines->empty()) {
        lines->erase(lines->begin() +
                     static_cast<long>(rng.UniformInt(lines->size())));
      }
      break;
    }
    case 5: {  // duplicate a line
      SpecLine* line = pick_line();
      if (line != nullptr) lines->push_back(*line);
      break;
    }
    case 6:  // churn keys on whatever protocol the spec has
      lines->push_back({"churn.arrival_rate", "1.0"});
      break;
    case 7:  // the forbidden churn x failure combination
      lines->push_back({"churn.death_prob", "0.1"});
      lines->push_back({"failure.kind", "churn"});
      lines->push_back({"failure.death_prob", "0.1"});
      break;
    case 8:  // driver swap without the keys the driver needs
      lines->push_back({"driver", rng.Bernoulli(0.5) ? "async" : "trace"});
      break;
    case 9:  // malformed sweep axes
      lines->push_back(
          {"sweep", rng.Bernoulli(0.5) ? "protocol.lambda: banana, 2"
                                       : "unknown.key: 1, 2"});
      break;
    case 10:  // raw garbage line
      lines->push_back({"", "this is not a key value line"});
      break;
    case 11:  // unknown / duplicate record selector
      lines->push_back(
          {"record", rng.Bernoulli(0.5) ? "frobnicate" : "rms, rms"});
      break;
  }
}

// --------------------------------------------------------------- oracle ---

struct FuzzStats {
  int generated = 0;
  int parse_rejected = 0;
  int dryrun_rejected = 0;
  int executed = 0;
  int budget_skipped = 0;
  int violations = 0;
};

/// A rejection is actionable when it carries a real diagnostic, not a bare
/// status code. All validator messages name the offending key, value or
/// registry entry, so length is a robust floor.
bool ActionableMessage(const Status& status) {
  return status.ToString().size() >= 15;
}

/// Hard ceilings on what an accepted spec may cost. The generator stays
/// far below these; a mutant can only reach them by surviving validation,
/// so a skip here is loud (counted and reported), never silent.
bool WithinExecutionBudget(const ScenarioSpec& spec) {
  const size_t sweeps =
      (spec.sweep_values.empty() ? 1 : spec.sweep_values.size()) *
      (spec.sweep2_values.empty() ? 1 : spec.sweep2_values.size());
  return spec.hosts <= 4096 && spec.rounds <= 500 && spec.trials <= 8 &&
         sweeps <= 16;
}

void DumpRepro(const std::string& out_dir, uint64_t seed, int index,
               const std::string& text, const std::string& error) {
  const std::string path = out_dir + "/fuzz_repro_" + std::to_string(seed) +
                           "_" + std::to_string(index) + ".scenario";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "dynagg_fuzz: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "# dynagg_fuzz repro (seed %" PRIu64 ", spec %d)\n"
               "# violation: %s\n",
               seed, index, error.c_str());
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "dynagg_fuzz: repro written to %s\n", path.c_str());
}

/// Generates and checks `count` specs from one seed. Returns stats;
/// contract violations have already been dumped.
FuzzStats FuzzBatch(uint64_t seed, int count, const std::string& out_dir,
                    bool verbose) {
  FuzzStats stats;
  Rng rng(seed ^ 0x5fca5fca5fca5fcaull);
  std::vector<std::string> protocols;
  std::vector<ProtocolDef> defs;
  for (const std::string& name : scenario::ProtocolRegistry().Names()) {
    Result<ProtocolDef> def = scenario::ProtocolRegistry().Find(name);
    if (!def.ok()) continue;
    protocols.push_back(name);
    defs.push_back(*def);
  }

  for (int i = 0; i < count; ++i) {
    ++stats.generated;
    const size_t which = rng.UniformInt(protocols.size());
    std::vector<SpecLine> lines =
        GenerateValidSpec(protocols[which], defs[which], i, rng);
    // Half the batch is mutated away from validity, up to two edits.
    if (rng.Bernoulli(0.5)) {
      Mutate(&lines, rng);
      if (rng.Bernoulli(0.3)) Mutate(&lines, rng);
    }
    const std::string text = RenderLines(lines);

    const Result<std::vector<ScenarioSpec>> specs =
        scenario::ParseScenarioFile(text, "fuzz");
    if (!specs.ok()) {
      ++stats.parse_rejected;
      if (!ActionableMessage(specs.status())) {
        ++stats.violations;
        DumpRepro(out_dir, seed, i, text,
                  "unactionable parse error: " + specs.status().ToString());
      } else if (verbose) {
        std::fprintf(stderr, "[%d] parse: %s\n", i,
                     specs.status().ToString().c_str());
      }
      continue;
    }
    for (const ScenarioSpec& spec : *specs) {
      const Status valid = scenario::ValidateExperiment(spec);
      if (!valid.ok()) {
        ++stats.dryrun_rejected;
        if (!ActionableMessage(valid)) {
          ++stats.violations;
          DumpRepro(out_dir, seed, i, text,
                    "unactionable dry-run error: " + valid.ToString());
        } else if (verbose) {
          std::fprintf(stderr, "[%d] dry-run: %s\n", i,
                       valid.ToString().c_str());
        }
        continue;
      }
      if (!WithinExecutionBudget(spec)) {
        ++stats.budget_skipped;
        std::fprintf(stderr,
                     "dynagg_fuzz: spec %d accepted but over the execution "
                     "budget; skipped (not a contract check)\n",
                     i);
        continue;
      }
      const Result<std::vector<scenario::ResultTable>> tables =
          scenario::RunExperiment(spec, /*threads=*/2);
      if (!tables.ok()) {
        ++stats.violations;
        DumpRepro(out_dir, seed, i, text,
                  "dry-run accepted but execution failed: " +
                      tables.status().ToString());
      } else {
        ++stats.executed;
        if (verbose) std::fprintf(stderr, "[%d] executed clean\n", i);
      }
    }
  }
  return stats;
}

int Usage() {
  std::fprintf(stderr,
               "usage: dynagg_fuzz [--seed=S] [--count=N] [--out-dir=DIR] "
               "[--verbose]\n"
               "       dynagg_fuzz --seed-corpus [--out-dir=DIR]\n");
  return 2;
}

int Run(int argc, char** argv) {
  uint64_t seed = 1;
  bool seed_set = false;
  int count = 100;
  bool seed_corpus = false;
  bool verbose = false;
  std::string out_dir = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      const Result<int64_t> v = scenario::ParseInt64(arg.substr(7));
      if (!v.ok()) {
        std::fprintf(stderr, "dynagg_fuzz: bad --seed value\n");
        return 2;
      }
      seed = static_cast<uint64_t>(*v);
      seed_set = true;
    } else if (arg.rfind("--count=", 0) == 0) {
      const Result<int64_t> v = scenario::ParseInt64(arg.substr(8));
      if (!v.ok() || *v < 1) {
        std::fprintf(stderr, "dynagg_fuzz: bad --count value\n");
        return 2;
      }
      count = static_cast<int>(*v);
    } else if (arg == "--seed-corpus") {
      seed_corpus = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      out_dir = arg.substr(10);
      if (out_dir.empty()) {
        std::fprintf(stderr, "dynagg_fuzz: --out-dir needs a path\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "dynagg_fuzz: unknown argument %s\n", arg.c_str());
      return Usage();
    }
  }

  FuzzStats total;
  const auto accumulate = [&total](const FuzzStats& s) {
    total.generated += s.generated;
    total.parse_rejected += s.parse_rejected;
    total.dryrun_rejected += s.dryrun_rejected;
    total.executed += s.executed;
    total.budget_skipped += s.budget_skipped;
    total.violations += s.violations;
  };
  if (seed_corpus) {
    // The fixed CI corpus: ten pinned seeds x 50 specs = 500 specs that
    // replay identically forever, independent of --seed.
    for (uint64_t s = 1; s <= 10; ++s) {
      accumulate(FuzzBatch(s, 50, out_dir, verbose));
    }
    if (seed_set) {
      // A rolling batch on top when a seed was passed (CI passes the run
      // id so every pipeline also explores fresh grammar corners).
      accumulate(FuzzBatch(seed, 50, out_dir, verbose));
    }
  } else {
    accumulate(FuzzBatch(seed, count, out_dir, verbose));
  }

  std::printf(
      "dynagg_fuzz: %d specs: %d parse-rejected, %d dry-run-rejected, "
      "%d executed clean, %d over budget, %d contract violations\n",
      total.generated, total.parse_rejected, total.dryrun_rejected,
      total.executed, total.budget_skipped, total.violations);
  return total.violations == 0 ? 0 : 1;
}

}  // namespace
}  // namespace dynagg

int main(int argc, char** argv) { return dynagg::Run(argc, argv); }
