// trace_tool: generate, convert and inspect dynagg contact traces.
//
//   trace_tool gen --dataset=1 [--hours=90] [--seed=N] > trace.txt
//       Generate a synthetic Haggle-style trace (presets 1/2/3).
//   trace_tool convert < crawdad_contacts.dat > trace.txt
//       Convert a CRAWDAD-style contact table (a b start end per line)
//       into the dynagg trace format.
//   trace_tool stats < trace.txt
//       Print device count, duration, contact statistics and the hourly
//       average group size (the right-hand axis of Fig 11).

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <utility>

#include "common/stats.h"
#include "env/contact_trace.h"
#include "env/crawdad.h"
#include "env/haggle_gen.h"
#include "env/trace_env.h"

namespace dynagg {
namespace {

std::string ReadAllStdin() {
  std::string text;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), stdin)) > 0) {
    text.append(buf, n);
  }
  return text;
}

int Generate(int dataset, double hours, uint64_t seed) {
  HaggleGenParams params;
  switch (dataset) {
    case 1:
      params = HaggleDataset1();
      break;
    case 2:
      params = HaggleDataset2();
      break;
    case 3:
      params = HaggleDataset3();
      break;
    default:
      std::fprintf(stderr, "unknown dataset %d (use 1, 2 or 3)\n", dataset);
      return 2;
  }
  if (hours > 0) params.duration_hours = hours;
  if (seed != 0) params.seed = seed;
  const ContactTrace trace = GenerateHaggleTrace(params);
  const std::string text = trace.ToText();
  std::fwrite(text.data(), 1, text.size(), stdout);
  return 0;
}

int Convert() {
  const auto trace = ParseCrawdadContacts(ReadAllStdin());
  if (!trace.ok()) {
    std::fprintf(stderr, "convert failed: %s\n",
                 trace.status().ToString().c_str());
    return 1;
  }
  const std::string text = trace->ToText();
  std::fwrite(text.data(), 1, text.size(), stdout);
  return 0;
}

int Stats() {
  const auto parsed = ContactTrace::Parse(ReadAllStdin());
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  const ContactTrace& trace = *parsed;
  std::printf("devices: %d\n", trace.num_devices());
  std::printf("contacts: %lld\n",
              static_cast<long long>(trace.num_contacts()));
  std::printf("duration_hours: %.2f\n", ToHours(trace.end_time()));

  // Contact-length distribution: match up/down events per edge.
  RunningStat lengths;
  std::map<std::pair<HostId, HostId>, SimTime> open;
  for (const ContactEvent& ev : trace.Events()) {
    const auto edge = std::make_pair(ev.a, ev.b);
    if (ev.up) {
      open.emplace(edge, ev.time);
    } else {
      const auto it = open.find(edge);
      if (it != open.end()) {
        lengths.Add(ToMinutes(ev.time - it->second));
        open.erase(it);
      }
    }
  }
  std::printf("contact_minutes: mean=%.1f min=%.1f max=%.1f\n",
              lengths.mean(), lengths.min(), lengths.max());

  // Hourly average group size.
  TraceEnvironment env(trace);
  RunningStat group;
  std::printf("hour,avg_group_size\n");
  for (double h = 1.0; h <= ToHours(trace.end_time()); h += 1.0) {
    env.AdvanceTo(FromHours(h));
    const double g = env.AverageGroupSize();
    group.Add(g);
    std::printf("%.0f,%.3f\n", h, g);
  }
  std::printf("# avg_group_size over trace: mean=%.2f max=%.2f\n",
              group.mean(), group.max());
  return 0;
}

double FlagValue(int argc, char** argv, const char* name, double def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::stod(argv[i] + prefix.size());
    }
  }
  return def;
}

}  // namespace
}  // namespace dynagg

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: trace_tool gen|convert|stats [--flags]\n"
                 "  gen     --dataset=1|2|3 [--hours=H] [--seed=N]\n"
                 "  convert reads a CRAWDAD contact table from stdin\n"
                 "  stats   reads a dynagg trace from stdin\n");
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "gen") {
    return dynagg::Generate(
        static_cast<int>(dynagg::FlagValue(argc, argv, "dataset", 1)),
        dynagg::FlagValue(argc, argv, "hours", 0),
        static_cast<uint64_t>(dynagg::FlagValue(argc, argv, "seed", 0)));
  }
  if (cmd == "convert") return dynagg::Convert();
  if (cmd == "stats") return dynagg::Stats();
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  return 2;
}
