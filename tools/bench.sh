#!/usr/bin/env bash
# Round-kernel perf snapshot: benchmarks the Environment API v2 hot path
# (pre-refactor per-host SamplePeer round vs the plan -> apply kernel, via
# bench/micro_protocol_ops) and times the 100k-host scale_100k scenario
# end-to-end, then writes BENCH_roundkernel.json so the perf trajectory is
# recorded in-repo.
#
# Usage:
#   tools/bench.sh [build-dir]           full run, rewrites BENCH_roundkernel.json
#   tools/bench.sh --smoke [build-dir]   quick CI sanity: benchmarks run and
#                                        the scale spec validates; no JSON update
set -euo pipefail

cd "$(dirname "$0")/.."

SMOKE=0
if [[ "${1:-}" == "--smoke" ]]; then
  SMOKE=1
  shift
fi
BUILD_DIR="${1:-build}"
MICRO="$BUILD_DIR/micro_protocol_ops"
RUNNER="$BUILD_DIR/dynagg_run"
FILTER='PushRoundLegacy|PushRoundKernel|PushPullRoundLegacy|PushPullRoundKernel'

if [[ ! -x "$RUNNER" ]]; then
  echo "bench.sh: $RUNNER not built (run tools/check.sh or cmake first)" >&2
  exit 1
fi

if [[ "$SMOKE" == 1 ]]; then
  # CI sanity: the kernel benchmarks must run (when Google Benchmark is
  # available) and the 100k scenario must validate; keep it to seconds.
  if [[ -x "$MICRO" ]]; then
    "$MICRO" --benchmark_filter="PushRoundKernel/10000" \
      --benchmark_min_time=0.02 > /dev/null
    echo "bench.sh --smoke: round-kernel microbenchmark ran"
  else
    echo "bench.sh --smoke: micro_protocol_ops not built (Google Benchmark absent); skipping"
  fi
  "$RUNNER" --dry-run bench/scenarios/scale_100k.scenario
  exit 0
fi

if [[ ! -x "$MICRO" ]]; then
  echo "bench.sh: $MICRO not built (system Google Benchmark required for the full run)" >&2
  exit 1
fi

MICRO_JSON="$BUILD_DIR/bench_roundkernel_raw.json"
"$MICRO" --benchmark_filter="$FILTER" --benchmark_min_time=1 \
  --benchmark_repetitions=3 --benchmark_report_aggregates_only=true \
  --benchmark_format=json > "$MICRO_JSON"

SCALE_OUT="$BUILD_DIR/scale_100k_out.csv"
SCALE_START=$(date +%s.%N)
"$RUNNER" --output="$SCALE_OUT" bench/scenarios/scale_100k.scenario
SCALE_SECONDS=$(python3 -c "import time; print(f'{time.time() - $SCALE_START:.3f}')")

python3 - "$MICRO_JSON" "$SCALE_SECONDS" <<'PY'
import json, sys, datetime

raw = json.load(open(sys.argv[1]))
scale_seconds = float(sys.argv[2])

# median-of-repetitions real time per benchmark, in nanoseconds
medians = {}
for b in raw.get("benchmarks", []):
    if b.get("aggregate_name") == "median":
        name = b["run_name"] if "run_name" in b else b["name"]
        medians[name] = b["real_time"]

def ns(name):
    return medians.get(name)

snapshot = {
    "note": ("Round-kernel perf snapshot (tools/bench.sh). 'legacy' is the "
             "pre-refactor per-host virtual SamplePeer round, replicated in "
             "bench/micro_protocol_ops.cc; 'kernel' is the Environment API "
             "v2 plan -> apply round. Times are median-of-3 real ns per "
             "round on the CI host; speedups are legacy/kernel."),
    "generated": datetime.date.today().isoformat(),
    "host": raw.get("context", {}).get("host_name", "unknown"),
    "cpus": raw.get("context", {}).get("num_cpus"),
    "round_ns": {k: v for k, v in sorted(medians.items())},
    "speedup": {},
    "scale_100k_scenario_seconds": scale_seconds,
}

pairs = {
    "push_100k": ("BM_PushRoundLegacy/100000", "BM_PushRoundKernel/100000/1"),
    "push_10k": ("BM_PushRoundLegacy/10000", "BM_PushRoundKernel/10000/1"),
    "pushpull_100k": ("BM_PushPullRoundLegacy/100000",
                      "BM_PushPullRoundKernel/100000"),
}
for key, (legacy, kernel) in pairs.items():
    if ns(legacy) and ns(kernel):
        snapshot["speedup"][key] = round(ns(legacy) / ns(kernel), 3)

with open("BENCH_roundkernel.json", "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=False)
    f.write("\n")

print(json.dumps(snapshot["speedup"], indent=2))
target = snapshot["speedup"].get("push_100k")
if target is None:
    sys.exit("bench.sh: missing push_100k benchmarks in output")
print(f"bench.sh: wrote BENCH_roundkernel.json "
      f"(100k push-sum round speedup {target}x, "
      f"scale_100k scenario {scale_seconds}s)")
PY
