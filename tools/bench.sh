#!/usr/bin/env bash
# Round-kernel perf snapshot: benchmarks the Environment API v2 hot path
# (pre-refactor per-host SamplePeer round vs the plan -> apply kernel, via
# bench/micro_protocol_ops) across the 10k/100k/1M size trajectory, times
# the scale_100k and scale_1m scenarios end-to-end, and records the
# per-phase breakdown (including worker-pool dispatch/wait time) from the
# telemetry summary. Writes BENCH_roundkernel.json, carrying the previous
# snapshot forward in a `history` array so the perf trajectory is recorded
# in-repo.
#
# Usage:
#   tools/bench.sh [build-dir]            full run, rewrites BENCH_roundkernel.json
#   tools/bench.sh --smoke [build-dir]    quick CI sanity: every round_ns key
#                                         in the checked-in snapshot is
#                                         re-measured (best-of-N repetitions)
#                                         and gated two ways — per key at a
#                                         2x blowup, and at >35% on the
#                                         geometric-mean slowdown across all
#                                         keys (the CI host is a noisy 1-CPU
#                                         VM whose memory bandwidth drifts;
#                                         single memory-bound keys swing too
#                                         much for a tight per-key gate).
#                                         Snapshot keys the local build
#                                         cannot produce are warned about
#                                         and skipped — never silently
#                                         dropped. The scale scenario specs
#                                         (100k/1M/10M) are --dry-run
#                                         validated.
#   tools/bench.sh --scale10m [build-dir] times the ten-million-host rung
#                                         end-to-end (~600 MB RAM) and
#                                         records it into the snapshot as
#                                         scale_10m_scenario_seconds.
set -euo pipefail

cd "$(dirname "$0")/.."

MODE=full
if [[ "${1:-}" == "--smoke" ]]; then
  MODE=smoke
  shift
elif [[ "${1:-}" == "--scale10m" ]]; then
  MODE=scale10m
  shift
fi
BUILD_DIR="${1:-build}"
MICRO="$BUILD_DIR/micro_protocol_ops"
RUNNER="$BUILD_DIR/dynagg_run"
FILTER='PushRoundLegacy|PushRoundKernel|PushPullRoundLegacy|PushPullRoundKernel|ChurnedPushRound|StreamCountMinRound|AsyncDriverStep'

if [[ ! -x "$RUNNER" ]]; then
  echo "bench.sh: $RUNNER not built (run tools/check.sh or cmake first)" >&2
  exit 1
fi

# One timed scenario run; extra flags pass through to the runner.
time_scenario_run() {
  local scenario="$1"
  local out="$2"
  shift 2
  local start
  start=$(date +%s.%N)
  "$RUNNER" --output="$out" "$@" "$scenario"
  python3 -c "import time; print(f'{time.time() - $start:.3f}')"
}

if [[ "$MODE" == scale10m ]]; then
  # On-demand top rung: one end-to-end run (the trial dwarfs scheduler
  # noise at this size — ~600 MB of state, seconds per sweep point).
  SECONDS_10M=$(time_scenario_run bench/scenarios/scale_10m.scenario \
    "$BUILD_DIR/scale_10m_out.csv")
  echo "bench.sh --scale10m: scale_10m end-to-end ${SECONDS_10M}s"
  python3 - "$SECONDS_10M" <<'PY'
import json, sys

try:
    with open("BENCH_roundkernel.json") as f:
        snapshot = json.load(f)
except FileNotFoundError:
    print("bench.sh --scale10m: no BENCH_roundkernel.json; timing not "
          "recorded (run tools/bench.sh first)")
    sys.exit(0)
snapshot["scale_10m_scenario_seconds"] = float(sys.argv[1])
with open("BENCH_roundkernel.json", "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=False)
    f.write("\n")
print("bench.sh --scale10m: recorded scale_10m_scenario_seconds in "
      "BENCH_roundkernel.json")
PY
  exit 0
fi

if [[ "$MODE" == smoke ]]; then
  # CI sanity + perf gate: every round_ns key of the checked-in snapshot is
  # re-measured and individually gated, and the scale specs must validate.
  GATE_PCT="${DYNAGG_BENCH_GATE_PCT:-35}"
  if [[ -x "$MICRO" ]]; then
    SMOKE_JSON="$BUILD_DIR/bench_smoke_raw.json"
    AVAIL_LIST="$BUILD_DIR/bench_smoke_avail.txt"
    "$MICRO" --benchmark_filter="$FILTER" --benchmark_list_tests > "$AVAIL_LIST"
    # Best-of-N rather than median: the CI VM's throughput swings by tens
    # of percent under neighbor load, which slows *some* repetitions; a
    # genuine code regression slows the fastest one too, so the minimum is
    # the noise-robust gate statistic.
    # Random interleaving shuffles repetitions across benchmarks so a
    # multi-second slow window on the VM cannot inflate every repetition
    # of one key while leaving its neighbors untouched.
    # The microsecond-scale kernel family runs in its own invocation with
    # more repetitions, separated from the second-scale 1M-host
    # stream/async benchmarks: a 600 MB stream round interleaved between
    # kernel repetitions evicts every cache level and inflates whichever
    # kernel key runs next past the gate on unchanged code. The snapshot
    # numbers come from the same two-invocation scheme (full mode), so
    # gate and baseline measure like against like. The kernel family also
    # keeps full mode's 0.25s min_time: the 1M-host keys run 40-65 ms per
    # iteration, and a shorter window times 1-2 iterations per repetition
    # — all unamortized cold page-touch on the 64 MB state arrays, which
    # alone reads as +50% vs the warm snapshot number. The second-scale
    # stream/async keys amortize their cold start within one iteration,
    # so they stay on the short window.
    SMOKE_HEAVY_JSON="$BUILD_DIR/bench_smoke_heavy_raw.json"
    "$MICRO" \
      --benchmark_filter='PushRoundLegacy|PushRoundKernel|PushPullRoundLegacy|PushPullRoundKernel|ChurnedPushRound' \
      --benchmark_min_time="${DYNAGG_BENCH_SMOKE_MIN_TIME:-0.25}" \
      --benchmark_repetitions=5 \
      --benchmark_enable_random_interleaving=true \
      --benchmark_format=json > "$SMOKE_JSON"
    "$MICRO" --benchmark_filter='StreamCountMinRound|AsyncDriverStep' \
      --benchmark_min_time="${DYNAGG_BENCH_SMOKE_HEAVY_MIN_TIME:-0.05}" \
      --benchmark_repetitions=3 \
      --benchmark_enable_random_interleaving=true \
      --benchmark_format=json > "$SMOKE_HEAVY_JSON"
    python3 - "$SMOKE_JSON" "$SMOKE_HEAVY_JSON" <<'PY'
import json, sys
a = json.load(open(sys.argv[1]))
a["benchmarks"] = (a.get("benchmarks", []) +
                   json.load(open(sys.argv[2])).get("benchmarks", []))
json.dump(a, open(sys.argv[1], "w"))
PY
    HARD_PCT="${DYNAGG_BENCH_GATE_HARD_PCT:-100}"
    echo "bench.sh --smoke: round-kernel microbenchmarks ran"
    python3 - "$SMOKE_JSON" "$GATE_PCT" "$AVAIL_LIST" "$HARD_PCT" <<'PY'
import json, math, sys

raw = json.load(open(sys.argv[1]))
gate_pct = float(sys.argv[2])
available = set(open(sys.argv[3]).read().split())
hard_pct = float(sys.argv[4])

# Best-of-repetitions per benchmark, real ns.
best = {}
for b in raw.get("benchmarks", []):
    if b.get("run_type") == "iteration":
        name = b.get("run_name", b["name"])
        t = b["real_time"]
        if name not in best or t < best[name]:
            best[name] = t

try:
    snapshot = json.load(open("BENCH_roundkernel.json"))
except FileNotFoundError:
    print("bench.sh --smoke: no BENCH_roundkernel.json; skipping perf gate "
          "(run tools/bench.sh to create the snapshot)")
    sys.exit(0)
round_ns = snapshot.get("round_ns", {})
if not round_ns:
    sys.exit("bench.sh --smoke: BENCH_roundkernel.json has no round_ns "
             "table (corrupt snapshot; regenerate with tools/bench.sh)")

# Every snapshot key is gated. A key the local build cannot produce (renamed
# benchmark, stale snapshot) is warned about and skipped — visible in the CI
# log, never a silent drop; a full tools/bench.sh run resyncs.
#
# Two-level gate. The shared VM's memory bandwidth drifts by tens of
# percent minute to minute, so a single memory-bound 1M-host key can read
# +85% against a snapshot minted in a faster window on unchanged code —
# and across 22 keys, a per-key 35% gate fails some key on almost every
# clean run. Per key, only a >= hard_pct (default 100%, i.e. 2x) blowup
# fails — that still catches a catastrophic single-key regression (a
# broken parallel scatter, an accidental O(n^2)). The tighter gate_pct
# threshold applies to the geometric mean of measured/snapshot across all
# gated keys: uncorrelated bandwidth swings cancel there, while a genuine
# broad regression moves every key and the mean with it. Per-key drifts
# past gate_pct still print as [slow] for the log reader.
failures = []
ratios = {}
for key in sorted(round_ns):
    baseline = round_ns[key]
    if key not in available:
        print(f"bench.sh --smoke: WARNING: snapshot key {key} is no longer "
              "produced by micro_protocol_ops — skipping its gate (stale "
              "entry; resync with tools/bench.sh)")
        continue
    measured = best.get(key)
    if measured is None:
        print(f"bench.sh --smoke: WARNING: benchmark {key} is registered "
              "but produced no measurement — skipping its gate")
        continue
    ratio = measured / baseline
    if ratio > 1 + hard_pct / 100:
        flag = " [FAIL]"
        failures.append(key)
    elif ratio > 1 + gate_pct / 100:
        flag = " [slow]"
    else:
        flag = ""
    print(f"bench.sh --smoke: {key} {measured:.0f} ns vs snapshot "
          f"{baseline:.0f} ns ({100 * (ratio - 1):+.1f}%){flag}")
    ratios[key] = ratio
for k in sorted(available - set(round_ns)):
    print(f"bench.sh --smoke: note: benchmark {k} is not in "
          "BENCH_roundkernel.json (resync with tools/bench.sh to track it)")

if failures:
    sys.exit(f"bench.sh --smoke: round-kernel regression gate failed for "
             f"{len(failures)}/{len(ratios)} keys ({', '.join(failures)}): "
             f"more than {hard_pct:.0f}% slower than the checked-in "
             "snapshot. If the slowdown is intentional, regenerate "
             "BENCH_roundkernel.json with tools/bench.sh")
if ratios:
    geomean = math.exp(sum(map(math.log, ratios.values())) / len(ratios))
    if geomean > 1 + gate_pct / 100:
        sys.exit(f"bench.sh --smoke: round-kernel regression gate failed: "
                 f"geometric-mean slowdown across {len(ratios)} keys is "
                 f"{100 * (geomean - 1):+.1f}% vs the checked-in snapshot "
                 f"(gate {gate_pct:.0f}%). If the slowdown is intentional, "
                 "regenerate BENCH_roundkernel.json with tools/bench.sh")
    print(f"bench.sh --smoke: perf gate passed for all {len(ratios)} "
          f"snapshot keys (geometric-mean ratio "
          f"{100 * (geomean - 1):+.1f}%, per-key ceiling {hard_pct:.0f}%)")
PY
  else
    echo "bench.sh --smoke: micro_protocol_ops not built (Google Benchmark absent); skipping perf gate"
  fi
  "$RUNNER" --dry-run bench/scenarios/scale_100k.scenario
  "$RUNNER" --dry-run bench/scenarios/scale_1m.scenario
  "$RUNNER" --dry-run bench/scenarios/scale_10m.scenario
  exit 0
fi

if [[ ! -x "$MICRO" ]]; then
  echo "bench.sh: $MICRO not built (system Google Benchmark required for the full run)" >&2
  exit 1
fi

# Best-of-N randomly-interleaved repetitions, matching the --smoke gate's
# statistic: the CI VM's throughput swings by tens of percent under
# neighbor load in multi-second windows. Many short repetitions give each
# benchmark several shots at a quiet window, interleaving decorrelates the
# slow windows from any one benchmark, and a genuine code change slows the
# fastest repetition too — so the minimum is the noise-robust number to
# check in. The microsecond-scale kernel family is measured in its own
# invocation, separated from the second-scale 1M-host stream/async
# benchmarks: interleaving a 600 MB stream round between kernel
# repetitions evicts every cache level and skews whichever kernel key
# runs next (measured at up to +15% on supposedly identical code paths).
MICRO_JSON="$BUILD_DIR/bench_roundkernel_raw.json"
MICRO_HEAVY_JSON="$BUILD_DIR/bench_roundkernel_heavy_raw.json"
"$MICRO" \
  --benchmark_filter='PushRoundLegacy|PushRoundKernel|PushPullRoundLegacy|PushPullRoundKernel|ChurnedPushRound' \
  --benchmark_min_time="${DYNAGG_BENCH_MIN_TIME:-0.25}" \
  --benchmark_repetitions="${DYNAGG_BENCH_REPS:-9}" \
  --benchmark_enable_random_interleaving=true \
  --benchmark_format=json > "$MICRO_JSON"
"$MICRO" --benchmark_filter='StreamCountMinRound|AsyncDriverStep' \
  --benchmark_min_time="${DYNAGG_BENCH_MIN_TIME:-0.25}" \
  --benchmark_repetitions=3 \
  --benchmark_enable_random_interleaving=true \
  --benchmark_format=json > "$MICRO_HEAVY_JSON"

# Host CPU budget as the runner sees it: hardware_concurrency alone lies on
# cgroup-limited CI runners, so the snapshot records both the hardware
# count and the affinity-visible count (what the worker pool clamps to).
HOSTINFO=$("$RUNNER" --hostinfo)
HW_CPUS=$(sed -n 's/^hardware_concurrency=//p' <<<"$HOSTINFO")
AFF_CPUS=$(sed -n 's/^affinity_cpus=//p' <<<"$HOSTINFO")

SCALE_OUT="$BUILD_DIR/scale_100k_out.csv"
SCALE_TEL_CSV="$BUILD_DIR/scale_100k_telemetry.csv"

# Best-of-2 end-to-end timings: the 100k scenario finishes in well under a
# second, so a single sample is mostly scheduler noise — and the telemetry
# overhead number below is a difference of two such samples.
S1=$(time_scenario_run bench/scenarios/scale_100k.scenario "$SCALE_OUT")
S2=$(time_scenario_run bench/scenarios/scale_100k.scenario "$SCALE_OUT")
SCALE_SECONDS=$(python3 -c "print(min($S1, $S2))")

# Same scenario with the telemetry summary collected: the end-to-end delta
# against the plain runs above is the checked-in telemetry overhead number,
# and the per-sweep-point phase table becomes the snapshot's breakdown.
T1=$(time_scenario_run bench/scenarios/scale_100k.scenario \
  "$BUILD_DIR/scale_100k_out_tel.csv" \
  --telemetry=summary --telemetry-out="$SCALE_TEL_CSV")
T2=$(time_scenario_run bench/scenarios/scale_100k.scenario \
  "$BUILD_DIR/scale_100k_out_tel.csv" \
  --telemetry=summary --telemetry-out="$SCALE_TEL_CSV")
TEL_SECONDS=$(python3 -c "print(min($T1, $T2))")
if ! cmp -s "$SCALE_OUT" "$BUILD_DIR/scale_100k_out_tel.csv"; then
  echo "bench.sh: scale_100k output differs with telemetry on (determinism bug)" >&2
  exit 1
fi

# Million-host rung, timed end-to-end (best-of-2; ~64 MB of swarm state,
# about a second per run on the CI host).
M1=$(time_scenario_run bench/scenarios/scale_1m.scenario \
  "$BUILD_DIR/scale_1m_out.csv")
M2=$(time_scenario_run bench/scenarios/scale_1m.scenario \
  "$BUILD_DIR/scale_1m_out.csv")
SCALE_1M_SECONDS=$(python3 -c "print(min($M1, $M2))")

python3 - "$MICRO_JSON" "$SCALE_SECONDS" "$TEL_SECONDS" "$SCALE_TEL_CSV" \
  "$SCALE_1M_SECONDS" "$HW_CPUS" "$AFF_CPUS" "$MICRO_HEAVY_JSON" <<'PY'
import json, sys, datetime

raw = json.load(open(sys.argv[1]))
raw["benchmarks"] = (raw.get("benchmarks", []) +
                     json.load(open(sys.argv[8])).get("benchmarks", []))
scale_seconds = float(sys.argv[2])
telemetry_seconds = float(sys.argv[3])
scale_1m_seconds = float(sys.argv[5])
hw_cpus = int(sys.argv[6])
affinity_cpus = int(sys.argv[7])

# Per-sweep-point phase breakdown from the telemetry summary CSV
# (comment lines start with '#'; one row per intra_round_threads value).
# The pool_* columns are the worker-pool dispatch/wait counters (summed ns
# across the cell), converted to per-trial ms alongside the phase spans.
phase_cols = ("trial_ms", "setup_ms", "plan_ms", "apply_ms", "scatter_ms",
              "record_ms", "span_cover_pct")
pool_cols = {"pool_dispatch_ns": "pool_dispatch_ms",
             "pool_wait_ns": "pool_wait_ms"}
phase_ms = {}
with open(sys.argv[4]) as f:
    rows = [ln.strip() for ln in f if ln.strip() and not ln.startswith("#")]
header = rows[0].split(",")
for line in rows[1:]:
    vals = dict(zip(header, line.split(",")))
    entry = {c: round(float(vals[c]), 3) for c in phase_cols if c in vals}
    trials = float(vals.get("trials", 1)) or 1.0
    for src, dst in pool_cols.items():
        if src in vals:
            entry[dst] = round(float(vals[src]) / trials / 1e6, 3)
    phase_ms[vals["intra_round_threads"]] = entry

# best-of-repetitions real time per benchmark, in nanoseconds
best = {}
for b in raw.get("benchmarks", []):
    if b.get("run_type") == "iteration":
        name = b["run_name"] if "run_name" in b else b["name"]
        t = b["real_time"]
        if name not in best or t < best[name]:
            best[name] = t

def ns(name):
    return best.get(name)

# Carry the previous snapshot forward as a trajectory: each full bench.sh
# run appends the headline numbers of the snapshot it replaces.
prev = {}
try:
    with open("BENCH_roundkernel.json") as f:
        prev = json.load(f)
except (FileNotFoundError, json.JSONDecodeError):
    pass
history = prev.get("history", [])
if prev:
    history.append({
        "generated": prev.get("generated"),
        "gate_round_ns": prev.get("round_ns", {}).get(
            "BM_PushRoundKernel/10000/1"),
        "push_100k_speedup": prev.get("speedup", {}).get("push_100k"),
        "scale_100k_scenario_seconds": prev.get(
            "scale_100k_scenario_seconds"),
    })
history = history[-20:]

snapshot = {
    "note": ("Round-kernel perf snapshot (tools/bench.sh). 'legacy' is the "
             "pre-refactor per-host virtual SamplePeer round, replicated in "
             "bench/micro_protocol_ops.cc; 'kernel' is the Environment API "
             "v2 plan -> apply round. Times are best-of-7 real ns per "
             "round on the CI host (the minimum over randomly "
             "interleaved repetitions — the noise-robust statistic on a "
             "loaded VM, same as the --smoke gate), across the "
             "10k/100k/1M size "
             "trajectory; speedups are legacy/kernel. cpus records both "
             "the hardware thread count and the affinity-visible count "
             "(what the worker pool clamps intra_round_threads to — on a "
             "cgroup-limited host they differ, and hardware_concurrency "
             "alone lies). scale_100k_phase_ms is the per-trial telemetry "
             "phase breakdown keyed by intra_round_threads, including "
             "worker-pool dispatch/wait time; telemetry_overhead_pct is "
             "the end-to-end scale_100k cost of telemetry=summary vs off; "
             "scale_1m_scenario_seconds times the million-host rung "
             "end-to-end (scale_10m_scenario_seconds via tools/bench.sh "
             "--scale10m, on demand); churn_100k is a 100k-host push-sum "
             "round with a churn-plan round applied first (~1%/round "
             "deaths + arrivals, on_join resets, partner-plan cache "
             "invalidation included); stream_* is the count-min sketch "
             "gossip round (keyed Zipf arrivals + merge, src/stream/); "
             "async_* is the async gossip step (push-flow tick + "
             "network-model decisions + batched in-flight deliveries, "
             "src/net/); history holds headline numbers of superseded "
             "snapshots, oldest first."),
    "generated": datetime.date.today().isoformat(),
    "host": raw.get("context", {}).get("host_name", "unknown"),
    "cpus": {"hardware_concurrency": hw_cpus,
             "affinity_visible": affinity_cpus},
    "round_ns": {k: v for k, v in sorted(best.items())},
    "speedup": {},
    "scale_100k_scenario_seconds": scale_seconds,
    "scale_1m_scenario_seconds": scale_1m_seconds,
    "scale_100k_phase_ms": phase_ms,
    "telemetry_overhead_pct": round(
        100.0 * (telemetry_seconds - scale_seconds) / scale_seconds, 2),
    "history": history,
}
if "scale_10m_scenario_seconds" in prev:
    snapshot["scale_10m_scenario_seconds"] = prev[
        "scale_10m_scenario_seconds"]

pairs = {
    "push_10k": ("BM_PushRoundLegacy/10000", "BM_PushRoundKernel/10000/1"),
    "push_100k": ("BM_PushRoundLegacy/100000", "BM_PushRoundKernel/100000/1"),
    "push_1m": ("BM_PushRoundLegacy/1000000",
                "BM_PushRoundKernel/1000000/1"),
    "pushpull_100k": ("BM_PushPullRoundLegacy/100000",
                      "BM_PushPullRoundKernel/100000"),
    "pushpull_1m": ("BM_PushPullRoundLegacy/1000000",
                    "BM_PushPullRoundKernel/1000000"),
}
for key, (legacy, kernel) in pairs.items():
    if ns(legacy) and ns(kernel):
        snapshot["speedup"][key] = round(ns(legacy) / ns(kernel), 3)

# Headline numbers for the streaming-sketch and async-network subsystems
# at the 100k and 1M rungs, best-of-reps real ns per round/step.
for key, name in (("churn_100k", "BM_ChurnedPushRound/100000"),
                  ("stream_100k", "BM_StreamCountMinRound/100000"),
                  ("stream_1m", "BM_StreamCountMinRound/1000000"),
                  ("async_100k", "BM_AsyncDriverStep/100000"),
                  ("async_1m", "BM_AsyncDriverStep/1000000")):
    if ns(name):
        snapshot[key] = round(ns(name), 1)

with open("BENCH_roundkernel.json", "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=False)
    f.write("\n")

print(json.dumps(snapshot["speedup"], indent=2))
target = snapshot["speedup"].get("push_100k")
if target is None:
    sys.exit("bench.sh: missing push_100k benchmarks in output")

# The headline this snapshot exists to hold: with the persistent worker
# pool and CPU clamping, asking for more threads than the host has must
# never be slower than one thread (beyond noise).
base = snapshot["round_ns"].get("BM_PushRoundKernel/100000/1")
for t in (2, 4):
    multi = snapshot["round_ns"].get(f"BM_PushRoundKernel/100000/{t}")
    if base and multi and multi > base * 1.05:
        print(f"bench.sh: WARNING: BM_PushRoundKernel/100000/{t} "
              f"({multi:.0f} ns) is slower than /1 ({base:.0f} ns) — "
              "thread scaling regressed; investigate before committing "
              "this snapshot")

print(f"bench.sh: wrote BENCH_roundkernel.json "
      f"(100k push-sum round speedup {target}x, "
      f"scale_100k scenario {scale_seconds}s, "
      f"scale_1m scenario {scale_1m_seconds}s, "
      f"telemetry overhead {snapshot['telemetry_overhead_pct']:+.2f}%)")
PY
