#!/usr/bin/env bash
# Round-kernel perf snapshot: benchmarks the Environment API v2 hot path
# (pre-refactor per-host SamplePeer round vs the plan -> apply kernel, via
# bench/micro_protocol_ops), times the 100k-host scale_100k scenario
# end-to-end with and without telemetry, and records the per-phase
# breakdown from the telemetry summary. Writes BENCH_roundkernel.json,
# carrying the previous snapshot forward in a `history` array so the perf
# trajectory is recorded in-repo.
#
# Usage:
#   tools/bench.sh [build-dir]           full run, rewrites BENCH_roundkernel.json
#   tools/bench.sh --smoke [build-dir]   quick CI sanity: benchmarks run, the
#                                        scale spec validates, and the round
#                                        kernel is compared against the
#                                        checked-in BENCH_roundkernel.json —
#                                        a >35% slowdown fails (perf gate;
#                                        the threshold is generous because
#                                        the CI host is a noisy 1-CPU VM).
#                                        Snapshot drift (keys missing from
#                                        the snapshot or no longer produced
#                                        by the benchmark) is reported, not
#                                        a failure.
set -euo pipefail

cd "$(dirname "$0")/.."

SMOKE=0
if [[ "${1:-}" == "--smoke" ]]; then
  SMOKE=1
  shift
fi
BUILD_DIR="${1:-build}"
MICRO="$BUILD_DIR/micro_protocol_ops"
RUNNER="$BUILD_DIR/dynagg_run"
FILTER='PushRoundLegacy|PushRoundKernel|PushPullRoundLegacy|PushPullRoundKernel|StreamCountMinRound|AsyncDriverStep'

if [[ ! -x "$RUNNER" ]]; then
  echo "bench.sh: $RUNNER not built (run tools/check.sh or cmake first)" >&2
  exit 1
fi

if [[ "$SMOKE" == 1 ]]; then
  # CI sanity + perf gate: the kernel benchmark must run (when Google
  # Benchmark is available) and stay within GATE_PCT percent of the
  # checked-in snapshot, and the 100k scenario must validate; keep it to
  # seconds.
  GATE_PCT="${DYNAGG_BENCH_GATE_PCT:-35}"
  GATE_KEY="BM_PushRoundKernel/10000/1"
  if [[ -x "$MICRO" ]]; then
    SMOKE_JSON="$BUILD_DIR/bench_smoke_raw.json"
    # Best-of-5 rather than median: the CI VM's throughput swings by tens
    # of percent under neighbor load, which slows *some* repetitions; a
    # genuine code regression slows the fastest one too, so the minimum is
    # the noise-robust gate statistic.
    "$MICRO" --benchmark_filter='PushRoundKernel/10000/1$' \
      --benchmark_min_time=0.05 --benchmark_repetitions=5 \
      --benchmark_format=json > "$SMOKE_JSON"
    echo "bench.sh --smoke: round-kernel microbenchmark ran"
    AVAIL_LIST="$BUILD_DIR/bench_smoke_avail.txt"
    "$MICRO" --benchmark_filter="$FILTER" --benchmark_list_tests > "$AVAIL_LIST"
    python3 - "$SMOKE_JSON" "$GATE_KEY" "$GATE_PCT" "$AVAIL_LIST" <<'PY'
import json, sys

raw = json.load(open(sys.argv[1]))
key, gate_pct = sys.argv[2], float(sys.argv[3])
available = set(open(sys.argv[4]).read().split())

reps = [b["real_time"] for b in raw.get("benchmarks", [])
        if b.get("run_type") == "iteration" and b.get("run_name") == key]
if not reps:
    sys.exit(f"bench.sh --smoke: benchmark {key} missing from output")
measured = min(reps)

try:
    snapshot = json.load(open("BENCH_roundkernel.json"))
except FileNotFoundError:
    print("bench.sh --smoke: no BENCH_roundkernel.json; skipping perf gate "
          "(run tools/bench.sh to create the snapshot)")
    sys.exit(0)
round_ns = snapshot.get("round_ns", {})

# Snapshot drift is reported, not fatal: a renamed benchmark or a snapshot
# generated before a new benchmark landed should not break CI — the gate
# below only needs its one key, and a full tools/bench.sh run resyncs.
for k in sorted(set(round_ns) - available):
    print(f"bench.sh --smoke: note: snapshot key {k} is no longer produced "
          "by micro_protocol_ops (stale entry; resync with tools/bench.sh)")
for k in sorted(available - set(round_ns)):
    print(f"bench.sh --smoke: note: benchmark {k} is not in "
          "BENCH_roundkernel.json (resync with tools/bench.sh to track it)")

baseline = round_ns.get(key)
if baseline is None:
    print(f"bench.sh --smoke: {key} missing from BENCH_roundkernel.json; "
          "skipping perf gate (regenerate the snapshot with tools/bench.sh)")
    sys.exit(0)

ratio = measured / baseline
print(f"bench.sh --smoke: {key} {measured:.0f} ns vs snapshot "
      f"{baseline:.0f} ns ({100 * (ratio - 1):+.1f}%)")
if ratio > 1 + gate_pct / 100:
    sys.exit(f"bench.sh --smoke: round-kernel regression gate failed: "
             f"{100 * (ratio - 1):.1f}% slower than the checked-in snapshot "
             f"(gate: {gate_pct:.0f}%). If the slowdown is intentional, "
             "regenerate BENCH_roundkernel.json with tools/bench.sh")
PY
  else
    echo "bench.sh --smoke: micro_protocol_ops not built (Google Benchmark absent); skipping perf gate"
  fi
  "$RUNNER" --dry-run bench/scenarios/scale_100k.scenario
  exit 0
fi

if [[ ! -x "$MICRO" ]]; then
  echo "bench.sh: $MICRO not built (system Google Benchmark required for the full run)" >&2
  exit 1
fi

MICRO_JSON="$BUILD_DIR/bench_roundkernel_raw.json"
"$MICRO" --benchmark_filter="$FILTER" --benchmark_min_time=1 \
  --benchmark_repetitions=3 --benchmark_report_aggregates_only=true \
  --benchmark_format=json > "$MICRO_JSON"

SCALE_OUT="$BUILD_DIR/scale_100k_out.csv"
SCALE_TEL_CSV="$BUILD_DIR/scale_100k_telemetry.csv"

# One timed scale_100k run; extra flags pass through to the runner.
time_scale_run() {
  local out="$1"
  shift
  local start
  start=$(date +%s.%N)
  "$RUNNER" --output="$out" "$@" bench/scenarios/scale_100k.scenario
  python3 -c "import time; print(f'{time.time() - $start:.3f}')"
}

# Best-of-2 end-to-end timings: the scenario finishes in well under a
# second, so a single sample is mostly scheduler noise — and the telemetry
# overhead number below is a difference of two such samples.
S1=$(time_scale_run "$SCALE_OUT")
S2=$(time_scale_run "$SCALE_OUT")
SCALE_SECONDS=$(python3 -c "print(min($S1, $S2))")

# Same scenario with the telemetry summary collected: the end-to-end delta
# against the plain runs above is the checked-in telemetry overhead number,
# and the per-sweep-point phase table becomes the snapshot's breakdown.
T1=$(time_scale_run "$BUILD_DIR/scale_100k_out_tel.csv" \
  --telemetry=summary --telemetry-out="$SCALE_TEL_CSV")
T2=$(time_scale_run "$BUILD_DIR/scale_100k_out_tel.csv" \
  --telemetry=summary --telemetry-out="$SCALE_TEL_CSV")
TEL_SECONDS=$(python3 -c "print(min($T1, $T2))")
if ! cmp -s "$SCALE_OUT" "$BUILD_DIR/scale_100k_out_tel.csv"; then
  echo "bench.sh: scale_100k output differs with telemetry on (determinism bug)" >&2
  exit 1
fi

python3 - "$MICRO_JSON" "$SCALE_SECONDS" "$TEL_SECONDS" "$SCALE_TEL_CSV" <<'PY'
import json, sys, datetime

raw = json.load(open(sys.argv[1]))
scale_seconds = float(sys.argv[2])
telemetry_seconds = float(sys.argv[3])

# Per-sweep-point phase breakdown from the telemetry summary CSV
# (comment lines start with '#'; one row per intra_round_threads value).
phase_cols = ("trial_ms", "setup_ms", "plan_ms", "apply_ms", "scatter_ms",
              "record_ms", "span_cover_pct")
phase_ms = {}
with open(sys.argv[4]) as f:
    rows = [ln.strip() for ln in f if ln.strip() and not ln.startswith("#")]
header = rows[0].split(",")
for line in rows[1:]:
    vals = dict(zip(header, line.split(",")))
    phase_ms[vals["intra_round_threads"]] = {
        c: round(float(vals[c]), 3) for c in phase_cols if c in vals
    }

# median-of-repetitions real time per benchmark, in nanoseconds
medians = {}
for b in raw.get("benchmarks", []):
    if b.get("aggregate_name") == "median":
        name = b["run_name"] if "run_name" in b else b["name"]
        medians[name] = b["real_time"]

def ns(name):
    return medians.get(name)

# Carry the previous snapshot forward as a trajectory: each full bench.sh
# run appends the headline numbers of the snapshot it replaces.
prev = {}
try:
    with open("BENCH_roundkernel.json") as f:
        prev = json.load(f)
except (FileNotFoundError, json.JSONDecodeError):
    pass
history = prev.get("history", [])
if prev:
    history.append({
        "generated": prev.get("generated"),
        "gate_round_ns": prev.get("round_ns", {}).get(
            "BM_PushRoundKernel/10000/1"),
        "push_100k_speedup": prev.get("speedup", {}).get("push_100k"),
        "scale_100k_scenario_seconds": prev.get(
            "scale_100k_scenario_seconds"),
    })
history = history[-20:]

snapshot = {
    "note": ("Round-kernel perf snapshot (tools/bench.sh). 'legacy' is the "
             "pre-refactor per-host virtual SamplePeer round, replicated in "
             "bench/micro_protocol_ops.cc; 'kernel' is the Environment API "
             "v2 plan -> apply round. Times are median-of-3 real ns per "
             "round on the CI host; speedups are legacy/kernel. "
             "scale_100k_phase_ms is the per-trial telemetry phase "
             "breakdown keyed by intra_round_threads; "
             "telemetry_overhead_pct is the end-to-end scale_100k cost of "
             "telemetry=summary vs off; stream_100k is the 100k-host "
             "count-min sketch gossip round (keyed Zipf arrivals + merge, "
             "src/stream/); async_100k is the 100k-host async gossip step "
             "(push-flow tick + network-model decisions + deliveries, "
             "src/net/); history holds headline numbers of superseded "
             "snapshots, oldest first."),
    "generated": datetime.date.today().isoformat(),
    "host": raw.get("context", {}).get("host_name", "unknown"),
    "cpus": raw.get("context", {}).get("num_cpus"),
    "round_ns": {k: v for k, v in sorted(medians.items())},
    "speedup": {},
    "scale_100k_scenario_seconds": scale_seconds,
    "scale_100k_phase_ms": phase_ms,
    "telemetry_overhead_pct": round(
        100.0 * (telemetry_seconds - scale_seconds) / scale_seconds, 2),
    "history": history,
}

pairs = {
    "push_100k": ("BM_PushRoundLegacy/100000", "BM_PushRoundKernel/100000/1"),
    "push_10k": ("BM_PushRoundLegacy/10000", "BM_PushRoundKernel/10000/1"),
    "pushpull_100k": ("BM_PushPullRoundLegacy/100000",
                      "BM_PushPullRoundKernel/100000"),
}
for key, (legacy, kernel) in pairs.items():
    if ns(legacy) and ns(kernel):
        snapshot["speedup"][key] = round(ns(legacy) / ns(kernel), 3)

# Headline number for the streaming sketch subsystem: one 100k-host
# count-min round (arrivals + halve + scatter-merge), median real ns.
if ns("BM_StreamCountMinRound/100000"):
    snapshot["stream_100k"] = round(ns("BM_StreamCountMinRound/100000"), 1)

# Headline number for the async network subsystem: one 100k-host async
# gossip step (push-flow tick plan + per-message network-model decisions
# + deliveries), median real ns.
if ns("BM_AsyncDriverStep/100000"):
    snapshot["async_100k"] = round(ns("BM_AsyncDriverStep/100000"), 1)

with open("BENCH_roundkernel.json", "w") as f:
    json.dump(snapshot, f, indent=2, sort_keys=False)
    f.write("\n")

print(json.dumps(snapshot["speedup"], indent=2))
target = snapshot["speedup"].get("push_100k")
if target is None:
    sys.exit("bench.sh: missing push_100k benchmarks in output")
print(f"bench.sh: wrote BENCH_roundkernel.json "
      f"(100k push-sum round speedup {target}x, "
      f"scale_100k scenario {scale_seconds}s, "
      f"telemetry overhead {snapshot['telemetry_overhead_pct']:+.2f}%)")
PY
