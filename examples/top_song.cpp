// "Most popular song" (the paper's Section I scenario, extreme aggregate).
//
// Each media player tracks how many times its owner played their favourite
// song this week. Devices at a party want to know the current crowd's
// number-one song — the *maximum* play count and which song attains it —
// without any coordinator. The dynamic-extreme protocol (agg/extremes.h)
// applies the paper's age-and-cutoff recipe to extremes: when the device
// carrying the top song leaves the party, its candidate expires everywhere
// within the cutoff and the next-best *present* song takes over. A static
// gossip maximum (cutoff 0) would announce the departed song forever.
//
// Mobility and the gossip cadence run on the event-driven TraceRunner.

#include <cstdio>
#include <string>
#include <vector>

#include "agg/extremes.h"
#include "common/rng.h"
#include "env/haggle_gen.h"
#include "sim/trace_runner.h"

int main() {
  using namespace dynagg;

  // A party of 41 attendees over one evening: gatherings all night long.
  HaggleGenParams mobility = HaggleDataset3();
  mobility.duration_hours = 8.0;
  mobility.day_start_hour = 0;  // the party never sleeps
  mobility.day_end_hour = 24;
  mobility.meetings_per_hour_day = 20.0;
  const ContactTrace trace = GenerateHaggleTrace(mobility);
  const int n = trace.num_devices();

  // Each device i champions song i with a random weekly play count.
  const std::vector<std::string> songs = {
      "Narwhal Nights", "Gossip Protocol", "Push the Sum", "Sketchy Count",
      "Lambda Love",    "Epoch Reset",     "Mass Transit",  "Decay With Me"};
  Rng rng(99);
  std::vector<double> plays(n);
  std::vector<uint64_t> keys(n);
  for (int i = 0; i < n; ++i) {
    plays[i] = static_cast<double>(rng.UniformInt(200));
    keys[i] = i;
  }
  const HostId superfan = 17;
  plays[superfan] = 500.0;  // an obvious number one

  DynamicExtremeSwarm swarm(plays, keys, ExtremeParams{.cutoff = 20});
  TraceRunner runner(trace, FromSeconds(30));

  runner.OnRound([&](SimTime) {
    swarm.RunRound(runner.env(), runner.pop(), rng);
  });
  runner.EverySample(FromMinutes(30), [&](SimTime t) {
    const HostId observer = 0;
    const uint64_t key = swarm.BestKey(observer);
    std::printf("%4.1f h  device 0 hears: #1 is \"%s\" (%g plays)%s\n",
                ToHours(t), songs[key % songs.size()].c_str(),
                swarm.Estimate(observer),
                runner.pop().IsAlive(superfan) ? "" : "  [superfan gone]");
  });

  // The superfan leaves the party after three hours.
  runner.sim().ScheduleAt(FromHours(3.0), [&] {
    runner.pop().Kill(superfan);
    std::printf("-- the superfan (500 plays) left the party --\n");
  });

  runner.Run();
  std::printf(
      "\nAfter the superfan departs, their song expires from every\n"
      "device within the cutoff and the best *present* song takes over.\n");
  return 0;
}
