// Quickstart: maintain a running average over a 100-host gossip network.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The demo runs Push-Sum-Revert (the paper's dynamic averaging protocol)
// over a fully-connected gossip environment, then kills half the hosts and
// shows the estimate re-converging to the survivors' average — the
// behaviour that distinguishes dynamic from static aggregation.

#include <cstdio>
#include <vector>

#include "agg/push_sum_revert.h"
#include "common/rng.h"
#include "env/uniform_env.h"
#include "sim/metrics.h"
#include "sim/population.h"

int main() {
  using namespace dynagg;

  // 100 hosts; host i holds the value i (true average: 49.5).
  const int n = 100;
  std::vector<double> values(n);
  for (int i = 0; i < n; ++i) values[i] = i;

  // lambda trades adaptation speed against accuracy; push/pull halves
  // convergence time versus plain push gossip.
  PushSumRevertSwarm swarm(values,
                           {.lambda = 0.05, .mode = GossipMode::kPushPull});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(/*seed=*/1);

  std::printf("round  host0_estimate  true_average\n");
  for (int round = 1; round <= 80; ++round) {
    if (round == 21) {
      // Hosts 50..99 silently leave; the true average drops to 24.5.
      for (HostId id = 50; id < 100; ++id) pop.Kill(id);
      std::printf("-- hosts 50..99 departed silently --\n");
    }
    swarm.RunRound(env, pop, rng);
    if (round % 4 == 0 || round == 21) {
      std::printf("%5d  %14.2f  %12.2f\n", round, swarm.Estimate(0),
                  TrueAverage(values, pop));
    }
  }
  return 0;
}
