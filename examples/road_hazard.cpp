// Road-hazard dissemination (the paper's Section I GPS scenario).
//
// GPS units in cars monitor car-mounted sensors (traction-control events).
// Each unit contributes 100 if its sensors flagged a slippery patch and 0
// otherwise, so the network-wide average is the *percentage of cars
// reporting the hazard*. Cars on a stretch of highway can only talk to
// nearby cars (spatial grid environment with 1/d^2 multi-hop forwarding,
// Section IV.A); cars keep entering and leaving the stretch (churn).
//
// Because Push-Sum-Revert anchors every car to its own reading, the hazard
// signal forms a *distance gradient*: cars near the icy patch see a strong
// signal and can re-route, distant cars see little. When road crews clear
// the ice the signal decays everywhere — the protocol continuously forgets
// state that is no longer sourced.

#include <cstdio>
#include <vector>

#include "agg/push_sum_revert.h"
#include "common/rng.h"
#include "env/spatial_env.h"
#include "sim/metrics.h"
#include "sim/population.h"

int main() {
  using namespace dynagg;

  // A 60x4 grid: a 15 km stretch with 4 lanes, one car per cell.
  const int width = 60;
  const int height = 4;
  const int n = width * height;

  std::vector<double> sensor(n, 0.0);
  PushSumRevertSwarm swarm(sensor,
                           {.lambda = 0.02, .mode = GossipMode::kPushPull});
  SpatialGridEnvironment env(width, height);
  Population pop(n);
  Rng rng(11);

  // Probe cars at increasing distance from the icy patch (columns 0..5).
  const HostId near_probe = 10;   // column 10, ~1 km past the ice
  const HostId mid_probe = 25;    // column 25
  const HostId far_probe = 55;    // column 55, other end of the stretch
  auto set_patch = [&](double value) {
    for (int y = 0; y < height; ++y) {
      for (int x = 0; x <= 5; ++x) {
        swarm.SetLocalValue(y * width + x, value);
      }
    }
  };

  std::printf(
      "minute  hazard%% at col10  col25  col55   true%%   phase\n");
  const char* phase = "dry road";
  for (int round = 1; round <= 600; ++round) {  // one round per ~5 s
    if (round == 60) {
      set_patch(100.0);  // ice forms: 24 of 240 cars report (10%)
      phase = "ICE at columns 0..5";
    }
    if (round == 420) {
      set_patch(0.0);  // road crew clears the ice
      phase = "ice cleared";
    }
    // Churn: every ~6 rounds a random car exits and another rejoins.
    if (round % 6 == 0) {
      const HostId leaving = pop.SampleAlive(rng);
      if (leaving != kInvalidHost && leaving != near_probe &&
          leaving != mid_probe && leaving != far_probe) {
        pop.Kill(leaving);
      }
      const HostId entering = static_cast<HostId>(rng.UniformInt(n));
      if (!pop.IsAlive(entering)) pop.Revive(entering);
    }
    swarm.RunRound(env, pop, rng);
    if (round % 60 == 0) {
      double truth = 0.0;
      for (const HostId id : pop.alive_ids()) {
        truth += swarm.initial_value(id);
      }
      truth /= pop.num_alive();
      std::printf("%6.0f  %15.1f  %5.1f  %5.1f  %6.1f   %s\n",
                  round * 5.0 / 60.0, swarm.Estimate(near_probe),
                  swarm.Estimate(mid_probe), swarm.Estimate(far_probe),
                  truth, phase);
    }
  }
  return 0;
}
