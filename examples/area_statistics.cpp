// Area statistics (the paper's generalized social-networking scenario).
//
// "A more general social networking application could provide statistics
// about a given area, steering users towards areas populated by those with
// similar interests" (Section I). Each device carries its owner's interest
// score for tonight's theme. The app composes four dynamic aggregates over
// whoever is nearby — population (Count-Sketch-Reset), mean and spread
// (dynamic moments), and the interest distribution's quartiles (dynamic
// CDF) — and renders a live area report on one device.

#include <cstdio>
#include <vector>

#include "agg/count_sketch_reset.h"
#include "agg/moments.h"
#include "agg/quantiles.h"
#include "common/rng.h"
#include "env/haggle_gen.h"
#include "sim/trace_runner.h"

int main() {
  using namespace dynagg;

  HaggleGenParams mobility = HaggleDataset3();
  mobility.duration_hours = 12.0;
  mobility.day_start_hour = 0;  // a 12-hour street festival
  mobility.day_end_hour = 24;
  const ContactTrace trace = GenerateHaggleTrace(mobility);
  const int n = trace.num_devices();

  // Interest scores 0..100; two taste communities.
  Rng rng(21);
  std::vector<double> interest(n);
  for (int i = 0; i < n; ++i) {
    interest[i] = i % 2 == 0 ? rng.UniformDouble(55, 95)   // fans
                             : rng.UniformDouble(5, 45);   // skeptics
  }

  const PsrParams psr{.lambda = 0.02, .mode = GossipMode::kPushPull};
  DynamicMomentsSwarm moments(interest, psr);
  QuantileParams qparams;
  qparams.thresholds = UniformThresholds(0.0, 100.0, 21);
  qparams.psr = psr;
  DynamicCdfSwarm cdf(interest, qparams);
  CsrParams csr;
  csr.bins = 32;
  csr.levels = 16;
  CsrSwarm population(std::vector<int64_t>(n, 100), csr);

  TraceRunner runner(trace, FromSeconds(30));
  runner.OnRound([&](SimTime) {
    moments.RunRound(runner.env(), runner.pop(), rng);
    cdf.RunRound(runner.env(), runner.pop(), rng);
    population.RunRound(runner.env(), runner.pop(), rng);
  });

  const HostId display = 0;
  std::printf(
      "hour  people  interest: mean+-sd    [q25  median  q75]\n");
  runner.EverySample(FromHours(1), [&](SimTime t) {
    std::printf("%4.0f  %6.1f  %13.1f+-%4.1f    [%4.1f  %6.1f  %5.1f]\n",
                ToHours(t), population.EstimateCount(display) / 100.0,
                moments.EstimateMean(display),
                moments.EstimateStdDev(display),
                cdf.EstimateQuantile(display, 0.25),
                cdf.EstimateQuantile(display, 0.50),
                cdf.EstimateQuantile(display, 0.75));
  });
  runner.Run();
  std::printf(
      "\nEvery column is a live gossip aggregate over the display\n"
      "device's current group; no coordinator, no membership list.\n");
  return 0;
}
