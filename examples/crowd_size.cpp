// Crowd-size estimation with Count-Sketch-Reset.
//
// A venue wants a live head-count of wireless devices present, without a
// coordinator and without devices signing off (people just walk out, which
// is a silent failure). Every present device runs Count-Sketch-Reset; the
// estimate at any device tracks the *current* crowd because bits stop being
// sourced when their owners leave and age out past the cutoff f(k).
//
// The demo sweeps the venue through a day: doors open, rush hour, gradual
// emptying — and prints the estimate at one long-lived device against the
// true occupancy, plus what a static (no-cutoff) sketch would have claimed.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "agg/count_sketch_reset.h"
#include "common/rng.h"
#include "env/uniform_env.h"
#include "sim/population.h"

int main() {
  using namespace dynagg;

  const int capacity = 2000;  // device universe
  const std::vector<int64_t> ones(capacity, 1);

  CsrParams dynamic_params;  // cutoff f(k) = 7 + k/4 (paper defaults)
  CsrParams static_params;
  static_params.cutoff_enabled = false;

  CsrSwarm dynamic_sketch(ones, dynamic_params);
  CsrSwarm static_sketch(ones, static_params);
  UniformEnvironment env(capacity);
  Population pop(capacity);
  Rng rng(3);

  // Start nearly empty: only staff (devices 0..49) are present.
  for (HostId id = 50; id < capacity; ++id) pop.Kill(id);

  // Occupancy schedule: (round, target occupancy).
  const std::vector<std::pair<int, int>> schedule = {
      {0, 50},     // staff only
      {30, 400},   // doors open
      {60, 1600},  // rush hour
      {120, 900},  // thinning out
      {160, 200},  // late evening
      {200, 50},   // closing: staff only
  };

  auto adjust_to = [&](int target) {
    while (pop.num_alive() > target) {
      const HostId leaving = pop.SampleAlive(rng);
      if (leaving > 0) pop.Kill(leaving);  // device 0 is the display board
    }
    for (HostId id = 1; id < capacity && pop.num_alive() < target; ++id) {
      if (!pop.IsAlive(id)) pop.Revive(id);
    }
  };

  std::printf("round  occupancy  dynamic_estimate  static_estimate\n");
  size_t next = 0;
  for (int round = 0; round <= 240; ++round) {
    if (next < schedule.size() && round == schedule[next].first) {
      adjust_to(schedule[next].second);
      ++next;
    }
    dynamic_sketch.RunRound(env, pop, rng);
    static_sketch.RunRound(env, pop, rng);
    if (round % 15 == 0) {
      std::printf("%5d  %9d  %16.0f  %15.0f\n", round, pop.num_alive(),
                  dynamic_sketch.EstimateCount(0),
                  static_sketch.EstimateCount(0));
    }
  }
  std::printf(
      "\nThe dynamic estimate follows the crowd both up and down; the\n"
      "static sketch can only ratchet upward (it never forgets leavers).\n");
  return 0;
}
