// Media-player social networking (the paper's Section I scenario).
//
// Wireless media players carried by people export the owner's rating of the
// currently-hyped album. Each device embeds a NodeAggregator — the
// library's per-device facade — and gossips serialized payloads with
// whatever device happens to be in radio range, with no infrastructure, no
// membership lists and no departure detection. A stationary "jukebox"
// device (id 0, e.g. mounted in a bar) uses the live estimates to decide
// whether the album suits the current clientele and how big that clientele
// is.
//
// Mobility comes from a synthetic Cambridge/Haggle-style contact trace
// (people meeting in small groups over several days).

#include <cstdio>
#include <memory>
#include <vector>

#include "agg/aggregator.h"
#include "common/rng.h"
#include "env/connectivity.h"
#include "env/haggle_gen.h"
#include "env/trace_env.h"
#include "sim/population.h"

int main() {
  using namespace dynagg;

  // --- Workload: 12 devices, each owner rates the album 0..5 stars. ------
  HaggleGenParams mobility = HaggleDataset2();
  mobility.duration_hours = 48.0;
  const ContactTrace trace = GenerateHaggleTrace(mobility);
  const int n = trace.num_devices();

  Rng rng(7);
  std::vector<double> ratings(n);
  for (auto& r : ratings) r = 1.0 + static_cast<double>(rng.UniformInt(5));

  // --- Devices: one NodeAggregator each. ----------------------------------
  AggregatorConfig config;
  config.lambda = 0.02;           // adapt within ~a minute of gossip rounds
  config.csr.bins = 32;           // small payloads for a toy network
  config.csr.levels = 16;
  config.count_multiplicity = 100;  // variance reduction for tiny groups
  std::vector<std::unique_ptr<NodeAggregator>> devices;
  for (int i = 0; i < n; ++i) {
    devices.push_back(std::make_unique<NodeAggregator>(
        /*device_id=*/0xACE0 + i, ratings[i], config));
  }

  // --- Drive gossip off the mobility trace, one round per 30 s. ----------
  TraceEnvironment env(trace);
  Population pop(n);
  const SimTime period = FromSeconds(30);
  std::printf(
      "hour  jukebox: avg_rating (true)   crowd_size (true)   verdict\n");
  int round = 0;
  for (SimTime t = period; t <= trace.end_time(); t += period, ++round) {
    env.AdvanceTo(t);
    for (int i = 0; i < n; ++i) {
      const auto payload = devices[i]->BeginRound();
      const HostId peer = env.SamplePeer(i, pop, rng);
      if (peer != kInvalidHost) {
        const auto reply = devices[peer]->HandleMessage(payload);
        if (reply.ok()) {
          (void)devices[i]->HandleReply(*reply);
        }
      }
      devices[i]->EndRound();
    }

    if ((round + 1) % 480 != 0) continue;  // report every 4 hours
    // Ground truth for device 0's group.
    const std::vector<int> groups = env.CurrentGroups();
    const std::vector<int> sizes = ComponentSizes(groups);
    double true_rating = 0.0;
    for (int i = 0; i < n; ++i) {
      if (groups[i] == groups[0]) true_rating += ratings[i];
    }
    const int true_size = sizes[groups[0]];
    true_rating /= true_size;

    const double est_rating = devices[0]->AverageEstimate();
    const double est_size = devices[0]->CountEstimate();
    std::printf("%4.0f  %10.2f (%4.2f)  %12.1f (%d)   %s\n", ToHours(t),
                est_rating, true_rating, est_size, true_size,
                est_rating >= 2.5 ? "keep playing" : "change album");
  }
  return 0;
}
