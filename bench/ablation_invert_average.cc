// Ablation: Invert-Average vs multiple-insertion summation (Section IV.B).
//
// Two ways to compute a dynamic sum: register value v as v sketch
// identifiers (multiple insertions; sketch must be sized for the value
// range) or multiply a Count-Sketch-Reset size estimate by a
// Push-Sum-Revert average (Invert-Average). The paper argues the latter is
// "significantly less expensive" per summed attribute because the sketch
// cost is amortized while Push-Sum messages are two doubles. This harness
// measures accuracy and per-round per-host gossip bytes for both, as the
// number of simultaneously-summed attributes grows.

#include <cmath>
#include <string>
#include <vector>

#include "agg/count_sketch_reset.h"
#include "agg/invert_average.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "env/uniform_env.h"
#include "sim/metrics.h"
#include "sim/population.h"

namespace dynagg {
namespace {

// Push/pull gossip transmits the state in both directions once per
// initiated exchange; bytes/round/host ~ 2x the serialized state.
double CsrBytes(const CsrParams& p) {
  return 2.0 * (p.bins * p.levels + 8);
}
double PsrBytes() { return 2.0 * (2 * sizeof(double)); }

void Run(int n, uint64_t seed) {
  const std::vector<double> values = bench::UniformValues(n, seed);
  CsvTable table({"attributes", "multi_insert_err_pct",
                  "multi_insert_bytes", "invert_avg_err_pct",
                  "invert_avg_bytes"});

  for (const int attributes : {1, 2, 4, 8, 16}) {
    // --- Multiple insertions: one value-sized sketch per attribute. ------
    std::vector<int64_t> mults(n);
    for (int i = 0; i < n; ++i) {
      mults[i] = static_cast<int64_t>(values[i] + 0.5);
    }
    CsrParams mi_params;  // must cover sums up to 100 * n: default levels ok
    CsrSwarm mi(mults, mi_params);
    UniformEnvironment env(n);
    Population pop(n);
    Rng rng(DeriveSeed(seed, attributes));
    for (int round = 0; round < 30; ++round) mi.RunRound(env, pop, rng);
    double truth = 0.0;
    for (int i = 0; i < n; ++i) truth += static_cast<double>(mults[i]);
    const double mi_err = std::abs(mi.EstimateCount(0) - truth) / truth;
    const double mi_bytes = attributes * CsrBytes(mi_params);

    // --- Invert-Average: one shared size sketch + one PSR per attribute. -
    InvertAverageParams ia_params;
    ia_params.psr.lambda = 0.01;
    InvertAverageSwarm ia(values, ia_params);
    Population pop2(n);
    Rng rng2(DeriveSeed(seed, 100 + attributes));
    for (int round = 0; round < 30; ++round) ia.RunRound(env, pop2, rng2);
    double true_sum = 0.0;
    for (const double v : values) true_sum += v;
    const double ia_err = std::abs(ia.EstimateSum(0) - true_sum) / true_sum;
    const double ia_bytes =
        CsrBytes(ia_params.csr) + attributes * PsrBytes();

    table.AddRow({static_cast<double>(attributes), 100.0 * mi_err, mi_bytes,
                  100.0 * ia_err, ia_bytes});
  }
  table.Print();
}

}  // namespace
}  // namespace dynagg

int main(int argc, char** argv) {
  dynagg::bench::Flags flags(argc, argv);
  const int n = static_cast<int>(flags.Int("hosts", 10000));
  dynagg::bench::PrintHeader(
      "Ablation: Invert-Average vs multiple-insertion sums",
      {"hosts=" + std::to_string(n) + " values=U[0,100)",
       "bytes = per-host per-round gossip payload (push/pull, both "
       "directions) to maintain `attributes` simultaneous sums",
       "expected: comparable error; Invert-Average bandwidth is ~flat in "
       "the attribute count while multi-insert scales linearly"});
  dynagg::Run(n, flags.Int("seed", 20090415));
  return 0;
}
