// Ablation: overlay (TAG spanning tree) vs unstructured (Push-Sum-Revert)
// aggregation under churn.
//
// Overlay protocols are efficient but fragile (Sections II.a / VI): a host
// failing mid-epoch silently drops its whole accumulated subtree. This
// harness runs both approaches on the same spatial grid under increasing
// per-round churn and reports each one's error in the leader's / hosts'
// average estimate. TAG rebuilds its tree each epoch (the best case for
// TAG — real deployments amortize the tree across epochs).

#include <cmath>
#include <string>
#include <vector>

#include "agg/push_sum_revert.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "env/spatial_env.h"
#include "sim/failure.h"
#include "sim/metrics.h"
#include "sim/population.h"
#include "tree/spanning_tree.h"
#include "tree/tag.h"

namespace dynagg {
namespace {

void Run(int side, uint64_t seed) {
  const int n = side * side;
  const std::vector<double> values = bench::UniformValues(n, seed);
  CsvTable table({"death_prob", "tag_mean_abs_err", "tag_failed_epochs_pct",
                  "psr_rms"});
  SpatialGridEnvironment env(side, side);

  for (const double death_prob : {0.0, 0.001, 0.005, 0.01, 0.02, 0.05}) {
    // --- TAG: repeated epochs under churn. -------------------------------
    Rng churn_rng(DeriveSeed(seed, static_cast<uint64_t>(death_prob * 1e5)));
    const int epochs = 30;
    RunningStat tag_err;
    int failed_epochs = 0;
    Population tag_pop(n);
    int round = 0;
    for (int epoch = 0; epoch < epochs; ++epoch) {
      // Fresh churn plan segment for the epoch's rounds.
      const SpanningTree tree = BuildBfsTree(env, tag_pop, /*root=*/0);
      const FailurePlan churn = FailurePlan::Churn(
          n, round, round + tree.max_depth + 1, death_prob,
          /*return_prob=*/death_prob * 4, churn_rng);
      const TagEpochResult result =
          RunTagEpoch(tree, values, tag_pop, churn, round);
      round += tree.max_depth + 1;
      // Keep the leader alive so epochs stay comparable.
      tag_pop.Revive(0);
      if (!result.valid || result.count == 0) {
        ++failed_epochs;
        continue;
      }
      const double truth = TrueAverage(values, tag_pop);
      tag_err.Add(std::abs(result.average - truth));
    }

    // --- Push-Sum-Revert under the same churn process. --------------------
    PushSumRevertSwarm swarm(
        values, {.lambda = 0.05, .mode = GossipMode::kPushPull});
    Population psr_pop(n);
    Rng rng(DeriveSeed(seed, 77));
    Rng psr_churn_rng(
        DeriveSeed(seed, static_cast<uint64_t>(death_prob * 1e5)));
    const FailurePlan churn = FailurePlan::Churn(
        n, 0, 200, death_prob, death_prob * 4, psr_churn_rng);
    RunningStat psr_tail;
    for (int r = 0; r < 200; ++r) {
      churn.Apply(r, &psr_pop);
      psr_pop.Revive(0);
      swarm.RunRound(env, psr_pop, rng);
      if (r >= 100) {
        psr_tail.Add(RmsDeviationOverAlive(
            psr_pop, TrueAverage(values, psr_pop),
            [&](HostId id) { return swarm.Estimate(id); }));
      }
    }

    table.AddRow({death_prob, tag_err.mean(),
                  100.0 * failed_epochs / epochs, psr_tail.mean()});
  }
  table.Print();
}

}  // namespace
}  // namespace dynagg

int main(int argc, char** argv) {
  dynagg::bench::Flags flags(argc, argv);
  const int side = static_cast<int>(flags.Int("side", 32));
  dynagg::bench::PrintHeader(
      "Ablation: TAG tree aggregation vs Push-Sum-Revert under churn",
      {"grid " + std::to_string(side) + "x" + std::to_string(side) +
           "; per-round death probability sweep (returns at 4x the rate)",
       "tag_mean_abs_err: |leader average - truth| over 30 epochs",
       "psr_rms: steady-state RMS deviation of all hosts",
       "expected: TAG degrades sharply with churn (subtree loss); gossip "
       "degrades gracefully"});
  dynagg::Run(side, flags.Int("seed", 20090414));
  return 0;
}
