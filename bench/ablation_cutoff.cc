// Ablation: Count-Sketch-Reset cutoff f(k) = base + slope * k.
//
// Section V.B: "Unlike Push-Sum-Revert's lambda, the effect of raising the
// cutoff drops steeply after a certain point" — below the propagation age
// the protocol cannot converge (live bits flicker off), above it the only
// cost is slower recovery after departures. This harness sweeps the base
// and reports steady-state accuracy, post-failure recovery time, and
// residual error.

#include <cmath>
#include <vector>

#include "agg/count_sketch_reset.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "env/uniform_env.h"
#include "sim/failure.h"
#include "sim/metrics.h"
#include "sim/population.h"
#include "sim/round_driver.h"

namespace dynagg {
namespace {

void Run(int n, uint64_t seed) {
  const std::vector<int64_t> ones(n, 1);
  CsvTable table({"cutoff_base", "pre_failure_error_pct",
                  "rounds_to_recover", "post_failure_error_pct"});
  for (const double base : {2.0, 4.0, 6.0, 7.0, 10.0, 14.0, 20.0, 30.0}) {
    CsrParams params;
    params.cutoff_base = base;
    CsrSwarm swarm(ones, params);
    UniformEnvironment env(n);
    Population pop(n);
    Rng rng(DeriveSeed(seed, static_cast<uint64_t>(base * 10)));
    Rng fail_rng(DeriveSeed(seed, 999));
    const FailurePlan failures =
        FailurePlan::KillRandomFraction(n, 25, 0.5, fail_rng);
    double pre_error = 0.0;
    std::vector<double> post_series;
    RunRounds(swarm, env, pop, failures, 80, rng, [&](int round) {
      const double truth = pop.num_alive();
      const double rms = RmsDeviationOverAlive(
          pop, truth, [&](HostId id) { return swarm.EstimateCount(id); });
      if (round == 24) pre_error = rms / truth;
      if (round >= 25) post_series.push_back(rms / truth);
    });
    const double post_error = post_series.back();
    const int rec =
        FirstSustainedBelow(post_series, std::max(0.25, 2.0 * post_error));
    table.AddRow({base, 100.0 * pre_error, static_cast<double>(rec),
                  100.0 * post_error});
  }
  table.Print();
}

}  // namespace
}  // namespace dynagg

int main(int argc, char** argv) {
  dynagg::bench::Flags flags(argc, argv);
  const int n = static_cast<int>(flags.Int("hosts", 20000));
  dynagg::bench::PrintHeader(
      "Ablation: Count-Sketch-Reset cutoff base",
      {"hosts=" + std::to_string(n) +
           ", value 1 each; random 50% removed at round 25",
       "f(k) = base + k/4; paper base = 7",
       "expected: bases below the propagation age break steady-state "
       "accuracy; larger bases only slow recovery"});
  dynagg::Run(n, flags.Int("seed", 20090410));
  return 0;
}
