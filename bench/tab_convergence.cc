// In-text convergence-time table.
//
// The paper quotes two convergence facts for uniform gossip:
//  - "the traditional protocol takes 10 rounds to converge on a network of
//    this size" (100,000 hosts, Section V.A), and
//  - push/pull roughly halves push-only convergence (Section III.A,
//    after Karp et al.).
// This harness tabulates rounds-to-convergence (sustained RMS deviation
// below 1% of the value range) for Push-Sum in both gossip modes and for
// Count-Sketch-Reset (estimate within 15% of the truth) across network
// sizes.

#include <string>
#include <vector>

#include "agg/count_sketch_reset.h"
#include "agg/push_sum.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "env/uniform_env.h"
#include "sim/metrics.h"
#include "sim/population.h"

namespace dynagg {
namespace {

int PushSumRounds(int n, GossipMode mode, uint64_t seed) {
  const std::vector<double> values = bench::UniformValues(n, seed);
  PushSumSwarm swarm(values, mode);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(DeriveSeed(seed, 3));
  const double truth = TrueAverage(values, pop);
  for (int round = 0; round < 200; ++round) {
    swarm.RunRound(env, pop, rng);
    const double rms = RmsDeviationOverAlive(
        pop, truth, [&](HostId id) { return swarm.Estimate(id); });
    if (rms < 1.0) return round + 1;  // 1% of the [0,100) range
  }
  return -1;
}

int CsrRounds(int n, uint64_t seed) {
  const std::vector<int64_t> ones(n, 1);
  CsrSwarm swarm(ones, CsrParams{});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(DeriveSeed(seed, 4));
  for (int round = 0; round < 200; ++round) {
    swarm.RunRound(env, pop, rng);
    const double rms = RmsDeviationOverAlive(
        pop, n, [&](HostId id) { return swarm.EstimateCount(id); });
    if (rms < 0.15 * n) return round + 1;
  }
  return -1;
}

}  // namespace
}  // namespace dynagg

int main(int argc, char** argv) {
  dynagg::bench::Flags flags(argc, argv);
  const uint64_t seed = flags.Int("seed", 20090406);
  dynagg::bench::PrintHeader(
      "Table: convergence rounds by protocol and network size",
      {"push_sum_*: rounds until sustained RMS < 1.0 (1% of value range)",
       "csr: rounds until count estimate within 15% of truth",
       "paper quotes ~10 rounds for traditional push/pull Push-Sum at "
       "100,000 hosts"});
  dynagg::CsvTable table(
      {"hosts", "push_sum_push", "push_sum_pushpull", "csr"});
  std::vector<int> sizes = {1000, 10000, 100000};
  if (flags.Int("hosts", 0) > 0) {
    sizes = {static_cast<int>(flags.Int("hosts", 0))};
  }
  for (const int n : sizes) {
    table.AddRow({static_cast<double>(n),
                  static_cast<double>(dynagg::PushSumRounds(
                      n, dynagg::GossipMode::kPush, seed)),
                  static_cast<double>(dynagg::PushSumRounds(
                      n, dynagg::GossipMode::kPushPull, seed)),
                  static_cast<double>(dynagg::CsrRounds(n, seed))});
  }
  table.Print();
  return 0;
}
