// Ablation: dynamic-extreme cutoff (the paper's recipe applied to max).
//
// The dynamic extreme (agg/extremes.h) transplants Count-Sketch-Reset's
// age-and-cutoff idea to max/min aggregates ("the most popular song",
// Section I). Like the sketch cutoff, the extreme cutoff must exceed the
// gossip propagation age; beyond that it only delays recovery after the
// winner departs. This harness sweeps the cutoff and reports steady-state
// correctness and recovery time, including the static (cutoff 0) mode that
// never recovers.

#include <numeric>
#include <string>
#include <vector>

#include "agg/extremes.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "env/uniform_env.h"
#include "sim/metrics.h"
#include "sim/population.h"

namespace dynagg {
namespace {

void Run(int n, uint64_t seed) {
  std::vector<double> values = bench::UniformValues(n, seed);
  values[0] = 1000.0;  // the winner that will depart
  const double runner_up = 999.0;
  values[1] = runner_up;
  std::vector<uint64_t> keys(n);
  std::iota(keys.begin(), keys.end(), 0);

  CsvTable table({"cutoff", "steady_correct_pct", "flicker_pct",
                  "rounds_to_recover"});
  for (const int cutoff : {0, 4, 8, 12, 16, 24, 48}) {
    ExtremeParams params;
    params.cutoff = cutoff;
    DynamicExtremeSwarm swarm(values, keys, params);
    UniformEnvironment env(n);
    Population pop(n);
    Rng rng(DeriveSeed(seed, cutoff));
    // Phase 1: steady state. Measure how many hosts hold the true max and
    // how often estimates flicker (a too-small cutoff expires live
    // candidates between refreshes).
    int correct = 0;
    int flickers = 0;
    int samples = 0;
    for (int round = 0; round < 40; ++round) {
      swarm.RunRound(env, pop, rng);
      if (round < 15) continue;  // warmup
      for (HostId id = 0; id < n; id += 97) {
        ++samples;
        if (swarm.Estimate(id) == 1000.0) {
          ++correct;
        } else {
          ++flickers;
        }
      }
    }
    // Phase 2: the winner departs; count rounds until 95% of hosts report
    // the runner-up.
    pop.Kill(0);
    int recover = -1;
    for (int round = 0; round < 100; ++round) {
      swarm.RunRound(env, pop, rng);
      int holding = 0;
      for (const HostId id : pop.alive_ids()) {
        if (swarm.Estimate(id) == runner_up) ++holding;
      }
      if (holding >= pop.num_alive() * 95 / 100) {
        recover = round + 1;
        break;
      }
    }
    table.AddRow({static_cast<double>(cutoff), 100.0 * correct / samples,
                  100.0 * flickers / samples,
                  static_cast<double>(recover)});
  }
  table.Print();
}

}  // namespace
}  // namespace dynagg

int main(int argc, char** argv) {
  dynagg::bench::Flags flags(argc, argv);
  const int n = static_cast<int>(flags.Int("hosts", 10000));
  dynagg::bench::PrintHeader(
      "Ablation: dynamic-extreme cutoff",
      {"hosts=" + std::to_string(n) +
           "; winner (value 1000) departs after 40 rounds",
       "steady_correct_pct: hosts reporting the true max at steady state",
       "flicker_pct: hosts that expired a live winner (cutoff too small)",
       "rounds_to_recover: until 95% report the surviving runner-up "
       "(-1 = never, the static cutoff=0 case)"});
  dynagg::Run(n, flags.Int("seed", 20090417));
  return 0;
}
