// In-text bandwidth table.
//
// The paper's motivation (Section I) and the Invert-Average argument
// (Section IV.B: "Push-Sum-Revert requires several orders of magnitude less
// bandwidth and storage space than Count-Sketch-Reset") are about traffic.
// This harness runs each protocol with a TrafficMeter attached and reports
// measured messages and bytes per host per round, plus per-host state size.

#include <string>
#include <vector>

#include "agg/count_sketch.h"
#include "agg/count_sketch_reset.h"
#include "agg/full_transfer.h"
#include "agg/push_sum.h"
#include "agg/push_sum_revert.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "env/uniform_env.h"
#include "sim/bandwidth.h"
#include "sim/metrics.h"
#include "sim/population.h"

namespace dynagg {
namespace {

struct Row {
  const char* protocol;
  double msgs_per_host_round;
  double bytes_per_host_round;
  double state_bytes;
};

template <typename Swarm>
Row Measure(const char* name, Swarm& swarm, int n, int rounds, double state,
            uint64_t seed) {
  TrafficMeter meter;
  swarm.set_traffic_meter(&meter);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(DeriveSeed(seed, 1));
  for (int round = 0; round < rounds; ++round) {
    swarm.RunRound(env, pop, rng);
  }
  const double denom = static_cast<double>(n) * rounds;
  return Row{name, meter.total().messages / denom,
             meter.total().bytes / denom, state};
}

void Run(int n, int rounds, uint64_t seed) {
  const std::vector<double> values = bench::UniformValues(n, seed);
  const std::vector<int64_t> ones(n, 1);
  std::vector<Row> rows;

  {
    PushSumSwarm swarm(values, GossipMode::kPushPull);
    rows.push_back(Measure("push_sum", swarm, n, rounds,
                           2.0 * sizeof(double), seed));
  }
  {
    PushSumRevertSwarm swarm(
        values, {.lambda = 0.01, .mode = GossipMode::kPushPull});
    rows.push_back(Measure("push_sum_revert", swarm, n, rounds,
                           3.0 * sizeof(double), seed));
  }
  {
    FullTransferSwarm swarm(values,
                            {.lambda = 0.1, .parcels = 4, .window = 3});
    rows.push_back(Measure("full_transfer", swarm, n, rounds,
                           (2.0 + 2.0 * 3) * sizeof(double), seed));
  }
  {
    CountSketchSwarm swarm(ones, CountSketchParams{});
    rows.push_back(Measure("count_sketch", swarm, n, rounds,
                           64.0 * sizeof(uint64_t), seed));
  }
  {
    CsrSwarm swarm(ones, CsrParams{});
    rows.push_back(Measure("count_sketch_reset", swarm, n, rounds,
                           64.0 * 24.0, seed));
  }

  std::printf("# protocol ids: 0=push_sum 1=push_sum_revert 2=full_transfer "
              "3=count_sketch 4=count_sketch_reset\n");
  CsvTable table({"protocol", "msgs_per_host_round", "bytes_per_host_round",
                  "state_bytes"});
  for (size_t i = 0; i < rows.size(); ++i) {
    std::printf("# %zu = %s\n", i, rows[i].protocol);
    table.AddRow({static_cast<double>(i), rows[i].msgs_per_host_round,
                  rows[i].bytes_per_host_round, rows[i].state_bytes});
  }
  table.Print();
}

}  // namespace
}  // namespace dynagg

int main(int argc, char** argv) {
  dynagg::bench::Flags flags(argc, argv);
  const int n = static_cast<int>(flags.Int("hosts", 2000));
  const int rounds = static_cast<int>(flags.Int("rounds", 20));
  dynagg::bench::PrintHeader(
      "Table: measured gossip traffic by protocol",
      {"hosts=" + std::to_string(n) + " rounds=" + std::to_string(rounds) +
           " uniform push/pull gossip",
       "expected: mass protocols cost ~16 B/message; sketch protocols cost "
       "orders of magnitude more (the Invert-Average argument, IV.B)"});
  dynagg::Run(n, rounds, flags.Int("seed", 20090416));
  return 0;
}
