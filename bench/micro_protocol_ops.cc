// Microbenchmarks of the per-round protocol primitives (google-benchmark).
//
// These quantify the per-host cost of each protocol step — the quantities a
// deployment would budget against radio and CPU duty cycles: mass
// exchanges, counter aging/merging, sketch estimation and payload
// serialization.

#include <benchmark/benchmark.h>

#include <vector>

#include "agg/aggregator.h"
#include "agg/count_sketch_reset.h"
#include "agg/fm_sketch.h"
#include "agg/push_sum.h"
#include "agg/push_sum_revert.h"
#include "common/rng.h"
#include "env/uniform_env.h"
#include "sim/population.h"

namespace dynagg {
namespace {

void BM_PushSumExchange(benchmark::State& state) {
  PushSumNode a;
  PushSumNode b;
  a.Init(1.0);
  b.Init(2.0);
  for (auto _ : state) {
    PushSumNode::Exchange(a, b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_PushSumExchange);

void BM_PushSumSwarmRound(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<double> values(n, 1.0);
  PushSumSwarm swarm(values, GossipMode::kPushPull);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(1);
  for (auto _ : state) {
    swarm.RunRound(env, pop, rng);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PushSumSwarmRound)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_PsrSwarmRound(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<double> values(n, 1.0);
  PushSumRevertSwarm swarm(values,
                           {.lambda = 0.01, .mode = GossipMode::kPushPull});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(1);
  for (auto _ : state) {
    swarm.RunRound(env, pop, rng);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PsrSwarmRound)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_CsrAgeCounters(benchmark::State& state) {
  CountSketchResetNode node;
  node.Init(CsrParams{}, 1, 1);
  for (auto _ : state) {
    node.AgeCounters();
    benchmark::DoNotOptimize(node);
  }
  state.SetBytesProcessed(state.iterations() * 64 * 24);
}
BENCHMARK(BM_CsrAgeCounters);

void BM_CsrExchangeMerge(benchmark::State& state) {
  CountSketchResetNode a;
  CountSketchResetNode b;
  a.Init(CsrParams{}, 1, 1);
  b.Init(CsrParams{}, 2, 1);
  for (auto _ : state) {
    CountSketchResetNode::ExchangeMerge(a, b);
    benchmark::DoNotOptimize(a);
  }
  state.SetBytesProcessed(state.iterations() * 64 * 24 * 2);
}
BENCHMARK(BM_CsrExchangeMerge);

void BM_CsrEstimate(benchmark::State& state) {
  CountSketchResetNode node;
  node.Init(CsrParams{}, 1, 1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(node.EstimateCount());
  }
}
BENCHMARK(BM_CsrEstimate);

void BM_CsrSwarmRound(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<int64_t> ones(n, 1);
  CsrSwarm swarm(ones, CsrParams{});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(1);
  for (auto _ : state) {
    swarm.RunRound(env, pop, rng);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CsrSwarmRound)->Arg(1000)->Arg(10000);

void BM_FmSketchInsert(benchmark::State& state) {
  FmSketch sketch(64, 32);
  uint64_t id = 0;
  for (auto _ : state) {
    sketch.InsertObject(++id, 7);
    benchmark::DoNotOptimize(sketch);
  }
}
BENCHMARK(BM_FmSketchInsert);

void BM_AggregatorRoundTrip(benchmark::State& state) {
  AggregatorConfig config;
  NodeAggregator a(1, 10.0, config);
  NodeAggregator b(2, 20.0, config);
  for (auto _ : state) {
    const auto request = a.BeginRound();
    b.BeginRound();
    auto reply = b.HandleMessage(request);
    benchmark::DoNotOptimize(a.HandleReply(*reply));
    a.EndRound();
    b.EndRound();
  }
}
BENCHMARK(BM_AggregatorRoundTrip);

}  // namespace
}  // namespace dynagg

BENCHMARK_MAIN();
