// Microbenchmarks of the per-round protocol primitives (google-benchmark).
//
// These quantify the per-host cost of each protocol step — the quantities a
// deployment would budget against radio and CPU duty cycles: mass
// exchanges, counter aging/merging, sketch estimation and payload
// serialization.

#include <benchmark/benchmark.h>

#include <vector>

#include "agg/aggregator.h"
#include "agg/count_sketch_reset.h"
#include "agg/fm_sketch.h"
#include "agg/push_flow.h"
#include "agg/push_sum.h"
#include "agg/push_sum_revert.h"
#include "common/rng.h"
#include "common/types.h"
#include "env/uniform_env.h"
#include "net/inflight_queue.h"
#include "net/message.h"
#include "net/network_model.h"
#include "sim/churn.h"
#include "sim/population.h"
#include "sim/workload.h"
#include "stream/stream_swarm.h"

namespace dynagg {
namespace {

void BM_PushSumExchange(benchmark::State& state) {
  PushSumNode a;
  PushSumNode b;
  a.Init(1.0);
  b.Init(2.0);
  for (auto _ : state) {
    PushSumNode::Exchange(a, b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_PushSumExchange);

void BM_PushSumSwarmRound(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<double> values(n, 1.0);
  PushSumSwarm swarm(values, GossipMode::kPushPull);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(1);
  for (auto _ : state) {
    swarm.RunRound(env, pop, rng);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PushSumSwarmRound)->Arg(1000)->Arg(10000)->Arg(100000);

// ----------------------------------------------------- round kernel ---
//
// The Environment API v2 before/after pair that BENCH_roundkernel.json
// tracks (tools/bench.sh): a push-mode push-sum round over a uniform
// environment, per-host virtual SamplePeer (the pre-refactor structure,
// replicated below) vs the shared plan -> apply kernel at 1 and N scatter
// threads. RNG draws and results are identical; only the structure differs.

/// Pre-refactor reference round: emit, one virtual SamplePeer per host
/// (each deposit's address serialized behind its partner draw), deposit.
void LegacyPushRound(std::vector<PushSumNode>& nodes, const Environment& env,
                     const Population& pop, Rng& rng) {
  for (const HostId i : pop.alive_ids()) {
    const Mass out = nodes[i].EmitPushHalf();
    const HostId peer = env.SamplePeer(i, pop, rng);
    nodes[peer == kInvalidHost ? i : peer].Deposit(out);
  }
  for (const HostId i : pop.alive_ids()) nodes[i].EndRound();
}

void BM_PushRoundLegacy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<PushSumNode> nodes(n);
  for (int i = 0; i < n; ++i) nodes[i].Init(1.0);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(1);
  for (auto _ : state) {
    LegacyPushRound(nodes, env, pop, rng);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PushRoundLegacy)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_PushRoundKernel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<double> values(n, 1.0);
  PushSumSwarm swarm(values, GossipMode::kPush);
  swarm.set_intra_round_threads(static_cast<int>(state.range(1)));
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(1);
  for (auto _ : state) {
    swarm.RunRound(env, pop, rng);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
/// A churned round at the 100k rung — what BENCH_roundkernel.json tracks
/// as churn_100k: apply one precomputed ChurnPlan round (deaths, rebirths
/// and arrivals at ~1%/round each side, on_join resets through the swarm)
/// and then run the push round. The membership mutations invalidate the
/// environment's cached partner plan, so this prices the invalidation +
/// rebuild the steady-state kernel number never pays.
void BM_ChurnedPushRound(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<double> values(n, 1.0);
  PushSumSwarm swarm(values, GossipMode::kPush);
  UniformEnvironment env(n);
  Population pop(n, n * 9 / 10);
  ChurnParams params;
  params.n = n;
  params.initial = n * 9 / 10;
  params.arrival_rate = n / 100.0;
  params.death_prob = 0.01;
  params.rebirth_prob = 0.1;
  params.start_round = 0;
  params.end_round = 64;
  params.max_alive = n;
  Rng churn_rng(7);
  const ChurnPlan plan = ChurnPlan::Build(params, churn_rng);
  Rng rng(1);
  int round = 0;
  for (auto _ : state) {
    plan.Apply(round & 63, &pop, [&](HostId id) { swarm.OnJoin(id); });
    ++round;
    swarm.RunRound(env, pop, rng);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ChurnedPushRound)->Arg(100000);

BENCHMARK(BM_PushRoundKernel)
    ->Args({10000, 1})
    ->Args({100000, 1})
    ->Args({100000, 2})
    ->Args({100000, 4})
    ->Args({1000000, 1})
    ->Args({1000000, 2})
    ->Args({1000000, 4});

/// Pre-refactor reference push/pull round: shuffle, then one virtual
/// SamplePeer per host with both exchange-side node accesses serialized
/// behind the draw.
void LegacyPushPullRound(std::vector<PushSumNode>& nodes,
                         const Environment& env, const Population& pop,
                         Rng& rng, std::vector<HostId>& order) {
  ShuffledAliveOrder(pop, rng, &order);
  for (const HostId i : order) {
    const HostId peer = env.SamplePeer(i, pop, rng);
    if (peer == kInvalidHost) continue;
    PushSumNode::Exchange(nodes[i], nodes[peer]);
  }
}

void BM_PushPullRoundLegacy(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<PushSumNode> nodes(n);
  for (int i = 0; i < n; ++i) nodes[i].Init(1.0);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(1);
  std::vector<HostId> order;
  for (auto _ : state) {
    LegacyPushPullRound(nodes, env, pop, rng, order);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PushPullRoundLegacy)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_PushPullRoundKernel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<double> values(n, 1.0);
  PushSumSwarm swarm(values, GossipMode::kPushPull);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(1);
  for (auto _ : state) {
    swarm.RunRound(env, pop, rng);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PushPullRoundKernel)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_StreamCountMinRound(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  stream::StreamSwarmParams params;
  params.kind = stream::SketchKind::kCountMin;
  params.depth = 2;
  params.width = 32;
  params.hash_seed = 7;
  params.batch = 8;
  KeyedStreamGen gen(KeyStreamKind::kZipf, 1000000, 1.1, 42);
  stream::StreamSketchSwarm swarm(n, params, gen);
  swarm.set_track_truth(false);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(1);
  for (auto _ : state) {
    swarm.RunRound(env, pop, rng);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StreamCountMinRound)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_AsyncDriverStep(benchmark::State& state) {
  // One async-driver gossip step at scale, structured exactly like the
  // production driver: drain the in-flight messages due by this tick, plan
  // a push-flow tick, decide every message's fate through the
  // per-message-seeded network model, park the survivors in the batched
  // InFlightQueue (the driver's POD heap — no per-message events).
  const int n = static_cast<int>(state.range(0));
  std::vector<double> values(n, 1.0);
  PushFlowSwarm swarm(values);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(1);
  net::NetworkParams params;
  params.latency = net::LatencyKind::kExponential;
  params.latency_s = 10.0;
  params.loss = 0.1;
  net::NetworkModel model(params, 99);
  std::vector<net::Message> wave;
  net::InFlightQueue inflight;
  inflight.Reserve(static_cast<size_t>(n));
  const SimTime period = FromSeconds(30.0);
  SimTime now = 0;
  uint64_t index = 0;
  for (auto _ : state) {
    now += period;
    while (inflight.HasDueBy(now)) {
      swarm.DeliverFlow(inflight.Top());
      inflight.Pop();
    }
    wave.clear();
    swarm.PlanAsyncTick(env, pop, rng, &wave);
    for (const net::Message& m : wave) {
      const net::NetworkModel::Delivery d = model.Decide(index++);
      if (!d.dropped) inflight.Push(now + d.delay, m);
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AsyncDriverStep)->Arg(10000)->Arg(100000)->Arg(1000000);

void BM_PsrSwarmRound(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<double> values(n, 1.0);
  PushSumRevertSwarm swarm(values,
                           {.lambda = 0.01, .mode = GossipMode::kPushPull});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(1);
  for (auto _ : state) {
    swarm.RunRound(env, pop, rng);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PsrSwarmRound)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_CsrAgeCounters(benchmark::State& state) {
  CountSketchResetNode node;
  node.Init(CsrParams{}, 1, 1);
  for (auto _ : state) {
    node.AgeCounters();
    benchmark::DoNotOptimize(node);
  }
  state.SetBytesProcessed(state.iterations() * 64 * 24);
}
BENCHMARK(BM_CsrAgeCounters);

void BM_CsrExchangeMerge(benchmark::State& state) {
  CountSketchResetNode a;
  CountSketchResetNode b;
  a.Init(CsrParams{}, 1, 1);
  b.Init(CsrParams{}, 2, 1);
  for (auto _ : state) {
    CountSketchResetNode::ExchangeMerge(a, b);
    benchmark::DoNotOptimize(a);
  }
  state.SetBytesProcessed(state.iterations() * 64 * 24 * 2);
}
BENCHMARK(BM_CsrExchangeMerge);

void BM_CsrEstimate(benchmark::State& state) {
  CountSketchResetNode node;
  node.Init(CsrParams{}, 1, 1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(node.EstimateCount());
  }
}
BENCHMARK(BM_CsrEstimate);

void BM_CsrSwarmRound(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<int64_t> ones(n, 1);
  CsrSwarm swarm(ones, CsrParams{});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(1);
  for (auto _ : state) {
    swarm.RunRound(env, pop, rng);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_CsrSwarmRound)->Arg(1000)->Arg(10000);

void BM_FmSketchInsert(benchmark::State& state) {
  FmSketch sketch(64, 32);
  uint64_t id = 0;
  for (auto _ : state) {
    sketch.InsertObject(++id, 7);
    benchmark::DoNotOptimize(sketch);
  }
}
BENCHMARK(BM_FmSketchInsert);

void BM_AggregatorRoundTrip(benchmark::State& state) {
  AggregatorConfig config;
  NodeAggregator a(1, 10.0, config);
  NodeAggregator b(2, 20.0, config);
  for (auto _ : state) {
    const auto request = a.BeginRound();
    b.BeginRound();
    auto reply = b.HandleMessage(request);
    benchmark::DoNotOptimize(a.HandleReply(*reply));
    a.EndRound();
    b.EndRound();
  }
}
BENCHMARK(BM_AggregatorRoundTrip);

}  // namespace
}  // namespace dynagg

BENCHMARK_MAIN();
