// Fig 6 reproduction: bit-counter distribution of a fully converged
// Count-Sketch-Reset network.
//
// For each network size (1,000 / 10,000 / 100,000 hosts) the protocol runs
// to convergence under uniform push/pull gossip; the CDF of the counter
// values N[n][k] is then reported per bit index k, pooled over all hosts
// and bins. Expected shape (paper): the counter distribution shifts right
// roughly linearly in k and is essentially independent of the network size
// — the empirical basis for the size-agnostic cutoff f(k) = 7 + k/4.

#include <string>
#include <vector>

#include "agg/count_sketch_reset.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "env/uniform_env.h"
#include "sim/metrics.h"
#include "sim/population.h"
#include "sim/round_driver.h"

namespace dynagg {
namespace {

void RunOneSize(int n, int rounds, int max_counter, uint64_t seed,
                CsvTable* table) {
  const std::vector<int64_t> ones(n, 1);
  CsrParams params;
  // Measure raw counter propagation: disable the cutoff so the derived bits
  // play no role in the dynamics (they don't anyway; bits are read-only).
  params.cutoff_enabled = false;
  CsrSwarm swarm(ones, params);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(DeriveSeed(seed, n));
  for (int round = 0; round < rounds; ++round) {
    swarm.RunRound(env, pop, rng);
  }
  // Pool counters by level across all hosts and bins; report the CDF over
  // finite counters only (infinity = the level was never sourced).
  const int levels = params.levels;
  std::vector<std::vector<int64_t>> histograms(
      levels, std::vector<int64_t>(max_counter + 1, 0));
  std::vector<int64_t> finite_totals(levels, 0);
  for (HostId id = 0; id < n; ++id) {
    const CountSketchResetNode& node = swarm.node(id);
    for (int b = 0; b < params.bins; ++b) {
      for (int k = 0; k < levels; ++k) {
        const uint8_t c = node.counter(b, k);
        if (c == kCsrInfinity) continue;
        ++histograms[k][c <= max_counter ? c : max_counter];
        ++finite_totals[k];
      }
    }
  }
  for (int k = 0; k < levels; ++k) {
    // Skip levels that effectively never appear (deep tail).
    if (finite_totals[k] < n / 100 + 1) continue;
    int64_t cumulative = 0;
    for (int c = 0; c <= max_counter; ++c) {
      cumulative += histograms[k][c];
      table->AddRow({static_cast<double>(n), static_cast<double>(k),
                     static_cast<double>(c),
                     static_cast<double>(cumulative) /
                         static_cast<double>(finite_totals[k])});
    }
  }
}

}  // namespace
}  // namespace dynagg

int main(int argc, char** argv) {
  dynagg::bench::Flags flags(argc, argv);
  const int rounds = static_cast<int>(flags.Int("rounds", 40));
  const int max_counter = static_cast<int>(flags.Int("max_counter", 12));
  std::vector<int> sizes;
  if (flags.Int("hosts", 0) > 0) {
    sizes.push_back(static_cast<int>(flags.Int("hosts", 0)));
  } else {
    sizes = {1000, 10000, 100000};
  }
  dynagg::bench::PrintHeader(
      "Fig 6: bit counter distribution at convergence",
      {"one plot per network size; CDF of counter values per bit index",
       "rounds=" + std::to_string(rounds),
       "expected: distribution shifts right ~linearly in the bit index and "
       "is network-size independent (basis for f(k)=7+k/4)"});
  dynagg::CsvTable table({"hosts", "bit", "counter_value", "cdf"});
  for (const int n : sizes) {
    dynagg::RunOneSize(n, rounds, max_counter, flags.Int("seed", 20090404),
                       &table);
  }
  table.Print();
  return 0;
}
