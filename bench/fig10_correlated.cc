// Fig 10 reproduction: accuracy of dynamic averaging under CORRELATED
// failures.
//
// 100,000 hosts, values U[0,100), push/pull gossip. After 20 iterations the
// *highest-valued* half of the hosts fails, dropping the true average from
// 50 to ~25. Panel (a): basic Push-Sum-Revert, one series per lambda.
// Panel (b): the Full-Transfer optimization (4 parcels, window 3).
// Expected shape (paper): lambda = 0 never recovers (deviation climbs to
// ~25 and stays); larger lambdas recover faster but level off at a higher
// floor; Full-Transfer reaches much lower floors — sigma ~2.13 (8.5% of the
// new average) at lambda = 0.5 and ~0.694 (2.8%) at lambda = 0.1.

#include <string>
#include <vector>

#include "agg/full_transfer.h"
#include "agg/push_sum_revert.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "env/uniform_env.h"
#include "sim/failure.h"
#include "sim/metrics.h"
#include "sim/population.h"
#include "sim/round_driver.h"

namespace dynagg {
namespace {

template <typename Swarm>
void RunSeries(Swarm& swarm, const std::vector<double>& values, int n,
               int rounds, int fail_round, double lambda,
               const std::string& panel, uint64_t seed, CsvTable* table,
               double* final_rms) {
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(DeriveSeed(seed, 1));
  const FailurePlan failures =
      FailurePlan::KillTopFraction(values, fail_round, 0.5);
  RunRounds(swarm, env, pop, failures, rounds, rng, [&](int round) {
    const double truth = TrueAverage(values, pop);
    const double rms = RmsDeviationOverAlive(
        pop, truth, [&](HostId id) { return swarm.Estimate(id); });
    table->AddRow(
        {panel == "a" ? 0.0 : 1.0, static_cast<double>(round + 1), lambda,
         rms});
    *final_rms = rms;
  });
}

void Run(int n, int rounds, int fail_round, uint64_t seed) {
  const std::vector<double> values = bench::UniformValues(n, seed);
  const std::vector<double> lambdas = {0.0, 0.001, 0.01, 0.1, 0.5};
  CsvTable table({"panel_b", "iteration", "lambda", "stddev"});
  std::printf("# summary: converged stddev by configuration\n");
  for (const double lambda : lambdas) {
    PushSumRevertSwarm basic(
        values, {.lambda = lambda, .mode = GossipMode::kPushPull});
    double basic_final = 0.0;
    RunSeries(basic, values, n, rounds, fail_round, lambda, "a", seed,
              &table, &basic_final);
    FullTransferSwarm ft(values,
                         {.lambda = lambda, .parcels = 4, .window = 3});
    double ft_final = 0.0;
    RunSeries(ft, values, n, rounds, fail_round, lambda, "b", seed, &table,
              &ft_final);
    std::printf(
        "# lambda=%.4f basic_final_stddev=%.3f full_transfer_final_stddev="
        "%.3f (%.2f%% of post-failure average 25)\n",
        lambda, basic_final, ft_final, 100.0 * ft_final / 25.0);
  }
  table.Print();
}

}  // namespace
}  // namespace dynagg

int main(int argc, char** argv) {
  dynagg::bench::Flags flags(argc, argv);
  const int n = static_cast<int>(flags.Int("hosts", 100000));
  const int rounds = static_cast<int>(flags.Int("rounds", 60));
  const int fail_round = static_cast<int>(flags.Int("fail_round", 20));
  dynagg::bench::PrintHeader(
      "Fig 10: dynamic averaging under correlated failures",
      {"hosts=" + std::to_string(n) +
           " values=U[0,100); top-valued 50% removed at iteration " +
           std::to_string(fail_round),
       "panel_b=0: basic Push-Sum-Revert (push/pull)",
       "panel_b=1: Full-Transfer optimization (4 parcels, window 3)",
       "series: stddev from the live average, per lambda"});
  dynagg::Run(n, rounds, fail_round, flags.Int("seed", 20090402));
  return 0;
}
