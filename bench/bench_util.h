// Shared helpers for the figure/table reproduction harnesses.
//
// Every bench binary prints a commented header describing the experiment
// followed by the CSV series the paper plots. Flags use --key=value syntax;
// unknown flags abort so typos are caught.

#ifndef DYNAGG_BENCH_BENCH_UTIL_H_
#define DYNAGG_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "sim/workload.h"

namespace dynagg {
namespace bench {

/// Minimal --key=value flag parser.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
        std::exit(2);
      }
      const size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "1";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  int64_t Int(const std::string& key, int64_t def) const {
    const auto it = values_.find(key);
    return it == values_.end() ? def : std::stoll(it->second);
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Values drawn uniformly from [0, 100), the paper's default workload.
/// Delegates to the shared parity-critical definition in sim/workload.h.
inline std::vector<double> UniformValues(int n, uint64_t seed) {
  return UniformWorkloadValues(n, seed);
}

/// Prints "# " prefixed header lines (experiment provenance).
inline void PrintHeader(const std::string& title,
                        const std::vector<std::string>& lines) {
  std::printf("# %s\n", title.c_str());
  for (const auto& line : lines) std::printf("# %s\n", line.c_str());
}

}  // namespace bench
}  // namespace dynagg

#endif  // DYNAGG_BENCH_BENCH_UTIL_H_
