// Fig 8 reproduction: accuracy of dynamic averaging under UNCORRELATED
// failures.
//
// 100,000 hosts with values U[0,100) run push/pull Push-Sum-Revert; after 20
// iterations a random half of the hosts is removed. One series per reversion
// constant lambda in {0, 0.001, 0.01, 0.1, 0.5}. Expected shape (paper):
// no lambda shows a lasting error spike — random failures leave the average
// unchanged — while larger lambdas pay a standing bias floor.

#include <vector>

#include "agg/push_sum_revert.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "env/uniform_env.h"
#include "sim/failure.h"
#include "sim/metrics.h"
#include "sim/population.h"
#include "sim/round_driver.h"

namespace dynagg {
namespace {

void Run(int n, int rounds, int fail_round, uint64_t seed) {
  const std::vector<double> values = bench::UniformValues(n, seed);
  const std::vector<double> lambdas = {0.0, 0.001, 0.01, 0.1, 0.5};
  CsvTable table({"iteration", "lambda", "stddev"});
  for (const double lambda : lambdas) {
    PushSumRevertSwarm swarm(
        values, {.lambda = lambda, .mode = GossipMode::kPushPull});
    UniformEnvironment env(n);
    Population pop(n);
    Rng rng(DeriveSeed(seed, 1));
    Rng fail_rng(DeriveSeed(seed, 2));
    const FailurePlan failures =
        FailurePlan::KillRandomFraction(n, fail_round, 0.5, fail_rng);
    RunRounds(swarm, env, pop, failures, rounds, rng, [&](int round) {
      const double truth = TrueAverage(values, pop);
      const double rms = RmsDeviationOverAlive(
          pop, truth, [&](HostId id) { return swarm.Estimate(id); });
      table.AddRow({static_cast<double>(round + 1), lambda, rms});
    });
  }
  table.Print();
}

}  // namespace
}  // namespace dynagg

int main(int argc, char** argv) {
  dynagg::bench::Flags flags(argc, argv);
  const int n = static_cast<int>(flags.Int("hosts", 100000));
  const int rounds = static_cast<int>(flags.Int("rounds", 60));
  const int fail_round = static_cast<int>(flags.Int("fail_round", 20));
  dynagg::bench::PrintHeader(
      "Fig 8: dynamic averaging under uncorrelated failures",
      {"hosts=" + std::to_string(n) + " values=U[0,100) push/pull",
       "random 50% of hosts removed at iteration " +
           std::to_string(fail_round),
       "series: stddev of host estimates from the live average, per lambda"});
  dynagg::Run(n, rounds, fail_round, flags.Int("seed", 20090401));
  return 0;
}
