// Ablation: uniform vs spatial gossip (Section IV.A).
//
// Counting-sketch reset depends on the counter propagation age being
// bounded by a function linear in the bit index and independent of network
// size. Kempe, Kleinberg & Demers show spatial gossip with 1/d^2 multi-hop
// selection approximately preserves logarithmic propagation. This harness
// measures the per-bit counter quantiles on a grid versus uniform gossip:
// the growth should stay ~linear in k on the grid, just with a larger
// intercept/slope (hence the environment-specific cutoff).

#include <string>
#include <vector>

#include "agg/count_sketch_reset.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "env/spatial_env.h"
#include "env/uniform_env.h"
#include "sim/metrics.h"
#include "sim/population.h"

namespace dynagg {
namespace {

void CounterQuantiles(const CsrSwarm& swarm, int n, int env_id,
                      CsvTable* table) {
  const int levels = swarm.params().levels;
  for (int k = 0; k < levels; ++k) {
    Histogram hist(0, 64, 64);
    int64_t finite = 0;
    for (HostId id = 0; id < n; ++id) {
      const CountSketchResetNode& node = swarm.node(id);
      for (int b = 0; b < swarm.params().bins; ++b) {
        const uint8_t c = node.counter(b, k);
        if (c == kCsrInfinity) continue;
        hist.Add(c);
        ++finite;
      }
    }
    if (finite < n / 50 + 1) continue;
    table->AddRow({static_cast<double>(env_id), static_cast<double>(k),
                   hist.Quantile(0.5), hist.Quantile(0.95),
                   hist.Quantile(0.999)});
  }
}

void Run(int side, int rounds, uint64_t seed) {
  const int n = side * side;
  const std::vector<int64_t> ones(n, 1);
  CsrParams params;
  params.cutoff_enabled = false;  // observe raw propagation ages
  CsvTable table({"env", "bit", "p50", "p95", "p999"});

  {
    CsrSwarm swarm(ones, params);
    UniformEnvironment env(n);
    Population pop(n);
    Rng rng(DeriveSeed(seed, 1));
    for (int round = 0; round < rounds; ++round) {
      swarm.RunRound(env, pop, rng);
    }
    CounterQuantiles(swarm, n, /*env_id=*/0, &table);
  }
  {
    CsrSwarm swarm(ones, params);
    SpatialGridEnvironment env(side, side);
    Population pop(n);
    Rng rng(DeriveSeed(seed, 2));
    for (int round = 0; round < rounds; ++round) {
      swarm.RunRound(env, pop, rng);
    }
    CounterQuantiles(swarm, n, /*env_id=*/1, &table);
  }
  table.Print();
}

}  // namespace
}  // namespace dynagg

int main(int argc, char** argv) {
  dynagg::bench::Flags flags(argc, argv);
  const int side = static_cast<int>(flags.Int("side", 100));
  const int rounds = static_cast<int>(flags.Int("rounds", 120));
  dynagg::bench::PrintHeader(
      "Ablation: counter propagation age, uniform vs spatial gossip",
      {"grid " + std::to_string(side) + "x" + std::to_string(side) +
           " with 1/d^2 random-walk peering vs uniform, same host count",
       "env=0: uniform; env=1: spatial grid",
       "expected: quantiles grow ~linearly in the bit index in both "
       "environments; the grid needs a larger cutoff"});
  dynagg::Run(side, rounds, flags.Int("seed", 20090412));
  return 0;
}
