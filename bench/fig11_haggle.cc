// Fig 11 reproduction: dynamic averaging and dynamic size estimation over
// Haggle-style mobility traces.
//
// Three trace presets mirror the CRAWDAD cambridge/haggle datasets (9, 12
// and 41 devices; see DESIGN.md for the substitution). Devices gossip once
// every 30 simulated seconds with a random device in wireless range. Errors
// are measured hourly against each device's current *group* aggregate
// (connected component over edges seen in the last 10 minutes).
//
//   metric=avg: Push-Sum-Revert with lambda in {0, 0.001, 0.01}; series
//               labels 0/1/2. Expected: reversion beats the static protocol,
//               most visibly on the small-group dataset 1.
//   metric=size: Count-Sketch-Reset, 100 identifiers per device; reversion
//               off / on / slow (series 0/1/2). Expected: "on" tracks group
//               size within about half its value; "off" only grows.

#include <functional>
#include <string>
#include <vector>

#include "agg/count_sketch_reset.h"
#include "agg/push_sum_revert.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "env/connectivity.h"
#include "env/haggle_gen.h"
#include "env/trace_env.h"
#include "sim/metrics.h"
#include "sim/population.h"

namespace dynagg {
namespace {

struct HourlyRow {
  double hour;
  double avg_group_size;
  double stddev;
};

// Per-group true averages under the current labelling.
std::vector<double> GroupAverages(const std::vector<int>& labels,
                                  const std::vector<double>& values) {
  const std::vector<int> sizes = ComponentSizes(labels);
  std::vector<double> sums(sizes.size(), 0.0);
  for (size_t i = 0; i < labels.size(); ++i) sums[labels[i]] += values[i];
  std::vector<double> avgs(sizes.size(), 0.0);
  for (size_t g = 0; g < sizes.size(); ++g) {
    avgs[g] = sizes[g] > 0 ? sums[g] / sizes[g] : 0.0;
  }
  return avgs;
}

template <typename EstimateFn, typename TruthFn>
std::vector<HourlyRow> RunTraceSeries(const ContactTrace& trace,
                                      TraceEnvironment& env, Population& pop,
                                      Rng& rng,
                                      const std::function<void()>& round_fn,
                                      const TruthFn& truth_of,
                                      const EstimateFn& estimate_of) {
  std::vector<HourlyRow> rows;
  const SimTime period = FromSeconds(30);
  int round = 0;
  for (SimTime t = period; t <= trace.end_time(); t += period, ++round) {
    env.AdvanceTo(t);
    round_fn();
    if ((round + 1) % 120 != 0) continue;  // hourly samples
    DeviationStat dev;
    for (const HostId id : pop.alive_ids()) {
      dev.Add(estimate_of(id), truth_of(id));
    }
    rows.push_back(HourlyRow{ToHours(t), env.AverageGroupSize(), dev.rms()});
  }
  return rows;
}

void RunDataset(int dataset_id, const HaggleGenParams& params, uint64_t seed,
                CsvTable* table) {
  const ContactTrace trace = GenerateHaggleTrace(params);
  const int n = trace.num_devices();
  const std::vector<double> values = bench::UniformValues(n, seed);

  // --- Dynamic average: lambda sweep -------------------------------------
  const std::vector<double> lambdas = {0.0, 0.001, 0.01};
  for (size_t series = 0; series < lambdas.size(); ++series) {
    TraceEnvironment env(trace);
    Population pop(n);
    PushSumRevertSwarm swarm(values, {.lambda = lambdas[series],
                                      .mode = GossipMode::kPushPull});
    Rng rng(DeriveSeed(seed, 10 + series));
    std::vector<int> labels;
    std::vector<double> truths;
    const auto rows = RunTraceSeries(
        trace, env, pop, rng,
        [&] {
          swarm.RunRound(env, pop, rng);
          labels = env.CurrentGroups();
          truths = GroupAverages(labels, values);
        },
        [&](HostId id) { return truths[labels[id]]; },
        [&](HostId id) { return swarm.Estimate(id); });
    for (const HourlyRow& row : rows) {
      table->AddRow({static_cast<double>(dataset_id), 0.0,
                     static_cast<double>(series), row.hour,
                     row.avg_group_size, row.stddev});
    }
  }

  // --- Dynamic size: reversion off / on / slow ----------------------------
  const int64_t kIdsPerDevice = 100;
  for (int series = 0; series < 3; ++series) {
    CsrParams csr;
    if (series == 0) {
      csr.cutoff_enabled = false;  // reversion off
    } else if (series == 2) {
      csr.cutoff_base = 20.0;  // reversion slow
      csr.cutoff_slope = 0.5;
    }
    TraceEnvironment env(trace);
    Population pop(n);
    CsrSwarm swarm(std::vector<int64_t>(n, kIdsPerDevice), csr);
    Rng rng(DeriveSeed(seed, 20 + series));
    std::vector<int> labels;
    std::vector<int> sizes;
    const auto rows = RunTraceSeries(
        trace, env, pop, rng,
        [&] {
          swarm.RunRound(env, pop, rng);
          labels = env.CurrentGroups();
          sizes = ComponentSizes(labels);
        },
        [&](HostId id) { return static_cast<double>(sizes[labels[id]]); },
        [&](HostId id) {
          return swarm.EstimateCount(id) /
                 static_cast<double>(kIdsPerDevice);
        });
    for (const HourlyRow& row : rows) {
      table->AddRow({static_cast<double>(dataset_id), 1.0,
                     static_cast<double>(series), row.hour,
                     row.avg_group_size, row.stddev});
    }
  }
}

}  // namespace
}  // namespace dynagg

int main(int argc, char** argv) {
  dynagg::bench::Flags flags(argc, argv);
  const uint64_t seed = flags.Int("seed", 20090405);
  dynagg::bench::PrintHeader(
      "Fig 11: dynamic averaging and size estimation on Haggle-style traces",
      {"metric=0: dynamic average, series 0/1/2 = lambda 0 / 0.001 / 0.01",
       "metric=1: dynamic size (100 ids/device), series 0/1/2 = reversion "
       "off / on / slow",
       "stddev is relative to each device's current group aggregate",
       "avg_group_size reproduces the figure's right-hand axis"});
  dynagg::CsvTable table(
      {"dataset", "metric", "series", "hour", "avg_group_size", "stddev"});
  const int only = static_cast<int>(flags.Int("dataset", 0));
  if (only == 0 || only == 1) {
    dynagg::RunDataset(1, dynagg::HaggleDataset1(), seed, &table);
  }
  if (only == 0 || only == 2) {
    dynagg::RunDataset(2, dynagg::HaggleDataset2(), seed, &table);
  }
  if (only == 0 || only == 3) {
    dynagg::RunDataset(3, dynagg::HaggleDataset3(), seed, &table);
  }
  table.Print();
  return 0;
}
