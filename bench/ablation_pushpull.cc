// Ablation: push vs push/pull gossip.
//
// Karp et al.'s observation (Section III.A): once information is
// widespread, pull outperforms push; "the initial convergence time of
// Push-Sum is nearly halved under uniform gossip when it applies a pushpull
// gossip model". This harness compares rounds-to-convergence for both modes
// of Push-Sum and Push-Sum-Revert across network sizes, plus the
// reconvergence time after a correlated failure.

#include <string>
#include <vector>

#include "agg/push_sum.h"
#include "agg/push_sum_revert.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "env/uniform_env.h"
#include "sim/failure.h"
#include "sim/metrics.h"
#include "sim/population.h"
#include "sim/round_driver.h"

namespace dynagg {
namespace {

int RoundsToConverge(int n, GossipMode mode, uint64_t seed) {
  const std::vector<double> values = bench::UniformValues(n, seed);
  PushSumSwarm swarm(values, mode);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(DeriveSeed(seed, 1));
  const double truth = TrueAverage(values, pop);
  for (int round = 0; round < 200; ++round) {
    swarm.RunRound(env, pop, rng);
    const double rms = RmsDeviationOverAlive(
        pop, truth, [&](HostId id) { return swarm.Estimate(id); });
    if (rms < 1.0) return round + 1;
  }
  return -1;
}

int RoundsToRecover(int n, GossipMode mode, uint64_t seed) {
  const std::vector<double> values = bench::UniformValues(n, seed);
  PushSumRevertSwarm swarm(values, {.lambda = 0.1, .mode = mode});
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(DeriveSeed(seed, 2));
  const FailurePlan failures = FailurePlan::KillTopFraction(values, 20, 0.5);
  std::vector<double> post;
  RunRounds(swarm, env, pop, failures, 120, rng, [&](int round) {
    if (round < 20) return;
    post.push_back(RmsDeviationOverAlive(
        pop, TrueAverage(values, pop),
        [&](HostId id) { return swarm.Estimate(id); }));
  });
  return FirstSustainedBelow(post, 1.5 * post.back() + 0.25);
}

}  // namespace
}  // namespace dynagg

int main(int argc, char** argv) {
  dynagg::bench::Flags flags(argc, argv);
  const uint64_t seed = flags.Int("seed", 20090411);
  dynagg::bench::PrintHeader(
      "Ablation: push vs push/pull gossip",
      {"converge: rounds until Push-Sum RMS < 1% of range",
       "recover: rounds after a correlated 50% failure until "
       "Push-Sum-Revert (lambda=0.1) is back at its floor",
       "expected: push/pull roughly halves both"});
  dynagg::CsvTable table({"hosts", "push_converge", "pushpull_converge",
                          "push_recover", "pushpull_recover"});
  std::vector<int> sizes = {1000, 10000, 50000};
  if (flags.Int("hosts", 0) > 0) {
    sizes = {static_cast<int>(flags.Int("hosts", 0))};
  }
  for (const int n : sizes) {
    table.AddRow(
        {static_cast<double>(n),
         static_cast<double>(
             dynagg::RoundsToConverge(n, dynagg::GossipMode::kPush, seed)),
         static_cast<double>(dynagg::RoundsToConverge(
             n, dynagg::GossipMode::kPushPull, seed)),
         static_cast<double>(
             dynagg::RoundsToRecover(n, dynagg::GossipMode::kPush, seed)),
         static_cast<double>(dynagg::RoundsToRecover(
             n, dynagg::GossipMode::kPushPull, seed))});
  }
  table.Print();
  return 0;
}
