// Ablation: Full-Transfer parcel count N and estimate window T.
//
// Section III.A motivates splitting the exported mass into N parcels (so a
// host is unlikely to receive nothing) and averaging the last T mass-bearing
// rounds (reducing variance at the cost of reaction time). This harness
// sweeps both knobs around the paper's operating point (N=4, T=3) under the
// Fig 10b workload and reports the converged floor and recovery time.

#include <vector>

#include "agg/full_transfer.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "env/uniform_env.h"
#include "sim/failure.h"
#include "sim/metrics.h"
#include "sim/population.h"
#include "sim/round_driver.h"

namespace dynagg {
namespace {

void Run(int n, uint64_t seed) {
  const std::vector<double> values = bench::UniformValues(n, seed);
  CsvTable table(
      {"parcels", "window", "final_stddev", "rounds_to_recover"});
  for (const int parcels : {1, 2, 4, 8}) {
    for (const int window : {1, 3, 6, 12}) {
      FullTransferSwarm swarm(
          values, {.lambda = 0.1, .parcels = parcels, .window = window});
      UniformEnvironment env(n);
      Population pop(n);
      Rng rng(DeriveSeed(seed, parcels * 100 + window));
      const FailurePlan failures =
          FailurePlan::KillTopFraction(values, 20, 0.5);
      std::vector<double> series;
      RunRounds(swarm, env, pop, failures, 90, rng, [&](int) {
        series.push_back(RmsDeviationOverAlive(
            pop, TrueAverage(values, pop),
            [&](HostId id) { return swarm.Estimate(id); }));
      });
      const double floor = series.back();
      // Recovery: first sustained entry into 2x the final floor, counted
      // from the failure round.
      const std::vector<double> post(series.begin() + 20, series.end());
      const int rec = FirstSustainedBelow(post, 2.0 * floor + 0.25);
      table.AddRow({static_cast<double>(parcels),
                    static_cast<double>(window), floor,
                    static_cast<double>(rec)});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace dynagg

int main(int argc, char** argv) {
  dynagg::bench::Flags flags(argc, argv);
  const int n = static_cast<int>(flags.Int("hosts", 20000));
  dynagg::bench::PrintHeader(
      "Ablation: Full-Transfer parcels x window",
      {"hosts=" + std::to_string(n) +
           " lambda=0.1; top-valued 50% removed at round 20",
       "paper operating point: parcels=4 window=3",
       "expected: window lowers the floor but slows recovery; parcels "
       "matter most at window=1"});
  dynagg::Run(n, flags.Int("seed", 20090408));
  return 0;
}
