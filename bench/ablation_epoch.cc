// Ablation: epoch-reset aggregation vs Push-Sum-Revert (Section II.C).
//
// Epoch-based dynamic aggregation resets the static protocol periodically.
// Its two failure modes, per the paper: (1) the optimal epoch length is
// tied to the (unknown) network size — too short never converges, too long
// is stale; (2) clock skew between cliques disrupts the computation as
// hosts migrate. This harness sweeps the epoch length with and without
// phase skew and compares the time-averaged error against Push-Sum-Revert
// under the same correlated-failure workload.

#include <string>
#include <vector>

#include "agg/epoch_push_sum.h"
#include "agg/push_sum_revert.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "env/uniform_env.h"
#include "sim/failure.h"
#include "sim/metrics.h"
#include "sim/population.h"
#include "sim/round_driver.h"

namespace dynagg {
namespace {

// Time-averaged RMS deviation over the run's second half (steady state).
template <typename Swarm>
double SteadyError(Swarm& swarm, const std::vector<double>& values, int n,
                   int rounds, uint64_t seed) {
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(DeriveSeed(seed, 3));
  const FailurePlan failures =
      FailurePlan::KillTopFraction(values, rounds / 2, 0.5);
  RunningStat tail;
  RunRounds(swarm, env, pop, failures, rounds, rng, [&](int round) {
    if (round < rounds / 2 + 10) return;  // skip the recovery transient
    tail.Add(RmsDeviationOverAlive(
        pop, TrueAverage(values, pop),
        [&](HostId id) { return swarm.Estimate(id); }));
  });
  return tail.mean();
}

void Run(int n, uint64_t seed) {
  const std::vector<double> values = bench::UniformValues(n, seed);
  const int rounds = 120;
  CsvTable table({"protocol", "epoch_length", "skewed", "steady_rms"});

  // protocol 0: epoch resets, synchronized and skewed clocks.
  for (const int epoch_length : {4, 8, 16, 32, 64}) {
    for (const bool skewed : {false, true}) {
      std::vector<int> phases(n, 0);
      if (skewed) {
        Rng prng(DeriveSeed(seed, 4));
        for (auto& p : phases) {
          p = static_cast<int>(prng.UniformInt(epoch_length));
        }
      }
      EpochPushSumSwarm swarm(values, {.epoch_length = epoch_length},
                              phases);
      table.AddRow({0.0, static_cast<double>(epoch_length),
                    skewed ? 1.0 : 0.0,
                    SteadyError(swarm, values, n, rounds, seed)});
    }
  }
  // protocol 1: Push-Sum-Revert reference points.
  for (const double lambda : {0.01, 0.1}) {
    PushSumRevertSwarm swarm(
        values, {.lambda = lambda, .mode = GossipMode::kPushPull});
    table.AddRow({1.0, lambda, 0.0,
                  SteadyError(swarm, values, n, rounds, seed)});
  }
  table.Print();
}

}  // namespace
}  // namespace dynagg

int main(int argc, char** argv) {
  dynagg::bench::Flags flags(argc, argv);
  const int n = static_cast<int>(flags.Int("hosts", 10000));
  dynagg::bench::PrintHeader(
      "Ablation: epoch-reset aggregation vs Push-Sum-Revert",
      {"hosts=" + std::to_string(n) +
           "; top-valued 50% removed mid-run; steady-state RMS after "
           "recovery",
       "protocol=0: epoch resets (epoch_length column; skewed=1 adds "
       "random clock phases)",
       "protocol=1: Push-Sum-Revert (column holds lambda)",
       "expected: short epochs never converge, skew hurts long epochs, "
       "reversion needs no tuning to network size"});
  dynagg::Run(n, flags.Int("seed", 20090413));
  return 0;
}
