// Fig 9 reproduction: accuracy of dynamic counting under failure.
//
// 100,000 hosts each register the value 1; after 20 gossip rounds half the
// hosts are removed. Two series: Count-Sketch-Reset with propagation
// limiting ON (cutoff f(k) = 7 + k/4) and OFF (naive sketch counting, bits
// never expire). Expected shape (paper): both series converge from ~n
// deviation towards 0; after the failure the naive protocol's deviation
// jumps to ~n/2 and never recovers, while the limited protocol reverts to
// its pre-failure accuracy within ~10 rounds.

#include <string>
#include <vector>

#include "agg/count_sketch_reset.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "env/uniform_env.h"
#include "sim/failure.h"
#include "sim/metrics.h"
#include "sim/population.h"
#include "sim/round_driver.h"

namespace dynagg {
namespace {

void Run(int n, int rounds, int fail_round, uint64_t seed) {
  const std::vector<int64_t> ones(n, 1);
  CsvTable table({"iteration", "limiting", "stddev"});
  for (const bool limiting : {true, false}) {
    CsrParams params;
    params.cutoff_enabled = limiting;
    CsrSwarm swarm(ones, params);
    UniformEnvironment env(n);
    Population pop(n);
    Rng rng(DeriveSeed(seed, 1));
    Rng fail_rng(DeriveSeed(seed, 2));
    const FailurePlan failures =
        FailurePlan::KillRandomFraction(n, fail_round, 0.5, fail_rng);
    RunRounds(swarm, env, pop, failures, rounds, rng, [&](int round) {
      const double truth = pop.num_alive();
      const double rms = RmsDeviationOverAlive(
          pop, truth, [&](HostId id) { return swarm.EstimateCount(id); });
      table.AddRow(
          {static_cast<double>(round + 1), limiting ? 1.0 : 0.0, rms});
    });
  }
  table.Print();
}

}  // namespace
}  // namespace dynagg

int main(int argc, char** argv) {
  dynagg::bench::Flags flags(argc, argv);
  const int n = static_cast<int>(flags.Int("hosts", 100000));
  const int rounds = static_cast<int>(flags.Int("rounds", 40));
  const int fail_round = static_cast<int>(flags.Int("fail_round", 20));
  dynagg::bench::PrintHeader(
      "Fig 9: dynamic counting under failure",
      {"hosts=" + std::to_string(n) +
           ", each of value 1; random 50% removed at round " +
           std::to_string(fail_round),
       "limiting=1: Count-Sketch-Reset with cutoff f(k)=7+k/4",
       "limiting=0: naive sketch counting (bits never expire)",
       "series: stddev of the count estimate from the live host count"});
  dynagg::Run(n, rounds, fail_round, flags.Int("seed", 20090403));
  return 0;
}
