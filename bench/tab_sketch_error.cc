// In-text sketch-accuracy table.
//
// The evaluation uses 64 sketch buckets "for an expected error of 9.7%"
// (Flajolet & Martin's m-bin stochastic averaging). This harness
// Monte-Carlo-estimates the relative error of the FM estimator as a
// function of the bucket count, validating that the 64-bucket setting used
// throughout the figures indeed lands near the quoted accuracy.

#include <cmath>
#include <string>
#include <vector>

#include "agg/fm_sketch.h"
#include "bench/bench_util.h"
#include "common/hash.h"
#include "common/stats.h"

namespace dynagg {
namespace {

void Run(int trials, int true_count, uint64_t seed) {
  CsvTable table({"buckets", "mean_rel_error", "rms_rel_error", "bias"});
  for (const int buckets : {8, 16, 32, 64, 128, 256}) {
    RunningStat rel_error;
    RunningStat signed_error;
    for (int trial = 0; trial < trials; ++trial) {
      FmSketch sketch(buckets, 32);
      const uint64_t trial_seed = DeriveSeed(seed, trial * 1000 + buckets);
      for (int i = 0; i < true_count; ++i) {
        sketch.InsertObject(HashCombine(trial_seed, i), trial_seed);
      }
      const double rel =
          (sketch.EstimateCount() - true_count) / true_count;
      rel_error.Add(std::abs(rel));
      signed_error.Add(rel);
    }
    table.AddRow({static_cast<double>(buckets), rel_error.mean(),
                  std::sqrt(rel_error.mean() * rel_error.mean() +
                            rel_error.variance()),
                  signed_error.mean()});
  }
  table.Print();
}

}  // namespace
}  // namespace dynagg

int main(int argc, char** argv) {
  dynagg::bench::Flags flags(argc, argv);
  const int trials = static_cast<int>(flags.Int("trials", 200));
  const int count = static_cast<int>(flags.Int("count", 20000));
  dynagg::bench::PrintHeader(
      "Table: FM sketch relative error vs bucket count",
      {"trials=" + std::to_string(trials) +
           " objects=" + std::to_string(count),
       "paper setting: 64 buckets for an expected error of ~9.7%"});
  dynagg::Run(trials, count, flags.Int("seed", 20090407));
  return 0;
}
