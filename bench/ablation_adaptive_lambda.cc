// Ablation: fixed vs adaptive (indegree-proportional) reversion.
//
// Section III.A: "Rather than adding a fixed lambda factor of its initial
// mass, a host adds lambda/2 for every message it receives including the
// one it sends to itself", which approximately halves reconvergence after
// failure at an equal error floor (or allows a lower lambda at equal
// speed). This harness measures both reconvergence time and floor for the
// two revert modes across lambdas under the correlated-failure workload.

#include <string>
#include <vector>

#include "agg/push_sum_revert.h"
#include "bench/bench_util.h"
#include "common/stats.h"
#include "env/uniform_env.h"
#include "sim/failure.h"
#include "sim/metrics.h"
#include "sim/population.h"
#include "sim/round_driver.h"

namespace dynagg {
namespace {

void Run(int n, uint64_t seed) {
  const std::vector<double> values = bench::UniformValues(n, seed);
  CsvTable table({"lambda", "adaptive", "final_stddev",
                  "rounds_to_recover"});
  for (const double lambda : {0.01, 0.05, 0.1, 0.25}) {
    for (const bool adaptive : {false, true}) {
      PushSumRevertSwarm swarm(
          values,
          {.lambda = lambda,
           .mode = GossipMode::kPush,
           .revert = adaptive ? RevertMode::kAdaptive : RevertMode::kFixed});
      UniformEnvironment env(n);
      Population pop(n);
      Rng rng(DeriveSeed(seed, static_cast<uint64_t>(lambda * 1e4) +
                                   (adaptive ? 1 : 0)));
      const FailurePlan failures =
          FailurePlan::KillTopFraction(values, 20, 0.5);
      std::vector<double> series;
      RunRounds(swarm, env, pop, failures, 140, rng, [&](int) {
        series.push_back(RmsDeviationOverAlive(
            pop, TrueAverage(values, pop),
            [&](HostId id) { return swarm.Estimate(id); }));
      });
      const double floor = series.back();
      const std::vector<double> post(series.begin() + 20, series.end());
      const int rec = FirstSustainedBelow(post, 1.5 * floor + 0.25);
      table.AddRow({lambda, adaptive ? 1.0 : 0.0, floor,
                    static_cast<double>(rec)});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace dynagg

int main(int argc, char** argv) {
  dynagg::bench::Flags flags(argc, argv);
  const int n = static_cast<int>(flags.Int("hosts", 20000));
  dynagg::bench::PrintHeader(
      "Ablation: fixed vs adaptive reversion (push gossip)",
      {"hosts=" + std::to_string(n) +
           "; top-valued 50% removed at round 20",
       "expected: adaptive recovers faster at comparable floors "
       "(effective lambda doubles for high-indegree hosts)"});
  dynagg::Run(n, flags.Int("seed", 20090409));
  return 0;
}
