// Scale-rung smoke tests (ctest label: scale).
//
// The checked-in scale_1m / scale_10m scenario specs are the top rungs of
// the perf trajectory; a full execution belongs to tools/bench.sh, not to
// every ctest run. What CI must still catch cheaply:
//   - the specs parse and pass ValidateExperiment (the --dry-run contract),
//     with the shape the snapshot assumes (hosts, thread sweep);
//   - a downsized execution of the same spec shape runs end-to-end through
//     the executor and is bit-identical across the thread sweep, with the
//     worker pool forced onto the sharded path.
// These run in the plain suite too (they finish in well under a second);
// the `scale` label lets the Release CI lane and humans invoke exactly
// this slice with `ctest -L scale`.

#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "scenario/executor.h"
#include "scenario/spec.h"
#include "sim/worker_pool.h"

namespace dynagg {
namespace scenario {
namespace {

std::string ReadRepoFile(const std::string& relative) {
  const std::string path = std::string(DYNAGG_SOURCE_DIR) + "/" + relative;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

ScenarioSpec MustParseRepoScenario(const std::string& relative) {
  const auto specs = ParseScenarioFile(ReadRepoFile(relative));
  EXPECT_TRUE(specs.ok()) << specs.status().ToString();
  EXPECT_EQ(specs->size(), 1u);
  return (*specs)[0];
}

class ScopedVisibleCpus {
 public:
  explicit ScopedVisibleCpus(int n) { WorkerPool::OverrideVisibleCpusForTest(n); }
  ~ScopedVisibleCpus() { WorkerPool::OverrideVisibleCpusForTest(0); }
};

TEST(ScaleSmokeTest, Scale1mSpecDryRunValidates) {
  const ScenarioSpec spec =
      MustParseRepoScenario("bench/scenarios/scale_1m.scenario");
  EXPECT_EQ(spec.hosts, 1000000);
  EXPECT_EQ(spec.sweep_key, "intra_round_threads");
  EXPECT_GE(spec.sweep_values.size(), 2u) << "1-thread baseline plus at "
                                             "least one multi-thread point";
  const Status st = ValidateExperiment(spec);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(ScaleSmokeTest, Scale10mSpecDryRunValidates) {
  const ScenarioSpec spec =
      MustParseRepoScenario("bench/scenarios/scale_10m.scenario");
  EXPECT_EQ(spec.hosts, 10000000);
  EXPECT_EQ(spec.sweep_key, "intra_round_threads");
  const Status st = ValidateExperiment(spec);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(ScaleSmokeTest, DownsizedScale1mExecutesThreadCountInvariant) {
  // Same spec, 50x smaller population (still above the kernel's 4096-slot
  // parallel gate) so the executed shape — push-mode push-sum, uniform
  // env, intra_round_threads sweep — is exercised end-to-end on every
  // ctest run without the 64 MB working set.
  const ScopedVisibleCpus forced(4);
  ScenarioSpec spec = MustParseRepoScenario("bench/scenarios/scale_1m.scenario");
  spec.hosts = 20000;
  const auto tables = RunExperiment(spec, 1);
  ASSERT_TRUE(tables.ok()) << tables.status().ToString();
  ASSERT_EQ(tables->size(), 1u);
  const CsvTable& table = (*tables)[0].table;
  ASSERT_EQ(table.num_rows(),
            static_cast<int64_t>(spec.sweep_values.size()));
  // The recorded metric is in the last column; the scatter thread count
  // must be invisible in it (bit-identical, not approximately equal).
  const size_t metric = table.columns().size() - 1;
  const double baseline = table.row(0)[metric];
  EXPECT_TRUE(std::isfinite(baseline));
  EXPECT_GT(baseline, 0.0);
  for (int64_t r = 1; r < table.num_rows(); ++r) {
    EXPECT_EQ(table.row(r)[metric], baseline) << "sweep row " << r;
  }
}

}  // namespace
}  // namespace scenario
}  // namespace dynagg
