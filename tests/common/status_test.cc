#include "common/status.h"

#include <string>
#include <utility>

#include <gtest/gtest.h>

namespace dynagg {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad lambda");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad lambda");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad lambda");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Corruption("a"));
}

TEST(StatusCodeNameTest, Names) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string(1000, 'x'));
  ASSERT_TRUE(r.ok());
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved.size(), 1000u);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

namespace helpers {

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  DYNAGG_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

Result<int> Doubled(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return 2 * x;
}

Result<int> ChainedResult(int x) {
  DYNAGG_ASSIGN_OR_RETURN(const int d, Doubled(x));
  return d + 1;
}

// Two unwraps in one scope: the macro's temporaries must not collide.
Result<int> DoubleChainedResult(int x) {
  DYNAGG_ASSIGN_OR_RETURN(const int a, Doubled(x));
  DYNAGG_ASSIGN_OR_RETURN(const int b, Doubled(a));
  return a + b;
}

}  // namespace helpers

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(helpers::Chained(1).ok());
  EXPECT_EQ(helpers::Chained(-1).code(), StatusCode::kInvalidArgument);
}

TEST(StatusMacroTest, AssignOrReturnPropagates) {
  const Result<int> ok = helpers::ChainedResult(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 21);
  const Result<int> err = helpers::ChainedResult(-1);
  EXPECT_FALSE(err.ok());
}

TEST(StatusMacroTest, AssignOrReturnTwiceInOneScope) {
  const Result<int> ok = helpers::DoubleChainedResult(3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 6 + 12);
  EXPECT_FALSE(helpers::DoubleChainedResult(-1).ok());
}

}  // namespace
}  // namespace dynagg
