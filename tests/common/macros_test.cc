#include "common/macros.h"

#include <gtest/gtest.h>

namespace dynagg {
namespace {

TEST(CheckMacroTest, PassingChecksAreSilent) {
  DYNAGG_CHECK(true);
  DYNAGG_CHECK_EQ(1, 1);
  DYNAGG_CHECK_NE(1, 2);
  DYNAGG_CHECK_LT(1, 2);
  DYNAGG_CHECK_LE(2, 2);
  DYNAGG_CHECK_GT(3, 2);
  DYNAGG_CHECK_GE(3, 3);
  SUCCEED();
}

using CheckMacroDeathTest = ::testing::Test;

TEST(CheckMacroDeathTest, FailingCheckAborts) {
  EXPECT_DEATH({ DYNAGG_CHECK(1 == 2); }, "DYNAGG_CHECK failed");
}

TEST(CheckMacroDeathTest, FailingCheckOpAbortsWithOperands) {
  EXPECT_DEATH({ DYNAGG_CHECK_EQ(1, 2); }, "1 == 2");
  EXPECT_DEATH({ DYNAGG_CHECK_LT(5, 3); }, "5 < 3");
}

TEST(CheckMacroDeathTest, CheckEvaluatesConditionExactlyOnce) {
  int calls = 0;
  auto increment = [&calls]() {
    ++calls;
    return true;
  };
  DYNAGG_CHECK(increment());
  EXPECT_EQ(calls, 1);
}

TEST(DCheckMacroTest, CompilesInBothModes) {
  // In optimized builds DYNAGG_DCHECK is a no-op; in debug it checks. Either
  // way a passing condition is silent.
  DYNAGG_DCHECK(true);
  SUCCEED();
}

}  // namespace
}  // namespace dynagg
