#include "common/types.h"

#include <gtest/gtest.h>

namespace dynagg {
namespace {

TEST(SimTimeTest, ConversionConstants) {
  EXPECT_EQ(FromMicros(1), 1);
  EXPECT_EQ(FromMillis(1), 1000);
  EXPECT_EQ(FromSeconds(1.0), 1000000);
  EXPECT_EQ(FromMinutes(1.0), 60000000);
  EXPECT_EQ(FromHours(1.0), 3600000000LL);
}

TEST(SimTimeTest, RoundTrips) {
  EXPECT_DOUBLE_EQ(ToSeconds(FromSeconds(12.5)), 12.5);
  EXPECT_DOUBLE_EQ(ToMinutes(FromMinutes(3.25)), 3.25);
  EXPECT_DOUBLE_EQ(ToHours(FromHours(90.0)), 90.0);
}

TEST(SimTimeTest, FractionalSeconds) {
  EXPECT_EQ(FromSeconds(0.5), 500000);
  EXPECT_EQ(FromSeconds(1e-6), 1);
}

TEST(SimTimeTest, CrossUnitConsistency) {
  EXPECT_EQ(FromMinutes(60.0), FromHours(1.0));
  EXPECT_EQ(FromSeconds(60.0), FromMinutes(1.0));
  EXPECT_DOUBLE_EQ(ToHours(FromMinutes(90.0)), 1.5);
}

TEST(SimTimeTest, HostConstants) {
  EXPECT_EQ(kInvalidHost, -1);
  EXPECT_GT(kSimTimeMax, FromHours(1e9));
}

}  // namespace
}  // namespace dynagg
