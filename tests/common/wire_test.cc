#include "common/wire.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dynagg {
namespace {

TEST(WireTest, FixedWidthRoundTrip) {
  BufWriter w;
  w.PutU8(0xab);
  w.PutU16(0x1234);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefull);
  w.PutDouble(3.14159);

  BufReader r(w.buffer());
  uint8_t u8 = 0;
  uint16_t u16 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  double d = 0.0;
  ASSERT_TRUE(r.ReadU8(&u8).ok());
  ASSERT_TRUE(r.ReadU16(&u16).ok());
  ASSERT_TRUE(r.ReadU32(&u32).ok());
  ASSERT_TRUE(r.ReadU64(&u64).ok());
  ASSERT_TRUE(r.ReadDouble(&d).ok());
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u16, 0x1234);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefull);
  EXPECT_DOUBLE_EQ(d, 3.14159);
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireTest, VarintBoundaries) {
  const uint64_t cases[] = {0,
                            1,
                            127,
                            128,
                            16383,
                            16384,
                            (1ull << 32) - 1,
                            1ull << 32,
                            std::numeric_limits<uint64_t>::max()};
  BufWriter w;
  for (const uint64_t v : cases) w.PutVarint(v);
  BufReader r(w.buffer());
  for (const uint64_t v : cases) {
    uint64_t out = 0;
    ASSERT_TRUE(r.ReadVarint(&out).ok());
    EXPECT_EQ(out, v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireTest, VarintCompactness) {
  BufWriter w;
  w.PutVarint(5);
  EXPECT_EQ(w.size(), 1u);
  w.Clear();
  w.PutVarint(300);
  EXPECT_EQ(w.size(), 2u);
}

TEST(WireTest, SignedVarintRoundTrip) {
  const int64_t cases[] = {0,
                           -1,
                           1,
                           -64,
                           63,
                           -1000000,
                           1000000,
                           std::numeric_limits<int64_t>::min(),
                           std::numeric_limits<int64_t>::max()};
  BufWriter w;
  for (const int64_t v : cases) w.PutVarintSigned(v);
  BufReader r(w.buffer());
  for (const int64_t v : cases) {
    int64_t out = 0;
    ASSERT_TRUE(r.ReadVarintSigned(&out).ok());
    EXPECT_EQ(out, v);
  }
}

TEST(WireTest, ZigZag) {
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
  for (int64_t v : {int64_t{-5}, int64_t{0}, int64_t{12345},
                    std::numeric_limits<int64_t>::min()}) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
}

TEST(WireTest, BytesRoundTrip) {
  BufWriter w;
  w.PutBytes("hello");
  w.PutBytes("");
  w.PutBytes(std::string(1000, 'z'));
  BufReader r(w.buffer());
  std::vector<uint8_t> out;
  ASSERT_TRUE(r.ReadBytes(&out).ok());
  EXPECT_EQ(std::string(out.begin(), out.end()), "hello");
  ASSERT_TRUE(r.ReadBytes(&out).ok());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(r.ReadBytes(&out).ok());
  EXPECT_EQ(out.size(), 1000u);
}

TEST(WireTest, TruncatedFixedFails) {
  BufWriter w;
  w.PutU8(1);
  BufReader r(w.buffer());
  uint32_t out;
  EXPECT_EQ(r.ReadU32(&out).code(), StatusCode::kCorruption);
}

TEST(WireTest, TruncatedVarintFails) {
  const uint8_t bytes[] = {0x80, 0x80};  // continuation bits, no terminator
  BufReader r(bytes, sizeof(bytes));
  uint64_t out;
  EXPECT_EQ(r.ReadVarint(&out).code(), StatusCode::kCorruption);
}

TEST(WireTest, OverlongVarintFails) {
  const uint8_t bytes[] = {0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
                           0xff, 0xff, 0xff, 0xff, 0xff, 0x01};
  BufReader r(bytes, sizeof(bytes));
  uint64_t out;
  EXPECT_EQ(r.ReadVarint(&out).code(), StatusCode::kCorruption);
}

TEST(WireTest, TruncatedBytesFails) {
  BufWriter w;
  w.PutVarint(100);  // claims 100 bytes follow
  w.PutU8(1);
  BufReader r(w.buffer());
  std::vector<uint8_t> out;
  EXPECT_EQ(r.ReadBytes(&out).code(), StatusCode::kCorruption);
}

TEST(WireTest, ReleaseEmptiesWriter) {
  BufWriter w;
  w.PutU32(7);
  const std::vector<uint8_t> bytes = w.Release();
  EXPECT_EQ(bytes.size(), 4u);
  EXPECT_EQ(w.size(), 0u);
}

TEST(WireTest, DoubleRoundTripSpecialValues) {
  const double cases[] = {0.0,
                          -0.0,
                          1.0,
                          -1.0,
                          3.141592653589793,
                          std::numeric_limits<double>::min(),
                          std::numeric_limits<double>::denorm_min(),
                          std::numeric_limits<double>::max(),
                          -std::numeric_limits<double>::max(),
                          std::numeric_limits<double>::infinity(),
                          -std::numeric_limits<double>::infinity(),
                          std::numeric_limits<double>::epsilon()};
  BufWriter w;
  for (const double v : cases) w.PutDouble(v);
  BufReader r(w.buffer());
  for (const double v : cases) {
    double out = 0;
    ASSERT_TRUE(r.ReadDouble(&out).ok());
    // Bit-exact round trip, including the sign of -0.0.
    uint64_t expect_bits, got_bits;
    std::memcpy(&expect_bits, &v, sizeof(v));
    std::memcpy(&got_bits, &out, sizeof(out));
    EXPECT_EQ(got_bits, expect_bits);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireTest, NanRoundTripsAsNan) {
  BufWriter w;
  w.PutDouble(std::numeric_limits<double>::quiet_NaN());
  BufReader r(w.buffer());
  double out = 0;
  ASSERT_TRUE(r.ReadDouble(&out).ok());
  EXPECT_TRUE(std::isnan(out));
}

TEST(WireTest, RandomizedDoubleRoundTrip) {
  Rng rng(2026);
  BufWriter w;
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble(-1e12, 1e12);
    values.push_back(v);
    w.PutDouble(v);
  }
  BufReader r(w.buffer());
  for (const double v : values) {
    double out = 0;
    ASSERT_TRUE(r.ReadDouble(&out).ok());
    EXPECT_EQ(out, v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireTest, TruncatedDoubleFailsAtEveryPrefixLength) {
  BufWriter w;
  w.PutDouble(2.718281828459045);
  const std::vector<uint8_t>& full = w.buffer();
  ASSERT_EQ(full.size(), sizeof(double));
  for (size_t len = 0; len < full.size(); ++len) {
    BufReader r(full.data(), len);
    double out = 0;
    EXPECT_EQ(r.ReadDouble(&out).code(), StatusCode::kCorruption)
        << "prefix length " << len;
    // A failed read must not consume input.
    EXPECT_EQ(r.remaining(), len);
  }
}

TEST(WireTest, TruncationSweepNeverCrashes) {
  // A realistic mixed message: every prefix of it must decode to a clean
  // Corruption (never a crash, never a bogus success of the full message).
  BufWriter w;
  w.PutVarint(42);
  w.PutDouble(1.5);
  w.PutVarintSigned(-12345);
  w.PutBytes("payload");
  w.PutU32(0xfeedface);
  const std::vector<uint8_t> full = w.Release();
  for (size_t len = 0; len < full.size(); ++len) {
    BufReader r(full.data(), len);
    uint64_t u = 0;
    double d = 0;
    int64_t s = 0;
    std::vector<uint8_t> bytes;
    uint32_t u32 = 0;
    Status st = r.ReadVarint(&u);
    if (st.ok()) st = r.ReadDouble(&d);
    if (st.ok()) st = r.ReadVarintSigned(&s);
    if (st.ok()) st = r.ReadBytes(&bytes);
    if (st.ok()) st = r.ReadU32(&u32);
    EXPECT_EQ(st.code(), StatusCode::kCorruption) << "prefix length " << len;
  }
  // The untruncated message round-trips.
  BufReader r(full.data(), full.size());
  uint64_t u = 0;
  double d = 0;
  int64_t s = 0;
  std::vector<uint8_t> bytes;
  uint32_t u32 = 0;
  ASSERT_TRUE(r.ReadVarint(&u).ok());
  ASSERT_TRUE(r.ReadDouble(&d).ok());
  ASSERT_TRUE(r.ReadVarintSigned(&s).ok());
  ASSERT_TRUE(r.ReadBytes(&bytes).ok());
  ASSERT_TRUE(r.ReadU32(&u32).ok());
  EXPECT_EQ(u, 42u);
  EXPECT_EQ(d, 1.5);
  EXPECT_EQ(s, -12345);
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), "payload");
  EXPECT_EQ(u32, 0xfeedfaceu);
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireTest, GarbageBytesNeverCrashReader) {
  // Random byte soup through every read path; all outcomes must be clean
  // Status results.
  Rng rng(424242);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> junk(rng.UniformInt(64));
    for (auto& b : junk) b = static_cast<uint8_t>(rng.UniformInt(256));
    BufReader r(junk.data(), junk.size());
    uint64_t u = 0;
    std::vector<uint8_t> bytes;
    while (r.ReadVarint(&u).ok() && r.ReadBytes(&bytes).ok()) {
    }
  }
}

TEST(WireTest, RandomizedVarintRoundTrip) {
  Rng rng(77);
  BufWriter w;
  std::vector<uint64_t> values;
  for (int i = 0; i < 1000; ++i) {
    // Bias towards small values but cover the full range.
    const int shift = static_cast<int>(rng.UniformInt(64));
    const uint64_t v = rng.Next() >> shift;
    values.push_back(v);
    w.PutVarint(v);
  }
  BufReader r(w.buffer());
  for (const uint64_t v : values) {
    uint64_t out = 0;
    ASSERT_TRUE(r.ReadVarint(&out).ok());
    EXPECT_EQ(out, v);
  }
  EXPECT_TRUE(r.AtEnd());
}

}  // namespace
}  // namespace dynagg
