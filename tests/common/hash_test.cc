#include "common/hash.h"

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace dynagg {
namespace {

TEST(Mix64Test, Deterministic) { EXPECT_EQ(Mix64(42), Mix64(42)); }

TEST(Mix64Test, IsBijectiveOnSample) {
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 10000; ++i) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(Mix64Test, AvalancheOnSingleBitFlips) {
  // Flipping one input bit should flip roughly half the output bits.
  const uint64_t base = Mix64(0x123456789abcdef0ull);
  double total_flips = 0;
  for (int bit = 0; bit < 64; ++bit) {
    const uint64_t flipped = Mix64(0x123456789abcdef0ull ^ (1ull << bit));
    total_flips += __builtin_popcountll(base ^ flipped);
  }
  const double avg = total_flips / 64.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(HashCombineTest, OrderSensitive) {
  EXPECT_NE(HashCombine(HashCombine(0, 1), 2),
            HashCombine(HashCombine(0, 2), 1));
}

TEST(HashCombineTest, SeedSensitive) {
  EXPECT_NE(HashCombine(1, 42), HashCombine(2, 42));
}

TEST(Fnv1a64Test, KnownDistinctStrings) {
  EXPECT_NE(Fnv1a64("hello"), Fnv1a64("world"));
  EXPECT_NE(Fnv1a64(""), Fnv1a64("a"));
  EXPECT_EQ(Fnv1a64("device-17"), Fnv1a64("device-17"));
}

TEST(Fnv1a64Test, NoCollisionsOnSmallCorpus) {
  std::set<uint64_t> hashes;
  for (int i = 0; i < 10000; ++i) {
    hashes.insert(Fnv1a64("object-" + std::to_string(i)));
  }
  EXPECT_EQ(hashes.size(), 10000u);
}

TEST(RhoTest, LowestSetBit) {
  EXPECT_EQ(Rho(0b1, 63), 0);
  EXPECT_EQ(Rho(0b10, 63), 1);
  EXPECT_EQ(Rho(0b100, 63), 2);
  EXPECT_EQ(Rho(0b1100, 63), 2);
  EXPECT_EQ(Rho(1ull << 63, 63), 63);
}

TEST(RhoTest, ZeroClampsToMax) {
  EXPECT_EQ(Rho(0, 17), 17);
  EXPECT_EQ(Rho(0, 0), 0);
}

TEST(RhoTest, ClampAboveMax) { EXPECT_EQ(Rho(1ull << 40, 10), 10); }

TEST(RhoTest, GeometricDistributionOverHashes) {
  // rho over mixed sequential integers must follow P[k] = 2^-(k+1).
  const int n = 200000;
  std::vector<int> counts(30, 0);
  for (uint64_t i = 0; i < n; ++i) ++counts[Rho(Mix64(i), 29)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.5, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.125, 0.01);
}

TEST(SketchPlaceTest, Deterministic) {
  const SketchSlot a = SketchPlace(123, 7, 64, 23);
  const SketchSlot b = SketchPlace(123, 7, 64, 23);
  EXPECT_EQ(a.bin, b.bin);
  EXPECT_EQ(a.level, b.level);
}

TEST(SketchPlaceTest, WithinBounds) {
  for (uint64_t id = 0; id < 10000; ++id) {
    const SketchSlot slot = SketchPlace(id, 99, 64, 23);
    EXPECT_GE(slot.bin, 0);
    EXPECT_LT(slot.bin, 64);
    EXPECT_GE(slot.level, 0);
    EXPECT_LE(slot.level, 23);
  }
}

TEST(SketchPlaceTest, BinsRoughlyUniform) {
  constexpr int kBins = 16;
  std::vector<int> counts(kBins, 0);
  const int n = 160000;
  for (uint64_t id = 0; id < n; ++id) {
    ++counts[SketchPlace(id, 1, kBins, 23).bin];
  }
  for (const int c : counts) EXPECT_NEAR(c, n / kBins, 600);
}

TEST(SketchPlaceTest, SeedChangesPlacement) {
  int moved = 0;
  for (uint64_t id = 0; id < 1000; ++id) {
    const SketchSlot a = SketchPlace(id, 1, 64, 23);
    const SketchSlot b = SketchPlace(id, 2, 64, 23);
    if (a.bin != b.bin || a.level != b.level) ++moved;
  }
  EXPECT_GT(moved, 900);
}

}  // namespace
}  // namespace dynagg
