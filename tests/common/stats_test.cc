#include "common/stats.h"

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dynagg {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStatTest, KnownMoments) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic example: sigma = 2
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, SampleVarianceUsesBesselCorrection) {
  RunningStat s;
  s.Add(1.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 2.0);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  Rng rng(42);
  RunningStat whole;
  RunningStat left;
  RunningStat right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.UniformDouble(-10, 10);
    whole.Add(x);
    (i < 400 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat a;
  a.Add(1.0);
  a.Add(2.0);
  RunningStat empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2);
  RunningStat b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(RunningStatTest, NumericalStabilityLargeOffset) {
  // Welford must survive values with a huge common offset.
  RunningStat s;
  for (int i = 0; i < 1000; ++i) s.Add(1e9 + (i % 2));
  EXPECT_NEAR(s.variance(), 0.25, 1e-6);
}

TEST(DeviationStatTest, EmptyIsZero) {
  DeviationStat d;
  EXPECT_EQ(d.rms(), 0.0);
  EXPECT_EQ(d.mean_abs(), 0.0);
}

TEST(DeviationStatTest, RmsOfKnownErrors) {
  DeviationStat d;
  d.Add(3.0, 0.0);   // error 3
  d.Add(-4.0, 0.0);  // error -4
  EXPECT_DOUBLE_EQ(d.rms(), std::sqrt((9.0 + 16.0) / 2.0));
  EXPECT_DOUBLE_EQ(d.mean_abs(), 3.5);
}

TEST(DeviationStatTest, PerfectEstimatesGiveZero) {
  DeviationStat d;
  for (int i = 0; i < 10; ++i) d.Add(42.0, 42.0);
  EXPECT_EQ(d.rms(), 0.0);
}

TEST(DeviationStatTest, MatchesStdDevForCenteredEstimates) {
  // When truth is the mean of the estimates, rms deviation equals the
  // population standard deviation.
  RunningStat s;
  DeviationStat d;
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8};
  for (const double x : xs) s.Add(x);
  for (const double x : xs) d.Add(x, s.mean());
  EXPECT_NEAR(d.rms(), s.stddev(), 1e-12);
}

TEST(HistogramTest, BucketsAndCdf) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.Add(i + 0.5);
  EXPECT_EQ(h.total(), 10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(h.bucket_count(i), 1);
  const auto cdf = h.Cdf();
  EXPECT_NEAR(cdf[0], 0.1, 1e-12);
  EXPECT_NEAR(cdf[4], 0.5, 1e-12);
  EXPECT_NEAR(cdf[9], 1.0, 1e-12);
}

TEST(HistogramTest, UnderAndOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-5.0);
  h.Add(2.0);
  h.Add(0.5);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 1);
  EXPECT_EQ(h.total(), 3);
  // Underflow counts below every bucket; overflow above all of them.
  const auto cdf = h.Cdf();
  EXPECT_NEAR(cdf[3], 2.0 / 3.0, 1e-12);
}

TEST(HistogramTest, QuantileMonotone) {
  Histogram h(0.0, 100.0, 100);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) h.Add(rng.UniformDouble(0, 100));
  EXPECT_LE(h.Quantile(0.1), h.Quantile(0.5));
  EXPECT_LE(h.Quantile(0.5), h.Quantile(0.9));
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 3.0);
}

TEST(HistogramTest, ResetClears) {
  Histogram h(0.0, 1.0, 2);
  h.Add(0.1);
  h.Reset();
  EXPECT_EQ(h.total(), 0);
  EXPECT_EQ(h.bucket_count(0), 0);
}

TEST(CsvTableTest, RendersHeaderAndRows) {
  CsvTable t({"round", "rms"});
  t.AddRow({0, 25.5});
  t.AddRow({1, 12.25});
  EXPECT_EQ(t.ToCsv(), "round,rms\n0,25.5\n1,12.25\n");
  EXPECT_EQ(t.num_rows(), 2);
}

TEST(CsvTableTest, SixSignificantDigits) {
  CsvTable t({"x"});
  t.AddRow({1.23456789});
  EXPECT_EQ(t.ToCsv(), "x\n1.23457\n");
}

}  // namespace
}  // namespace dynagg
