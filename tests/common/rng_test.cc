#include "common/rng.h"

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace dynagg {
namespace {

TEST(SplitMix64Test, ProducesKnownSequenceShape) {
  SplitMix64 a(1);
  SplitMix64 b(1);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(7);
  std::vector<uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.Next());
  a.Reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.Next(), first[i]);
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng rng(0);
  std::set<uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng.Next());
  EXPECT_GT(seen.size(), 95u);  // not degenerate
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(2);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(3);
  for (uint64_t bound : {1ull, 2ull, 3ull, 7ull, 100ull, 1000000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.UniformInt(bound), bound);
    }
  }
}

TEST(RngTest, UniformIntBoundOneAlwaysZero) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformInt(1), 0u);
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng(5);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.UniformInt(kBuckets)];
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kDraws / kBuckets, 500);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(6);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t x = rng.UniformRange(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= (x == -3);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.UniformDouble(10.0, 20.0);
    EXPECT_GE(x, 10.0);
    EXPECT_LT(x, 20.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, GeometricLevelDistribution) {
  // P[k] = 2^-(k+1): about half the draws at level 0, a quarter at 1, ...
  Rng rng(10);
  const int n = 200000;
  std::vector<int> counts(20, 0);
  for (int i = 0; i < n; ++i) ++counts[rng.GeometricLevel(19)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.5, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.125, 0.005);
  EXPECT_NEAR(static_cast<double>(counts[3]) / n, 0.0625, 0.005);
}

TEST(RngTest, GeometricLevelClampsToMax) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LE(rng.GeometricLevel(3), 3);
  }
}

TEST(RngTest, GeometricLevelZeroMax) {
  Rng rng(12);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.GeometricLevel(0), 0);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);  // mean = 1/lambda
}

TEST(RngTest, ExponentialNonNegative) {
  Rng rng(14);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.Exponential(0.1), 0.0);
}

TEST(RngTest, NormalMoments) {
  Rng rng(15);
  const int n = 200000;
  double sum = 0.0;
  double sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(10.0, 3.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(DeriveSeedTest, DistinctStreams) {
  std::set<uint64_t> seeds;
  for (uint64_t i = 0; i < 1000; ++i) seeds.insert(DeriveSeed(42, i));
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(DeriveSeedTest, Deterministic) {
  EXPECT_EQ(DeriveSeed(1, 2), DeriveSeed(1, 2));
  EXPECT_NE(DeriveSeed(1, 2), DeriveSeed(2, 1));
}

}  // namespace
}  // namespace dynagg
