// Property tests for the mergeable frequency sketches and the keyed
// stream generator: shape derivation from (epsilon, delta), exact
// byte-stability of merges in any order, the count-min overestimate-only
// guarantee and epsilon*N error bound on Zipf and adversarial streams,
// the count-sketch signed-median bound, and KeyedStreamGen's determinism
// / order-independence / range / skew-concentration contracts.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/workload.h"
#include "stream/freq_sketch.h"

namespace dynagg {
namespace stream {
namespace {

// ------------------------------------------------- shape derivation ---

TEST(SketchShapeTest, CountMinWidthIsNextPow2OfEOverEpsilon) {
  // e / 0.05 = 54.4 -> 64; e / 0.01 = 271.8 -> 512; e / 0.5 = 5.4 -> 8.
  EXPECT_EQ(CountMinWidthForEpsilon(0.05), 64);
  EXPECT_EQ(CountMinWidthForEpsilon(0.01), 512);
  EXPECT_EQ(CountMinWidthForEpsilon(0.5), 8);
}

TEST(SketchShapeTest, CountSketchWidthIsQuadraticInEpsilon) {
  // e / 0.2^2 = 68 -> 128; e / 0.1^2 = 271.8 -> 512.
  EXPECT_EQ(CountSketchWidthForEpsilon(0.2), 128);
  EXPECT_EQ(CountSketchWidthForEpsilon(0.1), 512);
}

TEST(SketchShapeTest, DepthForDeltaIsCeilLogInverse) {
  EXPECT_EQ(DepthForDelta(0.5), 1);   // ln 2 = 0.69 -> 1
  EXPECT_EQ(DepthForDelta(0.05), 3);  // ln 20 = 3.0 -> 3
  EXPECT_EQ(DepthForDelta(0.001), 7);
  EXPECT_EQ(DepthForDelta(0.9), 1);   // floor at one row
}

TEST(SketchShapeTest, GeometryEqualityRequiresAllThreeFields) {
  const SketchHash a(3, 64, 7);
  EXPECT_TRUE(a.SameGeometry(SketchHash(3, 64, 7)));
  EXPECT_FALSE(a.SameGeometry(SketchHash(4, 64, 7)));
  EXPECT_FALSE(a.SameGeometry(SketchHash(3, 128, 7)));
  EXPECT_FALSE(a.SameGeometry(SketchHash(3, 64, 8)));
}

TEST(SketchShapeTest, SlotsStayInRowAndSignsAreBinary) {
  const SketchHash h(4, 32, 99);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t key = rng.Next();
    for (int r = 0; r < h.depth(); ++r) {
      const size_t slot = h.Slot(r, key);
      EXPECT_GE(slot, static_cast<size_t>(r) * 32);
      EXPECT_LT(slot, static_cast<size_t>(r + 1) * 32);
      const double s = h.Sign(r, key);
      EXPECT_TRUE(s == 1.0 || s == -1.0);
    }
  }
}

// ------------------------------------------------------ merge order ---

/// Feeds `count` pseudo-random keyed increments into `sketch`.
template <typename Sketch>
void FeedStream(Sketch* sketch, uint64_t seed, int count) {
  Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    sketch->Add(rng.UniformInt(512), 1.0);
  }
}

template <typename Sketch>
std::vector<double> MergedCounters(const std::vector<const Sketch*>& order) {
  Sketch acc(*order[0]);
  for (size_t i = 1; i < order.size(); ++i) acc.Merge(*order[i]);
  return acc.counters();
}

template <typename Sketch>
void CheckMergeOrderInvariance() {
  Sketch a(3, 64, 42), b(3, 64, 42), c(3, 64, 42);
  FeedStream(&a, 1, 500);
  FeedStream(&b, 2, 700);
  FeedStream(&c, 3, 900);
  const std::vector<double> abc = MergedCounters<Sketch>({&a, &b, &c});
  // Commutative and associative, byte-for-byte: integer-valued doubles
  // below 2^53 sum exactly, so every association and order agrees.
  EXPECT_EQ(abc, MergedCounters<Sketch>({&a, &c, &b}));
  EXPECT_EQ(abc, MergedCounters<Sketch>({&b, &a, &c}));
  EXPECT_EQ(abc, MergedCounters<Sketch>({&c, &b, &a}));
  // Merging sketches of disjoint streams equals the sketch of the
  // concatenated stream (linearity — the property the gossip relies on).
  Sketch whole(3, 64, 42);
  FeedStream(&whole, 1, 500);
  FeedStream(&whole, 2, 700);
  FeedStream(&whole, 3, 900);
  EXPECT_EQ(abc, whole.counters());
}

TEST(SketchMergeTest, CountMinMergeIsOrderInvariant) {
  CheckMergeOrderInvariance<CountMinSketch>();
}

TEST(SketchMergeTest, CountSketchMergeIsOrderInvariant) {
  CheckMergeOrderInvariance<CountSketch>();
}

TEST(SketchMergeTest, HalvedCountersStayExactUnderMergeReassembly) {
  // The gossip halves strides; halves of integers are exact in binary,
  // so splitting a sketch in two and re-merging restores it bit-for-bit.
  CountMinSketch whole(2, 32, 5);
  FeedStream(&whole, 9, 800);
  CountMinSketch half(2, 32, 5);
  std::vector<double> halved = whole.counters();
  for (double& v : halved) v *= 0.5;
  // Reassemble: halved + halved == whole, exactly.
  std::vector<double> sum(halved.size());
  for (size_t i = 0; i < sum.size(); ++i) sum[i] = halved[i] + halved[i];
  EXPECT_EQ(sum, whole.counters());
}

// -------------------------------------------------- error guarantees ---

/// Exact per-key counts of the keyed Zipf stream fed to the sketches.
std::map<uint64_t, double> ZipfTruth(const KeyedStreamGen& gen, int hosts,
                                     int rounds, int batch) {
  std::map<uint64_t, double> truth;
  std::vector<uint64_t> keys;
  for (int h = 0; h < hosts; ++h) {
    for (int r = 0; r < rounds; ++r) {
      gen.FillBatch(h, r, batch, &keys);
      for (const uint64_t k : keys) truth[k] += 1.0;
    }
  }
  return truth;
}

TEST(SketchErrorTest, CountMinNeverUnderestimatesAndMeetsEpsilonBound) {
  const KeyedStreamGen gen(KeyStreamKind::kZipf, 100000, 1.1, 77);
  const auto truth = ZipfTruth(gen, 16, 20, 16);
  const double delta = 0.05;
  const double epsilon = 0.05;
  CountMinSketch sketch(DepthForDelta(delta), CountMinWidthForEpsilon(epsilon),
                        123);
  double total = 0.0;
  for (const auto& [key, count] : truth) {
    sketch.Add(key, count);
    total += count;
  }
  int violations = 0;
  for (const auto& [key, count] : truth) {
    const double est = sketch.Estimate(key);
    EXPECT_GE(est, count) << "count-min underestimated key " << key;
    if (est - count > epsilon * total) ++violations;
  }
  // Pr[error > eps * N] <= delta per key; this fixed-seed stream should
  // sit comfortably inside the bound.
  EXPECT_LE(violations, static_cast<int>(delta * truth.size()));
}

TEST(SketchErrorTest, CountMinHandlesAdversarialSingleHeavyKey) {
  // One massive key plus a spray of singletons colliding into it: the
  // heavy key must still be exact-or-over, singleton errors bounded.
  const double epsilon = 0.1;
  CountMinSketch sketch(4, CountMinWidthForEpsilon(epsilon), 321);
  sketch.Add(0xdead, 100000.0);
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) sketch.Add(rng.Next(), 1.0);
  const double total = 105000.0;
  EXPECT_GE(sketch.Estimate(0xdead), 100000.0);
  EXPECT_LE(sketch.Estimate(0xdead), 100000.0 + epsilon * total);
}

TEST(SketchErrorTest, CountSketchMedianErrorWithinEpsilonOfTotal) {
  const KeyedStreamGen gen(KeyStreamKind::kZipf, 100000, 1.2, 88);
  const auto truth = ZipfTruth(gen, 16, 20, 16);
  const double epsilon = 0.1;
  CountSketch sketch(5, CountSketchWidthForEpsilon(epsilon), 456);
  double total = 0.0;
  for (const auto& [key, count] : truth) {
    sketch.Add(key, count);
    total += count;
  }
  // Count-sketch is two-sided; its guarantee is against the stream's L2
  // norm, which is <= the total mass, so eps * total is a loose bound a
  // fixed-seed run must clear for all but a delta fraction of keys.
  int violations = 0;
  for (const auto& [key, count] : truth) {
    if (std::abs(sketch.Estimate(key) - count) > epsilon * total) {
      ++violations;
    }
  }
  EXPECT_LE(violations, static_cast<int>(0.05 * truth.size()));
}

TEST(SketchErrorTest, MedianOfRowsAveragesMiddlePairWhenEven) {
  double odd[3] = {3.0, 1.0, 2.0};
  EXPECT_EQ(MedianOfRows(odd, 3), 2.0);
  double even[4] = {4.0, 1.0, 3.0, 2.0};
  EXPECT_EQ(MedianOfRows(even, 4), 2.5);
  double one[1] = {7.0};
  EXPECT_EQ(MedianOfRows(one, 1), 7.0);
}

// ------------------------------------------------- keyed stream gen ---

TEST(KeyedStreamGenTest, BatchesAreDeterministicAndOrderIndependent) {
  const KeyedStreamGen a(KeyStreamKind::kZipf, 1000000, 1.1, 42);
  const KeyedStreamGen b(KeyStreamKind::kZipf, 1000000, 1.1, 42);
  std::vector<uint64_t> x, y;
  // Same (host, round) -> same batch, regardless of generation order:
  // a fills (3, 7) after (0, 0), b fills it first.
  a.FillBatch(0, 0, 32, &x);
  a.FillBatch(3, 7, 32, &x);
  b.FillBatch(3, 7, 32, &y);
  EXPECT_EQ(x, y);
  // Distinct (host, round) pairs draw from decorrelated streams.
  std::vector<uint64_t> other;
  a.FillBatch(3, 8, 32, &other);
  EXPECT_NE(x, other);
  a.FillBatch(4, 7, 32, &other);
  EXPECT_NE(x, other);
}

TEST(KeyedStreamGenTest, KeysStayInRangeForBothKinds) {
  for (const KeyStreamKind kind :
       {KeyStreamKind::kUniform, KeyStreamKind::kZipf}) {
    const KeyedStreamGen gen(kind, 1000, 1.5, 9);
    std::vector<uint64_t> keys;
    for (int h = 0; h < 8; ++h) {
      gen.FillBatch(h, 0, 256, &keys);
      for (const uint64_t k : keys) EXPECT_LT(k, 1000u);
    }
  }
}

TEST(KeyedStreamGenTest, SingleKeyUniverseAlwaysDrawsZero) {
  const KeyedStreamGen gen(KeyStreamKind::kZipf, 1, 1.0, 3);
  std::vector<uint64_t> keys;
  gen.FillBatch(0, 0, 64, &keys);
  for (const uint64_t k : keys) EXPECT_EQ(k, 0u);
}

TEST(KeyedStreamGenTest, ZipfConcentratesMassOnLowKeys) {
  const int kDraws = 20000;
  std::vector<int> counts(1000, 0);
  const KeyedStreamGen gen(KeyStreamKind::kZipf, 1000, 1.2, 17);
  std::vector<uint64_t> keys;
  for (int r = 0; r < kDraws / 100; ++r) {
    gen.FillBatch(0, r, 100, &keys);
    for (const uint64_t k : keys) ++counts[k];
  }
  // Rank 1 (key 0) dominates and the head holds a big share: for skew
  // 1.2 over 1000 keys, P(key 0) = 0.2 and the top ten hold about half.
  EXPECT_EQ(std::max_element(counts.begin(), counts.end()) - counts.begin(),
            0);
  int head = 0;
  for (int k = 0; k < 10; ++k) head += counts[k];
  EXPECT_GT(head, static_cast<int>(0.35 * kDraws));
  EXPECT_GT(counts[0], counts[99] * 5);
}

TEST(KeyedStreamGenTest, UniformSpreadsMassEvenly) {
  const int kDraws = 20000;
  std::vector<int> counts(1000, 0);
  const KeyedStreamGen gen(KeyStreamKind::kUniform, 1000, 0.0, 17);
  std::vector<uint64_t> keys;
  for (int r = 0; r < kDraws / 100; ++r) {
    gen.FillBatch(0, r, 100, &keys);
    for (const uint64_t k : keys) ++counts[k];
  }
  // Expected 20 draws per key; nothing should spike Zipf-style.
  EXPECT_LT(*std::max_element(counts.begin(), counts.end()), 60);
}

}  // namespace
}  // namespace stream
}  // namespace dynagg
