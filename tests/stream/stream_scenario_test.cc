// Scenario-level tests of the stream sketch protocols: byte-identical
// output across executor thread counts, telemetry modes and the round
// kernel's intra-round scatter threads; the workload.* dry-run validation
// contract (both directions: workload keys on non-consuming protocols,
// keyed-stream protocols without a workload); and end-to-end accuracy
// sanity — a wide sketch over a skewed stream must recover the true
// heavy hitters.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "scenario/executor.h"
#include "scenario/sink.h"
#include "scenario/spec.h"
#include "sim/worker_pool.h"

namespace dynagg {
namespace scenario {
namespace {

ScenarioSpec MustParse(const std::string& text) {
  const auto specs = ParseScenarioFile(text);
  EXPECT_TRUE(specs.ok()) << specs.status().ToString();
  EXPECT_EQ(specs->size(), 1u);
  return (*specs)[0];
}

std::string MustRenderRun(const ScenarioSpec& spec, const RunOptions& options,
                          ExperimentTelemetry* telemetry) {
  Result<std::vector<ResultTable>> tables =
      RunExperiment(spec, options, telemetry);
  EXPECT_TRUE(tables.ok()) << tables.status().ToString();
  Result<std::string> out = RenderTables(*tables, spec.name, "csv");
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return std::move(out).value();
}

Status DryRun(const std::string& text) {
  const auto specs = ParseScenarioFile(text);
  EXPECT_TRUE(specs.ok()) << specs.status().ToString();
  if (!specs.ok()) return specs.status();
  EXPECT_EQ(specs->size(), 1u);
  return ValidateExperiment((*specs)[0]);
}

void ExpectDryRunError(const std::string& text, const std::string& needle) {
  const Status st = DryRun(text);
  EXPECT_FALSE(st.ok()) << "spec unexpectedly valid:\n" << text;
  if (!st.ok()) {
    EXPECT_NE(st.message().find(needle), std::string::npos)
        << "diagnostic '" << st.message() << "' does not mention '" << needle
        << "'";
  }
}

std::vector<double> Column(const CsvTable& table, const std::string& name) {
  const auto& cols = table.columns();
  const auto it = std::find(cols.begin(), cols.end(), name);
  EXPECT_NE(it, cols.end()) << "missing column " << name;
  std::vector<double> out;
  if (it == cols.end()) return out;
  const size_t idx = static_cast<size_t>(it - cols.begin());
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    out.push_back(table.row(r)[idx]);
  }
  return out;
}

// Small count-min grid: two skews x two trials, all hh record kinds.
constexpr const char* kCountMinSpec = R"(name = hh
protocol = count-min
hosts = 48
rounds = 10
trials = 2
seed = 7
workload.kind = zipf
workload.keys = 4096
workload.batch = 8
workload.rounds = 5
protocol.width = 32
protocol.depth = 2
sweep = workload.skew: 0.9, 1.3
record = hh_precision(8), hh_recall(8), hh_weighted_err(8), sketch_bytes, hh_frontier
)";

// ------------------------------------------------------- determinism ---

TEST(StreamScenarioTest, OutputIsByteIdenticalAcrossThreadsAndTelemetry) {
  const ScenarioSpec spec = MustParse(kCountMinSpec);
  const std::string baseline =
      MustRenderRun(spec, RunOptions{1, "off", nullptr}, nullptr);
  EXPECT_FALSE(baseline.empty());
  for (const char* mode : {"summary", "profile"}) {
    for (const int threads : {1, 4}) {
      ExperimentTelemetry telemetry;
      const std::string got =
          MustRenderRun(spec, RunOptions{threads, mode, nullptr}, &telemetry);
      EXPECT_EQ(got, baseline) << "mode=" << mode << " threads=" << threads;
    }
  }
}

TEST(StreamScenarioTest, IntraRoundScatterThreadsDoNotChangeOutput) {
  // The parallel deposit scatter only engages above the kernel's
  // sequential cutoff (4096 slots), so this one needs a big population;
  // the sketch and key universe are kept tiny to compensate. The kernel
  // also clamps the thread count to the visible CPUs, so force 4 for the
  // test's lifetime to keep the sharded path under test on 1-CPU hosts.
  struct ScopedVisibleCpus {
    explicit ScopedVisibleCpus(int n) {
      WorkerPool::OverrideVisibleCpusForTest(n);
    }
    ~ScopedVisibleCpus() { WorkerPool::OverrideVisibleCpusForTest(0); }
  } forced(4);
  const std::string base = R"(name = hh_par
protocol = count-min
hosts = 6000
rounds = 4
seed = 11
workload.kind = zipf
workload.keys = 512
workload.batch = 4
protocol.width = 16
protocol.depth = 2
record = hh_frontier, hh_precision(4)
)";
  const ScenarioSpec seq = MustParse(base);
  const ScenarioSpec par = MustParse(base + "intra_round_threads = 4\n");
  const std::string a = MustRenderRun(seq, RunOptions{1, "off", nullptr},
                                      nullptr);
  const std::string b = MustRenderRun(par, RunOptions{1, "off", nullptr},
                                      nullptr);
  EXPECT_EQ(a, b);
}

// -------------------------------------------------------- validation ---

TEST(StreamScenarioTest, RejectsWorkloadKeysOnNonConsumingProtocol) {
  ExpectDryRunError(
      "protocol = push-sum\nhosts = 16\nworkload.kind = zipf\n",
      "workload.kind");
  ExpectDryRunError(
      "protocol = push-sum\nhosts = 16\nseeds.workload_stream = 3\n",
      "seeds.workload_stream");
  ExpectDryRunError(
      "protocol = push-sum\nhosts = 16\nsweep = workload.skew: 1, 2\n",
      "workload.skew");
}

TEST(StreamScenarioTest, RejectsStreamProtocolWithoutWorkloadKind) {
  ExpectDryRunError("protocol = count-min\nhosts = 16\n", "workload.kind");
  ExpectDryRunError("protocol = count-sketch-freq\nhosts = 16\n",
                    "workload.kind");
}

TEST(StreamScenarioTest, RejectsBadWorkloadAndSketchKnobs) {
  const std::string base =
      "protocol = count-min\nhosts = 16\nworkload.kind = zipf\n";
  // skew is a Zipf knob; setting it on a uniform stream is a typo.
  ExpectDryRunError(
      "protocol = count-min\nhosts = 16\nworkload.kind = uniform\n"
      "workload.skew = 1.1\n",
      "workload.skew");
  ExpectDryRunError(base + "protocol.width = 48\n", "power of two");
  ExpectDryRunError(base + "record = hh_precision(0)\n", "hh_precision");
  // Non-canonical top-k spellings would alias scalar column names.
  ExpectDryRunError(base + "record = hh_precision(08)\n", "plain");
  ExpectDryRunError(base + "workload.kind = sawtooth\n", "workload.kind");
  // The happy path validates.
  EXPECT_TRUE(DryRun(base).ok());
  EXPECT_TRUE(DryRun(base + "record = hh_precision(16), sketch_bytes\n").ok());
}

// ----------------------------------------------------------- accuracy ---

TEST(StreamScenarioTest, WideSketchRecoversTrueHeavyHitters) {
  // Wide count-min (near-exact for 2048 keys) + strongly skewed stream +
  // a gossip-only tail: every host's top-8 should align with the truth.
  const std::string spec_text = R"(name = hh_acc
protocol = count-min
hosts = 64
rounds = 24
seed = 5
workload.kind = zipf
workload.keys = 2048
workload.skew = 1.4
workload.batch = 16
workload.rounds = 8
protocol.width = 1024
protocol.depth = 4
record = hh_precision(8), hh_recall(8), hh_weighted_err(8)
)";
  const ScenarioSpec spec = MustParse(spec_text);
  Result<std::vector<ResultTable>> tables =
      RunExperiment(spec, RunOptions{1, "off", nullptr}, nullptr);
  ASSERT_TRUE(tables.ok()) << tables.status().ToString();
  ASSERT_EQ(tables->size(), 1u);
  const CsvTable& table = (*tables)[0].table;
  ASSERT_EQ(table.num_rows(), 1);
  EXPECT_GE(Column(table, "hh_precision_8")[0], 0.9);
  EXPECT_GE(Column(table, "hh_recall_8")[0], 0.9);
  EXPECT_LE(Column(table, "hh_weighted_err_8")[0], 0.2);
}

TEST(StreamScenarioTest, CountSketchFreqRunsEndToEnd) {
  const std::string spec_text = R"(name = cs
protocol = count-sketch-freq
hosts = 32
rounds = 8
seed = 13
workload.kind = zipf
workload.keys = 1024
workload.batch = 8
protocol.width = 256
protocol.depth = 3
record = hh_precision(4), sketch_bytes, hh_frontier
)";
  const ScenarioSpec spec = MustParse(spec_text);
  Result<std::vector<ResultTable>> tables =
      RunExperiment(spec, RunOptions{2, "off", nullptr}, nullptr);
  ASSERT_TRUE(tables.ok()) << tables.status().ToString();
  ASSERT_EQ(tables->size(), 1u);
  const CsvTable& table = (*tables)[0].table;
  ASSERT_EQ(table.num_rows(), 1);
  EXPECT_EQ(Column(table, "sketch_bytes")[0], 3 * 256 * 8.0);
  EXPECT_GE(Column(table, "hh_precision_4")[0], 0.0);
}

}  // namespace
}  // namespace scenario
}  // namespace dynagg
