#include "tree/tag.h"

#include <vector>

#include <gtest/gtest.h>

#include "env/spatial_env.h"
#include "env/uniform_env.h"
#include "sim/population.h"

namespace dynagg {
namespace {

TEST(TagTest, ExactAggregateWithoutFailures) {
  SpatialGridEnvironment env(4, 4);
  Population pop(16);
  std::vector<double> values(16);
  double sum = 0.0;
  for (int i = 0; i < 16; ++i) {
    values[i] = i * 1.5;
    sum += values[i];
  }
  const SpanningTree tree = BuildBfsTree(env, pop, 0);
  const TagEpochResult result =
      RunTagEpoch(tree, values, pop, FailurePlan{}, 0);
  ASSERT_TRUE(result.valid);
  EXPECT_DOUBLE_EQ(result.sum, sum);
  EXPECT_DOUBLE_EQ(result.count, 16.0);
  EXPECT_DOUBLE_EQ(result.average, sum / 16.0);
  EXPECT_EQ(result.contributing, 16);
  EXPECT_EQ(result.rounds, tree.max_depth);
}

TEST(TagTest, SingleHostEpoch) {
  UniformEnvironment env(1);
  Population pop(1);
  const SpanningTree tree = BuildBfsTree(env, pop, 0);
  const TagEpochResult result =
      RunTagEpoch(tree, {7.0}, pop, FailurePlan{}, 0);
  ASSERT_TRUE(result.valid);
  EXPECT_DOUBLE_EQ(result.sum, 7.0);
  EXPECT_DOUBLE_EQ(result.count, 1.0);
}

TEST(TagTest, MidEpochFailureDropsSubtree) {
  // Line topology 0-1-2-3 rooted at 0; killing host 1 before it transmits
  // loses hosts 1, 2 and 3 even though 2 and 3 already sent their values.
  SpatialGridEnvironment env(4, 1);
  Population pop(4);
  const std::vector<double> values = {1.0, 10.0, 100.0, 1000.0};
  const SpanningTree tree = BuildBfsTree(env, pop, 0);
  EXPECT_EQ(tree.max_depth, 3);
  FailurePlan failures;
  // Epoch rounds: round 0 sends depth 3, round 1 depth 2, round 2 depth 1.
  // Kill host 1 (depth 1) at round 2, just before it forwards.
  failures.AddKill(2, {1});
  const TagEpochResult result = RunTagEpoch(tree, values, pop, failures, 0);
  ASSERT_TRUE(result.valid);
  EXPECT_DOUBLE_EQ(result.sum, 1.0);  // only the root's own value survived
  EXPECT_EQ(result.contributing, 1);
}

TEST(TagTest, LeafFailureLosesOnlyLeaf) {
  SpatialGridEnvironment env(4, 1);
  Population pop(4);
  const std::vector<double> values = {1.0, 10.0, 100.0, 1000.0};
  const SpanningTree tree = BuildBfsTree(env, pop, 0);
  FailurePlan failures;
  failures.AddKill(0, {3});  // depth-3 leaf dies before transmitting
  const TagEpochResult result = RunTagEpoch(tree, values, pop, failures, 0);
  ASSERT_TRUE(result.valid);
  EXPECT_DOUBLE_EQ(result.sum, 111.0);
  EXPECT_EQ(result.contributing, 3);
}

TEST(TagTest, RootFailureInvalidatesEpoch) {
  SpatialGridEnvironment env(3, 1);
  Population pop(3);
  const SpanningTree tree = BuildBfsTree(env, pop, 0);
  FailurePlan failures;
  failures.AddKill(1, {0});
  const TagEpochResult result =
      RunTagEpoch(tree, {1.0, 2.0, 3.0}, pop, failures, 0);
  EXPECT_FALSE(result.valid);
}

TEST(TagTest, FailureAfterTransmissionDoesNotLoseValue) {
  SpatialGridEnvironment env(4, 1);
  Population pop(4);
  const std::vector<double> values = {1.0, 10.0, 100.0, 1000.0};
  const SpanningTree tree = BuildBfsTree(env, pop, 0);
  FailurePlan failures;
  // Host 3 (depth 3) transmits at round 0; it dies at round 1 — too late to
  // lose its contribution.
  failures.AddKill(1, {3});
  const TagEpochResult result = RunTagEpoch(tree, values, pop, failures, 0);
  ASSERT_TRUE(result.valid);
  EXPECT_DOUBLE_EQ(result.sum, 1111.0);
}

TEST(TagTest, StartRoundOffsetsFailureSchedule) {
  SpatialGridEnvironment env(4, 1);
  Population pop(4);
  const std::vector<double> values = {1.0, 10.0, 100.0, 1000.0};
  const SpanningTree tree = BuildBfsTree(env, pop, 0);
  FailurePlan failures;
  failures.AddKill(102, {1});  // fires at epoch round 2 with start_round=100
  const TagEpochResult result =
      RunTagEpoch(tree, values, pop, failures, /*start_round=*/100);
  ASSERT_TRUE(result.valid);
  EXPECT_DOUBLE_EQ(result.sum, 1.0);
}

TEST(TagTest, UnreachedHostsDoNotContribute) {
  SpatialGridEnvironment env(3, 1);
  Population pop(3);
  pop.Kill(1);  // splits the line; host 2 unreachable from 0
  const SpanningTree tree = BuildBfsTree(env, pop, 0);
  const TagEpochResult result =
      RunTagEpoch(tree, {5.0, 7.0, 9.0}, pop, FailurePlan{}, 0);
  ASSERT_TRUE(result.valid);
  EXPECT_DOUBLE_EQ(result.sum, 5.0);
  EXPECT_EQ(result.contributing, 1);
}

}  // namespace
}  // namespace dynagg
