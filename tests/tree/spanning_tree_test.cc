#include "tree/spanning_tree.h"

#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "env/spatial_env.h"
#include "env/uniform_env.h"
#include "sim/population.h"

namespace dynagg {
namespace {

TEST(SpanningTreeTest, UniformEnvIsOneLevelDeep) {
  UniformEnvironment env(10);
  Population pop(10);
  const SpanningTree tree = BuildBfsTree(env, pop, /*root=*/3);
  EXPECT_EQ(tree.root, 3);
  EXPECT_EQ(tree.num_reached, 10);
  EXPECT_EQ(tree.max_depth, 1);
  EXPECT_EQ(tree.children[3].size(), 9u);
  for (HostId id = 0; id < 10; ++id) {
    if (id == 3) {
      EXPECT_EQ(tree.parent[id], kInvalidHost);
      EXPECT_EQ(tree.depth[id], 0);
    } else {
      EXPECT_EQ(tree.parent[id], 3);
      EXPECT_EQ(tree.depth[id], 1);
    }
  }
}

TEST(SpanningTreeTest, GridDepthsAreManhattanDistances) {
  SpatialGridEnvironment env(5, 5);
  Population pop(25);
  const SpanningTree tree = BuildBfsTree(env, pop, /*root=*/0);
  EXPECT_EQ(tree.num_reached, 25);
  for (HostId id = 0; id < 25; ++id) {
    const int x = id % 5;
    const int y = id / 5;
    EXPECT_EQ(tree.depth[id], x + y) << id;
  }
  EXPECT_EQ(tree.max_depth, 8);
}

TEST(SpanningTreeTest, ParentsAreValidTreeEdges) {
  SpatialGridEnvironment env(6, 4);
  Population pop(24);
  const SpanningTree tree = BuildBfsTree(env, pop, 10);
  for (HostId id = 0; id < 24; ++id) {
    if (id == tree.root || !tree.Reached(id)) continue;
    const HostId p = tree.parent[id];
    ASSERT_NE(p, kInvalidHost);
    EXPECT_EQ(tree.depth[id], tree.depth[p] + 1);
    // Parent must be grid-adjacent.
    const int dx = std::abs(id % 6 - p % 6);
    const int dy = std::abs(id / 6 - p / 6);
    EXPECT_EQ(dx + dy, 1);
  }
}

TEST(SpanningTreeTest, DeadHostsPartitionTheFlood) {
  // Kill the middle column of a 3-wide grid: the right side is unreachable.
  SpatialGridEnvironment env(3, 3);
  Population pop(9);
  pop.Kill(1);
  pop.Kill(4);
  pop.Kill(7);
  const SpanningTree tree = BuildBfsTree(env, pop, 0);
  EXPECT_EQ(tree.num_reached, 3);  // left column only
  EXPECT_TRUE(tree.Reached(0));
  EXPECT_TRUE(tree.Reached(3));
  EXPECT_TRUE(tree.Reached(6));
  EXPECT_FALSE(tree.Reached(2));
  EXPECT_FALSE(tree.Reached(5));
  EXPECT_FALSE(tree.Reached(8));
}

TEST(SpanningTreeTest, ChildrenInverseOfParents) {
  SpatialGridEnvironment env(4, 4);
  Population pop(16);
  const SpanningTree tree = BuildBfsTree(env, pop, 5);
  int edge_count = 0;
  for (HostId p = 0; p < 16; ++p) {
    for (const HostId c : tree.children[p]) {
      EXPECT_EQ(tree.parent[c], p);
      ++edge_count;
    }
  }
  EXPECT_EQ(edge_count, tree.num_reached - 1);
}

TEST(SpanningTreeTest, SingleHostTree) {
  UniformEnvironment env(1);
  Population pop(1);
  const SpanningTree tree = BuildBfsTree(env, pop, 0);
  EXPECT_EQ(tree.num_reached, 1);
  EXPECT_EQ(tree.max_depth, 0);
}

}  // namespace
}  // namespace dynagg
