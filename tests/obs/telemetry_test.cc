// Telemetry unit tests: the TLS-sink hooks are no-ops with no sink
// installed, spans nest and accumulate into the right buckets, profile
// mode records the closed-span stream in dtor (innermost-first) order,
// and the Chrome trace export renders the expected event structure.

#include "obs/telemetry.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace_export.h"

namespace dynagg {
namespace obs {
namespace {

int64_t CounterValue(const TrialTelemetry& t, Counter c) {
  return t.counters[static_cast<int>(c)];
}

int64_t PhaseCalls(const TrialTelemetry& t, Phase p) {
  return t.phase_calls[static_cast<int>(p)];
}

TEST(TelemetryTest, HooksNoOpWithoutSink) {
  ASSERT_EQ(Current(), nullptr);
  Count(Counter::kRngDraws, 7);
  {
    ScopedTrial trial(nullptr);
    EXPECT_EQ(Current(), nullptr);
    ScopedRound round(3);
    ScopedPhase phase(Phase::kPlan);
    Count(Counter::kGossipExchanges);
  }
  EXPECT_EQ(Current(), nullptr);
}

TEST(TelemetryTest, ScopedTrialInstallsAndClearsSink) {
  TrialTelemetry t;
  {
    ScopedTrial trial(&t);
    EXPECT_EQ(Current(), &t);
  }
  EXPECT_EQ(Current(), nullptr);
  EXPECT_GE(t.trial_dur_ns, 0);
  // Summary mode (profile = false): no span stream.
  EXPECT_TRUE(t.events.empty());
}

TEST(TelemetryTest, SinkIsThreadLocal) {
  TrialTelemetry t;
  ScopedTrial trial(&t);
  TrialTelemetry* seen = &t;
  std::thread([&seen] { seen = Current(); }).join();
  EXPECT_EQ(seen, nullptr);  // spawned threads carry no sink
  EXPECT_EQ(Current(), &t);
}

TEST(TelemetryTest, CountersAccumulate) {
  TrialTelemetry t;
  {
    ScopedTrial trial(&t);
    Count(Counter::kRngDraws, 5);
    Count(Counter::kRngDraws, 2);
    Count(Counter::kDepositBytes, 1024);
    Count(Counter::kPlanCacheHits);
  }
  EXPECT_EQ(CounterValue(t, Counter::kRngDraws), 7);
  EXPECT_EQ(CounterValue(t, Counter::kDepositBytes), 1024);
  EXPECT_EQ(CounterValue(t, Counter::kPlanCacheHits), 1);
  EXPECT_EQ(CounterValue(t, Counter::kEarlyStopRounds), 0);
}

TEST(TelemetryTest, PhaseTimesAndCallsAccumulate) {
  TrialTelemetry t;
  {
    ScopedTrial trial(&t);
    for (int i = 0; i < 3; ++i) {
      ScopedPhase phase(Phase::kPlan);
    }
    ScopedPhase scatter(Phase::kScatter);
  }
  EXPECT_EQ(PhaseCalls(t, Phase::kPlan), 3);
  EXPECT_EQ(PhaseCalls(t, Phase::kScatter), 1);
  EXPECT_EQ(PhaseCalls(t, Phase::kApply), 0);
  EXPECT_GE(t.phase_ns[static_cast<int>(Phase::kPlan)], 0);
}

TEST(TelemetryTest, RoundsNestAndTagPhaseSpans) {
  TrialTelemetry t;
  t.profile = true;
  {
    ScopedTrial trial(&t);
    {
      ScopedPhase setup(Phase::kSetup);  // before any round: tag -1
    }
    for (int r = 0; r < 2; ++r) {
      ScopedRound round(r);
      ScopedPhase plan(Phase::kPlan);
    }
  }
  EXPECT_EQ(t.rounds, 2);
  EXPECT_EQ(t.current_round, -1);  // restored after the loop

  // Spans close innermost-first: setup, then (plan, round) twice, then
  // the whole-trial span last.
  ASSERT_EQ(t.events.size(), 6u);
  EXPECT_EQ(t.events[0].kind, SpanEvent::kPhase);
  EXPECT_EQ(static_cast<Phase>(t.events[0].phase), Phase::kSetup);
  EXPECT_EQ(t.events[0].round, -1);
  for (int r = 0; r < 2; ++r) {
    const SpanEvent& plan = t.events[1 + 2 * r];
    const SpanEvent& round = t.events[2 + 2 * r];
    EXPECT_EQ(plan.kind, SpanEvent::kPhase);
    EXPECT_EQ(static_cast<Phase>(plan.phase), Phase::kPlan);
    EXPECT_EQ(plan.round, r);
    EXPECT_EQ(round.kind, SpanEvent::kRound);
    EXPECT_EQ(round.round, r);
    // The round span encloses its phase span.
    EXPECT_LE(round.start_ns, plan.start_ns);
    EXPECT_GE(round.start_ns + round.dur_ns, plan.start_ns + plan.dur_ns);
  }
  EXPECT_EQ(t.events[5].kind, SpanEvent::kTrial);
  EXPECT_EQ(t.events[5].start_ns, t.trial_start_ns);
  EXPECT_EQ(t.events[5].dur_ns, t.trial_dur_ns);
}

TEST(TelemetryTest, NamesAreStable) {
  EXPECT_STREQ(PhaseName(Phase::kSetup), "setup");
  EXPECT_STREQ(PhaseName(Phase::kScatter), "scatter");
  EXPECT_STREQ(CounterName(Counter::kPlanCacheHits), "plan_cache_hits");
  EXPECT_STREQ(CounterName(Counter::kEarlyStopRounds), "early_stop_rounds");
}

TEST(TraceExportTest, RendersProcessThreadAndSpanEvents) {
  TrialTelemetry t;
  t.unit = 0;
  t.worker = 1;
  t.trial = 0;
  t.profile = true;
  {
    ScopedTrial trial(&t);
    ScopedRound round(0);
    ScopedPhase plan(Phase::kPlan);
  }
  ProcessProfile proc;
  proc.name = "unit_test";
  proc.units.push_back(t);

  const std::string json = RenderChromeTrace({proc});
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("unit_test"), std::string::npos);
  EXPECT_NE(json.find("worker 1"), std::string::npos);
  EXPECT_NE(json.find("\"trial 0\""), std::string::npos);
  EXPECT_NE(json.find("\"round 0\""), std::string::npos);
  EXPECT_NE(json.find("\"plan\""), std::string::npos);
  // Complete events with microsecond timestamps.
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  // Valid JSON object shape (structural spot check).
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
}

TEST(TraceExportTest, EmptyProfileRendersEmptyEventList) {
  const std::string json = RenderChromeTrace({});
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\": \"X\""), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace dynagg
