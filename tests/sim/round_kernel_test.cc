// Round-kernel parity and determinism tests.
//
// The swarms' RunRound was rewritten from per-host SamplePeer loops onto
// the shared plan -> apply kernel; these tests pin that the rewrite is
// bit-identical to the pre-refactor loops (replicated verbatim below) —
// including under mid-trial deaths, trace playback (AdvanceTo between
// rounds), and with the data-parallel deposit scatter enabled.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "agg/full_transfer.h"
#include "agg/push_sum.h"
#include "agg/push_sum_revert.h"
#include "common/rng.h"
#include "env/contact_trace.h"
#include "env/trace_env.h"
#include "env/uniform_env.h"
#include "sim/population.h"
#include "sim/round_kernel.h"
#include "sim/worker_pool.h"

namespace dynagg {
namespace {

/// The kernel clamps intra_round_threads to WorkerPool::VisibleCpus(), so
/// on a single-CPU CI host the "parallel" swarm would silently take the
/// fused sequential path and these determinism tests would compare it to
/// itself. Forcing the visible count keeps the destination-sharded scatter
/// under test on any host; the override is restored on scope exit.
class ScopedVisibleCpus {
 public:
  explicit ScopedVisibleCpus(int n) { WorkerPool::OverrideVisibleCpusForTest(n); }
  ~ScopedVisibleCpus() { WorkerPool::OverrideVisibleCpusForTest(0); }
};

std::vector<double> TestValues(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values(n);
  for (auto& v : values) v = rng.UniformDouble(0, 100);
  return values;
}

// ------------------------- pre-refactor reference implementations ---
//
// Exact copies of the PR <= 3 RunRound bodies, expressed over PushSumNode /
// PushSumRevertNode / FullTransferNode vectors.

void LegacyPushSumRound(std::vector<PushSumNode>& nodes, GossipMode mode,
                        const Environment& env, const Population& pop,
                        Rng& rng, std::vector<HostId>& order) {
  if (mode == GossipMode::kPush) {
    for (const HostId i : pop.alive_ids()) {
      const Mass out = nodes[i].EmitPushHalf();
      const HostId peer = env.SamplePeer(i, pop, rng);
      nodes[peer == kInvalidHost ? i : peer].Deposit(out);
    }
    for (const HostId i : pop.alive_ids()) nodes[i].EndRound();
    return;
  }
  ShuffledAliveOrder(pop, rng, &order);
  for (const HostId i : order) {
    const HostId peer = env.SamplePeer(i, pop, rng);
    if (peer == kInvalidHost) continue;
    PushSumNode::Exchange(nodes[i], nodes[peer]);
  }
}

void LegacyPsrRound(std::vector<PushSumRevertNode>& nodes,
                    const PsrParams& params, const Environment& env,
                    const Population& pop, Rng& rng,
                    std::vector<HostId>& order) {
  if (params.mode == GossipMode::kPush) {
    for (const HostId i : pop.alive_ids()) {
      const Mass out = nodes[i].EmitPushHalf(params.lambda, params.revert);
      const HostId peer = env.SamplePeer(i, pop, rng);
      nodes[peer == kInvalidHost ? i : peer].Deposit(out);
    }
    for (const HostId i : pop.alive_ids()) {
      nodes[i].EndRoundPush(params.lambda, params.revert);
    }
    return;
  }
  ShuffledAliveOrder(pop, rng, &order);
  for (const HostId i : order) {
    const HostId peer = env.SamplePeer(i, pop, rng);
    if (peer == kInvalidHost) continue;
    PushSumRevertNode::Exchange(nodes[i], nodes[peer]);
  }
  for (const HostId i : pop.alive_ids()) {
    nodes[i].EndRoundPushPull(params.lambda, params.revert);
  }
}

void LegacyFullTransferRound(std::vector<FullTransferNode>& nodes,
                             const FullTransferParams& params,
                             const Environment& env, const Population& pop,
                             Rng& rng) {
  for (const HostId i : pop.alive_ids()) {
    for (int p = 0; p < params.parcels; ++p) {
      const Mass parcel = nodes[i].EmitParcel(params.lambda, params.parcels);
      const HostId peer = env.SamplePeer(i, pop, rng);
      nodes[peer == kInvalidHost ? i : peer].Deposit(parcel);
    }
  }
  for (const HostId i : pop.alive_ids()) nodes[i].EndRound();
}

/// Applies the same scripted deaths/revivals to both populations.
void Mutate(Population& pop, int round) {
  const int n = pop.size();
  if (round == 2) {
    for (HostId id = 0; id < n / 4; ++id) pop.Kill(id);
  }
  if (round == 5) {
    pop.Revive(1);
    pop.Kill(n - 1);
  }
}

// ------------------------------------------------- push-sum parity ---

void CheckPushSumParity(GossipMode mode) {
  const int n = 200;
  const std::vector<double> values = TestValues(n, 99);

  PushSumSwarm swarm(values, mode);
  std::vector<PushSumNode> nodes(n);
  for (int i = 0; i < n; ++i) nodes[i].Init(values[i]);

  UniformEnvironment env(n);
  Population pop_a(n);
  Population pop_b(n);
  Rng rng_a(4242);
  Rng rng_b(4242);
  std::vector<HostId> order;
  for (int round = 0; round < 8; ++round) {
    Mutate(pop_a, round);
    Mutate(pop_b, round);
    swarm.RunRound(env, pop_a, rng_a);
    LegacyPushSumRound(nodes, mode, env, pop_b, rng_b, order);
    for (HostId id = 0; id < n; ++id) {
      // Bit-identical, not approximately equal.
      ASSERT_EQ(swarm.Estimate(id), nodes[id].Estimate())
          << "round " << round << " host " << id;
    }
  }
  EXPECT_EQ(rng_a.Next(), rng_b.Next());
}

TEST(RoundKernelParityTest, PushSumPushBitIdenticalToLegacyLoop) {
  CheckPushSumParity(GossipMode::kPush);
}

TEST(RoundKernelParityTest, PushSumPushPullBitIdenticalToLegacyLoop) {
  CheckPushSumParity(GossipMode::kPushPull);
}

TEST(RoundKernelParityTest, PsrBitIdenticalToLegacyLoop) {
  for (const GossipMode mode : {GossipMode::kPush, GossipMode::kPushPull}) {
    for (const RevertMode revert :
         {RevertMode::kFixed, RevertMode::kAdaptive}) {
      const int n = 150;
      const std::vector<double> values = TestValues(n, 7);
      const PsrParams params{.lambda = 0.05, .mode = mode, .revert = revert};
      PushSumRevertSwarm swarm(values, params);
      std::vector<PushSumRevertNode> nodes(n);
      for (int i = 0; i < n; ++i) nodes[i].Init(values[i]);
      UniformEnvironment env(n);
      Population pop_a(n);
      Population pop_b(n);
      Rng rng_a(1717);
      Rng rng_b(1717);
      std::vector<HostId> order;
      for (int round = 0; round < 8; ++round) {
        Mutate(pop_a, round);
        Mutate(pop_b, round);
        swarm.RunRound(env, pop_a, rng_a);
        LegacyPsrRound(nodes, params, env, pop_b, rng_b, order);
        for (HostId id = 0; id < n; ++id) {
          ASSERT_EQ(swarm.Estimate(id), nodes[id].Estimate())
              << "round " << round << " host " << id;
        }
      }
      EXPECT_EQ(rng_a.Next(), rng_b.Next());
    }
  }
}

TEST(RoundKernelParityTest, FullTransferBitIdenticalToLegacyLoop) {
  const int n = 120;
  const std::vector<double> values = TestValues(n, 13);
  const FullTransferParams params{.lambda = 0.1, .parcels = 4, .window = 3};
  FullTransferSwarm swarm(values, params);
  std::vector<FullTransferNode> nodes(n);
  for (int i = 0; i < n; ++i) nodes[i].Init(values[i], params.window);
  UniformEnvironment env(n);
  Population pop_a(n);
  Population pop_b(n);
  Rng rng_a(31);
  Rng rng_b(31);
  for (int round = 0; round < 8; ++round) {
    Mutate(pop_a, round);
    Mutate(pop_b, round);
    swarm.RunRound(env, pop_a, rng_a);
    LegacyFullTransferRound(nodes, params, env, pop_b, rng_b);
    for (HostId id = 0; id < n; ++id) {
      ASSERT_EQ(swarm.Estimate(id), nodes[id].Estimate())
          << "round " << round << " host " << id;
    }
  }
  EXPECT_EQ(rng_a.Next(), rng_b.Next());
}

// --------------------------------------------- trace-env invalidation ---

TEST(RoundKernelParityTest, TraceEnvironmentAdvanceToRebuildsMidTrial) {
  // Dense clique so the trace env's cached alive-neighbor rows are
  // exercised; links flip halfway through.
  ContactTrace trace(16);
  for (HostId a = 0; a < 16; ++a) {
    for (HostId b = a + 1; b < 16; ++b) {
      if ((a + b) % 2 == 0) {
        trace.AddContact(a, b, FromSeconds(0), FromSeconds(100));
      } else {
        trace.AddContact(a, b, FromSeconds(100), FromSeconds(200));
      }
    }
  }
  trace.Finalize();
  const std::vector<double> values = TestValues(16, 5);

  PushSumSwarm swarm(values, GossipMode::kPush);
  std::vector<PushSumNode> nodes(16);
  for (int i = 0; i < 16; ++i) nodes[i].Init(values[i]);

  TraceEnvironment env_a(trace);
  TraceEnvironment env_b(trace);
  Population pop_a(16);
  Population pop_b(16);
  Rng rng_a(88);
  Rng rng_b(88);
  std::vector<HostId> order;
  for (int round = 0; round < 20; ++round) {
    const SimTime t = FromSeconds((round + 1) * 10.0);
    env_a.AdvanceTo(t);
    env_b.AdvanceTo(t);
    if (round == 7) {
      pop_a.Kill(3);
      pop_b.Kill(3);
    }
    swarm.RunRound(env_a, pop_a, rng_a);
    LegacyPushSumRound(nodes, GossipMode::kPush, env_b, pop_b, rng_b, order);
    for (HostId id = 0; id < 16; ++id) {
      ASSERT_EQ(swarm.Estimate(id), nodes[id].Estimate())
          << "round " << round << " host " << id;
    }
  }
  EXPECT_EQ(rng_a.Next(), rng_b.Next());
}

// ------------------------------------------------ parallel scatter ---

TEST(RoundKernelTest, ScatterDepositsBitIdenticalAtAnyThreadCount) {
  // Big enough to clear the kernel's minimum-parallel-slots gate.
  const ScopedVisibleCpus forced(4);
  const int n = 6000;
  const std::vector<double> values = TestValues(n, 404);

  PushSumSwarm sequential(values, GossipMode::kPush);
  PushSumSwarm parallel(values, GossipMode::kPush);
  parallel.set_intra_round_threads(3);

  UniformEnvironment env(n);
  Population pop_a(n);
  Population pop_b(n);
  Rng rng_a(606);
  Rng rng_b(606);
  for (int round = 0; round < 6; ++round) {
    Mutate(pop_a, round);
    Mutate(pop_b, round);
    sequential.RunRound(env, pop_a, rng_a);
    parallel.RunRound(env, pop_b, rng_b);
    for (HostId id = 0; id < n; ++id) {
      // Floating-point accumulation order is preserved per destination, so
      // this is exact equality, not tolerance.
      ASSERT_EQ(sequential.Estimate(id), parallel.Estimate(id))
          << "round " << round << " host " << id;
    }
  }
  EXPECT_EQ(rng_a.Next(), rng_b.Next());
}

TEST(RoundKernelTest, ScatterThreadsOnFullTransferBitIdentical) {
  const ScopedVisibleCpus forced(4);
  const int n = 2000;  // 4 parcels/host -> 8000 slots, above the gate
  const std::vector<double> values = TestValues(n, 505);
  const FullTransferParams params{.lambda = 0.1, .parcels = 4, .window = 3};
  FullTransferSwarm sequential(values, params);
  FullTransferSwarm parallel(values, params);
  parallel.set_intra_round_threads(4);
  UniformEnvironment env(n);
  Population pop_a(n);
  Population pop_b(n);
  Rng rng_a(707);
  Rng rng_b(707);
  for (int round = 0; round < 5; ++round) {
    Mutate(pop_a, round);
    Mutate(pop_b, round);
    sequential.RunRound(env, pop_a, rng_a);
    parallel.RunRound(env, pop_b, rng_b);
    for (HostId id = 0; id < n; ++id) {
      ASSERT_EQ(sequential.Estimate(id), parallel.Estimate(id))
          << "round " << round << " host " << id;
    }
  }
}

TEST(RoundKernelTest, MassConservedAcrossKernelRounds) {
  const int n = 300;
  const std::vector<double> values = TestValues(n, 9);
  PushSumSwarm swarm(values, GossipMode::kPush);
  UniformEnvironment env(n);
  Population pop(n);
  Rng rng(2);
  double expected_weight = n;
  for (int round = 0; round < 10; ++round) {
    swarm.RunRound(env, pop, rng);
    EXPECT_NEAR(swarm.TotalAliveMass(pop).weight, expected_weight, 1e-9);
  }
}

}  // namespace
}  // namespace dynagg
